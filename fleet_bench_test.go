// Fleet throughput benchmarks: the full 285-app corpus scanned through a
// coordinator backed by 1, 2, and 4 workers, each pinned to one scan slot
// and one pipeline worker so wall-clock scales with fleet size and
// nothing else. Run all three together to commit the curve:
//
//	go test -bench='FleetWorkers' .
//
// writes BENCH_fleet.json (whichever benchmark finishes last does the
// write, mirroring BENCH_cache.json). Scans are CPU-bound, so the curve
// only bends on multi-core machines; the committed JSON records the cpus
// it was measured with — on a single-core box the flat curve is the
// correct result, and what it proves is that fleet overhead (dispatch,
// HTTP, bookkeeping) stays small at any width.
package repro_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apk"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/testutil"
)

// fleetBenchApp is one encoded corpus member ready for POST /scan.
type fleetBenchApp struct {
	name string
	data []byte
}

var fleetBenchState struct {
	sync.Once
	apps []fleetBenchApp
	err  error
}

// fleetBenchCorpus encodes the evaluation corpus once for all fleet
// benchmarks (encoding is setup cost, not fleet throughput).
func fleetBenchCorpus(b *testing.B) []fleetBenchApp {
	b.Helper()
	fleetBenchState.Do(func() {
		members, err := corpus.GenerateCorpus(experiments.Seed)
		if err != nil {
			fleetBenchState.err = err
			return
		}
		for _, m := range members {
			data, err := apk.Encode(m.App)
			if err != nil {
				fleetBenchState.err = err
				return
			}
			fleetBenchState.apps = append(fleetBenchState.apps, fleetBenchApp{name: m.Name, data: data})
		}
	})
	if fleetBenchState.err != nil {
		b.Fatal(fleetBenchState.err)
	}
	return fleetBenchState.apps
}

// benchFleet measures one full-corpus pass through a coordinator with n
// single-slot workers per iteration.
func benchFleet(b *testing.B, n int) {
	apps := fleetBenchCorpus(b)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	coord, err := server.NewCoordinator(server.CoordConfig{
		Queue:  2 * corpus.CorpusSize,
		Retain: 2 * corpus.CorpusSize,
		Logger: quiet,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
		ts.Close()
	}()
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{
			Jobs:   1,
			Queue:  2 * corpus.CorpusSize,
			Scan:   core.Options{Workers: 1},
			Logger: quiet,
		})
		srv.Start()
		wts := httptest.NewServer(srv.Handler())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			wts.Close()
		}()
		if err := coord.Register(wts.URL); err != nil {
			b.Fatal(err)
		}
	}
	client := &testutil.ScanClient{Base: ts.URL}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Submit and await from a small client pool: driven sequentially,
		// 285 HTTP round trips cost more wall-clock than the scans
		// themselves and would flatten the curve into a measurement of the
		// measuring client.
		var wg sync.WaitGroup
		sem := make(chan struct{}, 16)
		errs := make(chan error, len(apps))
		var warnings atomic.Int64
		deadline := time.Now().Add(10 * time.Minute)
		for _, app := range apps {
			wg.Add(1)
			sem <- struct{}{}
			go func(app fleetBenchApp) {
				defer wg.Done()
				defer func() { <-sem }()
				job, err := client.ScanWait("?name="+url.QueryEscape(app.name), app.data, deadline)
				switch {
				case err != nil:
					errs <- fmt.Errorf("%s: %w", app.name, err)
				case job.Status != "done" || job.Degraded:
					errs <- fmt.Errorf("%s: status %q degraded=%v (%s)", app.name, job.Status, job.Degraded, job.Error)
				default:
					warnings.Add(int64(job.Warnings))
				}
			}(app)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
		if warnings.Load() == 0 {
			b.Fatal("corpus pass produced no warnings")
		}
	}
	recordFleetBench(b, n, b.Elapsed().Nanoseconds()/int64(b.N))
}

// fleetBench collects the per-fleet-size corpus timings; whichever
// benchmark finishes last writes BENCH_fleet.json, so one
//
//	go test -bench='FleetWorkers' .
//
// run commits the whole 1→2→4 throughput curve.
var fleetBench struct {
	sync.Mutex
	ns map[int]int64
}

func recordFleetBench(b *testing.B, workers int, nsPerCorpus int64) {
	b.Helper()
	fleetBench.Lock()
	defer fleetBench.Unlock()
	if fleetBench.ns == nil {
		fleetBench.ns = make(map[int]int64)
	}
	fleetBench.ns[workers] = nsPerCorpus
	if fleetBench.ns[1] == 0 || fleetBench.ns[2] == 0 || fleetBench.ns[4] == 0 {
		return
	}
	out := struct {
		Benchmark       string  `json:"benchmark"`
		Apps            int     `json:"apps"`
		Workers1NsPerOp int64   `json:"workers1_ns_per_corpus"`
		Workers2NsPerOp int64   `json:"workers2_ns_per_corpus"`
		Workers4NsPerOp int64   `json:"workers4_ns_per_corpus"`
		Speedup2Workers float64 `json:"speedup_2_workers"`
		Speedup4Workers float64 `json:"speedup_4_workers"`
		GoVersion       string  `json:"go_version"`
		GOOS            string  `json:"goos"`
		GOARCH          string  `json:"goarch"`
		CPUs            int     `json:"cpus"`
	}{
		Benchmark:       "BenchmarkFleetWorkers1/2/4",
		Apps:            corpus.CorpusSize,
		Workers1NsPerOp: fleetBench.ns[1],
		Workers2NsPerOp: fleetBench.ns[2],
		Workers4NsPerOp: fleetBench.ns[4],
		Speedup2Workers: float64(fleetBench.ns[1]) / float64(fleetBench.ns[2]),
		Speedup4Workers: float64(fleetBench.ns[1]) / float64(fleetBench.ns[4]),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		CPUs:            runtime.NumCPU(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFleetWorkers1 is the single-worker baseline: all dispatch and
// HTTP overhead, no parallelism.
func BenchmarkFleetWorkers1(b *testing.B) { benchFleet(b, 1) }

// BenchmarkFleetWorkers2 doubles the fleet; content-hash sharding should
// spread the corpus roughly in half.
func BenchmarkFleetWorkers2(b *testing.B) { benchFleet(b, 2) }

// BenchmarkFleetWorkers4 is the wide point of the committed curve.
func BenchmarkFleetWorkers4(b *testing.B) { benchFleet(b, 4) }
