// Command jimpletool converts between the binary APK container and the
// textual Jimple-like assembly, the way dexdump/smali do for real APKs:
//
//	jimpletool disas app.apk               # print manifest + IR text
//	jimpletool asm -manifest m.txt -o out.apk prog.jimple
//	jimpletool stats app.apk               # size metrics
package main

import (
	"fmt"
	"os"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/jimple"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "disas":
		err = disas(os.Args[2:])
	case "asm":
		err = asm(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jimpletool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  jimpletool disas app.apk
  jimpletool asm -manifest manifest.txt -o out.apk prog.jimple
  jimpletool stats app.apk`)
	os.Exit(2)
}

func disas(args []string) error {
	if len(args) != 1 {
		usage()
	}
	app, err := apk.ReadFile(args[0])
	if err != nil {
		return err
	}
	fmt.Println("// -- AndroidManifest --")
	for _, line := range splitLines(app.Manifest.Encode()) {
		fmt.Println("// " + line)
	}
	fmt.Println()
	fmt.Print(jimple.Print(app.Program))
	return nil
}

func asm(args []string) error {
	var manifestPath, outPath, srcPath string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-manifest":
			i++
			if i >= len(args) {
				usage()
			}
			manifestPath = args[i]
		case "-o":
			i++
			if i >= len(args) {
				usage()
			}
			outPath = args[i]
		default:
			srcPath = args[i]
		}
	}
	if manifestPath == "" || outPath == "" || srcPath == "" {
		usage()
	}
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return err
	}
	prog, err := jimple.Parse(string(src))
	if err != nil {
		return err
	}
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("assembled program invalid: %w", err)
	}
	manSrc, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	man, err := android.DecodeManifest(string(manSrc))
	if err != nil {
		return err
	}
	if err := apk.WriteFile(outPath, &apk.App{Manifest: man, Program: prog}); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d classes, %d statements)\n", outPath, prog.NumClasses(), prog.NumStmts())
	return nil
}

func stats(args []string) error {
	if len(args) != 1 {
		usage()
	}
	app, err := apk.ReadFile(args[0])
	if err != nil {
		return err
	}
	methods, bodies, traps := 0, 0, 0
	for _, c := range app.Program.Classes() {
		for _, m := range c.Methods {
			methods++
			if m.HasBody() {
				bodies++
				traps += len(m.Traps)
			}
		}
	}
	fi, _ := os.Stat(args[0])
	fmt.Printf("package:    %s\n", app.Manifest.Package)
	fmt.Printf("components: %d activities, %d services, %d receivers\n",
		len(app.Manifest.Activities), len(app.Manifest.Services), len(app.Manifest.Receivers))
	fmt.Printf("classes:    %d\n", app.Program.NumClasses())
	fmt.Printf("methods:    %d (%d with bodies)\n", methods, bodies)
	fmt.Printf("statements: %d (%d traps)\n", app.Program.NumStmts(), traps)
	if fi != nil {
		fmt.Printf("file size:  %d bytes\n", fi.Size())
	}
	return nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
