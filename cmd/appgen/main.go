// Command appgen generates the evaluation corpus — 16 golden apps plus
// 269 synthetic Google-Play-style apps — as .apk container files on disk,
// ready to be scanned by cmd/nchecker.
//
// Usage:
//
//	appgen -out corpus/ [-seed 2016] [-n 285] [-pad 0]
//
// -pad N appends N inert padding classes to every app — classes provably
// outside the targeted engine's demand-driven closure — for the
// class-count-scaling benchmarks (BENCH_targeted.json). Reports are
// identical at any padding level.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apk"
	"repro/internal/corpus"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	seed := flag.Int64("seed", 2016, "corpus generation seed")
	n := flag.Int("n", corpus.CorpusSize, "number of apps to write (goldens first)")
	pad := flag.Int("pad", 0, "inert padding classes appended to every app (class-count scaling)")
	flag.Parse()

	apps, err := corpus.GenerateCorpus(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "appgen: %v\n", err)
		os.Exit(1)
	}
	if *n < len(apps) {
		apps = apps[:*n]
	}
	for _, a := range apps {
		corpus.AddPadding(a.App, *pad)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "appgen: %v\n", err)
		os.Exit(1)
	}
	var bytes int64
	for _, a := range apps {
		path := filepath.Join(*out, a.Name+".apk")
		if err := apk.WriteFile(path, a.App); err != nil {
			fmt.Fprintf(os.Stderr, "appgen: %s: %v\n", a.Name, err)
			os.Exit(1)
		}
		if fi, err := os.Stat(path); err == nil {
			bytes += fi.Size()
		}
	}
	fmt.Printf("appgen: wrote %d apps (%.1f KiB) to %s (seed %d)\n",
		len(apps), float64(bytes)/1024, *out, *seed)
}
