package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// TestFoldOutcomesPrecedence is the exit-code contract, table-driven over
// file orderings: error(2) > warnings(1) > clean(0) must hold no matter
// which order the files were named in.
func TestFoldOutcomesPrecedence(t *testing.T) {
	mk := func(warnings, failed bool) outcome {
		return outcome{warnings: warnings, failed: failed}
	}
	clean := mk(false, false)
	warn := mk(true, false)
	fail := mk(false, true)
	warnAndFail := mk(true, true) // a degraded scan that still found warnings

	cases := []struct {
		name     string
		outcomes []outcome
		want     int
	}{
		{"no files", nil, exitClean},
		{"all clean", []outcome{clean, clean}, exitClean},
		{"single warning", []outcome{warn}, exitWarnings},
		{"single error", []outcome{fail}, exitError},
		{"warnings then error", []outcome{warn, fail}, exitError},
		{"error then warnings", []outcome{fail, warn}, exitError},
		{"clean then warnings then clean", []outcome{clean, warn, clean}, exitWarnings},
		{"error sandwiched by clean", []outcome{clean, fail, clean}, exitError},
		{"warnings and error in one file", []outcome{warnAndFail}, exitError},
		{"error first then only clean", []outcome{fail, clean, clean}, exitError},
		{"warnings everywhere, one error", []outcome{warn, warn, fail, warn}, exitError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errs strings.Builder
			if got := foldOutcomes(tc.outcomes, &out, &errs); got != tc.want {
				t.Errorf("foldOutcomes = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestFoldOutcomesFlushesInOrder: buffered per-file output must print in
// argument order, stdout and stderr separately.
func TestFoldOutcomesFlushesInOrder(t *testing.T) {
	outcomes := make([]outcome, 3)
	for i := range outcomes {
		outcomes[i].out.WriteString(string(rune('a' + i)))
		outcomes[i].errs.WriteString(string(rune('x' + i)))
	}
	var out, errs strings.Builder
	foldOutcomes(outcomes, &out, &errs)
	if out.String() != "abc" {
		t.Errorf("stdout order = %q, want abc", out.String())
	}
	if errs.String() != "xyz" {
		t.Errorf("stderr order = %q, want xyz", errs.String())
	}
}

// writeFixtureApp writes the canonical buggy fixture to dir and returns
// its path.
func writeFixtureApp(t *testing.T, dir, name string) string {
	t.Helper()
	prog := jimple.MustParse(`class demo.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://example.com"
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    return
  }
}`)
	man := &android.Manifest{Package: "demo", Activities: []string{"demo.Main"}}
	man.Normalize()
	path := filepath.Join(dir, name)
	if err := apk.WriteFile(path, &apk.App{Manifest: man, Program: prog}); err != nil {
		t.Fatalf("write fixture: %v", err)
	}
	return path
}

// TestBatchJSONStdoutIsPureJSON is the regression test for the -json
// output contract: with -stats and -timings on and a degraded file in the
// batch, stdout must still be nothing but JSON documents — the banner,
// stats, timings, and the degraded notice all belong on stderr. (Pre-fix,
// -stats and -timings wrote to stdout and corrupted the stream.)
func TestBatchJSONStdoutIsPureJSON(t *testing.T) {
	dir := t.TempDir()
	good := writeFixtureApp(t, dir, "good.apk")
	degraded := writeFixtureApp(t, dir, "degraded.apk")

	var out, errs strings.Builder
	// -timeout 1ns degrades every scan; scanning the "good" file twice
	// with distinct names keeps this a real batch. Use one worker so the
	// degraded file is deterministic — both are degraded here anyway.
	code := runScan([]string{
		"-json", "-stats", "-timings", "-workers", "1", "-timeout", "1ns",
		good, degraded,
	}, &out, &errs)
	if code != exitError {
		t.Fatalf("degraded batch exit = %d, want %d", code, exitError)
	}

	dec := json.NewDecoder(strings.NewReader(out.String()))
	docs := 0
	for dec.More() {
		var doc any
		if err := dec.Decode(&doc); err != nil {
			t.Fatalf("stdout is not a pure JSON stream (doc %d): %v\nstdout:\n%s", docs, err, out.String())
		}
		docs++
	}
	if docs != 2 {
		t.Errorf("stdout carries %d JSON documents, want 2\nstdout:\n%s", docs, out.String())
	}
	for _, diag := range []string{"== ", "stats: ", "pipeline: "} {
		if strings.Contains(out.String(), diag) {
			t.Errorf("diagnostic %q leaked onto -json stdout", diag)
		}
		if !strings.Contains(errs.String(), diag) {
			t.Errorf("diagnostic %q missing from stderr", diag)
		}
	}
}

// TestDegradedNoticeExactlyOncePerFile: a degraded batch -json scan emits
// its stderr notice exactly once per degraded file.
func TestDegradedNoticeExactlyOncePerFile(t *testing.T) {
	dir := t.TempDir()
	a := writeFixtureApp(t, dir, "a.apk")
	b := writeFixtureApp(t, dir, "b.apk")

	var out, errs strings.Builder
	code := runScan([]string{"-json", "-timeout", "1ns", a, b}, &out, &errs)
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	for _, path := range []string{a, b} {
		notice := "nchecker: " + path + ": degraded scan"
		if got := strings.Count(errs.String(), notice); got != 1 {
			t.Errorf("degraded notice for %s appears %d times, want exactly 1\nstderr:\n%s", path, got, errs.String())
		}
	}
}

// TestScanExitCodes drives runScan end to end over real files: clean vs
// warnings vs unreadable, in both orders.
func TestScanExitCodes(t *testing.T) {
	dir := t.TempDir()
	warnApp := writeFixtureApp(t, dir, "warn.apk")
	missing := filepath.Join(dir, "missing.apk")

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"warnings only", []string{warnApp}, exitWarnings},
		{"missing file only", []string{missing}, exitError},
		{"warnings then missing", []string{warnApp, missing}, exitError},
		{"missing then warnings", []string{missing, warnApp}, exitError},
		{"no args is usage error", nil, exitError},
		{"bad cache mode", []string{"-cache-mode", "sideways", warnApp}, exitError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errs strings.Builder
			if got := runScan(tc.args, &out, &errs); got != tc.want {
				t.Errorf("runScan(%v) = %d, want %d\nstderr:\n%s", tc.args, got, tc.want, errs.String())
			}
		})
	}
}

// TestSingleFileTextOutputUnchanged: the text mode still prints the banner
// then the rendered reports on stdout (the byte-level contract nchecker
// serve's report text is checked against).
func TestSingleFileTextOutputUnchanged(t *testing.T) {
	dir := t.TempDir()
	app := writeFixtureApp(t, dir, "app.apk")
	var out, errs strings.Builder
	code := runScan([]string{app}, &out, &errs)
	if code != exitWarnings {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitWarnings, errs.String())
	}
	if !strings.HasPrefix(out.String(), "== "+app+": ") {
		t.Errorf("banner missing from stdout:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "NPD Information") {
		t.Errorf("rendered reports missing from stdout")
	}
	if errs.Len() != 0 {
		t.Errorf("clean text scan wrote to stderr: %q", errs.String())
	}
}

// TestServeFlagValidation: bad serve flags fail fast with exit 2 and
// never bind a socket.
func TestServeFlagValidation(t *testing.T) {
	var errs strings.Builder
	if got := runServe([]string{"-cache-mode", "sideways"}, &errs); got != exitError {
		t.Errorf("bad cache mode: runServe = %d, want %d", got, exitError)
	}
	errs.Reset()
	if got := runServe([]string{"stray-arg"}, &errs); got != exitError {
		t.Errorf("stray arg: runServe = %d, want %d", got, exitError)
	}
	errs.Reset()
	if got := runServe([]string{"-addr", "999.999.999.999:0"}, &errs); got != exitError {
		t.Errorf("unbindable addr: runServe = %d, want %d", got, exitError)
	}
}

// Guard against the timeout constant drifting: the degraded-batch tests
// rely on 1ns expiring before any stage runs.
var _ = time.Nanosecond
