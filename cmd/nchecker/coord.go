package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

// runCoord runs `nchecker coord`: the fleet coordinator (DESIGN.md §12).
// It exposes the same scan API as `nchecker serve` but dispatches each
// job to registered worker processes, retrying and hedging against slow
// or dead workers, and optionally hosts the fleet cache hub. Workers
// join with `nchecker serve -coord http://coordinator:port`.
func runCoord(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("nchecker coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address (use :0 for an ephemeral port)")
	readyFile := fs.String("ready-file", "", "write the bound listen address to this file once serving (for scripts using -addr ...:0)")
	queueLen := fs.Int("queue", server.DefaultQueue, "pending-jobs bound fleet-wide; a POST /scan beyond it gets 429")
	retain := fs.Int("retain", server.DefaultRetain, "finished jobs kept for GET /scan/{id}")
	maxBody := fs.Int64("max-body", server.DefaultMaxBody, "largest accepted app container in bytes")
	hedge := fs.Duration("hedge", 0, "dispatch a slow job a second time to an idle worker after this delay (0 = no hedging)")
	retries := fs.Int("retries", server.DefaultRetries, "dispatch attempts per job across workers (hedges included)")
	cacheDir := fs.String("cache", "", "fleet cache hub directory: workers replicate cache entries through the coordinator (empty = no hub)")
	cacheMax := fs.Int64("cache-max", 0, "cache hub size bound in bytes (0 = unbounded)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nchecker coord [flags]\n\nEndpoints: POST /scan, GET /scan/{id}, GET /scans, GET /fleet, GET /metrics, GET /healthz, /cache/{entry}\nWorkers join with: nchecker serve -coord http://<this address>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return exitError
	}

	logger := slog.New(slog.NewJSONHandler(stderr, nil))
	coord, err := server.NewCoordinator(server.CoordConfig{
		Queue:         *queueLen,
		Retain:        *retain,
		MaxBodyBytes:  *maxBody,
		Hedge:         *hedge,
		Retries:       *retries,
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		Logger:        logger,
	})
	if err != nil {
		fmt.Fprintf(stderr, "nchecker coord: %v\n", err)
		return exitError
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker coord: %v\n", err)
		return exitError
	}
	bound := ln.Addr().String()
	logger.Info("coordinating",
		"addr", bound, "queue", *queueLen, "hedge", (*hedge).String(),
		"retries", *retries, "cache_hub", *cacheDir)
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "nchecker coord: write -ready-file: %v\n", err)
			ln.Close()
			return exitError
		}
	}

	hs := &http.Server{Handler: coord.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Error("coordinator error", "error", err.Error())
		return exitError
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			logger.Error("http shutdown", "error", err.Error())
		}
		if err := coord.Shutdown(shutCtx); err != nil {
			logger.Error("drain", "error", err.Error())
			return exitError
		}
		logger.Info("shutdown complete")
		return exitClean
	}
}
