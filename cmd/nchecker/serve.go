package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// runServe runs `nchecker serve`: the long-running HTTP scan service
// (internal/server). Structured logs go to stderr as JSON lines; SIGINT
// and SIGTERM drain the server gracefully.
func runServe(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("nchecker serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	readyFile := fs.String("ready-file", "", "write the bound listen address to this file once serving (for scripts using -addr ...:0)")
	jobs := fs.Int("jobs", 1, "concurrent scan jobs (1 = serialize scans, each with full pipeline parallelism)")
	queueLen := fs.Int("queue", server.DefaultQueue, "admission queue bound; a POST /scan beyond it gets 429")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "per-job scan deadline (0 = none); an expired deadline yields a degraded report, not an error")
	retain := fs.Int("retain", server.DefaultRetain, "finished jobs kept for GET /scan/{id}")
	maxBody := fs.Int64("max-body", server.DefaultMaxBody, "largest accepted app container in bytes")
	coordURL := fs.String("coord", "", "join the fleet at this coordinator URL: register for dispatch and replicate cache entries through its hub")
	selfURL := fs.String("self", "", "base URL the coordinator should reach this worker at (default http://<bound address>)")

	var opts core.Options
	fs.BoolVar(&opts.EnableICC, "icc", false, "enable the inter-component analysis")
	fs.BoolVar(&opts.GuardSensitiveConnCheck, "guard", false, "require connectivity checks to govern a branch")
	fs.BoolVar(&opts.Intraprocedural, "intra", false, "intraprocedural ablation")
	fs.IntVar(&opts.Workers, "workers", 0, "per-scan pipeline workers (0 = auto: NumCPU divided across -jobs)")
	fs.StringVar(&opts.CacheDir, "cache", "", "persistent scan-cache directory shared by all jobs (empty = no cache)")
	cacheMode := fs.String("cache-mode", "rw", "persistent-cache mode: off, ro, or rw")
	engineMode := fs.String("mode", "full", "default engine mode: full or targeted (per-job override via ?mode=)")
	fs.BoolVar(&opts.Validate, "validate", false, "dynamically validate warnings by default (per-job override via ?validate=)")
	checkerSel := fs.String("checkers", "all", "default checker families (per-job override via ?checkers=), e.g. 1,3,5-8")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nchecker serve [flags]\n\nEndpoints: POST /scan, GET /scan/{id}, GET /scans, GET /metrics, GET /healthz, /debug/pprof/\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return exitError
	}
	mode, err := core.ParseCacheMode(*cacheMode)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker serve: %v\n", err)
		return exitError
	}
	opts.CacheMode = mode
	emode, err := core.ParseEngineMode(*engineMode)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker serve: %v\n", err)
		return exitError
	}
	opts.Mode = emode
	cset, err := core.ParseCheckerSet(*checkerSel)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker serve: %v\n", err)
		return exitError
	}
	opts.Checkers = cset

	logger := slog.New(slog.NewJSONHandler(stderr, nil))
	srv := server.New(server.Config{
		Scan:         opts,
		Jobs:         *jobs,
		Queue:        *queueLen,
		JobTimeout:   *jobTimeout,
		MaxBodyBytes: *maxBody,
		Retain:       *retain,
		Logger:       logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker serve: %v\n", err)
		return exitError
	}
	bound := ln.Addr().String()
	logger.Info("serving",
		"addr", bound, "jobs", *jobs, "queue", *queueLen,
		"job_timeout", (*jobTimeout).String(), "cache", opts.CacheDir, "cache_mode", opts.CacheMode.String(),
		"mode", opts.Mode.String(), "validate", opts.Validate)
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "nchecker serve: write -ready-file: %v\n", err)
			ln.Close()
			return exitError
		}
	}

	srv.Start()
	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if *coordURL != "" {
		self := *selfURL
		if self == "" {
			self = "http://" + bound
		}
		// Join after the listener is up so the coordinator's first dispatch
		// finds /scansync answering. A failed join is loud but not fatal:
		// the worker still serves its own API.
		go func() {
			if err := server.JoinFleet(server.FleetJoin{Coord: *coordURL, Self: self, Logger: logger}, opts); err != nil {
				logger.Error("fleet join failed", "error", err.Error())
			}
		}()
	}

	select {
	case err := <-serveErr:
		logger.Error("server error", "error", err.Error())
		return exitError
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			logger.Error("http shutdown", "error", err.Error())
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Error("drain", "error", err.Error())
			return exitError
		}
		logger.Info("shutdown complete")
		return exitClean
	}
}
