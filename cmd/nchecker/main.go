// Command nchecker scans Android app binaries (the repository's APK
// container format) for network programming defects and prints warning
// reports in the paper's Figure 7 layout, or as JSON.
//
// Usage:
//
//	nchecker [flags] app.apk [more.apk ...]
//
// Flags:
//
//	-json      emit reports as a JSON array instead of text
//	-stats     print per-app request statistics after the reports
//	-summary   print only the per-cause summary per app
//	-icc       enable the inter-component analysis
//	-guard     require connectivity checks to govern a branch
//	-intra     disable the interprocedural summary engine and
//	           path-feasibility pruning (ablation baseline)
//	-workers   worker-pool size for the scan pipeline and for scanning
//	           multiple files concurrently (0 = NumCPU)
//	-timeout   per-file scan deadline (e.g. 30s; 0 = none)
//	-timings   print per-stage pipeline timings and cache statistics
//	-cache     persistent scan-cache directory; unchanged files rescan
//	           from cache, changed files reuse per-class taint summaries
//	-cache-mode off|ro|rw (default rw): how -cache is used; ro probes
//	           and restores without writing
//
// With multiple files the worker budget goes to the file-level pool and
// each scan's internal pipeline runs single-threaded (the same division
// the corpus harness uses), so batch mode never multiplies the two pools
// into N×M goroutines; a single file gets the full budget inside its
// pipeline.
//
// Exit codes: 0 when every file scanned clean, 1 when at least one
// warning was found, 2 on a usage error or when any file failed to read
// or parse, or any scan was degraded (a pipeline stage panicked or the
// -timeout deadline expired). A degraded scan still prints the surviving
// stages' reports — partial results are real findings — but the exit
// code reports the failure: an error always wins over warnings.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/report"
)

const (
	exitClean    = 0
	exitWarnings = 1
	exitError    = 2
)

func main() {
	jsonOut := flag.Bool("json", false, "emit reports as JSON")
	stats := flag.Bool("stats", false, "print per-app request statistics")
	summary := flag.Bool("summary", false, "print only per-cause summaries")
	icc := flag.Bool("icc", false, "enable the inter-component analysis (removes launcher/broadcast FPs)")
	guard := flag.Bool("guard", false, "require connectivity checks to govern a branch (removes unused-check FNs)")
	intra := flag.Bool("intra", false, "intraprocedural ablation: no taint summaries, no path-feasibility pruning")
	workers := flag.Int("workers", 0, "worker-pool size for the scan pipeline (0 = NumCPU)")
	timeout := flag.Duration("timeout", 0, "per-file scan deadline (0 = none); an expired deadline yields a degraded scan and exit code 2")
	timings := flag.Bool("timings", false, "print per-stage pipeline timings and cache statistics")
	cacheDir := flag.String("cache", "", "persistent scan-cache directory (empty = no cache)")
	cacheMode := flag.String("cache-mode", "rw", "persistent-cache mode: off, ro, or rw")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nchecker [flags] app.apk [more.apk ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(exitError)
	}
	mode, err := core.ParseCacheMode(*cacheMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nchecker: %v\n", err)
		os.Exit(exitError)
	}
	opts := core.Options{
		EnableICC:               *icc,
		GuardSensitiveConnCheck: *guard,
		Intraprocedural:         *intra,
		Workers:                 *workers,
		Timeout:                 *timeout,
		CacheDir:                *cacheDir,
		CacheMode:               mode,
	}
	paths := flag.Args()

	// Divide the CPU budget between the file-level pool and the per-scan
	// pipeline the way internal/experiments.ScanApps does: in batch mode
	// the files fan out across the pool and each scan runs
	// single-threaded; a single file keeps the whole budget inside its
	// pipeline. Without this the two pools multiply (N×M goroutines).
	filePool := poolSize(opts.Workers)
	if filePool > len(paths) {
		filePool = len(paths)
	}
	if len(paths) > 1 && filePool > 1 {
		opts.Workers = 1
	}
	nc := core.NewWithOptions(opts)

	type outcome struct {
		out      strings.Builder // buffered stdout for this file
		errs     strings.Builder // buffered stderr for this file
		warnings bool
		failed   bool
	}
	outcomes := make([]outcome, len(paths))
	scanOne := func(i int) {
		o := &outcomes[i]
		res, err := nc.ScanFile(paths[i])
		if err != nil {
			fmt.Fprintf(&o.errs, "nchecker: %v\n", err)
			o.failed = true
			return
		}
		if res.Incomplete {
			// Partial results follow below; the notice and the exit code
			// record that the scan is missing stages.
			fmt.Fprintf(&o.errs, "nchecker: %s: degraded scan (partial results): %v\n", paths[i], res.Err())
			o.failed = true
		}
		// In JSON mode the banner goes to stderr so stdout carries only
		// the JSON documents.
		header := &o.out
		if *jsonOut {
			header = &o.errs
		}
		fmt.Fprintf(header, "== %s: %d requests, %d warnings ==\n", paths[i], res.Stats.Requests, len(res.Reports))
		switch {
		case *jsonOut:
			if err := printJSON(&o.out, res.Reports); err != nil {
				fmt.Fprintf(&o.errs, "nchecker: %v\n", err)
				o.failed = true
			}
		case *summary:
			printSummary(&o.out, res.Reports)
		default:
			for i := range res.Reports {
				fmt.Fprintln(&o.out, res.Reports[i].Render())
			}
		}
		if *stats {
			fmt.Fprintf(&o.out, "stats: %+v\n", res.Stats)
		}
		if *timings {
			o.out.WriteString(res.Diagnostics.Render())
		}
		if len(res.Reports) > 0 {
			o.warnings = true
		}
	}

	// Scan files concurrently (the Checker is goroutine-safe); output is
	// buffered per file and printed in argument order.
	if filePool > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, filePool)
		for i := range paths {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				scanOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range paths {
			scanOne(i)
		}
	}

	exit := exitClean
	for i := range outcomes {
		os.Stdout.WriteString(outcomes[i].out.String())
		os.Stderr.WriteString(outcomes[i].errs.String())
		if outcomes[i].warnings && exit == exitClean {
			exit = exitWarnings
		}
		if outcomes[i].failed {
			exit = exitError
		}
	}
	os.Exit(exit)
}

// poolSize resolves the -workers value like the pipeline does.
func poolSize(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// printJSON buffers the whole encoded document and commits it to w only
// on success, so a mid-encode failure emits the error alone instead of a
// corrupt partial JSON document followed by the error.
func printJSON(w *strings.Builder, reports []report.Report) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		return err
	}
	w.Write(buf.Bytes())
	return nil
}

func printSummary(w *strings.Builder, reports []report.Report) {
	s := report.Summarize(reports)
	causes := make([]string, 0, len(s.ByCause))
	for c := range s.ByCause {
		causes = append(causes, string(c))
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Fprintf(w, "  %-28s %d\n", c, s.ByCause[report.Cause(c)])
	}
}
