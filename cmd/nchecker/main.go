// Command nchecker scans Android app binaries (the repository's APK
// container format) for network programming defects and prints warning
// reports in the paper's Figure 7 layout, or as JSON.
//
// Usage:
//
//	nchecker [flags] app.apk [more.apk ...]
//
// Flags:
//
//	-json     emit reports as a JSON array instead of text
//	-stats    print per-app request statistics after the reports
//	-summary  print only the per-cause summary per app
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit reports as JSON")
	stats := flag.Bool("stats", false, "print per-app request statistics")
	summary := flag.Bool("summary", false, "print only per-cause summaries")
	icc := flag.Bool("icc", false, "enable the inter-component analysis (removes launcher/broadcast FPs)")
	guard := flag.Bool("guard", false, "require connectivity checks to govern a branch (removes unused-check FNs)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nchecker [flags] app.apk [more.apk ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	nc := core.NewWithOptions(core.Options{
		EnableICC:               *icc,
		GuardSensitiveConnCheck: *guard,
	})
	exit := 0
	for _, path := range flag.Args() {
		res, err := nc.ScanFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nchecker: %v\n", err)
			exit = 1
			continue
		}
		fmt.Printf("== %s: %d requests, %d warnings ==\n", path, res.Stats.Requests, len(res.Reports))
		switch {
		case *jsonOut:
			if err := printJSON(res.Reports); err != nil {
				fmt.Fprintf(os.Stderr, "nchecker: %v\n", err)
				exit = 1
			}
		case *summary:
			printSummary(res.Reports)
		default:
			for i := range res.Reports {
				fmt.Println(res.Reports[i].Render())
			}
		}
		if *stats {
			fmt.Printf("stats: %+v\n", res.Stats)
		}
		if len(res.Reports) > 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}

func printJSON(reports []report.Report) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

func printSummary(reports []report.Report) {
	s := report.Summarize(reports)
	causes := make([]string, 0, len(s.ByCause))
	for c := range s.ByCause {
		causes = append(causes, string(c))
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Printf("  %-28s %d\n", c, s.ByCause[report.Cause(c)])
	}
}
