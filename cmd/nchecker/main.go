// Command nchecker scans Android app binaries (the repository's APK
// container format) for network programming defects and prints warning
// reports in the paper's Figure 7 layout, or as JSON.
//
// Usage:
//
//	nchecker [flags] app.apk [more.apk ...]
//	nchecker serve [flags]
//	nchecker coord [flags]
//
// Scan flags:
//
//	-json      emit reports as a JSON array instead of text
//	-stats     print per-app request statistics after the reports
//	-summary   print only the per-cause summary per app
//	-icc       enable the inter-component analysis
//	-guard     require connectivity checks to govern a branch
//	-intra     disable the interprocedural summary engine and
//	           path-feasibility pruning (ablation baseline)
//	-mode      full|targeted (default full): engine traversal; targeted
//	           lazily decodes and analyzes only the demand-driven closure
//	           of the network-API sites, with identical reports
//	-checkers  checker families to run (default all): comma-separated
//	           family numbers and ranges, e.g. -checkers=5-8; disabled
//	           families emit no reports, enabled ones are unchanged
//	-workers   worker-pool size for the scan pipeline and for scanning
//	           multiple files concurrently (0 = NumCPU)
//	-timeout   per-file scan deadline (e.g. 30s; 0 = none)
//	-timings   print per-stage pipeline timings and cache statistics
//	-cache     persistent scan-cache directory; unchanged files rescan
//	           from cache, changed files reuse per-class taint summaries
//	-cache-mode off|ro|rw (default rw): how -cache is used; ro probes
//	           and restores without writing
//	-validate  replay each warning's witness entry point under injected
//	           network disruptions and stamp a confirmed / unconfirmed /
//	           not-validated verdict on every report (DESIGN.md §10)
//
// The serve subcommand runs the long-running scan service
// (internal/server): POST /scan an app container, GET /scan/{id} for the
// report, plus /metrics (Prometheus text), /healthz, and /debug/pprof/.
// See `nchecker serve -h` and DESIGN.md §8.
//
// The coord subcommand runs the fleet coordinator: the same scan API,
// dispatched across worker processes started with `nchecker serve
// -coord http://coordinator`, with content-hash sharding, work stealing,
// hedged retries, cache replication, and aggregated /metrics. See
// `nchecker coord -h` and DESIGN.md §12.
//
// With multiple files the worker budget goes to the file-level pool and
// each scan's internal pipeline runs single-threaded (the same division
// the corpus harness uses), so batch mode never multiplies the two pools
// into N×M goroutines; a single file gets the full budget inside its
// pipeline.
//
// In -json mode stdout carries only the JSON documents: the per-file
// banner, degraded-scan notices, -stats, and -timings all go to stderr.
//
// Exit codes: 0 when every file scanned clean, 1 when at least one
// warning was found, 2 on a usage error or when any file failed to read
// or parse, or any scan was degraded (a pipeline stage panicked or the
// -timeout deadline expired). A degraded scan still prints the surviving
// stages' reports — partial results are real findings — but the exit
// code reports the failure: an error always wins over warnings,
// regardless of the order the files were named in.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/report"
)

const (
	exitClean    = 0
	exitWarnings = 1
	exitError    = 2
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "serve" {
		os.Exit(runServe(args[1:], os.Stderr))
	}
	if len(args) > 0 && args[0] == "coord" {
		os.Exit(runCoord(args[1:], os.Stderr))
	}
	os.Exit(runScan(args, os.Stdout, os.Stderr))
}

// scanConfig carries the parsed scan-mode flags.
type scanConfig struct {
	jsonOut bool
	stats   bool
	summary bool
	timings bool
	opts    core.Options
}

// outcome buffers one file's output so concurrent batch scans print in
// argument order.
type outcome struct {
	out      strings.Builder // buffered stdout for this file
	errs     strings.Builder // buffered stderr for this file
	warnings bool
	failed   bool
}

// runScan is the scan-mode entry point, factored from main so the exit
// fold and output routing are testable.
func runScan(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nchecker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg scanConfig
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit reports as JSON")
	fs.BoolVar(&cfg.stats, "stats", false, "print per-app request statistics")
	fs.BoolVar(&cfg.summary, "summary", false, "print only per-cause summaries")
	fs.BoolVar(&cfg.opts.EnableICC, "icc", false, "enable the inter-component analysis (removes launcher/broadcast FPs)")
	fs.BoolVar(&cfg.opts.GuardSensitiveConnCheck, "guard", false, "require connectivity checks to govern a branch (removes unused-check FNs)")
	fs.BoolVar(&cfg.opts.Intraprocedural, "intra", false, "intraprocedural ablation: no taint summaries, no path-feasibility pruning")
	fs.IntVar(&cfg.opts.Workers, "workers", 0, "worker-pool size for the scan pipeline (0 = NumCPU)")
	fs.DurationVar(&cfg.opts.Timeout, "timeout", 0, "per-file scan deadline (0 = none); an expired deadline yields a degraded scan and exit code 2")
	fs.BoolVar(&cfg.timings, "timings", false, "print per-stage pipeline timings and cache statistics")
	fs.BoolVar(&cfg.opts.Validate, "validate", false, "dynamically validate warnings by replaying witness entries under injected disruptions")
	fs.StringVar(&cfg.opts.CacheDir, "cache", "", "persistent scan-cache directory (empty = no cache)")
	cacheMode := fs.String("cache-mode", "rw", "persistent-cache mode: off, ro, or rw")
	engineMode := fs.String("mode", "full", "engine mode: full or targeted (demand-driven, identical reports)")
	checkerSel := fs.String("checkers", "all", "checker families to run: all, or numbers/ranges like 1,3,5-8")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nchecker [flags] app.apk [more.apk ...]\n       nchecker serve [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return exitError
	}
	mode, err := core.ParseCacheMode(*cacheMode)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker: %v\n", err)
		return exitError
	}
	cfg.opts.CacheMode = mode
	emode, err := core.ParseEngineMode(*engineMode)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker: %v\n", err)
		return exitError
	}
	cfg.opts.Mode = emode
	cset, err := core.ParseCheckerSet(*checkerSel)
	if err != nil {
		fmt.Fprintf(stderr, "nchecker: %v\n", err)
		return exitError
	}
	cfg.opts.Checkers = cset
	paths := fs.Args()

	// Divide the CPU budget between the file-level pool and the per-scan
	// pipeline the way internal/experiments.ScanApps does: in batch mode
	// the files fan out across the pool and each scan runs
	// single-threaded; a single file keeps the whole budget inside its
	// pipeline. Without this the two pools multiply (N×M goroutines).
	filePool := poolSize(cfg.opts.Workers)
	if filePool > len(paths) {
		filePool = len(paths)
	}
	if len(paths) > 1 && filePool > 1 {
		cfg.opts.Workers = 1
	}
	nc := core.NewWithOptions(cfg.opts)

	// Scan files concurrently (the Checker is goroutine-safe); output is
	// buffered per file and printed in argument order.
	outcomes := make([]outcome, len(paths))
	if filePool > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, filePool)
		for i := range paths {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				scanOne(nc, paths[i], cfg, &outcomes[i])
			}(i)
		}
		wg.Wait()
	} else {
		for i := range paths {
			scanOne(nc, paths[i], cfg, &outcomes[i])
		}
	}
	return foldOutcomes(outcomes, stdout, stderr)
}

// scanOne scans a single file into its outcome slot.
func scanOne(nc *core.Checker, path string, cfg scanConfig, o *outcome) {
	res, err := nc.ScanFile(path)
	if err != nil {
		fmt.Fprintf(&o.errs, "nchecker: %v\n", err)
		o.failed = true
		return
	}
	if res.Incomplete {
		// Partial results follow below; the notice (exactly one per file,
		// always on stderr) and the exit code record that the scan is
		// missing stages.
		fmt.Fprintf(&o.errs, "nchecker: %s: degraded scan (partial results): %v\n", path, res.Err())
		o.failed = true
	}
	// In JSON mode stdout must carry only the JSON documents: the banner,
	// -stats, and -timings are diagnostics and belong on stderr there.
	diag := &o.out
	if cfg.jsonOut {
		diag = &o.errs
	}
	fmt.Fprintf(diag, "== %s: %d requests, %d warnings ==\n", path, res.Stats.Requests, len(res.Reports))
	switch {
	case cfg.jsonOut:
		if err := printJSON(&o.out, res.Reports); err != nil {
			fmt.Fprintf(&o.errs, "nchecker: %v\n", err)
			o.failed = true
		}
	case cfg.summary:
		printSummary(&o.out, res.Reports)
	default:
		o.out.WriteString(report.RenderAll(res.Reports))
	}
	if cfg.stats {
		fmt.Fprintf(diag, "stats: %+v\n", res.Stats)
	}
	if cfg.timings {
		diag.WriteString(res.Diagnostics.Render())
	}
	if len(res.Reports) > 0 {
		o.warnings = true
	}
}

// foldOutcomes flushes the buffered per-file output in argument order and
// folds the per-file outcomes into the process exit code. The fold is a
// maximum over per-file codes — error(2) > warnings(1) > clean(0) — so the
// result is independent of the order the files were named in.
func foldOutcomes(outcomes []outcome, stdout, stderr io.Writer) int {
	exit := exitClean
	for i := range outcomes {
		io.WriteString(stdout, outcomes[i].out.String())
		io.WriteString(stderr, outcomes[i].errs.String())
		code := exitClean
		switch {
		case outcomes[i].failed:
			code = exitError
		case outcomes[i].warnings:
			code = exitWarnings
		}
		if code > exit {
			exit = code
		}
	}
	return exit
}

// poolSize resolves the -workers value like the pipeline does.
func poolSize(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// printJSON buffers the whole encoded document and commits it to w only
// on success, so a mid-encode failure emits the error alone instead of a
// corrupt partial JSON document followed by the error.
func printJSON(w *strings.Builder, reports []report.Report) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		return err
	}
	w.Write(buf.Bytes())
	return nil
}

func printSummary(w *strings.Builder, reports []report.Report) {
	s := report.Summarize(reports)
	causes := make([]string, 0, len(s.ByCause))
	for c := range s.ByCause {
		causes = append(causes, string(c))
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Fprintf(w, "  %-28s %d\n", c, s.ByCause[report.Cause(c)])
	}
}
