// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them in order.
//
// Usage:
//
//	experiments [-only fig3|fig4|fig8|fig9|fig10|t1|t2|t3|t4|t5|t6|t7|t8|t9|t10] [-timings]
//
// -timings appends the corpus scan's aggregate per-stage pipeline timing
// and analysis-cache rows (default output is unchanged without it).
// -cache DIR runs the corpus scan through the persistent scan cache
// (-cache-mode off|ro|rw, default rw), so a repeated invocation rescans
// the unchanged corpus from cache; the rendered tables are identical
// either way.
// -mode targeted runs the corpus scan through the demand-driven engine
// (DESIGN.md §9); the rendered tables are identical to full mode.
// -validate adds the dynamic-validation breakdown (the "val" experiment,
// DESIGN.md §10): every golden-app warning replayed under injected
// disruptions and partitioned into confirmed / unconfirmed /
// not-validated, cross-referenced against the oracle's known false
// positives. Off by default so the standard output is unchanged;
// -only val runs just the breakdown.
// -families adds the per-family precision/recall breakdown of the corpus
// scan (the "fam" experiment): every warning attributed to the checker
// family that owns its cause and graded against the generator's ground
// truth. -only fam runs just the breakdown.
// -checkers runs the corpus scan with only the selected checker families
// (e.g. -checkers=5-8), the ablation companion to -families.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (fig3, t6, …)")
	trials := flag.Int("trials", 200, "netsim trials per point (fig3)")
	timings := flag.Bool("timings", false, "print corpus-scan per-stage timing rows")
	cacheDir := flag.String("cache", "", "persistent scan-cache directory for the corpus scan (empty = no cache)")
	cacheMode := flag.String("cache-mode", "rw", "persistent-cache mode: off, ro, or rw")
	engineMode := flag.String("mode", "full", "engine mode for the corpus scan: full or targeted (identical tables)")
	validate := flag.Bool("validate", false, "add the dynamic-validation breakdown of the golden-app warnings (the val experiment)")
	families := flag.Bool("families", false, "add the per-family precision/recall breakdown of the corpus scan (the fam experiment)")
	checkerSel := flag.String("checkers", "all", "checker families for the corpus scan: all, or numbers/ranges like 5-8 (ablation)")
	flag.Parse()
	mode, err := core.ParseCacheMode(*cacheMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	emode, err := core.ParseEngineMode(*engineMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	cset, err := core.ParseCheckerSet(*checkerSel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	type exp struct {
		key    string
		needs  bool  // needs the corpus scan
		gate   *bool // nil = always; else runs only when *gate (or -only)
		render func(cs *experiments.CorpusScan) (string, error)
	}
	exps := []exp{
		{"fig3", false, nil, func(*experiments.CorpusScan) (string, error) {
			return experiments.Figure3(*trials, 1).Render(), nil
		}},
		{"t1", false, nil, func(*experiments.CorpusScan) (string, error) { return experiments.Table1().Render(), nil }},
		{"t2", false, nil, func(*experiments.CorpusScan) (string, error) { return experiments.Table2().Render(), nil }},
		{"fig4", false, nil, func(*experiments.CorpusScan) (string, error) { return experiments.Figure4().Render(), nil }},
		{"t3", false, nil, func(*experiments.CorpusScan) (string, error) { return experiments.Table3().Render(), nil }},
		{"t4", false, nil, func(*experiments.CorpusScan) (string, error) { return experiments.Table4().Render(), nil }},
		{"t5", false, nil, func(*experiments.CorpusScan) (string, error) { return experiments.Table5().Render(), nil }},
		{"t6", true, nil, func(cs *experiments.CorpusScan) (string, error) { return experiments.Table6(cs).Render(), nil }},
		{"t7", true, nil, func(cs *experiments.CorpusScan) (string, error) { return experiments.Table7(cs).Render(), nil }},
		{"t8", true, nil, func(cs *experiments.CorpusScan) (string, error) { return experiments.Table8(cs).Render(), nil }},
		{"fig8", true, nil, func(cs *experiments.CorpusScan) (string, error) { return experiments.Figure8(cs).Render(), nil }},
		{"fig9", true, nil, func(cs *experiments.CorpusScan) (string, error) { return experiments.Figure9(cs).Render(), nil }},
		{"t9", false, nil, func(*experiments.CorpusScan) (string, error) {
			r, err := experiments.Table9()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"t10", false, nil, func(*experiments.CorpusScan) (string, error) {
			r, err := experiments.Table10()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig10", false, nil, func(*experiments.CorpusScan) (string, error) {
			return experiments.Figure10(experiments.Seed).Render(), nil
		}},
		{"t9icc", false, nil, func(*experiments.CorpusScan) (string, error) {
			r, err := experiments.Table9WithICC()
			if err != nil {
				return "", err
			}
			return "[with inter-component analysis — §4.7 future work]\n" + r.Render(), nil
		}},
		{"lint", false, nil, func(*experiments.CorpusScan) (string, error) {
			r, err := experiments.LintComparison()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"dyn", false, nil, func(*experiments.CorpusScan) (string, error) {
			r, err := experiments.DynamicComparison(experiments.Seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"t11", false, nil, func(*experiments.CorpusScan) (string, error) {
			return experiments.Table11(experiments.Seed).Render(), nil
		}},
		{"val", false, validate, func(*experiments.CorpusScan) (string, error) {
			r, err := experiments.ValidationBreakdown()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fam", true, families, func(cs *experiments.CorpusScan) (string, error) {
			return experiments.FamilyBreakdown(cs).Render(), nil
		}},
	}

	var cs *experiments.CorpusScan
	needScan := *timings
	for _, e := range exps {
		if e.needs && (*only == e.key || (*only == "" && (e.gate == nil || *e.gate))) {
			needScan = true
		}
	}
	if needScan {
		fmt.Fprintf(os.Stderr, "experiments: scanning the %d-app corpus (seed %d)...\n",
			285, experiments.Seed)
		var err error
		if *cacheDir != "" || emode != core.ModeFull || cset != 0 {
			// The memoized DefaultScan is full-mode with every checker; any
			// non-default option set goes through an explicit corpus scan.
			cs, err = experiments.ScanCorpusWith(experiments.Seed, core.Options{
				CacheDir: *cacheDir, CacheMode: mode, Mode: emode, Checkers: cset,
			})
		} else {
			cs, err = experiments.DefaultScan()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		// Degraded app scans never abort the corpus; they are recorded
		// per app and flagged here so the tables are read with care.
		if n := cs.IncompleteApps(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: warning: %d of %d app scans degraded:\n", n, len(cs.Apps))
			for _, line := range cs.FailedAppNames() {
				fmt.Fprintf(os.Stderr, "experiments:   %s\n", line)
			}
		}
	}
	ran := 0
	for _, e := range exps {
		if *only != "" && *only != e.key {
			continue
		}
		// Gated experiments stay out of the default run so the standard
		// output is unchanged; their flag (-validate, -families) or naming
		// them directly via -only opts in.
		if e.gate != nil && !*e.gate && *only != e.key {
			continue
		}
		out, err := e.render(cs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.key, err)
			os.Exit(1)
		}
		fmt.Println(out)
		ran++
	}
	if ran == 0 && *only != "" {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *only)
		os.Exit(2)
	}
	if *timings {
		fmt.Println(cs.TimingRows())
	}
}
