// Command netsim runs the Figure 3 download experiment: success rates of
// downloading files of 2K–2M with the Volley default parameters over a 3G
// link at the given packet-loss rates.
//
// Usage:
//
//	netsim [-trials 200] [-seed 1] [-loss 0,0.10] [-timeout 2500] [-retries 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/netsim"
)

func main() {
	trials := flag.Int("trials", 200, "downloads per point")
	seed := flag.Int64("seed", 1, "simulation seed")
	lossList := flag.String("loss", "0,0.10", "comma-separated packet loss rates")
	timeout := flag.Float64("timeout", 2500, "client timeout in ms (0 = blocking)")
	retries := flag.Int("retries", 1, "automatic retries")
	flag.Parse()

	client := netsim.Client{TimeoutMs: *timeout, MaxRetries: *retries, BackoffMult: 1}
	sizes := netsim.FileSizes()
	fmt.Printf("download success rate, timeout=%.0fms retries=%d (%d trials/point)\n",
		*timeout, *retries, *trials)
	fmt.Printf("%-16s", "network")
	for _, s := range sizes {
		fmt.Printf("%6s", netsim.SizeLabel(s))
	}
	fmt.Println()
	for _, tok := range strings.Split(*lossList, ",") {
		loss, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: bad loss rate %q: %v\n", tok, err)
			os.Exit(2)
		}
		p := netsim.ThreeGLossy(loss)
		fmt.Printf("%-16s", p.Name)
		for i, size := range sizes {
			fmt.Printf("%6.2f", client.SuccessRate(p, size, *trials, *seed+int64(i)))
		}
		fmt.Println()
	}
}
