// Autofix demonstrates the report-driven patching loop: build a buggy
// app, scan it, apply each warning's fix suggestion mechanically, and
// re-scan until the app is warning-free — the machine analogue of the
// paper's user study (§5.4).
//
//	go run ./examples/autofix
package main

import (
	"fmt"
	"log"

	"repro/internal/apimodel"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fixer"
	"repro/internal/jimple"
)

func main() {
	// A deliberately messy app: four sites covering six NPD causes.
	spec := corpus.AppSpec{
		Package: "example.autofix",
		Sites: []corpus.SiteSpec{
			// Bare user-facing GET: conn check, timeout, retry cfg, notif missing.
			{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, UseResponse: true},
			// Background service on AsyncHttp defaults: over-retry.
			{Lib: apimodel.LibAsyncHTTP, Ctx: corpus.CtxService, ConnCheck: true, SetTimeout: true},
			// Volley request whose error callback ignores the error type.
			{Lib: apimodel.LibVolley, Ctx: corpus.CtxActivity, ConnCheck: true,
				SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true},
			// Tight retry loop.
			{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, ConnCheck: true,
				SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true, RetryLoop: true},
		},
	}
	app := corpus.MustBuild(spec)
	before := jimple.Print(app.Program)

	nc := core.New()
	res := nc.ScanApp(app)
	fmt.Printf("before: %d warnings\n", len(res.Reports))
	for i := range res.Reports {
		fmt.Printf("  - %-26s at %s\n", res.Reports[i].Cause, res.Reports[i].Location)
	}

	f := fixer.New()
	out, err := f.FixAll(app, 100)
	if err != nil {
		log.Fatalf("autofix: %v", err)
	}
	fmt.Printf("\nfixer: applied %d patches over %d scan rounds\n", out.Applied, out.Rounds)

	res = nc.ScanApp(app)
	fmt.Printf("after:  %d warnings\n", len(res.Reports))
	if err := app.Program.Validate(); err != nil {
		log.Fatalf("patched program invalid: %v", err)
	}

	after := jimple.Print(app.Program)
	fmt.Printf("\nprogram grew from %d to %d IR lines; e.g. the patched first site:\n",
		lineCount(before), lineCount(after))
	fmt.Println(firstMethodOf(app.Program, "example.autofix.Comp0"))
}

func lineCount(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}

func firstMethodOf(p *jimple.Program, cls string) string {
	c := p.Class(cls)
	if c == nil {
		return "(class not found)"
	}
	return jimple.PrintClass(c)
}
