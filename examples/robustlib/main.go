// Robustlib demonstrates the paper's §6 design guidelines as a working
// library: the same app logic written against the misuse-prone baseline
// client and against the robust reference library, run over an
// intermittent mobile network — offline windows, poor signal, invalid
// responses — with the NPD symptoms counted side by side.
//
//	go run ./examples/robustlib
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/robustlib"
)

func main() {
	fmt.Println("== §6 guidelines in action ==")
	fmt.Println()

	// A user taps "refresh" while the device is offline.
	dev := robustlib.NewDevice(netsim.ThreeGLossy(0.1), 1)
	client := robustlib.New(dev)
	dev.SetOnline(false)

	fmt.Println("-- user taps refresh while offline --")
	out := client.Do(robustlib.Request{Method: "GET", URL: "/feed", Size: 32 * 1024, Ctx: robustlib.User},
		robustlib.Handler{
			OnError: func(e *robustlib.Error) {
				fmt.Printf("error callback: [%s] %q\n", e.Kind, e.Message)
			},
		})
	fmt.Printf("radio wakeups: %d (the library checked connectivity first)\n\n", out.Attempts)

	// Background sync while offline: deferred, then recovered.
	fmt.Println("-- background sync while offline --")
	for i := 0; i < 3; i++ {
		client.Do(robustlib.Request{Method: "GET", URL: "/sync", Size: 8 * 1024, Ctx: robustlib.Background},
			robustlib.Handler{OnSuccess: func(robustlib.Response) {
				fmt.Println("sync delivered")
			}})
	}
	fmt.Printf("deferred while offline: %d requests, 0 radio wakeups\n", client.DeferredCount())
	dev.SetOnline(true)
	fmt.Println("network is back; flushing:")
	client.FlushDeferred()
	fmt.Println()

	// A POST on a terrible link: one transmission, no duplicates, typed
	// error if it fails.
	fmt.Println("-- POST /payment on a 40%-loss link --")
	dev2 := robustlib.NewDevice(netsim.ThreeGLossy(0.4), 2)
	rc := robustlib.New(dev2)
	o := rc.Do(robustlib.Request{Method: "POST", URL: "/payment", Size: 64 * 1024, Ctx: robustlib.User},
		robustlib.Handler{
			OnSuccess: func(robustlib.Response) { fmt.Println("payment accepted") },
			OnError: func(e *robustlib.Error) {
				fmt.Printf("payment failed with typed error [%s] — shown to the user, NOT retried\n", e.Kind)
			},
		})
	fmt.Printf("transmissions: %d, duplicate bodies at server: %d\n\n", o.Attempts, o.DuplicatePosts)

	// The full head-to-head workload (Table 11).
	fmt.Println(experiments.Table11(experiments.Seed).Render())
}
