// Casestudies reproduces the paper's two motivating bugs end to end:
//
//   - ChatSecure (Figure 1): a patch that checks isConnected() before
//     login() still fails when the network is available but very poor.
//     We model login over the network simulator to show the patched code
//     path still failing, then show what a timeout-aware client changes.
//
//   - Telegram (Figure 2): an aggressive reconnect loop that retries
//     every 500 ms without backoff, burning CPU/battery. We build the
//     Telegram-shaped code in the IR and show NChecker's retry-loop
//     analysis flagging it — and not flagging the backoff version.
//
//     go run ./examples/casestudies
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/core"
	"repro/internal/jimple"
	"repro/internal/netsim"
	"repro/internal/report"
)

func main() {
	chatSecure()
	fmt.Println()
	telegram()
}

// chatSecure simulates the Figure 1 patch: `if (isConnected()) login()`.
// The connectivity check passes (the network is up), but login() still
// fails under a poor-signal profile — the patch's wrong assumption.
func chatSecure() {
	fmt.Println("== ChatSecure (Figure 1): connected != usable ==")
	rng := rand.New(rand.NewSource(7))
	// Poor signal: the link is "up" (a connectivity check succeeds) but
	// loses 25% of segments.
	poor := netsim.ThreeGLossy(0.25)
	poor.Name = "3G, very poor signal"
	login := netsim.Client{TimeoutMs: 2500, MaxRetries: 0, BackoffMult: 1}
	const loginBytes = 6 * 1024 // XMPP login exchange

	attempts, failures := 200, 0
	for i := 0; i < attempts; i++ {
		// The patch's check: network is available (always true here).
		connected := true
		if !connected {
			continue
		}
		if !login.Download(poor, loginBytes, rng).Success {
			failures++
		}
	}
	fmt.Printf("patched code path (check, then login): %d/%d logins still FAIL on %s\n",
		failures, attempts, poor.Name)

	robust := netsim.Client{TimeoutMs: 8000, MaxRetries: 3, BackoffMult: 2}
	failures = 0
	for i := 0; i < attempts; i++ {
		if !robust.Download(poor, loginBytes, rng).Success {
			failures++
		}
	}
	fmt.Printf("robust client (8s timeout, 3 backoff retries):   %d/%d logins fail\n",
		failures, attempts)
	fmt.Println("=> a connectivity check alone cannot rule out login() failure;")
	fmt.Println("   the error path must be handled (the paper's point about this patch)")
}

// telegramSource models Figure 2: connect() retried in a tight loop from
// the exception handler, with the connectivity pre-check the developers
// added — which still does not stop the tight loop under a poor network.
const telegramSource = `class org.telegram.ConnectionsManager extends android.app.Service {
  method onStartCommand(android.content.Intent,int,int)int {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local client com.turbomanage.httpclient.BasicHttpClient
    local resp com.turbomanage.httpclient.HttpResponse
    local connected int
    local e java.io.IOException
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L5
    client = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke client com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke client com.turbomanage.httpclient.BasicHttpClient.setConnectionTimeout(int)void 15000
    virtualinvoke client com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 0
    connected = 0
    L0:
    if connected != 0 goto L5
    L1:
    resp = virtualinvoke client com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://dc1.telegram.org/connect"
    connected = 1
    L2:
    goto L0
    L3:
    e = caught
    connected = 0
    goto L0
    L5:
    return 0
    trap L1 L2 L3 java.io.IOException
  }
}`

func telegram() {
	fmt.Println("== Telegram (Figure 2): aggressive reconnect loop ==")
	prog := jimple.MustParse(telegramSource)
	man := &android.Manifest{Package: "org.telegram", Services: []string{"org.telegram.ConnectionsManager"}}
	man.Normalize()
	app := &apk.App{Manifest: man, Program: prog}
	res := core.New().ScanApp(app)
	fmt.Printf("NChecker identified %d customized retry loop(s), %d aggressive\n",
		res.Stats.RetryLoops, res.Stats.AggressiveRetryLoops)
	for i := range res.Reports {
		if res.Reports[i].Cause == report.CauseAggressiveRetryLoop {
			fmt.Println(res.Reports[i].Render())
		}
	}

	// The energy cost of the bug: connect() attempts made during a 30 s
	// outage. Each failed attempt costs the 1 s connect timeout plus the
	// retry interval.
	const outageMs, timeoutMs = 30000, 1000
	tight := reconnectAttempts(outageMs, timeoutMs, 500, 1)     // Figure 2: fixed 500 ms
	backoff := reconnectAttempts(outageMs, timeoutMs, 500, 2.0) // exponential backoff
	fmt.Printf("reconnect attempts during a 30s outage: tight 500ms loop = %d, exponential backoff = %d\n",
		tight, backoff)
	fmt.Println("=> each attempt wakes the radio; the tight loop is the battery-drain NPD")
}

// reconnectAttempts counts connect() calls until the outage ends, with a
// retry interval that grows by mult after each failure.
func reconnectAttempts(outageMs, timeoutMs, intervalMs, mult float64) int {
	clock, attempts, wait := 0.0, 0, intervalMs
	for clock < outageMs {
		attempts++
		clock += timeoutMs // connect() blocks until its timeout during the outage
		clock += wait
		wait *= mult
	}
	return attempts
}
