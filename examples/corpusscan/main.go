// Corpusscan generates a slice of the evaluation corpus, writes it to a
// temporary directory as APK files, scans every file from disk (the same
// path cmd/nchecker takes), and prints a Table-6-style summary — the
// miniature version of the paper's 285-app evaluation.
//
//	go run ./examples/corpusscan [-n 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/apk"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
)

func main() {
	n := flag.Int("n", 40, "number of corpus apps to scan")
	seed := flag.Int64("seed", 2016, "corpus seed")
	flag.Parse()

	apps, err := corpus.GenerateCorpus(*seed)
	if err != nil {
		log.Fatalf("corpusscan: %v", err)
	}
	if *n < len(apps) {
		apps = apps[:*n]
	}
	dir, err := os.MkdirTemp("", "nchecker-corpus-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for _, a := range apps {
		if err := apk.WriteFile(filepath.Join(dir, a.Name+".apk"), a.App); err != nil {
			log.Fatalf("write %s: %v", a.Name, err)
		}
	}
	fmt.Printf("wrote %d APKs to %s; scanning from disk...\n\n", len(apps), dir)

	nc := core.New()
	byCause := map[report.Cause]int{}
	totalWarnings, buggy, requests := 0, 0, 0
	for _, a := range apps {
		res, err := nc.ScanFile(filepath.Join(dir, a.Name+".apk"))
		if err != nil {
			log.Fatalf("scan %s: %v", a.Name, err)
		}
		requests += res.Stats.Requests
		totalWarnings += len(res.Reports)
		if len(res.Reports) > 0 {
			buggy++
		}
		for i := range res.Reports {
			byCause[res.Reports[i].Cause]++
		}
	}
	fmt.Printf("%d apps, %d network requests, %d NPD warnings, %d buggy apps (%.0f%%)\n\n",
		len(apps), requests, totalWarnings, buggy, 100*float64(buggy)/float64(len(apps)))
	causes := make([]string, 0, len(byCause))
	for c := range byCause {
		causes = append(causes, string(c))
	}
	sort.Slice(causes, func(i, j int) bool {
		return byCause[report.Cause(causes[i])] > byCause[report.Cause(causes[j])]
	})
	for _, c := range causes {
		fmt.Printf("  %-28s %4d\n", c, byCause[report.Cause(c)])
	}
}
