GO ?= go

.PHONY: check build test race bench fmt vet

check: ## gofmt + vet + build + race-enabled tests (the CI gate)
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -w cmd internal examples bench_test.go

vet:
	$(GO) vet ./...
