package callgraph

import (
	"testing"

	"repro/internal/android"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

const iccApp = `class com.icc.Launcher extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self com.icc.Launcher
    local intent android.content.Intent
    self = this com.icc.Launcher
    intent = new android.content.Intent
    virtualinvoke intent android.content.Intent.setClassName(java.lang.String)void "com.icc.Target"
    virtualinvoke self android.app.Activity.startActivity(android.content.Intent)void intent
    return
  }
}
class com.icc.Target extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    staticinvoke com.icc.Net.fetch()void
    return
  }
}
class com.icc.Broadcaster extends android.app.Activity {
  method onResume()void {
    local self com.icc.Broadcaster
    local intent android.content.Intent
    self = this com.icc.Broadcaster
    intent = new android.content.Intent
    virtualinvoke self android.app.Activity.sendBroadcast(android.content.Intent)void intent
    return
  }
}
class com.icc.ErrRecv extends android.content.BroadcastReceiver {
  method onReceive(android.content.Context,android.content.Intent)void {
    return
  }
}
class com.icc.Net extends java.lang.Object {
  method static fetch()void {
    return
  }
}`

func buildICC(t *testing.T, enable bool) *Graph {
	t.Helper()
	prog := jimple.MustParse(iccApp)
	prog.Merge(android.Framework())
	man := &android.Manifest{
		Package:    "com.icc",
		Activities: []string{"com.icc.Launcher", "com.icc.Target", "com.icc.Broadcaster"},
		Receivers:  []string{"com.icc.ErrRecv"},
	}
	man.Normalize()
	return BuildWith(hierarchy.New(prog), man, Options{EnableICC: enable})
}

func TestICCEdgesOff(t *testing.T) {
	g := buildICC(t, false)
	launcher := "com.icc.Launcher.onCreate(android.os.Bundle)void"
	for _, e := range g.OutEdges(launcher) {
		if e.Kind == EdgeICC {
			t.Fatalf("ICC edge present with EnableICC=false: %+v", e)
		}
	}
	// Target remains an independent entry.
	if !isEntry(g, "com.icc.Target.onCreate(android.os.Bundle)void") {
		t.Error("Target.onCreate should be an entry without ICC")
	}
}

func TestStartActivityEdge(t *testing.T) {
	g := buildICC(t, true)
	launcher := "com.icc.Launcher.onCreate(android.os.Bundle)void"
	found := false
	for _, e := range g.OutEdges(launcher) {
		if e.Kind == EdgeICC && e.Callee.Class == "com.icc.Target" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing ICC edge Launcher→Target; edges: %v", g.OutEdges(launcher))
	}
	// The launched activity is no longer an independent entry...
	if isEntry(g, "com.icc.Target.onCreate(android.os.Bundle)void") {
		t.Error("explicitly launched activity should not be an independent entry")
	}
	// ...but remains reachable from the launcher.
	ent := jimple.Sig{Class: "com.icc.Launcher", Name: "onCreate",
		Params: []string{android.ClassBundle}, Ret: jimple.TypeVoid}
	if !g.ReachableFrom(ent)["com.icc.Net.fetch()void"] {
		t.Error("fetch should be reachable through the ICC edge")
	}
}

func TestSendBroadcastEdge(t *testing.T) {
	g := buildICC(t, true)
	bcast := "com.icc.Broadcaster.onResume()void"
	found := false
	for _, e := range g.OutEdges(bcast) {
		if e.Kind == EdgeICC && e.Callee.Class == "com.icc.ErrRecv" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing broadcast edge to the manifest receiver; edges: %v", g.OutEdges(bcast))
	}
	// Receivers stay entries: the system can broadcast too.
	if !isEntry(g, "com.icc.ErrRecv.onReceive(android.content.Context,android.content.Intent)void") {
		t.Error("receiver should remain an entry point")
	}
}

func TestICCIgnoresUnresolvableIntents(t *testing.T) {
	src := `class com.x.A extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self com.x.A
    local intent android.content.Intent
    self = this com.x.A
    intent = new android.content.Intent
    virtualinvoke self android.app.Activity.startActivity(android.content.Intent)void intent
    return
  }
}`
	prog := jimple.MustParse(src)
	prog.Merge(android.Framework())
	g := BuildWith(hierarchy.New(prog), nil, Options{EnableICC: true})
	for _, e := range g.OutEdges("com.x.A.onCreate(android.os.Bundle)void") {
		if e.Kind == EdgeICC {
			t.Fatalf("ICC edge from an intent with no explicit target: %+v", e)
		}
	}
}

func isEntry(g *Graph, key string) bool {
	for _, e := range g.Entries() {
		if e.Method.Sig.Key() == key {
			return true
		}
	}
	return false
}
