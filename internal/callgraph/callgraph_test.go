package callgraph

import (
	"testing"

	"repro/internal/android"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

const testApp = `class com.app.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self com.app.Main
    local v android.view.View
    local l com.app.Main$Click
    self = this com.app.Main
    v = virtualinvoke self android.app.Activity.findViewById(int)android.view.View 7
    l = new com.app.Main$Click
    specialinvoke l com.app.Main$Click.<init>()void
    virtualinvoke v android.view.View.setOnClickListener(android.view.View$OnClickListener)void l
    virtualinvoke self com.app.Main.helper()void
    return
  }
  method helper()void {
    local t com.app.Main$Task
    t = new com.app.Main$Task
    specialinvoke t com.app.Main$Task.<init>()void
    virtualinvoke t android.os.AsyncTask.execute()void
    return
  }
}
class com.app.Main$Click extends java.lang.Object implements android.view.View$OnClickListener {
  method <init>()void {
    return
  }
  method onClick(android.view.View)void {
    local self com.app.Main$Click
    self = this com.app.Main$Click
    virtualinvoke self com.app.Main$Click.doWork()void
    return
  }
  method doWork()void {
    return
  }
}
class com.app.Main$Task extends android.os.AsyncTask {
  method <init>()void {
    return
  }
  method doInBackground()void {
    staticinvoke com.app.Net.fetch()void
    return
  }
  method onPostExecute()void {
    return
  }
}
class com.app.Net extends java.lang.Object {
  method static fetch()void {
    return
  }
}
class com.app.Sync extends android.app.Service {
  method onStartCommand(android.content.Intent,int,int)int {
    staticinvoke com.app.Net.fetch()void
    return 0
  }
}`

func buildGraph(t *testing.T) *Graph {
	t.Helper()
	prog := jimple.MustParse(testApp)
	prog.Merge(android.Framework())
	if err := prog.Validate(); err != nil {
		t.Fatalf("test app invalid: %v", err)
	}
	man := &android.Manifest{
		Package:    "com.app",
		Activities: []string{"com.app.Main"},
		Services:   []string{"com.app.Sync"},
	}
	man.Normalize()
	return Build(hierarchy.New(prog), man)
}

func entryKeys(g *Graph) map[string]Entry {
	out := make(map[string]Entry)
	for _, e := range g.Entries() {
		out[e.Method.Sig.Key()] = e
	}
	return out
}

func TestEntryDiscovery(t *testing.T) {
	g := buildGraph(t)
	es := entryKeys(g)
	onCreate := "com.app.Main.onCreate(android.os.Bundle)void"
	onStart := "com.app.Sync.onStartCommand(android.content.Intent,int,int)int"
	onClick := "com.app.Main$Click.onClick(android.view.View)void"
	for _, k := range []string{onCreate, onStart, onClick} {
		if _, ok := es[k]; !ok {
			t.Errorf("missing entry point %s (have %d entries)", k, len(es))
		}
	}
	if _, ok := es["com.app.Main.helper()void"]; ok {
		t.Error("helper must not be an entry point")
	}
	if e := es[onCreate]; e.Kind != android.KindActivity || !e.Declared {
		t.Errorf("onCreate entry misclassified: %+v", e)
	}
	if e := es[onStart]; e.Kind != android.KindService || !e.Declared {
		t.Errorf("onStartCommand entry misclassified: %+v", e)
	}
	// Inner listener attributes to the outer Activity.
	if e := es[onClick]; e.Kind != android.KindActivity || e.Component != "com.app.Main" {
		t.Errorf("listener entry misattributed: %+v", e)
	}
}

func TestDirectAndAsyncEdges(t *testing.T) {
	g := buildGraph(t)
	onCreateKey := "com.app.Main.onCreate(android.os.Bundle)void"
	var sawHelper, sawOnClickAsync bool
	for _, e := range g.OutEdges(onCreateKey) {
		if e.Callee.Name == "helper" && e.Kind == EdgeCall {
			sawHelper = true
		}
		if e.Callee.Name == "onClick" && e.Kind == EdgeAsync {
			sawOnClickAsync = true
		}
	}
	if !sawHelper {
		t.Error("missing direct edge onCreate→helper")
	}
	if !sawOnClickAsync {
		t.Error("missing async edge onCreate→onClick via setOnClickListener")
	}

	helperKey := "com.app.Main.helper()void"
	var sawDoInBackground, sawOnPost bool
	for _, e := range g.OutEdges(helperKey) {
		if e.Kind != EdgeAsync {
			continue
		}
		switch e.Callee.Name {
		case "doInBackground":
			sawDoInBackground = true
		case "onPostExecute":
			sawOnPost = true
		}
	}
	if !sawDoInBackground || !sawOnPost {
		t.Errorf("AsyncTask.execute edges missing: doInBackground=%v onPostExecute=%v",
			sawDoInBackground, sawOnPost)
	}
}

func TestReachability(t *testing.T) {
	g := buildGraph(t)
	onCreate := jimple.Sig{Class: "com.app.Main", Name: "onCreate", Params: []string{android.ClassBundle}, Ret: jimple.TypeVoid}
	reach := g.ReachableFrom(onCreate)
	fetchKey := "com.app.Net.fetch()void"
	if !reach[fetchKey] {
		t.Error("fetch should be reachable from onCreate via AsyncTask")
	}
	if !reach["com.app.Main$Click.doWork()void"] {
		t.Error("doWork should be reachable from onCreate via the registered listener")
	}
	entries := g.EntriesReaching(fetchKey)
	if len(entries) != 2 {
		keys := make([]string, len(entries))
		for i, e := range entries {
			keys[i] = e.Method.Sig.Key()
		}
		t.Errorf("EntriesReaching(fetch): got %v", keys)
	}
}

func TestCallStack(t *testing.T) {
	g := buildGraph(t)
	onCreate := jimple.Sig{Class: "com.app.Main", Name: "onCreate", Params: []string{android.ClassBundle}, Ret: jimple.TypeVoid}
	stack := g.CallStack(onCreate, "com.app.Net.fetch()void")
	if stack == nil {
		t.Fatal("no call stack found")
	}
	if stack[0].Method.Key() != onCreate.Key() {
		t.Errorf("stack should start at the entry, got %s", stack[0].Method.Key())
	}
	last := stack[len(stack)-1]
	if last.Method.Key() != "com.app.Net.fetch()void" || last.Site != -1 {
		t.Errorf("stack should end at the target: %+v", last)
	}
	// Path: onCreate → helper → doInBackground → fetch (4 frames).
	if len(stack) != 4 {
		keys := make([]string, len(stack))
		for i, f := range stack {
			keys[i] = f.Method.Key()
		}
		t.Errorf("stack length %d: %v", len(stack), keys)
	}
	if g.CallStack(onCreate, "no.Such.method()void") != nil {
		t.Error("unreachable target should yield nil stack")
	}
}

func TestDeclaredDispatchAblation(t *testing.T) {
	prog := jimple.MustParse(testApp)
	prog.Merge(android.Framework())
	h := hierarchy.New(prog)
	man := &android.Manifest{Package: "com.app"}
	full := BuildWith(h, man, Options{})
	decl := BuildWith(h, man, Options{DeclaredDispatchOnly: true})
	if decl.NumEdges() > full.NumEdges() {
		t.Errorf("declared-only dispatch found more edges (%d) than CHA (%d)",
			decl.NumEdges(), full.NumEdges())
	}
}

func TestGraphCounts(t *testing.T) {
	g := buildGraph(t)
	if g.NumMethods() == 0 || g.NumEdges() == 0 {
		t.Fatalf("degenerate graph: %d methods, %d edges", g.NumMethods(), g.NumEdges())
	}
	fetchKey := "com.app.Net.fetch()void"
	if len(g.InEdges(fetchKey)) != 2 {
		t.Errorf("InEdges(fetch): %v", g.InEdges(fetchKey))
	}
	if g.Method(fetchKey) == nil {
		t.Error("Method lookup failed")
	}
}
