// Package callgraph constructs a lifecycle-aware call graph for Android
// apps over the jimple IR, in the role FlowDroid plays for the real
// NChecker: it discovers framework-invoked entry points (component
// lifecycle methods and listener callbacks), resolves calls with
// class-hierarchy analysis, follows the asynchronous dispatch constructs
// apps route network work through (AsyncTask, Handler, Thread, Timer,
// listener registration), and answers the reachability and call-stack
// queries the checkers and warning reports need.
package callgraph

import (
	"sort"

	"repro/internal/android"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

// EdgeKind distinguishes how an edge was discovered.
type EdgeKind uint8

const (
	// EdgeCall is a direct invocation resolved by CHA.
	EdgeCall EdgeKind = iota
	// EdgeAsync is a framework-mediated dispatch (AsyncTask.execute →
	// doInBackground, Handler.post → run, setOnClickListener → onClick, …).
	EdgeAsync
	// EdgeICC is an inter-component communication edge (startActivity →
	// target lifecycle, sendBroadcast → receiver onReceive), produced
	// only when Options.EnableICC is set — the IccTA integration the
	// paper lists as future work (§4.7).
	EdgeICC
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeAsync:
		return "async"
	case EdgeICC:
		return "icc"
	}
	return "call"
}

// Edge is one call-graph edge, anchored at a statement in the caller.
type Edge struct {
	Caller jimple.Sig
	Site   int // statement index in the caller's body
	Callee jimple.Sig
	Kind   EdgeKind

	// callerKey/calleeKey cache the canonical Sig keys. addEdge fills them
	// from the build's intern table, so graph consumers never re-render a
	// key per edge visit. Edges constructed outside the builder (tests)
	// leave them empty; the accessors fall back to computing the key.
	callerKey string
	calleeKey string
}

// CallerKey returns e.Caller.Key() without re-rendering it for edges that
// came out of a built graph.
func (e Edge) CallerKey() string {
	if e.callerKey != "" {
		return e.callerKey
	}
	return e.Caller.Key()
}

// CalleeKey returns e.Callee.Key() without re-rendering it for edges that
// came out of a built graph.
func (e Edge) CalleeKey() string {
	if e.calleeKey != "" {
		return e.calleeKey
	}
	return e.Callee.Key()
}

// Entry is a framework-invoked entry point.
type Entry struct {
	Method *jimple.Method
	// Component is the class whose kind determines the request context;
	// for inner-class listeners this is the outer component.
	Component string
	Kind      android.ComponentKind
	// Declared reports whether the component appears in the manifest.
	Declared bool
}

// Graph is the app call graph.
type Graph struct {
	H        *hierarchy.Hierarchy
	Manifest *android.Manifest

	entries []Entry
	out     map[string][]Edge // caller Sig.Key -> outgoing edges
	in      map[string][]Edge // callee Sig.Key -> incoming edges
	methods map[string]*jimple.Method

	// intern deduplicates key strings during construction; every edge and
	// node key is allocated once per graph, not once per reference.
	intern *jimple.Interner
}

// Options tunes graph construction.
type Options struct {
	// DeclaredDispatchOnly disables the CHA subtree search, resolving
	// virtual calls against the declared type only. This is the ablation
	// baseline; it misses overrides.
	DeclaredDispatchOnly bool
	// EnableICC follows inter-component communication: startActivity
	// calls whose Intent names an explicit target class produce edges to
	// that activity's lifecycle methods (and the target stops being an
	// independent entry point), and sendBroadcast calls produce edges to
	// every manifest-declared receiver's onReceive. Off by default to
	// match the paper's published tool; turning it on removes the
	// paper's Table 9 false positives.
	EnableICC bool
}

// Build constructs the call graph of the program underlying h. manifest
// may be nil.
func Build(h *hierarchy.Hierarchy, manifest *android.Manifest) *Graph {
	return BuildWith(h, manifest, Options{})
}

// BuildWith is Build with explicit options.
func BuildWith(h *hierarchy.Hierarchy, manifest *android.Manifest, opts Options) *Graph {
	g := &Graph{
		H:        h,
		Manifest: manifest,
		out:      make(map[string][]Edge),
		in:       make(map[string][]Edge),
		methods:  make(map[string]*jimple.Method),
		intern:   jimple.NewInterner(),
	}
	prog := h.Program()
	for _, c := range prog.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				g.methods[g.intern.SigKey(m.Sig)] = m
			}
		}
	}
	g.discoverEntries()
	for _, m := range g.methods {
		g.addEdgesFrom(m, opts)
	}
	if opts.EnableICC {
		g.addICCEdges()
	}
	for _, edges := range g.out {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Site != edges[j].Site {
				return edges[i].Site < edges[j].Site
			}
			return edges[i].calleeKey < edges[j].calleeKey
		})
	}
	sort.Slice(g.entries, func(i, j int) bool {
		return g.intern.SigKey(g.entries[i].Method.Sig) < g.intern.SigKey(g.entries[j].Method.Sig)
	})
	g.intern = nil // construction done; release the table
	return g
}

func (g *Graph) discoverEntries() {
	prog := g.H.Program()
	for _, c := range prog.Classes() {
		if !hasConcreteMethod(c) {
			continue
		}
		seen := make(map[string]bool)
		add := func(m *jimple.Method) {
			if m == nil || !m.HasBody() || m.Sig.Class != c.Name {
				return
			}
			mk := g.intern.SigKey(m.Sig)
			if seen[mk] {
				return
			}
			seen[mk] = true
			comp := jimple.OuterClass(c.Name)
			kind := android.KindOf(g.H, c.Name)
			declared := false
			if g.Manifest != nil {
				declared = g.Manifest.DeclaresActivity(comp) ||
					g.Manifest.DeclaresService(comp) ||
					g.Manifest.DeclaresReceiver(comp)
			}
			g.entries = append(g.entries, Entry{Method: m, Component: comp, Kind: kind, Declared: declared})
		}
		for _, base := range android.ComponentBases() {
			if !g.H.IsSubtype(c.Name, base) {
				continue
			}
			for _, sub := range android.LifecycleSubsigs(base) {
				add(c.Method(sub))
			}
		}
		for _, iface := range android.ListenerIfaces() {
			if !g.H.IsSubtype(c.Name, iface) {
				continue
			}
			for _, sub := range android.ListenerSubsigs(iface) {
				add(c.Method(sub))
			}
		}
	}
}

func hasConcreteMethod(c *jimple.Class) bool {
	for _, m := range c.Methods {
		if m.HasBody() {
			return true
		}
	}
	return false
}

func (g *Graph) addEdgesFrom(m *jimple.Method, opts Options) {
	for i, s := range m.Body {
		inv, ok := jimple.InvokeOf(s)
		if !ok {
			continue
		}
		var targets []*jimple.Method
		if opts.DeclaredDispatchOnly {
			targets = g.H.DeclaredDispatch(inv)
		} else {
			targets = g.H.Dispatch(inv)
		}
		for _, t := range targets {
			g.addEdge(Edge{Caller: m.Sig, Site: i, Callee: t.Sig, Kind: EdgeCall})
		}
		g.addAsyncEdges(m, i, inv)
	}
}

// addAsyncEdges consults the framework async-dispatch table: a call like
// task.execute() or handler.post(r) creates edges to the callbacks defined
// on the dispatch target's declared type.
func (g *Graph) addAsyncEdges(m *jimple.Method, site int, inv jimple.InvokeExpr) {
	invSub := g.intern.SubSigKey(inv.Callee)
	for _, d := range android.AsyncDispatches() {
		if invSub != d.TriggerSubsig {
			continue
		}
		if !g.H.IsSubtype(inv.Callee.Class, d.TriggerClass) &&
			!g.H.IsSubtype(d.TriggerClass, inv.Callee.Class) {
			continue
		}
		targetType := g.asyncTargetType(m, inv, d.ArgIndex)
		if targetType == "" {
			continue
		}
		for _, sub := range d.CalleeSubsigs {
			cb := g.H.LookupMethod(targetType, sub)
			if cb == nil || !cb.HasBody() {
				// The declared type may be abstract; search subtypes.
				for _, st := range g.H.SubtypesOf(targetType) {
					if c := g.H.Program().Class(st); c != nil {
						if cm := c.Method(sub); cm != nil && cm.HasBody() {
							cb = cm
							break
						}
					}
				}
			}
			if cb != nil && cb.HasBody() {
				g.addEdge(Edge{Caller: m.Sig, Site: site, Callee: cb.Sig, Kind: EdgeAsync})
			}
		}
	}
}

func (g *Graph) asyncTargetType(m *jimple.Method, inv jimple.InvokeExpr, argIndex int) string {
	var name string
	if argIndex < 0 {
		name = inv.Base
	} else {
		if argIndex >= len(inv.Args) {
			return ""
		}
		l, ok := inv.Args[argIndex].(jimple.Local)
		if !ok {
			return ""
		}
		name = l.Name
	}
	return m.LocalType(name)
}

func (g *Graph) addEdge(e Edge) {
	e.callerKey = g.intern.SigKey(e.Caller)
	e.calleeKey = g.intern.SigKey(e.Callee)
	for _, prev := range g.out[e.callerKey] {
		if prev.Site == e.Site && prev.Kind == e.Kind && prev.calleeKey == e.calleeKey {
			return
		}
	}
	g.out[e.callerKey] = append(g.out[e.callerKey], e)
	g.in[e.calleeKey] = append(g.in[e.calleeKey], e)
}

// Entries returns the discovered entry points (sorted by signature).
func (g *Graph) Entries() []Entry { return g.entries }

// Method returns the body-bearing method with the given signature key.
func (g *Graph) Method(key string) *jimple.Method { return g.methods[key] }

// NumMethods returns the count of body-bearing methods.
func (g *Graph) NumMethods() int { return len(g.methods) }

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// OutEdges returns the outgoing edges of the method with signature key.
func (g *Graph) OutEdges(key string) []Edge { return g.out[key] }

// InEdges returns the incoming edges of the method with signature key.
func (g *Graph) InEdges(key string) []Edge { return g.in[key] }

// ReachableFrom returns the set of method keys reachable from start
// (inclusive).
func (g *Graph) ReachableFrom(start jimple.Sig) map[string]bool {
	k0 := start.Key()
	seen := map[string]bool{k0: true}
	stack := []string{k0}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[k] {
			tk := e.CalleeKey()
			if !seen[tk] {
				seen[tk] = true
				stack = append(stack, tk)
			}
		}
	}
	return seen
}

// EntriesReaching returns the entry points from which the method with the
// given signature key is reachable.
func (g *Graph) EntriesReaching(targetKey string) []Entry {
	var out []Entry
	for _, e := range g.entries {
		if g.ReachableFrom(e.Method.Sig)[targetKey] {
			out = append(out, e)
		}
	}
	return out
}

// Frame is one element of a call stack: a method and the statement index
// of the call site within it (or -1 for the innermost frame).
type Frame struct {
	Method jimple.Sig
	Site   int
}

// CallStack returns a shortest entry→target path as a stack of frames,
// outermost first; nil if the target is unreachable from entry. The final
// frame is the target method itself with Site = -1.
func (g *Graph) CallStack(entry jimple.Sig, targetKey string) []Frame {
	type step struct {
		key  string
		prev int // index into visited order
		via  Edge
	}
	startKey := entry.Key()
	if startKey == targetKey {
		return []Frame{{Method: entry, Site: -1}}
	}
	visited := []step{{key: startKey, prev: -1}}
	index := map[string]int{startKey: 0}
	for qi := 0; qi < len(visited); qi++ {
		cur := visited[qi]
		for _, e := range g.out[cur.key] {
			tk := e.CalleeKey()
			if _, seen := index[tk]; seen {
				continue
			}
			index[tk] = len(visited)
			visited = append(visited, step{key: tk, prev: qi, via: e})
			if tk == targetKey {
				// Reconstruct.
				var rev []Frame
				i := len(visited) - 1
				rev = append(rev, Frame{Method: visited[i].via.Callee, Site: -1})
				for i >= 0 && visited[i].prev >= 0 {
					rev = append(rev, Frame{Method: visited[i].via.Caller, Site: visited[i].via.Site})
					i = visited[i].prev
				}
				// Reverse to outermost-first.
				for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
					rev[a], rev[b] = rev[b], rev[a]
				}
				return rev
			}
		}
	}
	return nil
}
