package callgraph

import (
	"sort"

	"repro/internal/android"
	"repro/internal/jimple"
)

// addICCEdges implements the inter-component analysis the paper defers to
// IccTA (§4.7):
//
//   - startActivity(intent): when the Intent's target class is statically
//     known (a setClassName call with a string constant on an alias of
//     the argument), edges are added to the target activity's lifecycle
//     methods, and the target stops being an independent entry point —
//     control provably flows from the launcher.
//   - sendBroadcast(intent): edges to every manifest-declared broadcast
//     receiver's onReceive (intent filters are not modeled; the manifest
//     set is the sound over-approximation).
func (g *Graph) addICCEdges() {
	launchedActivities := make(map[string]bool)
	methodKeys := make([]string, 0, len(g.methods))
	for k := range g.methods {
		methodKeys = append(methodKeys, k)
	}
	sort.Strings(methodKeys)
	for _, mk := range methodKeys {
		m := g.methods[mk]
		for i, s := range m.Body {
			inv, ok := jimple.InvokeOf(s)
			if !ok {
				continue
			}
			switch inv.Callee.SubSigKey() {
			case "startActivity(android.content.Intent)void":
				target := g.intentTarget(m, inv)
				if target == "" {
					continue
				}
				if g.addLifecycleEdges(m, i, target, android.ClassActivity) {
					launchedActivities[target] = true
				}
			case "sendBroadcast(android.content.Intent)void":
				if g.Manifest == nil {
					continue
				}
				for _, recv := range g.Manifest.Receivers {
					g.addLifecycleEdges(m, i, recv, android.ClassBroadcastReceiver)
				}
			}
		}
	}
	if len(launchedActivities) == 0 {
		return
	}
	// Explicitly launched activities are no longer independent entries:
	// their facts flow in from the launcher.
	kept := g.entries[:0]
	for _, e := range g.entries {
		if launchedActivities[e.Method.Sig.Class] && e.Kind == android.KindActivity {
			continue
		}
		kept = append(kept, e)
	}
	g.entries = kept
}

// intentTarget resolves the explicit class name set on the Intent passed
// to an ICC call: it scans the method for setClassName invocations whose
// receiver is the same local as the ICC call's argument and whose first
// argument is a string constant.
func (g *Graph) intentTarget(m *jimple.Method, inv jimple.InvokeExpr) string {
	if len(inv.Args) == 0 {
		return ""
	}
	arg, ok := inv.Args[0].(jimple.Local)
	if !ok {
		return ""
	}
	for _, s := range m.Body {
		call, isInv := jimple.InvokeOf(s)
		if !isInv || call.Base != arg.Name || call.Callee.Name != "setClassName" {
			continue
		}
		if len(call.Args) == 1 {
			if sc, isStr := call.Args[0].(jimple.StrConst); isStr {
				return sc.V
			}
		}
	}
	return ""
}

// addLifecycleEdges links a call site to the body-bearing lifecycle
// methods of the target component class; it reports whether any edge was
// added.
func (g *Graph) addLifecycleEdges(caller *jimple.Method, site int, target, base string) bool {
	cls := g.H.Program().Class(target)
	if cls == nil || !g.H.IsSubtype(target, base) {
		return false
	}
	added := false
	for _, sub := range android.LifecycleSubsigs(base) {
		cb := cls.Method(sub)
		if cb == nil || !cb.HasBody() {
			continue
		}
		g.addEdge(Edge{Caller: caller.Sig, Site: site, Callee: cb.Sig, Kind: EdgeICC})
		added = true
	}
	return added
}
