package fixer

import (
	"testing"

	"repro/internal/apimodel"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
)

// TestUserStudyFixesEliminateWarnings replays the paper's user study
// mechanically: each Table 10 app is scanned, the reported NPD's fix is
// applied, and a re-scan must show the named warning gone.
func TestUserStudyFixesEliminateWarnings(t *testing.T) {
	nc := core.New()
	for _, ua := range corpus.UserStudySpecs() {
		ua := ua
		t.Run(ua.Name, func(t *testing.T) {
			app := corpus.MustBuild(ua.Spec)
			before := nc.ScanApp(app)
			if len(before.Reports) == 0 {
				t.Fatal("study app has no warnings to fix")
			}
			f := New()
			out, err := f.FixAll(app, 50)
			if err != nil {
				t.Fatalf("FixAll: %v", err)
			}
			if out.Remaining != 0 {
				after := nc.ScanApp(app)
				t.Fatalf("warnings remain after fixing: %d (%v)", out.Remaining, causesOf(after))
			}
			if out.Applied == 0 {
				t.Error("no fixes applied")
			}
		})
	}
}

func causesOf(res *core.Result) []report.Cause {
	out := make([]report.Cause, len(res.Reports))
	for i := range res.Reports {
		out[i] = res.Reports[i].Cause
	}
	return out
}

// TestFixAllDrivesGoldenToZero fixes a whole golden app (including the
// false-positive shapes — inserting a redundant check is harmless).
func TestFixAllDrivesGoldenToZero(t *testing.T) {
	for _, g := range corpus.GoldenSpecs()[:4] {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			app := corpus.MustBuild(g.Spec)
			f := New()
			out, err := f.FixAll(app, 400)
			if err != nil {
				t.Fatalf("FixAll: %v", err)
			}
			if out.Remaining != 0 {
				t.Errorf("golden %s: %d warnings remain after %d fixes", g.Name, out.Remaining, out.Applied)
			}
			if err := app.Program.Validate(); err != nil {
				t.Errorf("fixed program invalid: %v", err)
			}
		})
	}
}

// TestEachCauseFixable exercises one fix per cause.
func TestEachCauseFixable(t *testing.T) {
	specs := map[report.Cause]corpus.SiteSpec{
		report.CauseNoConnectivityCheck: {Lib: libBasic(), Ctx: corpus.CtxActivity,
			SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true},
		report.CauseNoTimeout: {Lib: libBasic(), Ctx: corpus.CtxActivity,
			ConnCheck: true, SetRetry: true, RetryCount: 1, Notify: true},
		report.CauseNoRetryConfig: {Lib: libBasic(), Ctx: corpus.CtxActivity,
			ConnCheck: true, SetTimeout: true, Notify: true},
		report.CauseNoRetryTimeSensitive: {Lib: libBasic(), Ctx: corpus.CtxActivity,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 0, Notify: true},
		report.CauseOverRetryService: {Lib: libBasic(), Ctx: corpus.CtxService,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 3},
		report.CauseOverRetryPost: {Lib: libBasic(), Ctx: corpus.CtxActivity, Post: true,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 3, Notify: true},
		report.CauseNoFailureNotification: {Lib: libBasic(), Ctx: corpus.CtxActivity,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1},
		report.CauseNoResponseCheck: {Lib: libBasic(), Ctx: corpus.CtxActivity,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true,
			UseResponse: true},
		report.CauseAggressiveRetryLoop: {Lib: libBasic(), Ctx: corpus.CtxActivity,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true,
			RetryLoop: true},
	}
	nc := core.New()
	for cause, site := range specs {
		cause, site := cause, site
		t.Run(string(cause), func(t *testing.T) {
			app := corpus.MustBuild(corpus.AppSpec{Package: "fix.one", Sites: []corpus.SiteSpec{site}})
			res := nc.ScanApp(app)
			var target *report.Report
			for i := range res.Reports {
				if res.Reports[i].Cause == cause {
					target = &res.Reports[i]
					break
				}
			}
			if target == nil {
				t.Fatalf("cause %s not present before fixing: %v", cause, causesOf(res))
			}
			f := New()
			if err := f.Apply(app, target); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			after := nc.ScanApp(app)
			for i := range after.Reports {
				if after.Reports[i].Cause == cause {
					t.Fatalf("cause %s still reported after fix: %v", cause, causesOf(after))
				}
			}
		})
	}
}

func TestErrorTypeFix(t *testing.T) {
	site := corpus.SiteSpec{Lib: libVolley(), Ctx: corpus.CtxActivity,
		ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true}
	app := corpus.MustBuild(corpus.AppSpec{Package: "fix.et", Sites: []corpus.SiteSpec{site}})
	nc := core.New()
	res := nc.ScanApp(app)
	var target *report.Report
	for i := range res.Reports {
		if res.Reports[i].Cause == report.CauseNoErrorTypeCheck {
			target = &res.Reports[i]
		}
	}
	if target == nil {
		t.Fatalf("no error-type warning: %v", causesOf(res))
	}
	if err := New().Apply(app, target); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	after := nc.ScanApp(app)
	for i := range after.Reports {
		if after.Reports[i].Cause == report.CauseNoErrorTypeCheck {
			t.Fatalf("error-type warning persists: %v", causesOf(after))
		}
	}
}

func TestApplyRejectsUnknownLocation(t *testing.T) {
	app := corpus.MustBuild(corpus.AppSpec{Package: "fix.bad", Sites: []corpus.SiteSpec{
		{Lib: libBasic(), Ctx: corpus.CtxActivity},
	}})
	r := &report.Report{Cause: report.CauseNoTimeout}
	if err := New().Apply(app, r); err == nil {
		t.Error("empty location accepted")
	}
}

func libBasic() apimodel.LibKey  { return apimodel.LibBasic }
func libVolley() apimodel.LibKey { return apimodel.LibVolley }

// TestFixAllConvergesOnGeneratedApps: property — for a sample of
// generated corpus apps, FixAll drives every warning to zero and leaves a
// valid program.
func TestFixAllConvergesOnGeneratedApps(t *testing.T) {
	apps, err := corpus.GenerateCorpus(99)
	if err != nil {
		t.Fatal(err)
	}
	nc := core.New()
	tested := 0
	for i := corpus.NumGoldens; i < len(apps) && tested < 8; i += 37 {
		a := apps[i]
		before := nc.ScanApp(a.App)
		if len(before.Reports) == 0 {
			continue
		}
		tested++
		f := New()
		out, err := f.FixAll(a.App, 600)
		if err != nil {
			t.Errorf("%s: FixAll: %v", a.Name, err)
			continue
		}
		if out.Remaining != 0 {
			after := nc.ScanApp(a.App)
			t.Errorf("%s: %d warnings remain (%v)", a.Name, out.Remaining, causesOf(after))
		}
		if err := a.App.Program.Validate(); err != nil {
			t.Errorf("%s: patched program invalid: %v", a.Name, err)
		}
	}
	if tested == 0 {
		t.Fatal("no buggy apps sampled")
	}
}
