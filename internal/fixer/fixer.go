// Package fixer applies NChecker's fix suggestions mechanically: given a
// warning report, it patches the app's IR the way the paper's user-study
// volunteers patched source code (§5.4, Table 10) — inserting connectivity
// guards, timeout and retry config calls, failure notifications,
// error-type inspection, response null checks, and retry-loop backoff —
// and the caller re-scans to verify the warning disappears. A fix that
// survives a re-scan is machine-checked evidence that the report is
// actionable, which is the property the paper's user study measures in
// human time.
package fixer

import (
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/core"
	"repro/internal/jimple"
	"repro/internal/report"
)

// Fixer patches apps according to warning reports.
type Fixer struct {
	reg     *apimodel.Registry
	counter int
}

// New returns a Fixer over the standard library annotations.
func New() *Fixer {
	return &Fixer{reg: apimodel.NewRegistry()}
}

// Apply patches the app in place to address r. It returns an error when
// the report cannot be located or the cause has no mechanical fix.
func (f *Fixer) Apply(app *apk.App, r *report.Report) error {
	m := app.Program.Method(r.Location.Method)
	if m == nil || !m.HasBody() {
		return fmt.Errorf("fixer: method %s not found", r.Location.Method.Key())
	}
	if r.Location.Stmt < 0 || r.Location.Stmt > len(m.Body) {
		return fmt.Errorf("fixer: statement %d out of range in %s", r.Location.Stmt, r.Location.Method.Key())
	}
	var err error
	switch r.Cause {
	case report.CauseNoConnectivityCheck:
		err = f.fixConnCheck(m, r)
	case report.CauseNoTimeout:
		err = f.fixTimeout(m, r)
	case report.CauseNoRetryConfig:
		count := 0
		if r.Context.UserInitiated && r.Context.HTTPMethod != "POST" {
			count = 2
		}
		err = f.fixRetry(m, r, count)
	case report.CauseNoRetryTimeSensitive:
		err = f.fixRetry(m, r, 2)
	case report.CauseOverRetryService, report.CauseOverRetryPost:
		err = f.fixRetry(m, r, 0)
	case report.CauseNoFailureNotification:
		err = f.fixNotification(m, r)
	case report.CauseNoErrorTypeCheck:
		err = f.fixErrorType(m)
	case report.CauseNoResponseCheck:
		err = f.fixResponseCheck(m, r)
	case report.CauseAggressiveRetryLoop, report.CauseRetryStorm:
		// Both loop defects have the same cure: backoff on the failure path.
		err = f.fixRetryLoopBackoff(m, r)
	case report.CauseStaleConnectivityCheck:
		// Re-checking right at the request supersedes the stale check: the
		// adjacent check is fresh, so the checker's all-dominating-checks-
		// stale condition no longer holds.
		err = f.fixConnCheck(m, r)
	case report.CauseCleartextEndpoint:
		err = f.fixCleartextURL(m)
	case report.CauseHardcodedIPEndpoint:
		err = f.fixHardcodedIP(m)
	case report.CauseOfflineStateNoRecovery:
		err = f.fixOfflineRecovery(m)
	default:
		err = fmt.Errorf("fixer: no mechanical fix for cause %s", r.Cause)
	}
	if err != nil {
		return err
	}
	if verr := app.Program.Validate(); verr != nil {
		return fmt.Errorf("fixer: fix for %s broke the program: %w", r.Cause, verr)
	}
	return nil
}

// Outcome summarizes a FixAll run.
type Outcome struct {
	Rounds  int
	Applied int
	// Remaining warnings after the final scan.
	Remaining int
	// Unfixable counts reports Apply refused.
	Unfixable int
}

// FixAll repeatedly scans and patches until the app is warning-free or no
// progress is possible (at most maxRounds scan/fix cycles).
func (f *Fixer) FixAll(app *apk.App, maxRounds int) (Outcome, error) {
	nc := core.New()
	var out Outcome
	for round := 0; round < maxRounds; round++ {
		res := nc.ScanApp(app)
		out.Remaining = len(res.Reports)
		if len(res.Reports) == 0 {
			return out, nil
		}
		out.Rounds++
		progress := false
		for i := range res.Reports {
			if err := f.Apply(app, &res.Reports[i]); err != nil {
				out.Unfixable++
				continue
			}
			out.Applied++
			progress = true
			// Re-scan after each batch member could invalidate later
			// locations; conservatively restart the round after the
			// first successful fix.
			break
		}
		if !progress {
			return out, fmt.Errorf("fixer: no applicable fix among %d warnings", len(res.Reports))
		}
	}
	res := nc.ScanApp(app)
	out.Remaining = len(res.Reports)
	return out, nil
}

// fresh returns a unique local name with the given stem.
func (f *Fixer) fresh(stem string) string {
	f.counter++
	return fmt.Sprintf("fx%s%d", stem, f.counter)
}

// insertStmts splices stmts into m.Body at index at, declaring locals and
// shifting branch targets and trap ranges.
func insertStmts(m *jimple.Method, at int, locals []jimple.LocalDecl, stmts []jimple.Stmt) {
	n := len(stmts)
	shift := func(t int) int {
		if t >= at {
			return t + n
		}
		return t
	}
	for _, s := range m.Body {
		switch s := s.(type) {
		case *jimple.IfStmt:
			s.Target = shift(s.Target)
		case *jimple.GotoStmt:
			s.Target = shift(s.Target)
		}
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *jimple.IfStmt:
			s.Target = shift(s.Target)
		case *jimple.GotoStmt:
			s.Target = shift(s.Target)
		}
	}
	for i := range m.Traps {
		m.Traps[i].Begin = shift(m.Traps[i].Begin)
		m.Traps[i].End = shift(m.Traps[i].End)
		m.Traps[i].Handler = shift(m.Traps[i].Handler)
	}
	body := make([]jimple.Stmt, 0, len(m.Body)+n)
	body = append(body, m.Body[:at]...)
	body = append(body, stmts...)
	body = append(body, m.Body[at:]...)
	m.Body = body
	m.Locals = append(m.Locals, locals...)
}

// fixConnCheck inserts a connectivity check and an offline guard before
// the flagged request.
func (f *Fixer) fixConnCheck(m *jimple.Method, r *report.Report) error {
	at := r.Location.Stmt
	cm := f.fresh("cm")
	ni := f.fresh("ni")
	locals := []jimple.LocalDecl{
		{Name: cm, Type: android.ClassConnectivityMgr},
		{Name: ni, Type: android.ClassNetworkInfo},
	}
	// Guard jumps to the method's final statement (the return emitted by
	// the generator and by compilers alike).
	guardTarget := len(m.Body) - 1
	stmts := []jimple.Stmt{
		&jimple.AssignStmt{LHS: jimple.Local{Name: cm}, RHS: jimple.NewExpr{Type: android.ClassConnectivityMgr}},
		&jimple.AssignStmt{
			LHS: jimple.Local{Name: ni},
			RHS: jimple.InvokeExpr{Kind: jimple.InvokeVirtual, Base: cm,
				Callee: jimple.Sig{Class: android.ClassConnectivityMgr, Name: "getActiveNetworkInfo",
					Ret: android.ClassNetworkInfo}},
		},
		&jimple.IfStmt{
			Cond:   jimple.BinExpr{Op: jimple.OpEQ, L: jimple.Local{Name: ni}, R: jimple.NullConst{}},
			Target: guardTarget,
		},
	}
	insertStmts(m, at, locals, stmts)
	return nil
}

// configObjectAt resolves the config-object local of the request at stmt.
func (f *Fixer) configObjectAt(m *jimple.Method, stmt int) (string, *apimodel.Library, error) {
	if stmt >= len(m.Body) {
		return "", nil, fmt.Errorf("fixer: no statement at %d", stmt)
	}
	inv, ok := jimple.InvokeOf(m.Body[stmt])
	if !ok {
		return "", nil, fmt.Errorf("fixer: statement %d is not a request", stmt)
	}
	lib, target, isTarget := f.reg.TargetOf(inv.Callee)
	if !isTarget {
		return "", nil, fmt.Errorf("fixer: statement %d does not invoke a target API", stmt)
	}
	if target.ConfigObjArg < 0 {
		return inv.Base, lib, nil
	}
	if target.ConfigObjArg < len(inv.Args) {
		if l, isLocal := inv.Args[target.ConfigObjArg].(jimple.Local); isLocal {
			return l.Name, lib, nil
		}
	}
	return "", nil, fmt.Errorf("fixer: cannot resolve the config object at %d", stmt)
}

// fixTimeout inserts the library's timeout config call before the request.
func (f *Fixer) fixTimeout(m *jimple.Method, r *report.Report) error {
	obj, lib, err := f.configObjectAt(m, r.Location.Stmt)
	if err != nil {
		return err
	}
	for _, cfg := range lib.Configs {
		if cfg.Kind == apimodel.ConfigTimeout && len(cfg.Sig.Params) == 1 && cfg.Sig.Params[0] == "int" {
			call := &jimple.InvokeStmt{Call: jimple.InvokeExpr{
				Kind: jimple.InvokeVirtual, Base: obj, Callee: cfg.Sig,
				Args: []jimple.Value{jimple.IntConst{V: 5000}},
			}}
			insertStmts(m, r.Location.Stmt, nil, []jimple.Stmt{call})
			return nil
		}
	}
	return fmt.Errorf("fixer: %s has no int timeout config API", lib.Name)
}

// fixRetry sets the retry count to `count`, rewriting an existing retry
// config call or inserting a new one. For Android Async HTTP it also adds
// allowRetryExceptionClass, the API the paper's user study found hardest.
func (f *Fixer) fixRetry(m *jimple.Method, r *report.Report, count int) error {
	obj, lib, err := f.configObjectAt(m, r.Location.Stmt)
	if err != nil {
		return err
	}
	// Rewrite an existing countable retry call on the same object.
	for i := 0; i < r.Location.Stmt; i++ {
		inv, ok := jimple.InvokeOf(m.Body[i])
		if !ok || inv.Base != obj {
			continue
		}
		if _, cfg, isCfg := f.reg.ConfigOf(inv.Callee); isCfg && cfg.Kind == apimodel.ConfigRetry && cfg.CountArg >= 0 {
			inv.Args[cfg.CountArg] = jimple.IntConst{V: int64(count)}
			switch s := m.Body[i].(type) {
			case *jimple.InvokeStmt:
				s.Call = inv
			case *jimple.AssignStmt:
				s.RHS = inv
			}
			return nil
		}
	}
	var stmts []jimple.Stmt
	for _, cfg := range lib.Configs {
		if cfg.Kind != apimodel.ConfigRetry || cfg.CountArg < 0 {
			continue
		}
		args := make([]jimple.Value, len(cfg.Sig.Params))
		for ai := range args {
			args[ai] = jimple.IntConst{V: 20000} // secondary int params (timeouts)
		}
		args[cfg.CountArg] = jimple.IntConst{V: int64(count)}
		stmts = append(stmts, &jimple.InvokeStmt{Call: jimple.InvokeExpr{
			Kind: jimple.InvokeVirtual, Base: obj, Callee: cfg.Sig, Args: args,
		}})
		break
	}
	if stmts == nil {
		return fmt.Errorf("fixer: %s has no countable retry config API", lib.Name)
	}
	if lib.Key == apimodel.LibAsyncHTTP && count > 0 {
		stmts = append(stmts, &jimple.InvokeStmt{Call: jimple.InvokeExpr{
			Kind: jimple.InvokeVirtual, Base: obj,
			Callee: jimple.Sig{Class: apimodel.ClassAsyncClient, Name: "allowRetryExceptionClass",
				Params: []string{"java.lang.Class"}, Ret: jimple.TypeVoid},
			Args: []jimple.Value{jimple.NullConst{}},
		}})
	}
	insertStmts(m, r.Location.Stmt, nil, stmts)
	return nil
}

// fixNotification inserts a Toast at the report location (the error
// callback for explicit-callback libraries, the request site otherwise).
func (f *Fixer) fixNotification(m *jimple.Method, r *report.Report) error {
	toast := f.fresh("toast")
	locals := []jimple.LocalDecl{{Name: toast, Type: android.ClassToast}}
	stmts := []jimple.Stmt{
		&jimple.AssignStmt{LHS: jimple.Local{Name: toast}, RHS: jimple.NewExpr{Type: android.ClassToast}},
		&jimple.InvokeStmt{Call: jimple.InvokeExpr{
			Kind: jimple.InvokeVirtual, Base: toast,
			Callee: jimple.Sig{Class: android.ClassToast, Name: "show", Ret: jimple.TypeVoid},
		}},
	}
	at := r.Location.Stmt
	if at >= len(m.Body) {
		at = len(m.Body) - 1
	}
	insertStmts(m, at, locals, stmts)
	return nil
}

// fixErrorType inserts an instanceof inspection of the error callback's
// parameter.
func (f *Fixer) fixErrorType(m *jimple.Method) error {
	// Find the identity assignment of the error parameter.
	for i, s := range m.Body {
		asg, ok := s.(*jimple.AssignStmt)
		if !ok {
			continue
		}
		if _, isParam := asg.RHS.(jimple.ParamRef); !isParam {
			continue
		}
		errLocal, isLocal := asg.LHS.(jimple.Local)
		if !isLocal {
			continue
		}
		probe := f.fresh("isNoConn")
		locals := []jimple.LocalDecl{{Name: probe, Type: jimple.TypeBoolean}}
		stmts := []jimple.Stmt{&jimple.AssignStmt{
			LHS: jimple.Local{Name: probe},
			RHS: jimple.InstanceOfExpr{Type: apimodel.ClassVolleyNoConn, V: errLocal},
		}}
		insertStmts(m, i+1, locals, stmts)
		return nil
	}
	return fmt.Errorf("fixer: %s has no error parameter to inspect", m.Sig.Key())
}

// fixResponseCheck guards the flagged response use with a null check that
// skips past it.
func (f *Fixer) fixResponseCheck(m *jimple.Method, r *report.Report) error {
	use := r.Location.Stmt
	if use >= len(m.Body) {
		return fmt.Errorf("fixer: response use out of range")
	}
	inv, ok := jimple.InvokeOf(m.Body[use])
	if !ok || inv.Base == "" {
		return fmt.Errorf("fixer: statement %d is not a response use", use)
	}
	guard := &jimple.IfStmt{
		Cond: jimple.BinExpr{Op: jimple.OpEQ,
			L: jimple.Local{Name: inv.Base}, R: jimple.NullConst{}},
		Target: use + 1, // past the use once the guard is inserted
	}
	insertStmts(m, use, nil, []jimple.Stmt{guard})
	return nil
}

// rewriteStringConstants maps rw over every string constant in m's body
// (including operands of concatenations and invoke arguments); it reports
// whether anything changed.
func rewriteStringConstants(m *jimple.Method, rw func(string) (string, bool)) bool {
	changed := false
	var val func(v jimple.Value) jimple.Value
	val = func(v jimple.Value) jimple.Value {
		switch v := v.(type) {
		case jimple.StrConst:
			if nv, ok := rw(v.V); ok {
				changed = true
				return jimple.StrConst{V: nv}
			}
		case jimple.BinExpr:
			v.L = val(v.L)
			v.R = val(v.R)
			return v
		case jimple.CastExpr:
			v.V = val(v.V)
			return v
		case jimple.InvokeExpr:
			for i := range v.Args {
				v.Args[i] = val(v.Args[i])
			}
			return v
		}
		return v
	}
	for _, s := range m.Body {
		switch s := s.(type) {
		case *jimple.AssignStmt:
			s.RHS = val(s.RHS)
		case *jimple.InvokeStmt:
			s.Call = val(s.Call).(jimple.InvokeExpr)
		}
	}
	return changed
}

// urlHost extracts the host of a URL or URL prefix: scheme and userinfo
// stripped, cut at the first path/query separator or port.
func urlHost(s string) string {
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.LastIndex(s, "@"); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.Index(s, ":"); i >= 0 {
		s = s[:i]
	}
	return s
}

// isIPv4 reports whether s is a dotted-quad IPv4 literal.
func isIPv4(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		n := 0
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
			n = n*10 + int(c-'0')
		}
		if n > 255 {
			return false
		}
	}
	return true
}

// fixCleartextURL upgrades every http:// string constant in the method to
// https:// — the mechanical cure for a cleartext endpoint.
func (f *Fixer) fixCleartextURL(m *jimple.Method) error {
	ok := rewriteStringConstants(m, func(s string) (string, bool) {
		if strings.HasPrefix(s, "http://") {
			return "https://" + s[len("http://"):], true
		}
		return s, false
	})
	if !ok {
		return fmt.Errorf("fixer: %s has no http:// constant to upgrade", m.Sig.Key())
	}
	return nil
}

// fixHardcodedIP replaces IP-literal hosts in the method's URL constants
// with a resolvable hostname.
func (f *Fixer) fixHardcodedIP(m *jimple.Method) error {
	ok := rewriteStringConstants(m, func(s string) (string, bool) {
		host := urlHost(s)
		if host == "" || !isIPv4(host) {
			return s, false
		}
		return strings.Replace(s, host, "api.example.com", 1), true
	})
	if !ok {
		return fmt.Errorf("fixer: %s has no IP-literal URL constant", m.Sig.Key())
	}
	return nil
}

// fixOfflineRecovery adds a cached-content fallback (a SharedPreferences
// read) to the network-state handler, so the app serves something useful
// when connectivity changes instead of merely observing the event.
func (f *Fixer) fixOfflineRecovery(m *jimple.Method) error {
	prefs := f.fresh("prefs")
	cached := f.fresh("cached")
	locals := []jimple.LocalDecl{
		{Name: prefs, Type: android.ClassSharedPrefs},
		{Name: cached, Type: jimple.TypeString},
	}
	stmts := []jimple.Stmt{
		&jimple.AssignStmt{LHS: jimple.Local{Name: prefs}, RHS: jimple.NewExpr{Type: android.ClassSharedPrefs}},
		&jimple.AssignStmt{
			LHS: jimple.Local{Name: cached},
			RHS: jimple.InvokeExpr{Kind: jimple.InvokeVirtual, Base: prefs,
				Callee: jimple.Sig{Class: android.ClassSharedPrefs, Name: "getString",
					Params: []string{jimple.TypeString, jimple.TypeString}, Ret: jimple.TypeString},
				Args: []jimple.Value{jimple.StrConst{V: "cached_feed"}, jimple.StrConst{V: ""}}},
		},
	}
	at := len(m.Body) - 1
	if at < 0 {
		at = 0
	}
	insertStmts(m, at, locals, stmts)
	return nil
}

// fixRetryLoopBackoff inserts Thread.sleep into the catch block of the
// retry loop whose head the report names.
func (f *Fixer) fixRetryLoopBackoff(m *jimple.Method, r *report.Report) error {
	if len(m.Traps) == 0 {
		return fmt.Errorf("fixer: %s has no catch block for backoff", m.Sig.Key())
	}
	// Insert after the handler's caught-exception binding.
	h := m.Traps[0].Handler
	at := h + 1
	if at > len(m.Body) {
		at = len(m.Body)
	}
	sleep := &jimple.InvokeStmt{Call: jimple.InvokeExpr{
		Kind: jimple.InvokeStatic,
		Callee: jimple.Sig{Class: android.ClassThread, Name: "sleep",
			Params: []string{"long"}, Ret: jimple.TypeVoid},
		Args: []jimple.Value{jimple.IntConst{V: 2000}},
	}}
	insertStmts(m, at, nil, []jimple.Stmt{sleep})
	return nil
}
