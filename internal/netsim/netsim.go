// Package netsim is a discrete-event simulator of mobile networks and of
// an HTTP client with Volley-like default parameters. It replaces the
// paper's physical testbed (a 3G link shaped by Apple's Network Link
// Conditioner) for the Figure 3 experiment: downloading files of varying
// sizes under packet loss with the library's default timeout (2500 ms)
// and a single automatic retry, measuring success rates.
//
// The model is segment-level: a transfer is a connect handshake followed
// by MSS-sized segments; each segment is lost independently with the
// profile's loss rate; a lost segment is recovered either by fast
// retransmit (one RTT) or by a retransmission timeout that doubles on
// consecutive losses. The client aborts when no data arrives for its
// read-timeout window — exactly the failure mode that makes default
// timeouts too tight under lossy mobile links.
package netsim

import (
	"fmt"
	"math/rand"
)

// MSS is the segment size in bytes.
const MSS = 1400

// Profile describes a network's steady-state behaviour.
type Profile struct {
	Name string
	// RTTMs is the round-trip time in milliseconds.
	RTTMs float64
	// BandwidthKbps is the bottleneck bandwidth in kilobits per second.
	BandwidthKbps float64
	// LossRate is the independent per-segment loss probability.
	LossRate float64
	// FastRetransmitP is the probability a loss is recovered by fast
	// retransmit (≈ one RTT) rather than by an RTO.
	FastRetransmitP float64
	// RTOMs is the initial retransmission timeout; it doubles on each
	// consecutive loss of the same segment.
	RTOMs float64
	// Disruption, when non-nil, overlays connectivity outages.
	Disruption *Disruption
}

// Disruption is a two-state (up/down) outage overlay: while down, every
// segment is lost regardless of LossRate. Durations are exponentially
// distributed around the means.
type Disruption struct {
	MeanUpMs   float64
	MeanDownMs float64
}

// ThreeG returns the 3G profile used by Figure 3.
func ThreeG() Profile {
	return Profile{
		Name:            "3G",
		RTTMs:           220,
		BandwidthKbps:   1000,
		LossRate:        0,
		FastRetransmitP: 0.5,
		RTOMs:           1300,
	}
}

// ThreeGLossy returns the 3G profile with the given packet loss rate.
func ThreeGLossy(loss float64) Profile {
	p := ThreeG()
	p.Name = fmt.Sprintf("3G loss=%.0f%%", loss*100)
	p.LossRate = loss
	return p
}

// WiFi returns a fast low-loss profile, useful as a contrast in examples.
func WiFi() Profile {
	return Profile{
		Name:            "WiFi",
		RTTMs:           30,
		BandwidthKbps:   20000,
		LossRate:        0.001,
		FastRetransmitP: 0.9,
		RTOMs:           600,
	}
}

// WithDisruption overlays outage episodes on a copy of the profile.
func (p Profile) WithDisruption(meanUpMs, meanDownMs float64) Profile {
	p.Disruption = &Disruption{MeanUpMs: meanUpMs, MeanDownMs: meanDownMs}
	p.Name = p.Name + "+disruptions"
	return p
}

// Client models an HTTP client's reliability parameters.
type Client struct {
	// TimeoutMs is the read/connect timeout: the request fails when no
	// segment arrives within this window. 0 means no timeout (a blocking
	// native connect — it waits out any stall).
	TimeoutMs float64
	// MaxRetries is the number of automatic retry attempts after a
	// failure.
	MaxRetries int
	// BackoffMult scales the timeout on each retry (Volley's backoff
	// multiplier; 1 = constant).
	BackoffMult float64
}

// DefaultVolley returns the Volley default parameters the paper's
// Figure 3 measures: 2500 ms timeout, one retry, no backoff.
func DefaultVolley() Client {
	return Client{TimeoutMs: 2500, MaxRetries: 1, BackoffMult: 1}
}

// Result describes one download.
type Result struct {
	Success   bool
	ElapsedMs float64
	Attempts  int
}

// linkState tracks the disruption overlay during one simulation.
type linkState struct {
	d        *Disruption
	up       bool
	nextFlip float64
}

func newLinkState(p Profile, rng *rand.Rand) *linkState {
	if p.Disruption == nil {
		return nil
	}
	return &linkState{d: p.Disruption, up: true,
		nextFlip: expDur(rng, p.Disruption.MeanUpMs)}
}

func expDur(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// isDown advances the overlay to time t and reports whether the link is
// in an outage.
func (ls *linkState) isDown(t float64, rng *rand.Rand) bool {
	if ls == nil {
		return false
	}
	for t >= ls.nextFlip {
		if ls.up {
			ls.up = false
			ls.nextFlip += expDur(rng, ls.d.MeanDownMs)
		} else {
			ls.up = true
			ls.nextFlip += expDur(rng, ls.d.MeanUpMs)
		}
	}
	return !ls.up
}

// Download simulates one request (with the client's automatic retries)
// transferring size bytes over the profile.
func (c Client) Download(p Profile, size int, rng *rand.Rand) Result {
	var elapsed float64
	timeout := c.TimeoutMs
	attempts := 0
	for try := 0; try <= c.MaxRetries; try++ {
		attempts++
		ok, dur := c.attempt(p, size, timeout, rng)
		elapsed += dur
		if ok {
			return Result{Success: true, ElapsedMs: elapsed, Attempts: attempts}
		}
		if c.BackoffMult > 0 && timeout > 0 {
			timeout *= c.BackoffMult
		}
	}
	return Result{Success: false, ElapsedMs: elapsed, Attempts: attempts}
}

// attempt simulates one transfer attempt: handshake plus data segments.
// It returns success and the attempt's duration.
func (c Client) attempt(p Profile, size int, timeoutMs float64, rng *rand.Rand) (bool, float64) {
	ls := newLinkState(p, rng)
	clock := 0.0
	// Per-segment serialization delay at the bottleneck.
	segTxMs := float64(MSS*8) / p.BandwidthKbps

	deliver := func(segMs float64) (float64, bool) {
		// Returns the gap until this segment is delivered, or false if
		// the gap exceeded the timeout (stall → client aborts).
		gap := 0.0
		rto := p.RTOMs
		for {
			lost := rng.Float64() < p.LossRate || ls.isDown(clock+gap, rng)
			if !lost {
				gap += segMs
				if timeoutMs > 0 && gap > timeoutMs {
					return gap, false
				}
				return gap, true
			}
			// Loss: fast retransmit costs one RTT; an RTO stalls longer
			// and doubles on repeated losses.
			if rng.Float64() < p.FastRetransmitP {
				gap += p.RTTMs
			} else {
				gap += rto
				rto *= 2
			}
			if timeoutMs > 0 && gap > timeoutMs {
				return gap, false
			}
		}
	}

	// Connect handshake: one RTT's worth of SYN/ACK, lossy like data.
	gap, ok := deliver(p.RTTMs)
	clock += gap
	if !ok {
		return false, clock
	}
	segs := (size + MSS - 1) / MSS
	perSeg := segTxMs + p.RTTMs/float64(max(segs, 1))
	for i := 0; i < segs; i++ {
		gap, ok := deliver(perSeg)
		clock += gap
		if !ok {
			return false, clock
		}
	}
	return true, clock
}

// SuccessRate runs trials downloads and returns the fraction that
// succeeded. Deterministic for a given seed.
func (c Client) SuccessRate(p Profile, size, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	ok := 0
	for i := 0; i < trials; i++ {
		if c.Download(p, size, rng).Success {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// FileSizes returns Figure 3's x-axis: 2 KB to 2 MB in powers of two.
func FileSizes() []int {
	sizes := make([]int, 0, 11)
	for s := 2 * 1024; s <= 2*1024*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// SizeLabel formats a size the way the paper's axis does (2K … 2M).
func SizeLabel(size int) string {
	if size >= 1024*1024 {
		return fmt.Sprintf("%dM", size/(1024*1024))
	}
	return fmt.Sprintf("%dK", size/1024)
}
