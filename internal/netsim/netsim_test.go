package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFileSizes(t *testing.T) {
	sizes := FileSizes()
	if len(sizes) != 11 {
		t.Fatalf("sizes: %v", sizes)
	}
	if sizes[0] != 2*1024 || sizes[len(sizes)-1] != 2*1024*1024 {
		t.Errorf("range wrong: %v", sizes)
	}
	if SizeLabel(2*1024) != "2K" || SizeLabel(2*1024*1024) != "2M" || SizeLabel(512*1024) != "512K" {
		t.Error("SizeLabel wrong")
	}
}

func TestNoLossMostlySucceeds(t *testing.T) {
	c := DefaultVolley()
	p := ThreeG() // zero loss
	for _, size := range FileSizes() {
		rate := c.SuccessRate(p, size, 200, 1)
		if rate < 0.99 {
			t.Errorf("size %s: success %.2f under no loss, want ≈1", SizeLabel(size), rate)
		}
	}
}

func TestLossDegradesWithSize(t *testing.T) {
	c := DefaultVolley()
	p := ThreeGLossy(0.10)
	small := c.SuccessRate(p, 2*1024, 400, 1)
	medium := c.SuccessRate(p, 128*1024, 400, 1)
	large := c.SuccessRate(p, 2*1024*1024, 400, 1)
	if !(small > medium && medium > large) {
		t.Errorf("success should fall with size: 2K=%.2f 128K=%.2f 2M=%.2f", small, medium, large)
	}
	if small < 0.85 {
		t.Errorf("small file success %.2f too low at 10%% loss", small)
	}
	if large > 0.45 {
		t.Errorf("2M success %.2f too high at 10%% loss (paper shows near-total failure)", large)
	}
}

func TestHigherLossIsWorse(t *testing.T) {
	c := DefaultVolley()
	size := 256 * 1024
	r0 := c.SuccessRate(ThreeGLossy(0.0), size, 300, 1)
	r5 := c.SuccessRate(ThreeGLossy(0.05), size, 300, 1)
	r10 := c.SuccessRate(ThreeGLossy(0.10), size, 300, 1)
	if !(r0 >= r5 && r5 >= r10) {
		t.Errorf("loss ordering violated: 0%%=%.2f 5%%=%.2f 10%%=%.2f", r0, r5, r10)
	}
}

func TestRetriesHelp(t *testing.T) {
	p := ThreeGLossy(0.10)
	size := 64 * 1024
	noRetry := Client{TimeoutMs: 2500, MaxRetries: 0, BackoffMult: 1}
	withRetry := Client{TimeoutMs: 2500, MaxRetries: 3, BackoffMult: 1}
	r0 := noRetry.SuccessRate(p, size, 400, 9)
	r3 := withRetry.SuccessRate(p, size, 400, 9)
	if r3 < r0 {
		t.Errorf("retries should not hurt: 0 retries %.2f vs 3 retries %.2f", r0, r3)
	}
}

func TestLongerTimeoutHelps(t *testing.T) {
	p := ThreeGLossy(0.10)
	size := 512 * 1024
	tight := Client{TimeoutMs: 2500, MaxRetries: 1, BackoffMult: 1}
	loose := Client{TimeoutMs: 10000, MaxRetries: 1, BackoffMult: 1}
	rt := tight.SuccessRate(p, size, 300, 5)
	rl := loose.SuccessRate(p, size, 300, 5)
	if rl <= rt {
		t.Errorf("longer timeout should help under loss: 2.5s %.2f vs 10s %.2f", rt, rl)
	}
}

func TestNoTimeoutNeverAborts(t *testing.T) {
	// A blocking client (timeout 0) always completes absent disruptions —
	// the flip side is unbounded waiting, which is Cause 3.1.
	c := Client{TimeoutMs: 0, MaxRetries: 0}
	p := ThreeGLossy(0.2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		res := c.Download(p, 64*1024, rng)
		if !res.Success {
			t.Fatal("blocking client aborted despite having no timeout")
		}
	}
}

func TestDisruptionsCauseFailures(t *testing.T) {
	c := DefaultVolley()
	stable := ThreeG()
	flaky := ThreeG().WithDisruption(4000, 4000)
	size := 256 * 1024
	rs := c.SuccessRate(stable, size, 200, 11)
	rf := c.SuccessRate(flaky, size, 200, 11)
	if rf >= rs {
		t.Errorf("disruptions should reduce success: stable %.2f vs flaky %.2f", rs, rf)
	}
	if rf > 0.9 {
		t.Errorf("50%%-downtime link succeeding %.2f of the time is implausible", rf)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	c := DefaultVolley()
	p := ThreeGLossy(0.1)
	a := c.SuccessRate(p, 128*1024, 100, 77)
	b := c.SuccessRate(p, 128*1024, 100, 77)
	if a != b {
		t.Errorf("SuccessRate not deterministic: %v vs %v", a, b)
	}
}

func TestElapsedAndAttemptsAccounting(t *testing.T) {
	c := Client{TimeoutMs: 2500, MaxRetries: 2, BackoffMult: 2}
	p := ThreeGLossy(0.3)
	rng := rand.New(rand.NewSource(1))
	sawRetry := false
	for i := 0; i < 200; i++ {
		res := c.Download(p, 512*1024, rng)
		if res.ElapsedMs <= 0 {
			t.Fatal("non-positive elapsed time")
		}
		if res.Attempts < 1 || res.Attempts > 3 {
			t.Fatalf("attempts out of range: %d", res.Attempts)
		}
		if res.Attempts > 1 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("30% loss on a large file never triggered a retry — suspicious")
	}
}

// Property: success rate is monotonically non-increasing in loss rate
// (checked pairwise on random loss pairs with a shared seed).
func TestQuickMonotoneInLoss(t *testing.T) {
	c := DefaultVolley()
	f := func(a, b uint8) bool {
		la := float64(a%30) / 100
		lb := float64(b%30) / 100
		if la > lb {
			la, lb = lb, la
		}
		ra := c.SuccessRate(ThreeGLossy(la), 128*1024, 150, 13)
		rb := c.SuccessRate(ThreeGLossy(lb), 128*1024, 150, 13)
		// Allow small sampling slack.
		return ra+0.08 >= rb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
