// Package report defines NChecker's warning reports. A report carries the
// five items §4.6 of the paper prescribes — NPD information (message +
// code location), NPD impact, request context, request call stack, and a
// fix suggestion — rendered either as human-readable text (Figure 7's
// layout) or as JSON for tooling.
package report

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/jimple"
)

// Cause enumerates the NPD causes NChecker detects (paper Tables 5 and 6).
type Cause string

const (
	// CauseNoConnectivityCheck — no connectivity check before a request.
	CauseNoConnectivityCheck Cause = "no-connectivity-check"
	// CauseNoTimeout — no timeout config API invoked for a request.
	CauseNoTimeout Cause = "no-timeout"
	// CauseNoRetryConfig — no retry config API invoked for a request made
	// with a retry-capable library.
	CauseNoRetryConfig Cause = "no-retry-config"
	// CauseNoRetryTimeSensitive — a user-initiated (time-sensitive)
	// request with retries disabled (Cause 2.1).
	CauseNoRetryTimeSensitive Cause = "no-retry-time-sensitive"
	// CauseOverRetryService — retries enabled for a background-service
	// request (Cause 2.2a).
	CauseOverRetryService Cause = "over-retry-service"
	// CauseOverRetryPost — retries enabled for a non-idempotent POST
	// request (Cause 2.2b).
	CauseOverRetryPost Cause = "over-retry-post"
	// CauseNoFailureNotification — no user-visible error message in the
	// request callback of a user-initiated request (Pattern 3).
	CauseNoFailureNotification Cause = "no-failure-notification"
	// CauseNoErrorTypeCheck — the error callback ignores the error object's
	// type (Pattern 3, Volley only).
	CauseNoErrorTypeCheck Cause = "no-error-type-check"
	// CauseNoResponseCheck — a response object used without a validity
	// check (Pattern 4).
	CauseNoResponseCheck Cause = "no-response-check"
	// CauseAggressiveRetryLoop — a customized retry loop without backoff
	// (the Telegram case, Figure 2).
	CauseAggressiveRetryLoop Cause = "aggressive-retry-loop"
	// CauseOfflineStateNoRecovery — a network-state handler (connectivity
	// receiver or ConnectivityManager callback) that inspects connectivity
	// but never retries the work or falls back to cached content
	// (Checker 5).
	CauseOfflineStateNoRecovery Cause = "offline-state-no-recovery"
	// CauseStaleConnectivityCheck — a connectivity check separated from the
	// request it guards by a loop, a wait, or a callback boundary, so the
	// checked state can be stale by the time the request runs (Checker 6).
	CauseStaleConnectivityCheck Cause = "stale-connectivity-check"
	// CauseCleartextEndpoint — a request endpoint resolved by constant
	// propagation to a cleartext http:// URL (Checker 7).
	CauseCleartextEndpoint Cause = "cleartext-endpoint"
	// CauseHardcodedIPEndpoint — a request endpoint whose host is a
	// hardcoded IP literal, defeating DNS-based failover (Checker 7).
	CauseHardcodedIPEndpoint Cause = "hardcoded-ip-endpoint"
	// CauseRetryStorm — a retry loop whose backoff does not run on the
	// retry path itself (e.g. a sleep only on the success path), so
	// failures still reconnect in a tight storm (Checker 8).
	CauseRetryStorm Cause = "retry-storm"
)

// AllCauses lists every cause in report order.
func AllCauses() []Cause {
	return []Cause{
		CauseNoConnectivityCheck, CauseNoTimeout, CauseNoRetryConfig,
		CauseNoRetryTimeSensitive, CauseOverRetryService, CauseOverRetryPost,
		CauseNoFailureNotification, CauseNoErrorTypeCheck,
		CauseNoResponseCheck, CauseAggressiveRetryLoop,
		CauseOfflineStateNoRecovery, CauseStaleConnectivityCheck,
		CauseCleartextEndpoint, CauseHardcodedIPEndpoint, CauseRetryStorm,
	}
}

// Impact describes the user-experience damage a cause leads to (paper §2.2).
type Impact string

const (
	ImpactDysfunction  Impact = "Dysfunction"
	ImpactUnfriendlyUI Impact = "Unfriendly UI"
	ImpactCrashFreeze  Impact = "Crash/Freeze"
	ImpactBatteryDrain Impact = "Battery drain"
)

// impactOf maps each cause to its dominant UX impacts.
var impactOf = map[Cause][]Impact{
	CauseNoConnectivityCheck:   {ImpactUnfriendlyUI, ImpactBatteryDrain},
	CauseNoTimeout:             {ImpactDysfunction, ImpactUnfriendlyUI},
	CauseNoRetryConfig:         {ImpactDysfunction},
	CauseNoRetryTimeSensitive:  {ImpactDysfunction},
	CauseOverRetryService:      {ImpactBatteryDrain},
	CauseOverRetryPost:         {ImpactDysfunction, ImpactBatteryDrain},
	CauseNoFailureNotification: {ImpactUnfriendlyUI},
	CauseNoErrorTypeCheck:      {ImpactUnfriendlyUI},
	CauseNoResponseCheck:       {ImpactCrashFreeze},
	CauseAggressiveRetryLoop:   {ImpactBatteryDrain},

	CauseOfflineStateNoRecovery: {ImpactDysfunction, ImpactUnfriendlyUI},
	CauseStaleConnectivityCheck: {ImpactDysfunction, ImpactUnfriendlyUI},
	CauseCleartextEndpoint:      {ImpactDysfunction},
	CauseHardcodedIPEndpoint:    {ImpactDysfunction},
	CauseRetryStorm:             {ImpactBatteryDrain},
}

// Impacts returns the UX impacts of a cause.
func Impacts(c Cause) []Impact { return impactOf[c] }

// Loc is a code location: a method and a statement index within it.
type Loc struct {
	Method jimple.Sig `json:"method"`
	Stmt   int        `json:"stmt"`
}

func (l Loc) String() string {
	return fmt.Sprintf("%s, stmt %d", l.Method.Key(), l.Stmt)
}

// Frame mirrors callgraph.Frame without importing it (keeps report free of
// the analysis packages).
type Frame struct {
	Method string `json:"method"`
	Site   int    `json:"site"`
}

// Context describes who initiates the request (paper item 3 of §4.6).
type Context struct {
	Component     string                `json:"component"`
	Kind          android.ComponentKind `json:"-"`
	KindName      string                `json:"kind"`
	UserInitiated bool                  `json:"userInitiated"`
	HTTPMethod    string                `json:"httpMethod,omitempty"`
}

// Report is one NPD warning.
type Report struct {
	Cause         Cause           `json:"cause"`
	Lib           apimodel.LibKey `json:"library,omitempty"`
	Message       string          `json:"message"`
	Location      Loc             `json:"location"`
	Impacts       []Impact        `json:"impacts"`
	Context       Context         `json:"context"`
	CallStack     []Frame         `json:"callStack,omitempty"`
	FixSuggestion string          `json:"fixSuggestion"`
	// DefaultCaused marks NPDs manifested purely by library default
	// behaviour (the developer never invoked the relevant API) — the
	// Table 8 "default behavior" column.
	DefaultCaused bool `json:"defaultCaused,omitempty"`
	// Validation is the dynamic-validation verdict when the scan ran with
	// validation enabled: ValidationConfirmed, ValidationUnconfirmed, or
	// ValidationNotValidated. Empty when validation did not run.
	Validation string `json:"validation,omitempty"`
	// ValidationNote explains the verdict: which injected scenario made
	// the defect manifest and how, or why the warning could not be
	// validated.
	ValidationNote string `json:"validationNote,omitempty"`
}

// Dynamic-validation verdicts. A warning is Confirmed when replaying its
// witness entry point under an injected disruption made the defect
// manifest (crash, silent failure, hang, excess retries) relative to the
// healthy-network baseline; Unconfirmed when every replay stayed clean —
// a false-positive candidate; NotValidated when the warning could not be
// replayed conclusively (no witness entry, no interpretable body,
// exhausted step budget, replay panic, or deadline).
const (
	ValidationConfirmed    = "confirmed"
	ValidationUnconfirmed  = "unconfirmed"
	ValidationNotValidated = "not-validated"
)

// Render formats the report in the layout of the paper's Figure 7.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NPD Information\n  %s! at %s\n", r.Message, r.Location)
	imps := make([]string, len(r.Impacts))
	for i, im := range r.Impacts {
		imps[i] = string(im)
	}
	fmt.Fprintf(&b, "NPD impact\n  %s\n", strings.Join(imps, ", "))
	who := "background service"
	note := "No user waiting; conserve energy and mobile data."
	if r.Context.UserInitiated {
		who = "user"
		note = "Need to notify users if the operation fails."
	}
	fmt.Fprintf(&b, "Network request context\n  Request made by %s (%s). %s\n",
		who, r.Context.Component, note)
	if len(r.CallStack) > 0 {
		b.WriteString("Network request call stack\n")
		for i, f := range r.CallStack {
			indent := strings.Repeat("-", i)
			if f.Site >= 0 {
				fmt.Fprintf(&b, "  %s> (%s: %d)\n", indent, f.Method, f.Site)
			} else {
				fmt.Fprintf(&b, "  %s> (%s)\n", indent, f.Method)
			}
		}
	}
	fmt.Fprintf(&b, "Fix Suggestion\n  %s\n", r.FixSuggestion)
	if r.Validation != "" {
		// Rendered only when the validation stage ran, so scans without
		// -validate keep their historical byte-identical output.
		fmt.Fprintf(&b, "Dynamic validation\n  %s", r.Validation)
		if r.ValidationNote != "" {
			fmt.Fprintf(&b, ": %s", r.ValidationNote)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	r.Context.KindName = r.Context.Kind.String()
	return json.MarshalIndent(r, "", "  ")
}

// Suggest builds the fix suggestion for a cause in context, following the
// paper's per-type, context-aware suggestions (§4.6).
func Suggest(c Cause, ctx Context, lib *apimodel.Library) string {
	libName := "the network library"
	if lib != nil {
		libName = lib.Name
	}
	switch c {
	case CauseNoConnectivityCheck:
		s := "Use ConnectivityManager.getActiveNetworkInfo() to check connectivity before the request."
		if ctx.UserInitiated {
			return s + " Show an error message if no connection."
		}
		return s + " Cache and defer the operation if no connection to save energy and mobile data."
	case CauseNoTimeout:
		return fmt.Sprintf("Call %s's timeout config API to set an explicit timeout; the default can block for minutes under a dead connection.", libName)
	case CauseNoRetryConfig:
		return fmt.Sprintf("Call %s's retry config API to set a retry policy appropriate for this request instead of trusting the default.", libName)
	case CauseNoRetryTimeSensitive:
		return "This request is user-initiated: enable a bounded retry so transient errors do not surface to the user."
	case CauseOverRetryService:
		return "This request runs in a background service: disable retries (set retry count to 0) to save energy and mobile data."
	case CauseOverRetryPost:
		return "HTTP/1.1 forbids automatic retry of non-idempotent methods: disable retries for this POST request."
	case CauseNoFailureNotification:
		return "Add an error message (e.g. Toast.show) in the request's error callback so the user can tell a network failure from missing content."
	case CauseNoErrorTypeCheck:
		return "Inspect the error object's type in the error callback (e.g. NoConnectionError vs. ClientError) and handle each case accordingly."
	case CauseNoResponseCheck:
		return "Check the response's validity (null check / isSuccessful()) before reading its body; responses can be invalid under network disruptions."
	case CauseAggressiveRetryLoop:
		return "Back off between retry attempts (exponential backoff) instead of reconnecting in a tight loop; tight loops burn CPU and battery under poor signal."
	case CauseOfflineStateNoRecovery:
		return "When connectivity returns, retry the pending operation or serve cached content; a handler that only observes the state change leaves the app stuck offline."
	case CauseStaleConnectivityCheck:
		return "Re-check connectivity immediately before the request: the state observed by this check can change across the intervening loop, wait, or callback boundary."
	case CauseCleartextEndpoint:
		return "Use an https:// endpoint: cleartext http traffic is blocked by default on modern Android and is trivially intercepted on public networks."
	case CauseHardcodedIPEndpoint:
		return "Use a host name instead of a hardcoded IP address so DNS failover and server migration keep working under disruptions."
	case CauseRetryStorm:
		return "Sleep with backoff on the retry path (inside the failure handler) before reconnecting; backoff only on the success path still storms the server on failures."
	}
	return "Review the network error handling at this location."
}

// RenderAll renders a scan's reports exactly as cmd/nchecker's default
// text mode prints them: each report's Figure-7 layout followed by a
// blank-line separator. It is the single definition of "the CLI's report
// text", shared by the CLI and by nchecker serve so an HTTP scan's report
// body is byte-identical to the command-line scan of the same app.
func RenderAll(reports []Report) string {
	var b strings.Builder
	for i := range reports {
		b.WriteString(reports[i].Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary aggregates reports for quick printing.
type Summary struct {
	Total   int           `json:"total"`
	ByCause map[Cause]int `json:"byCause"`
}

// Summarize counts reports per cause.
func Summarize(reports []Report) Summary {
	s := Summary{ByCause: make(map[Cause]int)}
	for i := range reports {
		s.Total++
		s.ByCause[reports[i].Cause]++
	}
	return s
}
