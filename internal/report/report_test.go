package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/apimodel"
	"repro/internal/jimple"
)

func sampleReport() Report {
	ctx := Context{Component: "com.app.Main", UserInitiated: true, HTTPMethod: "GET"}
	return Report{
		Cause:    CauseNoConnectivityCheck,
		Lib:      apimodel.LibBasic,
		Message:  "Missing network connectivity check before BasicHttpClient.get()",
		Location: Loc{Method: jimple.Sig{Class: "com.app.Main", Name: "onCreate", Params: []string{"android.os.Bundle"}, Ret: "void"}, Stmt: 4},
		Impacts:  Impacts(CauseNoConnectivityCheck),
		Context:  ctx,
		CallStack: []Frame{
			{Method: "com.app.Main.onCreate(android.os.Bundle)void", Site: 2},
			{Method: "com.app.Net.fetch()void", Site: -1},
		},
		FixSuggestion: Suggest(CauseNoConnectivityCheck, ctx, nil),
	}
}

func TestRenderContainsAllFigure7Items(t *testing.T) {
	r := sampleReport()
	out := r.Render()
	for _, want := range []string{
		"NPD Information", "NPD impact", "Network request context",
		"Network request call stack", "Fix Suggestion",
		"Missing network connectivity check",
		"Request made by user",
		"onCreate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestRenderBackgroundContext(t *testing.T) {
	r := sampleReport()
	r.Context.UserInitiated = false
	out := r.Render()
	if !strings.Contains(out, "background service") {
		t.Errorf("background context not rendered:\n%s", out)
	}
}

func TestJSONRoundTrips(t *testing.T) {
	r := sampleReport()
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded["cause"] != string(CauseNoConnectivityCheck) {
		t.Errorf("cause lost: %v", decoded["cause"])
	}
	if decoded["fixSuggestion"] == "" {
		t.Error("fix suggestion lost")
	}
}

func TestEveryCauseHasImpactAndSuggestion(t *testing.T) {
	for _, c := range AllCauses() {
		if len(Impacts(c)) == 0 {
			t.Errorf("cause %s has no impacts", c)
		}
		userCtx := Context{UserInitiated: true}
		bgCtx := Context{UserInitiated: false}
		if Suggest(c, userCtx, nil) == "" || Suggest(c, bgCtx, nil) == "" {
			t.Errorf("cause %s has no suggestion", c)
		}
	}
	// Context-sensitivity: the connectivity suggestion differs for user
	// vs. background requests (§4.6).
	u := Suggest(CauseNoConnectivityCheck, Context{UserInitiated: true}, nil)
	b := Suggest(CauseNoConnectivityCheck, Context{UserInitiated: false}, nil)
	if u == b {
		t.Error("connectivity suggestion should be context-aware")
	}
}

func TestSuggestNamesLibrary(t *testing.T) {
	reg := apimodel.NewRegistry()
	lib := reg.Library(apimodel.LibVolley)
	s := Suggest(CauseNoTimeout, Context{}, lib)
	if !strings.Contains(s, lib.Name) {
		t.Errorf("suggestion should name the library: %q", s)
	}
}

func TestSummarize(t *testing.T) {
	rs := []Report{
		{Cause: CauseNoTimeout},
		{Cause: CauseNoTimeout},
		{Cause: CauseOverRetryPost},
	}
	s := Summarize(rs)
	if s.Total != 3 || s.ByCause[CauseNoTimeout] != 2 || s.ByCause[CauseOverRetryPost] != 1 {
		t.Errorf("Summarize: %+v", s)
	}
}
