package apk

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/android"
	"repro/internal/jimple"
)

func sampleApp(t *testing.T) *App {
	t.Helper()
	prog := jimple.MustParse(`class com.x.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    return
  }
}`)
	man := &android.Manifest{Package: "com.x", Activities: []string{"com.x.Main"}}
	man.Normalize()
	return &App{Manifest: man, Program: prog}
}

func TestRoundTrip(t *testing.T) {
	app := sampleApp(t)
	data, err := Encode(app)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Manifest.Encode() != app.Manifest.Encode() {
		t.Error("manifest mismatch after round trip")
	}
	if jimple.Print(got.Program) != jimple.Print(app.Program) {
		t.Error("program mismatch after round trip")
	}
}

func TestReadWrite(t *testing.T) {
	app := sampleApp(t)
	var buf bytes.Buffer
	if err := Write(&buf, app); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Manifest.Package != "com.x" {
		t.Errorf("package: %q", got.Manifest.Package)
	}
}

func TestFileRoundTrip(t *testing.T) {
	app := sampleApp(t)
	path := filepath.Join(t.TempDir(), "app.apk")
	if err := WriteFile(path, app); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Program.NumClasses() != app.Program.NumClasses() {
		t.Error("class count mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.apk")); err == nil {
		t.Error("missing file should error")
	}
}

func TestEncodeRejectsIncompleteApp(t *testing.T) {
	if _, err := Encode(&App{}); err == nil {
		t.Error("nil manifest accepted")
	}
	man := &android.Manifest{Package: "p"}
	if _, err := Encode(&App{Manifest: man}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Encode(&App{Manifest: &android.Manifest{}, Program: jimple.NewProgram()}); err == nil {
		t.Error("invalid manifest accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	app := sampleApp(t)
	data, err := Encode(app)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the dex payload: the CRC must catch it.
	mut := append([]byte(nil), data...)
	mut[len(mut)-2] ^= 0xFF
	if _, err := Decode(mut); err == nil {
		t.Error("payload corruption not detected")
	}
	if _, err := Decode(data[:10]); err == nil {
		t.Error("truncated container accepted")
	}
	if _, err := Decode([]byte("not an apk at all")); err == nil {
		t.Error("garbage accepted")
	}
	withTrailing := append(append([]byte(nil), data...), 0)
	if _, err := Decode(withTrailing); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// Property: any single-byte corruption is either detected or decodes into
// a structurally valid app — never a panic, and practically always caught
// by the CRC.
func TestQuickCorruptionDetected(t *testing.T) {
	app := sampleApp(t)
	data, err := Encode(app)
	if err != nil {
		t.Fatal(err)
	}
	detected, survived := 0, 0
	f := func(posRaw uint16, xor byte) bool {
		if xor == 0 {
			return true
		}
		pos := int(posRaw) % len(data)
		mut := append([]byte(nil), data...)
		mut[pos] ^= xor
		got, err := Decode(mut)
		if err != nil {
			detected++
			return true
		}
		survived++
		return got.Program != nil && got.Manifest != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if detected == 0 {
		t.Error("no corruption was ever detected — CRC seems inert")
	}
}

// TestDigestStableAndDiscriminating: Digest is the app component of the
// persistent scan cache's result key. A decoded app's digest must equal
// the digest of the bytes it was decoded from (decode does not re-encode),
// an in-memory app's digest must be reproducible, and different apps must
// digest differently.
func TestDigestStableAndDiscriminating(t *testing.T) {
	app := sampleApp(t)
	d1, err := app.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	d2, err := app.Digest()
	if err != nil {
		t.Fatalf("Digest (memoized): %v", err)
	}
	if d1 != d2 {
		t.Fatalf("Digest not stable across calls")
	}

	data, err := Encode(app)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	dd, err := decoded.Digest()
	if err != nil {
		t.Fatalf("decoded Digest: %v", err)
	}
	if dd != d1 {
		t.Fatalf("decoded app digest differs from in-memory digest")
	}

	other := sampleApp(t)
	other.Manifest.Package = "com.y"
	other.Manifest.Normalize()
	od, err := other.Digest()
	if err != nil {
		t.Fatalf("other Digest: %v", err)
	}
	if od == d1 {
		t.Fatalf("distinct apps share a digest")
	}
}
