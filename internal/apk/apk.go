// Package apk defines the application container NChecker scans: a
// sectioned, checksummed binary file holding the app's manifest and its
// dex-encoded code — the stand-in for the APK zip the real tool consumes.
// The container is what cmd/nchecker reads from disk and what the corpus
// generator writes, so the full binary pipeline
// (generate → serialize → parse → analyze) is exercised end to end.
package apk

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/android"
	"repro/internal/dex"
	"repro/internal/jimple"
)

// magic identifies the container format.
var magic = []byte("GAPK\x01\n")

// Section names.
const (
	sectionManifest = "AndroidManifest"
	sectionDex      = "classes.dex"
)

// maxSectionSize bounds a single section (defensive parsing).
const maxSectionSize = 1 << 30

// App is a parsed application: its manifest plus its code. Apps are
// always handled by pointer; the embedded digest memoization must not be
// copied.
type App struct {
	Manifest *android.Manifest
	Program  *jimple.Program

	// Lazy is non-nil for apps opened by DecodeLazy: the dex payload has
	// been skimmed (headers, method refs, body spans) but no method bodies
	// are decoded yet. Program aliases Lazy.Program(); the targeted engine
	// materializes demanded classes, and the full engine materializes
	// everything before building.
	Lazy *dex.Lazy

	// digest memoizes Digest(): apps decoded from container bytes carry
	// the hash of those bytes, in-memory apps hash their canonical
	// encoding on first use.
	digestOnce sync.Once
	digest     [sha256.Size]byte
	digestErr  error
}

// Digest returns the SHA-256 content identity of the app — the hash of
// its container bytes — computed once per App. It is the app component of
// the persistent scan cache's keys (internal/cachestore): any change to
// the manifest or the dex payload changes the digest. For an app parsed
// by Decode the digest covers the bytes as read; for an app built in
// memory it covers the canonical Encode output.
func (a *App) Digest() ([sha256.Size]byte, error) {
	a.digestOnce.Do(func() {
		data, err := Encode(a)
		if err != nil {
			a.digestErr = err
			return
		}
		a.digest = sha256.Sum256(data)
	})
	return a.digest, a.digestErr
}

// Encode serializes the app to container bytes.
func Encode(app *App) ([]byte, error) {
	if app.Manifest == nil {
		return nil, fmt.Errorf("apk: app has no manifest")
	}
	if err := app.Manifest.Validate(); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	if app.Program == nil {
		return nil, fmt.Errorf("apk: app has no program")
	}
	buf := append([]byte(nil), magic...)
	buf = binary.AppendUvarint(buf, 2) // section count
	buf = appendSection(buf, sectionManifest, []byte(app.Manifest.Encode()))
	buf = appendSection(buf, sectionDex, dex.Encode(app.Program))
	return buf, nil
}

func appendSection(buf []byte, name string, content []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(content)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(content))
	return append(buf, content...)
}

// Decode parses container bytes, verifying section checksums.
func Decode(data []byte) (*App, error) {
	man, dexBytes, err := decodeSections(data)
	if err != nil {
		return nil, err
	}
	prog, err := dex.Decode(dexBytes)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	app := &App{Manifest: man, Program: prog}
	// Seed the content digest from the bytes actually read, so scanning
	// from disk never pays a re-encode to key the cache.
	app.digestOnce.Do(func() { app.digest = sha256.Sum256(data) })
	return app, nil
}

// DecodeLazy parses container bytes like Decode but defers the dex method
// bodies: the returned App carries a skeleton Program plus the Lazy handle
// that materializes classes on demand. It accepts and rejects exactly the
// inputs Decode does, and the seeded digest is identical, so the two open
// paths share cache entries.
func DecodeLazy(data []byte) (*App, error) {
	man, dexBytes, err := decodeSections(data)
	if err != nil {
		return nil, err
	}
	l, err := dex.DecodeLazy(dexBytes)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	app := &App{Manifest: man, Program: l.Program(), Lazy: l}
	app.digestOnce.Do(func() { app.digest = sha256.Sum256(data) })
	return app, nil
}

// decodeSections validates the container framing and returns the decoded
// manifest and the raw dex payload — everything Decode and DecodeLazy
// share before they diverge on body decoding.
func decodeSections(data []byte) (*android.Manifest, []byte, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, nil, fmt.Errorf("apk: bad magic")
	}
	pos := len(magic)
	nsec, n := binary.Uvarint(data[pos:])
	if n <= 0 || nsec > 16 {
		return nil, nil, fmt.Errorf("apk: bad section count")
	}
	pos += n
	sections := make(map[string][]byte, nsec)
	for i := uint64(0); i < nsec; i++ {
		name, content, next, err := readSection(data, pos)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := sections[name]; dup {
			return nil, nil, fmt.Errorf("apk: duplicate section %q", name)
		}
		sections[name] = content
		pos = next
	}
	if pos != len(data) {
		return nil, nil, fmt.Errorf("apk: %d trailing bytes", len(data)-pos)
	}
	manBytes, ok := sections[sectionManifest]
	if !ok {
		return nil, nil, fmt.Errorf("apk: missing %s section", sectionManifest)
	}
	dexBytes, ok := sections[sectionDex]
	if !ok {
		return nil, nil, fmt.Errorf("apk: missing %s section", sectionDex)
	}
	man, err := android.DecodeManifest(string(manBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("apk: %w", err)
	}
	return man, dexBytes, nil
}

func readSection(data []byte, pos int) (name string, content []byte, next int, err error) {
	nameLen, n := binary.Uvarint(data[pos:])
	if n <= 0 || nameLen > 255 {
		return "", nil, 0, fmt.Errorf("apk: bad section name length")
	}
	pos += n
	if pos+int(nameLen) > len(data) {
		return "", nil, 0, fmt.Errorf("apk: truncated section name")
	}
	name = string(data[pos : pos+int(nameLen)])
	pos += int(nameLen)
	size, n := binary.Uvarint(data[pos:])
	if n <= 0 || size > maxSectionSize {
		return "", nil, 0, fmt.Errorf("apk: bad section size for %q", name)
	}
	pos += n
	if pos+4 > len(data) {
		return "", nil, 0, fmt.Errorf("apk: truncated checksum for %q", name)
	}
	sum := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	if pos+int(size) > len(data) {
		return "", nil, 0, fmt.Errorf("apk: truncated section %q", name)
	}
	content = data[pos : pos+int(size)]
	if crc32.ChecksumIEEE(content) != sum {
		return "", nil, 0, fmt.Errorf("apk: checksum mismatch in section %q", name)
	}
	return name, content, pos + int(size), nil
}

// Write streams the encoded app to w.
func Write(w io.Writer, app *App) error {
	data, err := Encode(app)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Read parses an app from r.
func Read(r io.Reader) (*App, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	return Decode(data)
}

// WriteFile writes the app to path.
func WriteFile(path string, app *App) error {
	data, err := Encode(app)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile parses the app at path.
func ReadFile(path string) (*App, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	return Decode(data)
}

// ReadFileLazy parses the app at path without decoding method bodies; see
// DecodeLazy.
func ReadFileLazy(path string) (*App, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	return DecodeLazy(data)
}
