//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-regression tests consult it: -race instruments
// allocations and shifts counts, so thresholds only bind in normal runs.
const RaceEnabled = true
