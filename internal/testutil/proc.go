package testutil

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// BuildNchecker compiles cmd/nchecker into t's temp directory and returns
// the binary path. Go's build cache makes repeated builds cheap, so each
// test that needs the real binary just builds its own copy.
func BuildNchecker(t TB) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("testutil: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "nchecker")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/nchecker")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("testutil: go build ./cmd/nchecker: %v\n%s", err, out)
	}
	return bin
}

// moduleRoot walks up from the working directory to the go.mod root, so
// tests in any package can build the repository's commands.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("no go.mod above working directory")
		}
		dir = parent
	}
}

// Proc is one spawned server process (nchecker serve or nchecker coord)
// with its ready-file handshake completed.
type Proc struct {
	// Addr is the bound listen address from the ready file; URL is
	// "http://" + Addr.
	Addr string
	URL  string

	cmd     *exec.Cmd
	logPath string
	done    chan error // receives cmd.Wait exactly once
	waited  bool
	waitErr error
}

// SpawnServer starts `bin args... -addr 127.0.0.1:0 -ready-file <tmp>`,
// waits for the ready handshake, and registers a cleanup that kills the
// process (hard) if the test did not already Drain or Kill it. Stderr
// goes to a log file whose tail is dumped when the test fails.
func SpawnServer(t TB, bin string, args ...string) *Proc {
	t.Helper()
	dir := t.TempDir()
	ready := filepath.Join(dir, "ready")
	logPath := filepath.Join(dir, "stderr.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("testutil: create log: %v", err)
	}
	full := append(append([]string{}, args...), "-addr", "127.0.0.1:0", "-ready-file", ready)
	cmd := exec.Command(bin, full...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		t.Fatalf("testutil: start %s %s: %v", bin, strings.Join(full, " "), err)
	}
	logFile.Close() // the child holds its own descriptor
	p := &Proc{cmd: cmd, logPath: logPath, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()

	addr, err := WaitAddrFile(ready, time.Now().Add(30*time.Second))
	if err != nil {
		p.Kill()
		t.Fatalf("testutil: %s %s: %v\n%s", bin, strings.Join(full, " "), err, p.LogTail())
	}
	p.Addr = addr
	p.URL = "http://" + addr
	t.Cleanup(func() {
		p.Kill()
		if t.Failed() {
			t.Logf("testutil: %s log tail:\n%s", filepath.Base(bin), p.LogTail())
		}
	})
	return p
}

// Pid returns the child's process id.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Signal sends sig to the child.
func (p *Proc) Signal(sig os.Signal) error { return p.cmd.Process.Signal(sig) }

// wait waits for process exit (once) and memoizes the result.
func (p *Proc) wait(timeout time.Duration) error {
	if p.waited {
		return p.waitErr
	}
	select {
	case err := <-p.done:
		p.waited, p.waitErr = true, err
		return err
	case <-time.After(timeout):
		return fmt.Errorf("testutil: process %d still running after %s", p.Pid(), timeout)
	}
}

// Drain sends SIGTERM and waits up to timeout for a clean exit; a
// non-zero exit status or a hung process is an error. This is the
// graceful-shutdown assertion the CI smokes rely on.
func (p *Proc) Drain(timeout time.Duration) error {
	if p.waited {
		return p.waitErr
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("testutil: SIGTERM: %w", err)
	}
	if err := p.wait(timeout); err != nil {
		return fmt.Errorf("testutil: drain: %w (log tail:\n%s)", err, p.LogTail())
	}
	return nil
}

// Kill terminates the process immediately (SIGKILL) and reaps it. Safe to
// call repeatedly and after Drain.
func (p *Proc) Kill() {
	if p.waited {
		return
	}
	p.cmd.Process.Kill()
	p.wait(10 * time.Second)
}

// LogTail returns the last few KiB of the process's combined output, for
// failure messages.
func (p *Proc) LogTail() string {
	data, err := os.ReadFile(p.logPath)
	if err != nil {
		return "(no log: " + err.Error() + ")"
	}
	const tail = 8 << 10
	if len(data) > tail {
		data = data[len(data)-tail:]
	}
	return string(data)
}
