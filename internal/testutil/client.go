package testutil

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// JobView is the subset of a scan job's JSON record the end-to-end suites
// assert on. It matches both `nchecker serve` jobs and `nchecker coord`
// fleet jobs (the coordinator mirrors the server's job schema and adds
// Worker/Attempts).
type JobView struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Status     string `json:"status"`
	Requests   int    `json:"requests"`
	Warnings   int    `json:"warnings"`
	Degraded   bool   `json:"degraded"`
	ReportText string `json:"reportText"`
	Error      string `json:"error"`
	Worker     string `json:"worker"`
	Attempts   int    `json:"attempts"`
}

// Terminal reports whether the job reached a terminal status.
func (j JobView) Terminal() bool { return j.Status == "done" || j.Status == "failed" }

// ScanClient drives a scan service (server or coordinator) over HTTP:
// submit, poll to terminal, and fetch the observability endpoints. All
// methods return errors instead of failing a test, so the CI smoke
// clients can share them.
type ScanClient struct {
	Base string // e.g. "http://127.0.0.1:8080"
	// HTTP is the client used for every request; nil means a private
	// client with a 30s request timeout.
	HTTP *http.Client
}

func (c *ScanClient) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Healthz fetches /healthz and returns the status code.
func (c *ScanClient) Healthz() (int, error) {
	resp, err := c.http().Get(c.Base + "/healthz")
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Submit POSTs app-container bytes to /scan with the raw query string
// ("" or e.g. "?name=a.apk&mode=targeted") and returns the accepted job.
func (c *ScanClient) Submit(query string, app []byte) (JobView, error) {
	resp, err := c.http().Post(c.Base+"/scan"+query, "application/octet-stream", bytes.NewReader(app))
	if err != nil {
		return JobView{}, fmt.Errorf("POST /scan%s: %w", query, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return JobView{}, fmt.Errorf("POST /scan%s = %d: %s", query, resp.StatusCode, body)
	}
	var job JobView
	if err := json.Unmarshal(body, &job); err != nil {
		return JobView{}, fmt.Errorf("POST /scan%s response: %w: %s", query, err, body)
	}
	if job.ID == "" {
		return JobView{}, fmt.Errorf("POST /scan%s response has no job id: %s", query, body)
	}
	return job, nil
}

// Get fetches one job record without polling.
func (c *ScanClient) Get(id string) (JobView, int, error) {
	resp, err := c.http().Get(c.Base + "/scan/" + id)
	if err != nil {
		return JobView{}, 0, fmt.Errorf("GET /scan/%s: %w", id, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobView{}, resp.StatusCode, fmt.Errorf("GET /scan/%s = %d: %s", id, resp.StatusCode, body)
	}
	var job JobView
	if err := json.Unmarshal(body, &job); err != nil {
		return JobView{}, resp.StatusCode, fmt.Errorf("GET /scan/%s response: %w", id, err)
	}
	return job, resp.StatusCode, nil
}

// Await polls GET /scan/{id} until the job reaches a terminal status or
// the deadline passes.
func (c *ScanClient) Await(id string, deadline time.Time) (JobView, error) {
	for {
		job, _, err := c.Get(id)
		if err != nil {
			return job, err
		}
		if job.Terminal() {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("job %s still %q at deadline", id, job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ScanWait submits the app and awaits a terminal status in one call.
func (c *ScanClient) ScanWait(query string, app []byte, deadline time.Time) (JobView, error) {
	job, err := c.Submit(query, app)
	if err != nil {
		return job, err
	}
	return c.Await(job.ID, deadline)
}

// Metrics fetches /metrics and returns the Prometheus text body.
func (c *ScanClient) Metrics() (string, error) {
	resp, err := c.http().Get(c.Base + "/metrics")
	if err != nil {
		return "", fmt.Errorf("GET /metrics: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics = %d", resp.StatusCode)
	}
	return string(body), nil
}
