// Package testutil is the repository's shared end-to-end test harness:
// the helpers the multi-process suites (internal/server's fleet tests,
// internal/cachestore's cross-process tests, scripts/servesmoke and
// scripts/fleetsmoke) previously duplicated — fixture app construction,
// ready-file handshakes, ephemeral-port allocation, scan-service client
// polling, and child-process spawn/drain management.
//
// The package deliberately avoids importing "testing": the spawn helpers
// accept the small TB interface instead, so the CI smoke clients (plain
// `package main` programs driven by scripts/check.sh) can share the same
// code paths the Go tests use.
package testutil

import (
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// TB is the subset of *testing.T the harness needs. Keeping it an
// interface lets non-test binaries (the smoke clients) link testutil
// without pulling in the testing package.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
	TempDir() string
	Cleanup(func())
	Failed() bool
}

// FixtureApp encodes the canonical buggy fixture app every end-to-end
// suite scans: one Activity firing a request with no connectivity check,
// no timeout configuration, and no response handling — it must always
// produce warnings. The shape matches internal/core's fixture so report
// expectations line up across suites.
func FixtureApp() ([]byte, error) {
	prog, err := jimple.Parse(`class demo.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "http://example.com"
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    return
  }
}`)
	if err != nil {
		return nil, err
	}
	man := &android.Manifest{Package: "demo", Activities: []string{"demo.Main"}}
	man.Normalize()
	return apk.Encode(&apk.App{Manifest: man, Program: prog})
}

// MustFixtureApp is FixtureApp for tests: failures abort via t.
func MustFixtureApp(t TB) []byte {
	t.Helper()
	data, err := FixtureApp()
	if err != nil {
		t.Fatalf("testutil: build fixture app: %v", err)
	}
	return data
}

// WaitAddrFile polls for a server's -ready-file and returns the bound
// address written there. It is the client half of the ready-file
// handshake `nchecker serve`/`nchecker coord` implement for scripts that
// start servers on ephemeral ports (-addr 127.0.0.1:0).
func WaitAddrFile(path string, deadline time.Time) (string, error) {
	for {
		if b, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(b)); addr != "" {
				return addr, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("testutil: ready file %s never appeared", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// EphemeralAddr reserves an ephemeral localhost TCP address and releases
// it immediately, returning "127.0.0.1:port". It is inherently racy (the
// OS may hand the port to someone else before the caller binds), so
// prefer the -addr :0 + ready-file handshake where the server supports
// it; this exists for tools that must know their address up front.
func EphemeralAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("testutil: reserve ephemeral port: %w", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
