package dex_test

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dex"
	"repro/internal/jimple"
)

// TestCorpusRoundTrip encodes and decodes every app of a generated corpus
// and checks bit- and text-level fidelity — the dex layer soak test.
func TestCorpusRoundTrip(t *testing.T) {
	apps, err := corpus.GenerateCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps[:60] {
		data := dex.Encode(a.App.Program)
		got, err := dex.Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", a.Name, err)
		}
		if jimple.Print(got) != jimple.Print(a.App.Program) {
			t.Fatalf("%s: round trip changed the program", a.Name)
		}
		// Re-encoding the decoded program is byte-identical (canonical form).
		if !bytes.Equal(dex.Encode(got), data) {
			t.Fatalf("%s: re-encoding not canonical", a.Name)
		}
	}
}
