// Package dex implements a compact binary encoding of jimple programs —
// the stand-in for the DEX bytecode container that the real NChecker's
// Dexpler front end consumes. The format uses a deduplicated string pool
// (as DEX does) and varint-encoded structures. Encoding is deterministic:
// the same program always produces the same bytes.
package dex

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/jimple"
)

// Magic identifies the format; Version is bumped on layout changes.
var Magic = [4]byte{'G', 'D', 'E', 'X'}

// Version of the encoding.
const Version = 1

// Statement opcodes.
const (
	opAssign byte = iota
	opInvoke
	opIf
	opGoto
	opReturn
	opReturnVoid
	opThrow
	opNop
)

// Value tags.
const (
	tagLocal byte = iota
	tagIntConst
	tagStrConst
	tagNull
	tagParamRef
	tagThisRef
	tagCaughtEx
	tagFieldRef
	tagNew
	tagInvoke
	tagBin
	tagNeg
	tagCast
	tagInstanceOf
)

// Class flags.
const (
	flagIface    byte = 1 << 0
	flagAbstract byte = 1 << 1
)

// Method flags.
const (
	mflagStatic   byte = 1 << 0
	mflagAbstract byte = 1 << 1
	mflagHasBody  byte = 1 << 2
)

// Field flags.
const fflagStatic byte = 1 << 0

type encoder struct {
	buf     []byte
	strings map[string]uint64
	pool    []string
}

// Encode serializes p. The string pool is built in a first pass so the
// output is stable for a given program.
func Encode(p *jimple.Program) []byte {
	e := &encoder{strings: make(map[string]uint64)}
	// Collect all strings deterministically: walk classes sorted.
	classes := p.Classes()
	collect := newCollector()
	for _, c := range classes {
		collect.class(c)
	}
	e.pool = collect.sorted()
	for i, s := range e.pool {
		e.strings[s] = uint64(i)
	}

	e.buf = append(e.buf, Magic[:]...)
	e.u64(Version)
	e.u64(uint64(len(e.pool)))
	for _, s := range e.pool {
		e.str(s)
	}
	e.u64(uint64(len(classes)))
	for _, c := range classes {
		e.class(c)
	}
	return e.buf
}

type collector struct {
	set map[string]bool
}

func newCollector() *collector { return &collector{set: make(map[string]bool)} }

func (c *collector) add(ss ...string) {
	for _, s := range ss {
		c.set[s] = true
	}
}

func (c *collector) sorted() []string {
	out := make([]string, 0, len(c.set))
	for s := range c.set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (c *collector) class(cl *jimple.Class) {
	c.add(cl.Name, cl.Super)
	c.add(cl.Interfaces...)
	for _, f := range cl.Fields {
		c.add(f.Name, f.Type)
	}
	for _, m := range cl.Methods {
		c.sig(m.Sig)
		if !m.HasBody() {
			// Mirror encoder.method: bodyless methods emit no locals,
			// statements, or traps, so their strings must not inflate the
			// pool (keeps the encoding canonical for any input program).
			continue
		}
		for _, l := range m.Locals {
			c.add(l.Name, l.Type)
		}
		for _, s := range m.Body {
			c.stmt(s)
		}
		for _, t := range m.Traps {
			c.add(t.Exception)
		}
	}
}

func (c *collector) sig(s jimple.Sig) {
	c.add(s.Class, s.Name, s.Ret)
	c.add(s.Params...)
}

func (c *collector) stmt(s jimple.Stmt) {
	switch s := s.(type) {
	case *jimple.AssignStmt:
		c.value(s.LHS)
		c.value(s.RHS)
	case *jimple.InvokeStmt:
		c.value(s.Call)
	case *jimple.IfStmt:
		c.value(s.Cond)
	case *jimple.ReturnStmt:
		if s.V != nil {
			c.value(s.V)
		}
	case *jimple.ThrowStmt:
		c.value(s.V)
	}
}

func (c *collector) value(v jimple.Value) {
	switch v := v.(type) {
	case jimple.Local:
		c.add(v.Name)
	case jimple.StrConst:
		c.add(v.V)
	case jimple.ParamRef:
		c.add(v.Type)
	case jimple.ThisRef:
		c.add(v.Type)
	case jimple.FieldRef:
		c.add(v.Base, v.Class, v.Field)
	case jimple.NewExpr:
		c.add(v.Type)
	case jimple.InvokeExpr:
		c.add(v.Base)
		c.sig(v.Callee)
		for _, a := range v.Args {
			c.value(a)
		}
	case jimple.BinExpr:
		c.value(v.L)
		c.value(v.R)
	case jimple.NegExpr:
		c.value(v.V)
	case jimple.CastExpr:
		c.add(v.Type)
		c.value(v.V)
	case jimple.InstanceOfExpr:
		c.add(v.Type)
		c.value(v.V)
	}
}

func (e *encoder) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *encoder) i64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) ref(s string) {
	idx, ok := e.strings[s]
	if !ok {
		panic(fmt.Sprintf("dex: string %q missing from pool", s))
	}
	e.u64(idx)
}

func (e *encoder) class(c *jimple.Class) {
	e.ref(c.Name)
	e.ref(c.Super)
	var flags byte
	if c.IsIface {
		flags |= flagIface
	}
	if c.Abstract {
		flags |= flagAbstract
	}
	e.buf = append(e.buf, flags)
	e.u64(uint64(len(c.Interfaces)))
	for _, i := range c.Interfaces {
		e.ref(i)
	}
	e.u64(uint64(len(c.Fields)))
	for _, f := range c.Fields {
		e.ref(f.Name)
		e.ref(f.Type)
		var ff byte
		if f.Static {
			ff |= fflagStatic
		}
		e.buf = append(e.buf, ff)
	}
	e.u64(uint64(len(c.Methods)))
	for _, m := range c.Methods {
		e.method(m)
	}
}

func (e *encoder) sig(s jimple.Sig) {
	e.ref(s.Class)
	e.ref(s.Name)
	e.u64(uint64(len(s.Params)))
	for _, p := range s.Params {
		e.ref(p)
	}
	e.ref(s.Ret)
}

func (e *encoder) method(m *jimple.Method) {
	e.sig(m.Sig)
	var flags byte
	if m.Static {
		flags |= mflagStatic
	}
	if m.Abstract {
		flags |= mflagAbstract
	}
	if m.HasBody() {
		flags |= mflagHasBody
	}
	e.buf = append(e.buf, flags)
	if !m.HasBody() {
		return
	}
	e.u64(uint64(len(m.Locals)))
	for _, l := range m.Locals {
		e.ref(l.Name)
		e.ref(l.Type)
	}
	e.u64(uint64(len(m.Body)))
	for _, s := range m.Body {
		e.stmt(s)
	}
	e.u64(uint64(len(m.Traps)))
	for _, t := range m.Traps {
		e.u64(uint64(t.Begin))
		e.u64(uint64(t.End))
		e.u64(uint64(t.Handler))
		e.ref(t.Exception)
	}
}

func (e *encoder) stmt(s jimple.Stmt) {
	switch s := s.(type) {
	case *jimple.AssignStmt:
		e.buf = append(e.buf, opAssign)
		e.value(s.LHS)
		e.value(s.RHS)
	case *jimple.InvokeStmt:
		e.buf = append(e.buf, opInvoke)
		e.value(s.Call)
	case *jimple.IfStmt:
		e.buf = append(e.buf, opIf)
		e.value(s.Cond)
		e.u64(uint64(s.Target))
	case *jimple.GotoStmt:
		e.buf = append(e.buf, opGoto)
		e.u64(uint64(s.Target))
	case *jimple.ReturnStmt:
		if s.V == nil {
			e.buf = append(e.buf, opReturnVoid)
		} else {
			e.buf = append(e.buf, opReturn)
			e.value(s.V)
		}
	case *jimple.ThrowStmt:
		e.buf = append(e.buf, opThrow)
		e.value(s.V)
	case *jimple.NopStmt:
		e.buf = append(e.buf, opNop)
	default:
		panic(fmt.Sprintf("dex: unknown statement type %T", s))
	}
}

func (e *encoder) value(v jimple.Value) {
	switch v := v.(type) {
	case jimple.Local:
		e.buf = append(e.buf, tagLocal)
		e.ref(v.Name)
	case jimple.IntConst:
		e.buf = append(e.buf, tagIntConst)
		e.i64(v.V)
	case jimple.StrConst:
		e.buf = append(e.buf, tagStrConst)
		e.ref(v.V)
	case jimple.NullConst:
		e.buf = append(e.buf, tagNull)
	case jimple.ParamRef:
		e.buf = append(e.buf, tagParamRef)
		e.u64(uint64(v.Index))
		e.ref(v.Type)
	case jimple.ThisRef:
		e.buf = append(e.buf, tagThisRef)
		e.ref(v.Type)
	case jimple.CaughtExRef:
		e.buf = append(e.buf, tagCaughtEx)
	case jimple.FieldRef:
		e.buf = append(e.buf, tagFieldRef)
		e.ref(v.Base)
		e.ref(v.Class)
		e.ref(v.Field)
	case jimple.NewExpr:
		e.buf = append(e.buf, tagNew)
		e.ref(v.Type)
	case jimple.InvokeExpr:
		e.buf = append(e.buf, tagInvoke)
		e.buf = append(e.buf, byte(v.Kind))
		e.ref(v.Base)
		e.sig(v.Callee)
		e.u64(uint64(len(v.Args)))
		for _, a := range v.Args {
			e.value(a)
		}
	case jimple.BinExpr:
		e.buf = append(e.buf, tagBin)
		e.buf = append(e.buf, byte(v.Op))
		e.value(v.L)
		e.value(v.R)
	case jimple.NegExpr:
		e.buf = append(e.buf, tagNeg)
		e.value(v.V)
	case jimple.CastExpr:
		e.buf = append(e.buf, tagCast)
		e.ref(v.Type)
		e.value(v.V)
	case jimple.InstanceOfExpr:
		e.buf = append(e.buf, tagInstanceOf)
		e.ref(v.Type)
		e.value(v.V)
	default:
		panic(fmt.Sprintf("dex: unknown value type %T", v))
	}
}
