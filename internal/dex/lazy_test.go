package dex_test

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/apimodel"
	"repro/internal/corpus"
	"repro/internal/dex"
	"repro/internal/jimple"
)

const lazySampleSrc = `class com.app.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self com.app.Main
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local i android.content.Intent
    self = this com.app.Main
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "http://example.com"
    i = new android.content.Intent
    virtualinvoke i android.content.Intent.setClassName(java.lang.String)android.content.Intent "com.app.Detail"
    virtualinvoke self android.app.Activity.startActivity(android.content.Intent)void i
    return
  }
  method helper()void {
    local x java.lang.String
    x = "s"
    return
  }
  method abstract stub(int)void
}
class com.app.Detail extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    nop
    return
  }
}`

func lazySample(t *testing.T) *jimple.Program {
	t.Helper()
	return jimple.MustParse(lazySampleSrc)
}

// TestLazyMaterializeAllMatchesEagerDecode: a fully materialized lazy
// program is text-identical to an eager decode of the same bytes, over
// the generated corpus.
func TestLazyMaterializeAllMatchesEagerDecode(t *testing.T) {
	apps, err := corpus.GenerateCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps[:40] {
		data := dex.Encode(a.App.Program)
		eager, err := dex.Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", a.Name, err)
		}
		l, err := dex.DecodeLazy(data)
		if err != nil {
			t.Fatalf("%s: DecodeLazy: %v", a.Name, err)
		}
		if err := l.MaterializeAll(); err != nil {
			t.Fatalf("%s: MaterializeAll: %v", a.Name, err)
		}
		if jimple.Print(l.Program()) != jimple.Print(eager) {
			t.Fatalf("%s: materialized lazy program differs from eager decode", a.Name)
		}
	}
}

// TestLazySkeletonHasNoBodies: before materialization every method is
// bodiless, classes materialize independently and idempotently, and the
// class/field/method headers are complete.
func TestLazySkeletonHasNoBodies(t *testing.T) {
	data := dex.Encode(lazySample(t))
	l, err := dex.DecodeLazy(data)
	if err != nil {
		t.Fatal(err)
	}
	p := l.Program()
	if p.NumClasses() != 2 {
		t.Fatalf("skeleton has %d classes, want 2", p.NumClasses())
	}
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				t.Fatalf("%s has a body before materialization", m.Sig.Key())
			}
		}
	}
	if err := l.Materialize("com.app.Detail"); err != nil {
		t.Fatal(err)
	}
	if err := l.Materialize("com.app.Detail"); err != nil {
		t.Fatalf("re-materialize: %v", err)
	}
	if m := p.Class("com.app.Detail").MethodNamed("onCreate"); !m.HasBody() {
		t.Fatal("materialized class still bodiless")
	}
	if m := p.Class("com.app.Main").MethodNamed("onCreate"); m.HasBody() {
		t.Fatal("unmaterialized class grew a body")
	}
	if n := l.NumBodiedClasses(); n != 2 {
		t.Fatalf("NumBodiedClasses = %d, want 2", n)
	}
}

// TestLazyMethodRefsMatchEager: the skim's records equal MethodRefsOf
// over the eager decode — the two closure-engine inputs are one.
func TestLazyMethodRefsMatchEager(t *testing.T) {
	apps, err := corpus.GenerateCorpus(11)
	if err != nil {
		t.Fatal(err)
	}
	progs := []*jimple.Program{lazySample(t)}
	for _, a := range apps[:20] {
		progs = append(progs, a.App.Program)
	}
	for i, p := range progs {
		data := dex.Encode(p)
		l, err := dex.DecodeLazy(data)
		if err != nil {
			t.Fatalf("prog %d: %v", i, err)
		}
		eager, err := dex.Decode(data)
		if err != nil {
			t.Fatalf("prog %d: %v", i, err)
		}
		if got, want := l.MethodRefs(), dex.MethodRefsOf(eager); !reflect.DeepEqual(got, want) {
			t.Fatalf("prog %d: lazy MethodRefs differ from eager:\nlazy:  %+v\neager: %+v", i, got, want)
		}
	}
}

// TestLazyRefClasses: the skim's referenced-class set feeds
// apimodel.LibsUsedByClasses with the same answer LibsUsedBy computes
// from retained bodies.
func TestLazyRefClasses(t *testing.T) {
	p := lazySample(t)
	l, err := dex.DecodeLazy(dex.Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	reg := apimodel.NewRegistry()
	got := reg.LibsUsedByClasses(l.RefClasses())
	want := reg.LibsUsedBy(p)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LibsUsedByClasses(RefClasses) = %v, want %v", got, want)
	}
	has := func(cls string) bool {
		for _, c := range l.RefClasses() {
			if c == cls {
				return true
			}
		}
		return false
	}
	for _, cls := range []string{
		"android.app.Activity",                       // supertype
		"com.turbomanage.httpclient.BasicHttpClient", // invoked class + local type
		"com.turbomanage.httpclient.HttpResponse",    // local type
		"android.content.Intent",                     // invoked class
	} {
		if !has(cls) {
			t.Errorf("RefClasses missing %s", cls)
		}
	}
}

// TestLazyErrorParity: DecodeLazy accepts exactly what Decode accepts,
// across truncations and random single-byte corruptions.
func TestLazyErrorParity(t *testing.T) {
	data := dex.Encode(lazySample(t))
	check := func(mut []byte) {
		t.Helper()
		_, eagerErr := dex.Decode(mut)
		_, lazyErr := dex.DecodeLazy(mut)
		if (eagerErr == nil) != (lazyErr == nil) {
			t.Fatalf("error parity broken: eager=%v lazy=%v", eagerErr, lazyErr)
		}
	}
	for cut := 0; cut < len(data); cut += 7 {
		check(data[:cut])
	}
	f := func(posRaw uint16, val byte) bool {
		mut := append([]byte(nil), data...)
		mut[int(posRaw)%len(mut)] = val
		check(mut)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLazyTargetSiteSearch: the pool pre-search finds exactly the methods
// with a top-level call to a wanted signature.
func TestLazyTargetSiteSearch(t *testing.T) {
	l, err := dex.DecodeLazy(dex.Encode(lazySample(t)))
	if err != nil {
		t.Fatal(err)
	}
	get := jimple.Sig{
		Class: "com.turbomanage.httpclient.BasicHttpClient", Name: "get",
		Params: []string{"java.lang.String"}, Ret: "com.turbomanage.httpclient.HttpResponse",
	}
	got := l.TargetSiteSearch([]jimple.Sig{get})
	want := []string{"com.app.Main.onCreate(android.os.Bundle)void"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TargetSiteSearch = %v, want %v", got, want)
	}
	absent := jimple.Sig{Class: "com.squareup.okhttp.Call", Name: "execute", Ret: "com.squareup.okhttp.Response"}
	if got := l.TargetSiteSearch([]jimple.Sig{absent}); got != nil {
		t.Fatalf("TargetSiteSearch(absent) = %v, want nil", got)
	}
}

// registryTargetSigs lists every target API signature of the standard
// registry — the wanted set the engine's seed search uses.
func registryTargetSigs() []jimple.Sig {
	var sigs []jimple.Sig
	for _, lib := range apimodel.NewRegistry().Libraries() {
		for _, tgt := range lib.Targets {
			sigs = append(sigs, tgt.Sig)
		}
	}
	return sigs
}

// FuzzTargetSiteSearch drives the lazy pool pre-search against the eager
// decoder: on any input both paths must agree on decodability, and on
// success the pre-search must report exactly the target sites the eager
// decode contains — never a site the eager decoder doesn't, and never one
// fewer (the closure engine's seeds depend on it).
func FuzzTargetSiteSearch(f *testing.F) {
	apps, err := corpus.GenerateCorpus(7)
	if err != nil {
		f.Fatal(err)
	}
	for _, a := range apps[:3] {
		f.Add(dex.Encode(a.App.Program))
	}
	sample := dex.Encode(jimple.MustParse(lazySampleSrc))
	f.Add(sample)
	f.Add(sample[:len(sample)/2])
	flipped := bytes.Clone(sample)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	targets := registryTargetSigs()
	f.Fuzz(func(t *testing.T, data []byte) {
		l, lazyErr := dex.DecodeLazy(data)
		eager, eagerErr := dex.Decode(data)
		if (lazyErr == nil) != (eagerErr == nil) {
			t.Fatalf("decodability disagrees: lazy=%v eager=%v", lazyErr, eagerErr)
		}
		if lazyErr != nil {
			return
		}
		wanted := make(map[string]bool, len(targets))
		for _, s := range targets {
			wanted[s.Key()] = true
		}
		var eagerSites []string
		for _, r := range dex.MethodRefsOf(eager) {
			for _, c := range r.Calls {
				if wanted[c.Key()] {
					eagerSites = append(eagerSites, r.Sig.Key())
					break
				}
			}
		}
		got := l.TargetSiteSearch(targets)
		if !reflect.DeepEqual(got, eagerSites) {
			t.Fatalf("pre-search sites %v, eager sites %v", got, eagerSites)
		}
	})
}
