package dex

import (
	"encoding/binary"
	"fmt"

	"repro/internal/jimple"
)

// Decode parses bytes produced by Encode back into a program. It treats
// the input as untrusted: malformed data yields an error, never a panic.
func Decode(data []byte) (*jimple.Program, error) {
	d := &decoder{data: data}
	prog, err := d.run()
	if err != nil {
		return nil, fmt.Errorf("dex: %w (at offset %d)", err, d.pos)
	}
	return prog, nil
}

type decoder struct {
	data []byte
	pos  int
	pool []string
	// lazy, when non-nil, switches method bodies to the skim path: the
	// same bytes are parsed with the same validation, but no statement
	// objects are built — only the span + MethodRef are recorded.
	lazy *Lazy
	// localScratch is skimBody's reusable local-type buffer.
	localScratch []string
}

func (d *decoder) run() (*jimple.Program, error) {
	if len(d.data) < 4 || [4]byte(d.data[:4]) != Magic {
		return nil, fmt.Errorf("bad magic")
	}
	d.pos = 4
	ver, err := d.u64()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("unsupported version %d", ver)
	}
	nstr, err := d.u64()
	if err != nil {
		return nil, err
	}
	if nstr > uint64(len(d.data)) {
		return nil, fmt.Errorf("string pool count %d exceeds input size", nstr)
	}
	d.pool = make([]string, nstr)
	for i := range d.pool {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		d.pool[i] = s
	}
	nclass, err := d.u64()
	if err != nil {
		return nil, err
	}
	if nclass > uint64(len(d.data)) {
		return nil, fmt.Errorf("class count %d exceeds input size", nclass)
	}
	prog := jimple.NewProgram()
	for i := uint64(0); i < nclass; i++ {
		c, err := d.class()
		if err != nil {
			return nil, err
		}
		prog.AddClass(c)
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("%d trailing bytes", len(d.data)-d.pos)
	}
	return prog, nil
}

func (d *decoder) u64() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) count(what string) (int, error) {
	v, err := d.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.data)) {
		return 0, fmt.Errorf("%s count %d exceeds input size", what, v)
	}
	return int(v), nil
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("truncated byte")
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u64()
	if err != nil {
		return "", err
	}
	if uint64(d.pos)+n > uint64(len(d.data)) {
		return "", fmt.Errorf("truncated string of length %d", n)
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) ref() (string, error) {
	idx, err := d.u64()
	if err != nil {
		return "", err
	}
	if idx >= uint64(len(d.pool)) {
		return "", fmt.Errorf("string index %d out of pool range %d", idx, len(d.pool))
	}
	return d.pool[idx], nil
}

func (d *decoder) class() (*jimple.Class, error) {
	c := &jimple.Class{}
	var err error
	if c.Name, err = d.ref(); err != nil {
		return nil, err
	}
	if c.Super, err = d.ref(); err != nil {
		return nil, err
	}
	flags, err := d.byte()
	if err != nil {
		return nil, err
	}
	c.IsIface = flags&flagIface != 0
	c.Abstract = flags&flagAbstract != 0
	nif, err := d.count("interface")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nif; i++ {
		s, err := d.ref()
		if err != nil {
			return nil, err
		}
		c.Interfaces = append(c.Interfaces, s)
	}
	nf, err := d.count("field")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nf; i++ {
		f := &jimple.Field{}
		if f.Name, err = d.ref(); err != nil {
			return nil, err
		}
		if f.Type, err = d.ref(); err != nil {
			return nil, err
		}
		ff, err := d.byte()
		if err != nil {
			return nil, err
		}
		f.Static = ff&fflagStatic != 0
		c.Fields = append(c.Fields, f)
	}
	nm, err := d.count("method")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nm; i++ {
		m, err := d.method()
		if err != nil {
			return nil, err
		}
		c.Methods = append(c.Methods, m)
	}
	return c, nil
}

func (d *decoder) sig() (jimple.Sig, error) {
	var s jimple.Sig
	var err error
	if s.Class, err = d.ref(); err != nil {
		return s, err
	}
	if s.Name, err = d.ref(); err != nil {
		return s, err
	}
	np, err := d.count("param")
	if err != nil {
		return s, err
	}
	for i := 0; i < np; i++ {
		p, err := d.ref()
		if err != nil {
			return s, err
		}
		s.Params = append(s.Params, p)
	}
	if s.Ret, err = d.ref(); err != nil {
		return s, err
	}
	return s, nil
}

func (d *decoder) method() (*jimple.Method, error) {
	m := &jimple.Method{}
	var err error
	if m.Sig, err = d.sig(); err != nil {
		return nil, err
	}
	flags, err := d.byte()
	if err != nil {
		return nil, err
	}
	m.Static = flags&mflagStatic != 0
	m.Abstract = flags&mflagAbstract != 0
	if flags&mflagHasBody == 0 {
		if !m.Abstract {
			m.Abstract = true
		}
		return m, nil
	}
	if m.Abstract {
		// The encoder never emits both flags: an abstract method carrying
		// a body is malformed input, not a representable program
		// (fuzz-found canonicality break).
		return nil, fmt.Errorf("method %s: abstract flag with body", m.Sig.Key())
	}
	if d.lazy != nil {
		if err := d.lazyBody(m); err != nil {
			return nil, err
		}
		return m, nil
	}
	if err := d.body(m); err != nil {
		return nil, err
	}
	return m, nil
}

// body decodes the encoded body section — locals, statements, traps, and
// the empty-body normalization — into m. It is the single decoder core
// shared by the eager path (method) and the lazy path (lazy.go), which
// skims it once for call records and re-runs it on demand to materialize
// a class; sharing it is what makes the two paths bit-identical.
func (d *decoder) body(m *jimple.Method) error {
	nl, err := d.count("local")
	if err != nil {
		return err
	}
	for i := 0; i < nl; i++ {
		var l jimple.LocalDecl
		if l.Name, err = d.ref(); err != nil {
			return err
		}
		if l.Type, err = d.ref(); err != nil {
			return err
		}
		m.Locals = append(m.Locals, l)
	}
	ns, err := d.count("statement")
	if err != nil {
		return err
	}
	for i := 0; i < ns; i++ {
		s, err := d.stmt()
		if err != nil {
			return err
		}
		m.Body = append(m.Body, s)
	}
	nt, err := d.count("trap")
	if err != nil {
		return err
	}
	for i := 0; i < nt; i++ {
		var t jimple.Trap
		b, err := d.u64()
		if err != nil {
			return err
		}
		e, err := d.u64()
		if err != nil {
			return err
		}
		h, err := d.u64()
		if err != nil {
			return err
		}
		exc, err := d.ref()
		if err != nil {
			return err
		}
		t.Begin, t.End, t.Handler, t.Exception = int(b), int(e), int(h), exc
		m.Traps = append(m.Traps, t)
	}
	if m.Body == nil {
		// A has-body method with zero statements decodes to the same
		// program state as an abstract stub; normalize it like the
		// jimple parser does so re-encoding is canonical.
		m.Abstract = true
		m.Locals = nil
		m.Traps = nil
	}
	return nil
}

func (d *decoder) stmt() (jimple.Stmt, error) {
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch op {
	case opAssign:
		lhs, err := d.value()
		if err != nil {
			return nil, err
		}
		lv, ok := lhs.(jimple.LValue)
		if !ok {
			return nil, fmt.Errorf("assign target is not an lvalue (%T)", lhs)
		}
		rhs, err := d.value()
		if err != nil {
			return nil, err
		}
		return &jimple.AssignStmt{LHS: lv, RHS: rhs}, nil
	case opInvoke:
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		inv, ok := v.(jimple.InvokeExpr)
		if !ok {
			return nil, fmt.Errorf("invoke statement holds %T", v)
		}
		return &jimple.InvokeStmt{Call: inv}, nil
	case opIf:
		cond, err := d.value()
		if err != nil {
			return nil, err
		}
		t, err := d.u64()
		if err != nil {
			return nil, err
		}
		return &jimple.IfStmt{Cond: cond, Target: int(t)}, nil
	case opGoto:
		t, err := d.u64()
		if err != nil {
			return nil, err
		}
		return &jimple.GotoStmt{Target: int(t)}, nil
	case opReturn:
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		return &jimple.ReturnStmt{V: v}, nil
	case opReturnVoid:
		return &jimple.ReturnStmt{}, nil
	case opThrow:
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		return &jimple.ThrowStmt{V: v}, nil
	case opNop:
		return &jimple.NopStmt{}, nil
	}
	return nil, fmt.Errorf("unknown opcode %d", op)
}

func (d *decoder) value() (jimple.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagLocal:
		n, err := d.ref()
		if err != nil {
			return nil, err
		}
		return jimple.Local{Name: n}, nil
	case tagIntConst:
		v, err := d.i64()
		if err != nil {
			return nil, err
		}
		return jimple.IntConst{V: v}, nil
	case tagStrConst:
		s, err := d.ref()
		if err != nil {
			return nil, err
		}
		return jimple.StrConst{V: s}, nil
	case tagNull:
		return jimple.NullConst{}, nil
	case tagParamRef:
		idx, err := d.u64()
		if err != nil {
			return nil, err
		}
		t, err := d.ref()
		if err != nil {
			return nil, err
		}
		return jimple.ParamRef{Index: int(idx), Type: t}, nil
	case tagThisRef:
		t, err := d.ref()
		if err != nil {
			return nil, err
		}
		return jimple.ThisRef{Type: t}, nil
	case tagCaughtEx:
		return jimple.CaughtExRef{}, nil
	case tagFieldRef:
		base, err := d.ref()
		if err != nil {
			return nil, err
		}
		cls, err := d.ref()
		if err != nil {
			return nil, err
		}
		fld, err := d.ref()
		if err != nil {
			return nil, err
		}
		return jimple.FieldRef{Base: base, Class: cls, Field: fld}, nil
	case tagNew:
		t, err := d.ref()
		if err != nil {
			return nil, err
		}
		return jimple.NewExpr{Type: t}, nil
	case tagInvoke:
		kind, err := d.byte()
		if err != nil {
			return nil, err
		}
		if kind > byte(jimple.InvokeStatic) {
			return nil, fmt.Errorf("bad invoke kind %d", kind)
		}
		base, err := d.ref()
		if err != nil {
			return nil, err
		}
		callee, err := d.sig()
		if err != nil {
			return nil, err
		}
		na, err := d.count("argument")
		if err != nil {
			return nil, err
		}
		var args []jimple.Value
		for i := 0; i < na; i++ {
			a, err := d.value()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		return jimple.InvokeExpr{Kind: jimple.InvokeKind(kind), Base: base, Callee: callee, Args: args}, nil
	case tagBin:
		op, err := d.byte()
		if err != nil {
			return nil, err
		}
		if op > byte(jimple.OpXor) {
			return nil, fmt.Errorf("bad binary op %d", op)
		}
		l, err := d.value()
		if err != nil {
			return nil, err
		}
		r, err := d.value()
		if err != nil {
			return nil, err
		}
		return jimple.BinExpr{Op: jimple.BinOp(op), L: l, R: r}, nil
	case tagNeg:
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		return jimple.NegExpr{V: v}, nil
	case tagCast:
		t, err := d.ref()
		if err != nil {
			return nil, err
		}
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		return jimple.CastExpr{Type: t, V: v}, nil
	case tagInstanceOf:
		t, err := d.ref()
		if err != nil {
			return nil, err
		}
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		return jimple.InstanceOfExpr{Type: t, V: v}, nil
	}
	return nil, fmt.Errorf("unknown value tag %d", tag)
}
