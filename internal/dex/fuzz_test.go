package dex_test

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dex"
	"repro/internal/jimple"
)

// FuzzDecode drives the binary decoder with untrusted bytes: any input
// must either decode cleanly or return an error — never panic (decode
// panics surface in core as ErrDecode regressions). Valid inputs must
// round-trip canonically. Seeds come from the round-trip tests' encoded
// corpus apps plus structural mutations of them.
func FuzzDecode(f *testing.F) {
	apps, err := corpus.GenerateCorpus(7)
	if err != nil {
		f.Fatal(err)
	}
	for _, a := range apps[:3] {
		f.Add(dex.Encode(a.App.Program))
	}
	prog := jimple.MustParse(`class a.B extends java.lang.Object {
  method run()void {
    local x java.lang.String
    x = "s"
    return
  }
}`)
	seed := dex.Encode(prog)
	f.Add(seed)
	// URL string building: the concatenation chains the endpoint checker's
	// constant propagation walks, with a cleartext scheme and an IP host.
	urlProg := jimple.MustParse(`class u.C extends java.lang.Object {
  method build()java.lang.String {
    local base java.lang.String
    local u java.lang.String
    base = "http://203.0.113.7"
    u = base + "/api?q=%22term%22"
    return u
  }
}`)
	f.Add(dex.Encode(urlProg))
	// Truncations and bit flips of a valid payload reach deep decoder
	// states that random bytes rarely find.
	f.Add(seed[:len(seed)/2])
	flipped := bytes.Clone(seed)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := dex.Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded program must re-encode, and the decoder
		// must accept its own canonical form back.
		re := dex.Encode(prog)
		again, err := dex.Decode(re)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(dex.Encode(again), re) {
			t.Fatal("canonical encoding not a fixpoint")
		}
	})
}
