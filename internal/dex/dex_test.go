package dex

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/android"
	"repro/internal/jimple"
)

const sampleSrc = `class com.app.Main extends android.app.Activity implements android.view.View$OnClickListener {
  field mCount int
  field static sName java.lang.String
  method onCreate(android.os.Bundle)void {
    local self com.app.Main
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    local e java.io.IOException
    self = this com.app.Main
    L0:
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 5
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "http://example.com/a b"
    L1:
    if r == null goto L3
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    field(self,com.app.Main,mCount) = 1
    goto L3
    L2:
    e = caught
    nop
    L3:
    return
    trap L0 L1 L2 java.io.IOException
  }
  method abstract helper(int,java.lang.String)boolean
  method static util()int {
    local x int
    local y int
    x = 2
    y = x * 21
    return y
  }
}`

func sampleProgram(t *testing.T) *jimple.Program {
	t.Helper()
	p := jimple.MustParse(sampleSrc)
	if err := p.Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	return p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram(t)
	data := Encode(p)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded program invalid: %v", err)
	}
	// Textual forms must match exactly.
	if jimple.Print(got) != jimple.Print(p) {
		t.Errorf("round trip changed the program:\n--- original ---\n%s\n--- decoded ---\n%s",
			jimple.Print(p), jimple.Print(got))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := sampleProgram(t)
	a := Encode(p)
	b := Encode(p)
	if !bytes.Equal(a, b) {
		t.Error("Encode is not deterministic")
	}
}

func TestEncodeFrameworkRoundTrip(t *testing.T) {
	fw := android.Framework()
	got, err := Decode(Encode(fw))
	if err != nil {
		t.Fatalf("Decode framework: %v", err)
	}
	if jimple.Print(got) != jimple.Print(fw) {
		t.Error("framework round trip mismatch")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode([]byte("NOPE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	data := Encode(sampleProgram(t))
	data[4] = 99 // version varint byte
	if _, err := Decode(data); err == nil {
		t.Error("bad version accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := Encode(sampleProgram(t))
	for _, cut := range []int{5, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := Encode(sampleProgram(t))
	data = append(data, 0xFF)
	if _, err := Decode(data); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// Property: single-byte corruption never panics; it either errors or
// yields some program (possibly semantically different — the APK layer's
// CRC catches corruption; this layer only guarantees memory safety).
func TestQuickDecodeCorruptionSafety(t *testing.T) {
	data := Encode(sampleProgram(t))
	f := func(posRaw uint16, val byte) bool {
		pos := int(posRaw) % len(data)
		mut := append([]byte(nil), data...)
		mut[pos] = val
		defer func() {
			if recover() != nil {
				t.Errorf("Decode panicked with corruption at %d=%d", pos, val)
			}
		}()
		_, _ = Decode(mut)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeSizeReasonable(t *testing.T) {
	p := sampleProgram(t)
	data := Encode(p)
	text := len(jimple.Print(p))
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	// The pooled binary form should not balloon beyond the text form.
	if len(data) > 2*text {
		t.Errorf("encoding suspiciously large: %d bytes vs %d text", len(data), text)
	}
}
