package dex

import (
	"fmt"
	"sort"

	"repro/internal/jimple"
)

// This file is the lazy decode fast path for the targeted engine mode:
// DecodeLazy parses the container eagerly down to class/field/method
// headers but retains no method bodies. Each body section is skimmed once
// through the shared decoder core (decode.go's body) to delimit its byte
// span and extract a MethodRef — the call targets, explicit-intent class
// names, and referenced types the demand-driven closure rules need — and
// the decoded statements are dropped. Materialize re-runs the same core
// over a recorded span to give a demanded class its bodies back, so a
// fully materialized lazy program is bit-identical to an eager Decode of
// the same bytes, and malformed input fails identically on both paths
// (the skim runs every check the eager decoder runs, in the same order).

// MethodRef is the skim record of one body-bearing method: everything the
// targeted closure engine consults without the body being retained.
type MethodRef struct {
	// Sig is the method's full signature (declaring class included).
	Sig jimple.Sig
	// Calls lists the top-level callee signatures in statement order —
	// the jimple.InvokeOf shape: an InvokeStmt or an AssignStmt whose RHS
	// is an invoke. Nested invokes cannot be expressed at statement level,
	// so this is exactly the call set the call graph builds from.
	Calls []jimple.Sig
	// Intents lists the string-constant class names passed to one-argument
	// setClassName calls anywhere in the body: a superset of the
	// explicit-intent targets callgraph resolves (which also requires the
	// receiver local to alias the launched Intent).
	Intents []string
}

// refOf extracts the skim record from a decoded body-bearing method. It
// is the single extraction rule shared by the lazy skim and MethodRefsOf,
// which keeps the two scan paths' closure inputs identical.
func refOf(m *jimple.Method) MethodRef {
	ref := MethodRef{Sig: m.Sig}
	for _, s := range m.Body {
		inv, ok := jimple.InvokeOf(s)
		if !ok {
			continue
		}
		ref.Calls = append(ref.Calls, inv.Callee)
		if inv.Callee.Name == "setClassName" && len(inv.Args) == 1 {
			if sc, isStr := inv.Args[0].(jimple.StrConst); isStr {
				ref.Intents = append(ref.Intents, sc.V)
			}
		}
	}
	return ref
}

// MethodRefsOf extracts skim records from an eagerly decoded program's
// body-bearing methods, sorted by method key. The in-memory targeted scan
// path feeds these to the closure engine; the differential tests pin them
// equal to a Lazy skim of the same program's encoded bytes.
func MethodRefsOf(p *jimple.Program) []MethodRef {
	var out []MethodRef
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				out = append(out, refOf(m))
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sig.Key() < out[j].Sig.Key() })
	return out
}

// bodiedRec ties a skeleton method to its skim record and the offset of
// its encoded body section (start of the locals count).
type bodiedRec struct {
	m     *jimple.Method
	start int
	ref   MethodRef
}

// Lazy is a lazily decoded program: full headers, no bodies. Methods that
// had a body in the bytes sit in the skeleton with Abstract=false and
// Body=nil (HasBody false) until their class is materialized. Lazy is not
// safe for concurrent mutation; materialize before sharing the program.
type Lazy struct {
	data []byte
	pool []string

	prog      *jimple.Program
	classRecs map[string][]bodiedRec
	refs      []MethodRef
	// localTypes accumulates the declared local types seen during the
	// skim; bodies are dropped, so the set is captured in passing.
	localTypes   map[string]bool
	refClasses   []string
	materialized map[string]bool
	poolSet      map[string]bool // built on first TargetSiteSearch
}

// DecodeLazy parses bytes produced by Encode into a Lazy program. It
// accepts and rejects exactly the inputs Decode does: the skim shares the
// eager decoder core statement for statement.
func DecodeLazy(data []byte) (*Lazy, error) {
	l := &Lazy{
		data:         data,
		classRecs:    make(map[string][]bodiedRec),
		materialized: make(map[string]bool),
	}
	d := &decoder{data: data, lazy: l}
	prog, err := d.run()
	if err != nil {
		return nil, fmt.Errorf("dex: %w (at offset %d)", err, d.pos)
	}
	l.prog = prog
	l.pool = d.pool
	l.finalize()
	return l, nil
}

// finalize freezes the sorted record list and the referenced-class set
// once the whole container has parsed.
func (l *Lazy) finalize() {
	classes := make([]string, 0, len(l.classRecs))
	for cls := range l.classRecs {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	noted := make(map[string]bool)
	for _, cls := range classes {
		for _, br := range l.classRecs[cls] {
			l.refs = append(l.refs, br.ref)
		}
	}
	sort.SliceStable(l.refs, func(i, j int) bool { return l.refs[i].Sig.Key() < l.refs[j].Sig.Key() })
	// The referenced-class note set mirrors apimodel.LibsUsedBy: every
	// supertype and interface, every top-level callee's class, and every
	// body-bearing method's local types (collected during the skim into
	// the records' Calls plus the transient locals noted by lazyBody).
	for _, c := range l.prog.Classes() {
		noted[c.Super] = true
		for _, i := range c.Interfaces {
			noted[i] = true
		}
	}
	for _, r := range l.refs {
		for _, call := range r.Calls {
			noted[call.Class] = true
		}
	}
	for t := range l.localTypes {
		noted[t] = true
	}
	l.refClasses = make([]string, 0, len(noted))
	for cls := range noted {
		if cls != "" {
			l.refClasses = append(l.refClasses, cls)
		}
	}
	sort.Strings(l.refClasses)
}

// Program returns the skeleton program. Materialize mutates it in place;
// after MaterializeAll it is bit-identical to an eager Decode.
func (l *Lazy) Program() *jimple.Program { return l.prog }

// MethodRefs returns the skim records of every body-bearing method,
// sorted by method key. The slice is shared; treat it as read-only.
func (l *Lazy) MethodRefs() []MethodRef { return l.refs }

// RefClasses returns every class name the program references (supertypes,
// interfaces, invoked classes, local types), sorted —
// apimodel.LibsUsedByClasses' input, computed without retained bodies.
func (l *Lazy) RefClasses() []string { return l.refClasses }

// NumBodiedClasses returns how many classes have at least one
// body-bearing method (the denominator of the decoded/skipped counters).
func (l *Lazy) NumBodiedClasses() int { return len(l.classRecs) }

// Materialize decodes the retained body spans of one class into the
// skeleton, idempotently. The spans were fully skimmed at DecodeLazy
// time, so an error here means the underlying bytes changed — callers may
// treat it as impossible for data they own.
func (l *Lazy) Materialize(class string) error {
	if l.materialized[class] {
		return nil
	}
	l.materialized[class] = true
	for _, br := range l.classRecs[class] {
		d := &decoder{data: l.data, pos: br.start, pool: l.pool}
		if err := d.body(br.m); err != nil {
			return fmt.Errorf("dex: %w (at offset %d)", err, d.pos)
		}
	}
	return nil
}

// MaterializeAll decodes every retained body, leaving the program equal
// to an eager Decode — the fallback when a lazily opened app is scanned
// in full mode.
func (l *Lazy) MaterializeAll() error {
	classes := make([]string, 0, len(l.classRecs))
	for cls := range l.classRecs {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	for _, cls := range classes {
		if err := l.Materialize(cls); err != nil {
			return err
		}
	}
	return nil
}

// TargetSiteSearch returns the sorted keys of skimmed methods containing
// a top-level call to one of the wanted callee signatures. Fast path: a
// method ref can only name a signature whose class and method-name
// strings are interned in the constant pool, so an app that never
// mentions a target API resolves to no sites from the pool scan alone,
// before any method record is consulted.
func (l *Lazy) TargetSiteSearch(wanted []jimple.Sig) []string {
	if l.poolSet == nil {
		l.poolSet = make(map[string]bool, len(l.pool))
		for _, s := range l.pool {
			l.poolSet[s] = true
		}
	}
	keys := make(map[string]bool, len(wanted))
	for _, w := range wanted {
		if l.poolSet[w.Class] && l.poolSet[w.Name] {
			keys[w.Key()] = true
		}
	}
	if len(keys) == 0 {
		return nil
	}
	var out []string
	for i := range l.refs {
		for _, c := range l.refs[i].Calls {
			if keys[c.Key()] {
				out = append(out, l.refs[i].Sig.Key())
				break
			}
		}
	}
	return out
}

// lazyBody is the decoder hook for the skim: it runs the shared body core
// over a throwaway method (identical parsing, identical errors), records
// the span and the extracted MethodRef, and leaves m bodiless.
func (d *decoder) lazyBody(m *jimple.Method) error {
	start := d.pos
	tmp := jimple.Method{Sig: m.Sig, Static: m.Static}
	if err := d.body(&tmp); err != nil {
		return err
	}
	if !tmp.HasBody() {
		// Empty-body normalization, mirrored onto the skeleton: nothing to
		// materialize later.
		m.Abstract = true
		return nil
	}
	if d.lazy.localTypes == nil {
		d.lazy.localTypes = make(map[string]bool)
	}
	for _, lcl := range tmp.Locals {
		d.lazy.localTypes[lcl.Type] = true
	}
	d.lazy.classRecs[m.Sig.Class] = append(d.lazy.classRecs[m.Sig.Class],
		bodiedRec{m: m, start: start, ref: refOf(&tmp)})
	return nil
}
