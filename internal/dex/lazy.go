package dex

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/jimple"
)

// This file is the lazy decode fast path for the targeted engine mode:
// DecodeLazy parses the container eagerly down to class/field/method
// headers but retains no method bodies. Each body section is skimmed once
// to delimit its byte span and extract a MethodRef — the call targets,
// explicit-intent class names, and referenced types the demand-driven
// closure rules need. The skim (skimBody below) walks the same bytes the
// eager core walks, runs the same validation checks in the same order,
// but never materializes statement or value objects — the bulk of a cold
// decode's allocations for bodies targeted mode will never visit. On any
// skim rejection the materializing core re-runs over the span, so
// malformed input fails with the eager path's exact error and offset.
// Materialize re-runs the eager core over a recorded span to give a
// demanded class its bodies back, so a fully materialized lazy program is
// bit-identical to an eager Decode of the same bytes.

// MethodRef is the skim record of one body-bearing method: everything the
// targeted closure engine consults without the body being retained.
type MethodRef struct {
	// Sig is the method's full signature (declaring class included).
	Sig jimple.Sig
	// Calls lists the top-level callee signatures in statement order —
	// the jimple.InvokeOf shape: an InvokeStmt or an AssignStmt whose RHS
	// is an invoke. Nested invokes cannot be expressed at statement level,
	// so this is exactly the call set the call graph builds from.
	Calls []jimple.Sig
	// Intents lists the string-constant class names passed to one-argument
	// setClassName calls anywhere in the body: a superset of the
	// explicit-intent targets callgraph resolves (which also requires the
	// receiver local to alias the launched Intent).
	Intents []string
}

// refOf extracts the skim record from a decoded body-bearing method. It
// is the single extraction rule shared by the lazy skim and MethodRefsOf,
// which keeps the two scan paths' closure inputs identical.
func refOf(m *jimple.Method) MethodRef {
	ref := MethodRef{Sig: m.Sig}
	for _, s := range m.Body {
		inv, ok := jimple.InvokeOf(s)
		if !ok {
			continue
		}
		ref.Calls = append(ref.Calls, inv.Callee)
		if inv.Callee.Name == "setClassName" && len(inv.Args) == 1 {
			if sc, isStr := inv.Args[0].(jimple.StrConst); isStr {
				ref.Intents = append(ref.Intents, sc.V)
			}
		}
	}
	return ref
}

// MethodRefsOf extracts skim records from an eagerly decoded program's
// body-bearing methods, sorted by method key. The in-memory targeted scan
// path feeds these to the closure engine; the differential tests pin them
// equal to a Lazy skim of the same program's encoded bytes.
func MethodRefsOf(p *jimple.Program) []MethodRef {
	var out []MethodRef
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				out = append(out, refOf(m))
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sig.Key() < out[j].Sig.Key() })
	return out
}

// bodiedRec ties a skeleton method to its skim record and the offset of
// its encoded body section (start of the locals count).
type bodiedRec struct {
	m     *jimple.Method
	start int
	ref   MethodRef
}

// Lazy is a lazily decoded program: full headers, no bodies. Methods that
// had a body in the bytes sit in the skeleton with Abstract=false and
// Body=nil (HasBody false) until their class is materialized. Lazy is not
// safe for concurrent mutation; materialize before sharing the program.
type Lazy struct {
	data []byte
	pool []string

	prog      *jimple.Program
	classRecs map[string][]bodiedRec
	refs      []MethodRef
	// localTypes accumulates the declared local types seen during the
	// skim; bodies are dropped, so the set is captured in passing.
	localTypes   map[string]bool
	refClasses   []string
	materialized map[string]bool
	poolSet      map[string]bool // built on first TargetSiteSearch
}

// DecodeLazy parses bytes produced by Encode into a Lazy program. It
// accepts and rejects exactly the inputs Decode does: the skim shares the
// eager decoder core statement for statement.
func DecodeLazy(data []byte) (*Lazy, error) {
	l := &Lazy{
		data:         data,
		classRecs:    make(map[string][]bodiedRec),
		materialized: make(map[string]bool),
	}
	d := &decoder{data: data, lazy: l}
	prog, err := d.run()
	if err != nil {
		return nil, fmt.Errorf("dex: %w (at offset %d)", err, d.pos)
	}
	l.prog = prog
	l.pool = d.pool
	l.finalize()
	return l, nil
}

// finalize freezes the sorted record list and the referenced-class set
// once the whole container has parsed.
func (l *Lazy) finalize() {
	classes := make([]string, 0, len(l.classRecs))
	for cls := range l.classRecs {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	noted := make(map[string]bool)
	for _, cls := range classes {
		for _, br := range l.classRecs[cls] {
			l.refs = append(l.refs, br.ref)
		}
	}
	sort.SliceStable(l.refs, func(i, j int) bool { return l.refs[i].Sig.Key() < l.refs[j].Sig.Key() })
	// The referenced-class note set mirrors apimodel.LibsUsedBy: every
	// supertype and interface, every top-level callee's class, and every
	// body-bearing method's local types (collected during the skim into
	// the records' Calls plus the transient locals noted by lazyBody).
	for _, c := range l.prog.Classes() {
		noted[c.Super] = true
		for _, i := range c.Interfaces {
			noted[i] = true
		}
	}
	for _, r := range l.refs {
		for _, call := range r.Calls {
			noted[call.Class] = true
		}
	}
	for t := range l.localTypes {
		noted[t] = true
	}
	l.refClasses = make([]string, 0, len(noted))
	for cls := range noted {
		if cls != "" {
			l.refClasses = append(l.refClasses, cls)
		}
	}
	sort.Strings(l.refClasses)
}

// Program returns the skeleton program. Materialize mutates it in place;
// after MaterializeAll it is bit-identical to an eager Decode.
func (l *Lazy) Program() *jimple.Program { return l.prog }

// MethodRefs returns the skim records of every body-bearing method,
// sorted by method key. The slice is shared; treat it as read-only.
func (l *Lazy) MethodRefs() []MethodRef { return l.refs }

// RefClasses returns every class name the program references (supertypes,
// interfaces, invoked classes, local types), sorted —
// apimodel.LibsUsedByClasses' input, computed without retained bodies.
func (l *Lazy) RefClasses() []string { return l.refClasses }

// NumBodiedClasses returns how many classes have at least one
// body-bearing method (the denominator of the decoded/skipped counters).
func (l *Lazy) NumBodiedClasses() int { return len(l.classRecs) }

// Materialize decodes the retained body spans of one class into the
// skeleton, idempotently. The spans were fully skimmed at DecodeLazy
// time, so an error here means the underlying bytes changed — callers may
// treat it as impossible for data they own.
func (l *Lazy) Materialize(class string) error {
	if l.materialized[class] {
		return nil
	}
	l.materialized[class] = true
	for _, br := range l.classRecs[class] {
		d := &decoder{data: l.data, pos: br.start, pool: l.pool}
		if err := d.body(br.m); err != nil {
			return fmt.Errorf("dex: %w (at offset %d)", err, d.pos)
		}
	}
	return nil
}

// MaterializeAll decodes every retained body, leaving the program equal
// to an eager Decode — the fallback when a lazily opened app is scanned
// in full mode.
func (l *Lazy) MaterializeAll() error {
	classes := make([]string, 0, len(l.classRecs))
	for cls := range l.classRecs {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	for _, cls := range classes {
		if err := l.Materialize(cls); err != nil {
			return err
		}
	}
	return nil
}

// TargetSiteSearch returns the sorted keys of skimmed methods containing
// a top-level call to one of the wanted callee signatures. Fast path: a
// method ref can only name a signature whose class and method-name
// strings are interned in the constant pool, so an app that never
// mentions a target API resolves to no sites from the pool scan alone,
// before any method record is consulted.
func (l *Lazy) TargetSiteSearch(wanted []jimple.Sig) []string {
	if l.poolSet == nil {
		l.poolSet = make(map[string]bool, len(l.pool))
		for _, s := range l.pool {
			l.poolSet[s] = true
		}
	}
	keys := make(map[string]bool, len(wanted))
	for _, w := range wanted {
		if l.poolSet[w.Class] && l.poolSet[w.Name] {
			keys[w.Key()] = true
		}
	}
	if len(keys) == 0 {
		return nil
	}
	var out []string
	for i := range l.refs {
		for _, c := range l.refs[i].Calls {
			if keys[c.Key()] {
				out = append(out, l.refs[i].Sig.Key())
				break
			}
		}
	}
	return out
}

// lazyBody is the decoder hook for the skim: it parses the body span
// without materializing statements, records the span and the extracted
// MethodRef, and leaves m bodiless.
func (d *decoder) lazyBody(m *jimple.Method) error {
	start := d.pos
	ref := MethodRef{Sig: m.Sig}
	empty, err := d.skimBody(&ref)
	if err != nil {
		// Re-run the materializing core over the same span: malformed input
		// fails with the eager path's exact error and offset, and a span the
		// core accepts (a skim divergence, never expected) falls back to the
		// materialized record so the two paths cannot drift.
		d.pos = start
		tmp := jimple.Method{Sig: m.Sig, Static: m.Static}
		if coreErr := d.body(&tmp); coreErr != nil {
			return coreErr
		}
		empty, ref = !tmp.HasBody(), refOf(&tmp)
		if !empty {
			for _, lcl := range tmp.Locals {
				d.noteLocalType(lcl.Type)
			}
		}
	}
	if empty {
		// Empty-body normalization, mirrored onto the skeleton: nothing to
		// materialize later.
		m.Abstract = true
		return nil
	}
	d.lazy.classRecs[m.Sig.Class] = append(d.lazy.classRecs[m.Sig.Class],
		bodiedRec{m: m, start: start, ref: ref})
	return nil
}

func (d *decoder) noteLocalType(t string) {
	if d.lazy.localTypes == nil {
		d.lazy.localTypes = make(map[string]bool)
	}
	d.lazy.localTypes[t] = true
}

// errSkimReject marks a structural check the skim cannot phrase exactly
// (the eager error interpolates the materialized value's dynamic type);
// lazyBody's fallback re-run produces the real error.
var errSkimReject = errors.New("dex: skim rejected span")

// skimBody mirrors decoder.body over the same bytes with the same checks
// in the same order, but drops everything except the MethodRef capture
// and the local-type notes. empty reports whether the section holds zero
// statements (the empty-body normalization case).
func (d *decoder) skimBody(ref *MethodRef) (empty bool, err error) {
	nl, err := d.count("local")
	if err != nil {
		return false, err
	}
	d.localScratch = d.localScratch[:0]
	for i := 0; i < nl; i++ {
		if _, err := d.ref(); err != nil { // name
			return false, err
		}
		t, err := d.ref()
		if err != nil {
			return false, err
		}
		d.localScratch = append(d.localScratch, t)
	}
	ns, err := d.count("statement")
	if err != nil {
		return false, err
	}
	if ns > 0 {
		// Empty bodies normalize to abstract stubs with their locals
		// dropped, so their local types must not leak into the note set.
		for _, t := range d.localScratch {
			d.noteLocalType(t)
		}
	}
	for i := 0; i < ns; i++ {
		if err := d.skimStmt(ref); err != nil {
			return false, err
		}
	}
	nt, err := d.count("trap")
	if err != nil {
		return false, err
	}
	for i := 0; i < nt; i++ {
		for j := 0; j < 3; j++ { // begin, end, handler
			if _, err := d.u64(); err != nil {
				return false, err
			}
		}
		if _, err := d.ref(); err != nil { // exception
			return false, err
		}
	}
	return ns == 0, nil
}

func (d *decoder) skimStmt(ref *MethodRef) error {
	op, err := d.byte()
	if err != nil {
		return err
	}
	switch op {
	case opAssign:
		lhsTag, _, err := d.skimValue(nil)
		if err != nil {
			return err
		}
		if lhsTag != tagLocal && lhsTag != tagFieldRef {
			return errSkimReject // core: "assign target is not an lvalue"
		}
		_, _, err = d.skimValue(ref)
		return err
	case opInvoke:
		tag, _, err := d.skimValue(ref)
		if err != nil {
			return err
		}
		if tag != tagInvoke {
			return errSkimReject // core: "invoke statement holds ..."
		}
		return nil
	case opIf:
		if _, _, err := d.skimValue(nil); err != nil {
			return err
		}
		_, err := d.u64()
		return err
	case opGoto:
		_, err := d.u64()
		return err
	case opReturn:
		_, _, err := d.skimValue(nil)
		return err
	case opReturnVoid, opNop:
		return nil
	}
	return fmt.Errorf("unknown opcode %d", op)
}

// skimValue parses one value without materializing it, returning the
// value's tag and, for string constants, the pooled string. When top is
// non-nil and the value is an invoke, its callee lands in top.Calls (and
// a lone string-constant setClassName argument in top.Intents); the
// capture applies only at the outermost level, matching jimple.InvokeOf —
// nested invokes are not statement-level calls.
func (d *decoder) skimValue(top *MethodRef) (byte, string, error) {
	tag, err := d.byte()
	if err != nil {
		return 0, "", err
	}
	switch tag {
	case tagLocal, tagThisRef, tagNew:
		_, err := d.ref()
		return tag, "", err
	case tagIntConst:
		_, err := d.i64()
		return tag, "", err
	case tagStrConst:
		s, err := d.ref()
		return tag, s, err
	case tagNull, tagCaughtEx:
		return tag, "", nil
	case tagParamRef:
		if _, err := d.u64(); err != nil {
			return tag, "", err
		}
		_, err := d.ref()
		return tag, "", err
	case tagFieldRef:
		for i := 0; i < 3; i++ { // base, class, field
			if _, err := d.ref(); err != nil {
				return tag, "", err
			}
		}
		return tag, "", nil
	case tagInvoke:
		kind, err := d.byte()
		if err != nil {
			return tag, "", err
		}
		if kind > byte(jimple.InvokeStatic) {
			return tag, "", fmt.Errorf("bad invoke kind %d", kind)
		}
		if _, err := d.ref(); err != nil { // base
			return tag, "", err
		}
		var callee jimple.Sig
		if top != nil {
			if callee, err = d.sig(); err != nil {
				return tag, "", err
			}
		} else if err := d.skimSig(); err != nil {
			return tag, "", err
		}
		na, err := d.count("argument")
		if err != nil {
			return tag, "", err
		}
		var arg0Tag byte
		var arg0Str string
		for i := 0; i < na; i++ {
			t, s, err := d.skimValue(nil)
			if err != nil {
				return tag, "", err
			}
			if i == 0 {
				arg0Tag, arg0Str = t, s
			}
		}
		if top != nil {
			top.Calls = append(top.Calls, callee)
			if callee.Name == "setClassName" && na == 1 && arg0Tag == tagStrConst {
				top.Intents = append(top.Intents, arg0Str)
			}
		}
		return tag, "", nil
	case tagBin:
		op, err := d.byte()
		if err != nil {
			return tag, "", err
		}
		if op > byte(jimple.OpXor) {
			return tag, "", fmt.Errorf("bad binary op %d", op)
		}
		if _, _, err := d.skimValue(nil); err != nil {
			return tag, "", err
		}
		_, _, err = d.skimValue(nil)
		return tag, "", err
	case tagNeg:
		_, _, err := d.skimValue(nil)
		return tag, "", err
	case tagCast, tagInstanceOf:
		if _, err := d.ref(); err != nil {
			return tag, "", err
		}
		_, _, err := d.skimValue(nil)
		return tag, "", err
	}
	return 0, "", fmt.Errorf("unknown value tag %d", tag)
}

// skimSig consumes an encoded signature without building it.
func (d *decoder) skimSig() error {
	for i := 0; i < 2; i++ { // class, name
		if _, err := d.ref(); err != nil {
			return err
		}
	}
	np, err := d.count("param")
	if err != nil {
		return err
	}
	for i := 0; i < np; i++ {
		if _, err := d.ref(); err != nil {
			return err
		}
	}
	_, err = d.ref() // ret
	return err
}
