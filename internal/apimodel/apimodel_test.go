package apimodel

import (
	"testing"

	"repro/internal/jimple"
)

func TestAnnotationTotalsMatchPaper(t *testing.T) {
	reg := NewRegistry()
	targets, configs, respChecks := reg.Totals()
	// Paper §4.3: "we annotate 14 target APIs, 77 config APIs, and 2
	// response checking APIs from the six libraries."
	if targets != 14 {
		t.Errorf("target APIs: got %d, want 14", targets)
	}
	if configs != 77 {
		t.Errorf("config APIs: got %d, want 77", configs)
	}
	if respChecks != 2 {
		t.Errorf("response checking APIs: got %d, want 2", respChecks)
	}
	if len(reg.Libraries()) != 6 {
		t.Errorf("libraries: got %d, want 6", len(reg.Libraries()))
	}
}

func TestTargetLookup(t *testing.T) {
	reg := NewRegistry()
	getSig := jimple.Sig{Class: ClassBasicClient, Name: "get", Params: []string{jimple.TypeString}, Ret: ClassBasicResponse}
	lib, target, ok := reg.TargetOf(getSig)
	if !ok {
		t.Fatal("BasicHttpClient.get not found as target")
	}
	if lib.Key != LibBasic {
		t.Errorf("wrong library: %s", lib.Key)
	}
	if target.HTTPMethod != "GET" || !target.ReturnsResponse {
		t.Errorf("target annotation wrong: %+v", target)
	}
	if _, _, ok := reg.TargetOf(jimple.Sig{Class: "x.Y", Name: "z", Ret: "void"}); ok {
		t.Error("false positive target lookup")
	}
}

func TestConfigLookupAndKinds(t *testing.T) {
	reg := NewRegistry()
	cases := []struct {
		class, name string
		params      []string
		kind        ConfigKind
		countArg    int
	}{
		{ClassBasicClient, "setMaxRetries", []string{"int"}, ConfigRetry, 0},
		{ClassBasicClient, "setReadTimeout", []string{"int"}, ConfigTimeout, 0},
		{ClassVolleyRequest, "setRetryPolicy", []string{ClassVolleyPolicy}, ConfigRetry, -1},
		{ClassAsyncClient, "setMaxRetriesAndTimeout", []string{"int", "int"}, ConfigRetry, 0},
		{ClassHttpURLConn, "setUseCaches", []string{"boolean"}, ConfigOther, 0},
	}
	for _, c := range cases {
		s := jimple.Sig{Class: c.class, Name: c.name, Params: c.params, Ret: jimple.TypeVoid}
		lib, cfg, ok := reg.ConfigOf(s)
		if !ok {
			t.Errorf("config %s not found", s.Key())
			continue
		}
		if cfg.Kind != c.kind {
			t.Errorf("%s: kind %v, want %v", s.Key(), cfg.Kind, c.kind)
		}
		if cfg.Kind == ConfigRetry && cfg.CountArg != c.countArg {
			t.Errorf("%s: countArg %d, want %d", s.Key(), cfg.CountArg, c.countArg)
		}
		if lib == nil {
			t.Errorf("%s: nil library", s.Key())
		}
	}
}

func TestRespCheckLookup(t *testing.T) {
	reg := NewRegistry()
	ok1 := reg.IsRespCheck(jimple.Sig{Class: ClassOkResponse, Name: "isSuccessful", Ret: "boolean"})
	ok2 := reg.IsRespCheck(jimple.Sig{Class: ClassBasicResponse, Name: "isSuccess", Ret: "boolean"})
	if !ok1 || !ok2 {
		t.Error("response-check APIs not found")
	}
	if reg.IsRespCheck(jimple.Sig{Class: ClassBasicResponse, Name: "getBodyAsString", Ret: jimple.TypeString}) {
		t.Error("body read misclassified as response check")
	}
}

func TestTable4DefaultsShape(t *testing.T) {
	reg := NewRegistry()
	// Volley: default timeout 2500 ms, auto response check (Table 4 ⋆).
	volley := reg.Library(LibVolley)
	if volley.Defaults.TimeoutMs != 2500 || !volley.Defaults.AutoRespCheck {
		t.Errorf("Volley defaults wrong: %+v", volley.Defaults)
	}
	// Android Async HTTP: 5 default retries applied to POST (§4.2).
	asyncHTTP := reg.Library(LibAsyncHTTP)
	if asyncHTTP.Defaults.Retries != 5 || !asyncHTTP.Defaults.RetriesApplyToPost {
		t.Errorf("AsyncHttp defaults wrong: %+v", asyncHTTP.Defaults)
	}
	// HttpURLConnection: blocking connect — no default timeout (Cause 3.1).
	native := reg.Library(LibHttpURL)
	if native.Defaults.TimeoutMs != 0 {
		t.Errorf("HttpURLConnection should have no default timeout: %+v", native.Defaults)
	}
	// OkHttp: no default timeout either (§1.2 conversation).
	if reg.Library(LibOkHttp).Defaults.TimeoutMs != 0 {
		t.Error("OkHttp should have no default timeout")
	}
	// Retry-capable libraries are exactly the four third-party ones.
	for _, l := range reg.Libraries() {
		wantRetry := l.Key == LibVolley || l.Key == LibOkHttp || l.Key == LibAsyncHTTP || l.Key == LibBasic
		if l.HasRetryAPIs != wantRetry {
			t.Errorf("%s: HasRetryAPIs=%v, want %v", l.Key, l.HasRetryAPIs, wantRetry)
		}
		if l.ThirdParty != wantRetry {
			t.Errorf("%s: ThirdParty=%v, want %v", l.Key, l.ThirdParty, wantRetry)
		}
		if !l.HasTimeoutAPIs() {
			t.Errorf("%s: every studied library exposes timeout APIs", l.Key)
		}
	}
}

func TestStubsCoverAnnotations(t *testing.T) {
	stubs := Stubs()
	if err := stubs.Validate(); err != nil {
		t.Fatalf("stubs invalid: %v", err)
	}
	reg := NewRegistry()
	for _, l := range reg.Libraries() {
		for _, tgt := range l.Targets {
			if stubs.Method(tgt.Sig) == nil {
				t.Errorf("stub missing target %s", tgt.Sig.Key())
			}
		}
		for _, cfg := range l.Configs {
			if stubs.Method(cfg.Sig) == nil {
				t.Errorf("stub missing config %s", cfg.Sig.Key())
			}
		}
		for _, rc := range l.RespChecks {
			if stubs.Method(rc.Sig) == nil {
				t.Errorf("stub missing resp check %s", rc.Sig.Key())
			}
		}
		for _, cb := range l.Callbacks {
			c := stubs.Class(cb.Iface)
			if c == nil {
				t.Errorf("stub missing callback iface %s", cb.Iface)
				continue
			}
			if c.Method(mustSub(t, cb.Iface, cb.ErrorSubsig)) == nil {
				t.Errorf("stub iface %s missing error callback %s", cb.Iface, cb.ErrorSubsig)
			}
		}
	}
	// Internal hierarchy: StringRequest is a Request; NoConnectionError is
	// a VolleyError.
	if stubs.Class(ClassVolleyStringReq).Super != ClassVolleyRequest {
		t.Error("StringRequest should extend Request")
	}
	if stubs.Class(ClassVolleyNoConn).Super != ClassVolleyError {
		t.Error("NoConnectionError should extend VolleyError")
	}
}

func mustSub(t *testing.T, iface, sub string) string {
	t.Helper()
	s, err := jimple.ParseSigKey(iface + "." + sub)
	if err != nil {
		t.Fatalf("bad subsig %q: %v", sub, err)
	}
	return s.SubSigKey()
}

func TestLibsUsedBy(t *testing.T) {
	reg := NewRegistry()
	src := `class com.app.A extends java.lang.Object {
  method m()void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}
class com.app.ErrCb extends java.lang.Object implements com.android.volley.Response$ErrorListener {
  method onErrorResponse(com.android.volley.VolleyError)void {
    return
  }
}`
	prog := jimple.MustParse(src)
	used := reg.LibsUsedBy(prog)
	if len(used) != 2 || used[0] != LibAsyncHTTP && used[0] != LibBasic {
		// Sorted order: AndroidAsyncHttp < BasicHttp < Volley; only Basic
		// and Volley are used here.
		t.Logf("used: %v", used)
	}
	want := map[LibKey]bool{LibBasic: true, LibVolley: true}
	if len(used) != len(want) {
		t.Fatalf("LibsUsedBy: %v", used)
	}
	for _, k := range used {
		if !want[k] {
			t.Errorf("unexpected library %s", k)
		}
	}
}

func TestResponseUseSigsParse(t *testing.T) {
	for key := range ResponseUseSigs {
		if _, err := jimple.ParseSigKey(key); err != nil {
			t.Errorf("ResponseUseSigs entry %q malformed: %v", key, err)
		}
	}
}
