package apimodel

import (
	"repro/internal/jimple"
)

// Library class names. Exported so app generators, goldens, and examples
// can author code against the modeled libraries.
const (
	// HttpURLConnection (Android native).
	ClassURL         = "java.net.URL"
	ClassHttpURLConn = "java.net.HttpURLConnection"
	ClassInputStream = "java.io.InputStream"

	// Apache HttpClient (Android native).
	ClassApacheClient   = "org.apache.http.impl.client.DefaultHttpClient"
	ClassApacheRequest  = "org.apache.http.client.methods.HttpUriRequest"
	ClassApacheGet      = "org.apache.http.client.methods.HttpGet"
	ClassApachePost     = "org.apache.http.client.methods.HttpPost"
	ClassApacheResponse = "org.apache.http.HttpResponse"
	ClassApacheEntity   = "org.apache.http.HttpEntity"
	ClassApacheRetryH   = "org.apache.http.client.HttpRequestRetryHandler"
	ClassApacheParams   = "org.apache.http.params.HttpParams"

	// Google Volley.
	ClassVolleyQueue     = "com.android.volley.RequestQueue"
	ClassVolleyRequest   = "com.android.volley.Request"
	ClassVolleyStringReq = "com.android.volley.toolbox.StringRequest"
	ClassVolleyPolicy    = "com.android.volley.RetryPolicy"
	ClassVolleyListener  = "com.android.volley.Response$Listener"
	ClassVolleyErrListen = "com.android.volley.Response$ErrorListener"
	ClassVolleyError     = "com.android.volley.VolleyError"
	ClassVolleyNoConn    = "com.android.volley.NoConnectionError"
	ClassVolleyTimeout   = "com.android.volley.TimeoutError"
	ClassVolleyClientErr = "com.android.volley.ClientError"

	// OkHttp.
	ClassOkClient   = "com.squareup.okhttp.OkHttpClient"
	ClassOkRequest  = "com.squareup.okhttp.Request"
	ClassOkResponse = "com.squareup.okhttp.Response"
	ClassOkCallback = "com.squareup.okhttp.Callback"
	ClassOkCache    = "com.squareup.okhttp.Cache"

	// Android Asynchronous Http Client (loopj).
	ClassAsyncClient  = "com.loopj.android.http.AsyncHttpClient"
	ClassAsyncHandler = "com.loopj.android.http.AsyncHttpResponseHandler"

	// Basic HTTP client (turbomanage).
	ClassBasicClient   = "com.turbomanage.httpclient.BasicHttpClient"
	ClassBasicResponse = "com.turbomanage.httpclient.HttpResponse"

	// Volley request-method constants (com.android.volley.Request.Method).
	VolleyMethodGet  = 0
	VolleyMethodPost = 1
)

func sig(class, name string, params []string, ret string) jimple.Sig {
	return jimple.Sig{Class: class, Name: name, Params: params, Ret: ret}
}

// StandardLibraries returns the six annotated libraries in a fixed order
// matching the paper's Table 4 columns.
func StandardLibraries() []*Library {
	str := jimple.TypeString
	v := jimple.TypeVoid
	return []*Library{
		{
			Key:  LibHttpURL,
			Name: "HttpURLConnection client",
			Classes: []string{
				ClassURL, ClassHttpURLConn,
			},
			Targets: []Target{
				{Sig: sig(ClassHttpURLConn, "connect", nil, v), ConfigObjArg: -1, HandlerArg: -1},
				{Sig: sig(ClassHttpURLConn, "getInputStream", nil, ClassInputStream),
					ConfigObjArg: -1, HandlerArg: -1, ReturnsResponse: true, ResponseClass: ClassInputStream},
			},
			Configs: []Config{
				{Sig: sig(ClassHttpURLConn, "setConnectTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassHttpURLConn, "setReadTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassHttpURLConn, "setRequestMethod", []string{str}, v)},
				{Sig: sig(ClassHttpURLConn, "setRequestProperty", []string{str, str}, v)},
				{Sig: sig(ClassHttpURLConn, "setDoOutput", []string{"boolean"}, v)},
				{Sig: sig(ClassHttpURLConn, "setDoInput", []string{"boolean"}, v)},
				{Sig: sig(ClassHttpURLConn, "setUseCaches", []string{"boolean"}, v)},
				{Sig: sig(ClassHttpURLConn, "setInstanceFollowRedirects", []string{"boolean"}, v)},
				{Sig: sig(ClassHttpURLConn, "setChunkedStreamingMode", []string{"int"}, v)},
				{Sig: sig(ClassHttpURLConn, "setFixedLengthStreamingMode", []string{"int"}, v)},
			},
			Endpoints: []Endpoint{
				{Sig: sig(ClassURL, "<init>", []string{str}, v), URLArg: 0},
			},
			Defaults: Defaults{
				// The default Android network API performs a blocking
				// connect that can take minutes (paper Cause 3.1).
				TimeoutMs:          0,
				Retries:            1,
				AutoRetryTransient: true,
			},
		},
		{
			Key:  LibApache,
			Name: "Apache HttpClient",
			Classes: []string{
				ClassApacheClient, ClassApacheRequest, ClassApacheGet,
				ClassApachePost, ClassApacheResponse, ClassApacheEntity,
				ClassApacheRetryH, ClassApacheParams,
			},
			Targets: []Target{
				{Sig: sig(ClassApacheClient, "execute", []string{ClassApacheRequest}, ClassApacheResponse),
					ConfigObjArg: -1, HandlerArg: -1, ReturnsResponse: true, ResponseClass: ClassApacheResponse},
				{Sig: sig(ClassApacheClient, "executeRequest", []string{ClassApacheRequest, str}, ClassApacheResponse),
					ConfigObjArg: -1, HandlerArg: -1, ReturnsResponse: true, ResponseClass: ClassApacheResponse},
			},
			Configs: []Config{
				{Sig: sig(ClassApacheClient, "setConnectionTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassApacheClient, "setSoTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				// The retry handler exists but demands expert knowledge;
				// the paper buckets Apache among libraries without usable
				// retry APIs (91 of 285 apps use retry-capable libraries).
				{Sig: sig(ClassApacheClient, "setHttpRequestRetryHandler", []string{ClassApacheRetryH}, v)},
				{Sig: sig(ClassApacheClient, "setRedirecting", []string{"boolean"}, v)},
				{Sig: sig(ClassApacheClient, "setParams", []string{ClassApacheParams}, v)},
				{Sig: sig(ClassApacheClient, "setRedirectHandler", []string{"org.apache.http.client.RedirectHandler"}, v)},
				{Sig: sig(ClassApacheClient, "setReuseStrategy", []string{"org.apache.http.ConnectionReuseStrategy"}, v)},
				{Sig: sig(ClassApacheClient, "setKeepAliveStrategy", []string{"org.apache.http.conn.ConnectionKeepAliveStrategy"}, v)},
				{Sig: sig(ClassApacheClient, "setCookieStore", []string{"org.apache.http.client.CookieStore"}, v)},
				{Sig: sig(ClassApacheClient, "setCredentialsProvider", []string{"org.apache.http.client.CredentialsProvider"}, v)},
				{Sig: sig(ClassApacheClient, "setUserAgent", []string{str}, v)},
				{Sig: sig(ClassApacheClient, "setMaxConnections", []string{"int"}, v)},
				{Sig: sig(ClassApacheClient, "setStaleCheckingEnabled", []string{"boolean"}, v)},
			},
			Endpoints: []Endpoint{
				{Sig: sig(ClassApacheGet, "<init>", []string{str}, v), URLArg: 0},
				{Sig: sig(ClassApachePost, "<init>", []string{str}, v), URLArg: 0},
			},
			Defaults: Defaults{TimeoutMs: 0, Retries: 0},
		},
		{
			Key:          LibVolley,
			Name:         "Google Volley",
			ThirdParty:   true,
			HasRetryAPIs: true,
			Classes: []string{
				ClassVolleyQueue, ClassVolleyRequest, ClassVolleyStringReq,
				ClassVolleyPolicy, ClassVolleyListener, ClassVolleyErrListen,
				ClassVolleyError, ClassVolleyNoConn, ClassVolleyTimeout,
				ClassVolleyClientErr,
			},
			Targets: []Target{
				{Sig: sig(ClassVolleyQueue, "add", []string{ClassVolleyRequest}, ClassVolleyRequest),
					ConfigObjArg: 0, HandlerArg: -1},
			},
			Configs: []Config{
				{Sig: sig(ClassVolleyRequest, "setRetryPolicy", []string{ClassVolleyPolicy}, v), Kind: ConfigRetry, CountArg: -1},
				{Sig: sig(ClassVolleyRequest, "setTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassVolleyRequest, "setMaxRetries", []string{"int"}, v), Kind: ConfigRetry, CountArg: 0},
				{Sig: sig(ClassVolleyRequest, "setBackoffMultiplier", []string{"int"}, v), Kind: ConfigRetry, CountArg: -1},
				{Sig: sig(ClassVolleyRequest, "setShouldRetryServerErrors", []string{"boolean"}, v), Kind: ConfigRetry, CountArg: -1},
				{Sig: sig(ClassVolleyRequest, "setShouldCache", []string{"boolean"}, v)},
				{Sig: sig(ClassVolleyRequest, "setTag", []string{jimple.TypeObject}, v)},
				{Sig: sig(ClassVolleyRequest, "setPriority", []string{"int"}, v)},
				{Sig: sig(ClassVolleyRequest, "setSequence", []string{"int"}, v)},
				{Sig: sig(ClassVolleyRequest, "setCacheEntry", []string{"com.android.volley.Cache$Entry"}, v)},
				{Sig: sig(ClassVolleyRequest, "setHeader", []string{str, str}, v)},
				{Sig: sig(ClassVolleyRequest, "setBody", []string{"byte[]"}, v)},
				{Sig: sig(ClassVolleyRequest, "setRedirectsEnabled", []string{"boolean"}, v)},
				{Sig: sig(ClassVolleyRequest, "setNetworkTimeout", []string{"int"}, v), Kind: ConfigTimeout},
			},
			Endpoints: []Endpoint{
				{Sig: sig(ClassVolleyStringReq, "<init>",
					[]string{"int", str, ClassVolleyListener, ClassVolleyErrListen}, v), URLArg: 1},
			},
			Callbacks: []Callback{{
				Iface:             ClassVolleyErrListen,
				ErrorSubsig:       "onErrorResponse(" + ClassVolleyError + ")void",
				SuccessSubsig:     "onResponse(" + jimple.TypeObject + ")void",
				ErrorArg:          0,
				ExposesErrorTypes: true,
			}},
			Defaults: Defaults{
				// Volley's default retry policy: 2500 ms timeout, one
				// retry, applied to every request including POST (§1.2,
				// Figure 3 and Table 8).
				TimeoutMs:          2500,
				Retries:            1,
				AutoRetryTransient: true,
				RetriesApplyToPost: true,
				AutoRespCheck:      true,
			},
		},
		{
			Key:          LibOkHttp,
			Name:         "OkHttp",
			ThirdParty:   true,
			HasRetryAPIs: true,
			Classes: []string{
				ClassOkClient, ClassOkRequest, ClassOkResponse, ClassOkCallback, ClassOkCache,
			},
			Targets: []Target{
				{Sig: sig(ClassOkClient, "execute", []string{ClassOkRequest}, ClassOkResponse),
					ConfigObjArg: -1, HandlerArg: -1, ReturnsResponse: true, ResponseClass: ClassOkResponse},
				{Sig: sig(ClassOkClient, "enqueue", []string{ClassOkRequest, ClassOkCallback}, v),
					ConfigObjArg: -1, HandlerArg: 1},
			},
			Configs: []Config{
				{Sig: sig(ClassOkClient, "setConnectTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassOkClient, "setReadTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassOkClient, "setWriteTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassOkClient, "setRetryOnConnectionFailure", []string{"boolean"}, v), Kind: ConfigRetry, CountArg: -1},
				{Sig: sig(ClassOkClient, "setMaxRetries", []string{"int"}, v), Kind: ConfigRetry, CountArg: 0},
				{Sig: sig(ClassOkClient, "setFollowRedirects", []string{"boolean"}, v)},
				{Sig: sig(ClassOkClient, "setFollowSslRedirects", []string{"boolean"}, v)},
				{Sig: sig(ClassOkClient, "setCache", []string{ClassOkCache}, v)},
				{Sig: sig(ClassOkClient, "setProxy", []string{"java.net.Proxy"}, v)},
				{Sig: sig(ClassOkClient, "setProtocols", []string{"java.util.List"}, v)},
				{Sig: sig(ClassOkClient, "setConnectionPool", []string{"com.squareup.okhttp.ConnectionPool"}, v)},
				{Sig: sig(ClassOkClient, "setAuthenticator", []string{"com.squareup.okhttp.Authenticator"}, v)},
			},
			RespChecks: []RespCheck{
				{Sig: sig(ClassOkResponse, "isSuccessful", nil, "boolean")},
			},
			Endpoints: []Endpoint{
				{Sig: sig(ClassOkRequest, "<init>", []string{str}, v), URLArg: 0},
			},
			Callbacks: []Callback{{
				Iface:         ClassOkCallback,
				ErrorSubsig:   "onFailure(" + ClassOkRequest + ",java.io.IOException)void",
				SuccessSubsig: "onResponse(" + ClassOkResponse + ")void",
				ErrorArg:      1,
			}},
			Defaults: Defaults{
				// OkHttp sets no request timeout by default (§1.2's
				// library-designer conversation) but does retry
				// connection failures.
				TimeoutMs:          0,
				Retries:            1,
				AutoRetryTransient: true,
				RetriesApplyToPost: true,
			},
		},
		{
			Key:          LibAsyncHTTP,
			Name:         "Android Asynchronous Http Client",
			ThirdParty:   true,
			HasRetryAPIs: true,
			Classes: []string{
				ClassAsyncClient, ClassAsyncHandler,
			},
			Targets: []Target{
				{Sig: sig(ClassAsyncClient, "get", []string{str, ClassAsyncHandler}, v),
					HTTPMethod: "GET", ConfigObjArg: -1, HandlerArg: 1},
				{Sig: sig(ClassAsyncClient, "post", []string{str, ClassAsyncHandler}, v),
					HTTPMethod: "POST", ConfigObjArg: -1, HandlerArg: 1},
				{Sig: sig(ClassAsyncClient, "put", []string{str, ClassAsyncHandler}, v),
					HTTPMethod: "PUT", ConfigObjArg: -1, HandlerArg: 1},
				{Sig: sig(ClassAsyncClient, "delete", []string{str, ClassAsyncHandler}, v),
					HTTPMethod: "DELETE", ConfigObjArg: -1, HandlerArg: 1},
			},
			Configs: []Config{
				{Sig: sig(ClassAsyncClient, "setTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassAsyncClient, "setConnectTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassAsyncClient, "setResponseTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassAsyncClient, "setMaxRetriesAndTimeout", []string{"int", "int"}, v), Kind: ConfigRetry, CountArg: 0},
				{Sig: sig(ClassAsyncClient, "allowRetryExceptionClass", []string{"java.lang.Class"}, v), Kind: ConfigRetry, CountArg: -1},
				{Sig: sig(ClassAsyncClient, "blockRetryExceptionClass", []string{"java.lang.Class"}, v), Kind: ConfigRetry, CountArg: -1},
				{Sig: sig(ClassAsyncClient, "setMaxConnections", []string{"int"}, v)},
				{Sig: sig(ClassAsyncClient, "setEnableRedirects", []string{"boolean"}, v)},
				{Sig: sig(ClassAsyncClient, "setUserAgent", []string{str}, v)},
				{Sig: sig(ClassAsyncClient, "setBasicAuth", []string{str, str}, v)},
				{Sig: sig(ClassAsyncClient, "addHeader", []string{str, str}, v)},
				{Sig: sig(ClassAsyncClient, "setCookieStore", []string{"org.apache.http.client.CookieStore"}, v)},
				{Sig: sig(ClassAsyncClient, "setThreadPool", []string{"java.util.concurrent.ExecutorService"}, v)},
				{Sig: sig(ClassAsyncClient, "setURLEncodingEnabled", []string{"boolean"}, v)},
				{Sig: sig(ClassAsyncClient, "setProxy", []string{str, "int"}, v)},
			},
			Endpoints: []Endpoint{
				{Sig: sig(ClassAsyncClient, "get", []string{str, ClassAsyncHandler}, v), URLArg: 0},
				{Sig: sig(ClassAsyncClient, "post", []string{str, ClassAsyncHandler}, v), URLArg: 0},
				{Sig: sig(ClassAsyncClient, "put", []string{str, ClassAsyncHandler}, v), URLArg: 0},
				{Sig: sig(ClassAsyncClient, "delete", []string{str, ClassAsyncHandler}, v), URLArg: 0},
			},
			Callbacks: []Callback{{
				Iface:         ClassAsyncHandler,
				ErrorSubsig:   "onFailure(java.lang.Throwable,java.lang.String)void",
				SuccessSubsig: "onSuccess(java.lang.String)void",
				ErrorArg:      0,
			}},
			Defaults: Defaults{
				// 10-second default timeout; retries 5 times for all
				// request kinds by default (paper §4.2: "Android Async
				// HTTP library retries 5 times for all kinds of requests
				// by default").
				TimeoutMs:          10000,
				Retries:            5,
				AutoRetryTransient: true,
				RetriesApplyToPost: true,
			},
		},
		{
			Key:          LibBasic,
			Name:         "Basic Http Client",
			ThirdParty:   true,
			HasRetryAPIs: true,
			Classes: []string{
				ClassBasicClient, ClassBasicResponse,
			},
			Targets: []Target{
				{Sig: sig(ClassBasicClient, "get", []string{str}, ClassBasicResponse),
					HTTPMethod: "GET", ConfigObjArg: -1, HandlerArg: -1, ReturnsResponse: true, ResponseClass: ClassBasicResponse},
				{Sig: sig(ClassBasicClient, "post", []string{str, "byte[]"}, ClassBasicResponse),
					HTTPMethod: "POST", ConfigObjArg: -1, HandlerArg: -1, ReturnsResponse: true, ResponseClass: ClassBasicResponse},
				{Sig: sig(ClassBasicClient, "delete", []string{str}, ClassBasicResponse),
					HTTPMethod: "DELETE", ConfigObjArg: -1, HandlerArg: -1, ReturnsResponse: true, ResponseClass: ClassBasicResponse},
			},
			Configs: []Config{
				{Sig: sig(ClassBasicClient, "setConnectionTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassBasicClient, "setReadTimeout", []string{"int"}, v), Kind: ConfigTimeout},
				{Sig: sig(ClassBasicClient, "setMaxRetries", []string{"int"}, v), Kind: ConfigRetry, CountArg: 0},
				{Sig: sig(ClassBasicClient, "addHeader", []string{str, str}, v)},
				{Sig: sig(ClassBasicClient, "setBaseUrl", []string{str}, v)},
				{Sig: sig(ClassBasicClient, "addQueryParameter", []string{str, str}, v)},
				{Sig: sig(ClassBasicClient, "setRequestLogger", []string{"com.turbomanage.httpclient.RequestLogger"}, v)},
				{Sig: sig(ClassBasicClient, "setAsync", []string{"boolean"}, v)},
				{Sig: sig(ClassBasicClient, "setRequestHandler", []string{"com.turbomanage.httpclient.RequestHandler"}, v)},
				{Sig: sig(ClassBasicClient, "setContentType", []string{str}, v)},
				{Sig: sig(ClassBasicClient, "setUserAgent", []string{str}, v)},
				{Sig: sig(ClassBasicClient, "setFollowRedirects", []string{"boolean"}, v)},
				{Sig: sig(ClassBasicClient, "setCookieManager", []string{"java.net.CookieManager"}, v)},
			},
			RespChecks: []RespCheck{
				{Sig: sig(ClassBasicResponse, "isSuccess", nil, "boolean")},
			},
			Endpoints: []Endpoint{
				{Sig: sig(ClassBasicClient, "get", []string{str}, ClassBasicResponse), URLArg: 0},
				{Sig: sig(ClassBasicClient, "post", []string{str, "byte[]"}, ClassBasicResponse), URLArg: 0},
				{Sig: sig(ClassBasicClient, "delete", []string{str}, ClassBasicResponse), URLArg: 0},
			},
			Defaults: Defaults{
				TimeoutMs:          4000,
				Retries:            1,
				AutoRetryTransient: true,
			},
		},
	}
}
