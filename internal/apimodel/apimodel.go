// Package apimodel is NChecker's library-API annotation registry: for each
// of the six most-used mobile HTTP libraries the paper studies
// (HttpURLConnection, Apache HttpClient, Google Volley, OkHttp, Android
// Asynchronous HTTP, and Basic/turbomanage HTTP), it records the target
// APIs that submit network requests, the config APIs that govern request
// reliability (timeouts and retry policies), the response-checking APIs,
// the libraries' default behaviours (paper Table 4), and the
// request-callback interfaces used for failure notification.
//
// The paper's NChecker annotates 14 target APIs, 77 config APIs, and 2
// response-checking APIs (§4.3); this registry carries exactly those
// counts, asserted by tests. The annotated signatures are faithful models
// of the real libraries' surfaces, simplified only where the real flow is
// indirect (e.g. OkHttp's client→call chain is flattened so that config
// and target calls share one receiver, which is what the taint step
// recovers in the real tool).
package apimodel

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/jimple"
)

// LibKey identifies a library.
type LibKey string

const (
	LibHttpURL   LibKey = "HttpURLConnection"
	LibApache    LibKey = "ApacheHttpClient"
	LibVolley    LibKey = "Volley"
	LibOkHttp    LibKey = "OkHttp"
	LibAsyncHTTP LibKey = "AndroidAsyncHttp"
	LibBasic     LibKey = "BasicHttp"
)

// ConfigKind classifies a config API by the NPD cause it addresses.
type ConfigKind uint8

const (
	// ConfigOther is a config API with no reliability role.
	ConfigOther ConfigKind = iota
	// ConfigTimeout sets a request/connect/read timeout.
	ConfigTimeout
	// ConfigRetry sets the retry policy or count.
	ConfigRetry
)

func (k ConfigKind) String() string {
	switch k {
	case ConfigTimeout:
		return "timeout"
	case ConfigRetry:
		return "retry"
	}
	return "other"
}

// Target describes one request-submitting API.
type Target struct {
	Sig jimple.Sig
	// HTTPMethod is the fixed HTTP method of this API ("GET", "POST", …)
	// or "" when the method is dynamic (e.g. Volley's Request carries it).
	HTTPMethod string
	// ConfigObjArg locates the object config APIs are invoked on:
	// -1 = the receiver of the target call, n ≥ 0 = the n'th argument.
	ConfigObjArg int
	// HandlerArg is the argument index of an explicit response-handler
	// object, or -1 when the API has none.
	HandlerArg int
	// ReturnsResponse reports whether the call returns the response
	// object directly (synchronous APIs).
	ReturnsResponse bool
	// ResponseClass is the library's response type ("" if none).
	ResponseClass string
}

// Config describes one configuration API.
type Config struct {
	Sig  jimple.Sig
	Kind ConfigKind
	// CountArg is the argument carrying the retry count for ConfigRetry
	// APIs (-1 when the API configures retries without a numeric count).
	CountArg int
}

// RespCheck describes a response-validity-checking API.
type RespCheck struct {
	Sig jimple.Sig
}

// Endpoint describes an API call that receives a request URL — the sites
// the endpoint-hygiene checker (Checker 7) constant-propagates URL
// strings into. URL-bearing target APIs and request-object constructors
// both appear here; the set is disjoint from Totals' counts, which stay
// pinned to the paper's 14/77/2.
type Endpoint struct {
	Sig jimple.Sig
	// URLArg is the argument index carrying the URL string.
	URLArg int
}

// Callback describes the request-callback interface of a library.
type Callback struct {
	// Iface is the interface or base class apps implement.
	Iface string
	// ErrorSubsig / SuccessSubsig are the callback subsignatures.
	ErrorSubsig   string
	SuccessSubsig string
	// ErrorArg is the parameter index of the error object in the error
	// callback.
	ErrorArg int
	// ExposesErrorTypes reports whether the error object carries
	// distinguishable error types (paper: only Volley does).
	ExposesErrorTypes bool
}

// Defaults records a library's out-of-the-box behaviour (paper Table 4 and
// §5.2.2): what it tolerates automatically (⋆) versus what developers must
// configure (©).
type Defaults struct {
	// TimeoutMs is the default request timeout; 0 means none (a blocking
	// connect that can take minutes to hit the TCP timeout — Cause 3.1).
	TimeoutMs int
	// Retries is the default automatic retry count.
	Retries int
	// AutoRetryTransient: the library transparently retries transient
	// failures (⋆ in Table 4's "no retry on transient error" row).
	AutoRetryTransient bool
	// RetriesApplyToPost: the default retries are also applied to POST
	// requests (the source of the paper's 98%-of-POST-over-retries-are-
	// default finding, Table 8).
	RetriesApplyToPost bool
	// AutoRespCheck: the library routes invalid responses to the error
	// callback automatically (only Volley).
	AutoRespCheck bool
}

// Library aggregates everything NChecker knows about one library.
type Library struct {
	Key  LibKey
	Name string
	// Classes lists the library's classes; an app "uses" the library when
	// it references any of them.
	Classes []string
	// ThirdParty distinguishes third-party libraries from Android-native
	// ones (paper Table 7 buckets native vs. Volley/AsyncHttp/Basic/OkHttp).
	ThirdParty bool
	// HasRetryAPIs gates the Table 6 "missed retry APIs" evaluation:
	// only apps using retry-capable libraries are evaluated for it.
	HasRetryAPIs bool
	Targets      []Target
	Configs      []Config
	RespChecks   []RespCheck
	Callbacks    []Callback
	// Endpoints lists the URL-receiving APIs (Checker 7). A new slice
	// field is automatically covered by Fingerprint's %+v rendering.
	Endpoints []Endpoint
	Defaults  Defaults
}

// HasTimeoutAPIs reports whether the library exposes timeout config APIs.
func (l *Library) HasTimeoutAPIs() bool {
	for _, c := range l.Configs {
		if c.Kind == ConfigTimeout {
			return true
		}
	}
	return false
}

// HasRespCheckAPIs reports whether the library exposes response-checking
// APIs.
func (l *Library) HasRespCheckAPIs() bool { return len(l.RespChecks) > 0 }

// Registry indexes all annotated libraries for O(1) call-site lookup.
type Registry struct {
	libs          []*Library
	byKey         map[LibKey]*Library
	targetBySig   map[string]targetRef
	configBySig   map[string]configRef
	checkBySig    map[string]LibKey
	endpointBySig map[string]endpointRef
	classToLib    map[string]LibKey

	// sigClasses holds every class that declares at least one annotated
	// signature. The per-sig lookups gate on it before rendering a key:
	// almost every call site queried against the registry misses, and the
	// class-string probe is allocation-free.
	sigClasses map[string]bool

	fpOnce sync.Once
	fp     [sha256.Size]byte
}

type targetRef struct {
	lib *Library
	t   *Target
}

type configRef struct {
	lib *Library
	c   *Config
}

type endpointRef struct {
	lib *Library
	e   *Endpoint
}

// registryBuilds counts Registry constructions process-wide. Batch scans
// must build exactly one registry (one per core.Checker plus the memoized
// stub program's); the regression test for the per-app-rebuild bug pins
// the count.
var registryBuilds atomic.Int64

// RegistryBuilds returns how many registries this process has built.
func RegistryBuilds() int64 { return registryBuilds.Load() }

// NewRegistry builds the registry over the standard six libraries.
func NewRegistry() *Registry {
	return newRegistryOf(StandardLibraries())
}

func newRegistryOf(libs []*Library) *Registry {
	registryBuilds.Add(1)
	r := &Registry{
		libs:          libs,
		byKey:         make(map[LibKey]*Library),
		targetBySig:   make(map[string]targetRef),
		configBySig:   make(map[string]configRef),
		checkBySig:    make(map[string]LibKey),
		endpointBySig: make(map[string]endpointRef),
		classToLib:    make(map[string]LibKey),
		sigClasses:    make(map[string]bool),
	}
	for _, l := range libs {
		r.byKey[l.Key] = l
		for i := range l.Targets {
			r.targetBySig[l.Targets[i].Sig.Key()] = targetRef{lib: l, t: &l.Targets[i]}
			r.sigClasses[l.Targets[i].Sig.Class] = true
		}
		for i := range l.Configs {
			r.configBySig[l.Configs[i].Sig.Key()] = configRef{lib: l, c: &l.Configs[i]}
			r.sigClasses[l.Configs[i].Sig.Class] = true
		}
		for i := range l.RespChecks {
			r.checkBySig[l.RespChecks[i].Sig.Key()] = l.Key
			r.sigClasses[l.RespChecks[i].Sig.Class] = true
		}
		for i := range l.Endpoints {
			r.endpointBySig[l.Endpoints[i].Sig.Key()] = endpointRef{lib: l, e: &l.Endpoints[i]}
			r.sigClasses[l.Endpoints[i].Sig.Class] = true
		}
		for _, c := range l.Classes {
			r.classToLib[c] = l.Key
		}
	}
	return r
}

// Libraries returns the annotated libraries in registration order.
func (r *Registry) Libraries() []*Library { return r.libs }

// Library returns the library with the given key, or nil.
func (r *Registry) Library(k LibKey) *Library { return r.byKey[k] }

// TargetOf resolves an invocation to a target API annotation.
func (r *Registry) TargetOf(sig jimple.Sig) (*Library, *Target, bool) {
	if !r.sigClasses[sig.Class] {
		return nil, nil, false
	}
	ref, ok := r.targetBySig[sig.Key()]
	if !ok {
		return nil, nil, false
	}
	return ref.lib, ref.t, true
}

// ConfigOf resolves an invocation to a config API annotation.
func (r *Registry) ConfigOf(sig jimple.Sig) (*Library, *Config, bool) {
	if !r.sigClasses[sig.Class] {
		return nil, nil, false
	}
	ref, ok := r.configBySig[sig.Key()]
	if !ok {
		return nil, nil, false
	}
	return ref.lib, ref.c, true
}

// EndpointOf resolves an invocation to a URL-receiving API annotation.
func (r *Registry) EndpointOf(sig jimple.Sig) (*Library, *Endpoint, bool) {
	if !r.sigClasses[sig.Class] {
		return nil, nil, false
	}
	ref, ok := r.endpointBySig[sig.Key()]
	if !ok {
		return nil, nil, false
	}
	return ref.lib, ref.e, true
}

// EndpointSigKeys returns the annotated endpoint signature keys, sorted.
func (r *Registry) EndpointSigKeys() []string {
	out := make([]string, 0, len(r.endpointBySig))
	for k := range r.endpointBySig {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsRespCheck reports whether sig is a response-checking API.
func (r *Registry) IsRespCheck(sig jimple.Sig) bool {
	if !r.sigClasses[sig.Class] {
		return false
	}
	_, ok := r.checkBySig[sig.Key()]
	return ok
}

// LibOfClass returns the library owning a class name, if any.
func (r *Registry) LibOfClass(cls string) (LibKey, bool) {
	k, ok := r.classToLib[cls]
	return k, ok
}

// LibsUsedBy returns the keys of libraries referenced anywhere in the
// program (by extending/implementing a library class or invoking a library
// method), sorted.
func (r *Registry) LibsUsedBy(p *jimple.Program) []LibKey {
	used := make(map[LibKey]bool)
	note := func(cls string) {
		if k, ok := r.classToLib[cls]; ok {
			used[k] = true
		}
	}
	for _, c := range p.Classes() {
		note(c.Super)
		for _, i := range c.Interfaces {
			note(i)
		}
		for _, m := range c.Methods {
			for _, s := range m.Body {
				if inv, ok := jimple.InvokeOf(s); ok {
					note(inv.Callee.Class)
				}
			}
			for _, l := range m.Locals {
				note(l.Type)
			}
		}
	}
	return sortedLibKeys(used)
}

// LibsUsedByClasses is LibsUsedBy over a pre-collected referenced-class
// set (supertypes, interfaces, invoked classes, local types): the lazy
// decode path gathers those names during its skim — dex.Lazy.RefClasses —
// so library usage resolves without any retained method bodies.
func (r *Registry) LibsUsedByClasses(classes []string) []LibKey {
	used := make(map[LibKey]bool)
	for _, cls := range classes {
		if k, ok := r.classToLib[cls]; ok {
			used[k] = true
		}
	}
	return sortedLibKeys(used)
}

func sortedLibKeys(used map[LibKey]bool) []LibKey {
	out := make([]LibKey, 0, len(used))
	for k := range used {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Totals returns the annotation counts (targets, configs, response
// checks); the paper reports 14, 77, and 2.
func (r *Registry) Totals() (targets, configs, respChecks int) {
	for _, l := range r.libs {
		targets += len(l.Targets)
		configs += len(l.Configs)
		respChecks += len(l.RespChecks)
	}
	return
}

// Fingerprint returns the SHA-256 identity of the registry's entire
// annotation surface — every library's classes, targets, configs,
// response checks, callbacks, and defaults, plus the package-level
// ResponseUseSigs set. It is the registry component of the persistent
// scan cache's keys: editing any annotation changes the fingerprint, so
// results computed under the old model can never be served for the new
// one. Computed once per Registry.
func (r *Registry) Fingerprint() []byte {
	r.fpOnce.Do(func() {
		h := sha256.New()
		for _, l := range r.libs {
			// Library is maps-free (scalars and slices only), so the %+v
			// rendering is deterministic.
			fmt.Fprintf(h, "%+v\n", *l)
		}
		uses := make([]string, 0, len(ResponseUseSigs))
		for k := range ResponseUseSigs {
			uses = append(uses, k)
		}
		sort.Strings(uses)
		for _, k := range uses {
			fmt.Fprintf(h, "use %s\n", k)
		}
		h.Sum(r.fp[:0])
	})
	return r.fp[:]
}
