package apimodel

import (
	"sync"

	"repro/internal/jimple"
)

// ResponseUseSigs are methods that read a network response's payload; a
// call on a response object counts as a "use" for Checker 4 (invalid
// response) when it is not a response-checking API.
var ResponseUseSigs = map[string]bool{
	"com.squareup.okhttp.Response.getBody()java.lang.String":                    true,
	"com.squareup.okhttp.Response.getCode()int":                                 true,
	"com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String": true,
	"com.turbomanage.httpclient.HttpResponse.getStatus()int":                    true,
	"org.apache.http.HttpResponse.getEntity()org.apache.http.HttpEntity":        true,
	"org.apache.http.HttpResponse.getStatusLine()java.lang.String":              true,
	"java.io.InputStream.read()int":                                             true,
}

var (
	stubsOnce sync.Once
	stubsProg *jimple.Program
)

// Stubs returns hierarchy/signature stubs for every annotated library
// class, generated from the registry so the stubs can never drift from the
// annotations. Merge into an app program alongside android.Framework().
//
// The program is built once per process and shared: it is read-only after
// construction (Program.Merge copies class pointers without mutating the
// source), and rebuilding it per scan also rebuilt the registry per scan
// — the batch-mode per-app registry-construction bug the RegistryBuilds
// regression test pins.
func Stubs() *jimple.Program {
	stubsOnce.Do(func() { stubsProg = buildStubs() })
	return stubsProg
}

func buildStubs() *jimple.Program {
	p := jimple.NewProgram()
	reg := NewRegistry()

	ensure := func(name string) *jimple.Class {
		if c := p.Class(name); c != nil {
			return c
		}
		c := &jimple.Class{Name: name, Super: jimple.TypeObject}
		p.AddClass(c)
		return c
	}
	addAbstract := func(s jimple.Sig) {
		c := ensure(s.Class)
		if c.Method(s.SubSigKey()) == nil {
			c.AddMethod(&jimple.Method{Sig: s, Abstract: true})
		}
	}
	addCtor := func(class string, params ...string) {
		addAbstract(jimple.Sig{Class: class, Name: "<init>", Params: params, Ret: jimple.TypeVoid})
	}

	for _, l := range reg.Libraries() {
		for _, cls := range l.Classes {
			ensure(cls)
		}
		for _, t := range l.Targets {
			addAbstract(t.Sig)
		}
		for _, c := range l.Configs {
			addAbstract(c.Sig)
		}
		for _, rc := range l.RespChecks {
			addAbstract(rc.Sig)
		}
		for _, cb := range l.Callbacks {
			c := ensure(cb.Iface)
			c.IsIface = true
			c.Super = ""
			for _, sub := range []string{cb.ErrorSubsig, cb.SuccessSubsig} {
				s, err := jimple.ParseSigKey(cb.Iface + "." + sub)
				if err == nil && c.Method(s.SubSigKey()) == nil {
					c.AddMethod(&jimple.Method{Sig: s, Abstract: true})
				}
			}
		}
	}

	for key := range ResponseUseSigs {
		if s, err := jimple.ParseSigKey(key); err == nil {
			addAbstract(s)
		}
	}

	// Constructors apps call.
	addCtor(ClassHttpURLConn)
	addCtor(ClassURL, jimple.TypeString)
	addAbstract(jimple.Sig{Class: ClassURL, Name: "openConnection", Ret: ClassHttpURLConn})
	addCtor(ClassApacheClient)
	addCtor(ClassApacheGet, jimple.TypeString)
	addCtor(ClassApachePost, jimple.TypeString)
	addCtor(ClassVolleyQueue)
	addCtor(ClassOkClient)
	addCtor(ClassOkRequest, jimple.TypeString)
	addCtor(ClassAsyncClient)
	addCtor(ClassBasicClient)
	// Volley StringRequest(method, url, listener, errorListener) — the
	// canonical request constructor; the error listener is how Checker 3
	// associates a Volley request with its failure callback.
	addCtor(ClassVolleyStringReq, "int", jimple.TypeString, ClassVolleyListener, ClassVolleyErrListen)

	// Library-internal hierarchy.
	if c := p.Class(ClassVolleyStringReq); c != nil {
		c.Super = ClassVolleyRequest
	}
	if c := p.Class(ClassApacheGet); c != nil {
		c.Super = ClassApacheRequest
	}
	if c := p.Class(ClassApachePost); c != nil {
		c.Super = ClassApacheRequest
	}
	for _, sub := range []string{ClassVolleyNoConn, ClassVolleyTimeout, ClassVolleyClientErr} {
		if c := p.Class(sub); c != nil {
			c.Super = ClassVolleyError
		}
	}
	if c := p.Class(ClassVolleyError); c != nil {
		c.Super = "java.lang.Exception"
		addAbstract(jimple.Sig{Class: ClassVolleyError, Name: "getMessage", Ret: jimple.TypeString})
	}
	// Volley listener interfaces referenced by the StringRequest ctor.
	for _, ifc := range []string{ClassVolleyListener} {
		c := ensure(ifc)
		c.IsIface = true
		c.Super = ""
	}
	return p
}
