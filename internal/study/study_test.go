package study

import (
	"strings"
	"testing"
)

func TestDatasetSize(t *testing.T) {
	if got := len(Dataset()); got != 90 {
		t.Fatalf("dataset has %d NPDs, want 90 (paper §2)", got)
	}
}

func TestTwentyOneApps(t *testing.T) {
	apps := Apps()
	if len(apps) != 21 {
		t.Fatalf("apps: %d, want 21 (Table 1)", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if a.Name == "" || a.Category == "" || a.Installs == "" {
			t.Errorf("incomplete app row: %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate app %s", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"Chrome", "Telegram", "ChatSecure", "Kontalk", "Android Framework"} {
		if !seen[want] {
			t.Errorf("Table 1 missing %s", want)
		}
	}
}

func TestFigure4ImpactDistribution(t *testing.T) {
	counts, percents := ImpactDistribution()
	want := map[Impact]int{
		Dysfunction:  32, // 36%
		UnfriendlyUI: 30, // 33%
		CrashFreeze:  19, // 21%
		BatteryDrain: 9,  // 10%
	}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("impact %s: %d, want %d", k, counts[k], w)
		}
	}
	wantPct := map[Impact]float64{Dysfunction: 36, UnfriendlyUI: 33, CrashFreeze: 21, BatteryDrain: 10}
	for k, w := range wantPct {
		if diff := percents[k] - w; diff > 1.2 || diff < -1.2 {
			t.Errorf("impact %s: %.1f%%, paper says %.0f%%", k, percents[k], w)
		}
	}
}

func TestTable3CauseDistribution(t *testing.T) {
	counts, percents := CauseDistribution()
	want := map[RootCause]int{
		NoConnectivityChecks: 27, // 30%
		MishandleTransient:   12, // 13%
		MishandlePermanent:   24, // 27%
		MishandleNetSwitch:   27, // 30%
	}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("cause %s: %d, want %d", k, counts[k], w)
		}
	}
	for k, pct := range map[RootCause]float64{
		NoConnectivityChecks: 30, MishandleTransient: 13,
		MishandlePermanent: 27, MishandleNetSwitch: 30,
	} {
		if diff := percents[k] - pct; diff > 1 || diff < -1 {
			t.Errorf("cause %s: %.1f%%, paper says %.0f%%", k, percents[k], pct)
		}
	}
}

func TestSubCauseSplits(t *testing.T) {
	tr := SubCauseDistribution(MishandleTransient)
	// Paper: no retry 55%, over-retry 45% of 12.
	if tr[SubNoRetryTimeSens] != 7 || tr[SubOverRetry] != 5 {
		t.Errorf("transient split: %+v", tr)
	}
	perm := SubCauseDistribution(MishandlePermanent)
	// Paper: timeout 33%, notification 44%, validity 23% of 24.
	if perm[SubNoTimeout] != 8 || perm[SubBadNotification] != 11 || perm[SubNoValidityCheck] != 5 {
		t.Errorf("permanent split: %+v", perm)
	}
	sw := SubCauseDistribution(MishandleNetSwitch)
	// Paper: no reconnection 67%, no auto recovery 34% of 27.
	if sw[SubNoReconnect] != 18 || sw[SubNoAutoRecovery] != 9 {
		t.Errorf("switch split: %+v", sw)
	}
}

func TestRepresentatives(t *testing.T) {
	reps := Representatives()
	if len(reps) != 6 {
		t.Fatalf("Table 2 rows: %d, want 6", len(reps))
	}
	byApp := map[string]Representative{}
	for _, r := range reps {
		byApp[r.App] = r
	}
	if r, ok := byApp["ChatSecure"]; !ok || !strings.Contains(r.Desc, "connection exception") {
		t.Error("ChatSecure case (Table 2 iv) missing or wrong")
	}
	if r, ok := byApp["Kontalk"]; !ok || r.Category != "Battery drain" {
		t.Error("Kontalk case (Table 2 vi) missing or wrong")
	}
}

func TestDatasetRecordsComplete(t *testing.T) {
	appNames := map[string]bool{}
	for _, a := range Apps() {
		appNames[a.Name] = true
	}
	ids := map[int]bool{}
	for _, n := range Dataset() {
		if ids[n.ID] {
			t.Errorf("duplicate NPD id %d", n.ID)
		}
		ids[n.ID] = true
		if !appNames[n.App] {
			t.Errorf("NPD %d references unknown app %q", n.ID, n.App)
		}
		if n.Desc == "" || n.Protocol == "" {
			t.Errorf("NPD %d incomplete", n.ID)
		}
		switch n.Cause {
		case MishandleTransient, MishandlePermanent, MishandleNetSwitch:
			if n.Sub == SubNone {
				t.Errorf("NPD %d: cause %s needs a sub-cause", n.ID, n.Cause)
			}
		case NoConnectivityChecks:
			if n.Sub != SubNone {
				t.Errorf("NPD %d: cause 1 has no sub-causes", n.ID)
			}
		}
	}
}

func TestFormatTable(t *testing.T) {
	counts, _ := CauseDistribution()
	out := FormatTable(counts, len(Dataset()))
	if !strings.Contains(out, "No connectivity checks") || !strings.Contains(out, "30%") {
		t.Errorf("FormatTable output unexpected:\n%s", out)
	}
}
