// Package study encodes the paper's §2 empirical study: 90 real-world
// network programming defects collected from 21 open-source Android apps,
// categorized by user-experience impact (Figure 4) and by root cause
// (Table 3), with the representative cases of Table 2. The dataset is the
// paper's published aggregate expanded into per-defect records, so the
// aggregation code regenerates the paper's numbers from first principles.
package study

import (
	"fmt"
	"sort"
)

// Impact categories (paper §2.2).
type Impact string

const (
	Dysfunction  Impact = "Dysfunction"
	UnfriendlyUI Impact = "Unfriendly UI"
	CrashFreeze  Impact = "Crash/freeze"
	BatteryDrain Impact = "Battery drain"
)

// RootCause categories (paper §2.3, Table 3).
type RootCause string

const (
	NoConnectivityChecks RootCause = "No connectivity checks"
	MishandleTransient   RootCause = "Mishandling transient error"
	MishandlePermanent   RootCause = "Mishandling permanent error"
	MishandleNetSwitch   RootCause = "Mishandling network switch"
)

// SubCause refines a root cause (Causes 2.1–4.2 of the paper).
type SubCause string

const (
	SubNone            SubCause = ""
	SubNoRetryTimeSens SubCause = "No retry for time-sensitive requests"
	SubOverRetry       SubCause = "Over-retry"
	SubNoTimeout       SubCause = "No timeout setting"
	SubBadNotification SubCause = "Absent/misleading failure notification"
	SubNoValidityCheck SubCause = "No validity check on network response"
	SubNoReconnect     SubCause = "No reconnection on network switch"
	SubNoAutoRecovery  SubCause = "No automatic failure recovery"
)

// App is one studied app (paper Table 1).
type App struct {
	Name     string
	Category string
	Installs string // Google Play install band, e.g. ">1M"
}

// NPD is one studied defect.
type NPD struct {
	ID       int
	App      string
	Impact   Impact
	Cause    RootCause
	Sub      SubCause
	Protocol string
	Desc     string
}

// Apps returns the 21 studied apps of Table 1.
func Apps() []App {
	return []App{
		{"Chrome", "Communication", ">500M"},
		{"Barcode scanner", "Tools", ">100M"},
		{"Firefox", "Communication", ">50M"},
		{"Telegram", "Communication", ">10M"},
		{"K9", "Communication", ">5M"},
		{"XBMC", "Media & Video", ">1M"},
		{"Wordpress", "Social", ">1M"},
		{"Sipdroid", "Communication", ">1M"},
		{"ConnectBot", "Communication", ">1M"},
		{"NPR news", "News & Magazines", ">1M"},
		{"Csipsimple", "Communication", ">1M"},
		{"Signal private messenger", "Communication", ">1M"},
		{"ChatSecure", "Communication", ">100K"},
		{"Owncloud", "Productivity", ">100K"},
		{"GTalkSMS", "Tools", ">50K"},
		{"Yaxim", "Communication", ">50K"},
		{"Jamendo Player", "Music & Audio", ">10K"},
		{"Hacker News", "News & Magazines", ">10K"},
		{"BombusMod", "Social", ">10K"},
		{"Kontalk", "Communication", ">10K"},
		{"Android Framework", "System", "built-in"},
	}
}

// Representative describes one Table 2 row.
type Representative struct {
	ID         string
	Category   string
	App        string
	Desc       string
	Resolution string
}

// Representatives returns the six Table 2 cases.
func Representatives() []Representative {
	return []Representative{
		{"i", "Dysfunction", "Firefox", "The download fails due to transient network errors", "Add retry on connection failures"},
		{"ii", "Dysfunction", "Yaxim", "The sent message is lost on network failure", "Queue the message for re-sending"},
		{"iii", "Unfriendly UI", "Hacker News", "No indication if the feeds loading fails", "Add error message"},
		{"iv", "Crash", "ChatSecure", "Do not handle no connection exception on login", "Add catch blocks"},
		{"v", "Freeze", "Chrome", "Failed XMLHttpRequest on webpage freezes the WebView", "Cancel the request on failure"},
		{"vi", "Battery drain", "Kontalk", "Frequent synchronizations in offline mode", "Disable synchronization in offline"},
	}
}

// Dataset returns the 90 studied NPDs. The per-defect assignments expand
// the paper's published aggregates:
//
//	Impact (Fig. 4):    Dysfunction 32, Unfriendly UI 30, Crash/freeze 19, Battery 9
//	Root cause (Tab. 3): conn checks 27, transient 12, permanent 24, net switch 27
//	Transient split:     no-retry 7 (55%+), over-retry 5 (45%)
//	Permanent split:     timeout 8 (33%), notification 11 (44%), validity 5 (23%)
//	Switch split:        no reconnection 18 (67%), no auto recovery 9 (34%)
func Dataset() []NPD {
	apps := Apps()
	protocols := []string{"HTTP", "XMPP", "IMAP", "SIP", "HTTP", "HTTP"}
	type block struct {
		n      int
		impact Impact
		cause  RootCause
		sub    SubCause
		desc   string
	}
	blocks := []block{
		// Cause 1: no connectivity checks (27) — mostly unfriendly UI and
		// dysfunction, some battery drain (offline polling).
		{12, UnfriendlyUI, NoConnectivityChecks, SubNone, "request issued with no connectivity check; silent failure"},
		{9, Dysfunction, NoConnectivityChecks, SubNone, "operation fails outright when offline"},
		{3, BatteryDrain, NoConnectivityChecks, SubNone, "periodic sync keeps running while offline"},
		{3, CrashFreeze, NoConnectivityChecks, SubNone, "unchecked offline state crashes the request path"},
		// Cause 2: transient errors (12): 2.1 no-retry 7, 2.2 over-retry 5.
		{5, Dysfunction, MishandleTransient, SubNoRetryTimeSens, "user-visible request gives up on first transient error"},
		{2, UnfriendlyUI, MishandleTransient, SubNoRetryTimeSens, "transient failure surfaces raw error to the user"},
		{4, BatteryDrain, MishandleTransient, SubOverRetry, "aggressive retry loop burns battery under poor signal"},
		{1, Dysfunction, MishandleTransient, SubOverRetry, "POST retried automatically, duplicating the operation"},
		// Cause 3: permanent errors (24): timeout 8, notification 11, validity 5.
		{5, CrashFreeze, MishandlePermanent, SubNoTimeout, "blocking connect hangs minutes with no timeout set"},
		{3, Dysfunction, MishandlePermanent, SubNoTimeout, "request never completes nor fails without a timeout"},
		{10, UnfriendlyUI, MishandlePermanent, SubBadNotification, "no or misleading failure message on permanent error"},
		{1, Dysfunction, MishandlePermanent, SubBadNotification, "failure silently drops the user's action"},
		{5, CrashFreeze, MishandlePermanent, SubNoValidityCheck, "null/invalid response dereferenced without a check"},
		// Cause 4: network switches (27): no reconnection 18, no recovery 9.
		{8, Dysfunction, MishandleNetSwitch, SubNoReconnect, "stale connection used after cellular/WiFi switch"},
		{6, CrashFreeze, MishandleNetSwitch, SubNoReconnect, "read on dead socket after network switch freezes the app"},
		{2, BatteryDrain, MishandleNetSwitch, SubNoReconnect, "reconnect storm after a network switch"},
		{2, UnfriendlyUI, MishandleNetSwitch, SubNoReconnect, "switch surfaces as an unexplained error"},
		{5, Dysfunction, MishandleNetSwitch, SubNoAutoRecovery, "request lost on disconnect is never re-sent"},
		{4, UnfriendlyUI, MishandleNetSwitch, SubNoAutoRecovery, "user must manually redo the action after reconnect"},
	}
	var out []NPD
	id := 1
	for bi, b := range blocks {
		for i := 0; i < b.n; i++ {
			out = append(out, NPD{
				ID:       id,
				App:      apps[(id*7+bi)%len(apps)].Name,
				Impact:   b.impact,
				Cause:    b.cause,
				Sub:      b.sub,
				Protocol: protocols[(id+bi)%len(protocols)],
				Desc:     b.desc,
			})
			id++
		}
	}
	return out
}

// ImpactDistribution aggregates Figure 4: counts and percentages (of 90)
// per impact category.
func ImpactDistribution() (counts map[Impact]int, percents map[Impact]float64) {
	counts = make(map[Impact]int)
	for _, n := range Dataset() {
		counts[n.Impact]++
	}
	total := len(Dataset())
	percents = make(map[Impact]float64, len(counts))
	for k, v := range counts {
		percents[k] = 100 * float64(v) / float64(total)
	}
	return counts, percents
}

// CauseDistribution aggregates Table 3.
func CauseDistribution() (counts map[RootCause]int, percents map[RootCause]float64) {
	counts = make(map[RootCause]int)
	for _, n := range Dataset() {
		counts[n.Cause]++
	}
	total := len(Dataset())
	percents = make(map[RootCause]float64, len(counts))
	for k, v := range counts {
		percents[k] = 100 * float64(v) / float64(total)
	}
	return counts, percents
}

// SubCauseDistribution aggregates the per-root-cause splits.
func SubCauseDistribution(root RootCause) map[SubCause]int {
	out := make(map[SubCause]int)
	for _, n := range Dataset() {
		if n.Cause == root {
			out[n.Sub]++
		}
	}
	return out
}

// FormatTable renders a two-column count table deterministically.
func FormatTable[K ~string](counts map[K]int, total int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, string(k))
	}
	sort.Slice(keys, func(i, j int) bool { return counts[K(keys[i])] > counts[K(keys[j])] })
	s := ""
	for _, k := range keys {
		c := counts[K(k)]
		s += fmt.Sprintf("%-40s %3d (%2.0f%%)\n", k, c, 100*float64(c)/float64(total))
	}
	return s
}
