package checkers

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/apimodel"
	"repro/internal/cachestore"
	"repro/internal/callgraph"
	"repro/internal/dataflow"
	"repro/internal/jimple"
)

// This file wires the persistent scan cache (internal/cachestore) into
// the pipeline: the cache-probe stage that short-circuits unchanged apps,
// the summary-seeding stage that restores per-class taint summaries on
// partial hits, and the post-merge write stage. DESIGN.md §7 documents
// the key anatomy and fault semantics; the differential harness in
// internal/experiments proves cold and warm reports byte-identical.
//
// Key anatomy. A result entry is keyed by
//
//	H(app container digest, registry fingerprint, engine version,
//	  options fingerprint)
//
// so any change to the app bytes, the API annotations, the engine, or a
// report-affecting option forces a miss. Workers and Timeout are
// deliberately excluded: reports are deterministic regardless of Workers,
// and degraded (deadline-hit) scans are never written, so neither can
// change what a cached entry would contain.
//
// A summary entry holds one app class's converged taint summaries and is
// keyed by
//
//	H(class name, closure digest, registry fingerprint, engine version,
//	  options fingerprint)
//
// where the closure digest hashes the manifest plus the transitive
// EdgeCall closure of the class's methods: every app class reached
// contributes its name and the hash of its printed body, every reached
// framework/library method contributes its signature key. Under CHA
// dispatch any body-bearing override that could be invoked is an edge
// target and therefore inside the closure, so two scans agreeing on a
// class's closure digest compute identical summaries for it — changed
// apps reuse summaries for the classes whose closures didn't change.
//
// Fault semantics: cache trouble of any kind — unopenable directory,
// corrupt or truncated entries, decode failures, even a panic inside the
// cache code itself — degrades to a cold scan and a diagnostics counter,
// never to a failed or Incomplete scan. On the write side, a scan with
// any ScanError (panic, deadline, cancellation) commits nothing:
// incomplete results must never poison the cache.

// EngineVersion names the analysis engine revision for cache keying. Bump
// it whenever checker behavior changes in a way the other key components
// do not capture; old entries then read as misses and age out via LRU.
const EngineVersion = "nchecker-engine/6"

// CacheMode selects how a scan uses the persistent cache.
type CacheMode uint8

const (
	// CacheOff (the zero value) disables the persistent cache.
	CacheOff CacheMode = iota
	// CacheRO probes and restores but never writes — safe for scans that
	// must not mutate a shared cache directory.
	CacheRO
	// CacheRW probes, restores, and writes back clean scan results.
	CacheRW
)

// String renders the mode as its flag spelling (off, ro, rw).
func (m CacheMode) String() string {
	switch m {
	case CacheRO:
		return "ro"
	case CacheRW:
		return "rw"
	}
	return "off"
}

// ParseCacheMode parses the -cache-mode flag values off, ro, and rw.
func ParseCacheMode(s string) (CacheMode, error) {
	switch s {
	case "off":
		return CacheOff, nil
	case "ro":
		return CacheRO, nil
	case "rw":
		return CacheRW, nil
	}
	return CacheOff, fmt.Errorf("invalid cache mode %q (want off, ro, or rw)", s)
}

// cacheEnabled reports whether the scan should touch the persistent
// cache at all.
func (o Options) cacheEnabled() bool {
	return o.CacheDir != "" && o.CacheMode != CacheOff
}

// cacheFingerprint renders the report-affecting options into the cache
// key. Workers and Timeout are excluded by design (see the file comment).
func (o Options) cacheFingerprint() []byte {
	// Mode is fingerprinted as its numeric value (not String(): out-of-range
	// values must still be distinct from the named modes). Reports are
	// proven identical across modes, but the diagnostics counts stored in a
	// result entry are per-mode, so full and targeted entries never share a
	// key — they cannot cross-poison each other.
	// Validate is fingerprinted because validated entries carry verdicts
	// in their reports: a validate=false scan must never be answered from
	// a validated entry, nor the reverse.
	// Checkers is fingerprinted as the normalized (effective) mask: two
	// spellings of the same selection share entries, while an ablated scan
	// never answers a full one. Normalization cannot collide with an
	// explicit selection — effective() maps 0 to the all-bits mask, which
	// no proper subset equals.
	return []byte(fmt.Sprintf("taintcfg=%t retryslice=%t declared=%t icc=%t intra=%t guard=%t mode=%d validate=%t checkers=%d",
		o.DisableTaintConfigDiscovery, o.DisableRetrySlicing, o.DeclaredDispatchOnly,
		o.EnableICC, o.Intraprocedural, o.GuardSensitiveConnCheck, o.Mode, o.Validate,
		uint(o.Checkers.effective())))
}

// resultCacheKey addresses the whole-app result entry.
func resultCacheKey(digest [sha256.Size]byte, reg *apimodel.Registry, opts Options) cachestore.Key {
	return cachestore.NewKey(cachestore.KindResult,
		digest[:], reg.Fingerprint(), []byte(EngineVersion), opts.cacheFingerprint())
}

// summaryCacheKey addresses one app class's summary entry.
func summaryCacheKey(class string, closure [sha256.Size]byte, reg *apimodel.Registry, opts Options) cachestore.Key {
	return cachestore.NewKey(cachestore.KindSummary,
		[]byte(class), closure[:], reg.Fingerprint(), []byte(EngineVersion), opts.cacheFingerprint())
}

// storeStats counts this scan's persistent-cache traffic. The cache
// stages run at sequential points of the pipeline, so plain ints suffice.
type storeStats struct {
	probes, hits, misses, corrupt  int
	seeded, puts, putErrs, evicted int
	digests                        int
}

func (s *storeStats) fill(c *CacheStats) {
	c.StoreProbes = s.probes
	c.StoreHits = s.hits
	c.StoreMisses = s.misses
	c.StoreCorrupt = s.corrupt
	c.SummariesSeeded = s.seeded
	c.StorePuts = s.puts
	c.StorePutErrors = s.putErrs
	c.StoreEvicted = s.evicted
	c.ClassDigests = s.digests
}

// cacheGuard isolates the cache stages: a panic inside cache code is
// corruption by definition — it is counted and the scan continues cold,
// without a ScanError and without marking the Result Incomplete (cache
// trouble must never degrade a scan that can complete without it).
func (a *analysis) cacheGuard(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			a.sstats.corrupt++
		}
	}()
	fn()
}

// openStore opens (or reuses) the process-shared store for the scan's
// cache directory. An unopenable directory silently disables the cache
// for this scan: every counter stays zero, which -timings surfaces.
func (a *analysis) openStore() {
	if !a.opts.cacheEnabled() {
		return
	}
	st, err := cachestore.Shared(a.opts.CacheDir, cachestore.Options{MaxBytes: a.opts.CacheMaxBytes})
	if err != nil {
		return
	}
	a.store = st
}

// probeCache looks the whole app up. On a full hit it returns the
// restored Result — the pipeline then skips straight to report emission.
func (a *analysis) probeCache() *Result {
	a.openStore()
	if a.store == nil {
		return nil
	}
	digest, err := a.app.Digest()
	if err != nil {
		return nil
	}
	a.resultKey = resultCacheKey(digest, a.reg, a.opts)
	a.haveResultKey = true
	a.sstats.probes++
	payload, status := a.store.Get(a.resultKey)
	switch status {
	case cachestore.StatusMiss:
		a.sstats.misses++
		return nil
	case cachestore.StatusCorrupt:
		a.sstats.corrupt++
		return nil
	}
	e, err := cachestore.DecodeResultEntry(payload)
	if err != nil {
		a.sstats.corrupt++
		a.store.Remove(a.resultKey)
		return nil
	}
	stats, ok := statsFromCounters(e.Counters, e.Libs)
	if !ok {
		// The Stats shape changed without an EngineVersion bump; treat the
		// stale entry as corrupt and rescan.
		a.sstats.corrupt++
		a.store.Remove(a.resultKey)
		return nil
	}
	a.sstats.hits++
	a.hitAppMethods, a.hitSites = e.AppMethods, e.Sites
	return &Result{Reports: e.Reports, Stats: stats}
}

// ensureClassIndex builds the per-class method index the summary cache
// works in terms of: which sorted classes have body-bearing methods,
// which class owns which method key, and the manifest hash. Derived
// deterministically from the frozen a.methods list.
func (a *analysis) ensureClassIndex() {
	if a.classOfMethod != nil {
		return
	}
	a.classOfMethod = make(map[string]string, len(a.methods))
	a.methodsOfClass = make(map[string][]string)
	for _, m := range a.methods {
		k := a.methodKey(m)
		a.classOfMethod[k] = m.Sig.Class
		// a.methods is sorted by key, so each class's list is too.
		a.methodsOfClass[m.Sig.Class] = append(a.methodsOfClass[m.Sig.Class], k)
	}
	a.cacheClasses = make([]string, 0, len(a.methodsOfClass))
	for cls := range a.methodsOfClass {
		a.cacheClasses = append(a.cacheClasses, cls)
	}
	sort.Strings(a.cacheClasses)
	a.manifestHash = sha256.Sum256([]byte(a.app.Manifest.Encode()))
	a.classHashes = make(map[string][sha256.Size]byte)
	a.closureMemo = make(map[string][sha256.Size]byte)
}

// classPrintBufs pools the buffered writers classHash streams printed
// classes through; the buffer is reused across classes and scans instead
// of materializing a fresh multi-kilobyte string per class per digest.
var classPrintBufs = sync.Pool{
	New: func() interface{} { return bufio.NewWriterSize(nil, 16<<10) },
}

// classHash hashes one app class's printed body (memoized per scan). The
// rendering streams straight into the hasher, producing exactly the bytes
// of jimple.PrintClass without ever holding them.
func (a *analysis) classHash(cls string) [sha256.Size]byte {
	if h, ok := a.classHashes[cls]; ok {
		return h
	}
	var h [sha256.Size]byte
	if c := a.app.Program.Class(cls); c != nil {
		a.sstats.digests++
		hasher := sha256.New()
		bw := classPrintBufs.Get().(*bufio.Writer)
		bw.Reset(hasher)
		jimple.FprintClass(bw, c)
		bw.Flush()
		bw.Reset(nil) // drop the hasher reference before pooling
		classPrintBufs.Put(bw)
		hasher.Sum(h[:0])
	}
	a.classHashes[cls] = h
	return h
}

// closureDigest hashes everything a class's summaries can depend on: the
// manifest, plus the transitive EdgeCall closure of the class's methods —
// reached app classes by content, reached external (framework/library)
// methods by signature key. Memoized per scan.
func (a *analysis) closureDigest(cls string) [sha256.Size]byte {
	if d, ok := a.closureMemo[cls]; ok {
		return d
	}
	visited := make(map[string]bool)
	reachedClasses := map[string]bool{cls: true}
	extKeys := make(map[string]bool)
	stack := append([]string(nil), a.methodsOfClass[cls]...)
	for _, k := range stack {
		visited[k] = true
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.cg.OutEdges(k) {
			if e.Kind != callgraph.EdgeCall {
				continue
			}
			ck := e.CalleeKey()
			if owner, inApp := a.classOfMethod[ck]; inApp {
				reachedClasses[owner] = true
				if !visited[ck] {
					visited[ck] = true
					stack = append(stack, ck)
				}
			} else {
				extKeys[ck] = true
			}
		}
	}
	h := sha256.New()
	h.Write(a.manifestHash[:])
	// Hand-rolled "app <name> <hex>\n" / "ext <key>\n" lines, byte-identical
	// to the fmt.Fprintf rendering this replaces but reusing one buffer.
	line := make([]byte, 0, 128)
	var hexed [2 * sha256.Size]byte
	for _, c := range sortedKeys(reachedClasses) {
		ch := a.classHash(c)
		hex.Encode(hexed[:], ch[:])
		line = append(line[:0], "app "...)
		line = append(line, c...)
		line = append(line, ' ')
		line = append(line, hexed[:]...)
		line = append(line, '\n')
		h.Write(line)
	}
	for _, k := range sortedKeys(extKeys) {
		line = append(line[:0], "ext "...)
		line = append(line, k...)
		line = append(line, '\n')
		h.Write(line)
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	a.closureMemo[cls] = d
	return d
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// seedSummaries probes the per-class summary entries and collects the
// hits into a.seeds, which the summaries stage feeds to
// dataflow.ComputeSummaries — the partial-hit path: a changed app reuses
// the converged summaries of every class whose closure didn't change.
func (a *analysis) seedSummaries() {
	// The cacheEnabled re-check is belt and braces: a.store is only ever
	// set under it, and digest work (closureDigest → classHash re-prints
	// every reachable class) must never run with the cache off —
	// TestNoDigestWorkWithCacheOff pins the ClassDigests counter at zero.
	if a.store == nil || !a.opts.cacheEnabled() || a.opts.Intraprocedural {
		return
	}
	a.ensureClassIndex()
	a.seeds = make(map[string]*dataflow.TaintSummary)
	a.seededClasses = make(map[string]bool)
	for _, cls := range a.cacheClasses {
		key := summaryCacheKey(cls, a.closureDigest(cls), a.reg, a.opts)
		a.sstats.probes++
		payload, status := a.store.Get(key)
		switch status {
		case cachestore.StatusMiss:
			a.sstats.misses++
			continue
		case cachestore.StatusCorrupt:
			a.sstats.corrupt++
			continue
		}
		e, err := cachestore.DecodeSummaryEntry(payload)
		if err != nil || !a.summaryEntryCurrent(cls, e) {
			a.sstats.corrupt++
			a.store.Remove(key)
			continue
		}
		a.sstats.hits++
		for i := range e.Methods {
			a.seeds[e.Methods[i].Key] = e.Methods[i].Summary
		}
		a.seededClasses[cls] = true
		a.sstats.seeded += len(e.Methods)
	}
}

// summaryEntryCurrent checks a decoded summary entry against the current
// class: same class name and every method key still owned by it. A
// mismatch under a matching content-addressed key cannot happen without
// corruption (or a hash collision), so it reads as corrupt.
func (a *analysis) summaryEntryCurrent(cls string, e *cachestore.SummaryEntry) bool {
	if e.Class != cls {
		return false
	}
	for i := range e.Methods {
		if e.Methods[i].Summary == nil || a.classOfMethod[e.Methods[i].Key] != cls {
			return false
		}
	}
	return true
}

// writeCache commits the clean scan: the whole-app result entry plus one
// summary entry per class that wasn't already seeded from the cache.
// Callers gate on CacheRW and on len(a.errs) == 0 — an Incomplete scan
// commits nothing.
func (a *analysis) writeCache(res *Result) {
	if a.store == nil || !a.opts.cacheEnabled() || !a.haveResultKey {
		return
	}
	e := &cachestore.ResultEntry{
		AppMethods: len(a.methods),
		Sites:      len(a.sites),
		Reports:    res.Reports,
		Counters:   statsCounters(&res.Stats),
		Libs:       libsToStrings(res.Stats.LibsUsed),
	}
	a.putEntry(a.resultKey, cachestore.EncodeResultEntry(e))

	if a.opts.Intraprocedural {
		return
	}
	set := a.ctx.Summaries()
	if set == nil {
		return
	}
	a.ensureClassIndex()
	for _, cls := range a.cacheClasses {
		if a.seededClasses[cls] {
			continue // identical content is already committed
		}
		entry := cachestore.SummaryEntry{Class: cls}
		for _, mk := range a.methodsOfClass[cls] {
			if sum := set.Of(mk); sum != nil {
				entry.Methods = append(entry.Methods, cachestore.MethodSummary{Key: mk, Summary: sum})
			}
		}
		if len(entry.Methods) == 0 {
			continue
		}
		key := summaryCacheKey(cls, a.closureDigest(cls), a.reg, a.opts)
		a.putEntry(key, cachestore.EncodeSummaryEntry(&entry))
	}
}

func (a *analysis) putEntry(key cachestore.Key, payload []byte) {
	evicted, err := a.store.Put(key, payload)
	if err != nil {
		a.sstats.putErrs++
		return
	}
	a.sstats.puts++
	a.sstats.evicted += evicted
}

// statsCounters flattens Stats to the cached counter vector. The field
// order is the codec contract: statsFromCounters reads it back in the
// same order, and a length mismatch (a Stats shape change) invalidates
// old entries.
func statsCounters(s *Stats) []int64 {
	return []int64{
		int64(s.Requests), int64(s.UserRequests), int64(s.RetryEvalRequests),
		int64(s.MissConnCheck), int64(s.MissTimeout), int64(s.MissRetryConfig),
		int64(s.UserRequestsNoNotif), int64(s.ExplicitCallbackReqs), int64(s.ExplicitCallbackNotified),
		int64(s.ImplicitCallbackReqs), int64(s.ImplicitCallbackNotified),
		int64(s.ErrorCallbacks), int64(s.ErrorTypeChecked),
		int64(s.NoRetryTimeSensitive), int64(s.OverRetryService), int64(s.OverRetryServiceDefault),
		int64(s.OverRetryPost), int64(s.OverRetryPostDefault),
		int64(s.RespRequests), int64(s.RespMissCheck),
		int64(s.RetryLoops), int64(s.AggressiveRetryLoops),
		int64(s.OfflineHandlers), int64(s.OfflineNoRecovery),
		int64(s.GuardedSites), int64(s.StaleConnChecks),
		int64(s.EndpointSites), int64(s.ResolvedEndpoints),
		int64(s.CleartextEndpoints), int64(s.HardcodedIPEndpoints),
		int64(s.RetryStorms),
	}
}

// statsFromCounters is the inverse of statsCounters; ok is false on a
// counter-vector length mismatch.
func statsFromCounters(cs []int64, libs []string) (Stats, bool) {
	var s Stats
	if len(cs) != len(statsCounters(&s)) {
		return s, false
	}
	s.Requests, s.UserRequests, s.RetryEvalRequests = int(cs[0]), int(cs[1]), int(cs[2])
	s.MissConnCheck, s.MissTimeout, s.MissRetryConfig = int(cs[3]), int(cs[4]), int(cs[5])
	s.UserRequestsNoNotif, s.ExplicitCallbackReqs, s.ExplicitCallbackNotified = int(cs[6]), int(cs[7]), int(cs[8])
	s.ImplicitCallbackReqs, s.ImplicitCallbackNotified = int(cs[9]), int(cs[10])
	s.ErrorCallbacks, s.ErrorTypeChecked = int(cs[11]), int(cs[12])
	s.NoRetryTimeSensitive, s.OverRetryService, s.OverRetryServiceDefault = int(cs[13]), int(cs[14]), int(cs[15])
	s.OverRetryPost, s.OverRetryPostDefault = int(cs[16]), int(cs[17])
	s.RespRequests, s.RespMissCheck = int(cs[18]), int(cs[19])
	s.RetryLoops, s.AggressiveRetryLoops = int(cs[20]), int(cs[21])
	s.OfflineHandlers, s.OfflineNoRecovery = int(cs[22]), int(cs[23])
	s.GuardedSites, s.StaleConnChecks = int(cs[24]), int(cs[25])
	s.EndpointSites, s.ResolvedEndpoints = int(cs[26]), int(cs[27])
	s.CleartextEndpoints, s.HardcodedIPEndpoints = int(cs[28]), int(cs[29])
	s.RetryStorms = int(cs[30])
	for _, l := range libs {
		s.LibsUsed = append(s.LibsUsed, apimodel.LibKey(l))
	}
	return s, true
}

func libsToStrings(libs []apimodel.LibKey) []string {
	if len(libs) == 0 {
		return nil
	}
	out := make([]string, len(libs))
	for i, l := range libs {
		out[i] = string(l)
	}
	return out
}
