package checkers

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NumCheckerFamilies is the number of registered checker families:
//
//	1 request settings (connectivity check, timeout, retry config)
//	2 improper API parameters (retry count vs. context)
//	3 failure notification / error-type usage
//	4 response validity
//	5 offline-state handling (receivers/callbacks without recovery)
//	6 stale connectivity check (check-to-use distance)
//	7 endpoint hygiene (cleartext / hardcoded-IP URLs)
//	8 retry loops (aggressive loop, retry storm)
//
// The registry-completeness lint test (registry_test.go) fails when a
// family is added here without its corpus emitter, ground truth, report
// categories, and metrics counter.
const NumCheckerFamilies = 8

// CheckerSet selects which checker families run, as a bitmask over
// families 1..NumCheckerFamilies (bit i-1 enables family i). The zero
// value means "all families" so existing callers keep the full registry
// without opting in.
type CheckerSet uint

// allCheckersMask has every family bit set.
const allCheckersMask CheckerSet = 1<<NumCheckerFamilies - 1

// AllCheckers returns the set with every family enabled.
func AllCheckers() CheckerSet { return allCheckersMask }

// effective normalizes the set: zero (and any value with no in-range
// bits) means all families.
func (s CheckerSet) effective() CheckerSet {
	if s&allCheckersMask == 0 {
		return allCheckersMask
	}
	return s & allCheckersMask
}

// Enabled reports whether family (1-based) is selected.
func (s CheckerSet) Enabled(family int) bool {
	if family < 1 || family > NumCheckerFamilies {
		return false
	}
	return s.effective()&(1<<(family-1)) != 0
}

// Families returns the enabled family numbers in ascending order.
func (s CheckerSet) Families() []int {
	var out []int
	for f := 1; f <= NumCheckerFamilies; f++ {
		if s.Enabled(f) {
			out = append(out, f)
		}
	}
	return out
}

// String renders the set as the -checkers flag spelling: "all" for the
// full registry, else a compact comma list with ranges ("1,3,5-8").
func (s CheckerSet) String() string {
	e := s.effective()
	if e == allCheckersMask {
		return "all"
	}
	fams := e.Families()
	var parts []string
	for i := 0; i < len(fams); {
		j := i
		for j+1 < len(fams) && fams[j+1] == fams[j]+1 {
			j++
		}
		switch {
		case j == i:
			parts = append(parts, strconv.Itoa(fams[i]))
		case j == i+1:
			parts = append(parts, strconv.Itoa(fams[i]), strconv.Itoa(fams[j]))
		default:
			parts = append(parts, fmt.Sprintf("%d-%d", fams[i], fams[j]))
		}
		i = j + 1
	}
	return strings.Join(parts, ",")
}

// ParseCheckerSet parses the -checkers flag: "all" (or empty), or a
// comma list of family numbers and ranges, e.g. "1,2,8" or "5-8".
func ParseCheckerSet(s string) (CheckerSet, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return 0, nil
	}
	var set CheckerSet
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		lo, hi := tok, tok
		if dash := strings.IndexByte(tok, '-'); dash >= 0 {
			lo, hi = tok[:dash], tok[dash+1:]
		}
		a, errA := strconv.Atoi(lo)
		b, errB := strconv.Atoi(hi)
		if errA != nil || errB != nil || a < 1 || b > NumCheckerFamilies || a > b {
			return 0, fmt.Errorf("invalid checker selection %q (want \"all\" or families 1-%d, e.g. \"1,2,8\" or \"5-8\")", s, NumCheckerFamilies)
		}
		for f := a; f <= b; f++ {
			set |= 1 << (f - 1)
		}
	}
	return set, nil
}

// checkerStages maps pipeline stage names to the family that owns them,
// for ablation gating and the per-family report counters. The discovery,
// summary, and cache stages are family-independent infrastructure and are
// deliberately absent.
var checkerStages = map[string]int{
	"settings":      1,
	"parameters":    2,
	"notifications": 3,
	"responses":     4,
	"offlinestate":  5,
	"stalechecks":   6,
	"endpoints":     7,
	"retryloops":    8,
}

// FamilyOfStage reports which checker family (1-based) a pipeline stage
// belongs to; 0 for infrastructure stages.
func FamilyOfStage(stage string) int { return checkerStages[stage] }

// StageOfFamily returns the pipeline stage name owned by a family.
func StageOfFamily(family int) string {
	for name, f := range checkerStages {
		if f == family {
			return name
		}
	}
	return ""
}

// CheckerStageNames lists the checker-owned stage names in family order.
func CheckerStageNames() []string {
	names := make([]string, 0, len(checkerStages))
	for name := range checkerStages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return checkerStages[names[i]] < checkerStages[names[j]] })
	return names
}

// FamilyCauses maps each family to the report causes it emits, in report
// order. The completeness lint and the per-family accuracy experiment
// both key off this table.
func FamilyCauses(family int) []string {
	switch family {
	case 1:
		return []string{"no-connectivity-check", "no-timeout", "no-retry-config"}
	case 2:
		return []string{"no-retry-time-sensitive", "over-retry-service", "over-retry-post"}
	case 3:
		return []string{"no-failure-notification", "no-error-type-check"}
	case 4:
		return []string{"no-response-check"}
	case 5:
		return []string{"offline-state-no-recovery"}
	case 6:
		return []string{"stale-connectivity-check"}
	case 7:
		return []string{"cleartext-endpoint", "hardcoded-ip-endpoint"}
	case 8:
		return []string{"aggressive-retry-loop", "retry-storm"}
	}
	return nil
}
