package checkers

import "testing"

func TestParseEngineMode(t *testing.T) {
	tests := []struct {
		in      string
		want    EngineMode
		wantErr bool
	}{
		{in: "full", want: ModeFull},
		{in: "targeted", want: ModeTargeted},
		{in: "", wantErr: true},
		{in: "Full", wantErr: true},
		{in: "TARGETED", wantErr: true},
		{in: "targeted ", wantErr: true},
		{in: "fast", wantErr: true},
		{in: "demand", wantErr: true},
	}
	for _, tc := range tests {
		got, err := ParseEngineMode(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseEngineMode(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEngineMode(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseEngineMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestEngineModeString(t *testing.T) {
	if ModeFull.String() != "full" || ModeTargeted.String() != "targeted" {
		t.Errorf("String(): full=%q targeted=%q", ModeFull, ModeTargeted)
	}
	// Round trip: every mode's String parses back to itself (the serve
	// handler and CLI rely on it).
	for _, m := range []EngineMode{ModeFull, ModeTargeted} {
		back, err := ParseEngineMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v: got %v, %v", m, back, err)
		}
	}
}
