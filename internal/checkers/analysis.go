// Package checkers implements NChecker's four NPD analyses over a parsed
// app (paper §4.4) plus the customized retry-loop identification (§4.5):
//
//  1. request-setting checks — connectivity checks on every entry→request
//     path (interprocedural must-precede) and missing config APIs
//     discovered by tainting the request's config object,
//  2. improper API parameters — retry counts judged against the request
//     context (Activity vs. Service, POST) via constant propagation,
//  3. failure-notification checks — UI-alert calls in request callbacks of
//     user-initiated requests, and error-type usage in error callbacks,
//  4. response-validity checks — taint the response object and require a
//     validity check on every def→use path.
//
// The entry point is Analyze, which produces warning reports and the
// per-request statistics the paper's evaluation aggregates.
package checkers

import (
	"sort"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
	"repro/internal/report"
)

// Options tunes the analysis.
type Options struct {
	// DisableTaintConfigDiscovery replaces the taint-based config-API
	// discovery with a whole-method scan (ablation baseline): any config
	// call in the method counts, even on an unrelated client object.
	DisableTaintConfigDiscovery bool
	// DisableRetrySlicing disables the backward-slicing step of retry-loop
	// identification (ablation): any loop containing a request counts as
	// a retry loop.
	DisableRetrySlicing bool
	// DeclaredDispatchOnly forwards to callgraph.Options (ablation).
	DeclaredDispatchOnly bool
	// EnableICC turns on the inter-component analysis (callgraph.Options
	// .EnableICC) — the paper's §4.7 future work. It removes the false
	// positives caused by connectivity checks in a launching activity and
	// by failure notifications routed through broadcasts.
	EnableICC bool
	// GuardSensitiveConnCheck tightens Checker 1: a connectivity check
	// only satisfies the analysis when its result actually governs a
	// branch (tracked by forward taint from the check's result to an if
	// condition). This removes the paper's §5.3 false negatives, where a
	// check is invoked but its result ignored. Off by default to match
	// the published tool's path-insensitive behaviour.
	GuardSensitiveConnCheck bool
}

// Stats aggregates per-request findings for one app; the evaluation
// harness (Tables 6 and 8, Figures 8 and 9) is computed from these.
type Stats struct {
	Requests     int
	UserRequests int
	// RetryEvalRequests counts requests made with retry-capable libraries
	// (the denominator of the retry rows of Tables 6 and 8).
	RetryEvalRequests int

	MissConnCheck   int // requests without a guarding connectivity check
	MissTimeout     int // requests without a timeout config call
	MissRetryConfig int // requests (retry-capable libs) without retry config

	UserRequestsNoNotif      int // user requests without failure notification
	ExplicitCallbackReqs     int
	ExplicitCallbackNotified int
	ImplicitCallbackReqs     int
	ImplicitCallbackNotified int
	ErrorCallbacks           int // error callbacks receiving a typed error object
	ErrorTypeChecked         int // ... that actually inspect the error object

	NoRetryTimeSensitive    int
	OverRetryService        int
	OverRetryServiceDefault int
	OverRetryPost           int
	OverRetryPostDefault    int

	RespRequests  int // requests on libraries with response-check APIs
	RespMissCheck int

	RetryLoops           int
	AggressiveRetryLoops int

	LibsUsed []apimodel.LibKey
}

// Result bundles an app's warnings and statistics.
type Result struct {
	Reports []report.Report
	Stats   Stats
}

// requestSite is one network-request call site with everything the
// checkers need resolved.
type requestSite struct {
	method *jimple.Method
	stmt   int
	inv    jimple.InvokeExpr
	lib    *apimodel.Library
	target *apimodel.Target

	component     string
	kind          android.ComponentKind
	userInitiated bool
	httpMethod    string

	configCalls []dataflow.ObjectCall
	configObj   string // local holding the config object ("" if unresolved)

	timeoutSet bool
	retrySet   bool
	retryCount int  // effective retry count
	retryKnown bool // retryCount is meaningful
	entrySig   jimple.Sig
}

// analysis carries the shared state of one app scan.
type analysis struct {
	app  *apk.App
	reg  *apimodel.Registry
	h    *hierarchy.Hierarchy
	cg   *callgraph.Graph
	opts Options

	cfgs map[string]*cfg.Graph
	rds  map[string]*dataflow.ReachDefs

	sites   []*requestSite
	reports []report.Report
	stats   Stats
}

// Analyze runs all checkers over the app using the registry's annotations.
func Analyze(app *apk.App, reg *apimodel.Registry, opts Options) *Result {
	prog := jimple.NewProgram()
	prog.Merge(app.Program)
	prog.Merge(android.Framework())
	prog.Merge(apimodel.Stubs())
	h := hierarchy.New(prog)
	cg := callgraph.BuildWith(h, app.Manifest, callgraph.Options{
		DeclaredDispatchOnly: opts.DeclaredDispatchOnly,
		EnableICC:            opts.EnableICC,
	})
	a := &analysis{
		app:  app,
		reg:  reg,
		h:    h,
		cg:   cg,
		opts: opts,
		cfgs: make(map[string]*cfg.Graph),
		rds:  make(map[string]*dataflow.ReachDefs),
	}
	a.stats.LibsUsed = reg.LibsUsedBy(app.Program)
	a.discoverSites()
	a.checkRequestSettings()
	a.checkParameters()
	a.checkNotifications()
	a.checkResponses()
	a.checkRetryLoops()
	sort.SliceStable(a.reports, func(i, j int) bool {
		ri, rj := &a.reports[i], &a.reports[j]
		if ri.Location.Method.Key() != rj.Location.Method.Key() {
			return ri.Location.Method.Key() < rj.Location.Method.Key()
		}
		if ri.Location.Stmt != rj.Location.Stmt {
			return ri.Location.Stmt < rj.Location.Stmt
		}
		return ri.Cause < rj.Cause
	})
	return &Result{Reports: a.reports, Stats: a.stats}
}

func (a *analysis) cfgOf(m *jimple.Method) *cfg.Graph {
	k := m.Sig.Key()
	if g, ok := a.cfgs[k]; ok {
		return g
	}
	g := cfg.New(m)
	a.cfgs[k] = g
	return g
}

func (a *analysis) rdOf(m *jimple.Method) *dataflow.ReachDefs {
	k := m.Sig.Key()
	if rd, ok := a.rds[k]; ok {
		return rd
	}
	rd := dataflow.NewReachDefs(a.cfgOf(m))
	a.rds[k] = rd
	return rd
}

// appMethods returns the app's own body-bearing methods, sorted by key.
func (a *analysis) appMethods() []*jimple.Method {
	var out []*jimple.Method
	for _, c := range a.app.Program.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sig.Key() < out[j].Sig.Key() })
	return out
}

// discoverSites performs the reachability analysis of §4.4: it finds every
// target-API call site, determines which entry points reach it, and
// resolves its context (user vs. background, HTTP method) and config-API
// call set.
func (a *analysis) discoverSites() {
	for _, m := range a.appMethods() {
		mKey := m.Sig.Key()
		entries := a.cg.EntriesReaching(mKey)
		for i, s := range m.Body {
			inv, ok := jimple.InvokeOf(s)
			if !ok {
				continue
			}
			lib, target, isTarget := a.reg.TargetOf(inv.Callee)
			if !isTarget {
				continue
			}
			if len(entries) == 0 {
				// Dead code: the paper's tool only reports requests
				// reachable from an entry point.
				continue
			}
			site := &requestSite{
				method: m, stmt: i, inv: inv, lib: lib, target: target,
			}
			a.resolveContext(site, entries)
			a.resolveConfig(site)
			a.sites = append(a.sites, site)
			a.stats.Requests++
			if site.userInitiated {
				a.stats.UserRequests++
			}
			if lib.HasRetryAPIs {
				a.stats.RetryEvalRequests++
			}
		}
	}
}

// resolveContext decides user vs. background per §4.4.2: entry points in
// Activity classes are user-initiated; Service entries are background.
// A request reachable from both is treated as user-initiated (the stricter
// notification obligations apply).
func (a *analysis) resolveContext(site *requestSite, entries []callgraph.Entry) {
	site.kind = android.KindOther
	for _, e := range entries {
		switch e.Kind {
		case android.KindActivity:
			site.userInitiated = true
			site.kind = android.KindActivity
			site.component = e.Component
			site.entrySig = e.Method.Sig
		case android.KindService:
			if !site.userInitiated {
				site.kind = android.KindService
				site.component = e.Component
				site.entrySig = e.Method.Sig
			}
		default:
			if site.component == "" {
				site.kind = e.Kind
				site.component = e.Component
				site.entrySig = e.Method.Sig
			}
		}
	}
	site.httpMethod = site.target.HTTPMethod
	if site.lib.Key == apimodel.LibVolley {
		site.httpMethod = a.resolveVolleyMethod(site)
	}
}

// resolveVolleyMethod recovers the HTTP method of a Volley request from
// the Request constructor's first argument (Method.GET = 0, POST = 1).
func (a *analysis) resolveVolleyMethod(site *requestSite) string {
	reqLocal, ok := argLocal(site.inv, 0)
	if !ok {
		return ""
	}
	m := site.method
	rd := a.rdOf(m)
	cp := dataflow.NewConstProp(rd)
	for _, alloc := range dataflow.AllocSitesOf(rd, site.stmt, reqLocal) {
		local := rd.DefOfStmt(alloc)
		// Find the constructor invocation on the allocated local.
		for j := alloc + 1; j < len(m.Body); j++ {
			inv, ok := jimple.InvokeOf(m.Body[j])
			if !ok || inv.Kind != jimple.InvokeSpecial || inv.Base != local || inv.Callee.Name != "<init>" {
				continue
			}
			if len(inv.Args) == 0 {
				break
			}
			if v, ok := cp.ArgInt(j, inv, 0); ok {
				if v == apimodel.VolleyMethodPost {
					return "POST"
				}
				return "GET"
			}
			break
		}
	}
	return ""
}

// resolveConfig runs the taint step of §4.4.1: locate the config object
// (client or request), collect every call on its aliases, and record which
// timeout/retry config APIs were used with what arguments.
func (a *analysis) resolveConfig(site *requestSite) {
	m := site.method
	g := a.cfgOf(m)
	rd := a.rdOf(m)
	if a.opts.DisableTaintConfigDiscovery {
		// Ablation: accept any config call anywhere in the method.
		for i, s := range m.Body {
			if inv, ok := jimple.InvokeOf(s); ok {
				if _, _, isCfg := a.reg.ConfigOf(inv.Callee); isCfg {
					site.configCalls = append(site.configCalls, dataflow.ObjectCall{Stmt: i, Callee: inv.Callee})
				}
			}
		}
	} else {
		var obj string
		if site.target.ConfigObjArg < 0 {
			obj = site.inv.Base
		} else if l, ok := argLocal(site.inv, site.target.ConfigObjArg); ok {
			obj = l
		}
		site.configObj = obj
		if obj != "" {
			site.configCalls = dataflow.CallsOnObject(g, rd, site.stmt, obj)
		}
	}
	cp := dataflow.NewConstProp(rd)
	defaults := site.lib.Defaults
	site.retryCount, site.retryKnown = defaults.Retries, true
	for _, oc := range site.configCalls {
		_, cfgAPI, ok := a.reg.ConfigOf(oc.Callee)
		if !ok {
			continue
		}
		switch cfgAPI.Kind {
		case apimodel.ConfigTimeout:
			site.timeoutSet = true
		case apimodel.ConfigRetry:
			site.retrySet = true
			if cfgAPI.CountArg >= 0 {
				if inv, okInv := jimple.InvokeOf(m.Body[oc.Stmt]); okInv {
					if v, okV := cp.ArgInt(oc.Stmt, inv, cfgAPI.CountArg); okV {
						site.retryCount, site.retryKnown = int(v), true
						continue
					}
				}
				site.retryKnown = false
			} else {
				// A policy-object API: retries configured but the count
				// is opaque.
				site.retryKnown = false
			}
		}
	}
}

func argLocal(inv jimple.InvokeExpr, i int) (string, bool) {
	if i < 0 || i >= len(inv.Args) {
		return "", false
	}
	l, ok := inv.Args[i].(jimple.Local)
	if !ok {
		return "", false
	}
	return l.Name, true
}

// newReport assembles a report for a site with the call stack from its
// representative entry point.
func (a *analysis) newReport(site *requestSite, cause report.Cause, msg string) report.Report {
	ctx := report.Context{
		Component:     site.component,
		Kind:          site.kind,
		UserInitiated: site.userInitiated,
		HTTPMethod:    site.httpMethod,
	}
	r := report.Report{
		Cause:         cause,
		Lib:           site.lib.Key,
		Message:       msg,
		Location:      report.Loc{Method: site.method.Sig, Stmt: site.stmt},
		Impacts:       report.Impacts(cause),
		Context:       ctx,
		FixSuggestion: report.Suggest(cause, ctx, site.lib),
	}
	if site.entrySig.Name != "" {
		for _, f := range a.cg.CallStack(site.entrySig, site.method.Sig.Key()) {
			r.CallStack = append(r.CallStack, report.Frame{Method: f.Method.Key(), Site: f.Site})
		}
	}
	return r
}
