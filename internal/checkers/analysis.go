// Package checkers implements NChecker's four NPD analyses over a parsed
// app (paper §4.4) plus the customized retry-loop identification (§4.5):
//
//  1. request-setting checks — connectivity checks on every entry→request
//     path (interprocedural must-precede) and missing config APIs
//     discovered by tainting the request's config object,
//  2. improper API parameters — retry counts judged against the request
//     context (Activity vs. Service, POST) via constant propagation,
//  3. failure-notification checks — UI-alert calls in request callbacks of
//     user-initiated requests, and error-type usage in error callbacks,
//  4. response-validity checks — taint the response object and require a
//     validity check on every def→use path.
//
// The entry point is Analyze, which runs a staged pass pipeline (see
// pipeline.go): request-site discovery, the four checkers, and retry-loop
// identification are named stages fanned out over a bounded worker pool,
// sharing per-method analysis artifacts through an AnalysisContext
// (context.go) and reporting per-stage wall time and cache statistics
// through Diagnostics (diagnostics.go). Reports are deterministic
// regardless of Options.Workers.
package checkers

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/cachestore"
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
	"repro/internal/report"
)

// Options tunes the analysis.
type Options struct {
	// DisableTaintConfigDiscovery replaces the taint-based config-API
	// discovery with a whole-method scan (ablation baseline): any config
	// call in the method counts, even on an unrelated client object.
	DisableTaintConfigDiscovery bool
	// DisableRetrySlicing disables the backward-slicing step of retry-loop
	// identification (ablation): any loop containing a request counts as
	// a retry loop.
	DisableRetrySlicing bool
	// DeclaredDispatchOnly forwards to callgraph.Options (ablation).
	DeclaredDispatchOnly bool
	// EnableICC turns on the inter-component analysis (callgraph.Options
	// .EnableICC) — the paper's §4.7 future work. It removes the false
	// positives caused by connectivity checks in a launching activity and
	// by failure notifications routed through broadcasts.
	EnableICC bool
	// Intraprocedural disables the summary-based interprocedural taint
	// engine and path-feasibility pruning (ablation baseline): checkers
	// 1/3/4 stop at method boundaries as the pre-summary analyzer did.
	// The precision/recall delta against the default interprocedural mode
	// is what internal/experiments measures on the examples corpus.
	Intraprocedural bool
	// Mode selects the engine traversal: ModeFull scans every app method,
	// ModeTargeted grows a demand-driven closure from the registry's
	// network-API sites (targeted.go). Reports and stats are identical in
	// both modes; targeted scans do less work and say so in Diagnostics.
	Mode EngineMode
	// Checkers selects which checker families run (the -checkers ablation
	// flag). The zero value runs all families; see CheckerSet. Disabled
	// families skip their pipeline stages entirely — their reports and
	// stat counters simply do not appear — so the selection joins the
	// cache fingerprint.
	Checkers CheckerSet
	// GuardSensitiveConnCheck tightens Checker 1: a connectivity check
	// only satisfies the analysis when its result actually governs a
	// branch (tracked by forward taint from the check's result to an if
	// condition). This removes the paper's §5.3 false negatives, where a
	// check is invoked but its result ignored. Off by default to match
	// the published tool's path-insensitive behaviour.
	GuardSensitiveConnCheck bool
	// Validate enables the dynamic counterexample validation stage
	// (validate.go): after the checkers, each warning's witness entry
	// point is replayed under injected network disruptions (internal/interp
	// + internal/netsim) and the report carries a confirmed / unconfirmed /
	// not-validated verdict. Off by default; verdicts join the persistent
	// cache fingerprint.
	Validate bool
	// Workers bounds the pipeline's fan-out inside one scan, and the
	// per-app concurrency of batch scans (cmd/nchecker, the corpus
	// harness). 0 means runtime.NumCPU(). Reports and stats are
	// deterministic regardless of the value.
	Workers int
	// Timeout bounds one scan's wall time; 0 means no deadline. An
	// expired deadline never aborts the process: the scan stops
	// dispatching work, keeps every completed stage's findings, and marks
	// the Result Incomplete with an ErrDeadline in Diagnostics.Errors.
	Timeout time.Duration

	// CacheDir, when non-empty and CacheMode is not CacheOff, enables the
	// persistent content-addressed scan cache (internal/cachestore) rooted
	// at that directory. Unchanged apps are answered from cache without
	// analysis; changed apps reuse per-class taint summaries whose call
	// closures didn't change. See cache.go for key anatomy and fault
	// semantics — cache trouble degrades to a cold scan, never to a failed
	// one.
	CacheDir string
	// CacheMode selects off / read-only / read-write use of CacheDir.
	CacheMode CacheMode
	// CacheMaxBytes bounds the on-disk cache size (LRU eviction);
	// 0 means cachestore.DefaultMaxBytes.
	CacheMaxBytes int64

	// unitHook, when set, runs at the start of every pipeline work unit
	// with the stage name and unit index. Tests use it to inject panics
	// and cancellations at precise points; it is never set in production.
	unitHook func(stage string, unit int)
}

// workerCount resolves Workers to a concrete pool size.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Stats aggregates per-request findings for one app; the evaluation
// harness (Tables 6 and 8, Figures 8 and 9) is computed from these.
type Stats struct {
	Requests     int
	UserRequests int
	// RetryEvalRequests counts requests made with retry-capable libraries
	// (the denominator of the retry rows of Tables 6 and 8).
	RetryEvalRequests int

	MissConnCheck   int // requests without a guarding connectivity check
	MissTimeout     int // requests without a timeout config call
	MissRetryConfig int // requests (retry-capable libs) without retry config

	UserRequestsNoNotif      int // user requests without failure notification
	ExplicitCallbackReqs     int
	ExplicitCallbackNotified int
	ImplicitCallbackReqs     int
	ImplicitCallbackNotified int
	ErrorCallbacks           int // error callbacks receiving a typed error object
	ErrorTypeChecked         int // ... that actually inspect the error object

	NoRetryTimeSensitive    int
	OverRetryService        int
	OverRetryServiceDefault int
	OverRetryPost           int
	OverRetryPostDefault    int

	RespRequests  int // requests on libraries with response-check APIs
	RespMissCheck int

	RetryLoops           int
	AggressiveRetryLoops int

	// Checker 5 (offline-state handling).
	OfflineHandlers   int // network-state handlers examined
	OfflineNoRecovery int // ... with neither retry nor cached-content fallback

	// Checker 6 (stale connectivity check).
	GuardedSites    int // request sites with a must-preceding connectivity check
	StaleConnChecks int // ... whose every guard is stale (loop/wait/callback gap)

	// Checker 7 (endpoint hygiene).
	EndpointSites        int // URL-bearing call sites examined
	ResolvedEndpoints    int // ... whose URL constant-propagated to a literal
	CleartextEndpoints   int
	HardcodedIPEndpoints int

	// Checker 8 extension (retry storm: backoff off the retry path).
	RetryStorms int

	LibsUsed []apimodel.LibKey
}

// add accumulates another unit's counters into s (every stage touches a
// disjoint field set, so summation reproduces the sequential totals).
// LibsUsed is app-level and set once by the pipeline, never summed.
func (s *Stats) add(o *Stats) {
	s.Requests += o.Requests
	s.UserRequests += o.UserRequests
	s.RetryEvalRequests += o.RetryEvalRequests
	s.MissConnCheck += o.MissConnCheck
	s.MissTimeout += o.MissTimeout
	s.MissRetryConfig += o.MissRetryConfig
	s.UserRequestsNoNotif += o.UserRequestsNoNotif
	s.ExplicitCallbackReqs += o.ExplicitCallbackReqs
	s.ExplicitCallbackNotified += o.ExplicitCallbackNotified
	s.ImplicitCallbackReqs += o.ImplicitCallbackReqs
	s.ImplicitCallbackNotified += o.ImplicitCallbackNotified
	s.ErrorCallbacks += o.ErrorCallbacks
	s.ErrorTypeChecked += o.ErrorTypeChecked
	s.NoRetryTimeSensitive += o.NoRetryTimeSensitive
	s.OverRetryService += o.OverRetryService
	s.OverRetryServiceDefault += o.OverRetryServiceDefault
	s.OverRetryPost += o.OverRetryPost
	s.OverRetryPostDefault += o.OverRetryPostDefault
	s.RespRequests += o.RespRequests
	s.RespMissCheck += o.RespMissCheck
	s.RetryLoops += o.RetryLoops
	s.AggressiveRetryLoops += o.AggressiveRetryLoops
	s.OfflineHandlers += o.OfflineHandlers
	s.OfflineNoRecovery += o.OfflineNoRecovery
	s.GuardedSites += o.GuardedSites
	s.StaleConnChecks += o.StaleConnChecks
	s.EndpointSites += o.EndpointSites
	s.ResolvedEndpoints += o.ResolvedEndpoints
	s.CleartextEndpoints += o.CleartextEndpoints
	s.HardcodedIPEndpoints += o.HardcodedIPEndpoints
	s.RetryStorms += o.RetryStorms
}

// Result bundles an app's warnings, statistics, and scan diagnostics.
// A degraded scan (a stage panicked, the deadline expired, the context
// was canceled) sets Incomplete: Reports and Stats then hold everything
// the surviving stages produced — still deterministically ordered — and
// Diagnostics.Errors records what was lost.
type Result struct {
	Reports     []report.Report
	Stats       Stats
	Incomplete  bool
	Diagnostics Diagnostics
}

// findings collects one unit of pipeline work (a site, a method, a whole
// stage): its warnings and stat deltas. Units are merged in a fixed
// deterministic order at each stage's barrier, so the assembled report
// stream is identical to the historical sequential analyzer's.
type findings struct {
	reports []report.Report
	stats   Stats
}

func (f *findings) report(r report.Report) {
	f.reports = append(f.reports, r)
}

// mergeFindings concatenates units in index order and sums their stats.
func mergeFindings(units []findings) findings {
	var out findings
	for i := range units {
		out.reports = append(out.reports, units[i].reports...)
		out.stats.add(&units[i].stats)
	}
	return out
}

// requestSite is one network-request call site with everything the
// checkers need resolved.
type requestSite struct {
	method *jimple.Method
	stmt   int
	inv    jimple.InvokeExpr
	lib    *apimodel.Library
	target *apimodel.Target

	component     string
	kind          android.ComponentKind
	userInitiated bool
	httpMethod    string

	configCalls []dataflow.ObjectCall
	configObj   string // local holding the config object ("" if unresolved)

	timeoutSet bool
	retrySet   bool
	retryCount int  // effective retry count
	retryKnown bool // retryCount is meaningful
	entrySig   jimple.Sig
}

// analysis carries the shared read-only state of one app scan. After the
// discovery stage runs, methods and sites are frozen; the checker stages
// only read them and write into per-unit findings.
type analysis struct {
	app  *apk.App
	reg  *apimodel.Registry
	h    *hierarchy.Hierarchy
	cg   *callgraph.Graph
	opts Options
	ctx  *AnalysisContext

	// scanCtx carries the scan's deadline and cancellation; every stage
	// and work-unit dispatch checks it cooperatively.
	scanCtx context.Context

	// sem bounds concurrent per-item work across all stages (the shared
	// worker pool); nil or capacity 1 means sequential execution.
	sem chan struct{}

	// errMu guards errs, the scan's accumulated failure records. Sorted
	// deterministically at the merge barrier into Diagnostics.Errors.
	errMu sync.Mutex
	errs  []ScanError

	methods []*jimple.Method // app's body-bearing methods, sorted by key
	// keyOf caches each collected method's rendered signature key; the
	// checkers look methods up by key constantly, and re-rendering was a
	// top allocation source. Frozen alongside methods in the build stage,
	// read-only afterwards (so safe for concurrent stages).
	keyOf map[*jimple.Method]string
	sites []*requestSite

	// Targeted-mode state (targeted.go), frozen before the pipeline's
	// build stage. roots holds the relevant-method closure (sorted keys);
	// demanded the class closure; tstats the work-avoided counters. All
	// nil/zero in full mode.
	roots    []string
	demanded map[string]bool
	tstats   TargetedStats

	// Validation-stage counters (validate.go); written sequentially by the
	// validate stage, read by finish.
	vstats ValidateStats

	// Persistent-cache state (cache.go). The cache stages run at
	// sequential points of the pipeline — probe before build, seed before
	// summaries, write after merge — so none of this needs locking.
	store          *cachestore.Store
	resultKey      cachestore.Key
	haveResultKey  bool
	manifestHash   [sha256.Size]byte
	seeds          map[string]*dataflow.TaintSummary
	seededClasses  map[string]bool
	classOfMethod  map[string]string
	methodsOfClass map[string][]string
	cacheClasses   []string
	classHashes    map[string][sha256.Size]byte
	closureMemo    map[string][sha256.Size]byte
	sstats         storeStats
	// hitAppMethods/hitSites carry the cached per-app diagnostics counts
	// on a full result hit (the scan skips discovery, so a.methods and
	// a.sites stay empty).
	hitAppMethods, hitSites int
}

// fail records one survivable scan failure.
func (a *analysis) fail(e ScanError) {
	a.errMu.Lock()
	a.errs = append(a.errs, e)
	a.errMu.Unlock()
}

// failCancel records the scan context's termination as an ErrDeadline or
// ErrCanceled for the given stage.
func (a *analysis) failCancel(stage string, err error) {
	kind := ErrCanceled
	if errors.Is(err, context.DeadlineExceeded) {
		kind = ErrDeadline
	}
	a.fail(ScanError{Kind: kind, Stage: stage, Unit: -1, Msg: err.Error()})
}

// runUnit executes one work unit with panic isolation: a panic is
// converted into an ErrStagePanic record (message + stack) and only that
// unit's findings are lost.
func (a *analysis) runUnit(stage string, i int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			a.fail(ScanError{
				Kind: ErrStagePanic, Stage: stage, Unit: i,
				Msg: fmt.Sprint(r), Stack: string(debug.Stack()),
			})
		}
	}()
	if h := a.opts.unitHook; h != nil {
		h(stage, i)
	}
	fn(i)
}

// guard runs one stage body with cancellation and panic isolation: a
// canceled context skips the stage (recording why), and a panic anywhere
// in the stage — including its sequential pre/post work outside
// parallelFor — becomes a stage-level ErrStagePanic instead of crashing
// the scan.
func (a *analysis) guard(stage string, fn func()) {
	if err := a.scanCtx.Err(); err != nil {
		a.failCancel(stage, err)
		return
	}
	defer func() {
		if r := recover(); r != nil {
			a.fail(ScanError{
				Kind: ErrStagePanic, Stage: stage, Unit: -1,
				Msg: fmt.Sprint(r), Stack: string(debug.Stack()),
			})
		}
	}()
	fn()
}

// parallelFor runs fn(0..n-1) over the bounded worker pool and waits for
// completion. Each index must write only to its own output slot, which
// makes the stage's merged result independent of scheduling. Cancellation
// is checked before every dispatch (work-unit granularity) and a panicked
// unit is isolated by runUnit; either way the units that did complete
// keep their slots, so partial results stay deterministic.
func (a *analysis) parallelFor(stage string, n int, fn func(int)) {
	if n <= 1 || a.sem == nil || cap(a.sem) <= 1 {
		for i := 0; i < n; i++ {
			if err := a.scanCtx.Err(); err != nil {
				a.failCancel(stage, err)
				return
			}
			a.runUnit(stage, i, fn)
		}
		return
	}
	var wg sync.WaitGroup
	canceled := false
	for i := 0; i < n && !canceled; i++ {
		select {
		case <-a.scanCtx.Done():
			canceled = true
		case a.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-a.sem }()
				a.runUnit(stage, i, fn)
			}(i)
		}
	}
	wg.Wait()
	if canceled {
		a.failCancel(stage, a.scanCtx.Err())
	}
}

// collectAppMethods returns the app's own body-bearing methods, sorted by
// key. In targeted mode only methods of demanded classes are collected:
// every consumer of a.methods (discovery, retry loops, guard-site scans,
// summary roots, the summary cache's class index) provably produces
// identical reports over this subset — see targeted.go for the closure
// rules and DESIGN.md §9 for the equivalence argument.
func (a *analysis) collectAppMethods() []*jimple.Method {
	var out []*jimple.Method
	for _, c := range a.app.Program.Classes() {
		if a.demanded != nil && !a.demanded[c.Name] {
			continue
		}
		for _, m := range c.Methods {
			if m.HasBody() {
				out = append(out, m)
			}
		}
	}
	// Render each key once and sort on the cached strings; the comparator
	// used to re-render both keys per comparison.
	keys := make([]string, len(out))
	intern := jimple.NewInterner()
	for i, m := range out {
		keys[i] = intern.SigKey(m.Sig)
	}
	sort.Sort(&methodKeySorter{methods: out, keys: keys})
	a.keyOf = make(map[*jimple.Method]string, len(out))
	for i, m := range out {
		a.keyOf[m] = keys[i]
	}
	return out
}

// methodKey returns m's signature key, from the per-scan cache when m is
// one of the collected app methods, rendering it otherwise.
func (a *analysis) methodKey(m *jimple.Method) string {
	if k, ok := a.keyOf[m]; ok {
		return k
	}
	return m.Sig.Key()
}

type methodKeySorter struct {
	methods []*jimple.Method
	keys    []string
}

func (s *methodKeySorter) Len() int { return len(s.methods) }

func (s *methodKeySorter) Swap(i, j int) {
	s.methods[i], s.methods[j] = s.methods[j], s.methods[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (s *methodKeySorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }

// configureSummaries installs the interprocedural summary producer on the
// analysis context. The computation itself runs on first consult — the
// pipeline does that eagerly under the "summaries" stage guard, so a panic
// inside the engine is isolated there, and a deadline hit mid-pass aborts
// cooperatively (the Cancel hook) and is recorded here; either way the
// scan survives with every consumer degraded to intraprocedural facts.
func (a *analysis) configureSummaries() {
	a.ctx.configureSummaries(func() (*dataflow.SummarySet, error) {
		set, err := dataflow.ComputeSummaries(a.cg, a.methods, dataflow.SummaryConfig{
			IsValidityCheck: a.reg.IsRespCheck,
			CFG:             a.ctx.CFG,
			ReachDefs:       a.ctx.ReachDefs,
			ConstProp:       a.ctx.ConstProp,
			Cancel:          a.scanCtx.Err,
			// Seeds is read here, at producer-invocation time: the cacheseed
			// stage has populated a.seeds by the time the summaries stage
			// forces the computation.
			Seeds: a.seeds,
			// Roots restricts the computation to the demanded sub-condensation
			// in targeted mode; nil (full mode) keeps the whole-app bottom-up
			// order.
			Roots: a.roots,
		})
		if err != nil {
			a.failCancel("summaries", err)
			return nil, err
		}
		return set, nil
	})
}

// summaryResolver returns the call-site → callee-summaries resolver for m,
// or nil when the scan is intraprocedural (or summaries are unavailable
// after a degraded computation). Only EdgeCall edges resolve: async
// boundaries (executor posts, callback registrations) are not synchronous
// transfer and keep their dedicated modeling.
func (a *analysis) summaryResolver(m *jimple.Method) dataflow.SummaryResolver {
	if a.opts.Intraprocedural {
		return nil
	}
	set := a.ctx.Summaries()
	if set == nil {
		return nil
	}
	edges := a.cg.OutEdges(a.methodKey(m))
	return func(site int) []*dataflow.TaintSummary {
		a.ctx.sumRequests.Add(1)
		var out []*dataflow.TaintSummary
		for _, e := range edges {
			if e.Site != site || e.Kind != callgraph.EdgeCall {
				continue
			}
			if sum := set.Of(e.CalleeKey()); sum != nil {
				out = append(out, sum)
			}
		}
		return out
	}
}

// checkGraph returns the CFG the checkers should analyze m over: the
// feasibility-pruned graph by default, the raw graph under -intra.
func (a *analysis) checkGraph(m *jimple.Method) *cfg.Graph {
	if a.opts.Intraprocedural {
		return a.ctx.CFG(m)
	}
	return a.ctx.FeasibleCFG(m)
}

func argLocal(inv jimple.InvokeExpr, i int) (string, bool) {
	if i < 0 || i >= len(inv.Args) {
		return "", false
	}
	l, ok := inv.Args[i].(jimple.Local)
	if !ok {
		return "", false
	}
	return l.Name, true
}

// newReport assembles a report for a site with the call stack from its
// representative entry point.
func (a *analysis) newReport(site *requestSite, cause report.Cause, msg string) report.Report {
	ctx := report.Context{
		Component:     site.component,
		Kind:          site.kind,
		UserInitiated: site.userInitiated,
		HTTPMethod:    site.httpMethod,
	}
	r := report.Report{
		Cause:         cause,
		Lib:           site.lib.Key,
		Message:       msg,
		Location:      report.Loc{Method: site.method.Sig, Stmt: site.stmt},
		Impacts:       report.Impacts(cause),
		Context:       ctx,
		FixSuggestion: report.Suggest(cause, ctx, site.lib),
	}
	if site.entrySig.Name != "" {
		for _, f := range a.cg.CallStack(site.entrySig, a.methodKey(site.method)) {
			r.CallStack = append(r.CallStack, report.Frame{Method: f.Method.Key(), Site: f.Site})
		}
	}
	return r
}
