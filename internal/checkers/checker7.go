package checkers

import (
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/dataflow"
	"repro/internal/jimple"
	"repro/internal/report"
)

// checkEndpoints implements Checker 7 (endpoint hygiene): constant-
// propagate the URL argument of every endpoint-accepting API call
// (request constructors and one-shot helpers, annotated per library in
// apimodel) — including `base + path` string building — and flag
//
//   - cleartext http:// endpoints: on disrupted networks (captive
//     portals, transparent proxies) cleartext requests are the ones that
//     get tampered with or blocked, and
//   - hardcoded IPv4-literal hosts: the server cannot move and DNS-level
//     failover cannot steer clients around an outage.
//
// A URL that does not fold to a constant is skipped — a documented
// false-negative source (DESIGN.md §11). Hygiene is lexical: sites are
// flagged even when unreachable from an entry point.
func (a *analysis) checkEndpoints() findings {
	units := make([]findings, len(a.methods))
	a.parallelFor("endpoints", len(a.methods), func(i int) {
		a.checkMethodEndpoints(a.methods[i], &units[i])
	})
	return mergeFindings(units)
}

func (a *analysis) checkMethodEndpoints(m *jimple.Method, f *findings) {
	var cp *dataflow.ConstProp
	for i, s := range m.Body {
		inv, ok := jimple.InvokeOf(s)
		if !ok {
			continue
		}
		lib, ep, isEp := a.reg.EndpointOf(inv.Callee)
		if !isEp {
			continue
		}
		f.stats.EndpointSites++
		if cp == nil {
			cp = a.ctx.ConstProp(m)
		}
		url, okURL := cp.ArgStr(i, inv, ep.URLArg)
		if !okURL {
			continue // dynamic URL: cannot judge hygiene statically
		}
		f.stats.ResolvedEndpoints++
		site := a.endpointSite(m, i, inv, lib)
		if strings.HasPrefix(url, "http://") {
			f.stats.CleartextEndpoints++
			f.report(a.newReport(site, report.CauseCleartextEndpoint,
				fmt.Sprintf("Request to cleartext endpoint %s; on disrupted networks (captive portals, proxies) http:// traffic is tampered with or blocked", url)))
		}
		if host := hostOf(url); isIPv4Literal(host) {
			f.stats.HardcodedIPEndpoints++
			f.report(a.newReport(site, report.CauseHardcodedIPEndpoint,
				fmt.Sprintf("Request endpoint %s hardcodes IP address %s; the server cannot move and DNS failover cannot route around outages", url, host)))
		}
	}
}

// endpointSite fabricates a requestSite at the endpoint-accepting call so
// hygiene reports reuse the standard report plumbing. The call itself may
// not be a target API (e.g. a request constructor), so the library's
// first target stands in for context resolution.
func (a *analysis) endpointSite(m *jimple.Method, stmt int, inv jimple.InvokeExpr, lib *apimodel.Library) *requestSite {
	site := &requestSite{method: m, stmt: stmt, inv: inv, lib: lib}
	if _, tgt, isTarget := a.reg.TargetOf(inv.Callee); isTarget {
		site.target = tgt
	} else if len(lib.Targets) > 0 {
		site.target = &lib.Targets[0]
	}
	entries := a.ctx.EntriesReaching(a.methodKey(m))
	if len(entries) > 0 {
		a.resolveContext(site, entries)
	} else {
		site.component = jimple.OuterClass(m.Sig.Class)
		site.kind = android.KindOf(a.h, m.Sig.Class)
		site.userInitiated = site.kind == android.KindActivity
	}
	return site
}

// hostOf extracts the host from a URL string: scheme and userinfo
// stripped, cut at the first path/query/fragment separator or port colon.
func hostOf(url string) string {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexAny(rest, "/?#"); i >= 0 {
		rest = rest[:i]
	}
	if i := strings.LastIndex(rest, "@"); i >= 0 {
		rest = rest[i+1:]
	}
	if i := strings.Index(rest, ":"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// isIPv4Literal reports whether host is a dotted-quad IPv4 literal.
func isIPv4Literal(host string) bool {
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		n := 0
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
			n = n*10 + int(c-'0')
		}
		if n > 255 {
			return false
		}
	}
	return true
}
