package checkers

import (
	"testing"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/jimple"
	"repro/internal/report"
)

func analyzeSrc(t *testing.T, src string, man *android.Manifest) *Result {
	t.Helper()
	prog := jimple.MustParse(src)
	if err := prog.Validate(); err != nil {
		t.Fatalf("test app invalid: %v", err)
	}
	if man == nil {
		man = &android.Manifest{Package: "test.app"}
	}
	man.Normalize()
	app := &apk.App{Manifest: man, Program: prog}
	return Analyze(app, apimodel.NewRegistry(), Options{})
}

func countCause(res *Result, c report.Cause) int {
	n := 0
	for i := range res.Reports {
		if res.Reports[i].Cause == c {
			n++
		}
	}
	return n
}

// --- Checker 1: request settings -----------------------------------------

const uncheckedActivity = `class t.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`

func TestChecker1FlagsBareRequest(t *testing.T) {
	res := analyzeSrc(t, uncheckedActivity, nil)
	if res.Stats.Requests != 1 || res.Stats.UserRequests != 1 {
		t.Fatalf("request discovery: %+v", res.Stats)
	}
	if countCause(res, report.CauseNoConnectivityCheck) != 1 {
		t.Errorf("want 1 conn-check warning, reports: %v", causes(res))
	}
	if countCause(res, report.CauseNoTimeout) != 1 {
		t.Errorf("want 1 timeout warning, reports: %v", causes(res))
	}
	if countCause(res, report.CauseNoRetryConfig) != 1 {
		t.Errorf("want 1 retry-config warning, reports: %v", causes(res))
	}
	if res.Stats.MissConnCheck != 1 || res.Stats.MissTimeout != 1 || res.Stats.MissRetryConfig != 1 {
		t.Errorf("stats wrong: %+v", res.Stats)
	}
}

const wellBehavedActivity = `class t.Good extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local ok boolean
    local b java.lang.String
    local toast android.widget.Toast
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L2
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 2
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    ok = virtualinvoke r com.turbomanage.httpclient.HttpResponse.isSuccess()boolean
    if ok == 0 goto L2
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    return
    L2:
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

func TestChecker1AcceptsWellBehavedApp(t *testing.T) {
	res := analyzeSrc(t, wellBehavedActivity, nil)
	if len(res.Reports) != 0 {
		t.Errorf("well-behaved app should produce no warnings, got: %v", causes(res))
		for i := range res.Reports {
			t.Log(res.Reports[i].Render())
		}
	}
	if res.Stats.Requests != 1 || res.Stats.MissConnCheck != 0 || res.Stats.MissTimeout != 0 {
		t.Errorf("stats wrong: %+v", res.Stats)
	}
}

// Config calls on a *different* client object must not count.
const wrongObjectConfig = `class t.Wrong extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local a com.turbomanage.httpclient.BasicHttpClient
    local b com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    a = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke a com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke a com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    b = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke b com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke b com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`

func TestChecker1TaintDistinguishesObjects(t *testing.T) {
	res := analyzeSrc(t, wrongObjectConfig, nil)
	if countCause(res, report.CauseNoTimeout) != 1 {
		t.Errorf("timeout on the wrong client must not satisfy the check: %v", causes(res))
	}
	// Ablation: the whole-method scan is fooled.
	prog := jimple.MustParse(wrongObjectConfig)
	man := &android.Manifest{Package: "t"}
	app := &apk.App{Manifest: man, Program: prog}
	ablated := Analyze(app, apimodel.NewRegistry(), Options{DisableTaintConfigDiscovery: true})
	if countCause(ablated, report.CauseNoTimeout) != 0 {
		t.Errorf("ablated analysis should (wrongly) accept the unrelated config call")
	}
}

// --- Checker 2: improper parameters ---------------------------------------

const serviceDefaultRetries = `class t.Sync extends android.app.Service {
  method onStartCommand(android.content.Intent,int,int)int {
    local c com.loopj.android.http.AsyncHttpClient
    local h com.loopj.android.http.AsyncHttpResponseHandler
    c = new com.loopj.android.http.AsyncHttpClient
    specialinvoke c com.loopj.android.http.AsyncHttpClient.<init>()void
    h = new com.loopj.android.http.AsyncHttpResponseHandler
    virtualinvoke c com.loopj.android.http.AsyncHttpClient.get(java.lang.String,com.loopj.android.http.AsyncHttpResponseHandler)void "https://x" h
    return 0
  }
}`

func TestChecker2OverRetryInServiceByDefault(t *testing.T) {
	res := analyzeSrc(t, serviceDefaultRetries, &android.Manifest{Package: "t", Services: []string{"t.Sync"}})
	if countCause(res, report.CauseOverRetryService) != 1 {
		t.Fatalf("want over-retry-service, got %v", causes(res))
	}
	var r *report.Report
	for i := range res.Reports {
		if res.Reports[i].Cause == report.CauseOverRetryService {
			r = &res.Reports[i]
		}
	}
	if !r.DefaultCaused {
		t.Error("over-retry should be marked default-caused (AsyncHttp default = 5 retries)")
	}
	if res.Stats.OverRetryService != 1 || res.Stats.OverRetryServiceDefault != 1 {
		t.Errorf("stats wrong: %+v", res.Stats)
	}
}

const postExplicitRetries = `class t.Poster extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local body byte[]
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 3
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.post(java.lang.String,byte[])com.turbomanage.httpclient.HttpResponse "https://x" body
    return
  }
}`

func TestChecker2OverRetryOnPost(t *testing.T) {
	res := analyzeSrc(t, postExplicitRetries, nil)
	if countCause(res, report.CauseOverRetryPost) != 1 {
		t.Fatalf("want over-retry-post, got %v", causes(res))
	}
	for i := range res.Reports {
		if res.Reports[i].Cause == report.CauseOverRetryPost && res.Reports[i].DefaultCaused {
			t.Error("explicit setMaxRetries(3) must not be default-caused")
		}
	}
}

const noRetryUserRequest = `class t.Zero extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 0
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`

func TestChecker2NoRetryTimeSensitive(t *testing.T) {
	res := analyzeSrc(t, noRetryUserRequest, nil)
	if countCause(res, report.CauseNoRetryTimeSensitive) != 1 {
		t.Fatalf("want no-retry-time-sensitive, got %v", causes(res))
	}
}

const volleyPostDefault = `class t.VPost extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local q com.android.volley.RequestQueue
    local req com.android.volley.toolbox.StringRequest
    local l com.android.volley.Response$Listener
    local e com.android.volley.Response$ErrorListener
    local out com.android.volley.Request
    q = new com.android.volley.RequestQueue
    specialinvoke q com.android.volley.RequestQueue.<init>()void
    req = new com.android.volley.toolbox.StringRequest
    specialinvoke req com.android.volley.toolbox.StringRequest.<init>(int,java.lang.String,com.android.volley.Response$Listener,com.android.volley.Response$ErrorListener)void 1 "https://x" l e
    out = virtualinvoke q com.android.volley.RequestQueue.add(com.android.volley.Request)com.android.volley.Request req
    return
  }
}`

func TestChecker2VolleyPostDetection(t *testing.T) {
	res := analyzeSrc(t, volleyPostDefault, nil)
	// Volley's default retry policy (1 retry) applies to POST: default-
	// caused over-retry.
	if countCause(res, report.CauseOverRetryPost) != 1 {
		t.Fatalf("Volley POST over-retry not detected: %v", causes(res))
	}
	for i := range res.Reports {
		if res.Reports[i].Cause == report.CauseOverRetryPost {
			if !res.Reports[i].DefaultCaused {
				t.Error("Volley POST over-retry should be default-caused")
			}
			if res.Reports[i].Context.HTTPMethod != "POST" {
				t.Errorf("HTTP method not resolved: %q", res.Reports[i].Context.HTTPMethod)
			}
		}
	}
}

// --- Checker 3: failure notification --------------------------------------

const asyncTaskNotified = `class t.Act extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local task t.Act$Fetch
    task = new t.Act$Fetch
    specialinvoke task t.Act$Fetch.<init>()void
    virtualinvoke task android.os.AsyncTask.execute()void
    return
  }
}
class t.Act$Fetch extends android.os.AsyncTask {
  method <init>()void {
    return
  }
  method doInBackground()void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
  method onPostExecute()void {
    local toast android.widget.Toast
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

func TestChecker3AsyncTaskSiblingNotification(t *testing.T) {
	res := analyzeSrc(t, asyncTaskNotified, nil)
	if countCause(res, report.CauseNoFailureNotification) != 0 {
		t.Errorf("Toast in onPostExecute should satisfy the notification check: %v", causes(res))
	}
	if res.Stats.UserRequests != 1 {
		t.Errorf("request in AsyncTask launched from an Activity should be user-initiated: %+v", res.Stats)
	}
}

const asyncTaskSilent = `class t.Act2 extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local task t.Act2$Fetch
    task = new t.Act2$Fetch
    specialinvoke task t.Act2$Fetch.<init>()void
    virtualinvoke task android.os.AsyncTask.execute()void
    return
  }
}
class t.Act2$Fetch extends android.os.AsyncTask {
  method <init>()void {
    return
  }
  method doInBackground()void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
  method onPostExecute()void {
    return
  }
}`

func TestChecker3MissingNotification(t *testing.T) {
	res := analyzeSrc(t, asyncTaskSilent, nil)
	if countCause(res, report.CauseNoFailureNotification) != 1 {
		t.Errorf("silent failure should be flagged: %v", causes(res))
	}
	if res.Stats.UserRequestsNoNotif != 1 {
		t.Errorf("stats wrong: %+v", res.Stats)
	}
}

const volleyCallbacks = `class t.VAct extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local q com.android.volley.RequestQueue
    local req com.android.volley.toolbox.StringRequest
    local l com.android.volley.Response$Listener
    local e t.VAct$Err
    local out com.android.volley.Request
    q = new com.android.volley.RequestQueue
    specialinvoke q com.android.volley.RequestQueue.<init>()void
    e = new t.VAct$Err
    specialinvoke e t.VAct$Err.<init>()void
    req = new com.android.volley.toolbox.StringRequest
    specialinvoke req com.android.volley.toolbox.StringRequest.<init>(int,java.lang.String,com.android.volley.Response$Listener,com.android.volley.Response$ErrorListener)void 0 "https://x" l e
    out = virtualinvoke q com.android.volley.RequestQueue.add(com.android.volley.Request)com.android.volley.Request req
    return
  }
}
class t.VAct$Err extends java.lang.Object implements com.android.volley.Response$ErrorListener {
  method <init>()void {
    return
  }
  method onErrorResponse(com.android.volley.VolleyError)void {
    local err com.android.volley.VolleyError
    local toast android.widget.Toast
    err = param 0 com.android.volley.VolleyError
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

func TestChecker3VolleyExplicitCallbackWithToast(t *testing.T) {
	res := analyzeSrc(t, volleyCallbacks, nil)
	if countCause(res, report.CauseNoFailureNotification) != 0 {
		t.Errorf("Toast in onErrorResponse should satisfy the check: %v", causes(res))
	}
	if res.Stats.ExplicitCallbackReqs != 1 || res.Stats.ExplicitCallbackNotified != 1 {
		t.Errorf("explicit-callback stats wrong: %+v", res.Stats)
	}
	// The error object is never inspected: error-type warning expected.
	if countCause(res, report.CauseNoErrorTypeCheck) != 1 {
		t.Errorf("ignored error object should be flagged: %v", causes(res))
	}
}

const volleyErrorTypeUsed = `class t.VAct3 extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local q com.android.volley.RequestQueue
    local req com.android.volley.toolbox.StringRequest
    local l com.android.volley.Response$Listener
    local e t.VAct3$Err
    local out com.android.volley.Request
    q = new com.android.volley.RequestQueue
    specialinvoke q com.android.volley.RequestQueue.<init>()void
    e = new t.VAct3$Err
    specialinvoke e t.VAct3$Err.<init>()void
    req = new com.android.volley.toolbox.StringRequest
    specialinvoke req com.android.volley.toolbox.StringRequest.<init>(int,java.lang.String,com.android.volley.Response$Listener,com.android.volley.Response$ErrorListener)void 0 "https://x" l e
    out = virtualinvoke q com.android.volley.RequestQueue.add(com.android.volley.Request)com.android.volley.Request req
    return
  }
}
class t.VAct3$Err extends java.lang.Object implements com.android.volley.Response$ErrorListener {
  method <init>()void {
    return
  }
  method onErrorResponse(com.android.volley.VolleyError)void {
    local err com.android.volley.VolleyError
    local isNoConn boolean
    local toast android.widget.Toast
    err = param 0 com.android.volley.VolleyError
    isNoConn = instanceof com.android.volley.NoConnectionError err
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

func TestChecker3ErrorTypeInspected(t *testing.T) {
	res := analyzeSrc(t, volleyErrorTypeUsed, nil)
	if countCause(res, report.CauseNoErrorTypeCheck) != 0 {
		t.Errorf("instanceof on the error object should satisfy the check: %v", causes(res))
	}
	if res.Stats.ErrorCallbacks != 1 || res.Stats.ErrorTypeChecked != 1 {
		t.Errorf("error-type stats wrong: %+v", res.Stats)
	}
}

// Background-service requests have no notification obligation.
func TestChecker3SkipsBackgroundRequests(t *testing.T) {
	res := analyzeSrc(t, serviceDefaultRetries, &android.Manifest{Package: "t", Services: []string{"t.Sync"}})
	if countCause(res, report.CauseNoFailureNotification) != 0 {
		t.Errorf("background requests must not demand notifications: %v", causes(res))
	}
}

// --- Checker 4: invalid response -------------------------------------------

const uncheckedResponseUse = `class t.Resp extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    return
  }
}`

func TestChecker4UncheckedUse(t *testing.T) {
	res := analyzeSrc(t, uncheckedResponseUse, nil)
	if countCause(res, report.CauseNoResponseCheck) != 1 {
		t.Fatalf("unchecked response use not flagged: %v", causes(res))
	}
	if res.Stats.RespRequests != 1 || res.Stats.RespMissCheck != 1 {
		t.Errorf("stats wrong: %+v", res.Stats)
	}
}

const nullCheckedResponse = `class t.RespOK extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    if r == null goto L1
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    L1:
    return
  }
}`

func TestChecker4NullCheckSatisfies(t *testing.T) {
	res := analyzeSrc(t, nullCheckedResponse, nil)
	if countCause(res, report.CauseNoResponseCheck) != 0 {
		t.Errorf("null-checked response should pass: %v", causes(res))
	}
}

const okHttpCallbackResponse = `class t.OkCb extends java.lang.Object implements com.squareup.okhttp.Callback {
  method <init>()void {
    return
  }
  method onResponse(com.squareup.okhttp.Response)void {
    local resp com.squareup.okhttp.Response
    local b java.lang.String
    resp = param 0 com.squareup.okhttp.Response
    b = virtualinvoke resp com.squareup.okhttp.Response.getBody()java.lang.String
    return
  }
}`

func TestChecker4CallbackResponse(t *testing.T) {
	res := analyzeSrc(t, okHttpCallbackResponse, nil)
	if countCause(res, report.CauseNoResponseCheck) != 1 {
		t.Errorf("unchecked callback response not flagged: %v", causes(res))
	}
}

const okHttpCallbackChecked = `class t.OkCb2 extends java.lang.Object implements com.squareup.okhttp.Callback {
  method <init>()void {
    return
  }
  method onResponse(com.squareup.okhttp.Response)void {
    local resp com.squareup.okhttp.Response
    local ok boolean
    local b java.lang.String
    resp = param 0 com.squareup.okhttp.Response
    ok = virtualinvoke resp com.squareup.okhttp.Response.isSuccessful()boolean
    if ok == 0 goto L1
    b = virtualinvoke resp com.squareup.okhttp.Response.getBody()java.lang.String
    L1:
    return
  }
}`

func TestChecker4IsSuccessfulSatisfies(t *testing.T) {
	res := analyzeSrc(t, okHttpCallbackChecked, nil)
	if countCause(res, report.CauseNoResponseCheck) != 0 {
		t.Errorf("isSuccessful-guarded use should pass: %v", causes(res))
	}
}

// --- Retry loops -----------------------------------------------------------

const retryLoopNoBackoff = `class t.Loop extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local done int
    local e java.io.IOException
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    done = 0
    L0:
    if done != 0 goto L4
    L1:
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    done = 1
    L2:
    goto L0
    L3:
    e = caught
    done = 0
    goto L0
    L4:
    return
    trap L1 L2 L3 java.io.IOException
  }
}`

func TestRetryLoopDetectedAndFlagged(t *testing.T) {
	res := analyzeSrc(t, retryLoopNoBackoff, nil)
	if res.Stats.RetryLoops != 1 {
		t.Fatalf("retry loop not identified: %+v", res.Stats)
	}
	if countCause(res, report.CauseAggressiveRetryLoop) != 1 {
		t.Errorf("aggressive retry loop not flagged: %v", causes(res))
	}
}

const retryLoopWithSleep = `class t.LoopS extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local done int
    local e java.io.IOException
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    done = 0
    L0:
    if done != 0 goto L4
    L1:
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    done = 1
    L2:
    goto L0
    L3:
    e = caught
    done = 0
    staticinvoke java.lang.Thread.sleep(long)void 1000
    goto L0
    L4:
    return
    trap L1 L2 L3 java.io.IOException
  }
}`

func TestRetryLoopWithBackoffNotFlagged(t *testing.T) {
	res := analyzeSrc(t, retryLoopWithSleep, nil)
	if res.Stats.RetryLoops != 1 {
		t.Fatalf("retry loop with sleep should still be identified: %+v", res.Stats)
	}
	if countCause(res, report.CauseAggressiveRetryLoop) != 0 {
		t.Errorf("backoff loop wrongly flagged: %v", causes(res))
	}
}

// A normal loop sending a sequence of requests (exit independent of the
// catch block) must NOT be classified as a retry loop.
const sequenceLoop = `class t.Seq extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local i int
    local e java.io.IOException
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    i = 0
    L0:
    if i >= 10 goto L4
    L1:
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    L2:
    goto L5
    L3:
    e = caught
    L5:
    i = i + 1
    goto L0
    L4:
    return
    trap L1 L2 L3 java.io.IOException
  }
}`

func TestSequenceLoopNotARetryLoop(t *testing.T) {
	res := analyzeSrc(t, sequenceLoop, nil)
	if res.Stats.RetryLoops != 0 {
		t.Errorf("sequence loop misclassified as retry loop: %+v", res.Stats)
	}
}

// --- Report plumbing --------------------------------------------------------

func TestReportsCarryCallStacksAndSuggestions(t *testing.T) {
	res := analyzeSrc(t, uncheckedActivity, &android.Manifest{Package: "t", Activities: []string{"t.Main"}})
	if len(res.Reports) == 0 {
		t.Fatal("no reports")
	}
	for i := range res.Reports {
		r := &res.Reports[i]
		if r.FixSuggestion == "" {
			t.Errorf("report %s lacks a fix suggestion", r.Cause)
		}
		if len(r.Impacts) == 0 {
			t.Errorf("report %s lacks impacts", r.Cause)
		}
		if r.Cause == report.CauseNoConnectivityCheck && len(r.CallStack) == 0 {
			t.Error("conn-check report lacks a call stack")
		}
		if rendered := r.Render(); rendered == "" {
			t.Error("empty rendering")
		}
		if _, err := r.JSON(); err != nil {
			t.Errorf("JSON rendering failed: %v", err)
		}
	}
}

func TestDeadCodeRequestsIgnored(t *testing.T) {
	src := `class t.Dead extends java.lang.Object {
  method helper()void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`
	res := analyzeSrc(t, src, nil)
	if res.Stats.Requests != 0 || len(res.Reports) != 0 {
		t.Errorf("unreachable request should be skipped: %+v, %v", res.Stats, causes(res))
	}
}

func causes(res *Result) []report.Cause {
	out := make([]report.Cause, len(res.Reports))
	for i := range res.Reports {
		out[i] = res.Reports[i].Cause
	}
	return out
}

// --- Guard-sensitive connectivity analysis ----------------------------------

const unusedCheckApp = `class t.Unused extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 1
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`

func analyzeSrcOpts(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog := jimple.MustParse(src)
	man := &android.Manifest{Package: "t"}
	man.Normalize()
	return Analyze(&apk.App{Manifest: man, Program: prog}, apimodel.NewRegistry(), opts)
}

func TestGuardSensitiveOption(t *testing.T) {
	// Default: the unused check satisfies the analysis (path-insensitive).
	res := analyzeSrcOpts(t, unusedCheckApp, Options{})
	if countCause(res, report.CauseNoConnectivityCheck) != 0 {
		t.Errorf("default analysis should accept the unused check: %v", causes(res))
	}
	// Guard-sensitive: the check result never reaches a branch → warn.
	res = analyzeSrcOpts(t, unusedCheckApp, Options{GuardSensitiveConnCheck: true})
	if countCause(res, report.CauseNoConnectivityCheck) != 1 {
		t.Errorf("guard-sensitive analysis should flag the unused check: %v", causes(res))
	}
	// A derived-boolean guard still counts (taint through isConnected).
	res = analyzeSrcOpts(t, wellBehavedActivity, Options{GuardSensitiveConnCheck: true})
	if countCause(res, report.CauseNoConnectivityCheck) != 0 {
		t.Errorf("real guard rejected by guard-sensitive analysis: %v", causes(res))
	}
}

// --- Retry loops through helper calls ----------------------------------------

const indirectRetryLoop = `class t.Indirect extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self t.Indirect
    local done int
    local e java.io.IOException
    self = this t.Indirect
    done = 0
    L0:
    if done != 0 goto L4
    L1:
    virtualinvoke self t.Indirect.send()void
    done = 1
    L2:
    goto L0
    L3:
    e = caught
    done = 0
    goto L0
    L4:
    return
    trap L1 L2 L3 java.io.IOException
  }
  method send()void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 3000
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 0
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`

func TestRetryLoopThroughHelper(t *testing.T) {
	res := analyzeSrc(t, indirectRetryLoop, nil)
	if res.Stats.RetryLoops != 1 {
		t.Errorf("retry loop via a helper call not identified: %+v", res.Stats)
	}
	if countCause(res, report.CauseAggressiveRetryLoop) != 1 {
		t.Errorf("aggressive indirect loop not flagged: %v", causes(res))
	}
}

// --- Retry-slicing ablation ---------------------------------------------------

func TestRetrySlicingAblation(t *testing.T) {
	// With slicing disabled, the sequence loop is misclassified.
	res := analyzeSrcOpts(t, sequenceLoop, Options{DisableRetrySlicing: true})
	if res.Stats.RetryLoops == 0 {
		t.Error("ablated analysis should misclassify the sequence loop")
	}
	res = analyzeSrcOpts(t, sequenceLoop, Options{})
	if res.Stats.RetryLoops != 0 {
		t.Error("full analysis should not misclassify the sequence loop")
	}
}
