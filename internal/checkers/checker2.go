package checkers

import (
	"fmt"

	"repro/internal/report"
)

// checkParameters implements Pattern 2 (paper §4.4.2): it judges each
// request's effective retry behaviour against its app context —
// time-sensitive user requests should retry, background-service requests
// and non-idempotent POSTs should not. The effective retry count comes
// from constant propagation over the retry config APIs, falling back to
// the library default when the developer never invoked one (which is what
// makes the majority of over-retries "default-caused", Table 8).
func (a *analysis) checkParameters() findings {
	units := make([]findings, len(a.sites))
	a.parallelFor("parameters", len(a.sites), func(i int) {
		a.checkSiteParameters(a.sites[i], &units[i])
	})
	return mergeFindings(units)
}

func (a *analysis) checkSiteParameters(site *requestSite, f *findings) {
	if !site.lib.HasRetryAPIs {
		return
	}
	defaults := site.lib.Defaults
	defaultCaused := !site.retrySet
	retries := site.retryCount
	if !site.retryKnown {
		// An opaque retry policy (e.g. setRetryPolicy(policy)): assume
		// the developer chose deliberately; only flag defaults.
		return
	}

	// Cause 2.2b: retry on non-idempotent POST requests.
	if site.httpMethod == "POST" && retries > 0 {
		if !defaultCaused || defaults.RetriesApplyToPost {
			f.stats.OverRetryPost++
			if defaultCaused {
				f.stats.OverRetryPostDefault++
			}
			r := a.newReport(site, report.CauseOverRetryPost,
				fmt.Sprintf("POST request retried %d times (HTTP/1.1 forbids automatic retry of non-idempotent methods)", retries))
			r.DefaultCaused = defaultCaused
			f.report(r)
			return
		}
	}

	// Cause 2.2a: retry in background services.
	if !site.userInitiated && site.kind.String() == "Service" && retries > 0 {
		f.stats.OverRetryService++
		if defaultCaused {
			f.stats.OverRetryServiceDefault++
		}
		r := a.newReport(site, report.CauseOverRetryService,
			fmt.Sprintf("Background-service request retried %d times; retries waste energy with no user waiting", retries))
		r.DefaultCaused = defaultCaused
		f.report(r)
		return
	}

	// Cause 2.1: no retry for time-sensitive (user-initiated) requests.
	// POSTs are exempt: HTTP/1.1 forbids retrying them, so zero is
	// the correct setting there.
	if site.userInitiated && retries == 0 && site.httpMethod != "POST" {
		r := a.newReport(site, report.CauseNoRetryTimeSensitive,
			"User-initiated request performs no retry; a transient error surfaces directly to the user")
		r.DefaultCaused = defaultCaused
		f.stats.NoRetryTimeSensitive++
		f.report(r)
	}
}
