package checkers

import (
	"fmt"

	"repro/internal/report"
)

// checkParameters implements Pattern 2 (paper §4.4.2): it judges each
// request's effective retry behaviour against its app context —
// time-sensitive user requests should retry, background-service requests
// and non-idempotent POSTs should not. The effective retry count comes
// from constant propagation over the retry config APIs, falling back to
// the library default when the developer never invoked one (which is what
// makes the majority of over-retries "default-caused", Table 8).
func (a *analysis) checkParameters() {
	for _, site := range a.sites {
		if !site.lib.HasRetryAPIs {
			continue
		}
		defaults := site.lib.Defaults
		defaultCaused := !site.retrySet
		retries := site.retryCount
		if !site.retryKnown {
			// An opaque retry policy (e.g. setRetryPolicy(policy)): assume
			// the developer chose deliberately; only flag defaults.
			continue
		}

		// Cause 2.2b: retry on non-idempotent POST requests.
		if site.httpMethod == "POST" && retries > 0 {
			if !defaultCaused || defaults.RetriesApplyToPost {
				a.stats.OverRetryPost++
				if defaultCaused {
					a.stats.OverRetryPostDefault++
				}
				r := a.newReport(site, report.CauseOverRetryPost,
					fmt.Sprintf("POST request retried %d times (HTTP/1.1 forbids automatic retry of non-idempotent methods)", retries))
				r.DefaultCaused = defaultCaused
				a.reports = append(a.reports, r)
				continue
			}
		}

		// Cause 2.2a: retry in background services.
		if !site.userInitiated && site.kind.String() == "Service" && retries > 0 {
			a.stats.OverRetryService++
			if defaultCaused {
				a.stats.OverRetryServiceDefault++
			}
			r := a.newReport(site, report.CauseOverRetryService,
				fmt.Sprintf("Background-service request retried %d times; retries waste energy with no user waiting", retries))
			r.DefaultCaused = defaultCaused
			a.reports = append(a.reports, r)
			continue
		}

		// Cause 2.1: no retry for time-sensitive (user-initiated) requests.
		// POSTs are exempt: HTTP/1.1 forbids retrying them, so zero is
		// the correct setting there.
		if site.userInitiated && retries == 0 && site.httpMethod != "POST" {
			r := a.newReport(site, report.CauseNoRetryTimeSensitive,
				"User-initiated request performs no retry; a transient error surfaces directly to the user")
			r.DefaultCaused = defaultCaused
			a.stats.NoRetryTimeSensitive++
			a.reports = append(a.reports, r)
		}
	}
}
