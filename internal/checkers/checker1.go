package checkers

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/dataflow"
	"repro/internal/jimple"
	"repro/internal/report"
)

// checkRequestSettings implements Pattern 1 (paper §4.4.1): for every
// request site it verifies (a) a connectivity-check API is invoked on
// every path from every entry point to the request, and (b) the request's
// config object had its timeout and retry config APIs invoked.
//
// The interprocedural must-precede analysis is built once per stage (it
// shares the scan's cached CFGs); sites are then checked in parallel.
func (a *analysis) checkRequestSettings() findings {
	isCheck := func(_ *jimple.Method, _ int, inv jimple.InvokeExpr) bool {
		return android.IsConnectivityCheck(inv.Callee)
	}
	if a.opts.GuardSensitiveConnCheck {
		guarding := a.guardingCheckSites()
		isCheck = func(m *jimple.Method, stmt int, inv jimple.InvokeExpr) bool {
			return android.IsConnectivityCheck(inv.Callee) && guarding[a.methodKey(m)][stmt]
		}
	}
	// The must-precede analysis runs over the feasibility-pruned CFGs (see
	// AnalysisContext.FeasibleCFG): a connectivity check reachable only
	// through a statically-false branch no longer blocks the fact, and a
	// request only reachable through one no longer demands it.
	mp := dataflow.NewMustPrecedeWith(a.cg, isCheck, a.checkGraph)
	units := make([]findings, len(a.sites))
	a.parallelFor("settings", len(a.sites), func(i int) {
		a.checkSiteSettings(mp, a.sites[i], &units[i])
	})
	return mergeFindings(units)
}

// checkSiteSettings emits one site's setting warnings in the fixed order
// conn-check, timeout, retry-config.
func (a *analysis) checkSiteSettings(mp *dataflow.MustPrecede, site *requestSite, f *findings) {
	mKey := a.methodKey(site.method)
	if !mp.FactBefore(mKey, site.stmt) {
		f.stats.MissConnCheck++
		f.report(a.newReport(site, report.CauseNoConnectivityCheck,
			fmt.Sprintf("Missing network connectivity check before %s.%s()",
				jimple.SimpleName(site.inv.Callee.Class), site.inv.Callee.Name)))
	}
	if site.lib.HasTimeoutAPIs() && !site.timeoutSet {
		f.stats.MissTimeout++
		f.report(a.newReport(site, report.CauseNoTimeout,
			fmt.Sprintf("No timeout config API invoked for %s request (library default: %s)",
				site.lib.Name, describeTimeout(site.lib.Defaults.TimeoutMs))))
	}
	if site.lib.HasRetryAPIs && !site.retrySet {
		f.stats.MissRetryConfig++
		f.report(a.newReport(site, report.CauseNoRetryConfig,
			fmt.Sprintf("No retry config API invoked for %s request (library default: %d retries)",
				site.lib.Name, site.lib.Defaults.Retries)))
	}
}

// guardingCheckSites finds, per app method, the connectivity-check call
// sites whose result flows into a branch condition — the "check actually
// guards something" refinement of GuardSensitiveConnCheck. The check's
// result local is tainted forward; any if statement whose condition reads
// a tainted local marks the check as guarding. Methods are scanned in
// parallel; each writes only its own slot.
func (a *analysis) guardingCheckSites() map[string]map[int]bool {
	perMethod := make([]map[int]bool, len(a.methods))
	a.parallelFor("settings", len(a.methods), func(mi int) {
		m := a.methods[mi]
		var sites map[int]bool
		g := a.ctx.CFG(m)
		for i, s := range m.Body {
			inv, ok := jimple.InvokeOf(s)
			if !ok || !android.IsConnectivityCheck(inv.Callee) {
				continue
			}
			asg, isAsg := s.(*jimple.AssignStmt)
			if !isAsg {
				continue // result discarded: cannot guard anything
			}
			resLocal, isLocal := asg.LHS.(jimple.Local)
			if !isLocal {
				continue
			}
			taint := dataflow.ForwardTaint(g, map[int][]string{i: {resLocal.Name}},
				dataflow.DefaultTaintOptions())
			for j, t := range m.Body {
				iff, isIf := t.(*jimple.IfStmt)
				if !isIf {
					continue
				}
				var uses []string
				uses = jimple.UsedLocals(uses, iff.Cond)
				for _, u := range uses {
					if taint.TaintedAt(j, u) {
						if sites == nil {
							sites = make(map[int]bool)
						}
						sites[i] = true
					}
				}
			}
		}
		perMethod[mi] = sites
	})
	out := make(map[string]map[int]bool)
	for mi, sites := range perMethod {
		if sites != nil {
			out[a.keyOf[a.methods[mi]]] = sites
		}
	}
	return out
}

func describeTimeout(ms int) string {
	if ms == 0 {
		return "none — a blocking connect can take minutes to fail"
	}
	return fmt.Sprintf("%d ms", ms)
}
