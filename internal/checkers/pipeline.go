package checkers

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
	"repro/internal/report"
)

// Analyze runs all checkers over the app using the registry's annotations.
//
// The scan is a staged pass pipeline:
//
//	build      — merge the app with the framework model, build the class
//	             hierarchy and the call graph
//	discover   — find and resolve every request site (§4.4), fanned out
//	             per method
//	settings | parameters | notifications | responses | offlinestate |
//	stalechecks | endpoints | retryloops
//	           — the eight checker families (§4.4.1–4.4.4, §4.5, and the
//	             registry growth of DESIGN.md §11), run concurrently as
//	             stages, each fanning out per site (or per method) over
//	             the shared bounded worker pool; Options.Checkers selects
//	             which families run
//
// All stages share one AnalysisContext, so each per-method artifact (CFG,
// reaching defs, …) is computed at most once per scan. Every work unit
// writes findings into its own slot and stages are merged in a fixed
// order, so reports and stats are byte-identical to a sequential scan
// regardless of Options.Workers.
//
// Analyze runs with background context; AnalyzeContext adds deadlines and
// cancellation.
func Analyze(app *apk.App, reg *apimodel.Registry, opts Options) *Result {
	return AnalyzeContext(context.Background(), app, reg, opts)
}

// AnalyzeContext is Analyze under a caller context. The scan is
// fault-isolated end to end: a panic in any stage or work unit, an
// expired Options.Timeout, or cancellation of ctx never crashes or wedges
// the scan. Instead the failed stage/unit is dropped, every stage that
// completed contributes its findings through the same deterministic merge
// barrier, and the Result comes back Incomplete with the failures
// recorded in Diagnostics.Errors as a sorted ScanError list.
func AnalyzeContext(ctx context.Context, app *apk.App, reg *apimodel.Registry, opts Options) *Result {
	start := time.Now()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	workers := opts.workerCount()
	var diag Diagnostics
	diag.Workers = workers
	diag.Mode = opts.Mode

	a := &analysis{
		app:     app,
		reg:     reg,
		opts:    opts,
		scanCtx: ctx,
	}
	if workers > 1 {
		a.sem = make(chan struct{}, workers)
	}

	finish := func(res *Result) *Result {
		sortScanErrors(a.errs)
		diag.Errors = a.errs
		diag.Targeted = a.tstats
		diag.Validate = a.vstats
		res.Incomplete = len(a.errs) > 0
		if a.ctx != nil {
			diag.Cache = a.ctx.cacheStats()
		}
		a.sstats.fill(&diag.Cache)
		diag.Total = time.Since(start)
		res.Diagnostics = diag
		return res
	}

	// Cache probe: an unchanged app (same bytes, registry, engine, and
	// options) is answered straight from the persistent store. The probe
	// runs under cacheGuard, not guard — cache trouble of any kind reads
	// as a miss plus a corrupt counter, never as a scan failure.
	if opts.cacheEnabled() {
		probeStart := time.Now()
		var hit *Result
		a.cacheGuard(func() { hit = a.probeCache() })
		diag.add("cacheprobe", time.Since(probeStart), 1, 0)
		if hit != nil {
			diag.AppMethods = a.hitAppMethods
			diag.Sites = a.hitSites
			return finish(hit)
		}
	}

	buildStart := time.Now()
	a.guard("build", func() {
		// Mode resolution first: full mode materializes a lazily opened
		// app whole; targeted mode computes the demand closure and decodes
		// only the demanded classes (targeted.go).
		a.prepareBuild()
		prog := jimple.NewProgram()
		prog.Merge(app.Program)
		prog.Merge(android.Framework())
		prog.Merge(apimodel.Stubs())
		a.h = hierarchy.New(prog)
		a.cg = callgraph.BuildWith(a.h, app.Manifest, callgraph.Options{
			DeclaredDispatchOnly: opts.DeclaredDispatchOnly,
			EnableICC:            opts.EnableICC,
		})
		a.ctx = newAnalysisContext(a.cg)
		a.methods = a.collectAppMethods()
		if !opts.Intraprocedural {
			a.configureSummaries()
		}
	})
	diag.add("build", time.Since(buildStart), len(a.methods), 0)
	if a.ctx == nil {
		// The build stage died (panic or pre-expired deadline): nothing
		// downstream can run without the call graph. Return the degraded
		// empty result instead of crashing the scan.
		return finish(&Result{})
	}

	// Summary seeding: before the summaries stage forces the bottom-up
	// pass, restore the converged summaries of every app class whose call
	// closure is unchanged since a prior clean scan. Seeded methods are
	// skipped by dataflow.ComputeSummaries — the partial-hit path for
	// changed apps.
	if a.store != nil && !opts.Intraprocedural {
		seedStart := time.Now()
		a.cacheGuard(func() { a.seedSummaries() })
		diag.add("cacheseed", time.Since(seedStart), len(a.cacheClasses), 0)
	}

	// Interprocedural summaries are built eagerly under their own stage
	// guard so -timings attributes the cost distinctly and a failure (or a
	// deadline hit inside the bottom-up pass) degrades every consumer to
	// intraprocedural facts instead of crashing the scan. The sync.Once in
	// AnalysisContext still protects any stray lazy first-consult.
	if !opts.Intraprocedural {
		sumStart := time.Now()
		a.guard("summaries", func() { a.ctx.Summaries() })
		diag.add("summaries", time.Since(sumStart), len(a.methods), 0)
	}

	// Discovery must complete before the checkers: they all consume the
	// frozen site list.
	discoverStart := time.Now()
	var discovered findings
	a.guard("discover", func() { discovered = a.discoverSites() })
	diag.add("discover", time.Since(discoverStart), len(a.methods), 0)

	// The full stage table in fixed merge order; Options.Checkers filters
	// it so disabled families never run (ablation / selection, satellite of
	// the registry growth). Stage names map to families via checkerStages.
	allStages := []struct {
		name  string
		items int
		run   func() findings
	}{
		{"settings", len(a.sites), a.checkRequestSettings},
		{"parameters", len(a.sites), a.checkParameters},
		{"notifications", len(a.sites), a.checkNotifications},
		{"responses", len(a.sites), a.checkResponses},
		{"offlinestate", len(a.methods), a.checkOfflineState},
		{"stalechecks", len(a.sites), a.checkStaleChecks},
		{"endpoints", len(a.methods), a.checkEndpoints},
		{"retryloops", len(a.methods), a.checkRetryLoops},
	}
	stages := allStages[:0:0]
	for _, s := range allStages {
		if a.opts.Checkers.Enabled(FamilyOfStage(s.name)) {
			stages = append(stages, s)
		}
	}
	outs := make([]findings, len(stages))
	durs := make([]time.Duration, len(stages))
	runStage := func(i int) {
		t0 := time.Now()
		a.guard(stages[i].name, func() { outs[i] = stages[i].run() })
		durs[i] = time.Since(t0)
	}
	if workers > 1 {
		// The stage goroutines only coordinate; the per-item fan-out inside
		// each stage goes through the shared pool (analysis.parallelFor).
		var wg sync.WaitGroup
		for i := range stages {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runStage(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range stages {
			runStage(i)
		}
	}

	// Merge barrier: discovery stats first, then each stage's findings in
	// the fixed stage order (the historical sequential append order). A
	// degraded stage simply contributes fewer (or zero) units here; the
	// surviving stages' reports are byte-identical to a clean scan's.
	res := &Result{}
	if app.Lazy != nil {
		// A lazily opened app may hold undecoded bodies (targeted mode),
		// so library usage resolves from the skim's referenced-class set —
		// pinned equal to LibsUsedBy over the decoded program.
		res.Stats.LibsUsed = reg.LibsUsedByClasses(app.Lazy.RefClasses())
	} else {
		res.Stats.LibsUsed = reg.LibsUsedBy(app.Program)
	}
	res.Stats.add(&discovered.stats)
	for i := range stages {
		res.Reports = append(res.Reports, outs[i].reports...)
		res.Stats.add(&outs[i].stats)
		diag.add(stages[i].name, durs[i], stages[i].items, len(outs[i].reports))
	}
	// Sort on location keys rendered once per report, not once per
	// comparison (the closure used to re-render up to four keys per call).
	reportKeys := make([]string, len(res.Reports))
	{
		intern := jimple.NewInterner()
		for i := range res.Reports {
			reportKeys[i] = intern.SigKey(res.Reports[i].Location.Method)
		}
	}
	sort.Stable(&reportSorter{reports: res.Reports, keys: reportKeys})
	// Dynamic validation replays each warning's witness entry point under
	// injected disruptions and stamps a verdict on the report (validate.go).
	// It runs after the sort (verdict order matches report order) and
	// before cachewrite, so a clean validated scan persists its verdicts.
	// A warning the stage never reached — replay panic, deadline, stage
	// failure — is swept to NotValidated here: with -validate on, every
	// emitted warning carries a verdict, and a degraded replay can only
	// degrade its own warning, never the scan.
	if opts.Validate {
		valStart := time.Now()
		a.guard("validate", func() { a.validateReports(res.Reports) })
		for i := range res.Reports {
			if res.Reports[i].Validation == "" {
				res.Reports[i].Validation = report.ValidationNotValidated
				res.Reports[i].ValidationNote = "validation did not complete"
				a.vstats.NotValidated++
			}
		}
		diag.add("validate", time.Since(valStart), len(res.Reports), 0)
	}
	// Cache write: only a clean scan commits. Any ScanError — a stage
	// panic, an expired deadline, a cancellation — means the result may be
	// partial, and an incomplete result must never poison the cache.
	if a.store != nil && opts.CacheMode == CacheRW && len(a.errs) == 0 {
		writeStart := time.Now()
		a.cacheGuard(func() { a.writeCache(res) })
		diag.add("cachewrite", time.Since(writeStart), a.sstats.puts, 0)
	}

	diag.AppMethods = len(a.methods)
	diag.Sites = len(a.sites)
	return finish(res)
}

// reportSorter orders reports by (location method key, statement, cause)
// using keys rendered once up front.
type reportSorter struct {
	reports []report.Report
	keys    []string
}

func (s *reportSorter) Len() int { return len(s.reports) }

func (s *reportSorter) Swap(i, j int) {
	s.reports[i], s.reports[j] = s.reports[j], s.reports[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (s *reportSorter) Less(i, j int) bool {
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	ri, rj := &s.reports[i], &s.reports[j]
	if ri.Location.Stmt != rj.Location.Stmt {
		return ri.Location.Stmt < rj.Location.Stmt
	}
	return ri.Cause < rj.Cause
}
