package checkers

import (
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// assertModesAgree scans src three ways — full mode, targeted mode over
// the in-memory program, and targeted mode over a lazily decoded encode
// of the same app — and requires byte-identical reports and stats from
// all three. It returns the targeted-lazy result and app for
// closure-counter assertions.
func assertModesAgree(t *testing.T, src string, man *android.Manifest, opts Options) (*Result, *apk.App) {
	t.Helper()
	reg := apimodel.NewRegistry()
	if man == nil {
		man = &android.Manifest{Package: "test.app"}
	}
	man.Normalize()
	mkApp := func() *apk.App {
		prog := jimple.MustParse(src)
		if err := prog.Validate(); err != nil {
			t.Fatalf("fixture invalid: %v", err)
		}
		return &apk.App{Manifest: man, Program: prog}
	}
	fullOpts := opts
	fullOpts.Mode = ModeFull
	full := Analyze(mkApp(), reg, fullOpts)
	if full.Incomplete {
		t.Fatalf("full scan incomplete: %+v", full.Diagnostics.Errors)
	}

	tOpts := opts
	tOpts.Mode = ModeTargeted
	mem := Analyze(mkApp(), reg, tOpts)

	data, err := apk.Encode(mkApp())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	lazyApp, err := apk.DecodeLazy(data)
	if err != nil {
		t.Fatalf("DecodeLazy: %v", err)
	}
	lazyRes := Analyze(lazyApp, reg, tOpts)

	for _, tc := range []struct {
		name string
		res  *Result
	}{
		{"targeted in-memory", mem},
		{"targeted lazy", lazyRes},
	} {
		if tc.res.Incomplete {
			t.Errorf("%s scan incomplete: %+v", tc.name, tc.res.Diagnostics.Errors)
		}
		if !reflect.DeepEqual(tc.res.Reports, full.Reports) {
			t.Errorf("%s reports differ from full mode:\nfull:     %+v\ntargeted: %+v",
				tc.name, full.Reports, tc.res.Reports)
		}
		if !reflect.DeepEqual(tc.res.Stats, full.Stats) {
			t.Errorf("%s stats differ from full mode:\nfull:     %+v\ntargeted: %+v",
				tc.name, full.Stats, tc.res.Stats)
		}
		if tc.res.Diagnostics.Mode != ModeTargeted {
			t.Errorf("%s diagnostics mode = %v, want targeted", tc.name, tc.res.Diagnostics.Mode)
		}
	}
	if full.Diagnostics.Mode != ModeFull {
		t.Errorf("full diagnostics mode = %v", full.Diagnostics.Mode)
	}
	return lazyRes, lazyApp
}

// Config tainting through a helper callee: the helper is not a summary
// root, so the closure's forward rule must still demand it (its summary
// feeds the config discovery at the request site).
const helperConfigTargeted = `class t.Helper extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    staticinvoke t.Conf.tune(com.turbomanage.httpclient.BasicHttpClient)void c
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}
class t.Conf extends java.lang.Object {
  method static tune(com.turbomanage.httpclient.BasicHttpClient)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    c = param 0 com.turbomanage.httpclient.BasicHttpClient
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    return
  }
}`

func TestTargetedMatchesFullOnFixtures(t *testing.T) {
	fixtures := []struct{ name, src string }{
		{"bare-request", uncheckedActivity},
		{"well-behaved", wellBehavedActivity},
		{"wrong-object-config", wrongObjectConfig},
		{"async-task-notified", asyncTaskNotified},
		{"async-task-silent", asyncTaskSilent},
		{"volley-callbacks", volleyCallbacks},
		{"volley-error-type", volleyErrorTypeUsed},
		{"retry-loop", retryLoopNoBackoff},
		{"helper-config", helperConfigTargeted},
	}
	for _, f := range fixtures {
		t.Run(f.name, func(t *testing.T) {
			res, _ := assertModesAgree(t, f.src, nil, Options{})
			if res.Diagnostics.Targeted.ClosureMethods == 0 {
				t.Error("closure empty on an app with request sites")
			}
			if res.Diagnostics.Targeted.ClassesDecoded == 0 {
				t.Error("no classes demanded on an app with request sites")
			}
		})
	}
}

func TestTargetedDeterministicAcrossWorkers(t *testing.T) {
	for _, w := range []int{1, 4} {
		assertModesAgree(t, asyncTaskNotified, nil, Options{Workers: w})
	}
}

// paddedTargetedApp carries classes no closure rule can reach: targeted
// mode must skip them and still report identically.
const paddedTargetedApp = uncheckedActivity + `
class t.Junk extends java.lang.Object {
  method static noise()void {
    staticinvoke t.Junk.quiet()void
    return
  }
  method static quiet()void {
    return
  }
}`

func TestTargetedSkipsIrrelevantClasses(t *testing.T) {
	res, lazyApp := assertModesAgree(t, paddedTargetedApp, nil, Options{})
	ts := res.Diagnostics.Targeted
	if ts.ClassesSkipped < 1 {
		t.Errorf("padding class not skipped: %+v", ts)
	}
	if ts.ClassesDecoded < 1 {
		t.Errorf("request class not decoded: %+v", ts)
	}
	// The skipped class's bodies must never have been decoded on the
	// lazy path — that is the work the mode exists to avoid.
	if m := lazyApp.Program.Class("t.Junk").MethodNamed("noise"); m == nil || m.HasBody() {
		t.Error("irrelevant class was materialized")
	}
	if m := lazyApp.Program.Class("t.Main").MethodNamed("onCreate"); m == nil || !m.HasBody() {
		t.Error("demanded class was not materialized")
	}
}

// noNetworkTargetedApp has no network code at all: the closure is empty,
// nothing is decoded, and both modes report nothing.
const noNetworkTargetedApp = `class t.Pure extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local x int
    x = 1
    return
  }
}`

func TestTargetedEmptyClosure(t *testing.T) {
	res, _ := assertModesAgree(t, noNetworkTargetedApp, nil, Options{})
	ts := res.Diagnostics.Targeted
	if ts.SeedMethods != 0 || ts.ClosureMethods != 0 || ts.ClassesDecoded != 0 {
		t.Errorf("closure not empty: %+v", ts)
	}
	if ts.ClassesSkipped != 1 {
		t.Errorf("ClassesSkipped = %d, want 1", ts.ClassesSkipped)
	}
	if res.Diagnostics.AppMethods != 0 {
		t.Errorf("targeted scan still collected %d methods", res.Diagnostics.AppMethods)
	}
}

// iccTargetedApp exercises all three ICC closure rules: a launcher whose
// connectivity check guards a startActivity (rule i + explicit-intent
// rule ii), and a broadcast-based failure notification received by a
// manifest-declared receiver (rule iii).
const iccTargetedApp = `class t.Launch extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self t.Launch
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local intent android.content.Intent
    self = this t.Launch
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L1
    intent = new android.content.Intent
    virtualinvoke intent android.content.Intent.setClassName(java.lang.String)void "t.Fetcher"
    virtualinvoke self android.app.Activity.startActivity(android.content.Intent)void intent
    L1:
    return
  }
}
class t.Fetcher extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self t.Fetcher
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local fail android.content.Intent
    self = this t.Fetcher
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    fail = new android.content.Intent
    virtualinvoke self android.app.Activity.sendBroadcast(android.content.Intent)void fail
    return
  }
}
class t.Recv extends android.content.BroadcastReceiver {
  method onReceive(android.content.Context,android.content.Intent)void {
    local toast android.widget.Toast
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

func TestTargetedMatchesFullWithICC(t *testing.T) {
	man := &android.Manifest{
		Package:    "t",
		Activities: []string{"t.Launch", "t.Fetcher"},
		Receivers:  []string{"t.Recv"},
	}
	res, _ := assertModesAgree(t, iccTargetedApp, man, Options{EnableICC: true})
	// All three classes are demanded: the fetcher by its target call, the
	// launcher by rule i, the receiver by rule iii.
	if got := res.Diagnostics.Targeted.ClassesDecoded; got != 3 {
		t.Errorf("ClassesDecoded = %d, want 3", got)
	}
	// Without ICC the launcher's conn check is irrelevant and the
	// receiver unreachable — the modes must agree there too.
	assertModesAgree(t, iccTargetedApp, man, Options{})
}
