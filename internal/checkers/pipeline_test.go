package checkers

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// multiClassApp exercises every pipeline stage at once: checker 1–4
// warnings, a retry loop, Volley constant propagation, and callback
// resolution, spread over many classes and methods.
func multiClassApp() string {
	return strings.Join([]string{
		uncheckedActivity,
		wellBehavedActivity,
		serviceDefaultRetries,
		volleyCallbacks,
		uncheckedResponseUse,
		okHttpCallbackResponse,
		retryLoopNoBackoff,
		sequenceLoop,
	}, "\n")
}

// analyzeSrcQuiet is analyzeSrcOpts without the *testing.T dependency, so
// it can run inside test goroutines.
func analyzeSrcQuiet(src string, opts Options) *Result {
	prog := jimple.MustParse(src)
	man := &android.Manifest{Package: "t"}
	man.Normalize()
	return Analyze(&apk.App{Manifest: man, Program: prog}, apimodel.NewRegistry(), opts)
}

func renderAll(res *Result) string {
	var b strings.Builder
	for i := range res.Reports {
		b.WriteString(res.Reports[i].Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPipelineDeterministicAcrossWorkers asserts the acceptance criterion
// that a parallel scan produces byte-identical sorted reports and equal
// stats to a sequential one.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	src := multiClassApp()
	seq := analyzeSrcOpts(t, src, Options{Workers: 1})
	if len(seq.Reports) == 0 {
		t.Fatal("multi-class app produced no reports; test app broken")
	}
	seqText := renderAll(seq)
	for _, workers := range []int{2, 8} {
		par := analyzeSrcOpts(t, src, Options{Workers: workers})
		if got := renderAll(par); got != seqText {
			t.Errorf("Workers=%d reports differ from Workers=1:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, seqText, got)
		}
		if !reflect.DeepEqual(par.Stats, seq.Stats) {
			t.Errorf("Workers=%d stats differ:\nsequential: %+v\nparallel:   %+v", workers, seq.Stats, par.Stats)
		}
	}
}

// TestPipelineDiagnostics asserts the observability record is populated:
// every stage is present, and the cache counters prove each artifact is
// computed at most once per method while being requested more often
// (i.e. the shared AnalysisContext actually deduplicates work).
func TestPipelineDiagnostics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res := analyzeSrcOpts(t, multiClassApp(), Options{Workers: workers})
		d := res.Diagnostics
		if d.Workers != workers {
			t.Errorf("Workers=%d: diagnostics report %d workers", workers, d.Workers)
		}
		if d.AppMethods == 0 || d.Sites == 0 {
			t.Errorf("Workers=%d: empty volumes: %+v", workers, d)
		}
		for _, name := range []string{"build", "discover", "settings", "parameters", "notifications", "responses", "retryloops"} {
			if d.Stage(name) == nil {
				t.Errorf("Workers=%d: stage %q missing from diagnostics", workers, name)
			}
		}
		c := d.Cache
		type pair struct {
			name               string
			computed, requests int
		}
		for _, p := range []pair{
			{"cfg", c.CFGComputed, c.CFGRequests},
			{"reachdefs", c.ReachDefsComputed, c.ReachDefsRequests},
			{"constprop", c.ConstPropComputed, c.ConstPropRequests},
			{"dominators", c.DominatorsComputed, c.DominatorsRequests},
			{"loops", c.LoopsComputed, c.LoopsRequests},
			{"slicer", c.SlicersComputed, c.SlicerRequests},
		} {
			if p.computed > c.Methods {
				t.Errorf("Workers=%d: %s computed %d times for %d methods — memoization broken",
					workers, p.name, p.computed, c.Methods)
			}
			if p.computed > p.requests {
				t.Errorf("Workers=%d: %s computed (%d) exceeds requests (%d)", workers, p.name, p.computed, p.requests)
			}
		}
		// CFGs are requested by discovery, checker 1's must-precede,
		// checker 4, and the retry stage: there must be real cache hits.
		if c.CFGHits() <= 0 {
			t.Errorf("Workers=%d: no CFG cache hits (%d computed / %d requests)",
				workers, c.CFGComputed, c.CFGRequests)
		}
		if c.ReachDefsHits() < 0 {
			t.Errorf("Workers=%d: negative reach-defs hits", workers)
		}
	}
}

// TestPipelineConcurrentScans exercises one Analyze-backed scan per
// goroutine with an internally parallel pipeline — meaningful under
// -race, and the results must all agree.
func TestPipelineConcurrentScans(t *testing.T) {
	src := multiClassApp()
	want := renderAll(analyzeSrcOpts(t, src, Options{Workers: 1}))
	const goroutines = 6
	results := make([]string, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			res := analyzeSrcQuiet(src, Options{Workers: 4})
			results[g] = renderAll(res)
			done <- g
		}(g)
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	for g, got := range results {
		if got != want {
			t.Errorf("goroutine %d diverged from sequential scan", g)
		}
	}
}

// TestStatsAddCoversAllCounterFields guards the merge barrier: if a new
// int counter is added to Stats without extending Stats.add, parallel
// scans would silently drop it. The check sets every int field to 1,
// sums, and expects 2 everywhere.
func TestStatsAddCoversAllCounterFields(t *testing.T) {
	ones := func() Stats {
		var s Stats
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).Kind() == reflect.Int {
				v.Field(i).SetInt(1)
			}
		}
		return s
	}
	a, b := ones(), ones()
	a.add(&b)
	v := reflect.ValueOf(a)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Int {
			continue
		}
		if got := v.Field(i).Int(); got != 2 {
			t.Errorf("Stats.add drops field %s (got %d, want 2)", v.Type().Field(i).Name, got)
		}
	}
}

// Guard against stage-name drift between the pipeline and Diagnostics
// consumers: stage timings must appear in the fixed pipeline order.
func TestDiagnosticsStageOrder(t *testing.T) {
	res := analyzeSrcOpts(t, multiClassApp(), Options{Workers: 3})
	want := []string{"build", "summaries", "discover", "settings", "parameters", "notifications", "responses", "offlinestate", "stalechecks", "endpoints", "retryloops"}
	if len(res.Diagnostics.Stages) != len(want) {
		t.Fatalf("stage count: got %d, want %d (%v)", len(res.Diagnostics.Stages), len(want), res.Diagnostics.Stages)
	}
	for i, s := range res.Diagnostics.Stages {
		if s.Name != want[i] {
			t.Errorf("stage %d: got %q, want %q", i, s.Name, want[i])
		}
	}
	if r := res.Diagnostics.Render(); !strings.Contains(r, "cache (computed/requests") {
		t.Errorf("Render missing cache line:\n%s", r)
	}
}

// ExampleDiagnostics_merge is compile-checked documentation of corpus
// aggregation.
func ExampleDiagnostics_merge() {
	var agg Diagnostics
	agg.Merge(Diagnostics{AppMethods: 2, Sites: 1})
	agg.Merge(Diagnostics{AppMethods: 3, Sites: 2})
	fmt.Println(agg.AppMethods, agg.Sites)
	// Output: 5 3
}
