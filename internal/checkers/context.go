package checkers

import (
	"sync"
	"sync/atomic"

	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/jimple"
)

// AnalysisContext is the per-scan memoization layer shared by every
// pipeline stage: it lazily computes and caches the per-method analysis
// artifacts (CFG, dominators, natural loops, reaching definitions,
// constant propagation, slicer) plus the per-entry reachability sets
// behind one accessor API. All accessors are safe for concurrent use, and
// each artifact is computed at most once per method per scan — the cache
// counters in Diagnostics prove it.
type AnalysisContext struct {
	cg *callgraph.Graph

	mu      sync.Mutex
	methods map[*jimple.Method]*methodArtifacts

	entriesOnce sync.Once
	entryReach  []map[string]bool // parallel to cg.Entries()

	// summarize is installed by the pipeline's build stage (nil when the
	// scan is intraprocedural); the SummarySet is then computed at most
	// once, on first consult, behind sumOnce. A failed computation leaves
	// sumSet nil and every consumer degrades to intraprocedural behavior.
	summarize func() (*dataflow.SummarySet, error)
	sumOnce   sync.Once
	sumSet    *dataflow.SummarySet

	cfgRequests, cfgComputed       atomic.Int64
	rdRequests, rdComputed         atomic.Int64
	cpRequests, cpComputed         atomic.Int64
	domRequests, domComputed       atomic.Int64
	loopRequests, loopComputed     atomic.Int64
	slicerRequests, slicerComputed atomic.Int64
	sumRequests                    atomic.Int64
	feasRequests, feasComputed     atomic.Int64
	prunedEdges                    atomic.Int64
}

// methodArtifacts holds one method's lazily-built artifacts. Each field
// is guarded by its own sync.Once so concurrent stages requesting the
// same artifact block on a single computation.
type methodArtifacts struct {
	m *jimple.Method

	cfgOnce sync.Once
	cfg     *cfg.Graph

	rdOnce sync.Once
	rd     *dataflow.ReachDefs

	cpOnce sync.Once
	cp     *dataflow.ConstProp

	domOnce sync.Once
	dom     []int

	loopsOnce sync.Once
	loops     []*cfg.Loop

	slicerOnce sync.Once
	slicer     *dataflow.Slicer

	feasOnce sync.Once
	feas     *cfg.Graph
}

// newAnalysisContext prepares an empty context over the scan's call graph.
func newAnalysisContext(cg *callgraph.Graph) *AnalysisContext {
	return &AnalysisContext{cg: cg, methods: make(map[*jimple.Method]*methodArtifacts)}
}

// arts keys by method pointer, not rendered signature: every program
// method is a single *jimple.Method shared by the program, hierarchy and
// call graph, and this accessor runs on every artifact request — rendering
// the key here used to dominate the scan's allocation profile.
func (c *AnalysisContext) arts(m *jimple.Method) *methodArtifacts {
	c.mu.Lock()
	a := c.methods[m]
	if a == nil {
		a = &methodArtifacts{m: m}
		c.methods[m] = a
	}
	c.mu.Unlock()
	return a
}

// CFG returns the memoized control-flow graph of m.
func (c *AnalysisContext) CFG(m *jimple.Method) *cfg.Graph {
	a := c.arts(m)
	c.cfgRequests.Add(1)
	a.cfgOnce.Do(func() {
		c.cfgComputed.Add(1)
		a.cfg = cfg.New(m)
	})
	return a.cfg
}

// ReachDefs returns the memoized reaching-definitions result of m.
func (c *AnalysisContext) ReachDefs(m *jimple.Method) *dataflow.ReachDefs {
	a := c.arts(m)
	c.rdRequests.Add(1)
	a.rdOnce.Do(func() {
		c.rdComputed.Add(1)
		a.rd = dataflow.NewReachDefs(c.CFG(m))
	})
	return a.rd
}

// ConstProp returns the memoized constant-propagation engine of m.
func (c *AnalysisContext) ConstProp(m *jimple.Method) *dataflow.ConstProp {
	a := c.arts(m)
	c.cpRequests.Add(1)
	a.cpOnce.Do(func() {
		c.cpComputed.Add(1)
		a.cp = dataflow.NewConstProp(c.ReachDefs(m))
	})
	return a.cp
}

// Dominators returns the memoized immediate-dominator array of m's CFG.
func (c *AnalysisContext) Dominators(m *jimple.Method) []int {
	a := c.arts(m)
	c.domRequests.Add(1)
	a.domOnce.Do(func() {
		c.domComputed.Add(1)
		a.dom = c.CFG(m).Dominators()
	})
	return a.dom
}

// Loops returns the memoized natural loops of m, built from the cached
// dominator tree.
func (c *AnalysisContext) Loops(m *jimple.Method) []*cfg.Loop {
	a := c.arts(m)
	c.loopRequests.Add(1)
	a.loopsOnce.Do(func() {
		c.loopComputed.Add(1)
		a.loops = c.CFG(m).NaturalLoopsWith(c.Dominators(m))
	})
	return a.loops
}

// Slicer returns the memoized backward slicer of m (shares the cached CFG
// and reaching-defs result).
func (c *AnalysisContext) Slicer(m *jimple.Method) *dataflow.Slicer {
	a := c.arts(m)
	c.slicerRequests.Add(1)
	a.slicerOnce.Do(func() {
		c.slicerComputed.Add(1)
		a.slicer = dataflow.NewSlicer(c.CFG(m), c.ReachDefs(m))
	})
	return a.slicer
}

// FeasibleCFG returns m's CFG with statically-infeasible branch edges
// removed (path-feasibility pruning): constant propagation evaluates each
// if condition, and the untaken outcome's edge of a constant condition is
// dropped. Nodes only reachable through dead edges become unreachable —
// vacuously satisfied in must-analyses and untainted in may-analyses, so
// warnings whose only witness paths were statically false disappear. The
// pruned graph shares node indexing with CFG(m) and is memoized.
func (c *AnalysisContext) FeasibleCFG(m *jimple.Method) *cfg.Graph {
	a := c.arts(m)
	c.feasRequests.Add(1)
	a.feasOnce.Do(func() {
		c.feasComputed.Add(1)
		g := c.CFG(m)
		dead := dataflow.InfeasibleEdges(g, c.ConstProp(m))
		c.prunedEdges.Add(int64(len(dead)))
		a.feas = g.WithoutEdges(dead)
	})
	return a.feas
}

// configureSummaries installs the interprocedural summary producer; the
// pipeline's build stage calls it exactly once, before any stage runs.
func (c *AnalysisContext) configureSummaries(f func() (*dataflow.SummarySet, error)) {
	c.summarize = f
}

// Summaries returns the scan's interprocedural summary set, computing it
// on first use, or nil when the scan is intraprocedural or the
// computation failed (consumers then degrade to intraprocedural facts).
func (c *AnalysisContext) Summaries() *dataflow.SummarySet {
	c.sumOnce.Do(func() {
		if c.summarize == nil {
			return
		}
		set, err := c.summarize()
		if err == nil {
			c.sumSet = set
		}
	})
	return c.sumSet
}

// SummaryOf returns the taint summary of the method with the given
// signature key, or nil when unavailable.
func (c *AnalysisContext) SummaryOf(key string) *dataflow.TaintSummary {
	c.sumRequests.Add(1)
	return c.Summaries().Of(key)
}

// EntriesReaching returns the entry points from which the method with the
// given signature key is reachable — same result as
// callgraph.Graph.EntriesReaching, but the per-entry reachability sets are
// computed once per scan instead of once per query.
func (c *AnalysisContext) EntriesReaching(targetKey string) []callgraph.Entry {
	c.entriesOnce.Do(func() {
		entries := c.cg.Entries()
		c.entryReach = make([]map[string]bool, len(entries))
		for i, e := range entries {
			c.entryReach[i] = c.cg.ReachableFrom(e.Method.Sig)
		}
	})
	var out []callgraph.Entry
	for i, e := range c.cg.Entries() {
		if c.entryReach[i][targetKey] {
			out = append(out, e)
		}
	}
	return out
}

// cacheStats snapshots the context's counters for Diagnostics.
func (c *AnalysisContext) cacheStats() CacheStats {
	c.mu.Lock()
	methods := len(c.methods)
	c.mu.Unlock()
	stats := CacheStats{
		Methods:             methods,
		CFGComputed:         int(c.cfgComputed.Load()),
		CFGRequests:         int(c.cfgRequests.Load()),
		ReachDefsComputed:   int(c.rdComputed.Load()),
		ReachDefsRequests:   int(c.rdRequests.Load()),
		ConstPropComputed:   int(c.cpComputed.Load()),
		ConstPropRequests:   int(c.cpRequests.Load()),
		DominatorsComputed:  int(c.domComputed.Load()),
		DominatorsRequests:  int(c.domRequests.Load()),
		LoopsComputed:       int(c.loopComputed.Load()),
		LoopsRequests:       int(c.loopRequests.Load()),
		SlicersComputed:     int(c.slicerComputed.Load()),
		SlicerRequests:      int(c.slicerRequests.Load()),
		SummaryRequests:     int(c.sumRequests.Load()),
		FeasibleCFGComputed: int(c.feasComputed.Load()),
		FeasibleCFGRequests: int(c.feasRequests.Load()),
		PrunedEdges:         int(c.prunedEdges.Load()),
	}
	if set := c.sumSet; set != nil {
		ss := set.Stats()
		stats.SummariesComputed = ss.Methods
		stats.SummarySCCs = ss.SCCs
		stats.SummaryFixpointIters = ss.FixpointIterations
	}
	return stats
}
