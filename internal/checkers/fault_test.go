package checkers

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/jimple"
	"repro/internal/report"
)

// analyzeCtx is analyzeSrcQuiet with a caller context.
func analyzeCtx(ctx context.Context, src string, opts Options) *Result {
	prog := jimple.MustParse(src)
	man := &android.Manifest{Package: "t"}
	man.Normalize()
	return AnalyzeContext(ctx, &apk.App{Manifest: man, Program: prog}, apimodel.NewRegistry(), opts)
}

// checkerStageCauses maps each checker stage to the report causes only it
// can emit; killing a stage must remove exactly these causes from the
// report stream.
var checkerStageCauses = map[string][]report.Cause{
	"settings":      {report.CauseNoConnectivityCheck, report.CauseNoTimeout, report.CauseNoRetryConfig},
	"parameters":    {report.CauseOverRetryPost, report.CauseOverRetryService, report.CauseNoRetryTimeSensitive},
	"notifications": {report.CauseNoFailureNotification, report.CauseNoErrorTypeCheck},
	"responses":     {report.CauseNoResponseCheck},
	"retryloops":    {report.CauseAggressiveRetryLoop},
}

// renderExcluding renders reports, skipping the given causes.
func renderExcluding(res *Result, skip []report.Cause) string {
	excluded := make(map[report.Cause]bool, len(skip))
	for _, c := range skip {
		excluded[c] = true
	}
	var b strings.Builder
	for i := range res.Reports {
		if excluded[res.Reports[i].Cause] {
			continue
		}
		b.WriteString(res.Reports[i].Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestStagePanicIsolation is the acceptance criterion: a checker stage
// whose every work unit panics yields a degraded Result — no process
// crash — whose surviving stages' reports are byte-identical to a clean
// scan's, for any Options.Workers.
func TestStagePanicIsolation(t *testing.T) {
	src := multiClassApp()
	clean := analyzeSrcQuiet(src, Options{Workers: 1})
	if clean.Incomplete || len(clean.Reports) == 0 {
		t.Fatalf("clean scan broken: incomplete=%v reports=%d", clean.Incomplete, len(clean.Reports))
	}
	for stage, causes := range checkerStageCauses {
		want := renderExcluding(clean, causes)
		if want == renderAll(clean) {
			t.Fatalf("stage %s emits no reports on the test app; isolation not exercised", stage)
		}
		for _, workers := range []int{1, 4} {
			opts := Options{Workers: workers}
			opts.unitHook = func(s string, unit int) {
				if s == stage {
					panic("injected fault in " + s)
				}
			}
			res := analyzeSrcQuiet(src, opts)
			if !res.Incomplete {
				t.Fatalf("stage %s workers=%d: panicked scan not marked Incomplete", stage, workers)
			}
			if err := res.Err(); !errors.Is(err, ErrStagePanic) {
				t.Errorf("stage %s workers=%d: Err()=%v, want ErrStagePanic", stage, workers, err)
			}
			for _, e := range res.Diagnostics.Errors {
				if e.Stage != stage {
					t.Errorf("stage %s workers=%d: stray error from stage %q: %v", stage, workers, e.Stage, &e)
				}
				if !errors.Is(&e, ErrStagePanic) {
					t.Errorf("stage %s workers=%d: error kind %v, want ErrStagePanic", stage, workers, e.Kind)
				}
				if e.Stack == "" {
					t.Errorf("stage %s workers=%d: panic record missing stack", stage, workers)
				}
			}
			if got := renderAll(res); got != want {
				t.Errorf("stage %s workers=%d: surviving reports differ from clean scan minus the stage:\n--- want ---\n%s--- got ---\n%s",
					stage, workers, want, got)
			}
		}
	}
}

// TestUnitPanicIsolation kills a single work unit: only that unit's
// findings are lost, the error record names the unit, and the degraded
// output is identical for sequential and parallel scans.
func TestUnitPanicIsolation(t *testing.T) {
	src := multiClassApp()
	outputs := make(map[int]string)
	for _, workers := range []int{1, 4} {
		opts := Options{Workers: workers}
		opts.unitHook = func(s string, unit int) {
			if s == "parameters" && unit == 0 {
				panic("injected unit fault")
			}
		}
		res := analyzeSrcQuiet(src, opts)
		if !res.Incomplete {
			t.Fatalf("workers=%d: unit panic not marked Incomplete", workers)
		}
		var unitErrs []ScanError
		for _, e := range res.Diagnostics.Errors {
			if e.Unit >= 0 {
				unitErrs = append(unitErrs, e)
			}
		}
		if len(unitErrs) != 1 || unitErrs[0].Stage != "parameters" || unitErrs[0].Unit != 0 {
			t.Errorf("workers=%d: errors=%v, want exactly one unit error at parameters/0", workers, res.Diagnostics.Errors)
		}
		outputs[workers] = renderAll(res)
	}
	if outputs[1] != outputs[4] {
		t.Errorf("degraded scan nondeterministic across workers:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
			outputs[1], outputs[4])
	}
}

// TestDeadlineMidDiscovery is the acceptance criterion for cancellation:
// an Options.Timeout expiring while discovery is under way stops the scan
// promptly (far fewer work units run than exist) and yields a degraded
// Result matching ErrDeadline, not a hang or a crash.
func TestDeadlineMidDiscovery(t *testing.T) {
	src := multiClassApp()
	total := analyzeSrcQuiet(src, Options{Workers: 1}).Diagnostics.AppMethods
	if total < 10 {
		t.Fatalf("test app too small to observe early cutoff: %d methods", total)
	}
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		opts := Options{Workers: workers, Timeout: 10 * time.Millisecond}
		opts.unitHook = func(s string, unit int) {
			if s == "discover" {
				ran.Add(1)
				time.Sleep(25 * time.Millisecond)
			}
		}
		start := time.Now()
		res := analyzeCtx(context.Background(), src, opts)
		elapsed := time.Since(start)
		if !res.Incomplete {
			t.Fatalf("workers=%d: expired deadline not marked Incomplete", workers)
		}
		if err := res.Err(); !errors.Is(err, ErrDeadline) {
			t.Errorf("workers=%d: Err()=%v, want ErrDeadline", workers, err)
		}
		if n := int(ran.Load()); n >= total {
			t.Errorf("workers=%d: deadline ignored — all %d discovery units ran", workers, n)
		}
		if elapsed > 3*time.Second {
			t.Errorf("workers=%d: cancellation not prompt: took %v", workers, elapsed)
		}
	}
}

// TestCanceledBeforeScan: a context canceled up front degrades the scan
// from the build stage on and classifies as ErrCanceled.
func TestCanceledBeforeScan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := analyzeCtx(ctx, multiClassApp(), Options{Workers: 2})
	if !res.Incomplete {
		t.Fatal("canceled scan not marked Incomplete")
	}
	if err := res.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err()=%v, want ErrCanceled", err)
	}
	if len(res.Reports) != 0 {
		t.Errorf("canceled-before-build scan produced %d reports", len(res.Reports))
	}
	if res.Diagnostics.Errors[0].Stage != "build" {
		t.Errorf("first error from stage %q, want build", res.Diagnostics.Errors[0].Stage)
	}
}

// TestCancelMidDiscoveryExternal cancels the caller's context from inside
// a discovery unit — the cooperative checks must stop dispatch without
// external deadline help.
func TestCancelMidDiscoveryExternal(t *testing.T) {
	src := multiClassApp()
	total := analyzeSrcQuiet(src, Options{Workers: 1}).Diagnostics.AppMethods
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	opts := Options{Workers: 4}
	opts.unitHook = func(s string, unit int) {
		if s == "discover" {
			if ran.Add(1) == 2 {
				cancel()
			}
			time.Sleep(time.Millisecond)
		}
	}
	res := analyzeCtx(ctx, src, opts)
	if !res.Incomplete {
		t.Fatal("canceled scan not marked Incomplete")
	}
	if err := res.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err()=%v, want ErrCanceled", err)
	}
	if n := int(ran.Load()); n >= total {
		t.Errorf("cancellation ignored — all %d discovery units ran", n)
	}
}

// TestScanErrorTaxonomy pins the ScanError formatting and errors.Is
// behaviour the CLI and corpus harness rely on.
func TestScanErrorTaxonomy(t *testing.T) {
	unit := &ScanError{Kind: ErrStagePanic, Stage: "responses", Unit: 3, Msg: "boom"}
	if got, want := unit.Error(), "stage responses unit 3: stage panicked: boom"; got != want {
		t.Errorf("unit error = %q, want %q", got, want)
	}
	stage := &ScanError{Kind: ErrDeadline, Stage: "discover", Unit: -1, Msg: "context deadline exceeded"}
	if !strings.HasPrefix(stage.Error(), "stage discover: scan deadline exceeded") {
		t.Errorf("stage error = %q", stage.Error())
	}
	scan := &ScanError{Kind: ErrDecode, Unit: -1, Msg: "bad magic"}
	if got, want := scan.Error(), "decode failed: bad magic"; got != want {
		t.Errorf("scan error = %q, want %q", got, want)
	}
	for _, e := range []*ScanError{unit, stage, scan} {
		if !errors.Is(e, e.Kind) {
			t.Errorf("errors.Is(%v, kind) = false", e)
		}
	}
	errs := []ScanError{
		{Kind: ErrStagePanic, Stage: "responses", Unit: 2},
		{Kind: ErrStagePanic, Stage: "discover", Unit: 5},
		{Kind: ErrStagePanic, Stage: "responses", Unit: 0},
	}
	sortScanErrors(errs)
	if errs[0].Stage != "discover" || errs[1].Unit != 0 || errs[2].Unit != 2 {
		t.Errorf("sortScanErrors order wrong: %v", errs)
	}
}

// TestCleanScanStaysComplete guards the common path: no hook, no timeout
// — no errors, Incomplete false, Err nil.
func TestCleanScanStaysComplete(t *testing.T) {
	res := analyzeCtx(context.Background(), multiClassApp(), Options{Workers: 4, Timeout: time.Minute})
	if res.Incomplete || len(res.Diagnostics.Errors) != 0 || res.Err() != nil {
		t.Errorf("clean scan degraded: incomplete=%v errors=%v err=%v",
			res.Incomplete, res.Diagnostics.Errors, res.Err())
	}
}
