package checkers

import (
	"repro/internal/android"
	"repro/internal/cfg"
	"repro/internal/jimple"
	"repro/internal/report"
)

// checkRetryLoops implements §4.5: it identifies customized retry logic —
// natural loops whose exit depends on the success of a network request —
// and flags the aggressive ones (no backoff between attempts, the
// Telegram pattern of Figure 2). Methods are analyzed in parallel over
// the shared worker pool, reusing the scan's cached CFGs, loop sets, and
// slicers.
//
// A loop is a retry loop when it (transitively) performs a network request
// and either:
//
//	(a) it has an unconditional exit (return/throw inside the loop) that is
//	    unreachable from the statements of a catch block inside the loop
//	    (Figure 6(b): only a successful request reaches the exit), or
//	(b) a conditional exit's condition is data/control dependent on
//	    statements of a catch block (Figure 6(c)/(d)), established by
//	    backward slicing.
func (a *analysis) checkRetryLoops() findings {
	units := make([]findings, len(a.methods))
	a.parallelFor("retryloops", len(a.methods), func(i int) {
		a.checkMethodRetryLoops(a.methods[i], &units[i])
	})
	return mergeFindings(units)
}

func (a *analysis) checkMethodRetryLoops(m *jimple.Method, f *findings) {
	loops := a.ctx.Loops(m)
	if len(loops) == 0 {
		return
	}
	g := a.ctx.CFG(m)
	for _, loop := range loops {
		if !a.loopPerformsRequest(m, loop) {
			continue
		}
		if !a.opts.DisableRetrySlicing && !a.isRetryLoop(m, g, loop) {
			continue
		}
		f.stats.RetryLoops++
		if !a.loopHasBackoff(m, loop) {
			f.stats.AggressiveRetryLoops++
			site := a.syntheticLoopSite(m, loop)
			f.report(a.newReport(site, report.CauseAggressiveRetryLoop,
				"Customized retry loop reconnects without backing off; repeated failures burn CPU and battery"))
		} else if !a.loopBackoffOnFailurePath(m, loop) {
			// Checker 8 (retry-storm): the loop does delay somewhere, but
			// not on the failure path — failed attempts still reconnect
			// immediately.
			f.stats.RetryStorms++
			site := a.syntheticLoopSite(m, loop)
			f.report(a.newReport(site, report.CauseRetryStorm,
				"Retry loop backs off only on the success path; failed attempts reconnect immediately, storming the server"))
		}
	}
}

// loopPerformsRequest reports whether any statement of the loop invokes a
// target API directly or calls into app code that reaches one (the paper
// recursively parses callers; we equivalently walk callees).
func (a *analysis) loopPerformsRequest(m *jimple.Method, loop *cfg.Loop) bool {
	for _, i := range loop.SortedBody() {
		if i >= len(m.Body) {
			continue
		}
		inv, ok := jimple.InvokeOf(m.Body[i])
		if !ok {
			continue
		}
		if _, _, isTarget := a.reg.TargetOf(inv.Callee); isTarget {
			return true
		}
		// Walk synchronous callees.
		for _, e := range a.cg.OutEdges(a.methodKey(m)) {
			if e.Site != i {
				continue
			}
			for reached := range a.cg.ReachableFrom(e.Callee) {
				if callee := a.cg.Method(reached); callee != nil && a.methodHasRequest(callee) {
					return true
				}
			}
		}
	}
	return false
}

func (a *analysis) methodHasRequest(m *jimple.Method) bool {
	for _, s := range m.Body {
		if inv, ok := jimple.InvokeOf(s); ok {
			if _, _, isTarget := a.reg.TargetOf(inv.Callee); isTarget {
				return true
			}
		}
	}
	return false
}

// catchStmtsInLoop returns the statements of catch blocks whose handler
// lies inside the loop: the handler statement plus everything it
// dominates within the loop.
func catchStmtsInLoop(m *jimple.Method, idom []int, loop *cfg.Loop) map[int]bool {
	out := make(map[int]bool)
	for _, t := range m.Traps {
		if !loop.Contains(t.Handler) {
			continue
		}
		for _, i := range loop.SortedBody() {
			if i < len(m.Body) && cfg.Dominates(idom, t.Handler, i) {
				out[i] = true
			}
		}
	}
	return out
}

// isRetryLoop applies the two §4.5 exit-condition criteria.
func (a *analysis) isRetryLoop(m *jimple.Method, g *cfg.Graph, loop *cfg.Loop) bool {
	catch := catchStmtsInLoop(m, a.ctx.Dominators(m), loop)
	if len(catch) == 0 {
		return false
	}
	reachFromCatch := reachableFrom(g, catch)
	for _, i := range loop.SortedBody() {
		if i >= len(m.Body) {
			continue
		}
		switch s := m.Body[i].(type) {
		case *jimple.ReturnStmt, *jimple.ThrowStmt:
			// Criterion (a): an unconditional exit unreachable from the
			// catch block — only request success gets here.
			if !reachFromCatch[i] {
				return true
			}
		case *jimple.IfStmt:
			// Criterion (b): a conditional exit whose condition depends on
			// the catch block.
			exits := false
			if !loop.Contains(s.Target) || (i+1 < g.NumNodes() && !loop.Contains(i+1)) {
				exits = true
			}
			if exits && a.ctx.Slicer(m).DependsOnAny(i, catch) {
				return true
			}
		}
	}
	return false
}

// reachableFrom computes the statement set reachable from seeds along CFG
// edges (excluding the seeds themselves unless re-reached).
func reachableFrom(g *cfg.Graph, seeds map[int]bool) map[int]bool {
	seen := make(map[int]bool)
	var stack []int
	for s := range seeds {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// isBackoffSig reports whether sig is a delaying call: Thread.sleep,
// Handler.postDelayed, or a Timer schedule.
func isBackoffSig(sig jimple.Sig) bool {
	switch {
	case sig.Class == android.ClassThread && sig.Name == "sleep":
		return true
	case sig.Class == android.ClassHandler && sig.Name == "postDelayed":
		return true
	case sig.Class == android.ClassTimer:
		return true
	}
	return false
}

// stmtBacksOff reports whether the statement at i in m is a backoff call,
// directly or through a direct callee's body (one level, matching
// loopHasBackoff's depth).
func (a *analysis) stmtBacksOff(m *jimple.Method, i int) bool {
	if i >= len(m.Body) {
		return false
	}
	inv, ok := jimple.InvokeOf(m.Body[i])
	if !ok {
		return false
	}
	if isBackoffSig(inv.Callee) {
		return true
	}
	for _, e := range a.cg.OutEdges(a.methodKey(m)) {
		if e.Site != i {
			continue
		}
		if callee := a.cg.Method(e.CalleeKey()); callee != nil {
			for _, cs := range callee.Body {
				if cinv, okc := jimple.InvokeOf(cs); okc && isBackoffSig(cinv.Callee) {
					return true
				}
			}
		}
	}
	return false
}

// loopHasBackoff reports whether the loop (or its direct callees) delays
// between attempts: Thread.sleep, Handler.postDelayed, or a Timer
// schedule.
func (a *analysis) loopHasBackoff(m *jimple.Method, loop *cfg.Loop) bool {
	for _, i := range loop.SortedBody() {
		if a.stmtBacksOff(m, i) {
			return true
		}
	}
	return false
}

// loopBackoffOnFailurePath reports whether some backoff call sits on the
// loop's failure path — inside an in-loop catch-block region (the same
// region catchStmtsInLoop gives the retry-loop classifier). A loop whose
// only delay runs on the success path still reconnects immediately after
// every failure: the retry-storm pattern (Checker 8). Loops with no
// in-loop catch region have no separable failure path and are treated as
// backing off correctly.
func (a *analysis) loopBackoffOnFailurePath(m *jimple.Method, loop *cfg.Loop) bool {
	catch := catchStmtsInLoop(m, a.ctx.Dominators(m), loop)
	if len(catch) == 0 {
		return true
	}
	for i := range catch {
		if a.stmtBacksOff(m, i) {
			return true
		}
	}
	return false
}

// syntheticLoopSite fabricates a requestSite anchored at the loop head so
// retry-loop reports reuse the standard report plumbing.
func (a *analysis) syntheticLoopSite(m *jimple.Method, loop *cfg.Loop) *requestSite {
	site := &requestSite{
		method: m,
		stmt:   loop.Head,
		lib:    a.reg.Libraries()[0],
	}
	// Attribute the loop to the library actually used inside it, if any;
	// resolveContext needs target set first for HTTP-method resolution.
	for _, i := range loop.SortedBody() {
		if i >= len(m.Body) {
			continue
		}
		if inv, ok := jimple.InvokeOf(m.Body[i]); ok {
			if lib, tgt, isTarget := a.reg.TargetOf(inv.Callee); isTarget {
				site.lib, site.target, site.inv = lib, tgt, inv
				break
			}
		}
	}
	if site.target == nil && len(site.lib.Targets) > 0 {
		site.target = &site.lib.Targets[0]
	}
	entries := a.ctx.EntriesReaching(a.methodKey(m))
	if len(entries) > 0 {
		a.resolveContext(site, entries)
	} else {
		site.component = jimple.OuterClass(m.Sig.Class)
		site.kind = android.KindOf(a.h, m.Sig.Class)
		site.userInitiated = site.kind == android.KindActivity
	}
	return site
}
