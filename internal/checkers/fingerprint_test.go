package checkers

import (
	"bytes"
	"reflect"
	"testing"
)

// fingerprintExempt lists the Options fields that are deliberately NOT
// part of the cache-key fingerprint because they cannot change what a
// cached report would contain:
//
//   - Workers: reports are deterministic for any worker count (the
//     pipeline's merge-barrier guarantee, pinned by the determinism tests);
//   - Timeout: degraded scans are never written to the cache, so the
//     deadline can only suppress a write, never change a written entry;
//   - CacheDir / CacheMode / CacheMaxBytes: they select which store is
//     used and how, not what a scan computes;
//   - unitHook: test-only instrumentation, never set in production.
//
// Every other Options field is presumed report-affecting and must flip the
// fingerprint. To add an Options field: either include it in
// cacheFingerprint (forcing old entries to miss) or, if it provably cannot
// affect reports, add it here with a justification.
var fingerprintExempt = map[string]bool{
	"Workers":       true,
	"Timeout":       true,
	"CacheDir":      true,
	"CacheMode":     true,
	"CacheMaxBytes": true,
	"unitHook":      true,
}

// TestCacheFingerprintCoversOptions is the completeness gate for the
// hand-listed cacheFingerprint: perturbing any non-exempt Options field
// away from its zero value must change the fingerprint. A future field
// that is neither fingerprinted nor exempted fails here instead of
// silently serving stale cached reports.
func TestCacheFingerprintCoversOptions(t *testing.T) {
	base := Options{}
	baseFP := base.cacheFingerprint()
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if fingerprintExempt[f.Name] {
			continue
		}
		var o Options
		fv := reflect.ValueOf(&o).Elem().Field(i)
		if !fv.CanSet() {
			t.Errorf("Options.%s: unexported field is neither exempt nor fingerprintable; exempt it explicitly or export it", f.Name)
			continue
		}
		perturb(t, f.Name, fv)
		if bytes.Equal(o.cacheFingerprint(), baseFP) {
			t.Errorf("Options.%s is not covered by cacheFingerprint: changing it would serve stale cached reports. Add it to the fingerprint or to fingerprintExempt (with a justification).", f.Name)
		}
	}
}

// perturb sets v to a non-zero value of its kind, failing loudly on kinds
// the test does not know how to flip yet.
func perturb(t *testing.T, name string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.String:
		v.SetString("perturbed")
	case reflect.Float32, reflect.Float64:
		v.SetFloat(7)
	default:
		t.Fatalf("Options.%s has kind %s; teach perturb how to flip it", name, v.Kind())
	}
}

// TestCacheFingerprintDistinguishesFields: flipping two different option
// fields must yield two different fingerprints — the fingerprint cannot
// collapse distinct configurations onto one cache entry.
func TestCacheFingerprintDistinguishesFields(t *testing.T) {
	fps := map[string]string{"zero": string(Options{}.cacheFingerprint())}
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if fingerprintExempt[f.Name] {
			continue
		}
		var o Options
		perturb(t, f.Name, reflect.ValueOf(&o).Elem().Field(i))
		fp := string(o.cacheFingerprint())
		for prev, prevFP := range fps {
			if fp == prevFP {
				t.Errorf("flipping %s and %s yield one fingerprint %q", f.Name, prev, fp)
			}
		}
		fps[f.Name] = fp
	}
}
