package checkers

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/dataflow"
	"repro/internal/jimple"
	"repro/internal/report"
)

// checkStaleChecks implements Checker 6 (stale connectivity check): a
// request site that IS guarded by a connectivity check (Checker 1 is
// satisfied) can still misbehave when the check's answer is stale by the
// time the request runs — mobile connectivity flaps on the order of
// seconds. Three staleness shapes are flagged, measured by the
// check-to-use distance analysis in internal/dataflow:
//
//   - loop: the request repeats inside a loop the check is outside of;
//     iterations after the first run against an unchecked network.
//   - wait: a blocking wait provably runs between check and request.
//   - callback-boundary: the check happened in another method and the
//     request's method is entered through an asynchronous dispatch
//     (AsyncTask, Handler post, Thread start); the callback executes at
//     an unbounded later time.
//
// The interprocedural must-precede analysis gates the whole checker:
// unguarded sites are Checker 1's territory, not staleness.
func (a *analysis) checkStaleChecks() findings {
	isCheck := func(_ *jimple.Method, _ int, inv jimple.InvokeExpr) bool {
		return android.IsConnectivityCheck(inv.Callee)
	}
	mp := dataflow.NewMustPrecedeWith(a.cg, isCheck, a.checkGraph)
	units := make([]findings, len(a.sites))
	a.parallelFor("stalechecks", len(a.sites), func(i int) {
		a.checkSiteStaleness(mp, a.sites[i], &units[i])
	})
	return mergeFindings(units)
}

func (a *analysis) checkSiteStaleness(mp *dataflow.MustPrecede, site *requestSite, f *findings) {
	m := site.method
	if !mp.FactBefore(a.methodKey(m), site.stmt) {
		return // unguarded: Checker 1 reports the missing check
	}
	f.stats.GuardedSites++
	g := a.checkGraph(m)
	idom := g.Dominators()
	cd := dataflow.NewCheckDistance(g, idom, g.NaturalLoopsWith(idom),
		func(_ int, inv jimple.InvokeExpr) bool {
			return android.IsWaitCall(inv.Callee)
		})

	// Dominating in-method checks: the guards the must-precede fact rests
	// on within this method.
	var domChecks []int
	for j, s := range m.Body {
		if inv, ok := jimple.InvokeOf(s); ok && android.IsConnectivityCheck(inv.Callee) {
			if j != site.stmt && cd.Dominates(j, site.stmt) {
				domChecks = append(domChecks, j)
			}
		}
	}

	if len(domChecks) == 0 {
		// Guarded entirely from outside this method. A synchronous caller
		// checks and immediately calls through; an asynchronous dispatch
		// defers this method to an unbounded later time, so the caller's
		// check is stale on arrival. ICC edges are excluded: component
		// launches are user-visible transitions, not deferred callbacks.
		if a.reachedViaAsyncDispatch(m) {
			a.reportStale(site, dataflow.StaleCallbackBoundary, f)
		}
		return
	}
	// The site is stale only when EVERY dominating check is stale — one
	// fresh check (e.g. a re-check after a sleep) vouches for the request.
	var reason dataflow.StaleReason
	for _, j := range domChecks {
		r, stale := cd.Stale(j, site.stmt)
		if !stale {
			return
		}
		reason = r
	}
	a.reportStale(site, reason, f)
}

// reachedViaAsyncDispatch reports whether any call-graph edge into m is a
// framework-mediated asynchronous dispatch.
func (a *analysis) reachedViaAsyncDispatch(m *jimple.Method) bool {
	for _, e := range a.cg.InEdges(a.methodKey(m)) {
		if e.Kind == callgraph.EdgeAsync {
			return true
		}
	}
	return false
}

func (a *analysis) reportStale(site *requestSite, reason dataflow.StaleReason, f *findings) {
	f.stats.StaleConnChecks++
	f.report(a.newReport(site, report.CauseStaleConnectivityCheck,
		fmt.Sprintf("Stale connectivity check before %s.%s(): %s",
			jimple.SimpleName(site.inv.Callee.Class), site.inv.Callee.Name,
			describeStaleness(reason))))
}

func describeStaleness(reason dataflow.StaleReason) string {
	switch reason {
	case dataflow.StaleLoop:
		return "the request repeats in a loop the check is outside of, so later iterations run against an unchecked network"
	case dataflow.StaleWait:
		return "a blocking wait runs between the check and the request, so connectivity may have changed meanwhile"
	case dataflow.StaleCallbackBoundary:
		return "the check runs before an asynchronous dispatch and the callback may execute after connectivity has changed"
	}
	return string(reason)
}
