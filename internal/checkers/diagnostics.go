package checkers

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/report"
)

// StageTiming records one pipeline stage's wall time and work volume.
// Stages overlap when Options.Workers > 1, so durations do not sum to
// Diagnostics.Total.
type StageTiming struct {
	Name     string
	Duration time.Duration
	Items    int // work units examined: request sites, or methods
	Reports  int // warnings the stage emitted
}

// CacheStats counts AnalysisContext artifact computations vs. requests.
// Hits are Requests − Computed; Computed never exceeds the number of
// distinct methods, proving each artifact is built at most once per
// method per scan.
type CacheStats struct {
	Methods int // distinct methods with at least one cached artifact

	CFGComputed, CFGRequests               int
	ReachDefsComputed, ReachDefsRequests   int
	ConstPropComputed, ConstPropRequests   int
	DominatorsComputed, DominatorsRequests int
	LoopsComputed, LoopsRequests           int
	SlicersComputed, SlicerRequests        int

	// Interprocedural summary engine: the summary set is built once per
	// scan (SummariesComputed = methods summarized, over SummarySCCs
	// condensation components, spending SummaryFixpointIters extra passes
	// on recursive cycles); every later consult is a cache hit
	// (SummaryRequests − SummariesComputed).
	SummariesComputed, SummaryRequests int
	SummarySCCs, SummaryFixpointIters  int
	// Path-feasibility pruning: pruned per-method CFGs built vs. requested,
	// and the total statically-dead edges removed.
	FeasibleCFGComputed, FeasibleCFGRequests int
	PrunedEdges                              int

	// Persistent store (Options.CacheDir) traffic: entry probes and their
	// outcomes, taint summaries seeded from summary-entry hits, and the
	// write side. StoreCorrupt counts corrupt/truncated entries and
	// in-cache panics, all of which degrade to cold computation. All zero
	// when the persistent cache is off.
	StoreProbes, StoreHits, StoreMisses, StoreCorrupt int
	SummariesSeeded                                   int
	StorePuts, StorePutErrors, StoreEvicted           int
	// ClassDigests counts per-class content-digest computations (a full
	// streamed re-print of the class into the hasher). Digest work exists
	// only to address cache entries, so it must be zero whenever the
	// persistent cache is off — TestNoDigestWorkWithCacheOff pins this.
	ClassDigests int
}

// CFGHits returns the number of CFG requests served from the cache.
func (c CacheStats) CFGHits() int { return c.CFGRequests - c.CFGComputed }

// ReachDefsHits returns the reaching-defs requests served from the cache.
func (c CacheStats) ReachDefsHits() int { return c.ReachDefsRequests - c.ReachDefsComputed }

// TargetedStats counts the work the targeted engine mode demanded vs.
// skipped. All zero in full mode (and on cache-hit scans, which do no
// closure work).
type TargetedStats struct {
	// SeedMethods counts the closure's roots: methods with a target-API
	// call plus registered callback implementations.
	SeedMethods int
	// ClosureMethods / ClosureClasses size the converged relevant-method
	// and demanded-class sets.
	ClosureMethods int
	ClosureClasses int
	// ClassesDecoded / ClassesSkipped split the app's body-bearing classes
	// into materialized and never-decoded (lazy scan path) or analyzed and
	// excluded (in-memory path).
	ClassesDecoded int
	ClassesSkipped int
}

func (t *TargetedStats) add(o TargetedStats) {
	t.SeedMethods += o.SeedMethods
	t.ClosureMethods += o.ClosureMethods
	t.ClosureClasses += o.ClosureClasses
	t.ClassesDecoded += o.ClassesDecoded
	t.ClassesSkipped += o.ClassesSkipped
}

// counterMap flattens TargetedStats for metric export (the
// nchecker_targeted_* family of nchecker serve's /metrics).
func (t TargetedStats) counterMap() map[string]int64 {
	return map[string]int64{
		"seed_methods":    int64(t.SeedMethods),
		"closure_methods": int64(t.ClosureMethods),
		"closure_classes": int64(t.ClosureClasses),
		"classes_decoded": int64(t.ClassesDecoded),
		"classes_skipped": int64(t.ClassesSkipped),
	}
}

// ValidateStats counts the dynamic-validation stage's work and verdicts.
// All zero when Options.Validate is off (and on cache-hit scans, which
// restore verdicts without replaying).
type ValidateStats struct {
	// Confirmed / Unconfirmed / NotValidated partition the scan's warnings
	// by verdict; their sum is the number of warnings examined.
	Confirmed    int
	Unconfirmed  int
	NotValidated int
	// Replays counts entry × scenario machine executions (shared across
	// warnings with the same witness entry).
	Replays int
	// BudgetHits counts replays truncated by the interpreter step budget.
	BudgetHits int
}

func (v *ValidateStats) add(o ValidateStats) {
	v.Confirmed += o.Confirmed
	v.Unconfirmed += o.Unconfirmed
	v.NotValidated += o.NotValidated
	v.Replays += o.Replays
	v.BudgetHits += o.BudgetHits
}

// count tallies one warning's verdict (a report.Validation* value).
func (v *ValidateStats) count(verdict string) {
	switch verdict {
	case report.ValidationConfirmed:
		v.Confirmed++
	case report.ValidationUnconfirmed:
		v.Unconfirmed++
	default:
		v.NotValidated++
	}
}

// counterMap flattens ValidateStats for metric export (the
// nchecker_validate_* family of nchecker serve's /metrics).
func (v ValidateStats) counterMap() map[string]int64 {
	return map[string]int64{
		"confirmed":     int64(v.Confirmed),
		"unconfirmed":   int64(v.Unconfirmed),
		"not_validated": int64(v.NotValidated),
		"replays":       int64(v.Replays),
		"budget_hits":   int64(v.BudgetHits),
	}
}

// Diagnostics is the per-scan observability record: where the time went,
// how much was analyzed, and how well the shared analysis cache worked.
// It is populated by every Analyze call and threaded through core.Result
// to cmd/nchecker (-timings) and the experiment harness.
type Diagnostics struct {
	Total      time.Duration
	Workers    int        // resolved worker count the scan ran with
	Mode       EngineMode // engine traversal the scan ran with
	AppMethods int        // body-bearing app methods scanned
	Sites      int        // request sites discovered
	Targeted   TargetedStats
	Validate   ValidateStats
	Stages     []StageTiming
	Cache      CacheStats
	// Errors lists the scan's survivable failures (stage panics, expired
	// deadlines, cancellations), sorted by stage order then unit index.
	// Non-empty exactly when the Result is Incomplete.
	Errors []ScanError
}

// Stage returns the timing record of the named stage, or nil.
func (d *Diagnostics) Stage(name string) *StageTiming {
	for i := range d.Stages {
		if d.Stages[i].Name == name {
			return &d.Stages[i]
		}
	}
	return nil
}

// add appends a stage record.
func (d *Diagnostics) add(name string, dur time.Duration, items, reports int) {
	d.Stages = append(d.Stages, StageTiming{Name: name, Duration: dur, Items: items, Reports: reports})
}

// merge accumulates another scan's diagnostics into d (stage-wise and
// cache-wise), for corpus-level aggregation. Workers is kept from d.
func (d *Diagnostics) Merge(o Diagnostics) {
	d.Total += o.Total
	d.AppMethods += o.AppMethods
	d.Sites += o.Sites
	d.Targeted.add(o.Targeted)
	d.Validate.add(o.Validate)
	for _, s := range o.Stages {
		if have := d.Stage(s.Name); have != nil {
			have.Duration += s.Duration
			have.Items += s.Items
			have.Reports += s.Reports
		} else {
			d.Stages = append(d.Stages, s)
		}
	}
	d.Cache.Methods += o.Cache.Methods
	d.Cache.CFGComputed += o.Cache.CFGComputed
	d.Cache.CFGRequests += o.Cache.CFGRequests
	d.Cache.ReachDefsComputed += o.Cache.ReachDefsComputed
	d.Cache.ReachDefsRequests += o.Cache.ReachDefsRequests
	d.Cache.ConstPropComputed += o.Cache.ConstPropComputed
	d.Cache.ConstPropRequests += o.Cache.ConstPropRequests
	d.Cache.DominatorsComputed += o.Cache.DominatorsComputed
	d.Cache.DominatorsRequests += o.Cache.DominatorsRequests
	d.Cache.LoopsComputed += o.Cache.LoopsComputed
	d.Cache.LoopsRequests += o.Cache.LoopsRequests
	d.Cache.SlicersComputed += o.Cache.SlicersComputed
	d.Cache.SlicerRequests += o.Cache.SlicerRequests
	d.Cache.SummariesComputed += o.Cache.SummariesComputed
	d.Cache.SummaryRequests += o.Cache.SummaryRequests
	d.Cache.SummarySCCs += o.Cache.SummarySCCs
	d.Cache.SummaryFixpointIters += o.Cache.SummaryFixpointIters
	d.Cache.FeasibleCFGComputed += o.Cache.FeasibleCFGComputed
	d.Cache.FeasibleCFGRequests += o.Cache.FeasibleCFGRequests
	d.Cache.PrunedEdges += o.Cache.PrunedEdges
	d.Cache.StoreProbes += o.Cache.StoreProbes
	d.Cache.StoreHits += o.Cache.StoreHits
	d.Cache.StoreMisses += o.Cache.StoreMisses
	d.Cache.StoreCorrupt += o.Cache.StoreCorrupt
	d.Cache.SummariesSeeded += o.Cache.SummariesSeeded
	d.Cache.StorePuts += o.Cache.StorePuts
	d.Cache.StorePutErrors += o.Cache.StorePutErrors
	d.Cache.StoreEvicted += o.Cache.StoreEvicted
	d.Cache.ClassDigests += o.Cache.ClassDigests
	d.Errors = append(d.Errors, o.Errors...)
}

// CounterMap flattens every CacheStats counter into a stable snake_case
// name → value map, the shape metric exporters (nchecker serve's /metrics)
// consume. TestCacheStatsCounterMapComplete pins the contract: every
// CacheStats field appears here, so a new counter cannot be added without
// also being exported.
func (c CacheStats) CounterMap() map[string]int64 {
	return map[string]int64{
		"methods":                int64(c.Methods),
		"cfg_computed":           int64(c.CFGComputed),
		"cfg_requests":           int64(c.CFGRequests),
		"reachdefs_computed":     int64(c.ReachDefsComputed),
		"reachdefs_requests":     int64(c.ReachDefsRequests),
		"constprop_computed":     int64(c.ConstPropComputed),
		"constprop_requests":     int64(c.ConstPropRequests),
		"dominators_computed":    int64(c.DominatorsComputed),
		"dominators_requests":    int64(c.DominatorsRequests),
		"loops_computed":         int64(c.LoopsComputed),
		"loops_requests":         int64(c.LoopsRequests),
		"slicers_computed":       int64(c.SlicersComputed),
		"slicer_requests":        int64(c.SlicerRequests),
		"summaries_computed":     int64(c.SummariesComputed),
		"summary_requests":       int64(c.SummaryRequests),
		"summary_sccs":           int64(c.SummarySCCs),
		"summary_fixpoint_iters": int64(c.SummaryFixpointIters),
		"feasible_cfg_computed":  int64(c.FeasibleCFGComputed),
		"feasible_cfg_requests":  int64(c.FeasibleCFGRequests),
		"pruned_edges":           int64(c.PrunedEdges),
		"store_probes":           int64(c.StoreProbes),
		"store_hits":             int64(c.StoreHits),
		"store_misses":           int64(c.StoreMisses),
		"store_corrupt":          int64(c.StoreCorrupt),
		"summaries_seeded":       int64(c.SummariesSeeded),
		"store_puts":             int64(c.StorePuts),
		"store_put_errors":       int64(c.StorePutErrors),
		"store_evicted":          int64(c.StoreEvicted),
		"class_digests":          int64(c.ClassDigests),
	}
}

// StageMetric is one pipeline stage's timing flattened for metric export.
type StageMetric struct {
	Name    string
	Seconds float64
	Items   int64
	Reports int64
}

// MetricsSnapshot is the metric-exporter view of one scan's Diagnostics:
// plain numbers under stable names, ready to be folded into cumulative
// counters and histograms (see internal/server).
type MetricsSnapshot struct {
	TotalSeconds float64
	AppMethods   int64
	Sites        int64
	Reports      int64 // warnings across all stages
	ScanErrors   int64 // recorded survivable failures (non-zero ⇒ degraded)
	Stages       []StageMetric
	Counters     map[string]int64 // CacheStats.CounterMap
	Targeted     map[string]int64 // TargetedStats, flattened
	Validate     map[string]int64 // ValidateStats, flattened
}

// MetricsSnapshot flattens the diagnostics for metric export.
func (d *Diagnostics) MetricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		TotalSeconds: d.Total.Seconds(),
		AppMethods:   int64(d.AppMethods),
		Sites:        int64(d.Sites),
		ScanErrors:   int64(len(d.Errors)),
		Counters:     d.Cache.CounterMap(),
		Targeted:     d.Targeted.counterMap(),
		Validate:     d.Validate.counterMap(),
	}
	for _, s := range d.Stages {
		snap.Reports += int64(s.Reports)
		snap.Stages = append(snap.Stages, StageMetric{
			Name:    s.Name,
			Seconds: s.Duration.Seconds(),
			Items:   int64(s.Items),
			Reports: int64(s.Reports),
		})
	}
	return snap
}

// Render formats the diagnostics for the -timings flag.
func (d Diagnostics) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: %v total, %d workers, %d app methods, %d request sites\n",
		d.Total.Round(time.Microsecond), d.Workers, d.AppMethods, d.Sites)
	if d.Mode == ModeTargeted {
		t := d.Targeted
		fmt.Fprintf(&b, "  targeted: %d seeds -> %d methods over %d classes; classes decoded %d, skipped %d\n",
			t.SeedMethods, t.ClosureMethods, t.ClosureClasses, t.ClassesDecoded, t.ClassesSkipped)
	}
	if v := d.Validate; v != (ValidateStats{}) {
		fmt.Fprintf(&b, "  validate: %d confirmed, %d unconfirmed, %d not-validated; %d replays (%d budget-truncated)\n",
			v.Confirmed, v.Unconfirmed, v.NotValidated, v.Replays, v.BudgetHits)
	}
	for _, s := range d.Stages {
		fmt.Fprintf(&b, "  stage %-14s %12v  items=%-5d reports=%d\n",
			s.Name, s.Duration.Round(time.Microsecond), s.Items, s.Reports)
	}
	// Per-family warning counters (families whose stage ran; an ablated
	// family is simply absent).
	famLine := ""
	for f := 1; f <= NumCheckerFamilies; f++ {
		name := StageOfFamily(f)
		total, present := 0, false
		for _, s := range d.Stages {
			if s.Name == name {
				present = true
				total += s.Reports
			}
		}
		if present {
			famLine += fmt.Sprintf(" %d:%s=%d", f, name, total)
		}
	}
	if famLine != "" {
		fmt.Fprintf(&b, "  checker families:%s\n", famLine)
	}
	c := d.Cache
	fmt.Fprintf(&b, "  cache (computed/requests over %d methods): cfg %d/%d  reachdefs %d/%d  constprop %d/%d  dominators %d/%d  loops %d/%d  slicer %d/%d\n",
		c.Methods, c.CFGComputed, c.CFGRequests, c.ReachDefsComputed, c.ReachDefsRequests,
		c.ConstPropComputed, c.ConstPropRequests, c.DominatorsComputed, c.DominatorsRequests,
		c.LoopsComputed, c.LoopsRequests, c.SlicersComputed, c.SlicerRequests)
	fmt.Fprintf(&b, "  summaries: %d methods over %d SCCs (%d fixpoint iters), %d consults; feasibility: %d/%d pruned CFGs, %d dead edges\n",
		c.SummariesComputed, c.SummarySCCs, c.SummaryFixpointIters, c.SummaryRequests,
		c.FeasibleCFGComputed, c.FeasibleCFGRequests, c.PrunedEdges)
	if c.StoreProbes > 0 || c.StorePuts > 0 || c.StorePutErrors > 0 {
		fmt.Fprintf(&b, "  store: %d probes (%d hits, %d misses, %d corrupt), %d summaries seeded, %d class digests; %d puts (%d errors), %d evicted\n",
			c.StoreProbes, c.StoreHits, c.StoreMisses, c.StoreCorrupt,
			c.SummariesSeeded, c.ClassDigests, c.StorePuts, c.StorePutErrors, c.StoreEvicted)
	}
	for i := range d.Errors {
		fmt.Fprintf(&b, "  error: %v\n", &d.Errors[i])
	}
	return b.String()
}
