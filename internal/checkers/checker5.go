package checkers

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/jimple"
	"repro/internal/report"
)

// checkOfflineState implements Checker 5 (offline-state handling): a
// network-state handler — a BroadcastReceiver.onReceive that inspects
// connectivity, or any ConnectivityManager.NetworkCallback
// implementation — must do something useful with the state change:
// retry the pending network work (reach a registry target API) or fall
// back to cached content (a SharedPreferences read). A handler that only
// observes the transition (logs, toasts) leaves the app stuck offline —
// the "eventual connectivity" bug class.
//
// Reachability is the call graph's full closure from the handler (sync
// calls and async dispatches alike: a handler that posts a retry
// runnable recovers), reusing the scan's shared graph. Methods are
// examined in parallel over the worker pool.
func (a *analysis) checkOfflineState() findings {
	units := make([]findings, len(a.methods))
	a.parallelFor("offlinestate", len(a.methods), func(i int) {
		a.checkMethodOfflineState(a.methods[i], &units[i])
	})
	return mergeFindings(units)
}

const onReceiveSubsig = "onReceive(android.content.Context,android.content.Intent)void"

// networkStateHandler classifies m as a handler the framework invokes on
// connectivity transitions. Receivers qualify only when their closure
// actually inspects connectivity (an ordinary broadcast receiver is not
// a network-state handler); NetworkCallback overrides qualify by
// registration semantics alone.
func (a *analysis) networkStateHandler(m *jimple.Method) bool {
	switch m.Sig.SubSigKey() {
	case onReceiveSubsig:
		return a.h.IsSubtype(m.Sig.Class, android.ClassBroadcastReceiver) &&
			a.closureChecksConnectivity(m)
	}
	for _, sub := range android.NetworkCallbackSubsigs {
		if m.Sig.SubSigKey() == sub {
			return a.h.IsSubtype(m.Sig.Class, android.ClassNetworkCallback)
		}
	}
	return false
}

// closureChecksConnectivity reports whether m or anything it reaches
// invokes a connectivity-check API.
func (a *analysis) closureChecksConnectivity(m *jimple.Method) bool {
	for key := range a.cg.ReachableFrom(m.Sig) {
		mm := a.cg.Method(key)
		if mm == nil {
			continue
		}
		for _, s := range mm.Body {
			if inv, ok := jimple.InvokeOf(s); ok && android.IsConnectivityCheck(inv.Callee) {
				return true
			}
		}
	}
	return false
}

// closureRecovers reports whether the handler's closure reaches a
// registry target API (a retried request) or a cache-fallback read.
func (a *analysis) closureRecovers(m *jimple.Method) bool {
	for key := range a.cg.ReachableFrom(m.Sig) {
		mm := a.cg.Method(key)
		if mm == nil {
			continue
		}
		for _, s := range mm.Body {
			inv, ok := jimple.InvokeOf(s)
			if !ok {
				continue
			}
			if _, _, isTarget := a.reg.TargetOf(inv.Callee); isTarget {
				return true
			}
			if android.IsCacheFallback(inv.Callee) {
				return true
			}
		}
	}
	return false
}

func (a *analysis) checkMethodOfflineState(m *jimple.Method, f *findings) {
	if !a.networkStateHandler(m) {
		return
	}
	f.stats.OfflineHandlers++
	if a.closureRecovers(m) {
		return
	}
	f.stats.OfflineNoRecovery++
	site := a.syntheticHandlerSite(m)
	f.report(a.newReport(site, report.CauseOfflineStateNoRecovery,
		fmt.Sprintf("Network-state handler %s.%s observes connectivity changes but never retries work or serves cached content",
			jimple.SimpleName(m.Sig.Class), m.Sig.Name)))
}

// syntheticHandlerSite fabricates a requestSite anchored at the handler's
// first direct connectivity check (or its first statement) so offline-
// state reports reuse the standard report plumbing. Handlers run
// framework-initiated: never user-initiated.
func (a *analysis) syntheticHandlerSite(m *jimple.Method) *requestSite {
	site := &requestSite{
		method: m,
		stmt:   0,
		lib:    a.reg.Libraries()[0],
	}
	if len(site.lib.Targets) > 0 {
		site.target = &site.lib.Targets[0]
	}
	for i, s := range m.Body {
		if inv, ok := jimple.InvokeOf(s); ok && android.IsConnectivityCheck(inv.Callee) {
			site.stmt, site.inv = i, inv
			break
		}
	}
	site.component = jimple.OuterClass(m.Sig.Class)
	site.kind = android.KindOf(a.h, m.Sig.Class)
	if site.kind == android.KindOther {
		site.kind = android.KindReceiver
	}
	site.userInitiated = false
	site.entrySig = m.Sig
	return site
}
