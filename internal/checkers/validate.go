package checkers

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/jimple"
	"repro/internal/report"
)

// validate.go — dynamic counterexample validation (DESIGN.md §10).
//
// The validation stage closes the static/dynamic loop the paper's Volley
// experiment opened: for every warning carrying a concrete witness (the
// entry point at the top of its call stack), the entry is replayed under
// each injected disruption of interp.ValidationScenarios() and compared
// against a NetOK baseline replay. A warning whose predicted defect
// manifests — a crash the baseline didn't have, a silent failure, a hang,
// excess retries, a runaway loop — is Confirmed with the scenario and
// manifestation in its note; a warning whose replays all stay clean is
// Unconfirmed (a false-positive candidate); a warning that cannot be
// replayed conclusively (no witness, no interpretable body, step budget
// exhausted, replay panic, deadline) is NotValidated.
//
// The stage runs after the checker merge, before cachewrite, so verdicts
// are persisted and restored with the reports. PR 2 fault isolation
// applies at warning granularity: a panicking replay degrades that one
// warning to NotValidated via runUnit; a deadline marks the remaining
// warnings NotValidated and records one ErrDeadline/ErrCanceled (which
// also keeps half-validated results out of the cache).

// validateSeed fixes the replay RNG base so verdicts are reproducible
// across runs, worker counts, and engine modes. Per-entry streams are
// decorrelated by interp's signature-keyed seeding; per-scenario streams
// by the scenario offset below.
const validateSeed = 2016

// scenarioSeed decorrelates the fault sequences of different scenarios
// replaying the same entry.
func scenarioSeed(s interp.Scenario) int64 {
	return validateSeed + int64(s)*1_000_003
}

type replayKey struct {
	entry    string
	scenario interp.Scenario
}

type replayOutcome struct {
	obs interp.Observations
	ok  bool // the entry had an interpretable body
}

// validateReports assigns a verdict to every report in place. It runs
// sequentially (report order, then scenario order), so the verdicts are
// deterministic regardless of Options.Workers.
func (a *analysis) validateReports(reports []report.Report) {
	if len(reports) == 0 {
		return
	}
	// The replay executes whatever the entry point reaches at run time,
	// not just what the checkers consulted — in targeted mode the lazily
	// skipped classes must be materialized first, or verdicts would
	// diverge between full and targeted scans.
	if a.app.Lazy != nil {
		if err := a.app.Lazy.MaterializeAll(); err != nil {
			panic(fmt.Sprintf("validate: materializing app for replay: %v", err))
		}
	}
	rp := interp.NewReplayer(a.app)
	cache := make(map[replayKey]replayOutcome)
	for i := range reports {
		if err := a.scanCtx.Err(); err != nil {
			a.failCancel("validate", err)
			return // the pipeline sweep marks the remainder NotValidated
		}
		a.runUnit("validate", i, func(i int) {
			v, note := a.validateOne(rp, cache, &reports[i])
			reports[i].Validation = v
			reports[i].ValidationNote = note
			a.vstats.count(v)
		})
	}
}

// replay runs (or replays from the per-scan memo) one entry × scenario.
func (a *analysis) replay(rp *interp.Replayer, cache map[replayKey]replayOutcome, entry jimple.Sig, s interp.Scenario) replayOutcome {
	k := replayKey{entry: entry.Key(), scenario: s}
	if out, ok := cache[k]; ok {
		return out
	}
	obs, ok := rp.Replay(entry, s, scenarioSeed(s))
	out := replayOutcome{obs: obs, ok: ok}
	if ok {
		a.vstats.Replays++
		if obs.BudgetExceeded {
			a.vstats.BudgetHits++
		}
	}
	cache[k] = out
	return out
}

// validateOne decides one warning's verdict.
func (a *analysis) validateOne(rp *interp.Replayer, cache map[replayKey]replayOutcome, r *report.Report) (string, string) {
	entry, ok := witnessEntry(r)
	if !ok {
		return report.ValidationNotValidated, "no concrete witness entry point"
	}
	base := a.replay(rp, cache, entry, interp.NetOK)
	if !base.ok {
		return report.ValidationNotValidated, "witness entry has no interpretable body"
	}
	if base.obs.BudgetExceeded {
		return report.ValidationNotValidated, "baseline replay exhausted its step budget"
	}
	budgetHit := false
	for _, s := range interp.ValidationScenarios() {
		out := a.replay(rp, cache, entry, s)
		if out.obs.BudgetExceeded {
			// Exhausting the budget only under injected faults IS the
			// manifestation of a runaway retry loop; for every other
			// cause a truncated replay proves nothing.
			if r.Cause == report.CauseAggressiveRetryLoop || r.Cause == report.CauseRetryStorm {
				return report.ValidationConfirmed, fmt.Sprintf("runaway-loop under %s", s)
			}
			budgetHit = true
			continue
		}
		if m := manifestation(r.Cause, &base.obs, &out.obs); m != "" {
			return report.ValidationConfirmed, fmt.Sprintf("%s under %s", m, s)
		}
	}
	if budgetHit {
		return report.ValidationNotValidated, "replay exhausted its step budget under injected faults"
	}
	return report.ValidationUnconfirmed,
		fmt.Sprintf("no manifestation across %d injected scenarios", len(interp.ValidationScenarios()))
}

// witnessEntry extracts the warning's witness entry point: the top frame
// of the statically-computed call stack.
func witnessEntry(r *report.Report) (jimple.Sig, bool) {
	if len(r.CallStack) == 0 {
		return jimple.Sig{}, false
	}
	sig, err := jimple.ParseSigKey(r.CallStack[0].Method)
	if err != nil {
		return jimple.Sig{}, false
	}
	return sig, true
}

// manifestation compares a fault-scenario replay against the healthy
// baseline and reports how the warned-about defect manifested, or "" if
// it did not. The accepted manifestations are cause-specific so a
// Confirmed verdict means "the predicted kind of damage", not just "the
// replay looked different".
func manifestation(cause report.Cause, base, obs *interp.Observations) string {
	newCrash := obs.Crashed() && !base.Crashed()
	newSilent := obs.SilentFailure() && !base.SilentFailure()
	newHang := obs.HangSuspect() && !base.HangSuspect()
	extraAttempts := obs.NetworkAttempts > base.NetworkAttempts

	crash := func() string {
		return fmt.Sprintf("crash (%s)", obs.Crashes[0].Type)
	}
	switch cause {
	case report.CauseNoTimeout:
		// The defect is an unbounded stall; only a hang confirms it.
		if newHang {
			return "hang"
		}
	case report.CauseOverRetryService, report.CauseOverRetryPost:
		// The defect is automatic retries firing where they should not:
		// extra radio attempts relative to the healthy baseline.
		if extraAttempts {
			return "excess-retries"
		}
	case report.CauseNoFailureNotification:
		if newSilent {
			return "silent-failure"
		}
	case report.CauseNoResponseCheck:
		// The hazard is reading an invalid response — an unhandled crash
		// (typically an NPE on the null body).
		if newCrash {
			return crash()
		}
	case report.CauseAggressiveRetryLoop, report.CauseRetryStorm:
		// Budget exhaustion is handled by the caller; a hang or attempt
		// blow-up short of the budget also confirms the loop. A retry
		// storm's backoff sits off the failure path, so under injected
		// faults (connection-reset especially) the attempts pile up
		// exactly like the unthrottled loop's.
		if newHang {
			return "hang"
		}
		if extraAttempts {
			return "excess-retries"
		}
	case report.CauseCleartextEndpoint, report.CauseHardcodedIPEndpoint:
		// The hazard is interception or unreachability of the endpoint —
		// the captive-portal scenario's specialty: the tampered response
		// crashes the unsuspecting parser or fails silently.
		if newCrash {
			return crash()
		}
		if newSilent {
			return "silent-failure"
		}
	case report.CauseOfflineStateNoRecovery:
		// The defect is an offline transition with no retry or cached
		// fallback: the user faces a dead end — silence or a crash.
		if newSilent {
			return "silent-failure"
		}
		if newCrash {
			return crash()
		}
	case report.CauseStaleConnectivityCheck:
		// The check passed before the loop/wait; by use time the network
		// changed, so failures slip past the guard as unhandled damage.
		if newCrash {
			return crash()
		}
		if newSilent {
			return "silent-failure"
		}
		if newHang {
			return "hang"
		}
	default:
		// Connectivity / retry-config / error-type warnings manifest as
		// whichever unhandled damage the missing check lets through.
		if newCrash {
			return crash()
		}
		if newSilent {
			return "silent-failure"
		}
		if newHang {
			return "hang"
		}
	}
	return ""
}
