package checkers

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// cacheTestApp returns a small interprocedural app: an activity whose
// entry point routes a request through a helper, so both result caching
// and summary caching have something to store.
const cacheTestSrc = `class t.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    staticinvoke t.Main.submit(com.turbomanage.httpclient.BasicHttpClient)void c
    return
  }
  method static submit(com.turbomanage.httpclient.BasicHttpClient)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = param 0 com.turbomanage.httpclient.BasicHttpClient
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`

func cacheTestApp(t *testing.T, src string) *apk.App {
	t.Helper()
	prog := jimple.MustParse(src)
	if err := prog.Validate(); err != nil {
		t.Fatalf("test app invalid: %v", err)
	}
	man := &android.Manifest{Package: "t", Activities: []string{"t.Main"}}
	man.Normalize()
	return &apk.App{Manifest: man, Program: prog}
}

func assertSameFindings(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Errorf("%s: reports differ:\n got %+v\nwant %+v", label, got.Reports, want.Reports)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Errorf("%s: stats differ:\n got %+v\nwant %+v", label, got.Stats, want.Stats)
	}
	if got.Incomplete != want.Incomplete {
		t.Errorf("%s: Incomplete = %v, want %v", label, got.Incomplete, want.Incomplete)
	}
}

func TestCacheHitShortCircuits(t *testing.T) {
	reg := apimodel.NewRegistry()
	dir := t.TempDir()
	opts := Options{Workers: 1, CacheDir: dir, CacheMode: CacheRW}

	cold := Analyze(cacheTestApp(t, cacheTestSrc), reg, opts)
	if cold.Incomplete {
		t.Fatalf("cold scan incomplete: %v", cold.Diagnostics.Errors)
	}
	cc := cold.Diagnostics.Cache
	if cc.StoreHits != 0 || cc.StorePuts == 0 {
		t.Fatalf("cold scan store stats: %d hits, %d puts; want 0 hits and >0 puts", cc.StoreHits, cc.StorePuts)
	}
	if cold.Diagnostics.Stage("discover") == nil {
		t.Fatalf("cold scan did not run discovery")
	}
	if len(cold.Reports) == 0 {
		t.Fatalf("cold scan found no warnings; the test app should trigger several")
	}

	// A second scan of an identical (separately constructed) app must be
	// answered entirely from the cache.
	warm := Analyze(cacheTestApp(t, cacheTestSrc), reg, opts)
	assertSameFindings(t, warm, cold, "warm vs cold")
	wc := warm.Diagnostics.Cache
	if wc.StoreHits != 1 || wc.StoreMisses != 0 {
		t.Fatalf("warm scan store stats: %+d hits, %d misses; want 1 hit, 0 misses", wc.StoreHits, wc.StoreMisses)
	}
	if warm.Diagnostics.Stage("discover") != nil || warm.Diagnostics.Stage("build") != nil {
		t.Fatalf("warm scan ran analysis stages despite a full hit: %+v", warm.Diagnostics.Stages)
	}
	if warm.Diagnostics.Stage("cacheprobe") == nil {
		t.Fatalf("warm scan missing cacheprobe stage")
	}
	// Diagnostics scale numbers are restored from the entry.
	if warm.Diagnostics.AppMethods != cold.Diagnostics.AppMethods || warm.Diagnostics.Sites != cold.Diagnostics.Sites {
		t.Fatalf("warm diagnostics scale = %d methods/%d sites, want %d/%d",
			warm.Diagnostics.AppMethods, warm.Diagnostics.Sites,
			cold.Diagnostics.AppMethods, cold.Diagnostics.Sites)
	}
}

func TestCacheReadOnlyNeverWrites(t *testing.T) {
	reg := apimodel.NewRegistry()
	dir := t.TempDir()

	off := Analyze(cacheTestApp(t, cacheTestSrc), reg, Options{Workers: 1})
	ro := Analyze(cacheTestApp(t, cacheTestSrc), reg,
		Options{Workers: 1, CacheDir: dir, CacheMode: CacheRO})
	assertSameFindings(t, ro, off, "ro vs off")
	rc := ro.Diagnostics.Cache
	if rc.StoreProbes == 0 {
		t.Fatalf("ro scan never probed the store")
	}
	if rc.StorePuts != 0 {
		t.Fatalf("ro scan wrote %d entries", rc.StorePuts)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read cache dir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("ro scan left %d files in the cache directory", len(entries))
	}
}

// TestIncompleteScanNeverPoisons: a scan degraded by a mid-pipeline panic
// must not write anything — a later clean scan would otherwise be
// answered with partial results forever.
func TestIncompleteScanNeverPoisons(t *testing.T) {
	reg := apimodel.NewRegistry()
	dir := t.TempDir()
	baseline := Analyze(cacheTestApp(t, cacheTestSrc), reg, Options{Workers: 1})

	crashOpts := Options{Workers: 1, CacheDir: dir, CacheMode: CacheRW}
	crashOpts.unitHook = func(stage string, unit int) {
		if stage == "discover" {
			panic("injected discovery failure")
		}
	}
	crashed := Analyze(cacheTestApp(t, cacheTestSrc), reg, crashOpts)
	if !crashed.Incomplete {
		t.Fatalf("injected panic did not degrade the scan")
	}
	if n := crashed.Diagnostics.Cache.StorePuts; n != 0 {
		t.Fatalf("degraded scan wrote %d cache entries", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read cache dir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("degraded scan left %d files in the cache directory", len(entries))
	}

	// The next clean rw scan misses, computes fresh, and matches the
	// cache-off baseline; the one after that hits and still matches.
	clean := Analyze(cacheTestApp(t, cacheTestSrc), reg,
		Options{Workers: 1, CacheDir: dir, CacheMode: CacheRW})
	assertSameFindings(t, clean, baseline, "clean-after-crash vs baseline")
	warm := Analyze(cacheTestApp(t, cacheTestSrc), reg,
		Options{Workers: 1, CacheDir: dir, CacheMode: CacheRW})
	assertSameFindings(t, warm, baseline, "warm-after-crash vs baseline")
	if warm.Diagnostics.Cache.StoreHits == 0 {
		t.Fatalf("post-crash warm scan did not hit")
	}
}

// TestCorruptEntriesFallBackCold: damaging every cached file on disk must
// read as a cold scan with corrupt counters — same findings, no failure —
// and the rw rescan heals the cache.
func TestCorruptEntriesFallBackCold(t *testing.T) {
	reg := apimodel.NewRegistry()
	dir := t.TempDir()
	opts := Options{Workers: 1, CacheDir: dir, CacheMode: CacheRW}

	cold := Analyze(cacheTestApp(t, cacheTestSrc), reg, opts)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold scan cached nothing (err=%v)", err)
	}
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		// Truncate to simulate a writer killed mid-commit.
		if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
			t.Fatalf("truncate %s: %v", p, err)
		}
	}

	resc := Analyze(cacheTestApp(t, cacheTestSrc), reg, opts)
	assertSameFindings(t, resc, cold, "rescan-over-corruption vs cold")
	if resc.Diagnostics.Cache.StoreCorrupt == 0 {
		t.Fatalf("rescan did not count the corrupt entries")
	}
	if resc.Incomplete {
		t.Fatalf("corruption degraded the scan: %v", resc.Diagnostics.Errors)
	}

	healed := Analyze(cacheTestApp(t, cacheTestSrc), reg, opts)
	assertSameFindings(t, healed, cold, "healed vs cold")
	if healed.Diagnostics.Cache.StoreHits == 0 || healed.Diagnostics.Cache.StoreCorrupt != 0 {
		t.Fatalf("cache did not heal: %+v", healed.Diagnostics.Cache)
	}
}

// TestSummarySeedingOnChangedApp: adding a class to an app invalidates
// the whole-app result entry but not the summary entries of untouched
// classes — the rescan seeds those and matches an uncached scan exactly.
func TestSummarySeedingOnChangedApp(t *testing.T) {
	const extraClass = `
class t.Extra extends java.lang.Object {
  method poke()void {
    return
  }
}`
	reg := apimodel.NewRegistry()
	dir := t.TempDir()
	opts := Options{Workers: 1, CacheDir: dir, CacheMode: CacheRW}

	v1 := Analyze(cacheTestApp(t, cacheTestSrc), reg, opts)
	if v1.Diagnostics.Cache.StorePuts == 0 {
		t.Fatalf("v1 scan cached nothing")
	}

	v2src := cacheTestSrc + extraClass
	baseline := Analyze(cacheTestApp(t, v2src), reg, Options{Workers: 1})
	v2 := Analyze(cacheTestApp(t, v2src), reg, opts)
	assertSameFindings(t, v2, baseline, "seeded v2 vs uncached v2")
	c := v2.Diagnostics.Cache
	if c.SummariesSeeded == 0 {
		t.Fatalf("v2 scan seeded no summaries: %+v", c)
	}
	if v2.Diagnostics.Stage("discover") == nil {
		t.Fatalf("v2 scan short-circuited despite changed app bytes")
	}
}

// TestCacheDisabledByDefault: without CacheDir the pipeline never touches
// the store and diagnostics stay all-zero.
func TestCacheDisabledByDefault(t *testing.T) {
	res := Analyze(cacheTestApp(t, cacheTestSrc), apimodel.NewRegistry(), Options{Workers: 1})
	c := res.Diagnostics.Cache
	if c.StoreProbes != 0 || c.StorePuts != 0 || c.StoreHits != 0 {
		t.Fatalf("cache-off scan touched the store: %+v", c)
	}
	if res.Diagnostics.Stage("cacheprobe") != nil {
		t.Fatalf("cache-off scan ran the cacheprobe stage")
	}
}

func TestParseCacheMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CacheMode
		ok   bool
	}{
		{"off", CacheOff, true},
		{"ro", CacheRO, true},
		{"rw", CacheRW, true},
		{"", CacheOff, false},
		{"readwrite", CacheOff, false},
	} {
		got, err := ParseCacheMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCacheMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("CacheMode(%q).String() = %q", tc.in, got.String())
		}
	}
}

// TestNoDigestWorkWithCacheOff: digest work (a full per-class re-print
// streamed into the hasher) exists only to address cache entries, so a
// scan with the cache off — no directory, or a directory with
// -cache-mode=off — must compute zero class digests. An rw scan over the
// same app proves the counter is live.
func TestNoDigestWorkWithCacheOff(t *testing.T) {
	reg := apimodel.NewRegistry()
	for _, opts := range []Options{
		{Workers: 1},
		{Workers: 1, CacheDir: t.TempDir(), CacheMode: CacheOff},
	} {
		res := Analyze(cacheTestApp(t, cacheTestSrc), reg, opts)
		if n := res.Diagnostics.Cache.ClassDigests; n != 0 {
			t.Errorf("cache-off scan (dir=%q) computed %d class digests, want 0", opts.CacheDir, n)
		}
		if n := res.Diagnostics.Cache.StoreProbes; n != 0 {
			t.Errorf("cache-off scan (dir=%q) probed the store %d times, want 0", opts.CacheDir, n)
		}
	}
	rw := Analyze(cacheTestApp(t, cacheTestSrc), reg,
		Options{Workers: 1, CacheDir: t.TempDir(), CacheMode: CacheRW})
	if rw.Diagnostics.Cache.ClassDigests == 0 {
		t.Fatal("rw scan computed no class digests; the counter (or the digest path) is dead")
	}
}
