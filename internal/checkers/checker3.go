package checkers

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/dataflow"
	"repro/internal/jimple"
	"repro/internal/report"
)

// notifScanDepth bounds the callee walk when scanning a callback scope for
// UI-alert calls (covers Handler.post(runnable)-style indirection).
const notifScanDepth = 2

// checkNotifications implements Pattern 3 (paper §4.4.3): user-initiated
// requests must surface failures in the UI. The checker maps each request
// to its error callback (library callback interfaces, the enclosing
// AsyncTask's onPostExecute, or — failing those — the requesting method
// itself), then scans that scope for calls on the five Android UI-alert
// classes. For Volley it additionally checks that the error callback
// inspects the typed error object. Sites are checked in parallel.
func (a *analysis) checkNotifications() findings {
	units := make([]findings, len(a.sites))
	a.parallelFor("notifications", len(a.sites), func(i int) {
		a.checkSiteNotifications(a.sites[i], &units[i])
	})
	return mergeFindings(units)
}

func (a *analysis) checkSiteNotifications(site *requestSite, f *findings) {
	if !site.userInitiated {
		return
	}
	cbMethod, cbSpec, explicit := a.resolveErrorCallback(site)
	var scope []*jimple.Method
	if explicit {
		scope = a.scopeFrom(cbMethod)
		f.stats.ExplicitCallbackReqs++
	} else {
		scope = a.scopeFrom(site.method)
		if sibling := a.asyncTaskSibling(site.method); sibling != nil {
			scope = append(scope, a.scopeFrom(sibling)...)
		}
		f.stats.ImplicitCallbackReqs++
	}
	notified := scanForUIAlert(scope)
	if notified {
		if explicit {
			f.stats.ExplicitCallbackNotified++
		} else {
			f.stats.ImplicitCallbackNotified++
		}
	} else {
		f.stats.UserRequestsNoNotif++
		loc := site.method
		stmt := site.stmt
		if explicit {
			loc, stmt = cbMethod, 0
		}
		r := a.newReport(site, report.CauseNoFailureNotification,
			fmt.Sprintf("No failure notification for user-initiated %s request", site.lib.Name))
		r.Location = report.Loc{Method: loc.Sig, Stmt: stmt}
		f.report(r)
	}
	// Error-type usage: only callbacks that expose typed errors
	// (Volley) are checked, matching the paper.
	if explicit && cbSpec != nil && cbSpec.ExposesErrorTypes {
		f.stats.ErrorCallbacks++
		if a.errorObjectInspected(cbMethod, cbSpec.ErrorArg) {
			f.stats.ErrorTypeChecked++
		} else {
			r := a.newReport(site, report.CauseNoErrorTypeCheck,
				"Error callback ignores the error object's type; different errors need different handling")
			r.Location = report.Loc{Method: cbMethod.Sig, Stmt: 0}
			f.report(r)
		}
	}
}

// resolveErrorCallback finds the app method that handles this request's
// failure, per the library's callback annotations.
func (a *analysis) resolveErrorCallback(site *requestSite) (*jimple.Method, *apimodel.Callback, bool) {
	// Case 1: the target API takes an explicit handler argument.
	if site.target.HandlerArg >= 0 {
		if local, ok := argLocal(site.inv, site.target.HandlerArg); ok {
			typ := site.method.LocalType(local)
			if m, cb := a.callbackOn(site.lib, typ); m != nil {
				return m, cb, true
			}
		}
	}
	// Case 2 (Volley): the error listener is a constructor argument of the
	// request object passed to RequestQueue.add.
	if site.lib.Key == apimodel.LibVolley {
		if m, cb := a.volleyErrorListener(site); m != nil {
			return m, cb, true
		}
	}
	return nil, nil, false
}

// callbackOn resolves the error-callback method defined on (or inherited
// by) type typ for any of the library's callback interfaces.
func (a *analysis) callbackOn(lib *apimodel.Library, typ string) (*jimple.Method, *apimodel.Callback) {
	if typ == "" {
		return nil, nil
	}
	for i := range lib.Callbacks {
		cb := &lib.Callbacks[i]
		if !a.h.IsSubtype(typ, cb.Iface) {
			continue
		}
		sig, err := jimple.ParseSigKey(cb.Iface + "." + cb.ErrorSubsig)
		if err != nil {
			continue
		}
		if m := a.h.LookupMethod(typ, sig.SubSigKey()); m != nil && m.HasBody() {
			return m, cb
		}
	}
	return nil, nil
}

// volleyErrorListener chases the Volley request object back to its
// constructor and inspects the constructor arguments for an ErrorListener
// implementation.
func (a *analysis) volleyErrorListener(site *requestSite) (*jimple.Method, *apimodel.Callback) {
	reqLocal, ok := argLocal(site.inv, 0)
	if !ok {
		return nil, nil
	}
	m := site.method
	rd := a.ctx.ReachDefs(m)
	for _, alloc := range dataflow.AllocSitesOf(rd, site.stmt, reqLocal) {
		local := rd.DefOfStmt(alloc)
		for j := alloc + 1; j < len(m.Body); j++ {
			inv, okInv := jimple.InvokeOf(m.Body[j])
			if !okInv || inv.Kind != jimple.InvokeSpecial || inv.Base != local || inv.Callee.Name != "<init>" {
				continue
			}
			for _, arg := range inv.Args {
				l, isLocal := arg.(jimple.Local)
				if !isLocal {
					continue
				}
				if cbM, cb := a.callbackOn(site.lib, m.LocalType(l.Name)); cbM != nil {
					return cbM, cb
				}
			}
			break
		}
	}
	return nil, nil
}

// asyncTaskSibling returns the onPostExecute of the AsyncTask class whose
// doInBackground contains the request, if applicable: that is where
// synchronous-library users surface results to the UI thread.
func (a *analysis) asyncTaskSibling(m *jimple.Method) *jimple.Method {
	if m.Sig.SubSigKey() != "doInBackground()void" {
		return nil
	}
	if !a.h.IsSubtype(m.Sig.Class, android.ClassAsyncTask) {
		return nil
	}
	cls := a.h.Program().Class(m.Sig.Class)
	if cls == nil {
		return nil
	}
	if post := cls.Method("onPostExecute()void"); post != nil && post.HasBody() {
		return post
	}
	return nil
}

// scopeFrom returns root plus the app methods reachable from it within
// notifScanDepth call-graph hops (async edges included, so Handler.post
// and runOnUiThread indirection is covered).
func (a *analysis) scopeFrom(root *jimple.Method) []*jimple.Method {
	type item struct {
		key   string
		depth int
	}
	rootKey := a.methodKey(root)
	seen := map[string]bool{rootKey: true}
	out := []*jimple.Method{root}
	queue := []item{{key: rootKey}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= notifScanDepth {
			continue
		}
		for _, e := range a.cg.OutEdges(cur.key) {
			tk := e.CalleeKey()
			if seen[tk] {
				continue
			}
			seen[tk] = true
			// Only walk into the app's own code.
			if cls := a.app.Program.Class(e.Callee.Class); cls != nil {
				if m := a.cg.Method(tk); m != nil {
					out = append(out, m)
					queue = append(queue, item{key: tk, depth: cur.depth + 1})
				}
			}
		}
	}
	return out
}

// scanForUIAlert reports whether any method in scope calls a UI-alert
// class method (AlertDialog, DialogFragment, Toast, TextView, ImageView).
func scanForUIAlert(scope []*jimple.Method) bool {
	for _, m := range scope {
		for _, s := range m.Body {
			if inv, ok := jimple.InvokeOf(s); ok && android.IsUIAlertCall(inv.Callee) {
				return true
			}
		}
	}
	return false
}

// errorObjectInspected reports whether the error callback actually
// consults its error parameter: calling a method on it, testing its type,
// or passing it into code that does — a bare null comparison does not
// count. Passing the error along used to count unconditionally; with
// summaries available, a hand-off to the app's own code counts only when
// some callee's summary says the bound parameter is consulted, so a
// helper that merely logs "request failed" and drops the error no longer
// masks the missing type check. Unsummarized (framework) callees keep the
// conservative answer.
func (a *analysis) errorObjectInspected(cb *jimple.Method, errorArg int) bool {
	// Find the local bound to the error parameter (identity assignment).
	var errLocal string
	for _, s := range cb.Body {
		if asg, ok := s.(*jimple.AssignStmt); ok {
			if p, isParam := asg.RHS.(jimple.ParamRef); isParam && p.Index == errorArg {
				if l, isLocal := asg.LHS.(jimple.Local); isLocal {
					errLocal = l.Name
				}
			}
		}
	}
	if errLocal == "" {
		return false
	}
	resolve := a.summaryResolver(cb)
	for i, s := range cb.Body {
		inv, isInv := jimple.InvokeOf(s)
		if isInv {
			if inv.Base == errLocal {
				return true
			}
			passed := false
			for _, arg := range inv.Args {
				if l, isLocal := arg.(jimple.Local); isLocal && l.Name == errLocal {
					passed = true
				}
			}
			if passed {
				var sums []*dataflow.TaintSummary
				if resolve != nil {
					sums = resolve(i)
				}
				if len(sums) == 0 {
					return true // unknown code may consult the error
				}
				for _, sum := range sums {
					for _, t := range dataflow.BoundTokens(inv, sum, func(name string) bool { return name == errLocal }) {
						if sum.UsesToken(t) {
							return true
						}
					}
				}
			}
		}
		if asg, ok := s.(*jimple.AssignStmt); ok {
			if io, isIO := asg.RHS.(jimple.InstanceOfExpr); isIO {
				if l, isLocal := io.V.(jimple.Local); isLocal && l.Name == errLocal {
					return true
				}
			}
		}
	}
	return false
}
