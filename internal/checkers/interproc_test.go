package checkers

import (
	"reflect"
	"testing"

	"repro/internal/report"
)

// These tests exercise the interprocedural summary engine end to end:
// default mode consults per-method taint summaries and runs over
// feasibility-pruned CFGs; Options{Intraprocedural: true} is the paper's
// intraprocedural ablation. Each fixture is built so the two modes
// disagree in exactly the dimension under test.

// helperCfgApp configures the client through a static helper: the
// config calls are invisible to the intraprocedural object walk but
// surface through the helper's summary (CallsOn on the bound parameter).
const helperCfgApp = `class t.HelperCfg extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local c com.turbomanage.httpclient.BasicHttpClient
    local toast android.widget.Toast
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L2
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    staticinvoke t.HelperCfg.configure(com.turbomanage.httpclient.BasicHttpClient)void c
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
    L2:
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
  method static configure(com.turbomanage.httpclient.BasicHttpClient)void {
    local cl com.turbomanage.httpclient.BasicHttpClient
    cl = param 0 com.turbomanage.httpclient.BasicHttpClient
    virtualinvoke cl com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    virtualinvoke cl com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 2
    return
  }
}`

func TestInterprocHelperConfiguredClient(t *testing.T) {
	res := analyzeSrcOpts(t, helperCfgApp, Options{})
	if len(res.Reports) != 0 {
		t.Errorf("summaries should see the helper-applied config, got: %v", causes(res))
	}
	intra := analyzeSrcOpts(t, helperCfgApp, Options{Intraprocedural: true})
	if countCause(intra, report.CauseNoTimeout) != 1 {
		t.Errorf("intra mode cannot see the helper timeout: %v", causes(intra))
	}
	if countCause(intra, report.CauseNoRetryConfig) != 1 {
		t.Errorf("intra mode cannot see the helper retry config: %v", causes(intra))
	}
}

// factoryApp obtains an already-configured client from a static factory:
// the config rides on the factory summary's CallsOnRet facts.
const factoryApp = `class t.Factory extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local c com.turbomanage.httpclient.BasicHttpClient
    local toast android.widget.Toast
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L2
    c = staticinvoke t.Factory.make()com.turbomanage.httpclient.BasicHttpClient
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
    L2:
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
  method static make()com.turbomanage.httpclient.BasicHttpClient {
    local cl com.turbomanage.httpclient.BasicHttpClient
    cl = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke cl com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke cl com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 3000
    virtualinvoke cl com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 2
    return cl
  }
}`

func TestInterprocFactoryConfiguredClient(t *testing.T) {
	res := analyzeSrcOpts(t, factoryApp, Options{})
	if len(res.Reports) != 0 {
		t.Errorf("summaries should see the factory-applied config, got: %v", causes(res))
	}
	intra := analyzeSrcOpts(t, factoryApp, Options{Intraprocedural: true})
	if countCause(intra, report.CauseNoTimeout) != 1 || countCause(intra, report.CauseNoRetryConfig) != 1 {
		t.Errorf("intra mode cannot see the factory config: %v", causes(intra))
	}
}

// respHelperApp hands the raw response to a static helper that reads the
// payload without any validity check — a true positive only the helper's
// summary (UncheckedUse on the bound parameter) can witness.
const respHelperApp = `class t.RespHelper extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local toast android.widget.Toast
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L2
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 2
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    staticinvoke t.RespHelper.show(com.turbomanage.httpclient.HttpResponse)void r
    return
    L2:
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
  method static show(com.turbomanage.httpclient.HttpResponse)void {
    local resp com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    resp = param 0 com.turbomanage.httpclient.HttpResponse
    b = virtualinvoke resp com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    return
  }
}`

func TestInterprocHelperResponseUse(t *testing.T) {
	res := analyzeSrcOpts(t, respHelperApp, Options{})
	if countCause(res, report.CauseNoResponseCheck) != 1 {
		t.Errorf("helper's unchecked payload read should be flagged: %v", causes(res))
	}
	intra := analyzeSrcOpts(t, respHelperApp, Options{Intraprocedural: true})
	if countCause(intra, report.CauseNoResponseCheck) != 0 {
		t.Errorf("intra mode cannot see into the helper (expected FN): %v", causes(intra))
	}
}

// respCheckedHelperApp routes the response through a helper that
// validates it on every path before reading: the helper's
// ValidatedAllPaths fact must satisfy checker 4 — no warning in either
// direction.
const respCheckedHelperApp = `class t.RespChecked extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local toast android.widget.Toast
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L2
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 2
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    staticinvoke t.RespChecked.show(com.turbomanage.httpclient.HttpResponse)void r
    return
    L2:
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
  method static show(com.turbomanage.httpclient.HttpResponse)void {
    local resp com.turbomanage.httpclient.HttpResponse
    local ok boolean
    local b java.lang.String
    resp = param 0 com.turbomanage.httpclient.HttpResponse
    ok = virtualinvoke resp com.turbomanage.httpclient.HttpResponse.isSuccess()boolean
    if ok == 0 goto L1
    b = virtualinvoke resp com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    L1:
    return
  }
}`

func TestInterprocHelperValidatesResponse(t *testing.T) {
	res := analyzeSrcOpts(t, respCheckedHelperApp, Options{})
	if countCause(res, report.CauseNoResponseCheck) != 0 {
		t.Errorf("helper validates on every path — must not warn: %v", causes(res))
	}
}

// prunedApp guards the connectivity check behind a branch whose condition
// folds to a constant: the only check-free path to the request traverses
// a statically-false edge. Path-insensitive analysis warns (a seeded
// false positive); feasibility pruning removes the dead edge and the
// warning with it.
const prunedApp = `class t.Pruned extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local flag int
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local c com.turbomanage.httpclient.BasicHttpClient
    local toast android.widget.Toast
    flag = 1
    if flag == 1 goto L1
    goto L2
    L1:
    cm = new android.net.ConnectivityManager
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    L2:
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 5000
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.setMaxRetries(int)void 2
    virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

func TestInterprocPathFeasibilityPruning(t *testing.T) {
	res := analyzeSrcOpts(t, prunedApp, Options{})
	if countCause(res, report.CauseNoConnectivityCheck) != 0 {
		t.Errorf("the check-free path is statically dead — pruning must suppress the FP: %v", causes(res))
	}
	if res.Diagnostics.Cache.PrunedEdges == 0 {
		t.Error("the dead branch edge should be counted in diagnostics")
	}
	intra := analyzeSrcOpts(t, prunedApp, Options{Intraprocedural: true})
	if countCause(intra, report.CauseNoConnectivityCheck) != 1 {
		t.Errorf("the ablation keeps the path-insensitive FP: %v", causes(intra))
	}
}

// volleyHelperDropsError hands the typed error to a helper that logs a
// generic message and never consults it: the helper's summary exposes
// the dropped parameter, so only interprocedural mode flags the missing
// error-type check.
const volleyHelperDropsError = `class t.VDrop extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local q com.android.volley.RequestQueue
    local req com.android.volley.toolbox.StringRequest
    local l com.android.volley.Response$Listener
    local e t.VDrop$Err
    local out com.android.volley.Request
    q = new com.android.volley.RequestQueue
    specialinvoke q com.android.volley.RequestQueue.<init>()void
    e = new t.VDrop$Err
    specialinvoke e t.VDrop$Err.<init>()void
    req = new com.android.volley.toolbox.StringRequest
    specialinvoke req com.android.volley.toolbox.StringRequest.<init>(int,java.lang.String,com.android.volley.Response$Listener,com.android.volley.Response$ErrorListener)void 0 "https://x" l e
    out = virtualinvoke q com.android.volley.RequestQueue.add(com.android.volley.Request)com.android.volley.Request req
    return
  }
}
class t.VDrop$Err extends java.lang.Object implements com.android.volley.Response$ErrorListener {
  method <init>()void {
    return
  }
  method onErrorResponse(com.android.volley.VolleyError)void {
    local err com.android.volley.VolleyError
    local toast android.widget.Toast
    err = param 0 com.android.volley.VolleyError
    staticinvoke t.VDrop$Err.log(com.android.volley.VolleyError)void err
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
  method static log(com.android.volley.VolleyError)void {
    local e com.android.volley.VolleyError
    local toast android.widget.Toast
    e = param 0 com.android.volley.VolleyError
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

// volleyHelperInspectsError is the positive control: the helper type-
// tests the error, so the hand-off counts as an inspection in both modes.
const volleyHelperInspectsError = `class t.VUse extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local q com.android.volley.RequestQueue
    local req com.android.volley.toolbox.StringRequest
    local l com.android.volley.Response$Listener
    local e t.VUse$Err
    local out com.android.volley.Request
    q = new com.android.volley.RequestQueue
    specialinvoke q com.android.volley.RequestQueue.<init>()void
    e = new t.VUse$Err
    specialinvoke e t.VUse$Err.<init>()void
    req = new com.android.volley.toolbox.StringRequest
    specialinvoke req com.android.volley.toolbox.StringRequest.<init>(int,java.lang.String,com.android.volley.Response$Listener,com.android.volley.Response$ErrorListener)void 0 "https://x" l e
    out = virtualinvoke q com.android.volley.RequestQueue.add(com.android.volley.Request)com.android.volley.Request req
    return
  }
}
class t.VUse$Err extends java.lang.Object implements com.android.volley.Response$ErrorListener {
  method <init>()void {
    return
  }
  method onErrorResponse(com.android.volley.VolleyError)void {
    local err com.android.volley.VolleyError
    local toast android.widget.Toast
    err = param 0 com.android.volley.VolleyError
    staticinvoke t.VUse$Err.inspect(com.android.volley.VolleyError)void err
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
  method static inspect(com.android.volley.VolleyError)void {
    local e com.android.volley.VolleyError
    local isNoConn boolean
    local toast android.widget.Toast
    e = param 0 com.android.volley.VolleyError
    isNoConn = instanceof com.android.volley.NoConnectionError e
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`

func TestInterprocErrorObjectThroughHelper(t *testing.T) {
	res := analyzeSrcOpts(t, volleyHelperDropsError, Options{})
	if countCause(res, report.CauseNoErrorTypeCheck) != 1 {
		t.Errorf("helper drops the error — summaries should flag it: %v", causes(res))
	}
	intra := analyzeSrcOpts(t, volleyHelperDropsError, Options{Intraprocedural: true})
	if countCause(intra, report.CauseNoErrorTypeCheck) != 0 {
		t.Errorf("intra mode treats any hand-off as an inspection: %v", causes(intra))
	}

	res = analyzeSrcOpts(t, volleyHelperInspectsError, Options{})
	if countCause(res, report.CauseNoErrorTypeCheck) != 0 {
		t.Errorf("helper inspects the error — must not warn: %v", causes(res))
	}
	intra = analyzeSrcOpts(t, volleyHelperInspectsError, Options{Intraprocedural: true})
	if countCause(intra, report.CauseNoErrorTypeCheck) != 0 {
		t.Errorf("positive control must stay clean in the ablation too: %v", causes(intra))
	}
}

// TestInterprocDeterministicAcrossWorkers re-runs the full interprocedural
// pipeline (summaries + pruning) over all fixture apps at several worker
// counts: reports, stats, and summary-engine counters must be
// byte-identical.
func TestInterprocDeterministicAcrossWorkers(t *testing.T) {
	combined := helperCfgApp + "\n" + factoryApp + "\n" + respHelperApp + "\n" +
		prunedApp + "\n" + volleyHelperDropsError
	base := analyzeSrcQuiet(combined, Options{Workers: 1})
	baseText := renderAll(base)
	for _, w := range []int{4, 8} {
		res := analyzeSrcQuiet(combined, Options{Workers: w})
		if got := renderAll(res); got != baseText {
			t.Errorf("Workers=%d: reports differ from Workers=1\n--- w=1 ---\n%s\n--- w=%d ---\n%s", w, baseText, w, got)
		}
		if !reflect.DeepEqual(res.Stats, base.Stats) {
			t.Errorf("Workers=%d: stats differ: %+v vs %+v", w, res.Stats, base.Stats)
		}
		if res.Diagnostics.Cache.SummariesComputed != base.Diagnostics.Cache.SummariesComputed ||
			res.Diagnostics.Cache.SummarySCCs != base.Diagnostics.Cache.SummarySCCs ||
			res.Diagnostics.Cache.PrunedEdges != base.Diagnostics.Cache.PrunedEdges {
			t.Errorf("Workers=%d: summary counters differ: %+v vs %+v",
				w, res.Diagnostics.Cache, base.Diagnostics.Cache)
		}
	}
}

// TestIntraAblationStrictlyFewerFlows is the acceptance gate: across the
// fixture corpus the interprocedural engine must find strictly more true
// flows than the ablation on at least two apps while the ablation carries
// at least one false positive that pruning removes.
func TestIntraAblationStrictlyFewerFlows(t *testing.T) {
	inter := analyzeSrcQuiet(respHelperApp, Options{})
	intra := analyzeSrcQuiet(respHelperApp, Options{Intraprocedural: true})
	if countCause(inter, report.CauseNoResponseCheck) <= countCause(intra, report.CauseNoResponseCheck) {
		t.Error("app 1: interprocedural mode should find strictly more response-use flows")
	}
	interV := analyzeSrcQuiet(volleyHelperDropsError, Options{})
	intraV := analyzeSrcQuiet(volleyHelperDropsError, Options{Intraprocedural: true})
	if countCause(interV, report.CauseNoErrorTypeCheck) <= countCause(intraV, report.CauseNoErrorTypeCheck) {
		t.Error("app 2: interprocedural mode should find strictly more dropped-error flows")
	}
	interP := analyzeSrcQuiet(prunedApp, Options{})
	intraP := analyzeSrcQuiet(prunedApp, Options{Intraprocedural: true})
	if countCause(intraP, report.CauseNoConnectivityCheck) != 1 || countCause(interP, report.CauseNoConnectivityCheck) != 0 {
		t.Error("pruning should remove the seeded conn-check false positive")
	}
}
