package checkers

import (
	"fmt"
	"sort"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/dex"
	"repro/internal/jimple"
)

// This file is the demand-driven closure engine behind -mode=targeted
// (paper §4.2's "targeted analysis": start from the network-API call
// sites and pull in only the code that can matter, instead of scanning
// the whole app). The closure is computed from dex.MethodRef skim
// records — available both from a lazy decode (dex.Lazy.MethodRefs,
// bodies never decoded) and from a loaded program (dex.MethodRefsOf) —
// so the two scan paths demand the same classes.
//
// The engine computes two sets:
//
//	RM — relevant methods: the summary roots. Seeded by every method
//	     with a top-level call to a registry target API and every
//	     implementation of a registered request-callback subsignature
//	     (the two places the pipeline resolves summaries from), then
//	     grown backward: callers of RM methods (by callee name, which
//	     over-approximates every CHA edge), and — when an RM method
//	     implements an async-dispatch callee (run(), doInBackground(),
//	     onClick(), …) — the callers of that dispatch's trigger
//	     (Thread.start, Handler.post, setOnClickListener, …). With
//	     -icc, methods launching components (startActivity /
//	     sendBroadcast) also join RM, since ICC edges make them
//	     transitive callers of component lifecycles.
//
//	D  — demanded classes: the classes whose bodies the scan decodes
//	     and analyzes. Starts as RM's classes plus (with -icc) every
//	     explicit-intent target class and — if the app broadcasts at
//	     all — every manifest-declared receiver, then closed forward:
//	     anything a demanded class's methods call (by callee name) and
//	     anything they dispatch asynchronously joins D. Forward closure
//	     makes D contain every method any graph traversal (BFS,
//	     CallStack, ReachableFrom) can reach from a demanded entry, so
//	     reachability answers inside the closure equal the whole-app
//	     graph's.
//
// Both closures deliberately over-approximate (name-based caller
// matching, subsig-based dispatch matching, receiver-insensitive intent
// targets): extra classes cost decode time, never correctness. What must
// hold — and what the differential tests pin — is that no method any
// checker consults is missing, so reports and Stats are byte-identical
// to a full scan. DESIGN.md §9 spells out the equivalence argument.

// ICC launch subsignatures, mirroring the switch in callgraph/icc.go.
const (
	iccStartActivitySubsig = "startActivity(android.content.Intent)void"
	iccSendBroadcastSubsig = "sendBroadcast(android.content.Intent)void"
)

// targetedClosure is the converged demand: summary roots, demanded
// classes, and the size counters Diagnostics reports.
type targetedClosure struct {
	roots    []string // RM method keys, sorted; non-nil even when empty
	demanded map[string]bool
	stats    TargetedStats
}

// computeTargetedClosure runs the closure rules over the skim records.
func computeTargetedClosure(records []dex.MethodRef, reg *apimodel.Registry, man *android.Manifest, enableICC bool) targetedClosure {
	// Record indices: declaring class, own name/subsig (backward and
	// forward rules resolve callees against these), and per-callee
	// reverse maps (deduplicated per record).
	byClass := make(map[string][]int)
	recsByName := make(map[string][]int)
	recsBySubsig := make(map[string][]int)
	callersByName := make(map[string][]int)
	callersBySubsig := make(map[string][]int)
	// Subsignatures repeat heavily across records (every onClick, every
	// run()); intern them once and remember each record's own subsig so the
	// rule passes below never re-render one.
	intern := jimple.NewInterner()
	recSub := make([]string, len(records))
	for i := range records {
		r := &records[i]
		byClass[r.Sig.Class] = append(byClass[r.Sig.Class], i)
		recsByName[r.Sig.Name] = append(recsByName[r.Sig.Name], i)
		recSub[i] = intern.SubSigKey(r.Sig)
		recsBySubsig[recSub[i]] = append(recsBySubsig[recSub[i]], i)
		seenName := make(map[string]bool, len(r.Calls))
		seenSub := make(map[string]bool, len(r.Calls))
		for _, c := range r.Calls {
			if !seenName[c.Name] {
				seenName[c.Name] = true
				callersByName[c.Name] = append(callersByName[c.Name], i)
			}
			if sub := intern.SubSigKey(c); !seenSub[sub] {
				seenSub[sub] = true
				callersBySubsig[sub] = append(callersBySubsig[sub], i)
			}
		}
	}

	// Async-dispatch table, keyed both ways: trigger subsig → dispatched
	// callee subsigs (forward rule) and callee subsig → trigger subsigs
	// (backward rule).
	triggerCallees := make(map[string][]string)
	calleeTriggers := make(map[string][]string)
	for _, d := range android.AsyncDispatches() {
		triggerCallees[d.TriggerSubsig] = append(triggerCallees[d.TriggerSubsig], d.CalleeSubsigs...)
		for _, cs := range d.CalleeSubsigs {
			calleeTriggers[cs] = append(calleeTriggers[cs], d.TriggerSubsig)
		}
	}
	callbackSubsigs := make(map[string]bool)
	for _, lib := range reg.Libraries() {
		for _, cb := range lib.Callbacks {
			if cb.ErrorSubsig != "" {
				callbackSubsigs[cb.ErrorSubsig] = true
			}
			if cb.SuccessSubsig != "" {
				callbackSubsigs[cb.SuccessSubsig] = true
			}
		}
	}

	rm := make([]bool, len(records))
	var stack []int
	add := func(i int) {
		if !rm[i] {
			rm[i] = true
			stack = append(stack, i)
		}
	}

	// Network-state handler implementations seed the closure for the
	// offline-state checker (checker5.go): BroadcastReceiver.onReceive and
	// NetworkCallback overrides. Subsig-only matching over-approximates (an
	// onReceive outside a receiver also seeds) — extra decode, never a
	// missed handler.
	networkHandlerSubsigs := map[string]bool{onReceiveSubsig: true}
	for _, sub := range android.NetworkCallbackSubsigs {
		networkHandlerSubsigs[sub] = true
	}

	// Seeds: target-API call sites, registered callback implementations —
	// exactly the methods the pipeline resolves summaries from
	// (discover.go, checker3.go, checker4.go) — plus endpoint-API callers
	// (checker7.go scans them even when no target API is nearby) and
	// network-state handlers (checker5.go).
	seedCount := 0
	for i := range records {
		r := &records[i]
		seed := callbackSubsigs[recSub[i]] || networkHandlerSubsigs[recSub[i]]
		for _, c := range r.Calls {
			if seed {
				break
			}
			if _, _, ok := reg.TargetOf(c); ok {
				seed = true
			} else if _, _, ok := reg.EndpointOf(c); ok {
				seed = true
			}
		}
		if seed {
			seedCount++
			add(i)
		}
	}

	// ICC roots: component launchers are callers through ICC edges.
	sawBroadcast := false
	if enableICC {
		for i := range records {
			for _, c := range records[i].Calls {
				switch intern.SubSigKey(c) {
				case iccStartActivitySubsig:
					add(i)
				case iccSendBroadcastSubsig:
					sawBroadcast = true
					add(i)
				}
			}
		}
	}

	// Backward fixpoint over RM.
	processedName := make(map[string]bool)
	processedTrigger := make(map[string]bool)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := &records[i]
		if n := r.Sig.Name; !processedName[n] {
			processedName[n] = true
			for _, j := range callersByName[n] {
				add(j)
			}
		}
		for _, trig := range calleeTriggers[recSub[i]] {
			if processedTrigger[trig] {
				continue
			}
			processedTrigger[trig] = true
			for _, j := range callersBySubsig[trig] {
				add(j)
			}
		}
	}

	// Forward class fixpoint over D. Only classes with skim records can
	// be demanded: a class with no bodied methods contributes nothing to
	// any stage.
	demanded := make(map[string]bool)
	var cstack []string
	addClass := func(cls string) {
		if demanded[cls] || len(byClass[cls]) == 0 {
			return
		}
		demanded[cls] = true
		cstack = append(cstack, cls)
	}
	for i := range records {
		if rm[i] {
			addClass(records[i].Sig.Class)
		}
	}
	if enableICC {
		// Explicit-intent targets (a superset of what callgraph/icc.go
		// resolves — it additionally requires the setClassName receiver to
		// alias the launched Intent) and, once any broadcast exists, every
		// manifest-declared receiver (icc.go wires sendBroadcast to all of
		// them).
		for i := range records {
			for _, cls := range records[i].Intents {
				addClass(cls)
			}
		}
		if sawBroadcast {
			for _, rcv := range man.Receivers {
				addClass(rcv)
			}
		}
	}
	for len(cstack) > 0 {
		cls := cstack[len(cstack)-1]
		cstack = cstack[:len(cstack)-1]
		for _, i := range byClass[cls] {
			for _, c := range records[i].Calls {
				for _, j := range recsByName[c.Name] {
					addClass(records[j].Sig.Class)
				}
				for _, calleeSub := range triggerCallees[intern.SubSigKey(c)] {
					for _, j := range recsBySubsig[calleeSub] {
						addClass(records[j].Sig.Class)
					}
				}
			}
		}
	}

	roots := make([]string, 0, seedCount)
	nm := 0
	for i := range records {
		if rm[i] {
			nm++
			roots = append(roots, records[i].Sig.Key())
		}
	}
	sort.Strings(roots)
	return targetedClosure{
		roots:    roots,
		demanded: demanded,
		stats: TargetedStats{
			SeedMethods:    seedCount,
			ClosureMethods: nm,
			ClosureClasses: len(demanded),
		},
	}
}

// prepareBuild resolves the engine mode's view of the app before the
// pipeline merges in the framework model. In full mode a lazily opened
// app is simply materialized whole. In targeted mode the closure runs
// over the skim records, freezing a.roots / a.demanded / a.tstats, and
// only the demanded classes are decoded (lazy path) or kept (in-memory
// path — the bodies exist but collectAppMethods skips them). Runs inside
// the "build" stage guard: a materialization failure (bytes changed
// under us — effectively impossible) panics into a recorded ScanError.
func (a *analysis) prepareBuild() {
	lazy := a.app.Lazy
	if a.opts.Mode != ModeTargeted {
		if lazy != nil {
			if err := lazy.MaterializeAll(); err != nil {
				panic(fmt.Sprintf("materialize all: %v", err))
			}
		}
		return
	}
	var records []dex.MethodRef
	if lazy != nil {
		records = lazy.MethodRefs()
	} else {
		records = dex.MethodRefsOf(a.app.Program)
	}
	cl := computeTargetedClosure(records, a.reg, a.app.Manifest, a.opts.EnableICC)
	a.roots = cl.roots
	a.demanded = cl.demanded
	a.tstats = cl.stats
	a.tstats.ClassesDecoded = len(cl.demanded)
	if lazy != nil {
		a.tstats.ClassesSkipped = lazy.NumBodiedClasses() - len(cl.demanded)
		classes := make([]string, 0, len(cl.demanded))
		for cls := range cl.demanded {
			classes = append(classes, cls)
		}
		sort.Strings(classes)
		for _, cls := range classes {
			if err := lazy.Materialize(cls); err != nil {
				panic(fmt.Sprintf("materialize %s: %v", cls, err))
			}
		}
		return
	}
	bodied := 0
	for _, c := range a.app.Program.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				bodied++
				break
			}
		}
	}
	a.tstats.ClassesSkipped = bodied - len(cl.demanded)
}
