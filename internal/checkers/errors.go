package checkers

import (
	"errors"
	"fmt"
	"sort"
)

// The scan-failure taxonomy. Every failure a scan can survive is recorded
// as a ScanError whose Kind is one of these sentinels, so callers can
// classify failures with errors.Is regardless of how many wrapping layers
// (core, the CLI, the corpus harness) sit in between.
var (
	// ErrDecode marks malformed untrusted input: an APK container or dex
	// payload that failed to parse (core.ScanBytes/ScanFile wrap decode
	// failures with it).
	ErrDecode = errors.New("decode failed")
	// ErrStagePanic marks a panic recovered inside a pipeline stage or one
	// of its work units; the ScanError carries the panic message and stack.
	ErrStagePanic = errors.New("stage panicked")
	// ErrDeadline marks a scan that ran out of its Options.Timeout budget
	// (or an already-expired parent context deadline).
	ErrDeadline = errors.New("scan deadline exceeded")
	// ErrCanceled marks a scan cut short by external context cancellation.
	ErrCanceled = errors.New("scan canceled")
)

// ScanError is one structured failure record of a scan. Failures never
// abort the pipeline: the affected stage or work unit is dropped, the
// Result is marked Incomplete, and the ScanError lands in
// Diagnostics.Errors so callers can see exactly what was lost.
type ScanError struct {
	// Kind is the taxonomy sentinel (ErrStagePanic, ErrDeadline, …);
	// errors.Is(e, ErrStagePanic) matches through Unwrap.
	Kind error
	// Stage names the pipeline stage that failed ("" for scan-level
	// failures such as a decode error before the pipeline started).
	Stage string
	// Unit is the work-unit index within the stage (a site or method
	// index), or -1 when the whole stage failed.
	Unit int
	// Msg carries the detail: the panic value, or the context error.
	Msg string
	// Stack is the recovered goroutine stack for panics ("" otherwise).
	Stack string
}

// Error renders the failure without the stack (Stack is kept separately
// for logs and bug reports).
func (e *ScanError) Error() string {
	switch {
	case e.Stage == "":
		return fmt.Sprintf("%v: %s", e.Kind, e.Msg)
	case e.Unit < 0:
		return fmt.Sprintf("stage %s: %v: %s", e.Stage, e.Kind, e.Msg)
	default:
		return fmt.Sprintf("stage %s unit %d: %v: %s", e.Stage, e.Unit, e.Kind, e.Msg)
	}
}

// Unwrap exposes the taxonomy sentinel to errors.Is.
func (e *ScanError) Unwrap() error { return e.Kind }

// Err returns nil for a complete scan, or an error joining every recorded
// ScanError of a degraded one.
func (r *Result) Err() error {
	if !r.Incomplete {
		return nil
	}
	errs := make([]error, len(r.Diagnostics.Errors))
	for i := range r.Diagnostics.Errors {
		errs[i] = &r.Diagnostics.Errors[i]
	}
	return errors.Join(errs...)
}

// stageRank fixes the deterministic order of Diagnostics.Errors: pipeline
// stage order first, unknown stages last.
var stageRank = map[string]int{
	"": 0, "build": 1, "summaries": 2, "discover": 3, "settings": 4,
	"parameters": 5, "notifications": 6, "responses": 7, "retryloops": 8,
}

// sortScanErrors orders errors by (stage, unit, message) so a degraded
// scan's error list is identical for any Options.Workers.
func sortScanErrors(errs []ScanError) {
	sort.SliceStable(errs, func(i, j int) bool {
		ri, okI := stageRank[errs[i].Stage]
		rj, okJ := stageRank[errs[j].Stage]
		if !okI {
			ri = len(stageRank)
		}
		if !okJ {
			rj = len(stageRank)
		}
		if ri != rj {
			return ri < rj
		}
		if errs[i].Unit != errs[j].Unit {
			return errs[i].Unit < errs[j].Unit
		}
		return errs[i].Msg < errs[j].Msg
	})
}
