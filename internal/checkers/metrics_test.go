package checkers

import (
	"reflect"
	"testing"
	"time"
)

// TestCacheStatsCounterMapComplete pins the exporter contract with
// reflection: every CacheStats field must appear in CounterMap, and with a
// value distinguishable from every other field's. Adding a counter to
// CacheStats without exporting it fails here.
func TestCacheStatsCounterMapComplete(t *testing.T) {
	var c CacheStats
	v := reflect.ValueOf(&c).Elem()
	typ := v.Type()
	// Give every field a distinct value so a map entry wired to the wrong
	// field is caught, not just a missing one.
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Type.Kind() != reflect.Int {
			t.Fatalf("CacheStats.%s is %s, not int; extend CounterMap and this test",
				typ.Field(i).Name, typ.Field(i).Type)
		}
		v.Field(i).SetInt(int64(100 + i))
	}
	m := c.CounterMap()
	if len(m) != typ.NumField() {
		t.Fatalf("CounterMap has %d entries, CacheStats has %d fields: a counter is missing from the export",
			len(m), typ.NumField())
	}
	seen := make(map[int64]string, len(m))
	for name, val := range m {
		if val < 100 || val >= int64(100+typ.NumField()) {
			t.Errorf("CounterMap[%q] = %d: not wired to any CacheStats field", name, val)
		}
		if prev, dup := seen[val]; dup {
			t.Errorf("CounterMap[%q] and CounterMap[%q] read the same field", name, prev)
		}
		seen[val] = name
	}
}

// TestMetricsSnapshotFlattensDiagnostics: the snapshot must carry the
// stage timings, totals, and error count the /metrics endpoint exports.
func TestMetricsSnapshotFlattensDiagnostics(t *testing.T) {
	d := Diagnostics{
		Total:      1500 * time.Millisecond,
		AppMethods: 7,
		Sites:      3,
		Errors:     []ScanError{{Kind: ErrDeadline, Stage: "discover", Unit: -1}},
	}
	d.add("build", 200*time.Millisecond, 7, 0)
	d.add("settings", 100*time.Millisecond, 3, 2)
	d.Cache.StoreHits = 4

	snap := d.MetricsSnapshot()
	if snap.TotalSeconds != 1.5 || snap.AppMethods != 7 || snap.Sites != 3 {
		t.Errorf("totals wrong: %+v", snap)
	}
	if snap.ScanErrors != 1 {
		t.Errorf("ScanErrors = %d, want 1", snap.ScanErrors)
	}
	if snap.Reports != 2 {
		t.Errorf("Reports = %d, want 2", snap.Reports)
	}
	if len(snap.Stages) != 2 || snap.Stages[0].Name != "build" || snap.Stages[1].Name != "settings" {
		t.Fatalf("stages wrong: %+v", snap.Stages)
	}
	if snap.Stages[1].Seconds != 0.1 || snap.Stages[1].Items != 3 || snap.Stages[1].Reports != 2 {
		t.Errorf("settings stage wrong: %+v", snap.Stages[1])
	}
	if snap.Counters["store_hits"] != 4 {
		t.Errorf("Counters[store_hits] = %d, want 4", snap.Counters["store_hits"])
	}
}
