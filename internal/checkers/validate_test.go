package checkers

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/report"
)

// countVerdicts tallies the verdicts stamped on a result's reports.
func countVerdicts(res *Result) map[string]int {
	m := make(map[string]int)
	for i := range res.Reports {
		m[res.Reports[i].Validation]++
	}
	return m
}

// TestValidateAssignsVerdictToEveryReport is the acceptance criterion:
// with Options.Validate every warning is partitioned into exactly one of
// confirmed / unconfirmed / not-validated, at least one warning of the
// canonical buggy corpus is dynamically Confirmed, and the diagnostics
// counters agree with the per-report verdicts. Without the option the
// reports are byte-identical to the historical output (no verdict
// fields).
func TestValidateAssignsVerdictToEveryReport(t *testing.T) {
	src := multiClassApp()

	plain := analyzeSrcQuiet(src, Options{Workers: 1})
	if plain.Incomplete || len(plain.Reports) == 0 {
		t.Fatalf("plain scan broken: incomplete=%v reports=%d", plain.Incomplete, len(plain.Reports))
	}
	for i := range plain.Reports {
		if plain.Reports[i].Validation != "" || plain.Reports[i].ValidationNote != "" {
			t.Fatalf("report %d carries a verdict without Options.Validate: %q", i, plain.Reports[i].Validation)
		}
	}

	res := analyzeSrcQuiet(src, Options{Workers: 1, Validate: true})
	if res.Incomplete {
		t.Fatalf("validated scan degraded: %v", res.Err())
	}
	if len(res.Reports) != len(plain.Reports) {
		t.Fatalf("validation changed the warning count: %d vs %d", len(res.Reports), len(plain.Reports))
	}
	verdicts := countVerdicts(res)
	if verdicts[""] != 0 {
		t.Errorf("%d reports left without a verdict", verdicts[""])
	}
	if verdicts[report.ValidationConfirmed] == 0 {
		t.Errorf("no warning confirmed on the canonical buggy corpus; verdicts: %v", verdicts)
	}
	for i := range res.Reports {
		v := res.Reports[i].Validation
		if v != report.ValidationConfirmed && v != report.ValidationUnconfirmed && v != report.ValidationNotValidated {
			t.Errorf("report %d has verdict %q outside the taxonomy", i, v)
		}
	}

	vs := res.Diagnostics.Validate
	if got := vs.Confirmed + vs.Unconfirmed + vs.NotValidated; got != len(res.Reports) {
		t.Errorf("diagnostics count %d verdicts, want %d", got, len(res.Reports))
	}
	if vs.Confirmed != verdicts[report.ValidationConfirmed] ||
		vs.Unconfirmed != verdicts[report.ValidationUnconfirmed] ||
		vs.NotValidated != verdicts[report.ValidationNotValidated] {
		t.Errorf("diagnostics %+v disagree with per-report verdicts %v", vs, verdicts)
	}
	if vs.Replays == 0 {
		t.Error("diagnostics recorded no replays")
	}
}

// TestValidatePanicDegradesOneWarning: a replay that panics loses only
// that warning's verdict — the pipeline sweep stamps it NotValidated, the
// rest validate normally, and the scan is degraded (blocking cachewrite),
// never aborted.
func TestValidatePanicDegradesOneWarning(t *testing.T) {
	src := multiClassApp()
	opts := Options{Workers: 1, Validate: true}
	opts.unitHook = func(s string, unit int) {
		if s == "validate" && unit == 0 {
			panic("injected replay fault")
		}
	}
	res := analyzeSrcQuiet(src, opts)
	if !res.Incomplete {
		t.Fatal("panicking replay not marked Incomplete")
	}
	if err := res.Err(); !errors.Is(err, ErrStagePanic) {
		t.Errorf("Err()=%v, want ErrStagePanic", err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("degraded validation dropped the reports")
	}
	first := &res.Reports[0]
	if first.Validation != report.ValidationNotValidated || first.ValidationNote != "validation did not complete" {
		t.Errorf("panicked unit's report = (%q, %q), want swept NotValidated", first.Validation, first.ValidationNote)
	}
	validated := 0
	for i := 1; i < len(res.Reports); i++ {
		if res.Reports[i].Validation == "" {
			t.Errorf("report %d has no verdict after single-unit panic", i)
		}
		if res.Reports[i].ValidationNote != "validation did not complete" {
			validated++
		}
	}
	if validated == 0 {
		t.Error("no other warning was validated; the panic was not isolated to one unit")
	}
}

// TestValidateCancelMarksRemainderNotValidated: a context canceled
// mid-validation stops replaying promptly, records ErrCanceled once, and
// the unreached warnings are swept to NotValidated — every report still
// carries a verdict.
func TestValidateCancelMarksRemainderNotValidated(t *testing.T) {
	src := multiClassApp()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Workers: 1, Validate: true}
	opts.unitHook = func(s string, unit int) {
		if s == "validate" && unit == 0 {
			cancel()
		}
	}
	res := analyzeCtx(ctx, src, opts)
	if !res.Incomplete {
		t.Fatal("canceled validation not marked Incomplete")
	}
	if err := res.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err()=%v, want ErrCanceled", err)
	}
	if len(res.Reports) < 2 {
		t.Fatalf("test app yields %d reports; cannot observe a swept remainder", len(res.Reports))
	}
	for i := range res.Reports {
		if res.Reports[i].Validation == "" {
			t.Errorf("report %d has no verdict after cancellation", i)
		}
	}
	for i := 1; i < len(res.Reports); i++ {
		if res.Reports[i].Validation != report.ValidationNotValidated {
			t.Errorf("report %d reached verdict %q after cancellation at unit 0", i, res.Reports[i].Validation)
		}
	}
}

// TestValidateDeterministicAcrossWorkers: verdicts and notes are part of
// the rendered report, so the byte-identical-across-workers guarantee
// extends to them.
func TestValidateDeterministicAcrossWorkers(t *testing.T) {
	src := multiClassApp()
	seq := analyzeSrcQuiet(src, Options{Workers: 1, Validate: true})
	if seq.Incomplete || len(seq.Reports) == 0 {
		t.Fatalf("sequential validated scan broken: incomplete=%v reports=%d", seq.Incomplete, len(seq.Reports))
	}
	want := renderAll(seq)
	for _, workers := range []int{2, 8} {
		par := analyzeSrcQuiet(src, Options{Workers: workers, Validate: true})
		if got := renderAll(par); got != want {
			t.Errorf("Workers=%d validated reports differ from Workers=1:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestValidateVerdictsSurviveCacheRoundTrip: verdicts persist through the
// result cache — a warm scan restores them byte-identically without
// re-running a single replay.
func TestValidateVerdictsSurviveCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := multiClassApp()
	opts := Options{Workers: 1, Validate: true, CacheDir: dir, CacheMode: CacheRW}

	cold := analyzeSrcQuiet(src, opts)
	if cold.Incomplete || len(cold.Reports) == 0 {
		t.Fatalf("cold scan broken: incomplete=%v reports=%d", cold.Incomplete, len(cold.Reports))
	}
	warm := analyzeSrcQuiet(src, opts)
	if warm.Diagnostics.Cache.StoreHits == 0 {
		t.Fatalf("warm scan missed the result cache: %+v", warm.Diagnostics.Cache)
	}
	if warm.Diagnostics.Validate.Replays != 0 {
		t.Errorf("warm scan re-ran %d replays; verdicts should restore from cache", warm.Diagnostics.Validate.Replays)
	}
	if got, want := renderAll(warm), renderAll(cold); got != want {
		t.Errorf("cached verdicts differ from cold scan:\n--- cold ---\n%s--- warm ---\n%s", want, got)
	}
	for i := range warm.Reports {
		if warm.Reports[i].Validation == "" {
			t.Errorf("restored report %d lost its verdict", i)
		}
	}

	// A validated and an unvalidated scan of the same app must not answer
	// each other: the options fingerprint separates the cache entries.
	plain := analyzeSrcQuiet(src, Options{Workers: 1, CacheDir: dir, CacheMode: CacheRW})
	for i := range plain.Reports {
		if plain.Reports[i].Validation != "" {
			t.Fatalf("unvalidated scan restored a validated cache entry (report %d = %q)",
				i, plain.Reports[i].Validation)
		}
	}
}

// spinLoopActivity never leaves its request loop even when requests
// succeed, so every replay — baseline included — dies on the step budget.
const spinLoopActivity = `class t.Spin extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local e java.io.IOException
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    L0:
    goto L1
    L1:
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    L2:
    goto L0
    L3:
    e = caught
    goto L0
    trap L1 L2 L3 java.io.IOException
  }
}`

// TestValidateBudgetExhaustionIsNotValidated is the satellite-3 verdict:
// a warning whose witness replay cannot finish within the step budget is
// NotValidated — an honest "could not check" — never a false Unconfirmed
// that would undermine the false-positive statistics.
func TestValidateBudgetExhaustionIsNotValidated(t *testing.T) {
	res := analyzeSrcQuiet(spinLoopActivity, Options{Workers: 1, Validate: true})
	if res.Incomplete || len(res.Reports) == 0 {
		t.Fatalf("scan broken: incomplete=%v reports=%d", res.Incomplete, len(res.Reports))
	}
	for i := range res.Reports {
		r := &res.Reports[i]
		if r.Validation != report.ValidationNotValidated {
			t.Errorf("%s: verdict %q (%s), want not-validated on a budget-bound replay",
				r.Cause, r.Validation, r.ValidationNote)
		}
	}
}

// TestValidateConfirmsRunawayLoop: for CauseAggressiveRetryLoop — and
// only there — exhausting the budget under an injected fault IS the
// predicted defect, so the warning is Confirmed as a runaway loop. The
// fixture's loop exits on the first success, so the NetOK baseline stays
// within budget and only the disruption scenarios spin.
func TestValidateConfirmsRunawayLoop(t *testing.T) {
	res := analyzeSrcQuiet(retryLoopNoBackoff, Options{Workers: 1, Validate: true})
	if res.Incomplete || len(res.Reports) == 0 {
		t.Fatalf("scan broken: incomplete=%v reports=%d", res.Incomplete, len(res.Reports))
	}
	found := false
	for i := range res.Reports {
		r := &res.Reports[i]
		if r.Cause != report.CauseAggressiveRetryLoop {
			continue
		}
		found = true
		if r.Validation != report.ValidationConfirmed || !strings.Contains(r.ValidationNote, "runaway-loop") {
			t.Errorf("retry-loop warning = (%q, %q), want confirmed runaway-loop", r.Validation, r.ValidationNote)
		}
	}
	if !found {
		t.Fatal("no CauseAggressiveRetryLoop warning on the retry-loop fixture")
	}
}
