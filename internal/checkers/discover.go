package checkers

import (
	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/callgraph"
	"repro/internal/dataflow"
	"repro/internal/jimple"
)

// discoverSites performs the reachability analysis of §4.4: it finds every
// target-API call site, determines which entry points reach it, and
// resolves its context (user vs. background, HTTP method) and config-API
// call set. Methods are scanned in parallel; site order is the methods'
// sorted-key order, matching the sequential scan.
func (a *analysis) discoverSites() findings {
	perMethod := make([][]*requestSite, len(a.methods))
	a.parallelFor("discover", len(a.methods), func(i int) {
		perMethod[i] = a.discoverMethodSites(a.methods[i])
	})
	var f findings
	for _, sites := range perMethod {
		for _, site := range sites {
			a.sites = append(a.sites, site)
			f.stats.Requests++
			if site.userInitiated {
				f.stats.UserRequests++
			}
			if site.lib.HasRetryAPIs {
				f.stats.RetryEvalRequests++
			}
		}
	}
	return f
}

// discoverMethodSites finds and resolves the request sites of one method.
func (a *analysis) discoverMethodSites(m *jimple.Method) []*requestSite {
	var out []*requestSite
	mKey := a.methodKey(m)
	var entries []callgraph.Entry
	entriesResolved := false
	for i, s := range m.Body {
		inv, ok := jimple.InvokeOf(s)
		if !ok {
			continue
		}
		lib, target, isTarget := a.reg.TargetOf(inv.Callee)
		if !isTarget {
			continue
		}
		if !entriesResolved {
			entries = a.ctx.EntriesReaching(mKey)
			entriesResolved = true
		}
		if len(entries) == 0 {
			// Dead code: the paper's tool only reports requests
			// reachable from an entry point.
			continue
		}
		site := &requestSite{
			method: m, stmt: i, inv: inv, lib: lib, target: target,
		}
		a.resolveContext(site, entries)
		a.resolveConfig(site)
		out = append(out, site)
	}
	return out
}

// resolveContext decides user vs. background per §4.4.2: entry points in
// Activity classes are user-initiated; Service entries are background.
// A request reachable from both is treated as user-initiated (the stricter
// notification obligations apply).
func (a *analysis) resolveContext(site *requestSite, entries []callgraph.Entry) {
	site.kind = android.KindOther
	for _, e := range entries {
		switch e.Kind {
		case android.KindActivity:
			site.userInitiated = true
			site.kind = android.KindActivity
			site.component = e.Component
			site.entrySig = e.Method.Sig
		case android.KindService:
			if !site.userInitiated {
				site.kind = android.KindService
				site.component = e.Component
				site.entrySig = e.Method.Sig
			}
		default:
			if site.component == "" {
				site.kind = e.Kind
				site.component = e.Component
				site.entrySig = e.Method.Sig
			}
		}
	}
	site.httpMethod = site.target.HTTPMethod
	if site.lib.Key == apimodel.LibVolley {
		site.httpMethod = a.resolveVolleyMethod(site)
	}
}

// resolveVolleyMethod recovers the HTTP method of a Volley request from
// the Request constructor's first argument (Method.GET = 0, POST = 1).
func (a *analysis) resolveVolleyMethod(site *requestSite) string {
	reqLocal, ok := argLocal(site.inv, 0)
	if !ok {
		return ""
	}
	m := site.method
	rd := a.ctx.ReachDefs(m)
	cp := a.ctx.ConstProp(m)
	for _, alloc := range dataflow.AllocSitesOf(rd, site.stmt, reqLocal) {
		local := rd.DefOfStmt(alloc)
		// Find the constructor invocation on the allocated local.
		for j := alloc + 1; j < len(m.Body); j++ {
			inv, ok := jimple.InvokeOf(m.Body[j])
			if !ok || inv.Kind != jimple.InvokeSpecial || inv.Base != local || inv.Callee.Name != "<init>" {
				continue
			}
			if len(inv.Args) == 0 {
				break
			}
			if v, ok := cp.ArgInt(j, inv, 0); ok {
				if v == apimodel.VolleyMethodPost {
					return "POST"
				}
				return "GET"
			}
			break
		}
	}
	return ""
}

// resolveConfig runs the taint step of §4.4.1: locate the config object
// (client or request), collect every call on its aliases, and record which
// timeout/retry config APIs were used with what arguments.
func (a *analysis) resolveConfig(site *requestSite) {
	m := site.method
	g := a.ctx.CFG(m)
	rd := a.ctx.ReachDefs(m)
	if a.opts.DisableTaintConfigDiscovery {
		// Ablation: accept any config call anywhere in the method.
		for i, s := range m.Body {
			if inv, ok := jimple.InvokeOf(s); ok {
				if _, _, isCfg := a.reg.ConfigOf(inv.Callee); isCfg {
					site.configCalls = append(site.configCalls, dataflow.ObjectCall{Stmt: i, Callee: inv.Callee})
				}
			}
		}
	} else {
		var obj string
		if site.target.ConfigObjArg < 0 {
			obj = site.inv.Base
		} else if l, ok := argLocal(site.inv, site.target.ConfigObjArg); ok {
			obj = l
		}
		site.configObj = obj
		if obj != "" {
			// Interprocedural mode also sees config calls the object's
			// aliases receive inside helper methods (the client configured
			// in a helper, or built by a factory) — §4.4.1's cross-method
			// alias tracking via the callee summaries.
			site.configCalls = dataflow.CallsOnObjectInter(g, rd, site.stmt, obj, a.summaryResolver(m))
		}
	}
	cp := a.ctx.ConstProp(m)
	defaults := site.lib.Defaults
	site.retryCount, site.retryKnown = defaults.Retries, true
	for _, oc := range site.configCalls {
		_, cfgAPI, ok := a.reg.ConfigOf(oc.Callee)
		if !ok {
			continue
		}
		switch cfgAPI.Kind {
		case apimodel.ConfigTimeout:
			site.timeoutSet = true
		case apimodel.ConfigRetry:
			site.retrySet = true
			if cfgAPI.CountArg >= 0 {
				if oc.Args != nil {
					// A summary-discovered call: the count was folded in
					// the helper's own constant-propagation context.
					if cfgAPI.CountArg < len(oc.Args) && oc.Args[cfgAPI.CountArg].Known {
						site.retryCount, site.retryKnown = int(oc.Args[cfgAPI.CountArg].V), true
						continue
					}
					site.retryKnown = false
					continue
				}
				if inv, okInv := jimple.InvokeOf(m.Body[oc.Stmt]); okInv {
					if v, okV := cp.ArgInt(oc.Stmt, inv, cfgAPI.CountArg); okV {
						site.retryCount, site.retryKnown = int(v), true
						continue
					}
				}
				site.retryKnown = false
			} else {
				// A policy-object API: retries configured but the count
				// is opaque.
				site.retryKnown = false
			}
		}
	}
}
