package checkers

import (
	"fmt"

	"repro/internal/apimodel"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/jimple"
	"repro/internal/report"
)

// checkResponses implements Pattern 4 (paper §4.4.4): taint the response
// object from its definition (the return value of a synchronous request,
// or the parameter of a success callback) and raise an alarm when a path
// exists from the definition to a use with no validity check on it. A
// validity check is either a response-checking API call (isSuccessful /
// isSuccess) or an explicit null test on an alias of the response.
func (a *analysis) checkResponses() findings {
	// Synchronous targets: response = LHS at the request site.
	siteUnits := make([]findings, len(a.sites))
	a.parallelFor("responses", len(a.sites), func(i int) {
		a.checkSiteResponse(a.sites[i], &siteUnits[i])
	})
	// Asynchronous success callbacks: the response arrives as a parameter.
	cbUnits := a.checkCallbackResponses()
	f := mergeFindings(siteUnits)
	cb := mergeFindings(cbUnits)
	f.reports = append(f.reports, cb.reports...)
	f.stats.add(&cb.stats)
	return f
}

func (a *analysis) checkSiteResponse(site *requestSite, f *findings) {
	if !site.lib.HasRespCheckAPIs() || !site.target.ReturnsResponse {
		return
	}
	f.stats.RespRequests++
	asg, ok := site.method.Body[site.stmt].(*jimple.AssignStmt)
	if !ok {
		return // response discarded: nothing to use, nothing to check
	}
	respLocal, ok := asg.LHS.(jimple.Local)
	if !ok {
		return
	}
	if useStmt, missing := a.findUncheckedUse(site.method, site.stmt, respLocal.Name); missing {
		f.stats.RespMissCheck++
		r := a.newReport(site, report.CauseNoResponseCheck,
			fmt.Sprintf("Response of %s.%s() used without a validity check",
				jimple.SimpleName(site.inv.Callee.Class), site.inv.Callee.Name))
		r.Location = report.Loc{Method: site.method.Sig, Stmt: useStmt}
		f.report(r)
	}
}

// checkCallbackResponses scans app classes implementing a library success
// callback whose parameter type has response-check APIs (OkHttp's
// Callback.onResponse). The (library, callback, class) work list is built
// sequentially so unit order matches the historical scan order, then the
// method bodies are analyzed in parallel.
func (a *analysis) checkCallbackResponses() []findings {
	type cbWork struct {
		m   *jimple.Method
		lib *apimodel.Library
	}
	var work []cbWork
	for _, lib := range a.reg.Libraries() {
		if !lib.HasRespCheckAPIs() {
			continue
		}
		for i := range lib.Callbacks {
			cb := &lib.Callbacks[i]
			sig, err := jimple.ParseSigKey(cb.Iface + "." + cb.SuccessSubsig)
			if err != nil {
				continue
			}
			for _, cls := range a.app.Program.Classes() {
				if !a.h.IsSubtype(cls.Name, cb.Iface) {
					continue
				}
				m := cls.Method(sig.SubSigKey())
				if m == nil || !m.HasBody() {
					continue
				}
				work = append(work, cbWork{m: m, lib: lib})
			}
		}
	}
	units := make([]findings, len(work))
	a.parallelFor("responses", len(work), func(i int) {
		a.checkCallbackResponseBody(work[i].m, work[i].lib, &units[i])
	})
	return units
}

func (a *analysis) checkCallbackResponseBody(m *jimple.Method, lib *apimodel.Library, f *findings) {
	// Find the identity assignment binding the response parameter.
	for i, s := range m.Body {
		asg, ok := s.(*jimple.AssignStmt)
		if !ok {
			continue
		}
		p, isParam := asg.RHS.(jimple.ParamRef)
		if !isParam || !isResponseType(p.Type, lib) {
			continue
		}
		respLocal, isLocal := asg.LHS.(jimple.Local)
		if !isLocal {
			continue
		}
		f.stats.RespRequests++
		if useStmt, missing := a.findUncheckedUse(m, i, respLocal.Name); missing {
			f.stats.RespMissCheck++
			ctx := report.Context{Component: jimple.OuterClass(m.Sig.Class), UserInitiated: true}
			r := report.Report{
				Cause:         report.CauseNoResponseCheck,
				Lib:           lib.Key,
				Message:       "Callback response used without a validity check",
				Location:      report.Loc{Method: m.Sig, Stmt: useStmt},
				Impacts:       report.Impacts(report.CauseNoResponseCheck),
				Context:       ctx,
				FixSuggestion: report.Suggest(report.CauseNoResponseCheck, ctx, lib),
			}
			f.report(r)
		}
		return
	}
}

func isResponseType(t string, lib *apimodel.Library) bool {
	for _, rc := range lib.RespChecks {
		if rc.Sig.Class == t {
			return true
		}
	}
	return false
}

// findUncheckedUse taints the response local from defStmt forward and
// looks for the first statement that reads the response's payload while
// the "validated" must-fact is still false on some path. It returns the
// offending use statement.
//
// In interprocedural mode the analysis runs over the feasibility-pruned
// CFG (uses witnessed only on statically-false branches vanish), the
// taint flows through callee summaries, a call into a helper that
// validates the response on all its paths establishes the check, and a
// helper that reads the payload without checking (UncheckedUse on the
// bound parameter) counts as the use — §4.4.4's helper-method flows.
func (a *analysis) findUncheckedUse(m *jimple.Method, defStmt int, local string) (int, bool) {
	g := a.checkGraph(m)
	resolve := a.summaryResolver(m)
	opts := dataflow.DefaultTaintOptions()
	opts.CalleeSummaries = resolve
	taint := dataflow.ForwardTaint(g, map[int][]string{defStmt: {local}}, opts)
	aliasAt := func(stmt int, name string) bool {
		return name == local && stmt == defStmt || taint.TaintedAt(stmt, name)
	}
	checked := a.mustCheckedFacts(g, m, aliasAt, resolve)
	for i, s := range m.Body {
		if i <= defStmt {
			continue
		}
		inv, ok := jimple.InvokeOf(s)
		if !ok || checked[i] {
			continue
		}
		var sums []*dataflow.TaintSummary
		if resolve != nil {
			sums = resolve(i)
		}
		if inv.Base != "" && aliasAt(i, inv.Base) && !a.reg.IsRespCheck(inv.Callee) {
			if len(sums) == 0 {
				// Any unsummarized call on the response (getBody,
				// getEntity, read, …) reads the payload and counts as a
				// use.
				return i, true
			}
			// A summarized (app) callee is judged by its summary below:
			// a helper that never touches the payload is not a use.
		}
		for _, sum := range sums {
			for _, t := range dataflow.BoundTokens(inv, sum, func(name string) bool { return aliasAt(i, name) }) {
				if sum.UncheckedUse&(1<<uint(t)) != 0 {
					return i, true
				}
			}
		}
	}
	return 0, false
}

// mustCheckedFacts runs a forward must-analysis: fact[i] is true when
// every path reaching statement i has validated the response (null test
// or response-check API on an alias — or, with summaries, a call into a
// helper whose summary validates the bound response on all its paths).
func (a *analysis) mustCheckedFacts(g *cfg.Graph, m *jimple.Method, aliasAt func(int, string) bool, resolve dataflow.SummaryResolver) []bool {
	n := g.NumNodes()
	// Optimistic initialization: a must-analysis starts at TOP (true) and
	// lowers to the greatest fixpoint; starting at false would be sticky
	// around loop back edges.
	in := make([]bool, n)
	out := make([]bool, n)
	for i := range in {
		in[i] = true
		out[i] = true
	}
	gen := func(i int) bool {
		if i >= len(m.Body) {
			return false
		}
		s := m.Body[i]
		if inv, ok := jimple.InvokeOf(s); ok {
			if inv.Base != "" && aliasAt(i, inv.Base) && a.reg.IsRespCheck(inv.Callee) {
				return true
			}
			if resolve != nil {
				// A call validating through every summarized callee (each
				// checks some bound alias token on all its paths)
				// establishes the fact here too.
				if sums := resolve(i); len(sums) > 0 {
					all := true
					for _, sum := range sums {
						validated := false
						for _, t := range dataflow.BoundTokens(inv, sum, func(name string) bool { return aliasAt(i, name) }) {
							if sum.ValidatedAllPaths&(1<<uint(t)) != 0 {
								validated = true
								break
							}
						}
						if !validated {
							all = false
							break
						}
					}
					if all {
						return true
					}
				}
			}
		}
		if iff, ok := s.(*jimple.IfStmt); ok {
			if isNullTestOnAlias(iff.Cond, i, aliasAt) {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			newIn := u != 0 // meet identity; entry starts unchecked
			for _, p := range g.Preds(u) {
				newIn = newIn && out[p]
			}
			if u == 0 {
				newIn = false
			}
			newOut := newIn || gen(u)
			if newIn != in[u] || newOut != out[u] {
				in[u], out[u] = newIn, newOut
				changed = true
			}
		}
	}
	return in
}

func isNullTestOnAlias(cond jimple.Value, stmt int, aliasAt func(int, string) bool) bool {
	be, ok := cond.(jimple.BinExpr)
	if !ok || (be.Op != jimple.OpEQ && be.Op != jimple.OpNE) {
		return false
	}
	lLocal, lIsLocal := be.L.(jimple.Local)
	rLocal, rIsLocal := be.R.(jimple.Local)
	_, lIsNull := be.L.(jimple.NullConst)
	_, rIsNull := be.R.(jimple.NullConst)
	if lIsLocal && rIsNull {
		return aliasAt(stmt, lLocal.Name)
	}
	if rIsLocal && lIsNull {
		return aliasAt(stmt, rLocal.Name)
	}
	return false
}
