package checkers

import "fmt"

// EngineMode selects how the scan pipeline traverses the app: the classic
// whole-app pass, or the demand-driven targeted engine that starts from
// the registry's network-API sites and grows a closure inward (callers,
// async/ICC dispatchers, receiver factories, error-handler callees).
// Reports, stats, and scan errors are byte-identical between the modes —
// the differential harness in internal/experiments pins that — only
// Diagnostics (work counts, cache traffic) may differ.
type EngineMode uint8

const (
	// ModeFull (the zero value) analyzes every app method, as all
	// pre-targeted engine revisions did.
	ModeFull EngineMode = iota
	// ModeTargeted restricts decoding, summaries, and checker domains to
	// the demand-driven closure of the discovered target sites.
	ModeTargeted
)

// String renders the mode as its flag spelling (full, targeted).
func (m EngineMode) String() string {
	if m == ModeTargeted {
		return "targeted"
	}
	return "full"
}

// ParseEngineMode parses the -mode flag values full and targeted.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "full":
		return ModeFull, nil
	case "targeted":
		return ModeTargeted, nil
	}
	return ModeFull, fmt.Errorf("invalid engine mode %q (want full or targeted)", s)
}
