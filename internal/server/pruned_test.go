package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestPrunedJobIs410NotFound404: a polling client must be able to tell an
// expired job ("your report is gone, resubmit") from a wrong id ("you
// never had this job"). Before the tombstone set, both were 404.
func TestPrunedJobIs410NotFound404(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{Retain: 1})

	first := submit(t, ts, app, "")
	await(t, ts, first)
	second := submit(t, ts, app, "")
	await(t, ts, second)

	code, body := getBody(t, ts.URL+"/scan/"+first)
	if code != http.StatusGone {
		t.Errorf("pruned job = %d, want 410 Gone; body: %s", code, body)
	}
	if !strings.Contains(body, "expired") {
		t.Errorf("410 body should say the job expired, got: %s", body)
	}
	if code, _ := getBody(t, ts.URL+"/scan/"+second); code != http.StatusOK {
		t.Errorf("retained job = %d, want 200", code)
	}
	if code, _ := getBody(t, ts.URL+"/scan/job-never-submitted"); code != http.StatusNotFound {
		t.Errorf("unknown id = %d, want 404", code)
	}
}

// TestTombstoneSetIsBounded: the pruned-id memory must not grow without
// bound on a long-lived server; oldest tombstones are evicted FIFO.
func TestTombstoneSetIsBounded(t *testing.T) {
	s := New(Config{Retain: 1, Logger: quietLogger()})
	bound := s.tombstoneBound()
	s.mu.Lock()
	for i := 0; i < bound+10; i++ {
		s.retainLocked(fmt.Sprintf("job-%d", i))
	}
	nTombstones := len(s.pruned)
	oldestRemembered := s.pruned["job-0"]
	newestPruned := s.pruned[fmt.Sprintf("job-%d", bound+8)]
	s.mu.Unlock()

	if nTombstones > bound {
		t.Errorf("tombstone set grew to %d, bound is %d", nTombstones, bound)
	}
	if oldestRemembered {
		t.Error("oldest tombstone should have been evicted")
	}
	if !newestPruned {
		t.Error("recently pruned id lost its tombstone")
	}
}
