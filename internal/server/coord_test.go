package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/promtext"
	"repro/internal/report"
)

// newTestCoordinator builds a coordinator behind httptest with cleanup.
func newTestCoordinator(t *testing.T, cfg CoordConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Errorf("coordinator Shutdown: %v", err)
		}
	})
	return c, ts
}

// newFleetWorkerServer builds a real worker Server behind httptest and
// registers it with the coordinator.
func newFleetWorkerServer(t *testing.T, c *Coordinator, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := newTestServer(t, cfg)
	if err := c.Register(ts.URL); err != nil {
		t.Fatalf("Register(%s): %v", ts.URL, err)
	}
	return s, ts
}

// fakeWorker simulates a worker over the /scansync wire protocol with an
// injectable scan delay — the fault-injection half of the fleet tests. A
// canceled request (a lost hedge) abandons the scan like a real worker.
func fakeWorker(t *testing.T, delay time.Duration, reportText string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "# HELP nchecker_jobs_submitted_total Scan jobs accepted.\n# TYPE nchecker_jobs_submitted_total counter\nnchecker_jobs_submitted_total 0\n")
	})
	mux.HandleFunc("POST /scansync", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		json.NewEncoder(w).Encode(&Job{
			ID: "sync-1", Status: StatusDone, Requests: 1, Warnings: 1, ReportText: reportText,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestFleetScanMatchesSingleProcess: a fleet of three real workers
// produces byte-identical report text to a direct core scan — the
// differential contract the multi-process suite re-proves across OS
// process boundaries.
func TestFleetScanMatchesSingleProcess(t *testing.T) {
	app := fixtureAppBytes(t)
	c, ts := newTestCoordinator(t, CoordConfig{})
	for i := 0; i < 3; i++ {
		newFleetWorkerServer(t, c, Config{})
	}

	direct, err := core.New().ScanBytes(app)
	if err != nil {
		t.Fatalf("direct scan: %v", err)
	}
	wantText := report.RenderAll(direct.Reports)

	job := await(t, ts, submit(t, ts, app, "?name=demo.apk"))
	if job.Status != StatusDone || job.Degraded {
		t.Fatalf("fleet job = %+v, want clean done", job)
	}
	if job.ReportText != wantText {
		t.Errorf("fleet report text differs from direct scan:\n--- fleet ---\n%s\n--- direct ---\n%s", job.ReportText, wantText)
	}
	if job.Warnings != len(direct.Reports) || job.Requests != direct.Stats.Requests {
		t.Errorf("fleet counters (%d, %d) disagree with direct (%d, %d)",
			job.Warnings, job.Requests, len(direct.Reports), direct.Stats.Requests)
	}
	if job.Worker == "" || job.Attempts != 1 {
		t.Errorf("fleet telemetry: worker=%q attempts=%d, want a worker and 1 attempt", job.Worker, job.Attempts)
	}

	// An undecodable container fails deterministically without retries.
	bad := await(t, ts, submit(t, ts, []byte("not an apk"), ""))
	if bad.Status != StatusFailed || bad.Error == "" {
		t.Fatalf("garbage job = %+v, want failed", bad)
	}
	if bad.Attempts != 1 {
		t.Errorf("deterministic failure took %d attempts, want 1 (no retry)", bad.Attempts)
	}
}

// TestRendezvousShardingIsStableAndMinimallyDisruptive: the placement
// function spreads keys across workers, is deterministic, and removing
// one worker moves only the keys that worker owned.
func TestRendezvousShardingIsStableAndMinimallyDisruptive(t *testing.T) {
	workers := []*fleetWorker{{url: "http://a"}, {url: "http://b"}, {url: "http://c"}}
	const n = 300
	counts := map[string]int{}
	owner := make([]*fleetWorker, n)
	for i := 0; i < n; i++ {
		shard := sha256.Sum256([]byte(fmt.Sprintf("app-%d", i)))
		owner[i] = rendezvousOwner(shard, workers)
		counts[owner[i].url]++
		if again := rendezvousOwner(shard, workers); again != owner[i] {
			t.Fatalf("placement not deterministic for key %d", i)
		}
	}
	for _, w := range workers {
		if counts[w.url] < n/6 {
			t.Errorf("worker %s owns only %d/%d keys — placement badly skewed", w.url, counts[w.url], n)
		}
	}
	// Remove worker b: keys owned by a or c must not move.
	survivors := []*fleetWorker{workers[0], workers[2]}
	for i := 0; i < n; i++ {
		if owner[i] == workers[1] {
			continue
		}
		shard := sha256.Sum256([]byte(fmt.Sprintf("app-%d", i)))
		if rendezvousOwner(shard, survivors) != owner[i] {
			t.Fatalf("key %d moved although its owner survived", i)
		}
	}
}

// TestWorkerDeathRequeuesAndCompletes: killing a worker mid-fleet marks
// it down and its jobs finish on the survivor — the in-process twin of
// the kill-a-worker corpus run in the multi-process suite.
func TestWorkerDeathRequeuesAndCompletes(t *testing.T) {
	app := fixtureAppBytes(t)
	c, ts := newTestCoordinator(t, CoordConfig{})
	// The dead worker is the only one live at submission time, so every
	// job must be dispatched to it; its death orphans them all.
	dead := fakeWorker(t, 0, "fake\n")
	if err := c.Register(dead.URL); err != nil {
		t.Fatal(err)
	}
	dead.Close() // dies before it ever answers a dispatch

	ids := make([]string, 6)
	for i := range ids {
		ids[i] = submit(t, ts, app, fmt.Sprintf("?name=a%d", i))
	}
	_, survivors := newFleetWorkerServer(t, c, Config{})
	for i, id := range ids {
		job := await(t, ts, id)
		if job.Status != StatusDone || job.Degraded {
			t.Fatalf("job %d = %+v, want clean done via survivor", i, job)
		}
		if job.Worker != survivors.URL {
			t.Errorf("job %d finished on %q, want survivor %q", i, job.Worker, survivors.URL)
		}
	}

	code, fleetBody := getBody(t, ts.URL+"/fleet")
	if code != http.StatusOK {
		t.Fatalf("/fleet = %d", code)
	}
	var fleet struct {
		Workers []struct {
			URL  string `json:"url"`
			Down bool   `json:"down"`
		} `json:"workers"`
	}
	if err := json.Unmarshal([]byte(fleetBody), &fleet); err != nil {
		t.Fatalf("/fleet not JSON: %v", err)
	}
	downSeen := false
	for _, w := range fleet.Workers {
		if w.URL == dead.URL && w.Down {
			downSeen = true
		}
	}
	if !downSeen {
		t.Errorf("/fleet does not show the dead worker down: %s", fleetBody)
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "nchecker_fleet_workers_down_total 1") {
		t.Errorf("/metrics missing worker-down count:\n%s", grepLines(metricsText, "workers_down"))
	}
}

// TestDegradedResultRetriedAndKeptAsFallback: a fleet whose only worker
// always degrades retries up to the budget and then finalizes the
// degraded result — never failed, never lost. With a healthy second
// worker the retry lands there and the job finishes clean.
func TestDegradedResultRetriedAndKeptAsFallback(t *testing.T) {
	app := fixtureAppBytes(t)

	t.Run("single degrading worker keeps fallback", func(t *testing.T) {
		c, ts := newTestCoordinator(t, CoordConfig{Retries: 2})
		newFleetWorkerServer(t, c, Config{JobTimeout: time.Nanosecond})
		job := await(t, ts, submit(t, ts, app, ""))
		if job.Status != StatusDone || !job.Degraded {
			t.Fatalf("job = %+v, want done+degraded fallback", job)
		}
		if job.Attempts != 2 {
			t.Errorf("attempts = %d, want the full budget of 2", job.Attempts)
		}
		_, metricsText := getBody(t, ts.URL+"/metrics")
		if !strings.Contains(metricsText, "nchecker_fleet_degraded_retries_total 1") {
			t.Errorf("degraded retry not counted:\n%s", grepLines(metricsText, "degraded"))
		}
	})

	t.Run("healthy peer rescues the retry", func(t *testing.T) {
		c, ts := newTestCoordinator(t, CoordConfig{Retries: 3})
		newFleetWorkerServer(t, c, Config{JobTimeout: time.Nanosecond}) // always degrades
		newFleetWorkerServer(t, c, Config{})                            // healthy
		for i := 0; i < 4; i++ {
			job := await(t, ts, submit(t, ts, app, fmt.Sprintf("?name=a%d", i)))
			if job.Status != StatusDone || job.Degraded {
				t.Fatalf("job %d = %+v, want rescued clean by the healthy peer", i, job)
			}
		}
	})
}

// TestHedgingDuplicatesSlowDispatch: with every worker slow and a short
// hedge delay, a job is dispatched twice and the first terminal result
// wins; the job record says so.
func TestHedgingDuplicatesSlowDispatch(t *testing.T) {
	c, ts := newTestCoordinator(t, CoordConfig{Hedge: 30 * time.Millisecond})
	slow := fakeWorker(t, 400*time.Millisecond, "slow report\n")
	slower := fakeWorker(t, 450*time.Millisecond, "slow report\n")
	for _, w := range []*httptest.Server{slow, slower} {
		if err := c.Register(w.URL); err != nil {
			t.Fatal(err)
		}
	}
	job := await(t, ts, submit(t, ts, []byte("anything"), ""))
	if job.Status != StatusDone {
		t.Fatalf("job = %+v", job)
	}
	if !job.Hedged || job.Attempts != 2 {
		t.Errorf("hedged=%v attempts=%d, want a hedged second attempt", job.Hedged, job.Attempts)
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "nchecker_fleet_hedges_total 1") {
		t.Errorf("hedge not counted:\n%s", grepLines(metricsText, "hedges"))
	}
}

// TestQueueBoundAndOrphanDrain: with no worker registered, jobs park as
// orphans against the queue bound (429 beyond it) and drain the moment a
// worker joins.
func TestQueueBoundAndOrphanDrain(t *testing.T) {
	app := fixtureAppBytes(t)
	c, ts := newTestCoordinator(t, CoordConfig{Queue: 2})

	id1 := submit(t, ts, app, "?name=first")
	id2 := submit(t, ts, app, "?name=second")
	resp, err := http.Post(ts.URL+"/scan", "application/octet-stream", bytes.NewReader(app))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit with full fleet queue = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	_, fleetBody := getBody(t, ts.URL+"/fleet")
	if !strings.Contains(fleetBody, `"orphans": 2`) {
		t.Errorf("/fleet should show two orphans:\n%s", fleetBody)
	}

	newFleetWorkerServer(t, c, Config{})
	for _, id := range []string{id1, id2} {
		if job := await(t, ts, id); job.Status != StatusDone {
			t.Errorf("orphaned job %s = %+v after worker joined", id, job)
		}
	}
}

// TestCacheReplicationServesFleetWideHits: worker A's scan pushes cache
// entries to the coordinator hub; worker B — fresh directory, never
// scanned anything — answers the same bytes from the hub as store hits.
func TestCacheReplicationServesFleetWideHits(t *testing.T) {
	app := fixtureAppBytes(t)
	c, ts := newTestCoordinator(t, CoordConfig{CacheDir: t.TempDir()})

	newWorkerWithReplication := func() (*Server, *httptest.Server) {
		dir := t.TempDir()
		s, wts := newTestServer(t, Config{Scan: core.Options{CacheDir: dir, CacheMode: core.CacheRW}})
		st, err := cachestore.Shared(dir, cachestore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st.SetReplicator(&httpReplicator{base: ts.URL + "/cache/"})
		if err := c.Register(wts.URL); err != nil {
			t.Fatal(err)
		}
		return s, wts
	}

	_, wtsA := newWorkerWithReplication()
	cold := await(t, wtsA, submit(t, wtsA, app, ""))
	if cold.Status != StatusDone || cold.Degraded {
		t.Fatalf("cold scan = %+v", cold)
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, `nchecker_fleet_cache_puts_total{outcome="accepted"}`) ||
		strings.Contains(metricsText, `nchecker_fleet_cache_puts_total{outcome="accepted"} 0`) {
		t.Fatalf("worker A pushed nothing to the hub:\n%s", grepLines(metricsText, "cache"))
	}

	_, wtsB := newWorkerWithReplication()
	warm := await(t, wtsB, submit(t, wtsB, app, ""))
	if warm.ReportText != cold.ReportText {
		t.Error("hub-warmed report text differs from cold scan")
	}
	_, workerB := getBody(t, wtsB.URL+"/metrics")
	if !strings.Contains(workerB, "nchecker_cache_store_hits_total 1") {
		t.Errorf("worker B should hit the replicated whole-app entry:\n%s",
			grepLines(workerB, "nchecker_cache_store_"))
	}
	_, metricsText = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, `nchecker_fleet_cache_fetch_total{outcome="hit"}`) ||
		strings.Contains(metricsText, `nchecker_fleet_cache_fetch_total{outcome="hit"} 0`) {
		t.Errorf("hub served no fetch hits:\n%s", grepLines(metricsText, "cache_fetch"))
	}
}

// TestCacheHubEndpointsValidate: the hub surface rejects traversal names
// and corrupt envelopes, and answers 404 when no hub is configured.
func TestCacheHubEndpointsValidate(t *testing.T) {
	_, noHub := newTestCoordinator(t, CoordConfig{})
	if code, _ := getBody(t, noHub.URL+"/cache/"+cachestore.NewKey(cachestore.KindResult, []byte("x")).Filename()); code != http.StatusNotFound {
		t.Errorf("hub-less GET = %d, want 404", code)
	}

	_, ts := newTestCoordinator(t, CoordConfig{CacheDir: t.TempDir()})
	name := cachestore.NewKey(cachestore.KindResult, []byte("x")).Filename()
	good := cachestore.EncodeEntry(cachestore.KindResult, []byte("payload"))

	put := func(entry string, data []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/cache/"+entry, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put("r-deadbeef.nce", good); code != http.StatusBadRequest {
		t.Errorf("bad name PUT = %d, want 400", code)
	}
	if code := put(name, good[:5]); code != http.StatusBadRequest {
		t.Errorf("truncated envelope PUT = %d, want 400", code)
	}
	if code := put(name, good); code != http.StatusNoContent {
		t.Errorf("good PUT = %d, want 204", code)
	}
	if code, body := getBody(t, ts.URL+"/cache/"+name); code != http.StatusOK || !strings.Contains(body, "payload") {
		t.Errorf("GET after PUT = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/cache/"+cachestore.NewKey(cachestore.KindResult, []byte("missing")).Filename()); code != http.StatusNotFound {
		t.Errorf("missing entry GET = %d, want 404", code)
	}
}

// TestCoordinatorMetricsAggregation: GET /metrics on the coordinator
// parses as valid Prometheus text and contains both the fleet counters
// and worker series summed across the fleet.
func TestCoordinatorMetricsAggregation(t *testing.T) {
	app := fixtureAppBytes(t)
	c, ts := newTestCoordinator(t, CoordConfig{})
	newFleetWorkerServer(t, c, Config{})
	newFleetWorkerServer(t, c, Config{})

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			await(t, ts, submit(t, ts, app, fmt.Sprintf("?name=a%d", i)))
		}(i)
	}
	wg.Wait()

	_, metricsText := getBody(t, ts.URL+"/metrics")
	parsed, err := promtext.Parse(metricsText)
	if err != nil {
		t.Fatalf("coordinator /metrics is not valid Prometheus text: %v", err)
	}
	bySeries := map[string]float64{}
	for _, s := range parsed.Samples {
		bySeries[s.Series()] = s.Value
	}
	if bySeries["nchecker_fleet_jobs_submitted_total"] != n {
		t.Errorf("fleet submitted = %v, want %d", bySeries["nchecker_fleet_jobs_submitted_total"], n)
	}
	if bySeries[`nchecker_fleet_jobs_total{status="done"}`] != n {
		t.Errorf("fleet done = %v, want %d", bySeries[`nchecker_fleet_jobs_total{status="done"}`], n)
	}
	if bySeries["nchecker_fleet_workers_live"] != 2 {
		t.Errorf("live workers = %v, want 2", bySeries["nchecker_fleet_workers_live"])
	}
	// The aggregated worker series must sum to the fleet totals: every job
	// ran on exactly one worker.
	if got := bySeries[`nchecker_jobs_total{status="done"}`]; got != n {
		t.Errorf("summed worker done jobs = %v, want %d", got, n)
	}
	if got := bySeries["nchecker_scan_seconds_count"]; got != n {
		t.Errorf("summed scan histogram count = %v, want %d", got, n)
	}
}

// TestCoordinatorBadSubmissions: validation failures are rejected at the
// front door with the same codes a single worker uses.
func TestCoordinatorBadSubmissions(t *testing.T) {
	c, ts := newTestCoordinator(t, CoordConfig{MaxBodyBytes: 64})
	newFleetWorkerServer(t, c, Config{})

	post := func(query string, body []byte) int {
		resp, err := http.Post(ts.URL+"/scan"+query, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("", nil); code != http.StatusBadRequest {
		t.Errorf("empty body = %d, want 400", code)
	}
	if code := post("?mode=bogus", []byte("x")); code != http.StatusBadRequest {
		t.Errorf("bad mode = %d, want 400", code)
	}
	if code := post("?timeout=banana", []byte("x")); code != http.StatusBadRequest {
		t.Errorf("bad timeout = %d, want 400", code)
	}
	if code := post("?checkers=99-1", []byte("x")); code != http.StatusBadRequest {
		t.Errorf("bad checkers = %d, want 400", code)
	}
	if code := post("", bytes.Repeat([]byte("x"), 1024)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized = %d, want 413", code)
	}
	if code, _ := getBody(t, ts.URL+"/scan/job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
}

// TestCoordinatorRetention: finished fleet jobs expire beyond Retain with
// 410, like a single worker.
func TestCoordinatorRetention(t *testing.T) {
	app := fixtureAppBytes(t)
	c, ts := newTestCoordinator(t, CoordConfig{Retain: 2})
	newFleetWorkerServer(t, c, Config{})

	var ids []string
	for i := 0; i < 3; i++ {
		id := submit(t, ts, app, "")
		await(t, ts, id)
		ids = append(ids, id)
	}
	if code, _ := getBody(t, ts.URL+"/scan/"+ids[0]); code != http.StatusGone {
		t.Errorf("oldest fleet job = %d, want 410", code)
	}
	for _, id := range ids[1:] {
		if code, _ := getBody(t, ts.URL+"/scan/"+id); code != http.StatusOK {
			t.Errorf("retained fleet job %s = %d, want 200", id, code)
		}
	}
}

// TestWorkStealingDrainsImbalancedQueues: jobs all sharded to one slow
// fake worker get stolen by an idle peer instead of waiting in line.
func TestWorkStealingDrainsImbalancedQueues(t *testing.T) {
	c, ts := newTestCoordinator(t, CoordConfig{})
	// One worker that is slow enough to pile its queue up, one fast thief.
	slow := fakeWorker(t, 300*time.Millisecond, "r\n")
	fast := fakeWorker(t, 5*time.Millisecond, "r\n")
	if err := c.Register(slow.URL); err != nil {
		t.Fatal(err)
	}

	// Submit several identical bodies: same shard key → all queue on the
	// same worker while it is the only one live.
	var ids []string
	for i := 0; i < 6; i++ {
		ids = append(ids, submit(t, ts, []byte("same body"), ""))
	}
	if err := c.Register(fast.URL); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if job := await(t, ts, id); job.Status != StatusDone {
			t.Fatalf("job %s = %+v", id, job)
		}
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if strings.Contains(metricsText, "nchecker_fleet_steals_total 0\n") {
		t.Errorf("no dispatches stolen:\n%s", grepLines(metricsText, "steals"))
	}
}
