package server

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/promtext"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens")

// TestMetricsFormatStability is the /metrics format contract: after a
// run that exercises every job path (done, degraded, failed, targeted,
// validated, rejected, cache hit), the endpoint must parse as well-formed
// Prometheus text 0.0.4 and expose exactly the series identities recorded
// in testdata/metrics_series.golden. Fleet aggregation (promtext.Sum on
// the coordinator) and operator dashboards key on these identities — a
// renamed or dropped series is a breaking change that must show up in
// review as a golden diff, not as a silent dashboard gap.
//
// Values are deliberately not asserted here (timings vary); the golden
// pins names, labels, and the sorted order the parser reports them in.
// Regenerate with: go test ./internal/server -run TestMetricsFormatStability -update
func TestMetricsFormatStability(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{
		Queue: 1,
		Scan:  core.Options{CacheDir: t.TempDir(), CacheMode: core.CacheRW},
	})

	// One clean job, one cache-hitting resubmission, one targeted job, one
	// validated job, one failed job: between them they touch every counter
	// family the server exports.
	await(t, ts, submit(t, ts, app, ""))
	await(t, ts, submit(t, ts, app, ""))
	await(t, ts, submit(t, ts, app, "?mode=targeted"))
	await(t, ts, submit(t, ts, app, "?validate=1"))
	await(t, ts, submit(t, ts, []byte("not an apk"), ""))

	// A deliberately degraded job (deadline far below any real scan).
	await(t, ts, submit(t, ts, app, "?timeout=1ns"))

	_, metricsText := getBody(t, ts.URL+"/metrics")
	parsed, err := promtext.Parse(metricsText)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text 0.0.4: %v", err)
	}
	got := strings.Join(parsed.SeriesNames(), "\n") + "\n"

	goldenPath := filepath.Join("testdata", "metrics_series.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("/metrics series set drifted from testdata/metrics_series.golden.\n"+
			"If the change is intentional, regenerate with -update and call it out in review.\n%s",
			diffLines(string(want), got))
	}

	// The histogram bucket ordering must be numeric (promtext renders and
	// the server must emit le="0.005" before le="+Inf").
	if i5, iInf := strings.Index(metricsText, `le="0.005"`), strings.Index(metricsText, `le="+Inf"`); i5 < 0 || iInf < 0 || i5 > iInf {
		t.Error("scan histogram buckets not in numeric order")
	}
}

// diffLines renders a compact two-column set difference for golden
// mismatches: lines only in want, lines only in got.
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimRight(want, "\n"), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for l := range wantSet {
		if !gotSet[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	if b.Len() == 0 {
		return "(same series set, different order)\n--- want ---\n" + want + "--- got ---\n" + got
	}
	return b.String()
}

// TestMetricsParseableEveryRequest guards the wire format under
// concurrent load: /metrics scraped while jobs run must always be
// well-formed (the coordinator scrapes workers mid-run).
func TestMetricsParseableEveryRequest(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{Jobs: 2, Queue: 8})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			await(t, ts, submit(t, ts, app, ""))
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		_, metricsText := getBody(t, ts.URL+"/metrics")
		if _, err := promtext.Parse(metricsText); err != nil {
			t.Fatalf("mid-run /metrics unparseable: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
