package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"repro/internal/report"
)

// TestValidatePerJobOverride: ?validate=1 stamps a verdict on every
// report of that job, while jobs without the override keep the
// historical unvalidated output; the validate counters reach /metrics.
func TestValidatePerJobOverride(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{})

	plain := await(t, ts, submit(t, ts, app, ""))
	if plain.Status != StatusDone || plain.Warnings == 0 {
		t.Fatalf("plain job = %+v", plain)
	}
	if strings.Contains(plain.ReportText, "Dynamic validation") {
		t.Error("unvalidated job's report text mentions Dynamic validation")
	}

	validated := await(t, ts, submit(t, ts, app, "?validate=1"))
	if validated.Status != StatusDone || validated.Degraded {
		t.Fatalf("validated job = %+v", validated)
	}
	if validated.Warnings != plain.Warnings {
		t.Errorf("validation changed the warning count: %d vs %d", validated.Warnings, plain.Warnings)
	}
	for i := range validated.Reports {
		if validated.Reports[i].Validation == "" {
			t.Errorf("report %d has no verdict", i)
		}
	}
	if !strings.Contains(validated.ReportText, "Dynamic validation\n  "+report.ValidationConfirmed) {
		t.Errorf("expected a confirmed verdict in the report text:\n%s", validated.ReportText)
	}

	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "nchecker_validate_confirmed_total") ||
		!strings.Contains(metricsText, "nchecker_validate_replays_total") {
		t.Errorf("/metrics missing nchecker_validate_* counters:\n%s",
			grepLines(metricsText, "nchecker_validate_"))
	}
}

// TestValidateBadParamIs400: an unparsable ?validate= is a client error,
// not a silently defaulted scan.
func TestValidateBadParamIs400(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/scan?validate=maybe", "application/octet-stream", bytes.NewReader(app))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?validate=maybe = %d, want 400", resp.StatusCode)
	}
}
