// Package server is nchecker's long-running scan service: the HTTP layer
// that turns the one-shot core.Checker pipeline into an observable daemon
// (the deployment shape the ROADMAP's production-scale scanner needs, and
// the layer future sharding/remote-worker PRs build on).
//
// Architecture (DESIGN.md §8):
//
//	POST /scan ──► admission queue (bounded; full ⇒ 429) ──► worker pool
//	                                                          │ per-job deadline
//	GET /scan/{id} ◄── in-memory job store ◄──────────────────┘ (ctx cancellation)
//
// One process-wide core.Checker serves every job, so the API-model
// registry and framework stub program are built once, and all jobs share
// one cachestore.Shared store when Options.CacheDir is set. A job whose
// deadline expires mid-scan finishes as a degraded result (HTTP 200,
// status "done", degraded=true) — partial findings are real findings; only
// undecodable inputs fail a job. The server never 500s a scan.
//
// Observability: GET /metrics exports Prometheus-text counters and
// histograms folded from each scan's core.Diagnostics (per-stage timings,
// analysis/persistent-cache counters, queue depth, jobs in flight,
// degraded-scan count — see metrics.go for the catalog), GET /healthz is
// the liveness probe, net/http/pprof is mounted under /debug/pprof/, and
// every job lifecycle event is logged structurally via log/slog.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// Config tunes a Server.
type Config struct {
	// Scan is the per-job analysis configuration (ablation switches,
	// cache). With Jobs > 1 and Scan.Workers == 0 the CPU budget is divided
	// between the job pool and each scan's pipeline, mirroring the CLI's
	// batch-mode division, so concurrent jobs never multiply into N×M
	// goroutines.
	Scan core.Options
	// Jobs is the number of concurrent scan workers. 0 means 1: scans
	// serialize and each gets the machine's full pipeline parallelism.
	Jobs int
	// Queue bounds the admission queue; a POST /scan arriving with the
	// queue full is rejected with 429. 0 means DefaultQueue.
	Queue int
	// JobTimeout caps one job's scan wall time (0 = none). An expired
	// deadline yields a degraded result, not an error. A request may lower
	// it per job via POST /scan?timeout=30s, never raise it.
	JobTimeout time.Duration
	// MaxBodyBytes caps an uploaded app container; larger uploads get 413.
	// 0 means DefaultMaxBody.
	MaxBodyBytes int64
	// Retain bounds the finished jobs kept for GET /scan/{id}; the oldest
	// finished jobs are dropped beyond it. Queued and running jobs are
	// never dropped. 0 means DefaultRetain.
	Retain int
	// Logger receives structured job-lifecycle logs; nil means slog.Default.
	Logger *slog.Logger
}

// Defaults for the Config zero values.
const (
	DefaultQueue   = 64
	DefaultMaxBody = 64 << 20
	DefaultRetain  = 256
)

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	// StatusDone covers degraded scans too: partial findings are findings.
	StatusDone JobStatus = "done"
	// StatusFailed means the scan produced nothing (undecodable container).
	StatusFailed JobStatus = "failed"
)

// Job is one scan job's record, marshaled by GET /scan/{id}.
type Job struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"` // client-supplied app name
	Status    JobStatus `json:"status"`
	BodyBytes int64     `json:"bodyBytes"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// Scan outcome, present once Status is done.
	Requests   int             `json:"requests,omitempty"`
	Warnings   int             `json:"warnings,omitempty"`
	Degraded   bool            `json:"degraded,omitempty"`
	ReportText string          `json:"reportText,omitempty"` // byte-identical to the CLI's text mode
	Reports    []report.Report `json:"reports,omitempty"`
	// Error carries the decode failure (failed) or what a degraded scan
	// lost (done + degraded).
	Error string `json:"error,omitempty"`

	// Fleet telemetry, present when the record comes from a coordinator
	// (coord.go): the worker that produced the final result, how many
	// dispatch attempts the job took, and whether it was hedged.
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Hedged   bool   `json:"hedged,omitempty"`

	seq      int64           // numeric ID, for newest-first listings
	deadline time.Duration   // resolved per-job scan deadline (0 = none)
	mode     core.EngineMode // resolved engine mode (?mode= or the server default)
	validate bool            // resolved validation toggle (?validate= or the server default)
	checkers core.CheckerSet // resolved family selection (?checkers= or the server default)
	data     []byte          // app container bytes; released when the scan finishes

	// Coordinator-only bookkeeping (coord.go); unused by a worker Server.
	shard    [32]byte             // sha256 of the container bytes (= apk.Digest)
	query    string               // sanitized query string forwarded to /scansync
	terminal bool                 // a final result has been installed
	running  int                  // in-flight dispatch attempts
	cancels  []context.CancelFunc // cancel in-flight attempts on finalize
	fallback *Job                 // best degraded result held while retrying
}

// Server is the scan service. Construct with New, wire Handler into an
// http.Server, call Start to launch the workers, Shutdown to drain.
type Server struct {
	cfg     Config
	checker *core.Checker
	log     *slog.Logger
	metrics *metrics

	queue chan *Job
	// syncSem bounds concurrent POST /scansync scans to cfg.Jobs slots —
	// the fleet dispatch path shares the same concurrency budget as the
	// async queue workers (worker.go).
	syncSem chan struct{}
	mu      sync.Mutex // guards jobs, done, pruned, nextID, and per-Job mutation
	jobs    map[string]*Job
	done    []string // finished job IDs in completion order (retention FIFO)
	// pruned remembers ids the retention FIFO dropped, so GET can answer
	// 410 Gone (expired) instead of 404 (never existed). Bounded like the
	// retention itself: prunedFIFO evicts the oldest tombstones.
	pruned     map[string]bool
	prunedFIFO []string
	nextID     int64

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// New builds a Server from cfg. The underlying Checker — hence the
// registry, the framework stubs, and the shared cache store — is
// constructed once here and reused by every job.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Jobs > 1 && cfg.Scan.Workers == 0 {
		// The CLI's batch-mode budget division: the job pool gets the
		// concurrency, each scan's internal pipeline gets the remainder.
		w := runtime.NumCPU() / cfg.Jobs
		if w < 1 {
			w = 1
		}
		cfg.Scan.Workers = w
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		checker: core.NewWithOptions(cfg.Scan),
		log:     cfg.Logger,
		metrics: newMetrics(),
		queue:   make(chan *Job, cfg.Queue),
		syncSem: make(chan struct{}, cfg.Jobs),
		jobs:    make(map[string]*Job),
		pruned:  make(map[string]bool),
		baseCtx: ctx,
		cancel:  cancel,
	}
}

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown stops accepting queued work and waits (up to ctx) for running
// jobs to finish. Jobs still queued are abandoned in status "queued".
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	doneCh := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scan", s.handleSubmit)
	mux.HandleFunc("POST /scansync", s.handleScanSync)
	mux.HandleFunc("GET /scan/{id}", s.handleGet)
	mux.HandleFunc("GET /scans", s.handleList)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// pprof must be mounted explicitly on a non-default mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleSubmit admits a scan job: read the container bytes, try the
// bounded queue, 429 when full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("app container exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) == 0 {
		httpError(w, http.StatusBadRequest, "empty request body: POST the app container bytes")
		return
	}
	timeout, err := jobTimeout(r.URL.Query().Get("timeout"), s.cfg.JobTimeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode, err := jobMode(r.URL.Query().Get("mode"), s.cfg.Scan.Mode)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	validate, err := jobValidate(r.URL.Query().Get("validate"), s.cfg.Scan.Validate)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	checkerSet, err := jobCheckers(r.URL.Query().Get("checkers"), s.cfg.Scan.Checkers)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Name:      r.URL.Query().Get("name"),
		Status:    StatusQueued,
		BodyBytes: int64(len(body)),
		Submitted: time.Now(),
		seq:       s.nextID,
		deadline:  timeout,
		mode:      mode,
		validate:  validate,
		checkers:  checkerSet,
		data:      body,
	}
	// Register before enqueueing: a worker may finish the job (and hit the
	// retention path) before this handler runs again.
	s.jobs[job.ID] = job
	s.mu.Unlock()

	select {
	case s.queue <- job:
	default:
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		s.metrics.jobRejected()
		s.log.Warn("job rejected: queue full",
			"name", job.Name, "bytes", job.BodyBytes, "queue", cap(s.queue))
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("admission queue full (%d jobs waiting)", cap(s.queue)))
		return
	}
	s.metrics.jobSubmitted()
	s.log.Info("job submitted",
		"id", job.ID, "name", job.Name, "bytes", job.BodyBytes, "queue_depth", len(s.queue))

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID, "status": string(StatusQueued)})
}

// jobMode resolves a per-request ?mode= override: empty keeps the
// server's default engine mode, anything else must be a valid mode name.
func jobMode(param string, def core.EngineMode) (core.EngineMode, error) {
	if param == "" {
		return def, nil
	}
	return core.ParseEngineMode(param)
}

// jobValidate resolves a per-request ?validate= override: empty keeps the
// server's default, anything else must parse as a boolean.
func jobValidate(param string, def bool) (bool, error) {
	if param == "" {
		return def, nil
	}
	v, err := strconv.ParseBool(param)
	if err != nil {
		return false, fmt.Errorf("invalid validate %q (want a boolean, e.g. ?validate=1)", param)
	}
	return v, nil
}

// jobCheckers resolves a per-request ?checkers= override: empty keeps the
// server's default family selection, anything else must parse as a
// -checkers spelling ("all", "1,3,5-8", …).
func jobCheckers(param string, def core.CheckerSet) (core.CheckerSet, error) {
	if param == "" {
		return def, nil
	}
	set, err := core.ParseCheckerSet(param)
	if err != nil {
		return 0, fmt.Errorf("invalid checkers %q (want e.g. ?checkers=5-8): %v", param, err)
	}
	return set, nil
}

// jobTimeout resolves a per-request timeout override against the server
// bound: requests may tighten the deadline, never loosen it.
func jobTimeout(param string, serverMax time.Duration) (time.Duration, error) {
	if param == "" {
		return serverMax, nil
	}
	d, err := time.ParseDuration(param)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("invalid timeout %q (want a positive Go duration, e.g. 30s)", param)
	}
	if serverMax > 0 && d > serverMax {
		return serverMax, nil
	}
	return d, nil
}

// handleGet serves one job's record.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var snapshot Job
	if ok {
		snapshot = *job
	}
	if !ok {
		expired := s.pruned[r.PathValue("id")]
		s.mu.Unlock()
		if expired {
			httpError(w, http.StatusGone, "job expired: its record was pruned by the -retain bound")
			return
		}
		httpError(w, http.StatusNotFound, "no such job (finished jobs are retained up to the -retain bound)")
		return
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&snapshot)
}

// handleList serves a compact all-jobs summary, newest first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID       string    `json:"id"`
		Name     string    `json:"name,omitempty"`
		Status   JobStatus `json:"status"`
		Warnings int       `json:"warnings"`
		Degraded bool      `json:"degraded,omitempty"`
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq > jobs[k].seq })
	rows := make([]row, 0, len(jobs))
	for _, j := range jobs {
		rows = append(rows, row{ID: j.ID, Name: j.Name, Status: j.Status, Warnings: j.Warnings, Degraded: j.Degraded})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.metrics.render(len(s.queue), cap(s.queue)))
}

// worker drains the admission queue until Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case job := <-s.queue:
			s.run(job)
		}
	}
}

// run executes one job through the shared Checker under its deadline.
func (s *Server) run(job *Job) {
	start := time.Now()
	s.mu.Lock()
	job.Status = StatusRunning
	job.Started = &start
	data, deadline, mode, validate, checkerSet := job.data, job.deadline, job.mode, job.validate, job.checkers
	s.mu.Unlock()
	s.metrics.scanStarted()

	ctx := s.baseCtx
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	// WithMode/WithValidate/WithCheckers share the process-wide registry
	// (and cache store): per-job overrides cost one small struct, not a
	// rebuilt Checker.
	res, err := s.checker.WithMode(mode).WithValidate(validate).WithCheckers(checkerSet).ScanBytesContext(ctx, data)
	finished := time.Now()

	s.mu.Lock()
	job.Finished = &finished
	job.data = nil // the container bytes are dead weight once scanned
	if err != nil {
		job.Status = StatusFailed
		job.Error = err.Error()
	} else {
		job.Status = StatusDone
		job.Requests = res.Stats.Requests
		job.Warnings = len(res.Reports)
		job.Degraded = res.Incomplete
		job.ReportText = report.RenderAll(res.Reports)
		job.Reports = res.Reports
		if resErr := res.Err(); resErr != nil {
			job.Error = resErr.Error()
		}
	}
	s.retainLocked(job.ID)
	s.mu.Unlock()

	dur := finished.Sub(start)
	queueWait := start.Sub(job.Submitted)
	if err != nil {
		s.metrics.jobFailed()
		s.log.Error("job failed",
			"id", job.ID, "name", job.Name, "bytes", job.BodyBytes,
			"duration", dur, "queue_wait", queueWait, "error", err.Error())
		return
	}
	s.metrics.jobDone(res.Diagnostics.MetricsSnapshot(), res.Incomplete)
	s.log.Info("job done",
		"id", job.ID, "name", job.Name, "bytes", job.BodyBytes,
		"duration", dur, "queue_wait", queueWait,
		"requests", res.Stats.Requests, "warnings", len(res.Reports),
		"degraded", res.Incomplete)
}

// retainLocked records a finished job and prunes the oldest finished jobs
// beyond the retention bound. Caller holds s.mu.
func (s *Server) retainLocked(id string) {
	s.done = append(s.done, id)
	for len(s.done) > s.cfg.Retain {
		dropped := s.done[0]
		delete(s.jobs, dropped)
		s.done = s.done[1:]
		if !s.pruned[dropped] {
			s.pruned[dropped] = true
			s.prunedFIFO = append(s.prunedFIFO, dropped)
		}
		// The tombstone set is bounded too (a long-lived server prunes
		// without end): keep the most recent tombstoneBound ids.
		for len(s.prunedFIFO) > s.tombstoneBound() {
			delete(s.pruned, s.prunedFIFO[0])
			s.prunedFIFO = s.prunedFIFO[1:]
		}
	}
}

// tombstoneBound sizes the pruned-id memory: generous enough that any
// client polling at a sane cadence sees 410 rather than 404 after its
// job expires, bounded so memory stays O(Retain).
func (s *Server) tombstoneBound() int {
	const minTombstones = 64
	if n := 4 * s.cfg.Retain; n > minTombstones {
		return n
	}
	return minTombstones
}

// httpError writes a JSON error body with the status code.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "status": strconv.Itoa(code)})
}
