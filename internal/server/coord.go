// Fleet coordinator (DESIGN.md §12): the front door of a multi-process
// scan fleet. The coordinator owns admission, job records, and retention
// — the same surface a single `nchecker serve` exposes — but instead of
// scanning, it shards each job to one of N registered worker processes
// over HTTP:
//
//	POST /scan ──► shard by sha256(body) ──► per-worker queue ──► POST {worker}/scansync
//	                   (rendezvous hash)      │ work stealing          │ hedged + retried
//	GET /scan/{id} ◄── coordinator job store ◄┘                        │
//	GET /metrics  ◄── own fleet counters + Sum of worker /metrics      │
//	/cache/{entry} ◄─► replication hub: any worker's cache hit ────────┘
//	                   serves the whole fleet
//
// The shard key is the sha256 of the raw container bytes — exactly
// apk.Digest for any container that decodes, and the digest the checkers'
// cache key anatomy is built on — so a resubmitted app lands on the
// worker whose local cache is already warm. Placement uses rendezvous
// (highest-random-weight) hashing over the live worker set: when a worker
// joins or dies only its own share of keys moves.
//
// Fault model (mirrors the PR 2 degraded-scan taxonomy):
//   - Worker unreachable → probe; if dead, mark down, requeue its queued
//     dispatches elsewhere, retry the in-flight job on another worker.
//   - Scan degraded (timeout/cancellation inside the worker) → retry on
//     another worker up to the -retries budget, keeping the degraded
//     result as the fallback answer — a degraded report is still a report.
//   - Scan failed (undecodable container) → terminal immediately;
//     deterministic failures are not retried.
//   - Slow worker → after the -hedge delay the job is dispatched a second
//     time to an idle peer; the first terminal result wins and the
//     loser's request context is canceled.
//
// Work stealing: an idle worker steals the oldest queued dispatch from
// the longest live peer queue, so one slow worker cannot strand a shard.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/promtext"
)

// CoordConfig tunes a Coordinator.
type CoordConfig struct {
	// Queue bounds pending (not yet dispatched) jobs fleet-wide; a POST
	// /scan beyond it is rejected with 429. 0 means DefaultQueue.
	Queue int
	// Retain bounds finished job records, as in Config.Retain.
	Retain int
	// MaxBodyBytes caps an uploaded container, as in Config.MaxBodyBytes.
	MaxBodyBytes int64
	// Hedge is how long a dispatched job may run before it is speculatively
	// dispatched a second time to an idle peer. 0 disables hedging.
	Hedge time.Duration
	// Retries is the attempt budget per job across workers (hedges
	// included). 0 means DefaultRetries.
	Retries int
	// CacheDir, when set, hosts the fleet cache hub: workers fetch and push
	// entry envelopes through /cache/{entry} so any member's hit serves all.
	CacheDir string
	// CacheMaxBytes bounds the hub store (0 = unbounded).
	CacheMaxBytes int64
	// Logger receives fleet lifecycle logs; nil means slog.Default.
	Logger *slog.Logger
}

// DefaultRetries is the per-job attempt budget when CoordConfig.Retries
// is zero: the first dispatch plus two more tries elsewhere.
const DefaultRetries = 3

// fleetDispatch is one queued attempt of a job on some worker's queue.
type fleetDispatch struct {
	job   *Job
	hedge bool // a speculative duplicate, not a retry
	// avoid is the worker this dispatch was deliberately placed away from
	// (it just failed, degraded, or is being hedged against). Stealing
	// respects it: a fast-but-degrading worker must not steal back the
	// very retry that was routed around it.
	avoid *fleetWorker
}

// fleetWorker is the coordinator's view of one registered worker process.
type fleetWorker struct {
	url      string
	queue    []*fleetDispatch
	down     bool
	inflight int
	done     int64 // terminal results this worker won
}

// Coordinator is the fleet front door. Construct with NewCoordinator,
// wire Handler into an http.Server, Shutdown to drain. Workers announce
// themselves via POST /fleet/register (JoinFleet is the client side).
type Coordinator struct {
	cfg    CoordConfig
	log    *slog.Logger
	cm     *coordMetrics
	hub    *cachestore.Store
	client *http.Client // dispatch client: per-attempt ctx, no overall timeout
	probe  *http.Client // short-deadline liveness probes and metric scrapes

	mu      sync.Mutex
	cond    *sync.Cond // signals queued work to dispatch loops
	workers []*fleetWorker
	orphans []*fleetDispatch // dispatches with no live worker to run them
	jobs    map[string]*Job
	done    []string
	pruned  map[string]bool
	prFIFO  []string
	nextID  int64
	pending int // queued dispatches fleet-wide (per-worker queues + orphans)
	closed  bool
	wg      sync.WaitGroup
}

// NewCoordinator builds a Coordinator from cfg. With CacheDir set it also
// opens the fleet cache hub store.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.Retries <= 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	c := &Coordinator{
		cfg:    cfg,
		log:    cfg.Logger,
		cm:     newCoordMetrics(),
		client: &http.Client{},
		probe:  &http.Client{Timeout: 3 * time.Second},
		jobs:   make(map[string]*Job),
		pruned: make(map[string]bool),
	}
	c.cond = sync.NewCond(&c.mu)
	if cfg.CacheDir != "" {
		hub, err := cachestore.Shared(cfg.CacheDir, cachestore.Options{MaxBytes: cfg.CacheMaxBytes})
		if err != nil {
			return nil, fmt.Errorf("coordinator cache hub: %w", err)
		}
		c.hub = hub
	}
	return c, nil
}

// Shutdown stops dispatching and waits (up to ctx) for in-flight
// attempts to settle. Queued jobs are abandoned in status "queued".
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	for _, j := range c.jobs {
		for _, cancel := range j.cancels {
			cancel()
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	doneCh := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the coordinator's HTTP routes. The scan surface (POST
// /scan, GET /scan/{id}, GET /scans) is shaped exactly like a worker's,
// so any client of one process speaks fleet unchanged.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scan", c.handleSubmit)
	mux.HandleFunc("GET /scan/{id}", c.handleGet)
	mux.HandleFunc("GET /scans", c.handleList)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("POST /fleet/register", c.handleRegister)
	mux.HandleFunc("GET /fleet", c.handleFleet)
	mux.HandleFunc("GET /cache/{entry}", c.handleCacheGet)
	mux.HandleFunc("PUT /cache/{entry}", c.handleCachePut)
	return mux
}

// Register adds (or revives) a worker by base URL and starts its dispatch
// loop. Queued orphans — jobs admitted while no worker was live — are
// re-placed immediately.
func (c *Coordinator) Register(workerURL string) error {
	u, err := url.Parse(workerURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("invalid worker URL %q", workerURL)
	}
	base := u.Scheme + "://" + u.Host

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("coordinator shutting down")
	}
	for _, w := range c.workers {
		if w.url == base {
			if !w.down {
				return nil // duplicate registration, already serving
			}
			w.down = false
			c.startWorkerLocked(w)
			c.replaceOrphansLocked()
			c.log.Info("fleet worker revived", "worker", base)
			return nil
		}
	}
	w := &fleetWorker{url: base}
	c.workers = append(c.workers, w)
	c.cm.workerJoined()
	c.startWorkerLocked(w)
	c.replaceOrphansLocked()
	c.log.Info("fleet worker registered", "worker", base, "fleet_size", len(c.liveWorkersLocked()))
	return nil
}

func (c *Coordinator) startWorkerLocked(w *fleetWorker) {
	c.wg.Add(1)
	go c.dispatchLoop(w)
	c.cond.Broadcast()
}

// replaceOrphansLocked re-places dispatches that had no live worker.
func (c *Coordinator) replaceOrphansLocked() {
	orphans := c.orphans
	c.orphans = nil
	for _, d := range orphans {
		c.enqueueLocked(d, nil)
	}
}

// liveWorkersLocked returns the workers currently accepting dispatches.
func (c *Coordinator) liveWorkersLocked() []*fleetWorker {
	live := make([]*fleetWorker, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.down {
			live = append(live, w)
		}
	}
	return live
}

// rendezvousOwner picks the highest-random-weight worker for a shard key:
// score(worker) = first 8 bytes of sha256(shard ‖ worker URL). The same
// placement falls out on every coordinator restart, and removing a worker
// moves only the keys it owned.
func rendezvousOwner(shard [32]byte, candidates []*fleetWorker) *fleetWorker {
	var best *fleetWorker
	var bestScore uint64
	for _, w := range candidates {
		h := sha256.New()
		h.Write(shard[:])
		io.WriteString(h, w.url)
		score := binary.BigEndian.Uint64(h.Sum(nil))
		if best == nil || score > bestScore || (score == bestScore && w.url < best.url) {
			best, bestScore = w, score
		}
	}
	return best
}

// enqueueLocked places a dispatch on a worker queue. avoid (may be nil)
// excludes the worker that just failed or is being hedged against —
// unless it is the only one live. With no live worker at all the dispatch
// parks on the orphan list until one registers. Caller holds c.mu and has
// already counted the dispatch into c.pending.
func (c *Coordinator) enqueueLocked(d *fleetDispatch, avoid *fleetWorker) {
	candidates := c.liveWorkersLocked()
	if avoid != nil && len(candidates) > 1 {
		filtered := make([]*fleetWorker, 0, len(candidates)-1)
		for _, w := range candidates {
			if w != avoid {
				filtered = append(filtered, w)
			}
		}
		candidates = filtered
	}
	if len(candidates) == 0 {
		c.orphans = append(c.orphans, d)
		return
	}
	var target *fleetWorker
	if d.hedge {
		// A hedge wants the idlest peer, not the shard owner — the owner is
		// the one being slow.
		for _, w := range candidates {
			if target == nil || w.inflight+len(w.queue) < target.inflight+len(target.queue) {
				target = w
			}
		}
	} else {
		target = rendezvousOwner(d.job.shard, candidates)
	}
	target.queue = append(target.queue, d)
	c.cond.Broadcast()
}

// popLocked takes the next dispatch for w: its own queue first, then the
// oldest stealable dispatch from the longest live peer queue. A dispatch
// placed away from w (avoid) is never stolen by w. Dispatches for
// already-terminal jobs (a hedge that lost before starting) are dropped.
// Caller holds c.mu.
func (c *Coordinator) popLocked(w *fleetWorker) *fleetDispatch {
	for {
		var d *fleetDispatch
		if len(w.queue) > 0 {
			d, w.queue = w.queue[0], w.queue[1:]
		} else {
			var victim *fleetWorker
			victimIdx := -1
			for _, peer := range c.workers {
				if peer == w || peer.down {
					continue
				}
				for i, cand := range peer.queue {
					if cand.avoid == w && !cand.job.terminal {
						continue
					}
					if victim == nil || len(peer.queue) > len(victim.queue) {
						victim, victimIdx = peer, i
					}
					break
				}
			}
			if victim == nil {
				return nil
			}
			d = victim.queue[victimIdx]
			victim.queue = append(victim.queue[:victimIdx], victim.queue[victimIdx+1:]...)
			if !d.job.terminal {
				c.cm.steal()
				c.log.Debug("dispatch stolen", "job", d.job.ID, "thief", w.url, "victim", victim.url)
			}
		}
		c.pending--
		if d.job.terminal {
			continue // lost hedge or abandoned retry; nothing to run
		}
		return d
	}
}

// dispatchLoop feeds queued jobs to one worker until shutdown or the
// worker is marked down.
func (c *Coordinator) dispatchLoop(w *fleetWorker) {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		var d *fleetDispatch
		for {
			if c.closed || w.down {
				c.mu.Unlock()
				return
			}
			if d = c.popLocked(w); d != nil {
				break
			}
			c.cond.Wait()
		}
		job := d.job
		job.Attempts++
		job.running++
		attempt := job.Attempts
		if job.Started == nil {
			now := time.Now()
			job.Started = &now
		}
		job.Status = StatusRunning
		ctx, cancel := context.WithCancel(context.Background())
		job.cancels = append(job.cancels, cancel)
		w.inflight++
		query, data := job.query, job.data
		c.mu.Unlock()

		// Arm the hedge: if this attempt is still running after the delay,
		// dispatch the job once more to an idle peer.
		var hedgeTimer *time.Timer
		if c.cfg.Hedge > 0 && !d.hedge {
			hedgeTimer = time.AfterFunc(c.cfg.Hedge, func() { c.maybeHedge(job, w) })
		}
		res, err := c.scanOnWorker(ctx, w.url, query, data)
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
		canceled := ctx.Err() != nil

		// A transport error may mean the worker died; probe before deciding,
		// outside the lock.
		workerDead := false
		if err != nil && !canceled {
			workerDead = !c.probeWorker(w.url)
		}

		c.mu.Lock()
		w.inflight--
		job.running--
		cancel()
		switch {
		case canceled || job.terminal:
			// Lost a hedge race or shutdown: the result (if any) is surplus.
		case err == nil && res.Status == StatusDone && res.Degraded && attempt < c.cfg.Retries:
			// Degraded by this worker's local trouble (deadline, load): keep
			// the partial result as the floor and try elsewhere.
			job.fallback = res
			c.cm.degradedRetry()
			c.log.Warn("degraded result, retrying elsewhere",
				"job", job.ID, "worker", w.url, "attempt", attempt)
			c.requeueLocked(job, w)
		case err == nil:
			if res.Degraded && job.fallback != nil && !job.fallback.Degraded {
				res = job.fallback // never finalize worse than the floor
			}
			c.finalizeLocked(job, res, w)
		case workerDead:
			c.markDownLocked(w)
			c.retryOrFailLocked(job, w, attempt, err)
		default:
			// Transient transport trouble; the worker answered its probe.
			c.retryOrFailLocked(job, w, attempt, err)
		}
		c.mu.Unlock()
	}
}

// retryOrFailLocked requeues a failed attempt while budget remains, else
// finalizes the job — degraded fallback first, hard failure last.
func (c *Coordinator) retryOrFailLocked(job *Job, avoid *fleetWorker, attempt int, cause error) {
	if job.terminal {
		return
	}
	if attempt < c.cfg.Retries {
		c.cm.retry()
		c.requeueLocked(job, avoid)
		return
	}
	if job.running > 0 {
		return // a concurrent hedge is still in flight; let it decide
	}
	if job.fallback != nil {
		c.finalizeLocked(job, job.fallback, avoid)
		return
	}
	now := time.Now()
	job.Status = StatusFailed
	job.Finished = &now
	job.Error = fmt.Sprintf("all %d attempts failed; last worker %s: %v", attempt, avoid.url, cause)
	c.sealLocked(job)
	c.cm.jobFailed()
	c.log.Error("job failed: attempts exhausted", "job", job.ID, "attempts", attempt, "error", cause.Error())
}

// requeueLocked puts a fresh dispatch for job back on the fleet, avoiding
// the worker that just handled it. Caller holds c.mu.
func (c *Coordinator) requeueLocked(job *Job, avoid *fleetWorker) {
	if job.running == 0 {
		job.Status = StatusQueued
	}
	c.pending++
	c.enqueueLocked(&fleetDispatch{job: job, avoid: avoid}, avoid)
}

// maybeHedge fires when a dispatch has been in flight for the hedge
// delay: dispatch the job once more to the idlest other worker. One hedge
// per job; the first terminal result wins.
func (c *Coordinator) maybeHedge(job *Job, slow *fleetWorker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || job.terminal || job.Hedged {
		return
	}
	if len(c.liveWorkersLocked()) < 2 {
		return // nowhere else to run it
	}
	job.Hedged = true
	c.cm.hedge()
	c.pending++
	c.enqueueLocked(&fleetDispatch{job: job, hedge: true, avoid: slow}, slow)
	c.log.Info("hedging slow dispatch", "job", job.ID, "slow_worker", slow.url, "hedge_after", c.cfg.Hedge)
}

// finalizeLocked installs res as job's terminal record. First writer
// wins: a concurrent hedge or superseded retry finds terminal set and
// discards its result. Caller holds c.mu.
func (c *Coordinator) finalizeLocked(job *Job, res *Job, w *fleetWorker) {
	if job.terminal {
		return
	}
	now := time.Now()
	job.Status = res.Status
	job.Finished = &now
	job.Requests = res.Requests
	job.Warnings = res.Warnings
	job.Degraded = res.Degraded
	job.ReportText = res.ReportText
	job.Reports = res.Reports
	job.Error = res.Error
	job.Worker = w.url
	w.done++
	c.sealLocked(job)
	if job.Status == StatusFailed {
		c.cm.jobFailed()
	} else {
		c.cm.jobDone(job.Degraded)
	}
	c.log.Info("job done",
		"job", job.ID, "name", job.Name, "worker", w.url, "status", job.Status,
		"attempts", job.Attempts, "hedged", job.Hedged, "requests", job.Requests,
		"warnings", job.Warnings, "degraded", job.Degraded,
		"duration", now.Sub(job.Submitted))
}

// sealLocked marks a job terminal: cancel any other in-flight attempts,
// release the container bytes, run retention. Caller holds c.mu.
func (c *Coordinator) sealLocked(job *Job) {
	job.terminal = true
	job.data = nil
	job.fallback = nil
	for _, cancel := range job.cancels {
		cancel()
	}
	job.cancels = nil
	c.retainLocked(job.ID)
}

// markDownLocked removes a worker from placement and re-places everything
// queued on it. Its dispatch loop exits on next wake; a later
// re-registration revives it.
func (c *Coordinator) markDownLocked(w *fleetWorker) {
	if w.down {
		return
	}
	w.down = true
	c.cm.workerDown()
	c.log.Warn("fleet worker down", "worker", w.url, "requeued", len(w.queue))
	queued := w.queue
	w.queue = nil
	for _, d := range queued {
		c.enqueueLocked(d, w)
	}
	c.cond.Broadcast()
}

// probeWorker reports whether a worker still answers its health check.
func (c *Coordinator) probeWorker(base string) bool {
	resp, err := c.probe.Get(base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// scanOnWorker runs one synchronous scan attempt against a worker and
// decodes the finished Job record it answers.
func (c *Coordinator) scanOnWorker(ctx context.Context, base, query string, data []byte) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/scansync"+query, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker answered %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		return nil, fmt.Errorf("undecodable worker response: %w", err)
	}
	if job.Status != StatusDone && job.Status != StatusFailed {
		return nil, fmt.Errorf("worker answered non-terminal status %q", job.Status)
	}
	return &job, nil
}

// handleSubmit admits a job fleet-wide: validate the same per-request
// overrides a worker accepts (rejecting bad ones here, before they cost a
// dispatch), bound the pending queue, shard, enqueue.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("app container exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) == 0 {
		httpError(w, http.StatusBadRequest, "empty request body: POST the app container bytes")
		return
	}
	q := r.URL.Query()
	if _, err := jobTimeout(q.Get("timeout"), 0); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := jobMode(q.Get("mode"), core.ModeFull); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := jobValidate(q.Get("validate"), false); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := jobCheckers(q.Get("checkers"), 0); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Forward only the parameters /scansync understands, re-encoded.
	fwd := url.Values{}
	for _, k := range []string{"name", "timeout", "mode", "validate", "checkers"} {
		if v := q.Get(k); v != "" {
			fwd.Set(k, v)
		}
	}
	query := ""
	if len(fwd) > 0 {
		query = "?" + fwd.Encode()
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "coordinator shutting down")
		return
	}
	if c.pending >= c.cfg.Queue {
		pending := c.pending
		c.mu.Unlock()
		c.cm.jobRejected()
		c.log.Warn("job rejected: fleet queue full", "pending", pending, "queue", c.cfg.Queue)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("fleet queue full (%d jobs waiting)", pending))
		return
	}
	c.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", c.nextID),
		Name:      q.Get("name"),
		Status:    StatusQueued,
		BodyBytes: int64(len(body)),
		Submitted: time.Now(),
		seq:       c.nextID,
		shard:     sha256.Sum256(body),
		query:     query,
		data:      body,
	}
	c.jobs[job.ID] = job
	c.pending++
	c.enqueueLocked(&fleetDispatch{job: job}, nil)
	depth := c.pending
	c.mu.Unlock()

	c.cm.jobSubmitted()
	c.log.Info("job submitted", "job", job.ID, "name", job.Name, "bytes", job.BodyBytes, "pending", depth)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID, "status": string(StatusQueued)})
}

// handleGet serves one job record, with the same 404/410 semantics as a
// single worker.
func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	job, ok := c.jobs[r.PathValue("id")]
	var snapshot Job
	if ok {
		snapshot = *job
	}
	if !ok {
		expired := c.pruned[r.PathValue("id")]
		c.mu.Unlock()
		if expired {
			httpError(w, http.StatusGone, "job expired: its record was pruned by the -retain bound")
			return
		}
		httpError(w, http.StatusNotFound, "no such job (finished jobs are retained up to the -retain bound)")
		return
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&snapshot)
}

// handleList serves the compact all-jobs summary, newest first.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID       string    `json:"id"`
		Name     string    `json:"name,omitempty"`
		Status   JobStatus `json:"status"`
		Warnings int       `json:"warnings"`
		Degraded bool      `json:"degraded,omitempty"`
		Worker   string    `json:"worker,omitempty"`
	}
	c.mu.Lock()
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq > jobs[k].seq })
	rows := make([]row, 0, len(jobs))
	for _, j := range jobs {
		rows = append(rows, row{ID: j.ID, Name: j.Name, Status: j.Status, Warnings: j.Warnings, Degraded: j.Degraded, Worker: j.Worker})
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleRegister is the worker announcement endpoint: {"url": "http://…"}.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil || req.URL == "" {
		httpError(w, http.StatusBadRequest, `want a JSON body like {"url": "http://host:port"}`)
		return
	}
	if err := c.Register(req.URL); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "registered"})
}

// handleFleet serves the fleet roster and queue state — the operator's
// view of sharding and health.
func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	type row struct {
		URL      string `json:"url"`
		Down     bool   `json:"down,omitempty"`
		Queued   int    `json:"queued"`
		Inflight int    `json:"inflight"`
		Done     int64  `json:"done"`
	}
	c.mu.Lock()
	rows := make([]row, 0, len(c.workers))
	for _, wk := range c.workers {
		rows = append(rows, row{URL: wk.url, Down: wk.down, Queued: len(wk.queue), Inflight: wk.inflight, Done: wk.done})
	}
	resp := struct {
		Workers []row `json:"workers"`
		Pending int   `json:"pending"`
		Orphans int   `json:"orphans"`
	}{rows, c.pending, len(c.orphans)}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleCacheGet serves one raw entry envelope from the hub store.
func (c *Coordinator) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if c.hub == nil {
		httpError(w, http.StatusNotFound, "fleet cache hub disabled (start the coordinator with -cache)")
		return
	}
	data, ok := c.hub.GetEnvelope(r.PathValue("entry"))
	if !ok {
		c.cm.cacheFetchMiss()
		httpError(w, http.StatusNotFound, "no such cache entry")
		return
	}
	c.cm.cacheFetchHit()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleCachePut accepts one entry envelope pushed by a worker. The hub
// validates name and checksum; a rejected push is the pusher's bug, never
// hub state.
func (c *Coordinator) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if c.hub == nil {
		httpError(w, http.StatusNotFound, "fleet cache hub disabled (start the coordinator with -cache)")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading entry: "+err.Error())
		return
	}
	if err := c.hub.PutEnvelope(r.PathValue("entry"), data); err != nil {
		c.cm.cachePutReject()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	c.cm.cachePut()
	w.WriteHeader(http.StatusNoContent)
}

// handleMetrics serves the coordinator's own fleet counters followed by
// the sum of every live worker's /metrics — one scrape sees the fleet as
// a single process.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	var urls []string
	for _, wk := range c.workers {
		if !wk.down {
			urls = append(urls, wk.url)
		}
	}
	pending, live := c.pending, len(urls)
	c.mu.Unlock()

	texts := make([]*promtext.Text, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			resp, err := c.probe.Get(u + "/metrics")
			if err != nil {
				c.cm.scrapeError()
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				c.cm.scrapeError()
				return
			}
			t, err := promtext.Parse(string(body))
			if err != nil {
				c.cm.scrapeError()
				return
			}
			texts[i] = t
		}(i, u)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, c.cm.render(pending, c.cfg.Queue, live, texts))
}

// retainLocked mirrors the worker-side retention FIFO. Caller holds c.mu.
func (c *Coordinator) retainLocked(id string) {
	c.done = append(c.done, id)
	for len(c.done) > c.cfg.Retain {
		dropped := c.done[0]
		delete(c.jobs, dropped)
		c.done = c.done[1:]
		if !c.pruned[dropped] {
			c.pruned[dropped] = true
			c.prFIFO = append(c.prFIFO, dropped)
		}
		bound := 4 * c.cfg.Retain
		if bound < 64 {
			bound = 64
		}
		for len(c.prFIFO) > bound {
			delete(c.pruned, c.prFIFO[0])
			c.prFIFO = c.prFIFO[1:]
		}
	}
}
