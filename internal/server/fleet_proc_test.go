package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/apk"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/promtext"
	"repro/internal/report"
	"repro/internal/testutil"
)

// Multi-process fleet integration suite: real `nchecker coord` and
// `nchecker serve -coord` OS processes on ephemeral ports, driven over
// HTTP with the full 285-app evaluation corpus. The differential oracle
// is the single-process scan: for every app, the fleet's report text must
// be byte-identical to an in-process core scan of the same bytes — across
// worker counts, across sharding, and across a worker killed mid-corpus.
// (The in-process coord_test.go covers the mechanisms; this file proves
// they survive real process boundaries, real sockets, and real SIGKILL.)

// fleetApp is one corpus member with its single-process expectations.
type fleetApp struct {
	name         string
	data         []byte
	wantReport   string
	wantWarnings int
	wantRequests int
}

// fleetCorpusState memoizes the encoded corpus and its single-process
// oracle across the tests in this file: one generation, one reference
// scan of all 285 apps.
var fleetCorpusState struct {
	sync.Once
	apps []fleetApp
	err  error
}

func fleetCorpus(t *testing.T) []fleetApp {
	t.Helper()
	fleetCorpusState.Do(func() {
		members, err := corpus.GenerateCorpus(experiments.Seed)
		if err != nil {
			fleetCorpusState.err = fmt.Errorf("generate corpus: %w", err)
			return
		}
		nc := core.New()
		apps := make([]fleetApp, 0, len(members))
		for _, m := range members {
			data, err := apk.Encode(m.App)
			if err != nil {
				fleetCorpusState.err = fmt.Errorf("encode %s: %w", m.Name, err)
				return
			}
			res := nc.ScanApp(m.App)
			if res.Incomplete {
				fleetCorpusState.err = fmt.Errorf("reference scan of %s degraded", m.Name)
				return
			}
			apps = append(apps, fleetApp{
				name:         m.Name,
				data:         data,
				wantReport:   report.RenderAll(res.Reports),
				wantWarnings: len(res.Reports),
				wantRequests: res.Stats.Requests,
			})
		}
		fleetCorpusState.apps = apps
	})
	if fleetCorpusState.err != nil {
		t.Fatal(fleetCorpusState.err)
	}
	if len(fleetCorpusState.apps) != corpus.CorpusSize {
		t.Fatalf("corpus has %d apps, want %d", len(fleetCorpusState.apps), corpus.CorpusSize)
	}
	return fleetCorpusState.apps
}

// spawnFleet starts one coordinator process and n worker processes, waits
// for every worker to register, and returns the procs. The queue and
// retention bounds are sized so a whole corpus can be in flight at once
// and every finished record survives until the test has read it.
func spawnFleet(t *testing.T, bin string, n int) (coord *testutil.Proc, workers []*testutil.Proc) {
	t.Helper()
	coord = testutil.SpawnServer(t, bin, "coord", "-queue", "400", "-retain", "400")
	for i := 0; i < n; i++ {
		workers = append(workers, testutil.SpawnServer(t, bin, "serve", "-coord", coord.URL, "-jobs", "2"))
	}
	awaitFleetSize(t, coord.URL, n)
	return coord, workers
}

// fleetView mirrors the GET /fleet response.
type fleetView struct {
	Workers []struct {
		URL  string `json:"url"`
		Down bool   `json:"down"`
	} `json:"workers"`
	Pending int `json:"pending"`
	Orphans int `json:"orphans"`
}

func getFleet(t *testing.T, base string) fleetView {
	t.Helper()
	resp, err := http.Get(base + "/fleet")
	if err != nil {
		t.Fatalf("GET /fleet: %v", err)
	}
	defer resp.Body.Close()
	var v fleetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET /fleet decode: %v", err)
	}
	return v
}

// awaitFleetSize polls /fleet until n live workers have registered
// (registration is asynchronous: workers join after their listener is
// up).
func awaitFleetSize(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		live := 0
		for _, w := range getFleet(t, base).Workers {
			if !w.Down {
				live++
			}
		}
		if live >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered before deadline", live, n)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// checkFleetJob asserts one fleet job against its single-process oracle.
func checkFleetJob(t *testing.T, app fleetApp, job testutil.JobView) {
	t.Helper()
	switch {
	case job.Status != "done":
		t.Errorf("%s: fleet job %s finished %q (%s), want done", app.name, job.ID, job.Status, job.Error)
	case job.Degraded:
		t.Errorf("%s: fleet job %s degraded: %s", app.name, job.ID, job.Error)
	case job.ReportText != app.wantReport:
		t.Errorf("%s: fleet report text differs from the single-process scan\nfleet (%d bytes):\n%s\nsingle-process (%d bytes):\n%s",
			app.name, len(job.ReportText), job.ReportText, len(app.wantReport), app.wantReport)
	case job.Warnings != app.wantWarnings || job.Requests != app.wantRequests:
		t.Errorf("%s: fleet counted %d warnings / %d requests, single-process counted %d / %d",
			app.name, job.Warnings, job.Requests, app.wantWarnings, app.wantRequests)
	}
}

// TestFleetProcessCorpusByteIdentical is the headline differential test:
// the full corpus scanned through a coordinator and three real worker
// processes must produce, for every app, byte-identical report text to a
// single-process scan — and the fleet must actually have spread the work.
// The fleet then drains cleanly on SIGTERM (exit 0), workers first.
func TestFleetProcessCorpusByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process fleet and scans the full corpus")
	}
	apps := fleetCorpus(t)
	bin := testutil.BuildNchecker(t)
	coord, workers := spawnFleet(t, bin, 3)
	client := &testutil.ScanClient{Base: coord.URL}

	ids := make([]string, len(apps))
	for i, app := range apps {
		job, err := client.Submit("?name="+url.QueryEscape(app.name), app.data)
		if err != nil {
			t.Fatalf("submit %s: %v", app.name, err)
		}
		ids[i] = job.ID
	}
	deadline := time.Now().Add(3 * time.Minute)
	byWorker := map[string]int{}
	for i, app := range apps {
		job, err := client.Await(ids[i], deadline)
		if err != nil {
			t.Fatalf("await %s (%s): %v", ids[i], app.name, err)
		}
		checkFleetJob(t, app, job)
		byWorker[job.Worker]++
	}
	if len(byWorker) < 2 {
		t.Errorf("content-hash sharding sent the whole corpus to %d worker(s): %v", len(byWorker), byWorker)
	}

	// The aggregated /metrics must be well-formed and account for the
	// whole corpus across coordinator counters and summed worker scans.
	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := promtext.Parse(metrics)
	if err != nil {
		t.Fatalf("aggregated /metrics unparseable: %v", err)
	}
	for _, series := range []string{
		`nchecker_fleet_jobs_total{status="done"}`,
		`nchecker_jobs_total{status="done"}`,
		"nchecker_scan_seconds_count",
	} {
		if v, ok := parsed.Value(series); !ok || v < float64(len(apps)) {
			t.Errorf("aggregated /metrics %s = %v (present=%v), want >= %d", series, v, ok, len(apps))
		}
	}

	// Graceful shutdown: every worker and the coordinator exit 0 on
	// SIGTERM with nothing in flight.
	for _, w := range workers {
		if err := w.Drain(30 * time.Second); err != nil {
			t.Errorf("worker drain: %v", err)
		}
	}
	if err := coord.Drain(30 * time.Second); err != nil {
		t.Errorf("coordinator drain: %v", err)
	}
}

// TestFleetProcessWorkerKilledMidCorpus SIGKILLs one of three workers
// while the corpus is in flight. The coordinator must detect the death
// on its next dispatch, mark the worker down, requeue its work onto the
// survivors, and still complete every app byte-identical to the
// single-process oracle — the degraded-scan fault model of DESIGN.md §12
// exercised with a real process, not a stub.
func TestFleetProcessWorkerKilledMidCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process fleet and scans the full corpus")
	}
	apps := fleetCorpus(t)
	bin := testutil.BuildNchecker(t)
	coord, workers := spawnFleet(t, bin, 3)
	client := &testutil.ScanClient{Base: coord.URL}

	// Submit a first slice, then kill a worker while the rest of the
	// corpus is still being submitted: rendezvous keeps sharding ~1/3 of
	// the remaining apps onto the dead process until its first failed
	// dispatch, so the death is guaranteed to be discovered mid-corpus.
	ids := make([]string, len(apps))
	submit := func(i int) {
		job, err := client.Submit("?name="+url.QueryEscape(apps[i].name), apps[i].data)
		if err != nil {
			t.Fatalf("submit %s: %v", apps[i].name, err)
		}
		ids[i] = job.ID
	}
	const killAfter = 100
	for i := 0; i < killAfter; i++ {
		submit(i)
	}
	workers[0].Kill()
	for i := killAfter; i < len(apps); i++ {
		submit(i)
	}

	deadline := time.Now().Add(3 * time.Minute)
	retried := 0
	for i, app := range apps {
		job, err := client.Await(ids[i], deadline)
		if err != nil {
			t.Fatalf("await %s (%s): %v", ids[i], app.name, err)
		}
		checkFleetJob(t, app, job)
		if job.Attempts > 1 {
			retried++
		}
		if job.Worker == "http://"+workers[0].Addr && job.Attempts == 1 {
			// Finishing on the killed worker in one attempt is only
			// possible for jobs that completed before the SIGKILL landed;
			// anything else would mean the coordinator trusted a corpse.
			continue
		}
	}
	fleet := getFleet(t, coord.URL)
	downSeen := false
	for _, w := range fleet.Workers {
		if w.URL == "http://"+workers[0].Addr && w.Down {
			downSeen = true
		}
	}
	if !downSeen {
		t.Errorf("killed worker %s not marked down in /fleet: %+v", workers[0].Addr, fleet)
	}
	if retried == 0 {
		t.Error("no job recorded a retry; the kill landed after the corpus drained — raise killAfter")
	}
	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := promtext.Parse(metrics)
	if err != nil {
		t.Fatalf("aggregated /metrics unparseable after worker death: %v", err)
	}
	if v, ok := parsed.Value("nchecker_fleet_workers_down_total"); !ok || v < 1 {
		t.Errorf("nchecker_fleet_workers_down_total = %v (present=%v), want >= 1", v, ok)
	}
	if v, ok := parsed.Value(`nchecker_fleet_jobs_total{status="done"}`); !ok || v != float64(len(apps)) {
		t.Errorf(`nchecker_fleet_jobs_total{status="done"} = %v (present=%v), want %d`, v, ok, len(apps))
	}
}
