package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/checkers"
)

// metrics is the server's cumulative observability state, rendered at
// /metrics in the Prometheus text exposition format. Everything is built
// by folding per-scan checkers.MetricsSnapshot values (plus job-lifecycle
// events) into counters and one latency histogram — no client library,
// just the text format, so the dependency footprint stays zero.
//
// The metric catalog (DESIGN.md §8):
//
//	nchecker_jobs_submitted_total            jobs accepted into the queue
//	nchecker_jobs_total{status=...}          terminal outcomes: done, degraded, failed, rejected
//	nchecker_degraded_scans_total            scans that finished Incomplete
//	nchecker_reports_total                   warnings emitted across all jobs
//	nchecker_jobs_inflight                   gauge: jobs currently scanning
//	nchecker_queue_depth                     gauge: jobs waiting for a worker
//	nchecker_queue_capacity                  gauge: admission-queue bound
//	nchecker_scan_seconds                    histogram: end-to-end scan wall time
//	nchecker_stage_seconds_total{stage=...}  cumulative per-pipeline-stage wall time
//	nchecker_stage_items_total{stage=...}    work units examined per stage
//	nchecker_stage_reports_total{stage=...}  warnings emitted per stage
//	nchecker_checker_warnings_total{family=...,checker=...}
//	                                         warnings emitted per checker family
//	                                         (the stage rows restricted to the
//	                                         eight family-owned stages, labeled
//	                                         with the family number)
//	nchecker_app_methods_total               app methods scanned
//	nchecker_request_sites_total             request sites discovered
//	nchecker_cache_<counter>_total           every checkers.CacheStats counter
//	                                         (store_hits, store_misses, summaries_seeded, ...)
//	nchecker_targeted_<counter>_total        targeted-engine work counters
//	                                         (seed_methods, closure_methods, closure_classes,
//	                                         classes_decoded, classes_skipped)
//	nchecker_validate_<counter>_total        dynamic-validation counters
//	                                         (confirmed, unconfirmed, not_validated,
//	                                         replays, budget_hits)
type metrics struct {
	mu sync.Mutex

	submitted int64
	jobs      map[string]int64 // terminal status → count
	degraded  int64
	reports   int64
	inflight  int64

	appMethods int64
	sites      int64

	scanHist histogram

	stageSeconds map[string]float64
	stageItems   map[string]int64
	stageReports map[string]int64
	checker      map[string]int64 // family-owned stage name → warnings

	cache    map[string]int64 // CounterMap keys
	targeted map[string]int64 // TargetedStats counter keys
	validate map[string]int64 // ValidateStats counter keys
}

func newMetrics() *metrics {
	return &metrics{
		jobs:         make(map[string]int64),
		scanHist:     newHistogram(),
		stageSeconds: make(map[string]float64),
		stageItems:   make(map[string]int64),
		stageReports: make(map[string]int64),
		checker:      make(map[string]int64),
		cache:        make(map[string]int64),
		targeted:     make(map[string]int64),
		validate:     make(map[string]int64),
	}
}

// histogram is a fixed-bucket Prometheus histogram (cumulative buckets,
// _sum and _count).
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []int64   // per-bucket (non-cumulative) observation counts
	sum    float64
	total  int64
}

func newHistogram() histogram {
	return histogram{
		bounds: []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10},
		counts: make([]int64, 12),
	}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// jobSubmitted counts an accepted job.
func (m *metrics) jobSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// jobRejected counts an admission-queue rejection.
func (m *metrics) jobRejected() {
	m.mu.Lock()
	m.jobs["rejected"]++
	m.mu.Unlock()
}

// scanStarted / scanFinished bracket the in-flight gauge.
func (m *metrics) scanStarted() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

// jobFailed records a job that produced no scan result (decode error).
func (m *metrics) jobFailed() {
	m.mu.Lock()
	m.inflight--
	m.jobs["failed"]++
	m.mu.Unlock()
}

// jobDone folds a finished scan's snapshot into the cumulative state.
func (m *metrics) jobDone(snap checkers.MetricsSnapshot, degraded bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight--
	if degraded {
		m.jobs["degraded"]++
		m.degraded++
	} else {
		m.jobs["done"]++
	}
	m.reports += snap.Reports
	m.appMethods += snap.AppMethods
	m.sites += snap.Sites
	m.scanHist.observe(snap.TotalSeconds)
	for _, s := range snap.Stages {
		m.stageSeconds[s.Name] += s.Seconds
		m.stageItems[s.Name] += s.Items
		m.stageReports[s.Name] += s.Reports
		if checkers.FamilyOfStage(s.Name) > 0 {
			m.checker[s.Name] += s.Reports
		}
	}
	for k, v := range snap.Counters {
		m.cache[k] += v
	}
	for k, v := range snap.Targeted {
		m.targeted[k] += v
	}
	for k, v := range snap.Validate {
		m.validate[k] += v
	}
}

// fnum renders a float the way Prometheus expects (shortest round-trip).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// render emits the Prometheus text exposition. Gauges whose truth lives in
// the server (queue depth/capacity) are passed in. Output is
// deterministic: map-keyed families are emitted in sorted label order.
func (m *metrics) render(queueDepth, queueCap int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("nchecker_jobs_submitted_total", "Scan jobs accepted into the admission queue.", m.submitted)

	fmt.Fprintf(&b, "# HELP nchecker_jobs_total Scan jobs by terminal status.\n# TYPE nchecker_jobs_total counter\n")
	for _, st := range sortedKeys(m.jobs) {
		fmt.Fprintf(&b, "nchecker_jobs_total{status=%q} %d\n", st, m.jobs[st])
	}

	counter("nchecker_degraded_scans_total", "Scans that finished Incomplete (stage panic, deadline, cancellation).", m.degraded)
	counter("nchecker_reports_total", "Warning reports emitted across all jobs.", m.reports)
	gauge("nchecker_jobs_inflight", "Jobs currently being scanned.", m.inflight)
	gauge("nchecker_queue_depth", "Jobs waiting in the admission queue.", int64(queueDepth))
	gauge("nchecker_queue_capacity", "Admission queue bound.", int64(queueCap))

	fmt.Fprintf(&b, "# HELP nchecker_scan_seconds End-to-end scan wall time per job.\n# TYPE nchecker_scan_seconds histogram\n")
	cum := int64(0)
	for i, bound := range m.scanHist.bounds {
		cum += m.scanHist.counts[i]
		fmt.Fprintf(&b, "nchecker_scan_seconds_bucket{le=%q} %d\n", fnum(bound), cum)
	}
	cum += m.scanHist.counts[len(m.scanHist.bounds)]
	fmt.Fprintf(&b, "nchecker_scan_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "nchecker_scan_seconds_sum %s\n", fnum(m.scanHist.sum))
	fmt.Fprintf(&b, "nchecker_scan_seconds_count %d\n", m.scanHist.total)

	fmt.Fprintf(&b, "# HELP nchecker_stage_seconds_total Cumulative wall time per pipeline stage.\n# TYPE nchecker_stage_seconds_total counter\n")
	for _, st := range sortedKeysF(m.stageSeconds) {
		fmt.Fprintf(&b, "nchecker_stage_seconds_total{stage=%q} %s\n", st, fnum(m.stageSeconds[st]))
	}
	fmt.Fprintf(&b, "# HELP nchecker_stage_items_total Work units examined per pipeline stage.\n# TYPE nchecker_stage_items_total counter\n")
	for _, st := range sortedKeys(m.stageItems) {
		fmt.Fprintf(&b, "nchecker_stage_items_total{stage=%q} %d\n", st, m.stageItems[st])
	}
	fmt.Fprintf(&b, "# HELP nchecker_stage_reports_total Warnings emitted per pipeline stage.\n# TYPE nchecker_stage_reports_total counter\n")
	for _, st := range sortedKeys(m.stageReports) {
		fmt.Fprintf(&b, "nchecker_stage_reports_total{stage=%q} %d\n", st, m.stageReports[st])
	}

	fmt.Fprintf(&b, "# HELP nchecker_checker_warnings_total Warnings emitted per checker family.\n# TYPE nchecker_checker_warnings_total counter\n")
	for _, st := range sortedKeys(m.checker) {
		fmt.Fprintf(&b, "nchecker_checker_warnings_total{family=\"%d\",checker=%q} %d\n",
			checkers.FamilyOfStage(st), st, m.checker[st])
	}

	counter("nchecker_app_methods_total", "Body-bearing app methods scanned.", m.appMethods)
	counter("nchecker_request_sites_total", "Network request sites discovered.", m.sites)

	for _, k := range sortedKeys(m.cache) {
		counter("nchecker_cache_"+k+"_total", "Cumulative checkers.CacheStats counter "+k+".", m.cache[k])
	}
	for _, k := range sortedKeys(m.targeted) {
		counter("nchecker_targeted_"+k+"_total", "Cumulative targeted-engine counter "+k+".", m.targeted[k])
	}
	for _, k := range sortedKeys(m.validate) {
		counter("nchecker_validate_"+k+"_total", "Cumulative dynamic-validation counter "+k+".", m.validate[k])
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
