package server

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/promtext"
)

// coordMetrics is the coordinator's own observability state: fleet
// lifecycle and dispatch counters under nchecker_fleet_*, kept apart from
// the per-scan nchecker_* series the workers own. GET /metrics renders
// these followed by the promtext.Sum of every live worker's scrape, so
// one Prometheus target sees the whole fleet.
type coordMetrics struct {
	mu sync.Mutex

	jobsSubmitted int64
	jobsRejected  int64
	jobsDone      int64
	jobsDegraded  int64
	jobsFailed    int64

	retries         int64
	hedges          int64
	steals          int64
	degradedRetries int64

	workersJoined int64
	workersDown   int64

	cacheFetchHits   int64
	cacheFetchMisses int64
	cachePuts        int64
	cachePutRejects  int64

	scrapeErrors int64
}

func newCoordMetrics() *coordMetrics { return &coordMetrics{} }

func (m *coordMetrics) jobSubmitted()  { m.mu.Lock(); m.jobsSubmitted++; m.mu.Unlock() }
func (m *coordMetrics) jobRejected()   { m.mu.Lock(); m.jobsRejected++; m.mu.Unlock() }
func (m *coordMetrics) jobFailed()     { m.mu.Lock(); m.jobsFailed++; m.mu.Unlock() }
func (m *coordMetrics) retry()         { m.mu.Lock(); m.retries++; m.mu.Unlock() }
func (m *coordMetrics) hedge()         { m.mu.Lock(); m.hedges++; m.mu.Unlock() }
func (m *coordMetrics) steal()         { m.mu.Lock(); m.steals++; m.mu.Unlock() }
func (m *coordMetrics) degradedRetry() { m.mu.Lock(); m.degradedRetries++; m.mu.Unlock() }
func (m *coordMetrics) workerJoined()  { m.mu.Lock(); m.workersJoined++; m.mu.Unlock() }
func (m *coordMetrics) workerDown()    { m.mu.Lock(); m.workersDown++; m.mu.Unlock() }
func (m *coordMetrics) cacheFetchHit() { m.mu.Lock(); m.cacheFetchHits++; m.mu.Unlock() }
func (m *coordMetrics) cacheFetchMiss() {
	m.mu.Lock()
	m.cacheFetchMisses++
	m.mu.Unlock()
}
func (m *coordMetrics) cachePut()       { m.mu.Lock(); m.cachePuts++; m.mu.Unlock() }
func (m *coordMetrics) cachePutReject() { m.mu.Lock(); m.cachePutRejects++; m.mu.Unlock() }
func (m *coordMetrics) scrapeError()    { m.mu.Lock(); m.scrapeErrors++; m.mu.Unlock() }

func (m *coordMetrics) jobDone(degraded bool) {
	m.mu.Lock()
	m.jobsDone++
	if degraded {
		m.jobsDegraded++
	}
	m.mu.Unlock()
}

// render emits the coordinator's Prometheus text: fleet counters and
// gauges first, then the aggregated worker scrape (nil entries are
// workers whose scrape failed this cycle — counted in scrape_errors).
func (m *coordMetrics) render(pending, queueCap, liveWorkers int, workers []*promtext.Text) string {
	m.mu.Lock()
	var b strings.Builder
	counter := func(name, help string, pairs ...[2]interface{}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, p := range pairs {
			if label, _ := p[0].(string); label != "" {
				fmt.Fprintf(&b, "%s{%s} %d\n", name, label, p[1])
			} else {
				fmt.Fprintf(&b, "%s %d\n", name, p[1])
			}
		}
	}
	counter("nchecker_fleet_jobs_submitted_total", "Scan jobs admitted by the coordinator.",
		[2]interface{}{"", m.jobsSubmitted})
	counter("nchecker_fleet_jobs_rejected_total", "Scan jobs rejected by the fleet queue bound.",
		[2]interface{}{"", m.jobsRejected})
	counter("nchecker_fleet_jobs_total", "Fleet jobs by terminal status.",
		[2]interface{}{`status="done"`, m.jobsDone},
		[2]interface{}{`status="failed"`, m.jobsFailed})
	counter("nchecker_fleet_jobs_degraded_total", "Fleet jobs finalized with a degraded result.",
		[2]interface{}{"", m.jobsDegraded})
	counter("nchecker_fleet_retries_total", "Dispatch attempts retried on another worker.",
		[2]interface{}{"", m.retries})
	counter("nchecker_fleet_degraded_retries_total", "Degraded results retried on another worker.",
		[2]interface{}{"", m.degradedRetries})
	counter("nchecker_fleet_hedges_total", "Slow dispatches speculatively duplicated.",
		[2]interface{}{"", m.hedges})
	counter("nchecker_fleet_steals_total", "Dispatches stolen by idle workers.",
		[2]interface{}{"", m.steals})
	counter("nchecker_fleet_workers_joined_total", "Worker registrations accepted.",
		[2]interface{}{"", m.workersJoined})
	counter("nchecker_fleet_workers_down_total", "Workers marked down after a failed probe.",
		[2]interface{}{"", m.workersDown})
	counter("nchecker_fleet_cache_fetch_total", "Cache hub fetches by outcome.",
		[2]interface{}{`outcome="hit"`, m.cacheFetchHits},
		[2]interface{}{`outcome="miss"`, m.cacheFetchMisses})
	counter("nchecker_fleet_cache_puts_total", "Cache hub pushes by outcome.",
		[2]interface{}{`outcome="accepted"`, m.cachePuts},
		[2]interface{}{`outcome="rejected"`, m.cachePutRejects})
	counter("nchecker_fleet_scrape_errors_total", "Worker /metrics scrapes that failed.",
		[2]interface{}{"", m.scrapeErrors})
	m.mu.Unlock()

	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("nchecker_fleet_workers_live", "Workers currently accepting dispatches.", liveWorkers)
	gauge("nchecker_fleet_pending", "Dispatches queued fleet-wide.", pending)
	gauge("nchecker_fleet_queue_capacity", "Fleet admission queue bound.", queueCap)

	alive := workers[:0:0]
	for _, t := range workers {
		if t != nil {
			alive = append(alive, t)
		}
	}
	if len(alive) > 0 {
		b.WriteString(promtext.Sum(alive...).Render())
	}
	return b.String()
}
