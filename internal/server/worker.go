package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"time"

	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/report"
)

// This file is the worker half of the scan fleet (DESIGN.md §12): the
// synchronous scan endpoint the coordinator dispatches to, and the
// fleet-join client that registers a `nchecker serve -coord` worker with
// its coordinator and wires the worker's cache store to the
// coordinator's replication hub.

// handleScanSync runs one scan inline in the request and answers the
// finished Job record — the dispatch surface `nchecker coord` drives.
// Unlike POST /scan there is no queue and no job store: the coordinator
// owns job bookkeeping, retention, and retries; the worker just bounds
// concurrency to its -jobs slots and folds the scan into its /metrics.
// Canceling the request (a lost hedge race, a dead coordinator) cancels
// the scan via the PR 2 degradation path.
func (s *Server) handleScanSync(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("app container exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) == 0 {
		httpError(w, http.StatusBadRequest, "empty request body: POST the app container bytes")
		return
	}
	timeout, err := jobTimeout(r.URL.Query().Get("timeout"), s.cfg.JobTimeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode, err := jobMode(r.URL.Query().Get("mode"), s.cfg.Scan.Mode)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	validate, err := jobValidate(r.URL.Query().Get("validate"), s.cfg.Scan.Validate)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	checkerSet, err := jobCheckers(r.URL.Query().Get("checkers"), s.cfg.Scan.Checkers)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// One -jobs slot per sync scan, so a coordinator fanning out wider
	// than the worker's budget queues here instead of oversubscribing the
	// pipeline pools. A canceled request stops waiting immediately.
	select {
	case s.syncSem <- struct{}{}:
		defer func() { <-s.syncSem }()
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, "canceled while waiting for a scan slot")
		return
	}

	s.mu.Lock()
	s.nextID++
	job := Job{
		ID:        fmt.Sprintf("sync-%d", s.nextID),
		Name:      r.URL.Query().Get("name"),
		BodyBytes: int64(len(body)),
		Submitted: time.Now(),
	}
	s.mu.Unlock()

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	s.metrics.scanStarted()
	res, err := s.checker.WithMode(mode).WithValidate(validate).WithCheckers(checkerSet).ScanBytesContext(ctx, body)
	finished := time.Now()
	job.Started, job.Finished = &start, &finished

	if err != nil {
		job.Status = StatusFailed
		job.Error = err.Error()
		s.metrics.jobFailed()
		s.log.Error("sync job failed",
			"id", job.ID, "name", job.Name, "bytes", job.BodyBytes,
			"duration", finished.Sub(start), "error", err.Error())
	} else {
		job.Status = StatusDone
		job.Requests = res.Stats.Requests
		job.Warnings = len(res.Reports)
		job.Degraded = res.Incomplete
		job.ReportText = report.RenderAll(res.Reports)
		job.Reports = res.Reports
		if resErr := res.Err(); resErr != nil {
			job.Error = resErr.Error()
		}
		s.metrics.jobDone(res.Diagnostics.MetricsSnapshot(), res.Incomplete)
		s.log.Info("sync job done",
			"id", job.ID, "name", job.Name, "bytes", job.BodyBytes,
			"duration", finished.Sub(start), "requests", job.Requests,
			"warnings", job.Warnings, "degraded", job.Degraded)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&job)
}

// FleetJoin configures a worker's membership in a fleet.
type FleetJoin struct {
	// Coord is the coordinator's base URL (e.g. "http://127.0.0.1:9000").
	Coord string
	// Self is this worker's own base URL, as the coordinator must reach it.
	Self string
	// Logger receives join/replication logs; nil means slog.Default.
	Logger *slog.Logger
}

// JoinFleet registers the worker with its coordinator and, when the scan
// options carry a cache directory, wires the worker's shared cache store
// to the coordinator's replication hub — after this, any fleet member's
// cache hit (whole-app results and per-class summary seeds alike) serves
// every worker. Registration retries briefly (the coordinator may still
// be starting); failure to join is an error so the operator notices, but
// the worker itself keeps serving standalone.
func JoinFleet(cfg FleetJoin, scan core.Options) error {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	coord, err := url.Parse(cfg.Coord)
	if err != nil || coord.Scheme == "" || coord.Host == "" {
		return fmt.Errorf("fleet join: invalid coordinator URL %q", cfg.Coord)
	}
	base := coord.Scheme + "://" + coord.Host

	if scan.CacheDir != "" && scan.CacheMode != core.CacheOff {
		st, err := cachestore.Shared(scan.CacheDir, cachestore.Options{MaxBytes: scan.CacheMaxBytes})
		if err != nil {
			cfg.Logger.Warn("fleet join: cache replication disabled", "error", err.Error())
		} else {
			st.SetReplicator(&httpReplicator{base: base + "/cache/", log: cfg.Logger})
			cfg.Logger.Info("fleet join: cache replication enabled", "hub", base+"/cache/")
		}
	}

	payload, err := json.Marshal(map[string]string{"url": cfg.Self})
	if err != nil {
		return fmt.Errorf("fleet join: %w", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if attempt > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		resp, err := client.Post(base+"/fleet/register", "application/json", bytes.NewReader(payload))
		if err != nil {
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			cfg.Logger.Info("fleet join: registered", "coordinator", base, "self", cfg.Self)
			return nil
		}
		lastErr = fmt.Errorf("register = %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return fmt.Errorf("fleet join: coordinator %s unreachable: %w", base, lastErr)
}

// httpReplicator is the worker-side cachestore.Replicator speaking to the
// coordinator's /cache/{entry} hub. Every failure degrades to a miss (nil
// fetch) or a dropped push — replication can only ever add cache hits.
type httpReplicator struct {
	base string // hub URL prefix ending in "/cache/"
	log  *slog.Logger
}

// replClient bounds every replication round trip: a slow or dead hub
// must cost a scan at most this long before it falls back cold.
var replClient = &http.Client{Timeout: 10 * time.Second}

func (h *httpReplicator) Fetch(name string) []byte {
	resp, err := replClient.Get(h.base + name)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	return data
}

func (h *httpReplicator) Push(name string, data []byte) {
	req, err := http.NewRequest(http.MethodPut, h.base+name, bytes.NewReader(data))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := replClient.Do(req)
	if err != nil {
		if h.log != nil {
			h.log.Debug("cache push failed", "entry", name, "error", err.Error())
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
