package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/testutil"
)

// fixtureAppBytes encodes the canonical buggy fixture app (the same shape
// internal/core's tests scan): one Activity firing an unchecked,
// untimeouted, unvalidated request. The encoding lives in
// internal/testutil so the smoke clients and multi-process tests share it.
func fixtureAppBytes(t *testing.T) []byte {
	t.Helper()
	return testutil.MustFixtureApp(t)
}

// quietLogger keeps test output clean while still exercising the slog
// paths.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

// newTestServer builds, starts, and wires the service behind httptest,
// with cleanup registered.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

// submit POSTs app bytes and returns the accepted job ID.
func submit(t *testing.T, ts *httptest.Server, body []byte, query string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/scan"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /scan: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /scan = %d, want 202; body: %s", resp.StatusCode, b)
	}
	var ack struct{ ID, Status string }
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	if ack.ID == "" || ack.Status != string(StatusQueued) {
		t.Fatalf("ack = %+v", ack)
	}
	return ack.ID
}

// await polls GET /scan/{id} until the job reaches a terminal status.
func await(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/scan/" + id)
		if err != nil {
			t.Fatalf("GET /scan/%s: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("GET /scan/%s = %d; body: %s", id, resp.StatusCode, b)
		}
		var job Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		if job.Status == StatusDone || job.Status == StatusFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %q", id, job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestScanOverHTTPMatchesCLI is the tentpole's acceptance check: the
// report text a job returns must be byte-identical to what the CLI's text
// mode prints for the same app (both sides render through
// report.RenderAll), and the stats must agree with a direct core scan.
func TestScanOverHTTPMatchesCLI(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{})

	id := submit(t, ts, app, "?name=demo.apk")
	job := await(t, ts, id)
	if job.Status != StatusDone || job.Degraded {
		t.Fatalf("job = %+v, want clean done", job)
	}
	if job.Name != "demo.apk" {
		t.Errorf("job name = %q", job.Name)
	}

	direct, err := core.New().ScanBytes(app)
	if err != nil {
		t.Fatalf("direct scan: %v", err)
	}
	wantText := report.RenderAll(direct.Reports)
	if wantText == "" {
		t.Fatal("fixture app produced no reports")
	}
	if job.ReportText != wantText {
		t.Errorf("HTTP report text differs from CLI text:\n--- http ---\n%s\n--- cli ---\n%s", job.ReportText, wantText)
	}
	if job.Warnings != len(direct.Reports) || job.Requests != direct.Stats.Requests {
		t.Errorf("job counters (%d warnings, %d requests) disagree with direct scan (%d, %d)",
			job.Warnings, job.Requests, len(direct.Reports), direct.Stats.Requests)
	}
	if len(job.Reports) != len(direct.Reports) {
		t.Errorf("structured reports: %d vs %d", len(job.Reports), len(direct.Reports))
	}
}

// TestHealthzAndMetrics: the liveness probe answers 200, and /metrics
// exposes the scan counters the ISSUE's acceptance criteria name — stage
// timings, cache counters, queue depth — in Prometheus text format.
func TestHealthzAndMetrics(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{})
	await(t, ts, submit(t, ts, app, ""))

	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	_, metricsText := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`nchecker_jobs_total{status="done"} 1`,
		"nchecker_jobs_submitted_total 1",
		"nchecker_degraded_scans_total 0",
		"nchecker_jobs_inflight 0",
		"nchecker_queue_depth 0",
		"nchecker_scan_seconds_count 1",
		`nchecker_stage_seconds_total{stage="build"}`,
		`nchecker_stage_items_total{stage="discover"}`,
		`nchecker_checker_warnings_total{family="1",checker="settings"}`,
		`nchecker_checker_warnings_total{family="8",checker="retryloops"}`,
		"nchecker_cache_cfg_requests_total",
		"nchecker_cache_store_hits_total 0",
		"# TYPE nchecker_scan_seconds histogram",
		"# TYPE nchecker_jobs_total counter",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metricsText, "nchecker_reports_total") {
		t.Errorf("/metrics missing reports counter")
	}
}

// TestDeadlineHitJobIsDegradedNot500: a job whose deadline expires returns
// a degraded report over HTTP 200 — never a 500 — and bumps the degraded
// counter.
func TestDeadlineHitJobIsDegradedNot500(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{JobTimeout: time.Nanosecond})

	job := await(t, ts, submit(t, ts, app, ""))
	if job.Status != StatusDone {
		t.Fatalf("deadline-hit job status = %q, want done (degraded, not failed)", job.Status)
	}
	if !job.Degraded {
		t.Fatal("deadline-hit job not marked degraded")
	}
	if job.Error == "" {
		t.Error("degraded job carries no error explanation")
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"nchecker_degraded_scans_total 1",
		`nchecker_jobs_total{status="degraded"} 1`,
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPerRequestTimeoutCannotExceedServerBound: ?timeout= may tighten the
// server deadline but never loosen it.
func TestPerRequestTimeoutCannotExceedServerBound(t *testing.T) {
	if d, err := jobTimeout("5s", time.Minute); err != nil || d != 5*time.Second {
		t.Errorf("tighten: %v %v", d, err)
	}
	if d, err := jobTimeout("5m", time.Minute); err != nil || d != time.Minute {
		t.Errorf("loosen clamped: %v %v", d, err)
	}
	if d, err := jobTimeout("", time.Minute); err != nil || d != time.Minute {
		t.Errorf("default: %v %v", d, err)
	}
	if _, err := jobTimeout("banana", time.Minute); err == nil {
		t.Error("invalid duration accepted")
	}
	if _, err := jobTimeout("-3s", 0); err == nil {
		t.Error("negative duration accepted")
	}
}

// TestQueueFullRejectsWith429: with no workers draining, the bounded
// admission queue fills and the next POST is rejected, visible in metrics.
func TestQueueFullRejectsWith429(t *testing.T) {
	app := fixtureAppBytes(t)
	s := New(Config{Queue: 1, Logger: quietLogger()})
	// Deliberately not started: the queue cannot drain.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit(t, ts, app, "") // fills the queue
	resp, err := http.Post(ts.URL+"/scan", "application/octet-stream", bytes.NewReader(app))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST with full queue = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After")
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, `nchecker_jobs_total{status="rejected"} 1`) {
		t.Errorf("/metrics missing rejection counter:\n%s", metricsText)
	}
	if !strings.Contains(metricsText, "nchecker_queue_depth 1") {
		t.Errorf("/metrics queue depth not 1")
	}
}

// TestBadSubmissions: an empty body is a 400; undecodable bytes are
// accepted but the job fails (the scan never 500s).
func TestBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/scan", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("POST empty: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body = %d, want 400", resp.StatusCode)
	}

	job := await(t, ts, submit(t, ts, []byte("not an apk container"), ""))
	if job.Status != StatusFailed || job.Error == "" {
		t.Fatalf("garbage job = %+v, want failed with error", job)
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, `nchecker_jobs_total{status="failed"} 1`) {
		t.Errorf("/metrics missing failed counter")
	}

	if code, _ := getBody(t, ts.URL+"/scan/job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
}

// TestOversizedBodyRejected: MaxBodyBytes caps uploads with 413.
func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, err := http.Post(ts.URL+"/scan", "application/octet-stream",
		bytes.NewReader(bytes.Repeat([]byte("x"), 1024)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

// TestConcurrentJobsShareOneChecker: many concurrent jobs over one server
// complete with identical report text (run under -race in CI: this is the
// service's concurrency contract over the shared Checker, registry, and
// job store).
func TestConcurrentJobsShareOneChecker(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{Jobs: 4, Queue: 16})

	const n = 8
	ids := make([]string, n)
	for i := range ids {
		ids[i] = submit(t, ts, app, fmt.Sprintf("?name=app-%d.apk", i))
	}
	var text string
	for i, id := range ids {
		job := await(t, ts, id)
		if job.Status != StatusDone || job.Degraded {
			t.Fatalf("job %s = %+v", id, job)
		}
		if i == 0 {
			text = job.ReportText
		} else if job.ReportText != text {
			t.Errorf("job %s report text differs from job %s", id, ids[0])
		}
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, fmt.Sprintf(`nchecker_jobs_total{status="done"} %d`, n)) {
		t.Errorf("/metrics done counter wrong:\n%s", metricsText)
	}
}

// TestJobsShareOnePersistentCache: with Options.CacheDir set, the second
// scan of the same bytes is answered from the store the first job wrote —
// all jobs share one cachestore.Shared instance.
func TestJobsShareOnePersistentCache(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{
		Scan: core.Options{CacheDir: t.TempDir(), CacheMode: core.CacheRW},
	})

	first := await(t, ts, submit(t, ts, app, ""))
	second := await(t, ts, submit(t, ts, app, ""))
	if first.ReportText != second.ReportText {
		t.Error("warm report text differs from cold")
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "nchecker_cache_store_hits_total 1") {
		t.Errorf("/metrics: expected one store hit after identical resubmission:\n%s",
			grepLines(metricsText, "nchecker_cache_store_"))
	}
	if !strings.Contains(metricsText, "nchecker_cache_store_puts_total") {
		t.Errorf("/metrics missing store put counter")
	}
}

// TestRetentionPrunesOldestFinished: finished jobs beyond Retain expire
// (410 Gone — known id, record pruned) while newer ones survive; /scans
// reflects the retained set.
func TestRetentionPrunesOldestFinished(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{Retain: 2})

	var ids []string
	for i := 0; i < 3; i++ {
		id := submit(t, ts, app, "")
		await(t, ts, id) // serialize so completion order is submission order
		ids = append(ids, id)
	}
	if code, _ := getBody(t, ts.URL+"/scan/"+ids[0]); code != http.StatusGone {
		t.Errorf("oldest finished job = %d, want 410 (pruned)", code)
	}
	for _, id := range ids[1:] {
		if code, _ := getBody(t, ts.URL+"/scan/"+id); code != http.StatusOK {
			t.Errorf("retained job %s = %d, want 200", id, code)
		}
	}
	_, listBody := getBody(t, ts.URL+"/scans")
	var rows []map[string]any
	if err := json.Unmarshal([]byte(listBody), &rows); err != nil {
		t.Fatalf("/scans not JSON: %v", err)
	}
	if len(rows) != 2 {
		t.Errorf("/scans lists %d jobs, want 2", len(rows))
	}
	if len(rows) == 2 && rows[0]["id"] != ids[2] {
		t.Errorf("/scans not newest-first: %v", rows)
	}
}

// TestModeParameterOverride: a job submitted with ?mode=targeted runs
// through the demand-driven engine, produces byte-identical report text
// to a full-mode job over the same bytes, and folds the
// nchecker_targeted_* counters into /metrics. An unknown mode is rejected
// up front with a one-line 400 — never queued.
func TestModeParameterOverride(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{})

	full := await(t, ts, submit(t, ts, app, ""))
	targeted := await(t, ts, submit(t, ts, app, "?mode=targeted"))
	if targeted.Status != StatusDone || targeted.Degraded {
		t.Fatalf("targeted job = %+v, want clean done", targeted)
	}
	if targeted.ReportText != full.ReportText || targeted.Warnings != full.Warnings {
		t.Errorf("targeted job output differs from full:\n--- targeted ---\n%s\n--- full ---\n%s",
			targeted.ReportText, full.ReportText)
	}

	_, metricsText := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"nchecker_targeted_seed_methods_total",
		"nchecker_targeted_closure_methods_total",
		"nchecker_targeted_classes_decoded_total",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q after a targeted job:\n%s", want,
				grepLines(metricsText, "nchecker_targeted_"))
		}
	}

	resp, err := http.Post(ts.URL+"/scan?mode=bogus", "application/octet-stream", bytes.NewReader(app))
	if err != nil {
		t.Fatalf("POST bad mode: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode = %d, want 400; body: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "invalid engine mode") || !strings.Contains(string(body), "bogus") {
		t.Errorf("bad-mode error %q should name the rejected value", body)
	}
}

// TestServerDefaultMode: a server started with Scan.Mode targeted applies
// it to jobs that pass no ?mode=, and ?mode=full overrides back per job —
// with identical reports either way.
func TestServerDefaultMode(t *testing.T) {
	app := fixtureAppBytes(t)
	_, ts := newTestServer(t, Config{Scan: core.Options{Mode: core.ModeTargeted}})

	def := await(t, ts, submit(t, ts, app, ""))
	over := await(t, ts, submit(t, ts, app, "?mode=full"))
	if def.Status != StatusDone || over.Status != StatusDone {
		t.Fatalf("jobs = %+v / %+v", def, over)
	}
	if def.ReportText != over.ReportText {
		t.Error("default-targeted and ?mode=full jobs should produce identical reports")
	}
	_, metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "nchecker_targeted_closure_methods_total") {
		t.Errorf("/metrics missing targeted counters after a default-mode targeted job:\n%s",
			grepLines(metricsText, "nchecker_targeted_"))
	}
}

// TestPprofMounted: the pprof index answers on the service mux.
func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getBody(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// grepLines filters s to lines containing sub, for focused failure output.
func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
