package cachestore

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// This file is the fleet cache-replication path (DESIGN.md §12): a Store
// can be wired to a Replicator so one process's cache traffic serves a
// whole worker fleet. The worker side sets a Replicator that talks to the
// coordinator's cache hub over HTTP; the hub side is itself a plain Store
// exposed through GetEnvelope/PutEnvelope, which move checksummed entry
// envelopes verbatim — the envelope checksum (codec.go) rides along, so a
// truncated or corrupted transfer is rejected exactly like on-disk rot.
//
// Failure semantics match the rest of the store: replication trouble of
// any kind degrades to a local miss (cold scan), never to an error the
// scan must handle. A fetched entry is committed locally before use, so
// subsequent scans hit without touching the network; a locally committed
// entry is pushed best-effort, so peers can hit without recomputing.

// Replicator is a remote entry exchange: Fetch returns the raw entry
// envelope for a filename (nil on miss or any failure), Push offers a
// freshly committed envelope to the remote side (best-effort, errors
// swallowed by the implementation). Implementations must be safe for
// concurrent use.
type Replicator interface {
	Fetch(name string) []byte
	Push(name string, data []byte)
}

// SetReplicator wires r into the store: Get consults it after a local
// miss (committing fetched entries locally), Put pushes committed entries
// to it. Pass nil to detach. Safe to call concurrently with store use.
func (s *Store) SetReplicator(r Replicator) {
	s.replMu.Lock()
	s.repl = r
	s.replMu.Unlock()
}

// replicator returns the current Replicator, or nil.
func (s *Store) replicator() Replicator {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	return s.repl
}

// ParseFilename reverses Key.Filename: it accepts exactly the names a
// committed entry can carry (kind byte, dash, 64 hex digits, entry
// extension) so the cache-hub HTTP surface can validate requested names
// before touching the filesystem.
func ParseFilename(name string) (Key, bool) {
	var k Key
	if len(name) != 2+2*len(k.Sum)+len(entryExt) || !strings.HasSuffix(name, entryExt) {
		return k, false
	}
	if name[0] != KindResult && name[0] != KindSummary {
		return k, false
	}
	if name[1] != '-' {
		return k, false
	}
	sum, err := hex.DecodeString(name[2 : 2+2*len(k.Sum)])
	if err != nil {
		return k, false
	}
	k.Kind = name[0]
	copy(k.Sum[:], sum)
	return k, true
}

// GetEnvelope serves one committed entry's raw envelope bytes by
// filename — the hub side of replication. The envelope is validated
// before serving (a corrupt entry is deleted and reads as a miss, the
// same healing Get performs) and the read refreshes hub LRU recency, so
// fleet-hot entries stay resident.
func (s *Store) GetEnvelope(name string) ([]byte, bool) {
	key, ok := ParseFilename(name)
	if !ok {
		return nil, false
	}
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if kind, _, err := DecodeEntry(data); err != nil || kind != key.Kind {
		os.Remove(path)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	s.touch(name, now)
	return data, true
}

// PutEnvelope accepts one raw entry envelope by filename — the hub side
// of a worker push. The name must parse, the envelope must checksum
// clean, and the declared kind must match the name; anything else is
// rejected so a confused or malicious writer cannot plant corrupt
// entries. Accepted envelopes commit atomically under the LRU bound like
// any local Put.
func (s *Store) PutEnvelope(name string, data []byte) error {
	key, ok := ParseFilename(name)
	if !ok {
		return fmt.Errorf("cachestore: invalid entry name %q", name)
	}
	kind, _, err := DecodeEntry(data)
	if err != nil {
		return fmt.Errorf("cachestore: rejected envelope for %q: %w", name, err)
	}
	if kind != key.Kind {
		return fmt.Errorf("cachestore: envelope kind %q does not match name %q", kind, name)
	}
	_, err = s.commitRaw(key, data)
	return err
}
