package cachestore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// memReplicator is an in-memory Replicator for tests: a map plus call
// counters, safe for concurrent use like the interface demands.
type memReplicator struct {
	mu      sync.Mutex
	entries map[string][]byte
	fetches int
	pushes  int
}

func newMemReplicator() *memReplicator {
	return &memReplicator{entries: make(map[string][]byte)}
}

func (m *memReplicator) Fetch(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fetches++
	return m.entries[name]
}

func (m *memReplicator) Push(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pushes++
	m.entries[name] = append([]byte(nil), data...)
}

func TestParseFilenameRoundTrip(t *testing.T) {
	for _, kind := range []byte{KindResult, KindSummary} {
		key := NewKey(kind, []byte("some identity"))
		got, ok := ParseFilename(key.Filename())
		if !ok || got != key {
			t.Errorf("ParseFilename(%q) = %v %v, want %v", key.Filename(), got, ok, key)
		}
	}
	for _, bad := range []string{
		"", "r-.nce", "x-" + NewKey(KindResult, nil).Filename()[2:], // unknown kind
		"r_" + NewKey(KindResult, nil).Filename()[2:],   // no dash
		NewKey(KindResult, nil).Filename()[:10],         // truncated
		"r-zz" + NewKey(KindResult, nil).Filename()[4:], // non-hex
		"../../etc/passwd", "r-deadbeef.nce",
	} {
		if _, ok := ParseFilename(bad); ok {
			t.Errorf("ParseFilename accepted %q", bad)
		}
	}
}

// TestReplicatedFetchServesAndCommitsLocally: a local miss falls back to
// the replicator; the fetched entry is served as a hit and committed so
// the next Get never touches the network.
func TestReplicatedFetchServesAndCommitsLocally(t *testing.T) {
	hub, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey(KindResult, []byte("app"))
	payload := []byte("scan result payload")
	if _, err := hub.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	hubData, ok := hub.GetEnvelope(key.Filename())
	if !ok {
		t.Fatal("hub GetEnvelope missed its own entry")
	}

	local, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	repl := newMemReplicator()
	repl.entries[key.Filename()] = hubData
	local.SetReplicator(repl)

	got, status := local.Get(key)
	if status != StatusHit || !bytes.Equal(got, payload) {
		t.Fatalf("replicated Get = %q %v, want hit with payload", got, status)
	}
	if repl.fetches != 1 {
		t.Fatalf("fetches = %d, want 1", repl.fetches)
	}
	// Second Get must be a pure local hit.
	got, status = local.Get(key)
	if status != StatusHit || !bytes.Equal(got, payload) {
		t.Fatalf("second Get = %q %v", got, status)
	}
	if repl.fetches != 1 {
		t.Errorf("second Get went remote (fetches = %d)", repl.fetches)
	}
}

// TestPutPushesToReplicator: a committed entry reaches the remote side,
// and a peer store wired to the same replicator hits it.
func TestPutPushesToReplicator(t *testing.T) {
	repl := newMemReplicator()
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.SetReplicator(repl)
	key := NewKey(KindSummary, []byte("class"))
	payload := []byte("summaries")
	if _, err := a.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if repl.pushes != 1 {
		t.Fatalf("pushes = %d, want 1", repl.pushes)
	}

	b, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b.SetReplicator(repl)
	got, status := b.Get(key)
	if status != StatusHit || !bytes.Equal(got, payload) {
		t.Fatalf("peer Get = %q %v, want replicated hit", got, status)
	}
}

// TestCorruptRemoteEntryIsAMiss: a damaged transfer must neither surface
// as a hit nor be committed locally.
func TestCorruptRemoteEntryIsAMiss(t *testing.T) {
	local, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey(KindResult, []byte("app"))
	repl := newMemReplicator()
	good := EncodeEntry(KindResult, []byte("payload"))
	for name, bad := range map[string][]byte{
		"truncated":     good[:len(good)-3],
		"bitflip":       append(append([]byte{}, good[:8]...), append([]byte{good[8] ^ 0x40}, good[9:]...)...),
		"wrong kind":    EncodeEntry(KindSummary, []byte("payload")),
		"empty":         {},
		"garbage bytes": []byte("not an envelope at all"),
	} {
		repl.entries[key.Filename()] = bad
		local.SetReplicator(repl)
		if _, status := local.Get(key); status != StatusMiss {
			t.Errorf("%s: status = %v, want miss", name, status)
		}
		if local.Len() != 0 {
			t.Errorf("%s: corrupt remote entry was committed locally", name)
		}
	}
}

// TestPutEnvelopeValidates: the hub write path rejects bad names and bad
// envelopes, and commits good ones readable through both surfaces.
func TestPutEnvelopeValidates(t *testing.T) {
	hub, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey(KindResult, []byte("app"))
	good := EncodeEntry(KindResult, []byte("payload"))

	if err := hub.PutEnvelope("../sneaky.nce", good); err == nil {
		t.Error("PutEnvelope accepted a path-traversal name")
	}
	if err := hub.PutEnvelope(key.Filename(), good[:4]); err == nil {
		t.Error("PutEnvelope accepted a truncated envelope")
	}
	if err := hub.PutEnvelope(key.Filename(), EncodeEntry(KindSummary, []byte("payload"))); err == nil {
		t.Error("PutEnvelope accepted a kind-mismatched envelope")
	}
	if hub.Len() != 0 {
		t.Fatalf("rejected envelopes left %d entries", hub.Len())
	}

	if err := hub.PutEnvelope(key.Filename(), good); err != nil {
		t.Fatalf("PutEnvelope: %v", err)
	}
	if got, status := hub.Get(key); status != StatusHit || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get after PutEnvelope = %q %v", got, status)
	}
	if _, ok := hub.GetEnvelope(key.Filename()); !ok {
		t.Fatal("GetEnvelope after PutEnvelope missed")
	}
}

// TestGetEnvelopeHealsCorruption: the hub read path deletes a damaged
// entry instead of serving it — the same healing Get performs.
func TestGetEnvelopeHealsCorruption(t *testing.T) {
	dir := t.TempDir()
	hub, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey(KindResult, []byte("app"))
	if _, err := hub.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Filename())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := hub.GetEnvelope(key.Filename()); ok {
		t.Fatal("GetEnvelope served a corrupt entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not healed (still on disk)")
	}
}
