package cachestore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/dataflow"
	"repro/internal/jimple"
	"repro/internal/report"
)

// --- random entry generators (seeded: failures reproduce) -------------------

func randString(rng *rand.Rand, max int) string {
	n := rng.Intn(max)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256)) // arbitrary bytes, not just ASCII
	}
	return string(b)
}

func randSig(rng *rand.Rand) jimple.Sig {
	s := jimple.Sig{Class: randString(rng, 20), Name: randString(rng, 12), Ret: randString(rng, 8)}
	for i := rng.Intn(3); i > 0; i-- {
		s.Params = append(s.Params, randString(rng, 8))
	}
	return s
}

func randReport(rng *rand.Rand) report.Report {
	r := report.Report{
		Cause:    report.Cause(randString(rng, 16)),
		Lib:      apimodel.LibKey(randString(rng, 10)),
		Message:  randString(rng, 40),
		Location: report.Loc{Method: randSig(rng), Stmt: rng.Intn(200) - 10},
		Context: report.Context{
			Component:     randString(rng, 20),
			Kind:          android.ComponentKind(rng.Intn(5)),
			KindName:      randString(rng, 10),
			UserInitiated: rng.Intn(2) == 1,
			HTTPMethod:    randString(rng, 5),
		},
		FixSuggestion: randString(rng, 30),
		DefaultCaused: rng.Intn(2) == 1,
	}
	for i := rng.Intn(3); i > 0; i-- {
		r.Impacts = append(r.Impacts, report.Impact(randString(rng, 12)))
	}
	for i := rng.Intn(4); i > 0; i-- {
		r.CallStack = append(r.CallStack, report.Frame{Method: randString(rng, 25), Site: rng.Intn(100) - 2})
	}
	return r
}

func randResultEntry(rng *rand.Rand) *ResultEntry {
	e := &ResultEntry{AppMethods: rng.Intn(500), Sites: rng.Intn(100)}
	for i := rng.Intn(5); i > 0; i-- {
		e.Reports = append(e.Reports, randReport(rng))
	}
	for i := rng.Intn(25); i > 0; i-- {
		e.Counters = append(e.Counters, rng.Int63n(1<<40)-(1<<39))
	}
	for i := rng.Intn(4); i > 0; i-- {
		e.Libs = append(e.Libs, randString(rng, 12))
	}
	return e
}

func randCalls(rng *rand.Rand) []dataflow.SummaryCall {
	var out []dataflow.SummaryCall
	for i := rng.Intn(3); i > 0; i-- {
		c := dataflow.SummaryCall{Callee: randSig(rng)}
		for j := rng.Intn(3); j > 0; j-- {
			c.Args = append(c.Args, dataflow.SummaryArg{Known: rng.Intn(2) == 1, V: rng.Int63n(1000) - 500})
		}
		out = append(out, c)
	}
	return out
}

func randSummary(rng *rand.Rand) *dataflow.TaintSummary {
	// Mirror dataflow's invariant: StateFrom and CallsOn are allocated to
	// exactly Inputs elements.
	inputs := rng.Intn(6)
	s := &dataflow.TaintSummary{
		Inputs:            inputs,
		RetFrom:           rng.Uint64() >> 32,
		Escapes:           rng.Uint64() >> 32,
		Uses:              rng.Uint64() >> 32,
		ValidatedAllPaths: rng.Uint64() >> 32,
		UncheckedUse:      rng.Uint64() >> 32,
		CallsOnRet:        randCalls(rng),
	}
	if inputs > 0 {
		s.StateFrom = make([]uint64, inputs)
		s.CallsOn = make([][]dataflow.SummaryCall, inputs)
		for i := 0; i < inputs; i++ {
			s.StateFrom[i] = rng.Uint64() >> 32
			s.CallsOn[i] = randCalls(rng)
		}
	}
	return s
}

func randSummaryEntry(rng *rand.Rand) *SummaryEntry {
	e := &SummaryEntry{Class: randString(rng, 24)}
	for i := rng.Intn(4); i > 0; i-- {
		e.Methods = append(e.Methods, MethodSummary{Key: randString(rng, 30), Summary: randSummary(rng)})
	}
	return e
}

// --- properties -------------------------------------------------------------

// TestResultEntryRoundTrip: decode(encode(e)) == e for arbitrary entries.
func TestResultEntryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	for i := 0; i < 300; i++ {
		e := randResultEntry(rng)
		got, err := DecodeResultEntry(EncodeResultEntry(e))
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("iter %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, e)
		}
	}
}

// TestSummaryEntryRoundTrip: same property for class-summary entries.
func TestSummaryEntryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2017))
	for i := 0; i < 300; i++ {
		e := randSummaryEntry(rng)
		got, err := DecodeSummaryEntry(EncodeSummaryEntry(e))
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("iter %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, e)
		}
	}
}

// TestEnvelopeRejectsEveryBitFlip: the checksummed envelope makes single
// bit flips anywhere in the entry — header or payload — decode errors,
// never silent garbage.
func TestEnvelopeRejectsEveryBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2018))
	payload := EncodeResultEntry(randResultEntry(rng))
	entry := EncodeEntry(KindResult, payload)
	for pos := 0; pos < len(entry); pos++ {
		for _, mask := range []byte{0x01, 0x80} {
			mangled := append([]byte(nil), entry...)
			mangled[pos] ^= mask
			kind, got, err := DecodeEntry(mangled)
			if err == nil {
				// The kind byte has two valid values; a flip that lands on
				// the other valid kind passes the envelope but must then be
				// rejected by the caller's kind check.
				if pos == 4 && kind != KindResult {
					continue
				}
				t.Fatalf("bit flip at %d (mask %#x) decoded: kind=%c payload=%d bytes", pos, mask, kind, len(got))
			}
		}
	}
}

// TestEnvelopeRejectsTruncation: every proper prefix fails to decode.
func TestEnvelopeRejectsTruncation(t *testing.T) {
	entry := EncodeEntry(KindSummary, []byte("summary payload bytes"))
	for n := 0; n < len(entry); n++ {
		if _, _, err := DecodeEntry(entry[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", n, len(entry))
		}
	}
}

// TestDecodersRejectPayloadDamage: flipping any byte of the raw payload
// either fails the decode or decodes to a different value — never to a
// false equal. (Most flips fail; varint redundancy can make some decode
// to different values, which the content-addressed envelope catches in
// practice.)
func TestDecodersRejectPayloadDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(2019))
	e := randResultEntry(rng)
	payload := EncodeResultEntry(e)
	for pos := 0; pos < len(payload); pos++ {
		mangled := append([]byte(nil), payload...)
		mangled[pos] ^= 0x55
		got, err := DecodeResultEntry(mangled)
		if err == nil && reflect.DeepEqual(got, e) {
			t.Fatalf("flip at %d decoded equal to the original", pos)
		}
	}
}

// TestEncodeIsDeterministic: identical values encode to identical bytes
// (the cache diffs entries by content hash).
func TestEncodeIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := EncodeResultEntry(randResultEntry(rand.New(rand.NewSource(seed))))
		b := EncodeResultEntry(randResultEntry(rand.New(rand.NewSource(seed))))
		if fmt.Sprintf("%x", a) != fmt.Sprintf("%x", b) {
			t.Fatalf("seed %d: identical entries encoded differently", seed)
		}
	}
}
