package cachestore

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzCacheEntry throws arbitrary bytes at the full decode path — the
// envelope plus whichever payload codec the kind byte selects. Cache
// entries are untrusted input (any process can write the cache
// directory), so the properties are:
//
//  1. decoding never panics, whatever the input;
//  2. any entry that does decode re-encodes and re-decodes to the same
//     value (decode∘encode is the identity on the codec's image, the
//     canonical-form property the warm path's byte-identity rests on).
func FuzzCacheEntry(f *testing.F) {
	// Seed with well-formed entries of both kinds plus structured junk.
	rng := rand.New(rand.NewSource(2016))
	f.Add(EncodeEntry(KindResult, EncodeResultEntry(randResultEntry(rng))))
	f.Add(EncodeEntry(KindSummary, EncodeSummaryEntry(randSummaryEntry(rng))))
	f.Add(EncodeEntry(KindResult, EncodeResultEntry(&ResultEntry{})))
	f.Add(EncodeEntry(KindSummary, EncodeSummaryEntry(&SummaryEntry{Class: "a.B"})))
	f.Add([]byte("NCC1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := DecodeEntry(data)
		if err != nil {
			return
		}
		switch kind {
		case KindResult:
			e, err := DecodeResultEntry(payload)
			if err != nil {
				return
			}
			re := EncodeEntry(KindResult, EncodeResultEntry(e))
			kind2, payload2, err := DecodeEntry(re)
			if err != nil || kind2 != KindResult {
				t.Fatalf("re-encoded result entry failed envelope decode: %v", err)
			}
			e2, err := DecodeResultEntry(payload2)
			if err != nil {
				t.Fatalf("re-encoded result entry failed payload decode: %v", err)
			}
			if !reflect.DeepEqual(e, e2) {
				t.Fatalf("result entry not canonical:\n first %+v\nsecond %+v", e, e2)
			}
		case KindSummary:
			e, err := DecodeSummaryEntry(payload)
			if err != nil {
				return
			}
			// Re-encoding requires the codec's documented precondition
			// (StateFrom/CallsOn sized to Inputs); the decoder constructs
			// exactly that shape, so the round trip is legal.
			re := EncodeSummaryEntry(e)
			e2, err := DecodeSummaryEntry(re)
			if err != nil {
				t.Fatalf("re-encoded summary entry failed decode: %v", err)
			}
			if !reflect.DeepEqual(e, e2) {
				t.Fatalf("summary entry not canonical:\n first %+v\nsecond %+v", e, e2)
			}
			if !bytes.Equal(re, EncodeSummaryEntry(e2)) {
				t.Fatalf("summary encoding not deterministic")
			}
		}
	})
}
