package cachestore

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := NewKey(KindResult, []byte("app"), []byte("reg"), []byte("v1"))
	payload := []byte("hello cached world")

	if _, status := s.Get(key); status != StatusMiss {
		t.Fatalf("Get on empty store = %v, want miss", status)
	}
	if _, err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, status := s.Get(key)
	if status != StatusHit {
		t.Fatalf("Get after Put = %v, want hit", status)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get payload = %q, want %q", got, payload)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	s.Remove(key)
	if _, status := s.Get(key); status != StatusMiss {
		t.Fatalf("Get after Remove = %v, want miss", status)
	}
}

// TestKeyInvalidation is the invalidation contract: flipping any single
// component of the cache key — the app digest, the registry fingerprint,
// the engine version, or the options fingerprint — must produce a
// distinct key, so a Put under the original key can never answer a probe
// for the changed configuration.
func TestKeyInvalidation(t *testing.T) {
	base := [4][]byte{
		[]byte("dex-digest-AAAA"),
		[]byte("registry-fingerprint"),
		[]byte("nchecker-engine/4"),
		[]byte("icc=false intra=false"),
	}
	cases := []struct {
		name string
		flip int
		with []byte
	}{
		{"app digest changed", 0, []byte("dex-digest-BBBB")},
		{"registry fingerprint changed", 1, []byte("registry-fingerprint'")},
		{"engine version bumped", 2, []byte("nchecker-engine/5")},
		{"options changed", 3, []byte("icc=true intra=false")},
	}

	s := mustOpen(t, t.TempDir(), Options{})
	baseKey := NewKey(KindResult, base[0], base[1], base[2], base[3])
	if _, err := s.Put(baseKey, []byte("cached result")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts := base
			parts[tc.flip] = tc.with
			k := NewKey(KindResult, parts[0], parts[1], parts[2], parts[3])
			if k == baseKey {
				t.Fatalf("flipped key equals base key")
			}
			if _, status := s.Get(k); status != StatusMiss {
				t.Fatalf("Get with flipped component = %v, want miss", status)
			}
		})
	}
	// The kind byte partitions the keyspace too.
	if k := NewKey(KindSummary, base[0], base[1], base[2], base[3]); k == baseKey {
		t.Fatalf("summary key equals result key for identical parts")
	}
}

// TestKeyPartBoundaries: the length-prefixed part hashing must keep
// ("ab","c") distinct from ("a","bc") — concatenation alone would not.
func TestKeyPartBoundaries(t *testing.T) {
	k1 := NewKey(KindResult, []byte("ab"), []byte("c"))
	k2 := NewKey(KindResult, []byte("a"), []byte("bc"))
	if k1 == k2 {
		t.Fatalf("part boundaries not keyed: (ab,c) and (a,bc) collide")
	}
}

func TestCorruptEntryDetectedAndHealed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := NewKey(KindResult, []byte("app"))
	if _, err := s.Put(key, []byte("some serialized result")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, key.Filename())

	corruptions := []struct {
		name   string
		mangle func(t *testing.T, data []byte)
	}{
		{"truncated mid-payload", func(t *testing.T, data []byte) {
			writeRaw(t, path, data[:len(data)-5])
		}},
		{"payload bit flipped", func(t *testing.T, data []byte) {
			data[len(data)-1] ^= 0x40
			writeRaw(t, path, data)
		}},
		{"bad magic", func(t *testing.T, data []byte) {
			data[0] = 'X'
			writeRaw(t, path, data)
		}},
		{"trailing garbage", func(t *testing.T, data []byte) {
			writeRaw(t, path, append(data, 0xFF))
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Put(key, []byte("some serialized result")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read entry: %v", err)
			}
			tc.mangle(t, data)
			if _, status := s.Get(key); status != StatusCorrupt {
				t.Fatalf("Get on mangled entry = %v, want corrupt", status)
			}
			// Corruption heals: the entry is deleted, later probes miss.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not removed (stat err=%v)", err)
			}
			if _, status := s.Get(key); status != StatusMiss {
				t.Fatalf("Get after heal = %v, want miss", status)
			}
		})
	}
}

func writeRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

// TestKindMismatchIsCorrupt: an entry stored under a result key but
// carrying a summary envelope (or vice versa) is corruption.
func TestKindMismatchIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := NewKey(KindResult, []byte("app"))
	// Forge a valid summary-kind envelope at the result key's path.
	writeRaw(t, filepath.Join(dir, key.Filename()), EncodeEntry(KindSummary, []byte("payload")))
	if _, status := s.Get(key); status != StatusCorrupt {
		t.Fatalf("Get on kind-mismatched entry = %v, want corrupt", status)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1000)
	entrySize := int64(len(EncodeEntry(KindResult, payload)))
	// Room for 3 entries, not 4.
	s := mustOpen(t, dir, Options{MaxBytes: 3*entrySize + entrySize/2})

	keys := make([]Key, 4)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		keys[i] = NewKey(KindResult, []byte{byte('a' + i)})
		if _, err := s.Put(keys[i], payload); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		// Pin distinct mtimes so LRU order is deterministic: key 0 oldest.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, keys[i].Filename()), mt, mt); err != nil {
			t.Fatalf("chtimes: %v", err)
		}
	}
	// Touch key 0: a Get bumps recency, so key 1 becomes the LRU victim.
	if _, status := s.Get(keys[0]); status != StatusHit {
		t.Fatalf("Get keys[0] = %v, want hit", status)
	}

	keys[3] = NewKey(KindResult, []byte{'d'})
	evicted, err := s.Put(keys[3], payload)
	if err != nil {
		t.Fatalf("Put over budget: %v", err)
	}
	if evicted == 0 {
		t.Fatalf("Put over budget evicted nothing")
	}
	if _, status := s.Get(keys[1]); status != StatusMiss {
		t.Fatalf("LRU victim keys[1] = %v, want miss (evicted)", status)
	}
	for _, i := range []int{0, 2, 3} {
		if _, status := s.Get(keys[i]); status != StatusHit {
			t.Fatalf("keys[%d] = %v, want hit (recently used / fresh)", i, status)
		}
	}
}

// TestOversizedPayloadSkipped: an entry larger than the whole budget is
// not written (writing it would immediately evict everything including
// itself).
func TestOversizedPayloadSkipped(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 128})
	key := NewKey(KindResult, []byte("big"))
	if _, err := s.Put(key, bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatalf("Put oversized: %v", err)
	}
	if _, status := s.Get(key); status != StatusMiss {
		t.Fatalf("oversized entry = %v, want miss (skipped)", status)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

// TestSharedIdentity: Shared returns one Store per directory, so
// concurrent scans in one process coordinate eviction.
func TestSharedIdentity(t *testing.T) {
	dir := t.TempDir()
	s1, err := Shared(dir, Options{})
	if err != nil {
		t.Fatalf("Shared: %v", err)
	}
	s2, err := Shared(dir+string(filepath.Separator)+".", Options{}) // same dir, different spelling
	if err != nil {
		t.Fatalf("Shared: %v", err)
	}
	if s1 != s2 {
		t.Fatalf("Shared returned distinct stores for one directory")
	}
	other, err := Shared(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Shared: %v", err)
	}
	if other == s1 {
		t.Fatalf("Shared returned one store for distinct directories")
	}
}

// TestStaleTempSweep: crashed writers leave put-*.tmp files; eviction
// sweeps old ones but leaves fresh ones (a concurrent writer mid-commit).
func TestStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxBytes: 1 << 20})
	stale := filepath.Join(dir, "put-stale.tmp")
	fresh := filepath.Join(dir, "put-fresh.tmp")
	writeRaw(t, stale, []byte("crashed writer leftovers"))
	writeRaw(t, fresh, []byte("in-flight write"))
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatalf("chtimes: %v", err)
	}
	if _, err := s.Put(NewKey(KindResult, []byte("k")), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not swept (err=%v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file swept: %v", err)
	}
}

// TestHotEntrySurvivesCoarseMtimeEviction is the regression test for the
// mtime-only LRU clock: on a coarse-granularity filesystem (or when
// Chtimes fails) a burst of hits leaves the hot entry's mtime equal to —
// or older than — the cold entries', and the filename tie-break then
// evicts the hot entry first. The in-memory recency overlay must keep it
// alive. The test simulates the coarse clock by collapsing every entry's
// mtime to one shared tick after the hits happened.
func TestHotEntrySurvivesCoarseMtimeEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1000)
	entrySize := int64(len(EncodeEntry(KindResult, payload)))
	s := mustOpen(t, dir, Options{MaxBytes: 3*entrySize + entrySize/2})

	// Three keys, Put in lexical filename order so the hot entry (the
	// lexically smallest) is both the tie-break victim and the oldest
	// write — the worst case for any recency tracking weaker than
	// touch-on-Get.
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = NewKey(KindResult, []byte{byte('a' + i)})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Filename() < keys[j].Filename() })
	for i, k := range keys {
		if _, err := s.Put(k, payload); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	hot := keys[0]

	// Hammer hits on the hot entry — all within what a coarse-mtime
	// filesystem would record as a single tick.
	for i := 0; i < 5; i++ {
		if _, status := s.Get(hot); status != StatusHit {
			t.Fatalf("Get hot = %v, want hit", status)
		}
	}
	// Collapse every entry's mtime to one shared past tick, wiping out
	// whatever recency Chtimes recorded.
	tick := time.Now().Add(-time.Hour).Truncate(time.Second)
	for _, k := range keys {
		if err := os.Chtimes(filepath.Join(dir, k.Filename()), tick, tick); err != nil {
			t.Fatalf("chtimes: %v", err)
		}
	}

	// A fourth Put overflows the budget and must evict a cold entry, not
	// the hot one.
	if _, err := s.Put(NewKey(KindResult, []byte("fresh")), payload); err != nil {
		t.Fatalf("Put over budget: %v", err)
	}
	if _, status := s.Get(hot); status != StatusHit {
		t.Fatalf("hot entry = %v, want hit (evicted despite being hottest)", status)
	}
	misses := 0
	for _, k := range keys[1:] {
		if _, status := s.Get(k); status == StatusMiss {
			misses++
		}
	}
	if misses == 0 {
		t.Fatalf("no cold entry was evicted")
	}
}

// TestEvictionTieBreakDeterministic: entries this process never touched
// (written by another process, say) with identical mtimes must be evicted
// in a deterministic order — lexical filename order.
func TestEvictionTieBreakDeterministic(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 1000)
	raw := EncodeEntry(KindResult, payload)
	entrySize := int64(len(raw))

	// Three committed entries written behind the store's back: no overlay
	// recency, identical mtimes.
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = NewKey(KindResult, []byte{byte('p' + i)})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Filename() < keys[j].Filename() })
	tick := time.Now().Add(-time.Hour).Truncate(time.Second)
	for _, k := range keys {
		path := filepath.Join(dir, k.Filename())
		writeRaw(t, path, raw)
		if err := os.Chtimes(path, tick, tick); err != nil {
			t.Fatalf("chtimes: %v", err)
		}
	}

	// Budget for two old entries plus the new one: the eviction triggered
	// by the first Put must remove exactly the lexically-smallest old
	// entry.
	s := mustOpen(t, dir, Options{MaxBytes: 3*entrySize + entrySize/2})
	if _, err := s.Put(NewKey(KindResult, []byte("new")), payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, status := s.Get(keys[0]); status != StatusMiss {
		t.Fatalf("keys[0] = %v, want miss (deterministic tie-break victim)", status)
	}
	for _, i := range []int{1, 2} {
		if _, status := s.Get(keys[i]); status != StatusHit {
			t.Fatalf("keys[%d] = %v, want hit", i, status)
		}
	}
}

func TestFilenameShape(t *testing.T) {
	k := NewKey(KindSummary, []byte("x"))
	name := k.Filename()
	if filepath.Base(name) != name {
		t.Fatalf("Filename %q contains path separators", name)
	}
	if want := 1 + 1 + 2*sha256.Size + len(".nce"); len(name) != want {
		t.Fatalf("Filename %q length = %d, want %d", name, len(name), want)
	}
}
