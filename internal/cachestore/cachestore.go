// Package cachestore is NChecker's persistent, content-addressed scan
// cache: an on-disk store of serialized scan results and per-class taint
// summaries, keyed by SHA-256 over the inputs that determine them (the
// app's container bytes, the apimodel registry fingerprint, the engine
// version, and the analysis options — see internal/checkers/cache.go for
// the key anatomy and DESIGN.md §7 for the invalidation rules).
//
// The store is crash-safe and self-healing by construction:
//
//   - commits are atomic write-then-rename, so a crashed writer leaves at
//     worst an orphaned temp file, never a half-written entry;
//   - every entry is a checksummed envelope (codec.go); a truncated or
//     bit-flipped entry decodes as corrupt, is deleted, and reads as a
//     miss — the caller falls back to a cold scan and rewrites it;
//   - the total size is LRU-bounded: Put evicts least-recently-used
//     entries until under MaxBytes. Hits refresh recency twice: via mtime
//     (durable, visible to other processes) and via an in-memory overlay
//     (nanosecond-precise), so hot entries stay hot even on filesystems
//     with coarse mtime granularity or when Chtimes fails.
//
// Get/Put never return errors the caller must abort on: cache trouble
// degrades to a cold scan, it does not fail the scan.
package cachestore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Entry kinds: the first byte of a Key and of the entry envelope. A key's
// kind is part of its filename, so result and summary entries can never
// shadow each other even under a hash collision across kinds.
const (
	// KindResult is a whole-app scan result (ResultEntry).
	KindResult byte = 'r'
	// KindSummary is one app class's taint summaries (SummaryEntry).
	KindSummary byte = 's'
)

// DefaultMaxBytes is the default LRU size bound (256 MiB).
const DefaultMaxBytes int64 = 256 << 20

// entryExt suffixes committed entries; temp files never carry it, so a
// crashed writer's leftovers are invisible to Get and to the LRU scan.
const entryExt = ".nce"

// Key addresses one cache entry: an entry kind plus a SHA-256 over the
// entry's identity parts.
type Key struct {
	Kind byte
	Sum  [sha256.Size]byte
}

// NewKey hashes the parts (length-prefixed, so part boundaries are
// unambiguous) into a key of the given kind. Flipping any single part —
// app bytes, registry fingerprint, engine version, options — yields a
// different key, which is the store's entire invalidation story.
func NewKey(kind byte, parts ...[]byte) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	k := Key{Kind: kind}
	h.Sum(k.Sum[:0])
	return k
}

// Filename is the entry's on-disk name within the store directory.
func (k Key) Filename() string {
	return fmt.Sprintf("%c-%x%s", k.Kind, k.Sum, entryExt)
}

// GetStatus classifies a Get outcome.
type GetStatus uint8

const (
	// StatusMiss: no entry under the key.
	StatusMiss GetStatus = iota
	// StatusHit: the entry decoded and checksummed clean.
	StatusHit
	// StatusCorrupt: an entry existed but failed envelope validation
	// (truncated writer crash, bit rot, kind mismatch). The file has been
	// removed; the caller should treat it as a miss and rescan cold.
	StatusCorrupt
)

// Options tunes a Store.
type Options struct {
	// MaxBytes bounds the total committed-entry size; Put evicts the
	// least-recently-used entries to stay under it. <= 0 means
	// DefaultMaxBytes.
	MaxBytes int64
}

// Store is one cache directory. All methods are safe for concurrent use
// by multiple goroutines; concurrent processes sharing the directory are
// safe too (atomic renames), though their LRU scans may race benignly.
type Store struct {
	dir      string
	maxBytes int64

	// evictMu serializes eviction scans so concurrent Puts don't double-
	// delete; commits themselves need no lock (rename is atomic).
	evictMu sync.Mutex

	// used approximates the committed-entry total so Put can stay O(1):
	// initialized from one directory scan on the first Put, then bumped
	// per commit. The approximation only ever errs high (overwrites and
	// concurrent removals aren't subtracted), which at worst triggers an
	// eviction scan early — the scan itself recomputes the true total.
	usedInit sync.Once
	used     atomic.Int64

	// recency overlays the on-disk mtimes with the last time this process
	// touched each entry (Get hit or Put commit). mtime alone is not a
	// reliable LRU clock: coarse-granularity filesystems collapse a burst
	// of hits into one tick, and Chtimes is best-effort — either way hot
	// entries sort equal-or-older than cold ones and get evicted first.
	// evict merges the overlay (taking the newer of overlay and mtime), so
	// in-process recency always wins; entries touched only by other
	// processes still order by their mtimes.
	recMu   sync.Mutex
	recency map[string]time.Time

	// repl, when set, extends the store across processes: Get falls back
	// to it on a local miss, Put pushes committed entries to it
	// (replicate.go — the fleet cache-replication path).
	replMu sync.RWMutex
	repl   Replicator
}

// touch records an in-process recency observation for the entry filename.
func (s *Store) touch(name string, t time.Time) {
	s.recMu.Lock()
	if s.recency == nil {
		s.recency = make(map[string]time.Time)
	}
	s.recency[name] = t
	s.recMu.Unlock()
}

// Open opens (creating if needed) the cache directory.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cachestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	max := opts.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: max}, nil
}

var (
	sharedMu sync.Mutex
	shared   = make(map[string]*Store)
)

// Shared returns the process-wide Store for the directory, opening it on
// first use. Batch scans hitting the same -cache directory share one
// Store (one eviction lock) instead of opening it per app. The first
// opener's Options win.
func Shared(dir string, opts Options) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if s, ok := shared[abs]; ok {
		return s, nil
	}
	s, err := Open(abs, opts)
	if err != nil {
		return nil, err
	}
	shared[abs] = s
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Get looks the key up. On a hit it returns the entry payload and bumps
// the entry's recency (mtime). A corrupt entry is deleted and reported as
// StatusCorrupt; unreadable files read as misses. When a Replicator is
// wired (SetReplicator), a local miss falls back to a remote fetch: a
// clean fetched envelope is committed locally and answered as a hit, and
// any replication trouble stays a plain miss.
func (s *Store) Get(key Key) ([]byte, GetStatus) {
	path := filepath.Join(s.dir, key.Filename())
	data, err := os.ReadFile(path)
	if err != nil {
		return s.getRemote(key)
	}
	kind, payload, err := DecodeEntry(data)
	if err != nil || kind != key.Kind {
		// Corruption detection: a truncated or damaged entry must never
		// surface as a result. Remove it so the next Put heals the slot.
		os.Remove(path)
		return nil, StatusCorrupt
	}
	now := time.Now()
	os.Chtimes(path, now, now) // durable LRU recency; best-effort
	s.touch(key.Filename(), now)
	return payload, StatusHit
}

// getRemote is Get's miss path: consult the Replicator, validate the
// fetched envelope exactly like a local read, commit it locally so the
// next Get is a disk hit, and answer the payload. Every failure mode —
// no replicator, remote miss, corrupt transfer, commit trouble — reads
// as a plain miss.
func (s *Store) getRemote(key Key) ([]byte, GetStatus) {
	r := s.replicator()
	if r == nil {
		return nil, StatusMiss
	}
	data := r.Fetch(key.Filename())
	if data == nil {
		return nil, StatusMiss
	}
	kind, payload, err := DecodeEntry(data)
	if err != nil || kind != key.Kind {
		// A damaged or mismatched transfer must never surface as a hit,
		// and must not be committed.
		return nil, StatusMiss
	}
	if _, err := s.commitRaw(key, data); err != nil {
		// The payload itself is valid; serve it even if the local commit
		// failed (e.g. a read-only filesystem) — replication must only
		// ever add hits.
		return payload, StatusHit
	}
	return payload, StatusHit
}

// Put commits the payload under the key with write-then-rename atomicity,
// then evicts LRU entries until the store is under its size bound. It
// returns how many entries were evicted. A payload that alone exceeds the
// bound is skipped (not an error): caching it would immediately evict
// everything else. With a Replicator wired, a committed entry is also
// pushed to the remote side (best-effort) so peers can hit it.
func (s *Store) Put(key Key, payload []byte) (evicted int, err error) {
	data := EncodeEntry(key.Kind, payload)
	evicted, err = s.commitRaw(key, data)
	if err == nil {
		if r := s.replicator(); r != nil {
			r.Push(key.Filename(), data)
		}
	}
	return evicted, err
}

// commitRaw commits an already-encoded entry envelope. It is the shared
// write path of Put, PutEnvelope, and remote-fetch commits; it never
// pushes to the Replicator, so hub writes and fetched-entry commits
// cannot echo back out.
func (s *Store) commitRaw(key Key, data []byte) (evicted int, err error) {
	if int64(len(data)) > s.maxBytes {
		return 0, nil
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("cachestore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("cachestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("cachestore: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, key.Filename())); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("cachestore: %w", err)
	}
	s.touch(key.Filename(), time.Now())
	// The first commit pays for one directory scan (pre-existing entries
	// plus crashed writers' stale temp files); after that Put is O(1) and
	// the full LRU scan only runs when the running total crosses the
	// bound.
	s.usedInit.Do(func() { s.evict() })
	if s.used.Add(int64(len(data))) > s.maxBytes {
		return s.evict(), nil
	}
	return 0, nil
}

// Remove deletes the entry under the key, if present.
func (s *Store) Remove(key Key) {
	os.Remove(filepath.Join(s.dir, key.Filename()))
	s.recMu.Lock()
	delete(s.recency, key.Filename())
	s.recMu.Unlock()
}

// Len returns the number of committed entries.
func (s *Store) Len() int {
	n := 0
	ents, _ := os.ReadDir(s.dir)
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), entryExt) {
			n++
		}
	}
	return n
}

// evict removes least-recently-used entries until the committed total is
// within maxBytes, and sweeps stale temp files from crashed writers. An
// entry's recency is the newer of its mtime and this process's in-memory
// overlay, so a burst of hits inside one coarse mtime tick (or with
// Chtimes failing) still protects the hot entry; ties break
// deterministically by filename. evict leaves s.used holding the
// post-eviction true total. Returns the number of entries removed.
func (s *Store) evict() int {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()

	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	staleCutoff := time.Now().Add(-time.Hour)
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if !strings.HasSuffix(de.Name(), entryExt) {
			// A crashed writer's temp file: sweep it once it is clearly
			// abandoned (an active writer renames within moments).
			if strings.HasPrefix(de.Name(), "put-") && info.ModTime().Before(staleCutoff) {
				os.Remove(filepath.Join(s.dir, de.Name()))
			}
			continue
		}
		entries = append(entries, entry{name: de.Name(), size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	// Merge the in-memory recency overlay (newer wins) and prune overlay
	// records for entries no other process left on disk.
	s.recMu.Lock()
	present := make(map[string]bool, len(entries))
	for i := range entries {
		present[entries[i].name] = true
		if t, ok := s.recency[entries[i].name]; ok && t.After(entries[i].mtime) {
			entries[i].mtime = t
		}
	}
	for name := range s.recency {
		if !present[name] {
			delete(s.recency, name)
		}
	}
	s.recMu.Unlock()
	if total <= s.maxBytes {
		s.used.Store(total)
		return 0
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].name < entries[j].name
	})
	evicted := 0
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		err := os.Remove(filepath.Join(s.dir, e.name))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			continue
		}
		s.recMu.Lock()
		delete(s.recency, e.name)
		s.recMu.Unlock()
		total -= e.size
		evicted++
	}
	s.used.Store(total)
	return evicted
}
