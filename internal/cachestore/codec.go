package cachestore

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/dataflow"
	"repro/internal/jimple"
	"repro/internal/report"
)

// The entry envelope and the two payload codecs. Entries are untrusted
// input (any process can write to the cache directory, and crashed
// writers can truncate files mid-entry), so decoding is defensive end to
// end: a checksummed envelope rejects damage cheaply, and the payload
// decoders bound every count against the remaining input before
// allocating. Any decode failure is corruption by definition — the caller
// falls back to a cold scan.
//
// Wire format (envelope):
//
//	magic "NCC1" | kind byte | payload length u32 LE | sha256(payload) | payload
//
// Payload values use uvarint/varint primitives; strings and slices are
// count-prefixed. The format carries the codec version in the magic: any
// incompatible change bumps it, and old entries read as corrupt (a miss).

var entryMagic = []byte("NCC1")

const envelopeOverhead = 4 + 1 + 4 + sha256.Size

// maxPayload bounds a single entry payload (defensive parsing; real
// entries are kilobytes).
const maxPayload = 1 << 28

var errCorrupt = errors.New("cachestore: corrupt entry")

// EncodeEntry wraps a payload in the checksummed envelope.
func EncodeEntry(kind byte, payload []byte) []byte {
	out := make([]byte, 0, envelopeOverhead+len(payload))
	out = append(out, entryMagic...)
	out = append(out, kind)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// DecodeEntry validates the envelope and returns the entry kind and
// payload. Truncation, trailing garbage, a checksum mismatch, or an
// unknown format all return an error — the caller treats the entry as
// corrupt.
func DecodeEntry(data []byte) (kind byte, payload []byte, err error) {
	if len(data) < envelopeOverhead || string(data[:4]) != string(entryMagic) {
		return 0, nil, errCorrupt
	}
	kind = data[4]
	if kind != KindResult && kind != KindSummary {
		return 0, nil, errCorrupt
	}
	n := binary.LittleEndian.Uint32(data[5:])
	if n > maxPayload || envelopeOverhead+int(n) != len(data) {
		return 0, nil, errCorrupt
	}
	payload = data[envelopeOverhead:]
	sum := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(sum[:], data[9:9+sha256.Size]) != 1 {
		return 0, nil, errCorrupt
	}
	return kind, payload, nil
}

// ResultEntry is a whole-app scan result as cached: the reports verbatim,
// the stats flattened to a counter vector (the checkers package owns the
// field order — a length mismatch after a Stats change reads as corrupt),
// and the scan-scale numbers diagnostics report on a cache hit.
type ResultEntry struct {
	AppMethods int
	Sites      int
	Reports    []report.Report
	Counters   []int64
	Libs       []string
}

// MethodSummary pairs one method's signature key with its taint summary.
type MethodSummary struct {
	Key     string
	Summary *dataflow.TaintSummary
}

// SummaryEntry is one app class's taint summaries, keyed by method.
type SummaryEntry struct {
	Class   string
	Methods []MethodSummary
}

// EncodeResultEntry serializes a result payload (wrap with EncodeEntry
// under KindResult before storing).
func EncodeResultEntry(e *ResultEntry) []byte {
	w := newWriter()
	w.uvarint(uint64(e.AppMethods))
	w.uvarint(uint64(e.Sites))
	w.uvarint(uint64(len(e.Reports)))
	for i := range e.Reports {
		w.reportValue(&e.Reports[i])
	}
	w.uvarint(uint64(len(e.Counters)))
	for _, c := range e.Counters {
		w.varint(c)
	}
	w.uvarint(uint64(len(e.Libs)))
	for _, l := range e.Libs {
		w.str(l)
	}
	return w.buf
}

// DecodeResultEntry parses a result payload.
func DecodeResultEntry(payload []byte) (*ResultEntry, error) {
	r := &reader{buf: payload}
	e := &ResultEntry{
		AppMethods: r.count(),
		Sites:      r.count(),
	}
	if n := r.sliceLen(); n > 0 {
		e.Reports = make([]report.Report, n)
		for i := range e.Reports {
			r.reportValue(&e.Reports[i])
		}
	}
	if n := r.sliceLen(); n > 0 {
		e.Counters = make([]int64, n)
		for i := range e.Counters {
			e.Counters[i] = r.varint()
		}
	}
	if n := r.sliceLen(); n > 0 {
		e.Libs = make([]string, n)
		for i := range e.Libs {
			e.Libs[i] = r.str()
		}
	}
	return e, r.finish()
}

// EncodeSummaryEntry serializes a class-summary payload (wrap with
// EncodeEntry under KindSummary before storing). Every MethodSummary must
// carry a non-nil Summary.
func EncodeSummaryEntry(e *SummaryEntry) []byte {
	w := newWriter()
	w.str(e.Class)
	w.uvarint(uint64(len(e.Methods)))
	for i := range e.Methods {
		w.str(e.Methods[i].Key)
		w.summary(e.Methods[i].Summary)
	}
	return w.buf
}

// DecodeSummaryEntry parses a class-summary payload.
func DecodeSummaryEntry(payload []byte) (*SummaryEntry, error) {
	r := &reader{buf: payload}
	e := &SummaryEntry{Class: r.str()}
	if n := r.sliceLen(); n > 0 {
		e.Methods = make([]MethodSummary, n)
		for i := range e.Methods {
			e.Methods[i].Key = r.str()
			e.Methods[i].Summary = r.summary()
		}
	}
	return e, r.finish()
}

// --- writer -----------------------------------------------------------------

type writer struct {
	buf []byte
}

func newWriter() *writer { return &writer{buf: make([]byte, 0, 256)} }

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) boolean(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *writer) sig(s jimple.Sig) {
	w.str(s.Class)
	w.str(s.Name)
	w.uvarint(uint64(len(s.Params)))
	for _, p := range s.Params {
		w.str(p)
	}
	w.str(s.Ret)
}

func (w *writer) reportValue(r *report.Report) {
	w.str(string(r.Cause))
	w.str(string(r.Lib))
	w.str(r.Message)
	w.sig(r.Location.Method)
	w.varint(int64(r.Location.Stmt))
	w.uvarint(uint64(len(r.Impacts)))
	for _, im := range r.Impacts {
		w.str(string(im))
	}
	w.str(r.Context.Component)
	w.uvarint(uint64(r.Context.Kind))
	w.str(r.Context.KindName)
	w.boolean(r.Context.UserInitiated)
	w.str(r.Context.HTTPMethod)
	w.uvarint(uint64(len(r.CallStack)))
	for _, f := range r.CallStack {
		w.str(f.Method)
		w.varint(int64(f.Site))
	}
	w.str(r.FixSuggestion)
	w.boolean(r.DefaultCaused)
	w.str(r.Validation)
	w.str(r.ValidationNote)
}

func (w *writer) calls(cs []dataflow.SummaryCall) {
	w.uvarint(uint64(len(cs)))
	for i := range cs {
		w.sig(cs[i].Callee)
		w.uvarint(uint64(len(cs[i].Args)))
		for _, a := range cs[i].Args {
			w.boolean(a.Known)
			w.varint(a.V)
		}
	}
}

func (w *writer) summary(s *dataflow.TaintSummary) {
	w.uvarint(uint64(s.Inputs))
	w.uvarint(s.RetFrom)
	w.uvarint(s.Escapes)
	w.uvarint(s.Uses)
	w.uvarint(s.ValidatedAllPaths)
	w.uvarint(s.UncheckedUse)
	for _, m := range s.StateFrom {
		w.uvarint(m)
	}
	for _, cs := range s.CallsOn {
		w.calls(cs)
	}
	w.calls(s.CallsOnRet)
}

// --- reader -----------------------------------------------------------------

// reader is a sticky-error cursor: the first malformed field poisons it
// and every later read returns zero values, so decoders can parse
// straight-line and check finish() once.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", errCorrupt, what, r.pos)
	}
}

func (r *reader) finish() error {
	if r.err == nil && r.pos != len(r.buf) {
		r.fail("trailing bytes")
	}
	return r.err
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.pos += n
	return v
}

// count reads a non-negative size that must fit in an int.
func (r *reader) count() int {
	v := r.uvarint()
	if v > math.MaxInt32 {
		r.fail("count overflow")
		return 0
	}
	return int(v)
}

// sliceLen reads an element count and bounds it by the remaining input
// (every element costs at least one byte), so a corrupt length can never
// force a huge allocation.
func (r *reader) sliceLen() int {
	n := r.count()
	if r.err == nil && n > len(r.buf)-r.pos {
		r.fail("slice length exceeds input")
		return 0
	}
	return n
}

func (r *reader) str() string {
	n := r.sliceLen()
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *reader) boolean() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.buf) {
		r.fail("bool")
		return false
	}
	b := r.buf[r.pos]
	if b > 1 {
		// Only canonical 0/1 decode, so decode∘encode is the identity on
		// every valid entry (the fuzz target's round-trip property).
		r.fail("bool")
		return false
	}
	r.pos++
	return b == 1
}

func (r *reader) sig() jimple.Sig {
	s := jimple.Sig{Class: r.str(), Name: r.str()}
	if n := r.sliceLen(); n > 0 {
		s.Params = make([]string, n)
		for i := range s.Params {
			s.Params[i] = r.str()
		}
	}
	s.Ret = r.str()
	return s
}

func (r *reader) reportValue(out *report.Report) {
	out.Cause = report.Cause(r.str())
	out.Lib = apimodel.LibKey(r.str())
	out.Message = r.str()
	out.Location.Method = r.sig()
	out.Location.Stmt = int(r.varint())
	if n := r.sliceLen(); n > 0 {
		out.Impacts = make([]report.Impact, n)
		for i := range out.Impacts {
			out.Impacts[i] = report.Impact(r.str())
		}
	}
	out.Context.Component = r.str()
	out.Context.Kind = android.ComponentKind(r.uvarint())
	out.Context.KindName = r.str()
	out.Context.UserInitiated = r.boolean()
	out.Context.HTTPMethod = r.str()
	if n := r.sliceLen(); n > 0 {
		out.CallStack = make([]report.Frame, n)
		for i := range out.CallStack {
			out.CallStack[i].Method = r.str()
			out.CallStack[i].Site = int(r.varint())
		}
	}
	out.FixSuggestion = r.str()
	out.DefaultCaused = r.boolean()
	out.Validation = r.str()
	out.ValidationNote = r.str()
}

func (r *reader) calls() []dataflow.SummaryCall {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	out := make([]dataflow.SummaryCall, n)
	for i := range out {
		out[i].Callee = r.sig()
		if na := r.sliceLen(); na > 0 {
			out[i].Args = make([]dataflow.SummaryArg, na)
			for j := range out[i].Args {
				out[i].Args[j].Known = r.boolean()
				out[i].Args[j].V = r.varint()
			}
		}
	}
	return out
}

// maxSummaryInputs mirrors dataflow's bound: Inputs beyond it cannot come
// from a real summary, so larger values are corruption.
const maxSummaryInputs = 64

func (r *reader) summary() *dataflow.TaintSummary {
	s := &dataflow.TaintSummary{Inputs: r.count()}
	if s.Inputs > maxSummaryInputs {
		r.fail("summary inputs")
		return s
	}
	s.RetFrom = r.uvarint()
	s.Escapes = r.uvarint()
	s.Uses = r.uvarint()
	s.ValidatedAllPaths = r.uvarint()
	s.UncheckedUse = r.uvarint()
	if s.Inputs > 0 {
		s.StateFrom = make([]uint64, s.Inputs)
		for i := range s.StateFrom {
			s.StateFrom[i] = r.uvarint()
		}
		s.CallsOn = make([][]dataflow.SummaryCall, s.Inputs)
		for i := range s.CallsOn {
			s.CallsOn[i] = r.calls()
		}
	}
	s.CallsOnRet = r.calls()
	return s
}
