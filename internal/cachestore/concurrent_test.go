package cachestore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// These tests are the store's concurrency contract, run under -race in CI
// (scripts/check.sh): many goroutines sharing one Store (and the
// process-wide Shared registry) over one directory and over distinct
// directories, with budgets small enough that evictions run concurrently
// with puts and gets.

// TestConcurrentSharedSameDir: goroutines resolving the same directory
// through Shared hammer a small key space with mixed Put/Get/Remove/Len
// while the LRU bound forces evictions mid-traffic.
func TestConcurrentSharedSameDir(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("p"), 512)
	entrySize := int64(len(EncodeEntry(KindResult, payload)))
	opts := Options{MaxBytes: 4 * entrySize} // room for ~4 of 8 keys: constant eviction
	const goroutines = 16
	const ops = 60

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := Shared(dir, opts)
			if err != nil {
				t.Errorf("Shared: %v", err)
				return
			}
			for i := 0; i < ops; i++ {
				key := NewKey(KindResult, []byte{byte((g + i) % 8)})
				switch i % 4 {
				case 0, 1:
					if _, err := s.Put(key, payload); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 2:
					if got, status := s.Get(key); status == StatusHit && !bytes.Equal(got, payload) {
						t.Errorf("hit returned wrong payload")
						return
					} else if status == StatusCorrupt {
						t.Errorf("store produced a corrupt entry under concurrency")
						return
					}
				case 3:
					if i%8 == 3 {
						s.Remove(key)
					} else {
						s.Len()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The store must still work after the storm.
	s, err := Shared(dir, opts)
	if err != nil {
		t.Fatalf("Shared: %v", err)
	}
	key := NewKey(KindResult, []byte("after"))
	if _, err := s.Put(key, payload); err != nil {
		t.Fatalf("Put after storm: %v", err)
	}
	if _, status := s.Get(key); status != StatusHit {
		t.Fatalf("Get after storm = %v, want hit", status)
	}
}

// TestConcurrentSharedDistinctDirs: concurrent Shared opens and traffic
// over distinct directories must not interfere (one registry lock, many
// stores).
func TestConcurrentSharedDistinctDirs(t *testing.T) {
	const goroutines = 8
	dirs := make([]string, goroutines)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	payload := bytes.Repeat([]byte("q"), 256)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := Shared(dirs[g], Options{})
			if err != nil {
				t.Errorf("Shared(%s): %v", dirs[g], err)
				return
			}
			for i := 0; i < 40; i++ {
				key := NewKey(KindSummary, []byte(fmt.Sprintf("g%d-%d", g, i%5)))
				if _, err := s.Put(key, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, status := s.Get(key); status != StatusHit {
					t.Errorf("Get = %v, want hit", status)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentEvictAndPut: one goroutine keeps the store over budget
// (every Put triggers an eviction scan) while others put and re-get a
// working set — simultaneous evict + put must neither race nor wedge, and
// a successful Get must always return the exact committed payload.
func TestConcurrentEvictAndPut(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("e"), 512)
	entrySize := int64(len(EncodeEntry(KindResult, payload)))
	s := mustOpen(t, dir, Options{MaxBytes: 2 * entrySize}) // 2-entry budget

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the evictor: unique keys, each Put overflows the budget
		defer wg.Done()
		for i := 0; i < 100; i++ {
			key := NewKey(KindResult, []byte(fmt.Sprintf("churn-%d", i)))
			if _, err := s.Put(key, payload); err != nil {
				t.Errorf("churn Put: %v", err)
				return
			}
		}
	}()
	go func() { // the worker: one hot key, put + get
		defer wg.Done()
		key := NewKey(KindResult, []byte("hot"))
		for i := 0; i < 100; i++ {
			if _, err := s.Put(key, payload); err != nil {
				t.Errorf("hot Put: %v", err)
				return
			}
			if got, status := s.Get(key); status == StatusHit && !bytes.Equal(got, payload) {
				t.Errorf("hot Get returned wrong payload")
				return
			} else if status == StatusCorrupt {
				t.Errorf("hot entry read corrupt")
				return
			}
		}
	}()
	wg.Wait()
}
