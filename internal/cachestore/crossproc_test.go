package cachestore

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Cross-OS-process tests: the store's documented contract says concurrent
// *processes* sharing one directory are safe (atomic renames; benignly
// racing LRU scans). The in-process concurrent_test.go storms cannot
// prove that — the evictMu and the recency overlay only serialize within
// a process — so these tests re-exec the test binary as a genuinely
// separate process (the classic helper-process pattern) and drive churn
// and corruption healing across the process boundary. The fleet mode
// leans on exactly this: every worker on a host shares the same -cache
// directory with whatever CLI scans run beside it.

const (
	helperModeEnv = "CACHESTORE_HELPER_MODE"
	helperDirEnv  = "CACHESTORE_HELPER_DIR"
	helperKeyEnv  = "CACHESTORE_HELPER_KEY"
	helperMaxEnv  = "CACHESTORE_HELPER_MAX"
)

// crossPayload is the payload both processes commit; any hit must return
// exactly these bytes or the cross-process story is broken.
var crossPayload = bytes.Repeat([]byte("x"), 512)

// crossKey derives the same key in both processes from a string seed.
func crossKey(seed string) Key { return NewKey(KindResult, []byte(seed)) }

// TestCacheHelperProcess is not a test of its own: it is the child half
// of the cross-process suite, selected via -test.run by the parents
// below and steered by CACHESTORE_HELPER_* variables. Without them it
// skips, so a plain `go test` run passes through it.
func TestCacheHelperProcess(t *testing.T) {
	dir := os.Getenv(helperDirEnv)
	if dir == "" {
		t.Skip("helper-process entry point; driven by the TestCrossProcess* parents")
	}
	var max int64
	fmt.Sscan(os.Getenv(helperMaxEnv), &max)
	s, err := Open(dir, Options{MaxBytes: max})
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	switch mode := os.Getenv(helperModeEnv); mode {
	case "churn":
		// Unique child keys force evictions while the parent churns its
		// own; shared keys are read back and must never be corrupt or
		// carry foreign bytes.
		for i := 0; i < 120; i++ {
			if _, err := s.Put(crossKey(fmt.Sprintf("child-%d", i)), crossPayload); err != nil {
				t.Fatalf("helper: churn Put: %v", err)
			}
			got, status := s.Get(crossKey(fmt.Sprintf("shared-%d", i%4)))
			switch {
			case status == StatusCorrupt:
				t.Fatalf("helper: shared entry read corrupt under cross-process churn")
			case status == StatusHit && !bytes.Equal(got, crossPayload):
				t.Fatalf("helper: shared hit returned foreign payload (%d bytes)", len(got))
			}
		}
		fmt.Println("helper: churn-done")
	case "put":
		if _, err := s.Put(crossKey(os.Getenv(helperKeyEnv)), crossPayload); err != nil {
			t.Fatalf("helper: Put: %v", err)
		}
		fmt.Println("helper: put-done")
	case "get":
		got, status := s.Get(crossKey(os.Getenv(helperKeyEnv)))
		switch status {
		case StatusHit:
			fmt.Printf("helper: get=hit payload=%d\n", len(got))
		case StatusMiss:
			fmt.Println("helper: get=miss")
		case StatusCorrupt:
			fmt.Println("helper: get=corrupt")
		}
	default:
		t.Fatalf("helper: unknown mode %q", mode)
	}
}

// runHelper re-execs this test binary as a separate OS process running
// only TestCacheHelperProcess in the given mode, and returns its output.
func runHelper(t *testing.T, dir, mode, key string, max int64) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCacheHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		helperModeEnv+"="+mode,
		helperDirEnv+"="+dir,
		helperKeyEnv+"="+key,
		fmt.Sprintf("%s=%d", helperMaxEnv, max),
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper process (%s) failed: %v\n%s", mode, err, out)
	}
	return string(out)
}

// TestCrossProcessVisibility: an entry committed by one OS process must
// read as a clean hit in another, and vice versa — the atomic
// write-then-rename commit is the only coordination between them.
func TestCrossProcessVisibility(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})

	// Parent writes, child reads.
	key := crossKey("parent-owned")
	if _, err := s.Put(key, crossPayload); err != nil {
		t.Fatal(err)
	}
	out := runHelper(t, dir, "get", "parent-owned", 0)
	if want := fmt.Sprintf("helper: get=hit payload=%d", len(crossPayload)); !strings.Contains(out, want) {
		t.Fatalf("child did not hit the parent's entry; want %q in:\n%s", want, out)
	}

	// Child writes, parent reads.
	runHelper(t, dir, "put", "child-owned", 0)
	got, status := s.Get(crossKey("child-owned"))
	if status != StatusHit || !bytes.Equal(got, crossPayload) {
		t.Fatalf("parent Get(child entry) = %v (%d bytes), want clean hit", status, len(got))
	}
}

// TestCrossProcessPutEvictChurn: two OS processes hammer one directory
// with a budget small enough that both run eviction scans mid-traffic.
// Neither side may ever observe a corrupt entry or a foreign payload,
// and after the storm the on-disk total must settle under the bound.
func TestCrossProcessPutEvictChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	entrySize := int64(len(EncodeEntry(KindResult, crossPayload)))
	max := 6 * entrySize // room for ~6 entries: constant eviction on both sides
	s := mustOpen(t, dir, Options{MaxBytes: max})

	// Seed the shared keys both sides read during the churn.
	for i := 0; i < 4; i++ {
		if _, err := s.Put(crossKey(fmt.Sprintf("shared-%d", i)), crossPayload); err != nil {
			t.Fatal(err)
		}
	}

	childDone := make(chan string, 1)
	go func() { childDone <- runHelper(t, dir, "churn", "", max) }()

	// The parent's half of the storm: unique keys plus shared re-puts, so
	// renames, evictions, and reads interleave with the child's.
	for i := 0; i < 120; i++ {
		if _, err := s.Put(crossKey(fmt.Sprintf("parent-%d", i)), crossPayload); err != nil {
			t.Fatalf("parent churn Put: %v", err)
		}
		if i%10 == 0 {
			if _, err := s.Put(crossKey(fmt.Sprintf("shared-%d", i%4)), crossPayload); err != nil {
				t.Fatalf("parent shared Put: %v", err)
			}
		}
		got, status := s.Get(crossKey(fmt.Sprintf("shared-%d", i%4)))
		switch {
		case status == StatusCorrupt:
			t.Fatalf("parent: shared entry read corrupt under cross-process churn")
		case status == StatusHit && !bytes.Equal(got, crossPayload):
			t.Fatalf("parent: shared hit returned foreign payload (%d bytes)", len(got))
		}
	}
	if out := <-childDone; !strings.Contains(out, "helper: churn-done") {
		t.Fatalf("child churn did not finish cleanly:\n%s", out)
	}

	// One more Put forces a full eviction scan (the running total errs
	// high after cross-process traffic), which recomputes the true
	// on-disk total and trims it under the bound.
	if _, err := s.Put(crossKey("final"), crossPayload); err != nil {
		t.Fatal(err)
	}
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), entryExt) {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += info.Size()
		}
	}
	if total > max {
		t.Errorf("after cross-process churn and a final eviction, disk holds %d bytes of entries, budget %d", total, max)
	}

	// And the directory is still a working cache.
	if _, status := s.Get(crossKey("final")); status != StatusHit {
		t.Errorf("Get after storm = %v, want hit", status)
	}
}

// TestCrossProcessCorruptHealing: corruption planted by one process
// (here: the parent truncating a committed entry, as a crashed writer
// on a non-atomic filesystem might) must be detected by another
// process's Get, deleted on the spot, and the slot must heal with the
// next Put — all visible back in the first process.
func TestCrossProcessCorruptHealing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := crossKey("damaged")
	if _, err := s.Put(key, crossPayload); err != nil {
		t.Fatal(err)
	}

	// Truncate the committed entry mid-payload.
	path := filepath.Join(dir, key.Filename())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// The child must classify it corrupt, not hit, not crash.
	out := runHelper(t, dir, "get", "damaged", 0)
	if !strings.Contains(out, "helper: get=corrupt") {
		t.Fatalf("child did not report the truncated entry corrupt:\n%s", out)
	}
	// ... and must have removed the damaged file (self-healing).
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("damaged entry still on disk after the child's corrupt read (stat err=%v)", err)
	}
	// The parent sees the healed slot as a plain miss, re-puts, and the
	// child hits the fresh entry.
	if _, status := s.Get(key); status != StatusMiss {
		t.Fatalf("parent Get after child healing = %v, want miss", status)
	}
	if _, err := s.Put(key, crossPayload); err != nil {
		t.Fatal(err)
	}
	out = runHelper(t, dir, "get", "damaged", 0)
	if want := fmt.Sprintf("helper: get=hit payload=%d", len(crossPayload)); !strings.Contains(out, want) {
		t.Fatalf("child did not hit the healed entry; want %q in:\n%s", want, out)
	}

	// A bit-flip inside the payload (not just truncation) must also read
	// corrupt cross-process: the envelope checksum, not the length, is
	// what catches it.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out = runHelper(t, dir, "get", "damaged", 0)
	if !strings.Contains(out, "helper: get=corrupt") {
		t.Fatalf("child did not report the bit-flipped entry corrupt:\n%s", out)
	}
}
