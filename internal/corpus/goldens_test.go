package corpus

import (
	"testing"

	"repro/internal/apimodel"
	"repro/internal/core"
	"repro/internal/report"
)

// TestGoldensReproduceTable9 verifies the accuracy evaluation: scanning
// the 16 golden apps must reproduce the paper's Table 9 exactly —
// per-cause correct warnings, false positives, and known false negatives.
func TestGoldensReproduceTable9(t *testing.T) {
	reg := apimodel.NewRegistry()
	nc := core.New()

	correct := make(map[report.Cause]int)
	fps := make(map[report.Cause]int)
	fns := make(map[report.Cause]int)
	for _, g := range GoldenSpecs() {
		app, err := Build(g.Spec)
		if err != nil {
			t.Fatalf("golden %s: %v", g.Name, err)
		}
		res := nc.ScanApp(app)
		got := make(map[report.Cause]int)
		for i := range res.Reports {
			got[res.Reports[i].Cause]++
		}
		at := OracleApp(reg, g.Spec)
		// Scanner must match the oracle's tool expectation per cause.
		for c, n := range at.ToolByCause {
			if got[c] != n {
				t.Errorf("golden %s cause %s: scanner %d vs oracle %d", g.Name, c, got[c], n)
			}
		}
		for c, n := range got {
			if at.ToolByCause[c] != n {
				t.Errorf("golden %s scanner extra cause %s ×%d", g.Name, c, n)
			}
		}
		for c, n := range at.CorrectByCause() {
			correct[c] += n
		}
		for c, n := range at.FalsePositives {
			fps[c] += n
		}
		for c, n := range at.FalseNegatives {
			fns[c] += n
		}
	}

	// Paper Table 9.
	wantCorrect := map[report.Cause]int{
		report.CauseNoConnectivityCheck:   31,
		report.CauseNoTimeout:             58,
		report.CauseNoRetryConfig:         12,
		report.CauseOverRetryService:      4,
		report.CauseNoFailureNotification: 20,
		report.CauseNoResponseCheck:       5,
	}
	totalCorrect := 0
	for c, want := range wantCorrect {
		if correct[c] != want {
			t.Errorf("correct[%s] = %d, want %d", c, correct[c], want)
		}
		totalCorrect += correct[c]
	}
	for c, n := range correct {
		if wantCorrect[c] == 0 && n > 0 {
			t.Errorf("unexpected correct cause %s ×%d", c, n)
		}
	}
	if totalCorrect != 130 {
		t.Errorf("total correct warnings = %d, want 130", totalCorrect)
	}
	if fps[report.CauseNoConnectivityCheck] != 4 {
		t.Errorf("conn FPs = %d, want 4", fps[report.CauseNoConnectivityCheck])
	}
	if fps[report.CauseNoFailureNotification] != 5 {
		t.Errorf("notif FPs = %d, want 5", fps[report.CauseNoFailureNotification])
	}
	if fns[report.CauseNoConnectivityCheck] != 5 {
		t.Errorf("conn FNs = %d, want 5", fns[report.CauseNoConnectivityCheck])
	}
	totalFP, totalFN := 0, 0
	for _, n := range fps {
		totalFP += n
	}
	for _, n := range fns {
		totalFN += n
	}
	if totalFP != 9 || totalFN != 5 {
		t.Errorf("FP/FN totals = %d/%d, want 9/5", totalFP, totalFN)
	}
	// Accuracy: correct / (correct + FP) ≈ 94%.
	acc := float64(totalCorrect) / float64(totalCorrect+totalFP)
	if acc < 0.93 || acc > 0.95 {
		t.Errorf("accuracy = %.3f, want ≈ 0.94", acc)
	}
}

func TestBuildGoldens(t *testing.T) {
	apps, err := BuildGoldens()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 16 {
		t.Fatalf("got %d goldens, want 16", len(apps))
	}
	for i, app := range apps {
		if err := app.Program.Validate(); err != nil {
			t.Errorf("golden %d invalid: %v", i, err)
		}
	}
}

// TestUserStudyAppsHaveTheirNPD checks each Table 10 app exhibits its
// named defect when scanned.
func TestUserStudyAppsHaveTheirNPD(t *testing.T) {
	nc := core.New()
	wantCause := map[string]report.Cause{
		"ankidroid":  report.CauseNoConnectivityCheck,
		"gpslogger1": report.CauseNoTimeout,
		"gpslogger2": report.CauseNoRetryConfig,
		"gpslogger3": report.CauseNoRetryConfig,
		"devfest1":   report.CauseNoFailureNotification,
		"devfest2":   report.CauseNoResponseCheck,
		"maoshishu":  report.CauseOverRetryService,
	}
	for _, ua := range UserStudySpecs() {
		app, err := Build(ua.Spec)
		if err != nil {
			t.Fatalf("user-study app %s: %v", ua.Name, err)
		}
		res := nc.ScanApp(app)
		found := false
		for i := range res.Reports {
			if res.Reports[i].Cause == wantCause[ua.Name] {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: cause %s not reported; got %v", ua.Name, wantCause[ua.Name], causesOf(res.Reports))
		}
		if ua.Fixes == "" || ua.NPD == "" {
			t.Errorf("%s: missing metadata", ua.Name)
		}
	}
}

func causesOf(rs []report.Report) []report.Cause {
	out := make([]report.Cause, len(rs))
	for i := range rs {
		out[i] = rs[i].Cause
	}
	return out
}
