// Package corpus synthesizes Android apps for NChecker's evaluation: a
// seeded generative model of the paper's 285-app Google-Play sample
// (calibrated to the §2 study's defect rates), plus 16 hand-specified
// "golden" apps with exact ground truth that reproduce the paper's
// accuracy evaluation (Table 9), including the adversarial shapes behind
// its false positives and negatives.
//
// Every app is emitted through one code generator (this file), and every
// app's expected warnings are derived by an independent oracle
// (groundtruth.go), so generator and checker can be validated against
// each other.
package corpus

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// CtxKind is the component context a request runs in.
type CtxKind uint8

const (
	// CtxActivity marks a user-initiated (time-sensitive) request.
	CtxActivity CtxKind = iota
	// CtxService marks a background request.
	CtxService
)

// Wrap selects how the request is dispatched.
type Wrap uint8

const (
	// WrapDirect performs the request inline in the lifecycle method.
	WrapDirect Wrap = iota
	// WrapAsyncTask performs it in an inner AsyncTask's doInBackground.
	WrapAsyncTask
)

// SiteSpec describes one network-request site and all its reliability
// decisions; the generator turns it into code and the oracle derives the
// warnings NChecker should raise for it.
type SiteSpec struct {
	Lib  apimodel.LibKey
	Ctx  CtxKind
	Wrap Wrap
	// Post selects a POST request (libraries that support it).
	Post bool
	// ConnCheck guards the request with a connectivity check.
	ConnCheck bool
	// ConnCheckUnused invokes the check API but ignores its result and
	// branches on nothing — a genuine defect NChecker's path-insensitive
	// analysis cannot see (the paper's 5 FNs, §5.3).
	ConnCheckUnused bool
	// ConnCheckInPrevComponent places the check in a *previous* activity
	// that starts this one — not a defect, but NChecker's missing
	// inter-component analysis reports it (the paper's 4 conn FPs).
	ConnCheckInPrevComponent bool
	// SetTimeout invokes a timeout config API.
	SetTimeout bool
	// SetRetry invokes the retry config API with RetryCount.
	SetRetry   bool
	RetryCount int
	// Notify surfaces failures with a Toast in the request's callback
	// scope.
	Notify bool
	// NotifyViaBroadcast surfaces failures by broadcasting to another
	// component that shows the message — not a defect, but invisible to
	// NChecker (the paper's 5 notification FPs).
	NotifyViaBroadcast bool
	// InspectErrorType examines the typed error object (Volley).
	InspectErrorType bool
	// UseResponse reads the response body (synchronous libraries).
	UseResponse bool
	// CheckResponse null-checks the response before use.
	CheckResponse bool
	// RetryLoop wraps the request in a customized retry loop.
	RetryLoop bool
	// LoopBackoff adds Thread.sleep to the retry loop's catch block — the
	// failure path, where backoff belongs.
	LoopBackoff bool
	// LoopBackoffOffPath adds Thread.sleep on the loop's success path only
	// (after the request, before the done flag): the loop "has backoff"
	// but failed attempts still reconnect immediately — the retry-storm
	// shape (Checker 8).
	LoopBackoffOffPath bool
	// SleepAfterCheck inserts a blocking Thread.sleep between the
	// connectivity check and the request — the wait staleness shape
	// (Checker 6). Only meaningful with ConnCheck.
	SleepAfterCheck bool
	// ConnCheckBeforeAsync moves the connectivity check out of the
	// AsyncTask into the entry method, before execute(): the check is
	// stale by the time doInBackground runs — the callback-boundary
	// staleness shape (Checker 6). Only meaningful with ConnCheck and
	// WrapAsyncTask.
	ConnCheckBeforeAsync bool
	// CleartextURL requests an http:// endpoint (Checker 7).
	CleartextURL bool
	// HardcodedIP requests an endpoint whose host is an IPv4 literal
	// (Checker 7).
	HardcodedIP bool
	// LoopbackDebugURL requests http://127.0.0.1/api — a leftover debug
	// endpoint the tool flags (cleartext + IP literal) but that is
	// harmless: the endpoint-hygiene FP shape.
	LoopbackDebugURL bool
	// BuildURL assembles the URL by string concatenation instead of one
	// literal, exercising the checker's string constant propagation.
	BuildURL bool
	// NetStateReceiver registers a broadcast receiver that inspects
	// connectivity on change but only toasts — no retry, no cached
	// fallback: the offline-state defect (Checker 5).
	NetStateReceiver bool
	// NetStateReceiverRecovers registers a receiver that inspects
	// connectivity and falls back to cached content — the well-behaved
	// offline-state shape.
	NetStateReceiverRecovers bool
	// NetCallback registers a ConnectivityManager.NetworkCallback whose
	// onAvailable only toasts — the offline-state defect again, via the
	// callback API (Checker 5).
	NetCallback bool
}

// AppSpec is a full app: one component per site.
type AppSpec struct {
	Package string
	Label   string
	Sites   []SiteSpec
}

// Build generates the app: manifest plus program.
func Build(spec AppSpec) (*apk.App, error) {
	if spec.Package == "" {
		return nil, fmt.Errorf("corpus: app spec needs a package")
	}
	b := &appGen{spec: spec, prog: jimple.NewProgram()}
	man := &android.Manifest{Package: spec.Package, Label: spec.Label}
	for i, site := range spec.Sites {
		comp := fmt.Sprintf("%s.Comp%d", spec.Package, i)
		if err := b.emitComponent(comp, site); err != nil {
			return nil, fmt.Errorf("corpus: site %d: %w", i, err)
		}
		switch site.Ctx {
		case CtxActivity:
			man.Activities = append(man.Activities, comp)
			if site.ConnCheckInPrevComponent {
				man.Activities = append(man.Activities, comp+"Launcher")
			}
			if site.NotifyViaBroadcast {
				man.Receivers = append(man.Receivers, comp+"ErrReceiver")
			}
		case CtxService:
			man.Services = append(man.Services, comp)
		}
		if site.NetStateReceiver || site.NetStateReceiverRecovers {
			man.Receivers = append(man.Receivers, comp+"NetReceiver")
		}
	}
	man.Normalize()
	app := &apk.App{Manifest: man, Program: b.prog}
	if err := b.prog.Validate(); err != nil {
		return nil, fmt.Errorf("corpus: generated program invalid: %w", err)
	}
	return app, nil
}

// MustBuild panics on error; specs are authored in code, so failures are
// programming bugs.
func MustBuild(spec AppSpec) *apk.App {
	app, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return app
}

type appGen struct {
	spec AppSpec
	prog *jimple.Program
}

func (g *appGen) emitComponent(comp string, site SiteSpec) error {
	var super string
	var entrySig jimple.Sig
	switch site.Ctx {
	case CtxActivity:
		super = android.ClassActivity
		entrySig = jimple.Sig{Class: comp, Name: "onCreate",
			Params: []string{android.ClassBundle}, Ret: jimple.TypeVoid}
	case CtxService:
		super = android.ClassService
		entrySig = jimple.Sig{Class: comp, Name: "onStartCommand",
			Params: []string{android.ClassIntent, "int", "int"}, Ret: "int"}
	}
	cls := &jimple.Class{Name: comp, Super: super}
	g.prog.AddClass(cls)

	body := jimple.NewBody()
	if site.NetCallback {
		g.emitNetCallbackRegistration(body, comp)
	}
	if site.Wrap == WrapAsyncTask {
		if site.ConnCheckBeforeAsync && site.ConnCheck && !site.ConnCheckUnused {
			// The callback-boundary staleness shape: check here, request in
			// the task's doInBackground.
			offline := body.NewLabel()
			emitConnCheckGuard(body, offline)
			g.emitAsyncTaskLaunch(body, comp, site)
			body.Bind(offline)
			body.Nop()
		} else {
			g.emitAsyncTaskLaunch(body, comp, site)
		}
	} else {
		if err := g.emitSite(body, comp, site, true); err != nil {
			return err
		}
	}
	g.finishEntry(body, cls, entrySig, site)

	if site.Wrap == WrapAsyncTask {
		if err := g.emitAsyncTaskClass(comp, site); err != nil {
			return err
		}
	}
	if site.ConnCheckInPrevComponent {
		g.emitLauncherActivity(comp)
	}
	if site.NotifyViaBroadcast {
		g.emitErrReceiver(comp)
	}
	if site.NetStateReceiver || site.NetStateReceiverRecovers {
		g.emitNetReceiver(comp, site.NetStateReceiverRecovers)
	}
	if site.NetCallback {
		g.emitNetCallbackClass(comp)
	}
	return nil
}

// emitNetReceiver emits a manifest-registered receiver that inspects
// connectivity on change. The recovering variant falls back to cached
// content (SharedPreferences); the defective one only toasts — the
// offline-state shape Checker 5 flags.
func (g *appGen) emitNetReceiver(comp string, recovers bool) {
	name := comp + "NetReceiver"
	cls := &jimple.Class{Name: name, Super: android.ClassBroadcastReceiver}
	g.prog.AddClass(cls)
	b := jimple.NewBody()
	offline := b.NewLabel()
	emitConnCheckGuard(b, offline)
	// Online path: nothing pending to resume in this minimal shape.
	b.Bind(offline)
	if recovers {
		prefs := b.Local("prefs", android.ClassSharedPrefs)
		cached := b.Local("cached", jimple.TypeString)
		b.Assign(prefs, jimple.NewExpr{Type: android.ClassSharedPrefs})
		b.InvokeAssign(cached, jimple.InvokeVirtual, "prefs",
			jimple.Sig{Class: android.ClassSharedPrefs, Name: "getString",
				Params: []string{jimple.TypeString, jimple.TypeString}, Ret: jimple.TypeString},
			jimple.StrConst{V: "cached_feed"}, jimple.StrConst{V: ""})
	} else {
		emitToast(b)
	}
	b.Return(nil)
	cls.AddMethod(b.MustBuild(jimple.Sig{Class: name, Name: "onReceive",
		Params: []string{android.ClassContext, android.ClassIntent}, Ret: jimple.TypeVoid}, false))
}

// emitNetCallbackRegistration emits
// "cm.registerNetworkCallback(new Comp$NetCb())" into the entry body.
func (g *appGen) emitNetCallbackRegistration(b *jimple.BodyBuilder, comp string) {
	cbCls := comp + "$NetCb"
	cm := b.Local("cmReg", android.ClassConnectivityMgr)
	cb := b.Local("netCb", cbCls)
	b.Assign(cm, jimple.NewExpr{Type: android.ClassConnectivityMgr})
	b.New(cb, cbCls)
	b.Invoke(jimple.InvokeVirtual, "cmReg",
		jimple.Sig{Class: android.ClassConnectivityMgr, Name: "registerNetworkCallback",
			Params: []string{android.ClassNetworkCallback}, Ret: jimple.TypeVoid},
		cb)
}

// emitNetCallbackClass emits the NetworkCallback subclass whose
// onAvailable only toasts — no retry, no cached fallback.
func (g *appGen) emitNetCallbackClass(comp string) {
	cbCls := comp + "$NetCb"
	if g.prog.Class(cbCls) != nil {
		return
	}
	cls := &jimple.Class{Name: cbCls, Super: android.ClassNetworkCallback}
	g.prog.AddClass(cls)
	ctor := jimple.NewBody()
	ctor.Return(nil)
	cls.AddMethod(ctor.MustBuild(jimple.Sig{Class: cbCls, Name: "<init>", Ret: jimple.TypeVoid}, false))
	b := jimple.NewBody()
	net := b.Local("net", android.ClassNetwork)
	b.Assign(net, jimple.ParamRef{Index: 0, Type: android.ClassNetwork})
	emitToast(b)
	b.Return(nil)
	cls.AddMethod(b.MustBuild(jimple.Sig{Class: cbCls, Name: "onAvailable",
		Params: []string{android.ClassNetwork}, Ret: jimple.TypeVoid}, false))
}

func (g *appGen) finishEntry(body *jimple.BodyBuilder, cls *jimple.Class, sig jimple.Sig, site SiteSpec) {
	if site.Ctx == CtxService {
		body.Return(jimple.IntConst{V: 0})
	} else {
		body.Return(nil)
	}
	cls.AddMethod(body.MustBuild(sig, false))
}

// emitAsyncTaskLaunch emits "new Comp$Task().execute()".
func (g *appGen) emitAsyncTaskLaunch(b *jimple.BodyBuilder, comp string, _ SiteSpec) {
	taskCls := comp + "$Task"
	task := b.Local("task", taskCls)
	b.New(task, taskCls)
	b.Invoke(jimple.InvokeVirtual, "task",
		jimple.Sig{Class: android.ClassAsyncTask, Name: "execute", Ret: jimple.TypeVoid})
}

// emitAsyncTaskClass emits the inner AsyncTask holding the request in
// doInBackground; notification (if any) lives in onPostExecute.
func (g *appGen) emitAsyncTaskClass(comp string, site SiteSpec) error {
	taskCls := comp + "$Task"
	cls := &jimple.Class{Name: taskCls, Super: android.ClassAsyncTask}
	g.prog.AddClass(cls)
	ctor := jimple.NewBody()
	ctor.Return(nil)
	cls.AddMethod(ctor.MustBuild(jimple.Sig{Class: taskCls, Name: "<init>", Ret: jimple.TypeVoid}, false))

	// The request itself. For libraries with implicit callbacks the inline
	// notification moves to onPostExecute; explicit-callback libraries
	// keep Notify, which lands in their handler/listener body.
	inner := site
	if !usesExplicitCallback(site) {
		inner.Notify = false
	}
	if site.ConnCheckBeforeAsync && site.ConnCheck && !site.ConnCheckUnused {
		// The check already ran in the entry method, before execute();
		// doInBackground performs the request unguarded.
		inner.ConnCheck = false
	}
	body := jimple.NewBody()
	if err := g.emitSite(body, taskCls, inner, false); err != nil {
		return err
	}
	body.Return(nil)
	cls.AddMethod(body.MustBuild(jimple.Sig{Class: taskCls, Name: "doInBackground", Ret: jimple.TypeVoid}, false))

	post := jimple.NewBody()
	if site.Notify && !usesExplicitCallback(site) {
		emitToast(post)
	}
	post.Return(nil)
	cls.AddMethod(post.MustBuild(jimple.Sig{Class: taskCls, Name: "onPostExecute", Ret: jimple.TypeVoid}, false))
	return nil
}

// usesExplicitCallback reports whether the library routes failures through
// an explicit callback object (so inline/onPostExecute toasts are not how
// this site notifies).
func usesExplicitCallback(site SiteSpec) bool {
	return site.Lib == apimodel.LibVolley || site.Lib == apimodel.LibAsyncHTTP
}

// emitLauncherActivity emits the "previous activity" that checks
// connectivity and then starts the component — the inter-component FP
// shape.
func (g *appGen) emitLauncherActivity(comp string) {
	name := comp + "Launcher"
	cls := &jimple.Class{Name: name, Super: android.ClassActivity}
	g.prog.AddClass(cls)
	b := jimple.NewBody()
	self := b.Local("self", name)
	b.Assign(self, jimple.ThisRef{Type: name})
	offline := b.NewLabel()
	emitConnCheckGuard(b, offline)
	intent := b.Local("intent", android.ClassIntent)
	b.New(intent, android.ClassIntent)
	b.Invoke(jimple.InvokeVirtual, "intent",
		jimple.Sig{Class: android.ClassIntent, Name: "setClassName",
			Params: []string{jimple.TypeString}, Ret: jimple.TypeVoid},
		jimple.StrConst{V: comp})
	b.Invoke(jimple.InvokeVirtual, "self",
		jimple.Sig{Class: android.ClassActivity, Name: "startActivity",
			Params: []string{android.ClassIntent}, Ret: jimple.TypeVoid},
		intent)
	b.Bind(offline)
	b.Return(nil)
	cls.AddMethod(b.MustBuild(jimple.Sig{Class: name, Name: "onCreate",
		Params: []string{android.ClassBundle}, Ret: jimple.TypeVoid}, false))
}

// emitErrReceiver emits the broadcast receiver that displays the error in
// another component — the notification-FP shape.
func (g *appGen) emitErrReceiver(comp string) {
	name := comp + "ErrReceiver"
	cls := &jimple.Class{Name: name, Super: android.ClassBroadcastReceiver}
	g.prog.AddClass(cls)
	b := jimple.NewBody()
	emitToast(b)
	b.Return(nil)
	cls.AddMethod(b.MustBuild(jimple.Sig{Class: name, Name: "onReceive",
		Params: []string{android.ClassContext, android.ClassIntent}, Ret: jimple.TypeVoid}, false))
}

func emitToast(b *jimple.BodyBuilder) {
	toast := b.Local("toast", android.ClassToast)
	b.Assign(toast, jimple.NewExpr{Type: android.ClassToast})
	b.Invoke(jimple.InvokeVirtual, "toast",
		jimple.Sig{Class: android.ClassToast, Name: "show", Ret: jimple.TypeVoid})
}

func emitConnCheck(b *jimple.BodyBuilder) {
	cm := b.Local("cm", android.ClassConnectivityMgr)
	ni := b.Local("ni", android.ClassNetworkInfo)
	b.Assign(cm, jimple.NewExpr{Type: android.ClassConnectivityMgr})
	b.InvokeAssign(ni, jimple.InvokeVirtual, "cm",
		jimple.Sig{Class: android.ClassConnectivityMgr, Name: "getActiveNetworkInfo",
			Ret: android.ClassNetworkInfo})
}

// emitConnCheckGuard emits the check plus a guard branch to lbl when the
// network is unavailable.
func emitConnCheckGuard(b *jimple.BodyBuilder, offline *jimple.Label) {
	cm := b.Local("cm", android.ClassConnectivityMgr)
	ni := b.Local("ni", android.ClassNetworkInfo)
	b.Assign(cm, jimple.NewExpr{Type: android.ClassConnectivityMgr})
	b.InvokeAssign(ni, jimple.InvokeVirtual, "cm",
		jimple.Sig{Class: android.ClassConnectivityMgr, Name: "getActiveNetworkInfo",
			Ret: android.ClassNetworkInfo})
	b.If(jimple.BinExpr{Op: jimple.OpEQ, L: ni, R: jimple.NullConst{}}, offline)
}

// emitSite emits the request code for one site into b. inline indicates
// the code sits directly in the entry method (so inline toasts are the
// notification) rather than in an AsyncTask.
func (g *appGen) emitSite(b *jimple.BodyBuilder, owner string, site SiteSpec, inline bool) error {
	end := b.NewLabel()
	if site.ConnCheck && !site.ConnCheckUnused {
		emitConnCheckGuard(b, end)
	} else if site.ConnCheckUnused {
		emitConnCheck(b) // invoked, result ignored: the FN shape
	}
	if site.SleepAfterCheck && (site.ConnCheck || site.ConnCheckUnused) {
		// A blocking wait between check and request: the wait staleness
		// shape (Checker 6).
		b.Invoke(jimple.InvokeStatic, "",
			jimple.Sig{Class: android.ClassThread, Name: "sleep",
				Params: []string{"long"}, Ret: jimple.TypeVoid},
			jimple.IntConst{V: 1500})
	}
	var err error
	switch site.Lib {
	case apimodel.LibHttpURL:
		err = g.emitHttpURLRequest(b, site)
	case apimodel.LibApache:
		err = g.emitApacheRequest(b, site)
	case apimodel.LibVolley:
		err = g.emitVolleyRequest(b, owner, site)
	case apimodel.LibOkHttp:
		err = g.emitOkHttpRequest(b, site)
	case apimodel.LibAsyncHTTP:
		err = g.emitAsyncHTTPRequest(b, owner, site)
	case apimodel.LibBasic:
		err = g.emitBasicRequest(b, site)
	default:
		err = fmt.Errorf("unknown library %q", site.Lib)
	}
	if err != nil {
		return err
	}
	if inline && site.Notify && !usesExplicitCallback(site) {
		emitToast(b)
	}
	if site.NotifyViaBroadcast {
		self := b.Local("selfB", owner)
		intent := b.Local("errIntent", android.ClassIntent)
		b.New(intent, android.ClassIntent)
		b.Invoke(jimple.InvokeVirtual, "selfB",
			jimple.Sig{Class: android.ClassActivity, Name: "sendBroadcast",
				Params: []string{android.ClassIntent}, Ret: jimple.TypeVoid},
			intent)
		_ = self
	}
	b.Bind(end)
	b.Nop()
	return nil
}
