package corpus

import (
	"repro/internal/apimodel"
	"repro/internal/report"
)

// Truth is the oracle's verdict for one site: RealDefects are the NPDs
// actually present in the generated code; ToolWarnings are the warnings
// NChecker is expected to emit given its documented blind spots
// (path-insensitivity and missing inter-component analysis, paper §4.7
// and §5.3). The difference between the two sets is exactly the expected
// false positives and false negatives of Table 9.
type Truth struct {
	RealDefects  []report.Cause
	ToolWarnings []report.Cause
}

// Oracle derives the ground truth of a site spec, independently of the
// checker implementation. reg supplies library defaults.
func Oracle(reg *apimodel.Registry, site SiteSpec) Truth {
	lib := reg.Library(site.Lib)
	var truth Truth
	real := func(c report.Cause) { truth.RealDefects = append(truth.RealDefects, c) }
	tool := func(c report.Cause) { truth.ToolWarnings = append(truth.ToolWarnings, c) }
	both := func(c report.Cause) { real(c); tool(c) }

	// Connectivity: the tool is satisfied by any check invocation in the
	// same code path, even an unused one; it cannot see checks in a
	// previous component.
	properlyGuarded := site.ConnCheck && !site.ConnCheckUnused
	if !properlyGuarded && !site.ConnCheckInPrevComponent {
		real(report.CauseNoConnectivityCheck)
	}
	if !site.ConnCheck && !site.ConnCheckUnused {
		tool(report.CauseNoConnectivityCheck)
	}

	if lib.HasTimeoutAPIs() && !site.SetTimeout {
		both(report.CauseNoTimeout)
	}
	if lib.HasRetryAPIs && !site.SetRetry {
		both(report.CauseNoRetryConfig)
	}

	// Retry behaviour (retry-capable libraries only), mirroring the
	// request contexts of §4.4.2.
	if lib.HasRetryAPIs {
		retries := lib.Defaults.Retries
		defaultCaused := !site.SetRetry
		if site.SetRetry {
			retries = site.RetryCount
		}
		flagged := false
		if site.Post && retries > 0 && (!defaultCaused || lib.Defaults.RetriesApplyToPost) {
			both(report.CauseOverRetryPost)
			flagged = true
		}
		if !flagged && site.Ctx == CtxService && retries > 0 {
			both(report.CauseOverRetryService)
			flagged = true
		}
		if !flagged && site.Ctx == CtxActivity && retries == 0 && !site.Post {
			both(report.CauseNoRetryTimeSensitive)
		}
	}

	// Failure notification: user-initiated requests only. The tool cannot
	// see a notification routed through a broadcast to another component.
	if site.Ctx == CtxActivity {
		if !site.Notify && !site.NotifyViaBroadcast {
			real(report.CauseNoFailureNotification)
		}
		if !site.Notify {
			tool(report.CauseNoFailureNotification)
		}
		if site.Lib == apimodel.LibVolley && !site.InspectErrorType {
			both(report.CauseNoErrorTypeCheck)
		}
	}

	// Response validity (libraries with response-check APIs).
	if lib.HasRespCheckAPIs() && site.UseResponse && !site.CheckResponse {
		both(report.CauseNoResponseCheck)
	}

	// Customized retry loops (§4.5 plus the Checker 8 registry growth): no
	// backoff anywhere is the aggressive shape; backoff on the success path
	// only is the retry-storm shape. Backoff in the catch block is fine.
	if site.RetryLoop && !site.LoopBackoff {
		if site.LoopBackoffOffPath {
			both(report.CauseRetryStorm)
		} else {
			both(report.CauseAggressiveRetryLoop)
		}
	}

	// Stale connectivity check (Checker 6). The tool flags any invoked
	// check separated from its request by a loop back edge, a blocking
	// wait, or an async dispatch boundary; a stale *unused* check is a
	// tool-only warning (the site's real defect is the missing check,
	// reported above).
	checkInvoked := site.ConnCheck || site.ConnCheckUnused
	boundary := properlyGuarded && site.Wrap == WrapAsyncTask && site.ConnCheckBeforeAsync
	if checkInvoked && (boundary || site.RetryLoop || site.SleepAfterCheck) {
		tool(report.CauseStaleConnectivityCheck)
		if properlyGuarded {
			real(report.CauseStaleConnectivityCheck)
		}
	}

	// Endpoint hygiene (Checker 7). The loopback debug endpoint trips both
	// lexical rules but is harmless — the endpoint-hygiene FP shape.
	if site.LoopbackDebugURL {
		tool(report.CauseCleartextEndpoint)
		tool(report.CauseHardcodedIPEndpoint)
	} else {
		if site.CleartextURL {
			both(report.CauseCleartextEndpoint)
		}
		if site.HardcodedIP {
			both(report.CauseHardcodedIPEndpoint)
		}
	}

	// Offline-state handling (Checker 5): one warning per handler method
	// that observes connectivity changes without retrying or serving
	// cached content. The recovering receiver is the well-behaved shape.
	if site.NetStateReceiver && !site.NetStateReceiverRecovers {
		both(report.CauseOfflineStateNoRecovery)
	}
	if site.NetCallback {
		both(report.CauseOfflineStateNoRecovery)
	}
	return truth
}

// OracleICC derives the warnings expected from the tool with the
// inter-component analysis enabled (checkers.Options.EnableICC): the
// prev-component and broadcast false positives disappear, while the
// path-insensitivity false negative (the unused check) remains.
func OracleICC(reg *apimodel.Registry, site SiteSpec) []report.Cause {
	truth := Oracle(reg, site)
	var out []report.Cause
	for _, c := range truth.ToolWarnings {
		switch c {
		case report.CauseNoConnectivityCheck:
			if site.ConnCheckInPrevComponent {
				continue // ICC sees the launcher's check
			}
		case report.CauseNoFailureNotification:
			if site.NotifyViaBroadcast {
				continue // ICC follows the broadcast to the notifying receiver
			}
		}
		out = append(out, c)
	}
	return out
}

// AppTruth aggregates the oracle over an app's sites.
type AppTruth struct {
	RealByCause map[report.Cause]int
	ToolByCause map[report.Cause]int
	// FalsePositives / FalseNegatives per cause (tool − real / real − tool).
	FalsePositives map[report.Cause]int
	FalseNegatives map[report.Cause]int
}

// OracleApp derives the per-app ground truth.
func OracleApp(reg *apimodel.Registry, spec AppSpec) AppTruth {
	at := AppTruth{
		RealByCause:    make(map[report.Cause]int),
		ToolByCause:    make(map[report.Cause]int),
		FalsePositives: make(map[report.Cause]int),
		FalseNegatives: make(map[report.Cause]int),
	}
	for _, site := range spec.Sites {
		truth := Oracle(reg, site)
		realSet := make(map[report.Cause]bool)
		toolSet := make(map[report.Cause]bool)
		for _, c := range truth.RealDefects {
			at.RealByCause[c]++
			realSet[c] = true
		}
		for _, c := range truth.ToolWarnings {
			at.ToolByCause[c]++
			toolSet[c] = true
		}
		for c := range toolSet {
			if !realSet[c] {
				at.FalsePositives[c]++
			}
		}
		for c := range realSet {
			if !toolSet[c] {
				at.FalseNegatives[c]++
			}
		}
	}
	return at
}

// TotalTool sums the tool-expected warnings.
func (at AppTruth) TotalTool() int {
	n := 0
	for _, v := range at.ToolByCause {
		n += v
	}
	return n
}

// CorrectByCause returns per-cause counts of warnings that are both
// expected from the tool and real (Table 9's "# Correct warning").
func (at AppTruth) CorrectByCause() map[report.Cause]int {
	out := make(map[report.Cause]int)
	for c, n := range at.ToolByCause {
		correct := n - at.FalsePositives[c]
		if correct > 0 {
			out[c] = correct
		}
	}
	return out
}
