package corpus

import (
	"fmt"

	"repro/internal/apimodel"
	"repro/internal/apk"
)

// GoldenApp is one of the 16 open-source stand-in apps used for the
// accuracy evaluation (paper §5.3, Table 9). Specs are fixed by hand so
// that the aggregate ground truth reproduces the table exactly: 130
// correct warnings, 9 false positives (4 connectivity from two apps with
// inter-component checks + 5 notification from one app that broadcasts
// errors), and 5 known false negatives (one app whose connectivity checks
// are invoked but never used as branch conditions).
type GoldenApp struct {
	Name string
	Spec AppSpec
}

// Site template shorthands. Native libraries alternate between
// HttpURLConnection and Apache to exercise both.
func tplA(lib apimodel.LibKey) SiteSpec { // bare request: conn + timeout warnings
	return SiteSpec{Lib: lib, Ctx: CtxActivity, Notify: true}
}

func tplB(lib apimodel.LibKey) SiteSpec { // checked, no timeout
	return SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheck: true, Notify: true}
}

func tplC(lib apimodel.LibKey) SiteSpec { // checked, no timeout, silent failure
	return SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheck: true}
}

func tplD(lib apimodel.LibKey) SiteSpec { // bare and silent
	return SiteSpec{Lib: lib, Ctx: CtxActivity}
}

func tplE(lib apimodel.LibKey) SiteSpec { // retry-lib activity GET, retry API ignored
	s := SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheck: true, Notify: true}
	if lib == apimodel.LibVolley {
		s.InspectErrorType = true
	}
	return s
}

func tplF(lib apimodel.LibKey) SiteSpec { // retry-lib service request on defaults
	return SiteSpec{Lib: lib, Ctx: CtxService, ConnCheck: true}
}

func tplG(lib apimodel.LibKey) SiteSpec { // disciplined except response check
	return SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheck: true, SetTimeout: true,
		SetRetry: true, RetryCount: 1, Notify: true, UseResponse: true}
}

func tplH(lib apimodel.LibKey) SiteSpec { // FN shape: check invoked but unused
	return SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheck: true, ConnCheckUnused: true,
		SetTimeout: true, Notify: true}
}

func tplI(lib apimodel.LibKey) SiteSpec { // FP shape: check in previous activity
	return SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheckInPrevComponent: true,
		SetTimeout: true, Notify: true}
}

func tplJ(lib apimodel.LibKey) SiteSpec { // FP shape: notification via broadcast
	return SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheck: true, SetTimeout: true,
		NotifyViaBroadcast: true}
}

// GoldenSpecs returns the 16 golden app specs in a fixed order.
func GoldenSpecs() []GoldenApp {
	h := apimodel.LibHttpURL
	ap := apimodel.LibApache
	v := apimodel.LibVolley
	as := apimodel.LibAsyncHTTP
	ba := apimodel.LibBasic
	ok := apimodel.LibOkHttp
	return []GoldenApp{
		{Name: "ankidroid", Spec: AppSpec{Package: "org.golden.ankidroid", Sites: []SiteSpec{
			tplA(h), tplA(ap), tplC(h), tplC(ap),
		}}},
		{Name: "gpslogger", Spec: AppSpec{Package: "org.golden.gpslogger", Sites: []SiteSpec{
			tplA(h), tplA(ap), tplB(h), tplE(ba),
		}}},
		{Name: "fdroid", Spec: AppSpec{Package: "org.golden.fdroid", Sites: []SiteSpec{
			tplA(h), tplA(ap), tplC(h), tplC(ap), tplE(as),
		}}},
		{Name: "kontalk", Spec: AppSpec{Package: "org.golden.kontalk", Sites: []SiteSpec{
			tplA(h), tplA(ap), tplD(h), tplF(as),
		}}},
		{Name: "popcorntime", Spec: AppSpec{Package: "org.golden.popcorntime", Sites: []SiteSpec{
			tplA(h), tplA(ap), tplE(v), tplG(ba),
		}}},
		{Name: "galaxyzoo", Spec: AppSpec{Package: "org.golden.galaxyzoo", Sites: []SiteSpec{
			tplA(h), tplA(ap), tplB(h), tplC(ap), tplE(v),
		}}},
		{Name: "chatsecure", Spec: AppSpec{Package: "org.golden.chatsecure", Sites: []SiteSpec{
			tplA(h), tplD(ap), tplD(h), tplF(v),
		}}},
		{Name: "yaxim", Spec: AppSpec{Package: "org.golden.yaxim", Sites: []SiteSpec{
			tplA(h), tplA(ap), tplC(h), tplE(as),
		}}},
		{Name: "hackernews", Spec: AppSpec{Package: "org.golden.hackernews", Sites: []SiteSpec{
			tplA(h), tplC(ap), tplC(h), tplE(v),
		}}},
		{Name: "bombusmod", Spec: AppSpec{Package: "org.golden.bombusmod", Sites: []SiteSpec{
			tplA(h), tplD(ap), tplD(h), tplF(as),
		}}},
		{Name: "owncloud", Spec: AppSpec{Package: "org.golden.owncloud", Sites: []SiteSpec{
			tplA(h), tplB(ap), tplG(ba), tplE(ok),
		}}},
		{Name: "gtalksms", Spec: AppSpec{Package: "org.golden.gtalksms", Sites: []SiteSpec{
			tplD(h), tplD(ap), tplB(h), tplF(v),
		}}},
		{Name: "jamendo", Spec: AppSpec{Package: "org.golden.jamendo", Sites: []SiteSpec{
			tplA(h), tplC(ap), tplC(h), tplE(v), tplG(ok),
		}}},
		{Name: "sipdroid", Spec: AppSpec{Package: "org.golden.sipdroid", Sites: []SiteSpec{
			tplA(h), tplH(ap), tplH(h), tplH(ap), tplH(h), tplH(ap),
		}}},
		{Name: "connectbot", Spec: AppSpec{Package: "org.golden.connectbot", Sites: []SiteSpec{
			tplA(h), tplB(ap), tplI(h), tplI(ap),
		}}},
		{Name: "wordpress", Spec: AppSpec{Package: "org.golden.wordpress", Sites: []SiteSpec{
			tplD(h), tplD(ap), tplD(h), tplI(ap), tplI(h),
			tplJ(ap), tplJ(h), tplJ(ap), tplJ(h), tplJ(ap),
			tplG(ba), tplG(ok),
		}}},
	}
}

// BuildGoldens builds the 16 golden apps.
func BuildGoldens() ([]*apk.App, error) {
	specs := GoldenSpecs()
	out := make([]*apk.App, len(specs))
	for i, g := range specs {
		app, err := Build(g.Spec)
		if err != nil {
			return nil, fmt.Errorf("corpus: golden %s: %w", g.Name, err)
		}
		out[i] = app
	}
	return out, nil
}

// UserStudyApp is one of the seven NPDs of the paper's user study
// (Table 10), each as a minimal single-defect app plus its dominant cause.
type UserStudyApp struct {
	Name  string
	NPD   string
	Spec  AppSpec
	Fixes string // the correct fix, as Table 10 describes it
}

// UserStudySpecs returns the paper's Table 10 apps. Each app carries
// exactly the defect named (other knobs disciplined so the single warning
// stands out).
func UserStudySpecs() []UserStudyApp {
	disciplined := func(lib apimodel.LibKey) SiteSpec {
		return SiteSpec{Lib: lib, Ctx: CtxActivity, ConnCheck: true, SetTimeout: true,
			SetRetry: true, RetryCount: 1, Notify: true, InspectErrorType: true,
			UseResponse: false, CheckResponse: false}
	}
	mk := func(name, npd, fixes string, mod func(*SiteSpec), lib apimodel.LibKey) UserStudyApp {
		s := disciplined(lib)
		mod(&s)
		return UserStudyApp{
			Name: name, NPD: npd, Fixes: fixes,
			Spec: AppSpec{Package: "study." + name, Sites: []SiteSpec{s}},
		}
	}
	return []UserStudyApp{
		mk("ankidroid", "no connectivity check",
			"Add connectivity check before the request; show error message if not connected",
			func(s *SiteSpec) { s.ConnCheck = false }, apimodel.LibBasic),
		mk("gpslogger1", "no timeout",
			"Add timeout API to set timeout value",
			func(s *SiteSpec) { s.SetTimeout = false }, apimodel.LibBasic),
		mk("gpslogger2", "no retry times",
			"Add retry API to set retry times",
			func(s *SiteSpec) { s.SetRetry = false; s.Ctx = CtxActivity }, apimodel.LibBasic),
		mk("gpslogger3", "no retried exception",
			"Add another retry API to set the exception class that should be retried",
			func(s *SiteSpec) { s.SetRetry = false }, apimodel.LibAsyncHTTP),
		mk("devfest1", "no error message",
			"Add error message in callback according to the error status",
			func(s *SiteSpec) { s.Notify = false }, apimodel.LibVolley),
		mk("devfest2", "invalid response",
			"Add null check and status check on the response before reading its body",
			func(s *SiteSpec) { s.UseResponse = true; s.CheckResponse = false }, apimodel.LibBasic),
		mk("maoshishu", "over retry",
			"Add retry API and set retry count to 0",
			func(s *SiteSpec) { s.Ctx = CtxService; s.SetRetry = false }, apimodel.LibAsyncHTTP),
	}
}
