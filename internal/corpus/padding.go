package corpus

import (
	"fmt"
	"strings"

	"repro/internal/apk"
	"repro/internal/jimple"
)

// AddPadding appends n inert padding classes to the app's program, for
// class-count-scaling experiments (BENCH_targeted.json): padding inflates
// the work the full engine must decode and analyze without changing any
// report.
//
// Each padding class is provably outside the targeted engine's
// demand-driven closure (DESIGN.md §9): it extends java.lang.Object,
// implements nothing, is registered in no manifest component, contains no
// target-API or config-API call, overrides no lifecycle or dispatch
// callback, and its uniquely-named methods call only each other — so no
// closure rule (seeding, backward caller walk, async dispatch, ICC,
// forward callee walk) can ever reach one. The full engine still decodes
// and scans every padding body; the targeted engine skips them all, which
// is exactly the asymmetry the scaling benchmark measures.
func AddPadding(app *apk.App, n int) {
	if n <= 0 {
		return
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		cls := padClassName(app.Manifest.Package, i)
		// Each class also calls into its predecessor, so the padding forms
		// one connected call web: if any padding class were ever demanded
		// by mistake, the whole web would follow and the differential
		// tests would see the decode counters explode.
		prev := cls
		if i > 0 {
			prev = padClassName(app.Manifest.Package, i-1)
		}
		fmt.Fprintf(&b, "class %s extends java.lang.Object {\n", cls)
		fmt.Fprintf(&b, `  method static churnA(int)int {
    local x int
    local y int
    x = param 0 int
    y = x * 31
    y = y + 7
    x = staticinvoke %s.churnB(int)int y
    return x
  }
`, cls)
		fmt.Fprintf(&b, `  method static churnB(int)int {
    local x int
    x = param 0 int
    if x <= 0 goto L0
    x = x - 1
    x = staticinvoke %s.churnA(int)int x
    L0:
    return x
  }
`, prev)
		fmt.Fprintf(&b, `  method static churnC()java.lang.String {
    local s java.lang.String
    s = "padding payload %04d"
    return s
  }
`, i)
		b.WriteString("}\n")
	}
	app.Program.Merge(jimple.MustParse(b.String()))
}

func padClassName(pkg string, i int) string {
	return fmt.Sprintf("%s.pad.Pad%04d", pkg, i)
}
