package corpus

import (
	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/jimple"
)

func voidSig(class, name string, params ...string) jimple.Sig {
	return jimple.Sig{Class: class, Name: name, Params: params, Ret: jimple.TypeVoid}
}

// siteURL computes the endpoint URL a site requests, per its hygiene
// knobs (Checker 7). The default is a well-behaved https hostname URL.
func siteURL(site SiteSpec) string {
	if site.LoopbackDebugURL {
		// The endpoint-hygiene FP shape: a leftover debug endpoint that the
		// tool flags (cleartext + IP literal) but that is harmless.
		return "http://127.0.0.1/api"
	}
	scheme := "https"
	if site.CleartextURL {
		scheme = "http"
	}
	host := "api.example.com"
	if site.HardcodedIP {
		host = "203.0.113.7"
	}
	return scheme + "://" + host + "/data"
}

// urlArg yields the URL argument for the request emitters: the string
// constant itself or — with BuildURL — a local assembled by `base + path`
// concatenation, which the endpoint checker's string constant propagation
// must fold back together.
func urlArg(b *jimple.BodyBuilder, site SiteSpec) jimple.Value {
	u := siteURL(site)
	if !site.BuildURL {
		return jimple.StrConst{V: u}
	}
	cut := len(u)
	for i := len(u) - 1; i > 0; i-- {
		if u[i] == '/' {
			cut = i
			break
		}
	}
	base := b.Local("urlBase", jimple.TypeString)
	full := b.Local("urlFull", jimple.TypeString)
	b.Assign(base, jimple.StrConst{V: u[:cut]})
	b.Assign(full, jimple.BinExpr{Op: jimple.OpAdd, L: base, R: jimple.StrConst{V: u[cut:]}})
	return full
}

// emitBasicRequest emits a turbomanage BasicHttpClient request, optionally
// wrapped in a customized retry loop, with optional response use/check.
func (g *appGen) emitBasicRequest(b *jimple.BodyBuilder, site SiteSpec) error {
	c := b.Local("client", apimodel.ClassBasicClient)
	r := b.Local("resp", apimodel.ClassBasicResponse)
	b.New(c, apimodel.ClassBasicClient)
	if site.SetTimeout {
		b.Invoke(jimple.InvokeVirtual, "client",
			voidSig(apimodel.ClassBasicClient, "setReadTimeout", "int"),
			jimple.IntConst{V: 5000})
	}
	if site.SetRetry {
		b.Invoke(jimple.InvokeVirtual, "client",
			voidSig(apimodel.ClassBasicClient, "setMaxRetries", "int"),
			jimple.IntConst{V: int64(site.RetryCount)})
	}
	doRequest := func() {
		if site.Post {
			body := b.Local("postBody", "byte[]")
			b.InvokeAssign(r, jimple.InvokeVirtual, "client",
				jimple.Sig{Class: apimodel.ClassBasicClient, Name: "post",
					Params: []string{jimple.TypeString, "byte[]"}, Ret: apimodel.ClassBasicResponse},
				urlArg(b, site), body)
		} else {
			b.InvokeAssign(r, jimple.InvokeVirtual, "client",
				jimple.Sig{Class: apimodel.ClassBasicClient, Name: "get",
					Params: []string{jimple.TypeString}, Ret: apimodel.ClassBasicResponse},
				urlArg(b, site))
		}
	}
	if site.RetryLoop {
		g.emitRetryLoop(b, site, doRequest)
	} else {
		doRequest()
	}
	emitResponseUse(b, site, r,
		jimple.Sig{Class: apimodel.ClassBasicResponse, Name: "getBodyAsString", Ret: jimple.TypeString})
	return nil
}

// emitRetryLoop wraps doRequest in the §4.5 retry shape: loop until a
// "done" flag set after a successful request, reset in the IOException
// catch block; optionally sleeping between attempts.
func (g *appGen) emitRetryLoop(b *jimple.BodyBuilder, site SiteSpec, doRequest func()) {
	done := b.Local("done", jimple.TypeInt)
	e := b.Local("ioe", android.ClassIOException)
	head := b.NewLabel()
	tryBegin := b.NewLabel()
	tryEnd := b.NewLabel()
	handler := b.NewLabel()
	out := b.NewLabel()
	b.Assign(done, jimple.IntConst{V: 0})
	b.Bind(head)
	b.If(jimple.BinExpr{Op: jimple.OpNE, L: done, R: jimple.IntConst{V: 0}}, out)
	b.Bind(tryBegin)
	doRequest()
	if site.LoopBackoffOffPath {
		// Backoff on the success path only: failed attempts jump from the
		// catch block straight back to the head — the retry-storm shape.
		b.Invoke(jimple.InvokeStatic, "",
			jimple.Sig{Class: android.ClassThread, Name: "sleep",
				Params: []string{"long"}, Ret: jimple.TypeVoid},
			jimple.IntConst{V: 2000})
	}
	b.Assign(done, jimple.IntConst{V: 1})
	b.Bind(tryEnd)
	b.Goto(head)
	b.Bind(handler)
	b.Assign(e, jimple.CaughtExRef{})
	b.Assign(done, jimple.IntConst{V: 0})
	if site.LoopBackoff {
		b.Invoke(jimple.InvokeStatic, "",
			jimple.Sig{Class: android.ClassThread, Name: "sleep",
				Params: []string{"long"}, Ret: jimple.TypeVoid},
			jimple.IntConst{V: 2000})
	}
	b.Goto(head)
	b.Bind(out)
	b.TrapRegion(tryBegin, tryEnd, handler, android.ClassIOException)
	b.Nop()
}

// emitResponseUse reads the response body, optionally guarded by a null
// check.
func emitResponseUse(b *jimple.BodyBuilder, site SiteSpec, r jimple.Local, readSig jimple.Sig) {
	if !site.UseResponse {
		return
	}
	body := b.Local("respBody", readSig.Ret)
	if site.CheckResponse {
		skip := b.NewLabel()
		b.If(jimple.BinExpr{Op: jimple.OpEQ, L: r, R: jimple.NullConst{}}, skip)
		b.InvokeAssign(body, jimple.InvokeVirtual, r.Name, readSig)
		b.Bind(skip)
		b.Nop()
	} else {
		b.InvokeAssign(body, jimple.InvokeVirtual, r.Name, readSig)
	}
}

// emitHttpURLRequest emits the native HttpURLConnection flow.
func (g *appGen) emitHttpURLRequest(b *jimple.BodyBuilder, site SiteSpec) error {
	u := b.Local("url", apimodel.ClassURL)
	conn := b.Local("conn", apimodel.ClassHttpURLConn)
	b.Assign(u, jimple.NewExpr{Type: apimodel.ClassURL})
	b.Invoke(jimple.InvokeSpecial, "url",
		voidSig(apimodel.ClassURL, "<init>", jimple.TypeString),
		urlArg(b, site))
	b.InvokeAssign(conn, jimple.InvokeVirtual, "url",
		jimple.Sig{Class: apimodel.ClassURL, Name: "openConnection", Ret: apimodel.ClassHttpURLConn})
	if site.SetTimeout {
		b.Invoke(jimple.InvokeVirtual, "conn",
			voidSig(apimodel.ClassHttpURLConn, "setConnectTimeout", "int"),
			jimple.IntConst{V: 4000})
	}
	if site.Post {
		b.Invoke(jimple.InvokeVirtual, "conn",
			voidSig(apimodel.ClassHttpURLConn, "setRequestMethod", jimple.TypeString),
			jimple.StrConst{V: "POST"})
	}
	doRequest := func() {
		b.Invoke(jimple.InvokeVirtual, "conn",
			voidSig(apimodel.ClassHttpURLConn, "connect"))
	}
	if site.RetryLoop {
		g.emitRetryLoop(b, site, doRequest)
	} else {
		doRequest()
	}
	return nil
}

// emitApacheRequest emits the Apache DefaultHttpClient flow.
func (g *appGen) emitApacheRequest(b *jimple.BodyBuilder, site SiteSpec) error {
	c := b.Local("client", apimodel.ClassApacheClient)
	r := b.Local("resp", apimodel.ClassApacheResponse)
	b.New(c, apimodel.ClassApacheClient)
	if site.SetTimeout {
		b.Invoke(jimple.InvokeVirtual, "client",
			voidSig(apimodel.ClassApacheClient, "setConnectionTimeout", "int"),
			jimple.IntConst{V: 8000})
	}
	reqCls := apimodel.ClassApacheGet
	reqVar := "httpGet"
	if site.Post {
		reqCls, reqVar = apimodel.ClassApachePost, "httpPost"
	}
	req := b.Local(reqVar, reqCls)
	b.Assign(req, jimple.NewExpr{Type: reqCls})
	b.Invoke(jimple.InvokeSpecial, reqVar,
		voidSig(reqCls, "<init>", jimple.TypeString),
		urlArg(b, site))
	doRequest := func() {
		b.InvokeAssign(r, jimple.InvokeVirtual, "client",
			jimple.Sig{Class: apimodel.ClassApacheClient, Name: "execute",
				Params: []string{apimodel.ClassApacheRequest}, Ret: apimodel.ClassApacheResponse},
			req)
	}
	if site.RetryLoop {
		g.emitRetryLoop(b, site, doRequest)
	} else {
		doRequest()
	}
	return nil
}

// emitVolleyRequest emits the Volley flow: build a StringRequest with
// listener objects, configure it, and add it to a queue. The error
// listener is an inner class; its body carries the notification and
// error-type behaviour.
func (g *appGen) emitVolleyRequest(b *jimple.BodyBuilder, owner string, site SiteSpec) error {
	errCls := owner + "$Err"
	g.emitVolleyErrListener(errCls, site)

	q := b.Local("queue", apimodel.ClassVolleyQueue)
	req := b.Local("request", apimodel.ClassVolleyStringReq)
	lst := b.Local("listener", apimodel.ClassVolleyListener)
	errL := b.Local("errListener", errCls)
	out := b.Local("added", apimodel.ClassVolleyRequest)
	b.New(q, apimodel.ClassVolleyQueue)
	b.New(errL, errCls)
	method := apimodel.VolleyMethodGet
	if site.Post {
		method = apimodel.VolleyMethodPost
	}
	b.Assign(req, jimple.NewExpr{Type: apimodel.ClassVolleyStringReq})
	b.Invoke(jimple.InvokeSpecial, "request",
		voidSig(apimodel.ClassVolleyStringReq, "<init>",
			"int", jimple.TypeString, apimodel.ClassVolleyListener, apimodel.ClassVolleyErrListen),
		jimple.IntConst{V: int64(method)}, urlArg(b, site), lst, errL)
	if site.SetTimeout {
		b.Invoke(jimple.InvokeVirtual, "request",
			voidSig(apimodel.ClassVolleyRequest, "setTimeout", "int"),
			jimple.IntConst{V: 10000})
	}
	if site.SetRetry {
		b.Invoke(jimple.InvokeVirtual, "request",
			voidSig(apimodel.ClassVolleyRequest, "setMaxRetries", "int"),
			jimple.IntConst{V: int64(site.RetryCount)})
	}
	b.InvokeAssign(out, jimple.InvokeVirtual, "queue",
		jimple.Sig{Class: apimodel.ClassVolleyQueue, Name: "add",
			Params: []string{apimodel.ClassVolleyRequest}, Ret: apimodel.ClassVolleyRequest},
		req)
	return nil
}

func (g *appGen) emitVolleyErrListener(errCls string, site SiteSpec) {
	if g.prog.Class(errCls) != nil {
		return
	}
	cls := &jimple.Class{
		Name: errCls, Super: jimple.TypeObject,
		Interfaces: []string{apimodel.ClassVolleyErrListen},
	}
	g.prog.AddClass(cls)
	ctor := jimple.NewBody()
	ctor.Return(nil)
	cls.AddMethod(ctor.MustBuild(voidSig(errCls, "<init>"), false))

	b := jimple.NewBody()
	err := b.Local("volleyErr", apimodel.ClassVolleyError)
	b.Assign(err, jimple.ParamRef{Index: 0, Type: apimodel.ClassVolleyError})
	if site.InspectErrorType {
		isNoConn := b.Local("isNoConn", jimple.TypeBoolean)
		b.Assign(isNoConn, jimple.InstanceOfExpr{Type: apimodel.ClassVolleyNoConn, V: err})
	}
	if site.Notify {
		emitToast(b)
	}
	b.Return(nil)
	cls.AddMethod(b.MustBuild(jimple.Sig{Class: errCls, Name: "onErrorResponse",
		Params: []string{apimodel.ClassVolleyError}, Ret: jimple.TypeVoid}, false))
}

// emitOkHttpRequest emits the (flattened) OkHttp flow: synchronous
// execute with optional response use/check.
func (g *appGen) emitOkHttpRequest(b *jimple.BodyBuilder, site SiteSpec) error {
	c := b.Local("client", apimodel.ClassOkClient)
	req := b.Local("okReq", apimodel.ClassOkRequest)
	r := b.Local("okResp", apimodel.ClassOkResponse)
	b.New(c, apimodel.ClassOkClient)
	if site.SetTimeout {
		b.Invoke(jimple.InvokeVirtual, "client",
			voidSig(apimodel.ClassOkClient, "setReadTimeout", "int"),
			jimple.IntConst{V: 15000})
	}
	if site.SetRetry {
		b.Invoke(jimple.InvokeVirtual, "client",
			voidSig(apimodel.ClassOkClient, "setMaxRetries", "int"),
			jimple.IntConst{V: int64(site.RetryCount)})
	}
	b.Assign(req, jimple.NewExpr{Type: apimodel.ClassOkRequest})
	b.Invoke(jimple.InvokeSpecial, "okReq",
		voidSig(apimodel.ClassOkRequest, "<init>", jimple.TypeString),
		urlArg(b, site))
	doRequest := func() {
		b.InvokeAssign(r, jimple.InvokeVirtual, "client",
			jimple.Sig{Class: apimodel.ClassOkClient, Name: "execute",
				Params: []string{apimodel.ClassOkRequest}, Ret: apimodel.ClassOkResponse},
			req)
	}
	if site.RetryLoop {
		g.emitRetryLoop(b, site, doRequest)
	} else {
		doRequest()
	}
	emitResponseUse(b, site, r,
		jimple.Sig{Class: apimodel.ClassOkResponse, Name: "getBody", Ret: jimple.TypeString})
	return nil
}

// emitAsyncHTTPRequest emits the loopj AsyncHttpClient flow with an inner
// response-handler class carrying the failure callback.
func (g *appGen) emitAsyncHTTPRequest(b *jimple.BodyBuilder, owner string, site SiteSpec) error {
	handlerCls := owner + "$Handler"
	g.emitAsyncHTTPHandler(handlerCls, site)

	c := b.Local("client", apimodel.ClassAsyncClient)
	h := b.Local("handler", handlerCls)
	b.New(c, apimodel.ClassAsyncClient)
	if site.SetTimeout {
		b.Invoke(jimple.InvokeVirtual, "client",
			voidSig(apimodel.ClassAsyncClient, "setTimeout", "int"),
			jimple.IntConst{V: 20000})
	}
	if site.SetRetry {
		b.Invoke(jimple.InvokeVirtual, "client",
			voidSig(apimodel.ClassAsyncClient, "setMaxRetriesAndTimeout", "int", "int"),
			jimple.IntConst{V: int64(site.RetryCount)}, jimple.IntConst{V: 20000})
	}
	b.New(h, handlerCls)
	name := "get"
	if site.Post {
		name = "post"
	}
	b.Invoke(jimple.InvokeVirtual, "client",
		voidSig(apimodel.ClassAsyncClient, name, jimple.TypeString, apimodel.ClassAsyncHandler),
		urlArg(b, site), h)
	return nil
}

func (g *appGen) emitAsyncHTTPHandler(handlerCls string, site SiteSpec) {
	if g.prog.Class(handlerCls) != nil {
		return
	}
	cls := &jimple.Class{Name: handlerCls, Super: apimodel.ClassAsyncHandler}
	g.prog.AddClass(cls)
	ctor := jimple.NewBody()
	ctor.Return(nil)
	cls.AddMethod(ctor.MustBuild(voidSig(handlerCls, "<init>"), false))

	fail := jimple.NewBody()
	thr := fail.Local("thr", android.ClassThrowable)
	fail.Assign(thr, jimple.ParamRef{Index: 0, Type: android.ClassThrowable})
	if site.Notify {
		emitToast(fail)
	}
	fail.Return(nil)
	cls.AddMethod(fail.MustBuild(jimple.Sig{Class: handlerCls, Name: "onFailure",
		Params: []string{android.ClassThrowable, jimple.TypeString}, Ret: jimple.TypeVoid}, false))

	succ := jimple.NewBody()
	succ.Return(nil)
	cls.AddMethod(succ.MustBuild(jimple.Sig{Class: handlerCls, Name: "onSuccess",
		Params: []string{jimple.TypeString}, Ret: jimple.TypeVoid}, false))
}

// libSupportsPost reports whether the generator can emit a POST for lib.
func libSupportsPost(lib apimodel.LibKey) bool {
	switch lib {
	case apimodel.LibBasic, apimodel.LibAsyncHTTP, apimodel.LibVolley, apimodel.LibApache, apimodel.LibHttpURL:
		return true
	}
	return false
}
