package corpus

import (
	"reflect"
	"testing"

	"repro/internal/apk"
	"repro/internal/core"
)

// TestPaddingIsInert: padding classes change no report in either engine
// mode, and the targeted engine never decodes one — the invariant the
// class-count-scaling benchmark (BENCH_targeted.json) rests on.
func TestPaddingIsInert(t *testing.T) {
	spec := GoldenSpecs()[0].Spec
	plain, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	padded, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const pad = 25
	AddPadding(padded, pad)
	if got := padded.Program.NumClasses() - plain.Program.NumClasses(); got != pad {
		t.Fatalf("padding added %d classes, want %d", got, pad)
	}

	base := core.New().ScanApp(plain)
	full := core.New().ScanApp(padded)
	if !reflect.DeepEqual(full.Reports, base.Reports) {
		t.Error("padding changed full-mode reports")
	}

	data, err := apk.Encode(padded)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	targeted, err := core.NewWithOptions(core.Options{Mode: core.ModeTargeted}).ScanBytes(data)
	if err != nil {
		t.Fatalf("targeted ScanBytes: %v", err)
	}
	if !reflect.DeepEqual(targeted.Reports, base.Reports) {
		t.Error("padding changed targeted-mode reports")
	}
	if !reflect.DeepEqual(targeted.Stats, full.Stats) {
		t.Errorf("targeted stats differ from full on the padded app:\n%+v\n%+v", targeted.Stats, full.Stats)
	}
	ts := targeted.Diagnostics.Targeted
	if ts.ClassesSkipped < pad {
		t.Errorf("targeted decoded padding: skipped %d classes, want >= %d", ts.ClassesSkipped, pad)
	}
}
