package corpus

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/core"
	"repro/internal/report"
)

// scanCauses runs NChecker over a built app and tallies warnings per cause.
func scanCauses(t *testing.T, spec AppSpec) map[report.Cause]int {
	t.Helper()
	app, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res := core.New().ScanApp(app)
	out := make(map[report.Cause]int)
	for i := range res.Reports {
		out[res.Reports[i].Cause]++
	}
	return out
}

func sameCauseCounts(a map[report.Cause]int, b map[report.Cause]int) bool {
	if len(a) != len(b) {
		return false
	}
	for c, n := range a {
		if b[c] != n {
			return false
		}
	}
	return true
}

// curatedSpecs covers every library and every flag at least once.
func curatedSpecs() []SiteSpec {
	return []SiteSpec{
		// Bare requests across all six libraries.
		{Lib: apimodel.LibHttpURL, Ctx: CtxActivity},
		{Lib: apimodel.LibApache, Ctx: CtxActivity},
		{Lib: apimodel.LibVolley, Ctx: CtxActivity},
		{Lib: apimodel.LibOkHttp, Ctx: CtxActivity},
		{Lib: apimodel.LibAsyncHTTP, Ctx: CtxActivity},
		{Lib: apimodel.LibBasic, Ctx: CtxActivity},
		// Fully disciplined request (no warnings expected beyond retry
		// default semantics).
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, ConnCheck: true, SetTimeout: true,
			SetRetry: true, RetryCount: 2, Notify: true, UseResponse: true, CheckResponse: true},
		// Volley discipline incl. error types.
		{Lib: apimodel.LibVolley, Ctx: CtxActivity, ConnCheck: true, SetTimeout: true,
			SetRetry: true, RetryCount: 1, Notify: true, InspectErrorType: true},
		// Services with default retries (over-retry default-caused).
		{Lib: apimodel.LibAsyncHTTP, Ctx: CtxService},
		{Lib: apimodel.LibVolley, Ctx: CtxService, ConnCheck: true},
		// POSTs.
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, Post: true, SetRetry: true, RetryCount: 3},
		{Lib: apimodel.LibVolley, Ctx: CtxActivity, Post: true},
		{Lib: apimodel.LibAsyncHTTP, Ctx: CtxService, Post: true},
		// No-retry user request.
		{Lib: apimodel.LibOkHttp, Ctx: CtxActivity, SetRetry: true, RetryCount: 0, Notify: true},
		// Response handling.
		{Lib: apimodel.LibOkHttp, Ctx: CtxActivity, UseResponse: true},
		{Lib: apimodel.LibOkHttp, Ctx: CtxActivity, UseResponse: true, CheckResponse: true},
		{Lib: apimodel.LibBasic, Ctx: CtxService, UseResponse: true},
		// AsyncTask wrapping.
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, Wrap: WrapAsyncTask, Notify: true},
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, Wrap: WrapAsyncTask},
		{Lib: apimodel.LibVolley, Ctx: CtxActivity, Wrap: WrapAsyncTask, Notify: true},
		{Lib: apimodel.LibAsyncHTTP, Ctx: CtxActivity, Wrap: WrapAsyncTask, Notify: true},
		// Customized retry loops.
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, RetryLoop: true, Notify: true},
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, RetryLoop: true, LoopBackoff: true, Notify: true},
		// Adversarial shapes (FN/FP).
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, ConnCheck: true, ConnCheckUnused: true, Notify: true},
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, ConnCheckInPrevComponent: true, Notify: true},
		{Lib: apimodel.LibBasic, Ctx: CtxActivity, NotifyViaBroadcast: true},
	}
}

// TestOracleMatchesChecker is the generator↔oracle↔checker consistency
// check: for every curated spec, NChecker's warnings on the generated app
// must equal the oracle's expected tool warnings exactly.
func TestOracleMatchesChecker(t *testing.T) {
	reg := apimodel.NewRegistry()
	for i, site := range curatedSpecs() {
		site := site
		t.Run(fmt.Sprintf("spec%02d_%s", i, site.Lib), func(t *testing.T) {
			spec := AppSpec{Package: fmt.Sprintf("curated.a%d", i), Sites: []SiteSpec{site}}
			got := scanCauses(t, spec)
			truth := Oracle(reg, site)
			want := make(map[report.Cause]int)
			for _, c := range truth.ToolWarnings {
				want[c]++
			}
			if !sameCauseCounts(got, want) {
				t.Errorf("spec %+v:\n  checker: %v\n  oracle:  %v", site, got, want)
			}
		})
	}
}

// TestOracleMatchesCheckerRandom fuzzes the spec space with a seeded RNG.
func TestOracleMatchesCheckerRandom(t *testing.T) {
	reg := apimodel.NewRegistry()
	rng := rand.New(rand.NewSource(42))
	libs := []apimodel.LibKey{
		apimodel.LibHttpURL, apimodel.LibApache, apimodel.LibVolley,
		apimodel.LibOkHttp, apimodel.LibAsyncHTTP, apimodel.LibBasic,
	}
	for i := 0; i < 120; i++ {
		lib := libs[rng.Intn(len(libs))]
		site := SiteSpec{
			Lib:        lib,
			Ctx:        CtxKind(rng.Intn(2)),
			Post:       rng.Intn(4) == 0 && libSupportsPost(lib),
			ConnCheck:  rng.Intn(2) == 0,
			SetTimeout: rng.Intn(2) == 0,
			Notify:     rng.Intn(2) == 0,
		}
		if rng.Intn(2) == 0 {
			site.SetRetry = true
			site.RetryCount = rng.Intn(4)
		}
		if lib == apimodel.LibBasic || lib == apimodel.LibOkHttp {
			site.UseResponse = rng.Intn(2) == 0
			site.CheckResponse = site.UseResponse && rng.Intn(2) == 0
		}
		if lib == apimodel.LibVolley {
			site.InspectErrorType = rng.Intn(2) == 0
		}
		if rng.Intn(3) == 0 {
			site.Wrap = WrapAsyncTask
		}
		if lib == apimodel.LibBasic && site.Wrap == WrapDirect && rng.Intn(5) == 0 {
			site.RetryLoop = true
			site.LoopBackoff = rng.Intn(2) == 0
		}
		spec := AppSpec{Package: fmt.Sprintf("fuzz.a%d", i), Sites: []SiteSpec{site}}
		got := scanCauses(t, spec)
		truth := Oracle(reg, site)
		want := make(map[report.Cause]int)
		for _, c := range truth.ToolWarnings {
			want[c]++
		}
		if !sameCauseCounts(got, want) {
			t.Errorf("fuzz spec %d %+v:\n  checker: %v\n  oracle:  %v", i, site, got, want)
		}
	}
}

func TestBuildRejectsEmptyPackage(t *testing.T) {
	if _, err := Build(AppSpec{}); err == nil {
		t.Error("empty package accepted")
	}
}

func TestMultiSiteApp(t *testing.T) {
	spec := AppSpec{
		Package: "multi.app",
		Sites: []SiteSpec{
			{Lib: apimodel.LibBasic, Ctx: CtxActivity},
			{Lib: apimodel.LibVolley, Ctx: CtxService},
			{Lib: apimodel.LibHttpURL, Ctx: CtxActivity, ConnCheck: true, SetTimeout: true, Notify: true},
		},
	}
	app, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(app.Manifest.Activities) != 2 || len(app.Manifest.Services) != 1 {
		t.Errorf("manifest components wrong: %+v", app.Manifest)
	}
	res := core.New().ScanApp(app)
	if res.Stats.Requests != 3 {
		t.Errorf("requests: got %d want 3", res.Stats.Requests)
	}
	at := OracleApp(apimodel.NewRegistry(), spec)
	if got := len(res.Reports); got != at.TotalTool() {
		t.Errorf("total warnings: checker %d vs oracle %d", got, at.TotalTool())
	}
}

func TestAdversarialShapesProduceFPsAndFNs(t *testing.T) {
	reg := apimodel.NewRegistry()
	// The FN shape: unused check is a real defect the tool misses.
	fn := Oracle(reg, SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		ConnCheck: true, ConnCheckUnused: true, Notify: true, SetTimeout: true, SetRetry: true, RetryCount: 1})
	if !hasCause(fn.RealDefects, report.CauseNoConnectivityCheck) {
		t.Error("unused check should be a real defect")
	}
	if hasCause(fn.ToolWarnings, report.CauseNoConnectivityCheck) {
		t.Error("tool should miss the unused-check defect (FN)")
	}
	// The conn FP shape: check in a previous component.
	fp := Oracle(reg, SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		ConnCheckInPrevComponent: true, Notify: true, SetTimeout: true, SetRetry: true, RetryCount: 1})
	if hasCause(fp.RealDefects, report.CauseNoConnectivityCheck) {
		t.Error("prev-component check means no real defect")
	}
	if !hasCause(fp.ToolWarnings, report.CauseNoConnectivityCheck) {
		t.Error("tool should (wrongly) warn — expected FP")
	}
	// The notification FP shape.
	nfp := Oracle(reg, SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		NotifyViaBroadcast: true, ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1})
	if hasCause(nfp.RealDefects, report.CauseNoFailureNotification) {
		t.Error("broadcast notification means no real defect")
	}
	if !hasCause(nfp.ToolWarnings, report.CauseNoFailureNotification) {
		t.Error("tool should (wrongly) warn on broadcast notification — expected FP")
	}
}

func hasCause(cs []report.Cause, c report.Cause) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func TestGeneratedAppSerializes(t *testing.T) {
	spec := AppSpec{Package: "ser.app", Sites: []SiteSpec{
		{Lib: apimodel.LibVolley, Ctx: CtxActivity, Notify: true},
	}}
	app := MustBuild(spec)
	res1 := core.New().ScanApp(app)
	// Round-trip through the binary container and re-scan: identical
	// results prove the binary pipeline is faithful.
	data, err := encodeApp(app)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.New().ScanBytes(data)
	if err != nil {
		t.Fatalf("ScanBytes: %v", err)
	}
	if len(res1.Reports) != len(res2.Reports) {
		t.Errorf("scan differs after serialization: %d vs %d", len(res1.Reports), len(res2.Reports))
	}
}

func encodeApp(app *apk.App) ([]byte, error) { return apk.Encode(app) }
