package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/apimodel"
	"repro/internal/apk"
)

// Corpus composition targets from the paper (§5.1, Tables 6 and 7): 285
// apps total, of which 16 are the open-source goldens; library usage
// counts; 91 apps on retry-capable libraries; 20 on response-check
// libraries; 264 with user-initiated requests; and per-§2 defect rates.
const (
	CorpusSize       = 285
	NumGoldens       = 16
	NumGenerated     = CorpusSize - NumGoldens
	targetNative     = 270
	targetVolley     = 78
	targetAsyncHTTP  = 25
	targetBasic      = 18
	targetOkHttp     = 11
	targetThirdParty = 91 // |Volley ∪ OkHttp ∪ AsyncHttp ∪ Basic|
	targetRespLibs   = 20 // |OkHttp ∪ Basic|
	targetNotifEval  = 264
	targetCleanApps  = 4 // 281 of 285 apps have NPDs (§5.2)
)

// Calibrated per-app defect rates, derived from the paper's measurements
// net of the goldens' fixed contributions (see generate_test.go for the
// resulting corpus-level shape).
const (
	pConnNever    = 0.45 // → ≈122/285 apps never check connectivity
	pTimeoutNever = 0.48 // → ≈139/285 never set timeouts
	pNotifNever   = 0.61 // → ≈151/264 never notify failures
	pRetryNever   = 0.70 // → ≈64/91 never set retry APIs
	pServiceSite  = 0.30
	pPostSite     = 0.20
	// Retry-capable-library sites use damped context/method rates so the
	// per-app over-retry incidence lands on Table 8's 32%/25%.
	pServiceSiteRetryLib = 0.12
	pPostSiteRetryLib    = 0.10
	pAsyncWrap           = 0.25
	pRetryLoopApp        = 0.10 // 10% of apps have customized retry logic
	pInspectErr          = 0.02 // → ≈93% of apps ignore error types
	pUseResponse         = 0.60
	pCheckResp           = 0.25
	minSites             = 3
	maxSites             = 10
)

// Rates for the four new checker families (offline-state, stale-check,
// endpoint hygiene, retry-storm). These draw from a second RNG stream
// (seed+1) layered over the finished base spec, so adding them did not
// shift the calibrated draws above.
const (
	pLoopbackURL      = 0.01 // leftover debug endpoint (hygiene FP shape)
	pCleartextURL     = 0.08 // http:// production endpoint
	pHardcodedIPURL   = 0.03 // IP-literal host
	pBuildURL         = 0.15 // URL assembled by concatenation
	pSleepAfterCheck  = 0.05 // blocking wait between check and request
	pCheckBeforeAsync = 0.25 // check hoisted out of the AsyncTask
	pStormLoop        = 0.40 // unbacked-off loops that sleep on success only
	pNetReceiverBad   = 0.04 // per-app connectivity receiver, no recovery
	pNetReceiverGood  = 0.03 // per-app connectivity receiver with cache fallback
	pNetCallback      = 0.03 // per-app NetworkCallback, no recovery
)

// CorpusApp is one member of the evaluation corpus.
type CorpusApp struct {
	Name   string
	Spec   AppSpec
	App    *apk.App
	Golden bool
}

// GenerateCorpus builds the full 285-app corpus deterministically from a
// seed: 16 goldens plus 269 generated apps whose library mix fills the
// paper's Table 7 quotas exactly and whose defect rates are calibrated to
// §2/§5.
func GenerateCorpus(seed int64) ([]*CorpusApp, error) {
	out := make([]*CorpusApp, 0, CorpusSize)
	goldenLibSets := make([]map[apimodel.LibKey]bool, 0, NumGoldens)
	for _, g := range GoldenSpecs() {
		app, err := Build(g.Spec)
		if err != nil {
			return nil, err
		}
		out = append(out, &CorpusApp{Name: "golden-" + g.Name, Spec: g.Spec, App: app, Golden: true})
		goldenLibSets = append(goldenLibSets, specLibs(g.Spec))
	}
	libSets, err := planLibSets(goldenLibSets)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	rng2 := rand.New(rand.NewSource(seed + 1))
	for i, libs := range libSets {
		spec := generateAppSpec(rng, i, libs)
		decorateSpec(rng2, i, &spec)
		app, err := Build(spec)
		if err != nil {
			return nil, fmt.Errorf("corpus: generated app %d: %w", i, err)
		}
		out = append(out, &CorpusApp{Name: spec.Package, Spec: spec, App: app})
	}
	return out, nil
}

func specLibs(spec AppSpec) map[apimodel.LibKey]bool {
	set := make(map[apimodel.LibKey]bool)
	for _, s := range spec.Sites {
		set[s.Lib] = true
	}
	return set
}

func isNativeLib(k apimodel.LibKey) bool {
	return k == apimodel.LibHttpURL || k == apimodel.LibApache
}

// planLibSets assigns a library set to each of the 269 generated apps so
// that, combined with the goldens, the corpus hits the Table 7 quotas
// exactly.
func planLibSets(goldens []map[apimodel.LibKey]bool) ([][]apimodel.LibKey, error) {
	var gNative, gV, gA, gB, gO, gTP, gResp int
	for _, set := range goldens {
		native, tp, resp := false, false, false
		for k := range set {
			if isNativeLib(k) {
				native = true
			} else {
				tp = true
			}
			switch k {
			case apimodel.LibVolley:
				gV++
			case apimodel.LibAsyncHTTP:
				gA++
			case apimodel.LibBasic:
				gB++
				resp = true
			case apimodel.LibOkHttp:
				gO++
				resp = true
			}
		}
		if native {
			gNative++
		}
		if tp {
			gTP++
		}
		if resp {
			gResp++
		}
	}
	nV := targetVolley - gV
	nA := targetAsyncHTTP - gA
	nB := targetBasic - gB
	nO := targetOkHttp - gO
	nTP := targetThirdParty - gTP
	nResp := targetRespLibs - gResp
	nNative := targetNative - gNative
	nonNative := NumGenerated - nNative
	if nV < 0 || nA < 0 || nB < 0 || nO < 0 || nTP < 0 || nResp < 0 || nonNative < 0 {
		return nil, fmt.Errorf("corpus: golden apps exceed a Table 7 quota (V=%d A=%d B=%d O=%d TP=%d resp=%d)",
			nV, nA, nB, nO, nTP, nResp)
	}
	overlapBO := nB + nO - nResp
	if overlapBO < 0 || overlapBO > nO {
		return nil, fmt.Errorf("corpus: infeasible Basic/OkHttp overlap %d", overlapBO)
	}
	sets := make([][]apimodel.LibKey, NumGenerated)
	add := func(app int, k apimodel.LibKey) { sets[app] = append(sets[app], k) }
	// Third-party slots are apps [0, nTP). Volley fills the prefix,
	// AsyncHttp the suffix, Basic/OkHttp overlap inside the prefix.
	for i := 0; i < nV; i++ {
		add(i, apimodel.LibVolley)
	}
	for i := nTP - nA; i < nTP; i++ {
		add(i, apimodel.LibAsyncHTTP)
	}
	for i := 0; i < nB; i++ {
		add(i, apimodel.LibBasic)
	}
	for i := nB - overlapBO; i < nB-overlapBO+nO; i++ {
		add(i, apimodel.LibOkHttp)
	}
	for i := 0; i < nTP; i++ {
		if len(sets[i]) == 0 {
			return nil, fmt.Errorf("corpus: third-party slot %d uncovered (nV=%d nA=%d nTP=%d)", i, nV, nA, nTP)
		}
	}
	// Native: every app except the first `nonNative` (which are all
	// third-party slots).
	if nonNative > nTP {
		return nil, fmt.Errorf("corpus: %d non-native apps exceed %d third-party slots", nonNative, nTP)
	}
	for i := nonNative; i < NumGenerated; i++ {
		if i%2 == 0 {
			add(i, apimodel.LibHttpURL)
		} else {
			add(i, apimodel.LibApache)
		}
	}
	return sets, nil
}

// serviceOnlyApp reports whether generated app i is one of the
// service-only apps (no user-initiated requests), sized so the corpus has
// exactly targetNotifEval apps with user requests.
func serviceOnlyApp(i int) bool {
	// Goldens all have user requests; carve the quota out of the native
	// region (apps after the third-party block always include it).
	n := CorpusSize - targetNotifEval
	return i >= 100 && i < 100+n
}

// cleanApp reports whether generated app i is one of the defect-free apps.
func cleanApp(i int) bool {
	return i >= NumGenerated-targetCleanApps
}

func generateAppSpec(rng *rand.Rand, idx int, libs []apimodel.LibKey) AppSpec {
	spec := AppSpec{Package: fmt.Sprintf("gen.app%03d", idx)}
	if cleanApp(idx) {
		// Disciplined throughout: connectivity-checked, timeout set,
		// failure surfaced. Native-only apps carry no retry/response APIs.
		n := minSites + rng.Intn(3)
		for s := 0; s < n; s++ {
			spec.Sites = append(spec.Sites, SiteSpec{
				Lib: libs[s%len(libs)], Ctx: CtxActivity,
				ConnCheck: true, SetTimeout: true, Notify: true,
			})
		}
		return spec
	}

	serviceOnly := serviceOnlyApp(idx)
	connNever := rng.Float64() < pConnNever
	connMiss := 0.2 + 0.8*rng.Float64() // miss-rate among partially-checking apps
	timeoutNever := rng.Float64() < pTimeoutNever
	timeoutMiss := 0.15 + 0.85*rng.Float64()
	notifNever := rng.Float64() < pNotifNever
	notifMiss := 0.1 + 0.9*rng.Float64()
	retryNever := rng.Float64() < pRetryNever
	hasRetryLoop := rng.Float64() < pRetryLoopApp

	reg := apimodel.NewRegistry()
	n := minSites + rng.Intn(maxSites-minSites+1)
	loopPlaced := false
	for s := 0; s < n; s++ {
		var lib apimodel.LibKey
		if s < len(libs) {
			lib = libs[s] // guarantee every assigned library is used
		} else {
			lib = libs[rng.Intn(len(libs))]
		}
		l := reg.Library(lib)
		site := SiteSpec{Lib: lib, Ctx: CtxActivity}
		pSvc, pPost := pServiceSite, pPostSite
		if l.HasRetryAPIs {
			pSvc, pPost = pServiceSiteRetryLib, pPostSiteRetryLib
		}
		if serviceOnly || rng.Float64() < pSvc {
			site.Ctx = CtxService
		}
		if libSupportsPost(lib) && rng.Float64() < pPost {
			site.Post = true
		}
		if !connNever && rng.Float64() >= connMiss {
			site.ConnCheck = true
		}
		if !timeoutNever && rng.Float64() >= timeoutMiss {
			site.SetTimeout = true
		}
		if l.HasRetryAPIs && !retryNever && rng.Float64() < 0.8 {
			site.SetRetry = true
			site.RetryCount = rng.Intn(4)
		}
		if site.Ctx == CtxActivity && !notifNever {
			// §5.2.3: developers notify much more often when the library
			// hands them an explicit error callback (paper: 30% of such
			// requests vs. 12% without one); bias the miss rate the same
			// way.
			miss := notifMiss
			if usesExplicitCallback(site) {
				miss *= 0.5
			} else {
				miss = miss*0.4 + 0.6 // implicit-callback sites miss more
			}
			if rng.Float64() >= miss {
				site.Notify = true
			}
		}
		if lib == apimodel.LibVolley && rng.Float64() < pInspectErr {
			site.InspectErrorType = true
		}
		if l.HasRespCheckAPIs() && rng.Float64() < pUseResponse {
			site.UseResponse = true
			site.CheckResponse = rng.Float64() < pCheckResp
		}
		syncLib := lib != apimodel.LibVolley && lib != apimodel.LibAsyncHTTP
		if syncLib && site.Ctx == CtxActivity && rng.Float64() < pAsyncWrap {
			site.Wrap = WrapAsyncTask
		}
		if hasRetryLoop && !loopPlaced && syncLib && site.Wrap == WrapDirect {
			site.RetryLoop = true
			site.LoopBackoff = rng.Float64() < 0.5
			loopPlaced = true
		}
		spec.Sites = append(spec.Sites, site)
	}
	// "Partial" apps must actually exercise each config somewhere —
	// otherwise small apps drift into the "never" buckets by chance and
	// inflate Table 6 beyond the paper's rates.
	if !connNever {
		forceOnce(spec.Sites, func(s *SiteSpec) bool { return s.ConnCheck },
			func(s *SiteSpec) bool { s.ConnCheck = true; return true })
	}
	if !timeoutNever {
		forceOnce(spec.Sites, func(s *SiteSpec) bool { return s.SetTimeout },
			func(s *SiteSpec) bool { s.SetTimeout = true; return true })
	}
	if !notifNever {
		forceOnce(spec.Sites, func(s *SiteSpec) bool { return s.Ctx == CtxActivity && s.Notify },
			func(s *SiteSpec) bool {
				if s.Ctx != CtxActivity {
					return false
				}
				s.Notify = true
				return true
			})
	}
	if !retryNever {
		forceOnce(spec.Sites, func(s *SiteSpec) bool { return s.SetRetry },
			func(s *SiteSpec) bool {
				if !reg.Library(s.Lib).HasRetryAPIs {
					return false
				}
				s.SetRetry = true
				s.RetryCount = rng.Intn(4)
				return true
			})
	}
	return spec
}

// decorateSpec layers the new-family knobs (endpoint hygiene, staleness,
// retry storms, offline-state handlers) over a finished base spec. It
// consumes only the second RNG stream; the clean apps stay pristine.
func decorateSpec(rng *rand.Rand, idx int, spec *AppSpec) {
	if cleanApp(idx) {
		return
	}
	for s := range spec.Sites {
		site := &spec.Sites[s]
		// Endpoint knobs are mutually exclusive: one URL per site.
		r := rng.Float64()
		switch {
		case r < pLoopbackURL:
			site.LoopbackDebugURL = true
		case r < pLoopbackURL+pCleartextURL:
			site.CleartextURL = true
		case r < pLoopbackURL+pCleartextURL+pHardcodedIPURL:
			site.HardcodedIP = true
		}
		if rng.Float64() < pBuildURL {
			site.BuildURL = true
		}
		if site.ConnCheck && !site.ConnCheckUnused && rng.Float64() < pSleepAfterCheck {
			site.SleepAfterCheck = true
		}
		if site.Wrap == WrapAsyncTask && site.ConnCheck && !site.ConnCheckUnused &&
			rng.Float64() < pCheckBeforeAsync {
			site.ConnCheckBeforeAsync = true
		}
		if site.RetryLoop && !site.LoopBackoff && rng.Float64() < pStormLoop {
			site.LoopBackoffOffPath = true
		}
	}
	// Offline-state handlers are app-level behaviour; hang them off the
	// first site's component.
	r := rng.Float64()
	switch {
	case r < pNetReceiverBad:
		spec.Sites[0].NetStateReceiver = true
	case r < pNetReceiverBad+pNetReceiverGood:
		spec.Sites[0].NetStateReceiverRecovers = true
	}
	if rng.Float64() < pNetCallback {
		spec.Sites[0].NetCallback = true
	}
}

// forceOnce ensures some site satisfies has; if none does, it applies set
// to the first site that accepts it.
func forceOnce(sites []SiteSpec, has func(*SiteSpec) bool, set func(*SiteSpec) bool) {
	for i := range sites {
		if has(&sites[i]) {
			return
		}
	}
	for i := range sites {
		if set(&sites[i]) {
			return
		}
	}
}
