package corpus

import (
	"testing"

	"repro/internal/apimodel"
	"repro/internal/core"
)

// Seed2016 is the canonical evaluation seed (the paper's publication
// year); experiments and benchmarks use it.
const Seed2016 = 2016

func generateOnce(t *testing.T) []*CorpusApp {
	t.Helper()
	apps, err := GenerateCorpus(Seed2016)
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	return apps
}

func TestCorpusSizeAndComposition(t *testing.T) {
	apps := generateOnce(t)
	if len(apps) != CorpusSize {
		t.Fatalf("corpus size %d, want %d", len(apps), CorpusSize)
	}
	goldens := 0
	counts := map[apimodel.LibKey]int{}
	native, thirdParty, respLibs := 0, 0, 0
	for _, a := range apps {
		if a.Golden {
			goldens++
		}
		libs := specLibs(a.Spec)
		isNative, isTP, isResp := false, false, false
		for k := range libs {
			counts[k]++
			if isNativeLib(k) {
				isNative = true
			} else {
				isTP = true
			}
			if k == apimodel.LibBasic || k == apimodel.LibOkHttp {
				isResp = true
			}
		}
		if isNative {
			native++
		}
		if isTP {
			thirdParty++
		}
		if isResp {
			respLibs++
		}
	}
	if goldens != NumGoldens {
		t.Errorf("goldens: %d", goldens)
	}
	// Table 7: Native 270, Volley 78, Android Async Http 25, Basic 18,
	// OkHttp 11. (HttpURL and Apache together form "native".)
	if native != targetNative {
		t.Errorf("native users = %d, want %d", native, targetNative)
	}
	if got := counts[apimodel.LibVolley]; got != targetVolley {
		t.Errorf("Volley users = %d, want %d", got, targetVolley)
	}
	if got := counts[apimodel.LibAsyncHTTP]; got != targetAsyncHTTP {
		t.Errorf("AsyncHttp users = %d, want %d", got, targetAsyncHTTP)
	}
	if got := counts[apimodel.LibBasic]; got != targetBasic {
		t.Errorf("Basic users = %d, want %d", got, targetBasic)
	}
	if got := counts[apimodel.LibOkHttp]; got != targetOkHttp {
		t.Errorf("OkHttp users = %d, want %d", got, targetOkHttp)
	}
	// Table 6 evaluation-condition denominators.
	if thirdParty != targetThirdParty {
		t.Errorf("retry-lib users = %d, want %d", thirdParty, targetThirdParty)
	}
	if respLibs != targetRespLibs {
		t.Errorf("resp-lib users = %d, want %d", respLibs, targetRespLibs)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := GenerateCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Spec.Sites) != len(b[i].Spec.Sites) {
			t.Fatalf("app %d differs across identical seeds", i)
		}
	}
	c, err := GenerateCorpus(8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if len(a[i].Spec.Sites) != len(c[i].Spec.Sites) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical site counts everywhere — RNG inert?")
	}
}

func TestCorpusAppsAllValidAndScannable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus scan in short mode")
	}
	apps := generateOnce(t)
	nc := core.New()
	totalWarnings := 0
	buggyApps := 0
	userReqApps := 0
	for _, a := range apps {
		if err := a.App.Program.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", a.Name, err)
		}
		res := nc.ScanApp(a.App)
		totalWarnings += len(res.Reports)
		if len(res.Reports) > 0 {
			buggyApps++
		}
		if res.Stats.UserRequests > 0 {
			userReqApps++
		}
	}
	// §5.2: NChecker discovers 4180 NPDs in 281 of 285 apps. Shape check:
	// nearly all apps buggy, warning volume in the thousands.
	if buggyApps < CorpusSize-8 || buggyApps > CorpusSize-1 {
		t.Errorf("buggy apps = %d, want ≈281", buggyApps)
	}
	if totalWarnings < 3300 || totalWarnings > 5200 {
		t.Errorf("total warnings = %d, want ≈4180", totalWarnings)
	}
	if userReqApps < targetNotifEval-8 || userReqApps > targetNotifEval+8 {
		t.Errorf("apps with user requests = %d, want ≈%d", userReqApps, targetNotifEval)
	}
	t.Logf("corpus: %d warnings across %d buggy apps, %d with user requests",
		totalWarnings, buggyApps, userReqApps)
}

// TestGeneratedMatchesOracle spot-checks generator↔checker agreement on
// full generated apps (the curated/fuzz tests cover single sites).
func TestGeneratedMatchesOracle(t *testing.T) {
	apps := generateOnce(t)
	reg := apimodel.NewRegistry()
	nc := core.New()
	for _, a := range apps[NumGoldens : NumGoldens+25] {
		res := nc.ScanApp(a.App)
		at := OracleApp(reg, a.Spec)
		if got := len(res.Reports); got != at.TotalTool() {
			t.Errorf("%s: checker %d warnings vs oracle %d", a.Name, got, at.TotalTool())
		}
	}
}
