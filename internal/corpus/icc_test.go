package corpus

import (
	"testing"

	"repro/internal/apimodel"
	"repro/internal/core"
	"repro/internal/report"
)

// TestICCRemovesConnFP: with the inter-component analysis on, a
// connectivity check performed by the launching activity satisfies the
// launched activity's request.
func TestICCRemovesConnFP(t *testing.T) {
	site := SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		ConnCheckInPrevComponent: true, SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true}
	spec := AppSpec{Package: "icc.conn", Sites: []SiteSpec{site}}

	without := core.New().ScanApp(MustBuild(spec))
	if n := countReports(without, report.CauseNoConnectivityCheck); n != 1 {
		t.Fatalf("without ICC: conn warnings = %d, want 1 (the FP)", n)
	}
	with := core.NewWithOptions(core.Options{EnableICC: true}).ScanApp(MustBuild(spec))
	if n := countReports(with, report.CauseNoConnectivityCheck); n != 0 {
		t.Errorf("with ICC: conn warnings = %d, want 0", n)
	}
}

// TestICCRemovesNotifFP: with ICC on, a broadcast whose receiver shows
// the error message counts as a failure notification.
func TestICCRemovesNotifFP(t *testing.T) {
	site := SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1,
		NotifyViaBroadcast: true}
	spec := AppSpec{Package: "icc.notif", Sites: []SiteSpec{site}}

	without := core.New().ScanApp(MustBuild(spec))
	if n := countReports(without, report.CauseNoFailureNotification); n != 1 {
		t.Fatalf("without ICC: notif warnings = %d, want 1 (the FP)", n)
	}
	with := core.NewWithOptions(core.Options{EnableICC: true}).ScanApp(MustBuild(spec))
	if n := countReports(with, report.CauseNoFailureNotification); n != 0 {
		t.Errorf("with ICC: notif warnings = %d, want 0", n)
	}
}

// TestICCKeepsPathInsensitivityFN: ICC does not make the analysis
// path-sensitive — the unused-check defect is still missed.
func TestICCKeepsPathInsensitivityFN(t *testing.T) {
	site := SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		ConnCheck: true, ConnCheckUnused: true, SetTimeout: true,
		SetRetry: true, RetryCount: 1, Notify: true}
	spec := AppSpec{Package: "icc.fn", Sites: []SiteSpec{site}}
	with := core.NewWithOptions(core.Options{EnableICC: true}).ScanApp(MustBuild(spec))
	if n := countReports(with, report.CauseNoConnectivityCheck); n != 0 {
		t.Errorf("the unused-check FN should persist under ICC, got %d warnings", n)
	}
}

// TestICCDoesNotBreakNormalApps: ICC must not change results for apps
// without inter-component flows.
func TestICCDoesNotBreakNormalApps(t *testing.T) {
	reg := apimodel.NewRegistry()
	for i, site := range curatedSpecs() {
		if site.ConnCheckInPrevComponent || site.NotifyViaBroadcast {
			continue
		}
		spec := AppSpec{Package: "icc.same", Sites: []SiteSpec{site}}
		with := core.NewWithOptions(core.Options{EnableICC: true}).ScanApp(MustBuild(spec))
		want := make(map[report.Cause]int)
		for _, c := range OracleICC(reg, site) {
			want[c]++
		}
		got := make(map[report.Cause]int)
		for ri := range with.Reports {
			got[with.Reports[ri].Cause]++
		}
		if !sameCauseCounts(got, want) {
			t.Errorf("spec %d %+v: ICC changed results: got %v want %v", i, site, got, want)
		}
	}
}

// TestGoldensWithICC: the Table 9 false positives disappear; accuracy
// rises to 100% on the FP axis while the 5 path-insensitivity FNs remain.
func TestGoldensWithICC(t *testing.T) {
	reg := apimodel.NewRegistry()
	nc := core.NewWithOptions(core.Options{EnableICC: true})
	totalWarnings := 0
	for _, g := range GoldenSpecs() {
		app := MustBuild(g.Spec)
		res := nc.ScanApp(app)
		want := make(map[report.Cause]int)
		for _, s := range g.Spec.Sites {
			for _, c := range OracleICC(reg, s) {
				want[c]++
			}
		}
		got := make(map[report.Cause]int)
		for i := range res.Reports {
			got[res.Reports[i].Cause]++
		}
		if !sameCauseCounts(got, want) {
			t.Errorf("golden %s with ICC: got %v want %v", g.Name, got, want)
		}
		totalWarnings += len(res.Reports)
	}
	// 130 correct + 0 FP (the 9 FPs are gone), 5 FNs remain unseen.
	if totalWarnings != 130 {
		t.Errorf("total warnings with ICC = %d, want 130 (all correct, no FPs)", totalWarnings)
	}
}

func countReports(res *core.Result, c report.Cause) int {
	n := 0
	for i := range res.Reports {
		if res.Reports[i].Cause == c {
			n++
		}
	}
	return n
}

// TestGuardSensitiveCatchesUnusedCheck: with the path-sensitive
// refinement, a check whose result is ignored no longer satisfies
// Checker 1 — the paper's §5.3 false negatives become true positives.
func TestGuardSensitiveCatchesUnusedCheck(t *testing.T) {
	site := SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		ConnCheck: true, ConnCheckUnused: true, SetTimeout: true,
		SetRetry: true, RetryCount: 1, Notify: true}
	spec := AppSpec{Package: "guard.fn", Sites: []SiteSpec{site}}
	plain := core.New().ScanApp(MustBuild(spec))
	if n := countReports(plain, report.CauseNoConnectivityCheck); n != 0 {
		t.Fatalf("path-insensitive tool should miss the unused check, got %d", n)
	}
	guarded := core.NewWithOptions(core.Options{GuardSensitiveConnCheck: true}).ScanApp(MustBuild(spec))
	if n := countReports(guarded, report.CauseNoConnectivityCheck); n != 1 {
		t.Errorf("guard-sensitive tool should flag the unused check, got %d", n)
	}
}

// TestGuardSensitiveAcceptsRealGuards: properly guarded requests stay
// clean under the refinement.
func TestGuardSensitiveAcceptsRealGuards(t *testing.T) {
	site := SiteSpec{Lib: apimodel.LibBasic, Ctx: CtxActivity,
		ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true}
	spec := AppSpec{Package: "guard.ok", Sites: []SiteSpec{site}}
	res := core.NewWithOptions(core.Options{GuardSensitiveConnCheck: true}).ScanApp(MustBuild(spec))
	if n := countReports(res, report.CauseNoConnectivityCheck); n != 0 {
		t.Errorf("guarded request flagged under guard-sensitivity: %d", n)
	}
}

// TestGoldensFullPrecision: ICC + guard-sensitivity together grade
// perfectly against the real-defect oracle: 135 warnings (the original
// 130 plus the 5 recovered FNs), no FPs, no FNs.
func TestGoldensFullPrecision(t *testing.T) {
	reg := apimodel.NewRegistry()
	nc := core.NewWithOptions(core.Options{EnableICC: true, GuardSensitiveConnCheck: true})
	totalWarnings, totalReal := 0, 0
	for _, g := range GoldenSpecs() {
		app := MustBuild(g.Spec)
		res := nc.ScanApp(app)
		want := make(map[report.Cause]int)
		for _, s := range g.Spec.Sites {
			for _, c := range Oracle(reg, s).RealDefects {
				want[c]++
				totalReal++
			}
		}
		got := make(map[report.Cause]int)
		for i := range res.Reports {
			got[res.Reports[i].Cause]++
		}
		if !sameCauseCounts(got, want) {
			t.Errorf("golden %s full precision: got %v want %v", g.Name, got, want)
		}
		totalWarnings += len(res.Reports)
	}
	if totalWarnings != 135 || totalWarnings != totalReal {
		t.Errorf("full-precision warnings = %d (real defects %d), want 135", totalWarnings, totalReal)
	}
}
