package interp

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

// machineFor builds a machine over a standalone program (no Android).
func machineFor(t *testing.T, src string) (*Machine, *jimple.Program) {
	t.Helper()
	prog, err := jimple.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	h := hierarchy.New(prog)
	return NewMachine(h, NewNetModel(NetOK, 1)), prog
}

func TestInterpreterArithmetic(t *testing.T) {
	src := `class m.T extends java.lang.Object {
  method static f(int)int {
    local a int
    local b int
    a = param 0 int
    b = a * 3
    b = b + 10
    b = b - 1
    b = b / 2
    b = b % 100
    b = b & 255
    b = b | 1
    b = b ^ 2
    return b
  }
}`
	m, prog := machineFor(t, src)
	method := prog.Class("m.T").MethodNamed("f")
	v, th := m.Call(method, nil, []Value{int64(4)})
	if th != nil {
		t.Fatalf("thrown: %v", th)
	}
	// ((4*3+10-1)/2)%100 = 10; 10&255=10; 10|1=11; 11^2=9.
	if v != int64(9) {
		t.Errorf("arithmetic: got %v want 9", v)
	}
}

func TestInterpreterFieldsAndStatics(t *testing.T) {
	src := `class m.Holder extends java.lang.Object {
  field v int
  field static s int
  method static f()int {
    local h m.Holder
    local x int
    h = new m.Holder
    field(h,m.Holder,v) = 21
    x = field(h,m.Holder,v)
    sfield(m.Holder,s) = x
    x = sfield(m.Holder,s)
    x = x * 2
    return x
  }
}`
	m, prog := machineFor(t, src)
	v, th := m.Call(prog.Class("m.Holder").MethodNamed("f"), nil, nil)
	if th != nil {
		t.Fatalf("thrown: %v", th)
	}
	if v != int64(42) {
		t.Errorf("fields: got %v want 42", v)
	}
}

func TestInterpreterNullFieldNPE(t *testing.T) {
	src := `class m.N extends java.lang.Object {
  field v int
  method static f()int {
    local h m.N
    local x int
    h = null
    x = field(h,m.N,v)
    return x
  }
}`
	m, prog := machineFor(t, src)
	_, th := m.Call(prog.Class("m.N").MethodNamed("f"), nil, nil)
	if th == nil || th.Type != "java.lang.NullPointerException" {
		t.Errorf("expected NPE, got %v", th)
	}
}

func TestInterpreterVirtualDispatch(t *testing.T) {
	src := `class m.Base extends java.lang.Object {
  method id()int {
    return 1
  }
}
class m.Sub extends m.Base {
  method id()int {
    return 2
  }
}
class m.Main extends java.lang.Object {
  method static f()int {
    local o m.Base
    local r int
    o = new m.Sub
    r = virtualinvoke o m.Base.id()int
    return r
  }
}`
	m, prog := machineFor(t, src)
	v, th := m.Call(prog.Class("m.Main").MethodNamed("f"), nil, nil)
	if th != nil || v != int64(2) {
		t.Errorf("virtual dispatch: got %v (%v), want 2", v, th)
	}
}

func TestInterpreterInstanceOfAndNeg(t *testing.T) {
	src := `class m.A extends java.lang.Object {
}
class m.B extends m.A {
}
class m.Main extends java.lang.Object {
  method static f()int {
    local o m.A
    local is boolean
    local neg boolean
    o = new m.B
    is = instanceof m.B o
    neg = !is
    if neg goto L0
    return 7
    L0:
    return 0
  }
}`
	m, prog := machineFor(t, src)
	v, th := m.Call(prog.Class("m.Main").MethodNamed("f"), nil, nil)
	if th != nil || v != int64(7) {
		t.Errorf("instanceof/neg: got %v (%v), want 7", v, th)
	}
}

func TestInterpreterUncaughtAppThrow(t *testing.T) {
	src := `class m.Thrower extends java.lang.Object {
  method static f()void {
    local e java.lang.RuntimeException
    e = new java.lang.RuntimeException
    throw e
  }
}
class java.lang.RuntimeException extends java.lang.Object {
}`
	m, prog := machineFor(t, src)
	_, th := m.Call(prog.Class("m.Thrower").MethodNamed("f"), nil, nil)
	if th == nil || th.Type != "java.lang.RuntimeException" {
		t.Errorf("expected RuntimeException, got %v", th)
	}
}

func TestStepBudget(t *testing.T) {
	src := `class m.Spin extends java.lang.Object {
  method static f()void {
    local i int
    i = 0
    L0:
    i = i + 1
    goto L0
  }
}`
	m, prog := machineFor(t, src)
	m.MaxSteps = 1000
	_, th := m.Call(prog.Class("m.Spin").MethodNamed("f"), nil, nil)
	if th == nil || th.Type != budgetExceeded {
		t.Errorf("expected budget exhaustion, got %v", th)
	}
	if !m.Obs.BudgetExceeded {
		t.Error("BudgetExceeded not recorded")
	}
}

func TestValueHelpers(t *testing.T) {
	o := NewObj("a.A")
	if o.String() == "" || (*Obj)(nil).String() != "null" {
		t.Error("Obj.String wrong")
	}
	th := &Thrown{Type: "T", Msg: "m"}
	if th.Error() == "" {
		t.Error("Thrown.Error empty")
	}
	if truthy(nil) || !truthy(int64(1)) || truthy(int64(0)) || !truthy("x") || truthy("") || !truthy(o) || !truthy(3.14) {
		t.Error("truthy misbehaves")
	}
	if v, ok := asInt(float64(7.9)); !ok || v != 7 {
		t.Error("asInt float")
	}
	if _, ok := asInt("nope"); ok {
		t.Error("asInt string")
	}
	if o.GetInt("missing", 9) != 9 {
		t.Error("GetInt default")
	}
}

func TestEvalBinReferenceEquality(t *testing.T) {
	a, b := NewObj("x.X"), NewObj("x.X")
	if evalBin(jimple.OpEQ, a, a) != int64(1) || evalBin(jimple.OpEQ, a, b) != int64(0) {
		t.Error("reference equality wrong")
	}
	if evalBin(jimple.OpNE, a, nil) != int64(1) || evalBin(jimple.OpEQ, nil, nil) != int64(1) {
		t.Error("null comparisons wrong")
	}
}
