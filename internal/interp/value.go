// Package interp is a dynamic-analysis substrate: an interpreter for the
// jimple IR with a modeled Android runtime and a fault-injecting network.
// It executes app entry points under injected network conditions (offline,
// poor signal, invalid responses) and records the NPD *manifestations* —
// crashes, hangs, silent failures, radio attempts — enabling the §7
// comparison the paper makes against dynamic tools (VanarSena, Caiipa):
// run-time fault injection only surfaces the crash-manifesting subset of
// NPDs, while NChecker's static analyses cover the rest.
package interp

import (
	"fmt"
)

// Value is a runtime value: nil (null reference), int64, float64, string,
// or *Obj.
type Value interface{}

// Obj is a heap object.
type Obj struct {
	Type   string
	Fields map[string]Value
}

// NewObj allocates an object of the given class.
func NewObj(typ string) *Obj {
	return &Obj{Type: typ, Fields: make(map[string]Value)}
}

// Get reads a field (zero value nil when absent).
func (o *Obj) Get(name string) Value { return o.Fields[name] }

// Set writes a field.
func (o *Obj) Set(name string, v Value) { o.Fields[name] = v }

// GetInt reads an int field with a default.
func (o *Obj) GetInt(name string, def int64) int64 {
	if v, ok := o.Fields[name].(int64); ok {
		return v
	}
	return def
}

func (o *Obj) String() string {
	if o == nil {
		return "null"
	}
	return fmt.Sprintf("%s@%p", o.Type, o)
}

// Thrown is an exception in flight.
type Thrown struct {
	Type string
	Msg  string
	// Obj is the exception object when one exists.
	Obj *Obj
}

func (t *Thrown) Error() string { return fmt.Sprintf("%s: %s", t.Type, t.Msg) }

// truthy converts a value to a branch decision: non-zero ints, non-nil
// refs and non-empty strings are true.
func truthy(v Value) bool {
	switch v := v.(type) {
	case nil:
		return false
	case int64:
		return v != 0
	case float64:
		return v != 0
	case string:
		return v != ""
	case *Obj:
		return v != nil
	}
	return true
}

// asInt coerces numeric values.
func asInt(v Value) (int64, bool) {
	switch v := v.(type) {
	case int64:
		return v, true
	case float64:
		return int64(v), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
