package interp

import (
	"math/rand"

	"repro/internal/netsim"
)

// Scenario is an injected network condition, the fault dimensions
// VanarSena/Caiipa-style dynamic checkers explore.
type Scenario uint8

const (
	// NetOK: healthy network, valid responses.
	NetOK Scenario = iota
	// NetOffline: no connectivity; connectivity checks report offline and
	// every transmission fails.
	NetOffline
	// NetPoor: connectivity checks pass but transmissions fail with high
	// probability (the ChatSecure condition).
	NetPoor
	// NetInvalidResp: transmissions "succeed" but deliver a null/invalid
	// response (the Checker 4 hazard).
	NetInvalidResp
	// NetSlow3G: a lossy, intermittently-disrupted 3G link simulated by
	// internal/netsim — attempts with a (default or configured) timeout
	// tend to abort, while no-timeout clients block through the outages
	// and accumulate huge virtual time (the Figure-3 condition).
	NetSlow3G
	// NetCaptivePortal: connectivity checks pass and transfers complete,
	// but a captive portal intercepts every request and serves its login
	// page — the response is well-formed yet unusable by the app (the
	// hotel-wifi road to the Checker 4 hazard, and the condition that
	// punishes cleartext endpoints).
	NetCaptivePortal
	// NetConnReset: connectivity checks pass but the peer resets every
	// connection immediately — attempts fail fast instead of timing out,
	// so retry loops without a failure-path backoff spin at full speed.
	NetConnReset
)

func (s Scenario) String() string {
	switch s {
	case NetOK:
		return "healthy"
	case NetOffline:
		return "offline"
	case NetPoor:
		return "poor-signal"
	case NetInvalidResp:
		return "invalid-response"
	case NetSlow3G:
		return "slow-3g"
	case NetCaptivePortal:
		return "captive-portal"
	case NetConnReset:
		return "connection-reset"
	}
	return "?"
}

// Scenarios returns the static fault matrix the dynamic-comparison
// experiment sweeps (NetOK baseline plus the three direct fault models).
func Scenarios() []Scenario {
	return []Scenario{NetOK, NetOffline, NetPoor, NetInvalidResp}
}

// ValidationScenarios returns the injected-fault conditions the warning
// validation stage replays against the NetOK baseline, in evaluation
// order.
func ValidationScenarios() []Scenario {
	return []Scenario{NetOffline, NetPoor, NetInvalidResp, NetSlow3G, NetCaptivePortal, NetConnReset}
}

// Transfer shape for the netsim-backed NetSlow3G scenario: a 64 KiB
// payload over a lossy 3G profile with intermittent outages. Large
// enough that default timeouts usually abort mid-transfer, small enough
// that no-timeout clients finish (slowly) instead of spinning forever.
const slow3GTransferBytes = 64 * 1024

func slow3GProfile() netsim.Profile {
	return netsim.ThreeGLossy(0.45).WithDisruption(8000, 4000)
}

// NetModel injects network behaviour into the library natives.
type NetModel struct {
	Scenario Scenario
	// FailP is the per-attempt failure probability under NetPoor.
	FailP float64
	rng   *rand.Rand
	slow  netsim.Profile
}

// NewNetModel builds a fault model for the scenario.
func NewNetModel(s Scenario, seed int64) *NetModel {
	return &NetModel{
		Scenario: s,
		FailP:    0.7,
		rng:      rand.New(rand.NewSource(seed)),
		slow:     slow3GProfile(),
	}
}

// online reports whether connectivity checks should pass.
func (n *NetModel) online() bool { return n.Scenario != NetOffline }

// attemptFails decides one transmission attempt.
func (n *NetModel) attemptFails() bool {
	switch n.Scenario {
	case NetOffline, NetConnReset:
		return true
	case NetPoor:
		return n.rng.Float64() < n.FailP
	}
	return false
}

// invalidResponse reports whether a "successful" transfer delivers an
// unusable response.
func (n *NetModel) invalidResponse() bool {
	return n.Scenario == NetInvalidResp || n.Scenario == NetCaptivePortal
}

// attemptOutcome models one transmission attempt under the scenario,
// returning whether it succeeded and the virtual time it consumed.
// timeoutMs <= 0 means the client configured no timeout: a failing
// attempt stalls until the OS-level TCP timeout (20 s), and under
// NetSlow3G the transfer blocks through outages instead of aborting.
func (n *NetModel) attemptOutcome(timeoutMs int64) (bool, float64) {
	if n.Scenario == NetSlow3G {
		c := netsim.Client{TimeoutMs: float64(max64(timeoutMs, 0)), MaxRetries: 0, BackoffMult: 1}
		res := c.Download(n.slow, slow3GTransferBytes, n.rng)
		return res.Success, res.ElapsedMs
	}
	if !n.attemptFails() {
		return true, 300
	}
	if n.Scenario == NetConnReset {
		// A reset arrives immediately — no timeout is consumed, which is
		// exactly what lets an unthrottled retry loop spin.
		return false, 250
	}
	if timeoutMs > 0 {
		return false, float64(timeoutMs)
	}
	return false, 20000
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Observations accumulates what a run manifested — the signals a dynamic
// checker can see.
type Observations struct {
	// Crashes records uncaught exceptions reaching the entry point.
	Crashes []Thrown
	// UIAlerts counts user-visible messages shown (Toast/TextView/…).
	UIAlerts int
	// NetworkAttempts counts transmissions, including library-internal
	// retries (the radio/energy proxy).
	NetworkAttempts int
	// RequestFailures counts requests whose final outcome was failure.
	RequestFailures int
	// RequestSuccesses counts requests that completed.
	RequestSuccesses int
	// VirtualTimeMs is the modeled wall-clock: timeouts and sleeps
	// advance it; a huge value under NetOffline marks a hang (the
	// no-timeout blocking connect).
	VirtualTimeMs float64
	// BudgetExceeded marks a run that hit the step budget — a runaway
	// loop (the tight-reconnect symptom). The runner records it
	// explicitly when the budget sentinel reaches the entry point, so a
	// timed-out replay is never mistaken for a clean one.
	BudgetExceeded bool
	// Slept counts backoff sleeps (distinguishes polite retry loops).
	Slept int

	statics map[string]Value
}

// Crashed reports whether the run ended in an uncaught exception.
func (o *Observations) Crashed() bool { return len(o.Crashes) > 0 }

// SilentFailure reports a failed request with no user-visible message —
// the "unfriendly UI" manifestation. Meaningful for user-initiated
// entries.
func (o *Observations) SilentFailure() bool {
	return o.RequestFailures > 0 && o.UIAlerts == 0 && !o.Crashed()
}

// HangSuspect reports a virtual time beyond what any user would wait.
func (o *Observations) HangSuspect() bool { return o.VirtualTimeMs >= 20000 }
