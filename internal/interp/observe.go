package interp

import (
	"math/rand"
)

// Scenario is an injected network condition, the fault dimensions
// VanarSena/Caiipa-style dynamic checkers explore.
type Scenario uint8

const (
	// NetOK: healthy network, valid responses.
	NetOK Scenario = iota
	// NetOffline: no connectivity; connectivity checks report offline and
	// every transmission fails.
	NetOffline
	// NetPoor: connectivity checks pass but transmissions fail with high
	// probability (the ChatSecure condition).
	NetPoor
	// NetInvalidResp: transmissions "succeed" but deliver a null/invalid
	// response (the Checker 4 hazard).
	NetInvalidResp
)

func (s Scenario) String() string {
	switch s {
	case NetOK:
		return "healthy"
	case NetOffline:
		return "offline"
	case NetPoor:
		return "poor-signal"
	case NetInvalidResp:
		return "invalid-response"
	}
	return "?"
}

// Scenarios returns all injected conditions.
func Scenarios() []Scenario {
	return []Scenario{NetOK, NetOffline, NetPoor, NetInvalidResp}
}

// NetModel injects network behaviour into the library natives.
type NetModel struct {
	Scenario Scenario
	// FailP is the per-attempt failure probability under NetPoor.
	FailP float64
	rng   *rand.Rand
}

// NewNetModel builds a fault model for the scenario.
func NewNetModel(s Scenario, seed int64) *NetModel {
	return &NetModel{Scenario: s, FailP: 0.7, rng: rand.New(rand.NewSource(seed))}
}

// online reports whether connectivity checks should pass.
func (n *NetModel) online() bool { return n.Scenario != NetOffline }

// attemptFails decides one transmission attempt.
func (n *NetModel) attemptFails() bool {
	switch n.Scenario {
	case NetOffline:
		return true
	case NetPoor:
		return n.rng.Float64() < n.FailP
	}
	return false
}

// invalidResponse reports whether a "successful" transfer delivers an
// unusable response.
func (n *NetModel) invalidResponse() bool { return n.Scenario == NetInvalidResp }

// Observations accumulates what a run manifested — the signals a dynamic
// checker can see.
type Observations struct {
	// Crashes records uncaught exceptions reaching the entry point.
	Crashes []Thrown
	// UIAlerts counts user-visible messages shown (Toast/TextView/…).
	UIAlerts int
	// NetworkAttempts counts transmissions, including library-internal
	// retries (the radio/energy proxy).
	NetworkAttempts int
	// RequestFailures counts requests whose final outcome was failure.
	RequestFailures int
	// RequestSuccesses counts requests that completed.
	RequestSuccesses int
	// VirtualTimeMs is the modeled wall-clock: timeouts and sleeps
	// advance it; a huge value under NetOffline marks a hang (the
	// no-timeout blocking connect).
	VirtualTimeMs float64
	// BudgetExhausted marks a run that hit the step budget — a runaway
	// loop (the tight-reconnect symptom).
	BudgetExhausted bool
	// Slept counts backoff sleeps (distinguishes polite retry loops).
	Slept int

	statics map[string]Value
}

// Crashed reports whether the run ended in an uncaught exception.
func (o *Observations) Crashed() bool { return len(o.Crashes) > 0 }

// SilentFailure reports a failed request with no user-visible message —
// the "unfriendly UI" manifestation. Meaningful for user-initiated
// entries.
func (o *Observations) SilentFailure() bool {
	return o.RequestFailures > 0 && o.UIAlerts == 0 && !o.Crashed()
}

// HangSuspect reports a virtual time beyond what any user would wait.
func (o *Observations) HangSuspect() bool { return o.VirtualTimeMs >= 20000 }
