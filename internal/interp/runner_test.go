package interp

import (
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// lossyLoopActivity retries a request until it succeeds, so its
// observation vector (attempts, failures, virtual time) depends on the
// exact per-attempt RNG draws — the most seed-sensitive shape we generate.
const lossyLoopActivity = `class m.Shared extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local done int
    local e java.io.IOException
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    done = 0
    L0:
    if done != 0 goto L4
    L1:
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    done = 1
    L2:
    goto L0
    L3:
    e = caught
    done = 0
    goto L0
    L4:
    return
    trap L1 L2 L3 java.io.IOException
  }
}`

// aExtraActivity is an unrelated entry point whose class name sorts
// BEFORE m.Shared, so adding it shifts every later entry's position in
// the discovered entry list.
const aExtraActivity = `class a.Extra extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    return
  }
}`

func appFrom(t *testing.T, src string, activities ...string) *apk.App {
	t.Helper()
	man := &android.Manifest{Package: "m", Activities: activities}
	man.Normalize()
	return &apk.App{Manifest: man, Program: jimple.MustParse(src)}
}

func sharedRun(t *testing.T, rep *RunReport) *EntryRun {
	t.Helper()
	for i := range rep.Runs {
		if rep.Runs[i].Entry.Class == "m.Shared" {
			return &rep.Runs[i]
		}
	}
	t.Fatalf("m.Shared entry missing from report (%d runs)", len(rep.Runs))
	return nil
}

// TestEntrySeedIndependentOfUnrelatedEntries is the seeding regression
// test: an entry's observations are a function of (app code, scenario,
// seed, its own signature), never of its position in the discovered entry
// list. Before the fix the per-entry RNG was seeded seed+index, so adding
// a.Extra — which sorts before m.Shared and shifts its index from 0 to
// 1 — silently reshuffled m.Shared's fault sequence.
func TestEntrySeedIndependentOfUnrelatedEntries(t *testing.T) {
	const seed = 7
	alone := appFrom(t, lossyLoopActivity, "m.Shared")
	withExtra := appFrom(t, lossyLoopActivity+"\n"+aExtraActivity, "m.Shared", "a.Extra")

	for _, s := range []Scenario{NetPoor, NetSlow3G} {
		before := RunApp(alone, s, seed)
		after := RunApp(withExtra, s, seed)
		if len(after.Runs) != len(before.Runs)+1 {
			t.Fatalf("%s: adding a.Extra changed the run count %d -> %d", s, len(before.Runs), len(after.Runs))
		}
		obsBefore := sharedRun(t, before).Obs
		obsAfter := sharedRun(t, after).Obs
		if !reflect.DeepEqual(obsBefore, obsAfter) {
			t.Errorf("%s: m.Shared's observations changed when an unrelated entry was added:\nalone:      %+v\nwith extra: %+v",
				s, obsBefore, obsAfter)
		}
	}
}

// TestEntrySeedHasPower proves the regression test above can actually
// fail: the observation vector IS sensitive to the seed the entry
// receives, so an index-shifted seed (what the old seed+index scheme
// produced) yields different observations.
func TestEntrySeedHasPower(t *testing.T) {
	r := NewReplayer(appFrom(t, lossyLoopActivity, "m.Shared"))
	sig := jimple.Sig{Class: "m.Shared", Name: "onCreate",
		Params: []string{"android.os.Bundle"}, Ret: "void"}
	base, ok := r.Replay(sig, NetPoor, 7)
	if !ok {
		t.Fatal("entry not interpretable")
	}
	for shift := int64(1); shift <= 8; shift++ {
		shifted, _ := r.Replay(sig, NetPoor, 7+shift)
		if !reflect.DeepEqual(base, shifted) {
			return // at least one neighboring seed observably differs
		}
	}
	t.Error("observations identical across seeds 7..15; the independence test has no power")
}

// unboundedLoopActivity never exits its request loop — success or
// failure, it goes around again — so every replay dies on the step
// budget, even under NetOK.
const unboundedLoopActivity = `class m.Spin extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local e java.io.IOException
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    L0:
    goto L1
    L1:
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://x"
    L2:
    goto L0
    L3:
    e = caught
    goto L0
    trap L1 L2 L3 java.io.IOException
  }
}`

// TestBudgetExceededRecordedNotDropped is the budget-accounting
// regression test: a replay that exhausts its step budget must come back
// as a normal run with Obs.BudgetExceeded set — not vanish from the
// report, and not masquerade as a crash — so the validation stage can
// say NotValidated instead of a false Unconfirmed.
func TestBudgetExceededRecordedNotDropped(t *testing.T) {
	app := appFrom(t, unboundedLoopActivity, "m.Spin")

	r := NewReplayer(app)
	sig := jimple.Sig{Class: "m.Spin", Name: "onCreate",
		Params: []string{"android.os.Bundle"}, Ret: "void"}
	obs, ok := r.Replay(sig, NetOK, 1)
	if !ok {
		t.Fatal("budget-exhausted entry reported as uninterpretable")
	}
	if !obs.BudgetExceeded {
		t.Error("step-budget exhaustion not recorded in Obs.BudgetExceeded")
	}
	if obs.Crashed() {
		t.Errorf("budget sentinel leaked into the crash list: %+v", obs.Crashes)
	}

	rep := RunApp(app, NetOK, 1)
	if len(rep.Runs) != 1 {
		t.Fatalf("budget-exhausted run dropped from the report: %d runs", len(rep.Runs))
	}
	if f := rep.Findings(false); f[FindingRunawayLoop] == 0 {
		t.Errorf("rich oracle missed the runaway loop: %v", f)
	}
}
