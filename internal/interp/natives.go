package interp

import (
	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/jimple"
)

// Client-state field names used by the library natives.
const (
	fTimeout  = "timeoutMs"
	fRetries  = "retries"
	fURL      = "url"
	fMethod   = "httpMethod"
	fListener = "listener"
	fErrListn = "errListener"
	fClass    = "className"
	fValid    = "valid"
)

// unset marks a config value the developer never provided.
const unset = int64(-1)

func needObj(recv Value, what string) (*Obj, *Thrown) {
	obj, ok := recv.(*Obj)
	if !ok || obj == nil {
		return nil, &Thrown{Type: android.ClassNullPointerExc, Msg: what + " on null"}
	}
	return obj, nil
}

// doRequest models one library request from the client/request object's
// recorded configuration, falling back to the library defaults —
// faithfully including the dangerous ones (no timeout = a 20-second
// blocking stall; Async HTTP's 5 automatic retries).
func doRequest(m *Machine, lib *apimodel.Library, cfg *Obj) bool {
	timeout := cfg.GetInt(fTimeout, unset)
	if timeout == unset {
		timeout = int64(lib.Defaults.TimeoutMs)
	}
	retries := cfg.GetInt(fRetries, unset)
	if retries == unset {
		retries = int64(lib.Defaults.Retries)
	}
	attempts := 1 + retries
	if attempts < 1 {
		attempts = 1
	}
	for a := int64(0); a < attempts; a++ {
		m.Obs.NetworkAttempts++
		ok, elapsed := m.Net.attemptOutcome(timeout)
		m.Obs.VirtualTimeMs += elapsed
		if ok {
			m.Obs.RequestSuccesses++
			return true
		}
	}
	m.Obs.RequestFailures++
	return false
}

func newResponse(typ string) *Obj {
	r := NewObj(typ)
	r.Set(fValid, int64(1))
	r.Set("status", int64(200))
	return r
}

func ioException(msg string) *Thrown {
	return &Thrown{Type: android.ClassIOException, Msg: msg}
}

// registerNatives installs the framework and library method models.
func registerNatives(m *Machine) {
	reg := apimodel.NewRegistry()
	registerFramework(m)
	registerConfigNatives(m, reg)
	registerTargetNatives(m, reg)
	registerResponseNatives(m)
}

// registerConfigNatives derives timeout/retry setters directly from the
// annotation registry so interpreter semantics can never drift from the
// static model.
func registerConfigNatives(m *Machine, reg *apimodel.Registry) {
	for _, lib := range reg.Libraries() {
		for _, cfg := range lib.Configs {
			cfg := cfg
			switch cfg.Kind {
			case apimodel.ConfigTimeout:
				m.RegisterNative(cfg.Sig.Class, cfg.Sig.SubSigKey(),
					func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
						obj, th := needObj(recv, cfg.Sig.Name)
						if th != nil {
							return nil, th
						}
						if len(args) > 0 {
							if v, ok := asInt(args[0]); ok {
								obj.Set(fTimeout, v)
							}
						}
						return nil, nil
					})
			case apimodel.ConfigRetry:
				if cfg.CountArg < 0 {
					continue
				}
				countArg := cfg.CountArg
				m.RegisterNative(cfg.Sig.Class, cfg.Sig.SubSigKey(),
					func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
						obj, th := needObj(recv, cfg.Sig.Name)
						if th != nil {
							return nil, th
						}
						if countArg < len(args) {
							if v, ok := asInt(args[countArg]); ok {
								obj.Set(fRetries, v)
							}
						}
						return nil, nil
					})
			default:
				m.RegisterNative(cfg.Sig.Class, cfg.Sig.SubSigKey(),
					func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
						_, th := needObj(recv, cfg.Sig.Name)
						return nil, th
					})
			}
		}
	}
}

// registerTargetNatives installs the request-submitting APIs.
func registerTargetNatives(m *Machine, reg *apimodel.Registry) {
	for _, lib := range reg.Libraries() {
		lib := lib
		for ti := range lib.Targets {
			t := lib.Targets[ti]
			switch {
			case lib.Key == apimodel.LibVolley:
				m.RegisterNative(t.Sig.Class, t.Sig.SubSigKey(), volleyAdd(lib))
			case t.HandlerArg >= 0 && lib.Key == apimodel.LibAsyncHTTP:
				m.RegisterNative(t.Sig.Class, t.Sig.SubSigKey(), asyncHTTPRequest(lib, t))
			case t.HandlerArg >= 0: // OkHttp enqueue
				m.RegisterNative(t.Sig.Class, t.Sig.SubSigKey(), okHTTPEnqueue(lib, t))
			case t.ReturnsResponse:
				m.RegisterNative(t.Sig.Class, t.Sig.SubSigKey(), syncRequest(lib, t))
			default: // HttpURLConnection.connect
				m.RegisterNative(t.Sig.Class, t.Sig.SubSigKey(), connectRequest(lib))
			}
		}
	}
}

// syncRequest: blocking call returning the response object, null under an
// invalid-response fault, or throwing IOException on failure.
func syncRequest(lib *apimodel.Library, t apimodel.Target) NativeFunc {
	return func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		client, th := needObj(recv, t.Sig.Name)
		if th != nil {
			return nil, th
		}
		if !doRequest(mc, lib, client) {
			return nil, ioException(lib.Name + " request failed")
		}
		if mc.Net.invalidResponse() {
			// The hazard Checker 4 exists for: the API "succeeds" but the
			// response is unusable (modeled as null).
			return nil, nil
		}
		return newResponse(t.ResponseClass), nil
	}
}

func connectRequest(lib *apimodel.Library) NativeFunc {
	return func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		conn, th := needObj(recv, "connect")
		if th != nil {
			return nil, th
		}
		if !doRequest(mc, lib, conn) {
			return nil, ioException("connect failed")
		}
		return nil, nil
	}
}

// asyncHTTPRequest: failures and successes are routed to the handler's
// callbacks; nothing throws at the call site.
func asyncHTTPRequest(lib *apimodel.Library, t apimodel.Target) NativeFunc {
	return func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		client, th := needObj(recv, t.Sig.Name)
		if th != nil {
			return nil, th
		}
		var handler *Obj
		if t.HandlerArg < len(args) {
			handler, _ = args[t.HandlerArg].(*Obj)
		}
		if doRequest(mc, lib, client) && !mc.Net.invalidResponse() {
			return mc.InvokeCallback(handler, "onSuccess(java.lang.String)void", []Value{"body"})
		}
		thr := NewObj(android.ClassIOException)
		return mc.InvokeCallback(handler,
			"onFailure(java.lang.Throwable,java.lang.String)void", []Value{thr, "request failed"})
	}
}

func okHTTPEnqueue(lib *apimodel.Library, t apimodel.Target) NativeFunc {
	return func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		client, th := needObj(recv, t.Sig.Name)
		if th != nil {
			return nil, th
		}
		var cb *Obj
		if t.HandlerArg < len(args) {
			cb, _ = args[t.HandlerArg].(*Obj)
		}
		if doRequest(mc, lib, client) {
			resp := newResponse(apimodel.ClassOkResponse)
			if mc.Net.invalidResponse() {
				resp.Set(fValid, int64(0))
				resp.Set("status", int64(500))
			}
			return mc.InvokeCallback(cb,
				"onResponse("+apimodel.ClassOkResponse+")void", []Value{resp})
		}
		var req *Obj
		if len(args) > 0 {
			req, _ = args[0].(*Obj)
		}
		exc := NewObj(android.ClassIOException)
		return mc.InvokeCallback(cb,
			"onFailure("+apimodel.ClassOkRequest+",java.io.IOException)void", []Value{req, exc})
	}
}

// volleyAdd: RequestQueue.add dispatches to the listeners the request was
// constructed with; Volley's automatic response validation routes invalid
// responses to the error listener.
func volleyAdd(lib *apimodel.Library) NativeFunc {
	return func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		if _, th := needObj(recv, "add"); th != nil {
			return nil, th
		}
		if len(args) == 0 {
			return nil, nil
		}
		req, ok := args[0].(*Obj)
		if !ok || req == nil {
			return nil, &Thrown{Type: android.ClassNullPointerExc, Msg: "add(null request)"}
		}
		listener, _ := req.Get(fListener).(*Obj)
		errListener, _ := req.Get(fErrListn).(*Obj)
		if doRequest(mc, lib, req) && !mc.Net.invalidResponse() {
			if _, th := mc.InvokeCallback(listener,
				"onResponse(java.lang.Object)void", []Value{newResponse("java.lang.Object")}); th != nil {
				return nil, th
			}
			return req, nil
		}
		errType := apimodel.ClassVolleyTimeout
		if mc.Net.Scenario == NetOffline {
			errType = apimodel.ClassVolleyNoConn
		} else if mc.Net.invalidResponse() {
			errType = apimodel.ClassVolleyClientErr
		}
		errObj := NewObj(errType)
		if _, th := mc.InvokeCallback(errListener,
			"onErrorResponse("+apimodel.ClassVolleyError+")void", []Value{errObj}); th != nil {
			return nil, th
		}
		return req, nil
	}
}

// registerResponseNatives models the response objects' readers/checkers.
func registerResponseNatives(m *Machine) {
	readBody := func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		obj, th := needObj(recv, "read response")
		if th != nil {
			return nil, th
		}
		if obj.GetInt(fValid, 1) == 0 {
			return nil, nil
		}
		return "body", nil
	}
	isOK := func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		obj, th := needObj(recv, "check response")
		if th != nil {
			return nil, th
		}
		return obj.GetInt(fValid, 1), nil
	}
	for key := range apimodel.ResponseUseSigs {
		sig, err := jimple.ParseSigKey(key)
		if err != nil {
			continue
		}
		m.RegisterNative(sig.Class, sig.SubSigKey(), readBody)
	}
	reg := apimodel.NewRegistry()
	for _, lib := range reg.Libraries() {
		for _, rc := range lib.RespChecks {
			m.RegisterNative(rc.Sig.Class, rc.Sig.SubSigKey(), isOK)
		}
	}
	// Constructors that carry request state.
	m.RegisterNative(apimodel.ClassVolleyStringReq,
		"<init>(int,java.lang.String,"+apimodel.ClassVolleyListener+","+apimodel.ClassVolleyErrListen+")void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			obj, th := needObj(recv, "<init>")
			if th != nil {
				return nil, th
			}
			if len(args) == 4 {
				obj.Set(fMethod, args[0])
				obj.Set(fURL, args[1])
				obj.Set(fListener, args[2])
				obj.Set(fErrListn, args[3])
			}
			return nil, nil
		})
	m.RegisterNative(apimodel.ClassURL, "openConnection()"+apimodel.ClassHttpURLConn,
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			if _, th := needObj(recv, "openConnection"); th != nil {
				return nil, th
			}
			return NewObj(apimodel.ClassHttpURLConn), nil
		})
}

// registerFramework models the Android runtime pieces the apps touch.
func registerFramework(m *Machine) {
	alert := func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
		mc.Obs.UIAlerts++
		return nil, nil
	}
	for _, cls := range []string{
		android.ClassToast, android.ClassTextView, android.ClassImageView,
		android.ClassAlertDialog, android.ClassDialogFragment,
	} {
		// Any method on a UI-alert class counts as showing a message;
		// register the common ones.
		m.RegisterNative(cls, "show()void", alert)
		m.RegisterNative(cls, "setText(java.lang.CharSequence)void", alert)
		m.RegisterNative(cls, "setImageResource(int)void", alert)
	}
	m.RegisterNative(android.ClassConnectivityMgr, "getActiveNetworkInfo()"+android.ClassNetworkInfo,
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			if !mc.Net.online() {
				return nil, nil
			}
			return NewObj(android.ClassNetworkInfo), nil
		})
	m.RegisterNative(android.ClassNetworkInfo, "isConnected()boolean",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			obj, th := needObj(recv, "isConnected")
			if th != nil {
				return nil, th
			}
			_ = obj
			return b2i(mc.Net.online()), nil
		})
	m.RegisterNative(android.ClassThread, "sleep(long)void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			if len(args) > 0 {
				if ms, ok := asInt(args[0]); ok {
					mc.Obs.VirtualTimeMs += float64(ms)
					mc.Obs.Slept++
				}
			}
			return nil, nil
		})
	m.RegisterNative(android.ClassThread, "start()void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			obj, _ := recv.(*Obj)
			return mc.InvokeCallback(obj, "run()void", nil)
		})
	runArg := func(mc *Machine, args []Value, delayIdx int) (Value, *Thrown) {
		if delayIdx >= 0 && delayIdx < len(args) {
			if ms, ok := asInt(args[delayIdx]); ok {
				mc.Obs.VirtualTimeMs += float64(ms)
			}
		}
		if len(args) > 0 {
			if r, ok := args[0].(*Obj); ok {
				return mc.InvokeCallback(r, "run()void", nil)
			}
		}
		return int64(1), nil
	}
	m.RegisterNative(android.ClassHandler, "post(java.lang.Runnable)boolean",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) { return runArg(mc, args, -1) })
	m.RegisterNative(android.ClassHandler, "postDelayed(java.lang.Runnable,long)boolean",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) { return runArg(mc, args, 1) })
	m.RegisterNative(android.ClassTimer, "schedule(java.util.TimerTask,long)void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) { return runArg(mc, args, 1) })
	m.RegisterNative(android.ClassAsyncTask, "execute()void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			obj, _ := recv.(*Obj)
			for _, sub := range []string{"onPreExecute()void", "doInBackground()void", "onPostExecute()void"} {
				if _, th := mc.InvokeCallback(obj, sub, nil); th != nil {
					return nil, th
				}
			}
			return nil, nil
		})
	m.RegisterNative(android.ClassView, "setOnClickListener(android.view.View$OnClickListener)void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			// Monkey-style exploration: a registered listener gets
			// clicked once.
			if len(args) > 0 {
				if l, ok := args[0].(*Obj); ok {
					return mc.InvokeCallback(l, "onClick(android.view.View)void", []Value{nil})
				}
			}
			return nil, nil
		})
	m.RegisterNative(android.ClassIntent, "setClassName(java.lang.String)void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			obj, th := needObj(recv, "setClassName")
			if th != nil {
				return nil, th
			}
			if len(args) > 0 {
				obj.Set(fClass, args[0])
			}
			return nil, nil
		})
	m.RegisterNative(android.ClassActivity, "startActivity(android.content.Intent)void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			if len(args) == 0 {
				return nil, nil
			}
			intent, ok := args[0].(*Obj)
			if !ok || intent == nil {
				return nil, nil
			}
			target, _ := intent.Get(fClass).(string)
			if target == "" {
				return nil, nil
			}
			return mc.StartComponent(target, "onCreate(android.os.Bundle)void", []Value{nil})
		})
	m.RegisterNative(android.ClassActivity, "sendBroadcast(android.content.Intent)void",
		func(mc *Machine, recv Value, args []Value) (Value, *Thrown) {
			for _, r := range mc.Receivers {
				if _, th := mc.StartComponent(r,
					"onReceive(android.content.Context,android.content.Intent)void",
					[]Value{nil, nil}); th != nil {
					return nil, th
				}
			}
			return nil, nil
		})
}

// StartComponent constructs a component instance and runs one of its
// lifecycle methods.
func (m *Machine) StartComponent(class, subsig string, args []Value) (Value, *Thrown) {
	cls := m.H.Program().Class(class)
	if cls == nil {
		return nil, nil
	}
	target := cls.Method(subsig)
	if target == nil || !target.HasBody() {
		return nil, nil
	}
	return m.Call(target, NewObj(class), args)
}
