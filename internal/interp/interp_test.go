package interp

import (
	"testing"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/corpus"
	"repro/internal/jimple"
)

func runSite(t *testing.T, site corpus.SiteSpec, s Scenario) *RunReport {
	t.Helper()
	app := corpus.MustBuild(corpus.AppSpec{Package: "dyn.app", Sites: []corpus.SiteSpec{site}})
	return RunApp(app, s, 1)
}

func total(rep *RunReport, crashOnly bool) map[DynamicFinding]int {
	return rep.Findings(crashOnly)
}

func TestHealthyRunIsQuiet(t *testing.T) {
	site := corpus.SiteSpec{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity,
		ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1,
		Notify: true, UseResponse: true, CheckResponse: true}
	rep := runSite(t, site, NetOK)
	if len(rep.Runs) == 0 {
		t.Fatal("no entry points ran")
	}
	f := total(rep, false)
	if len(f) != 0 {
		t.Errorf("healthy disciplined app manifested findings: %v", f)
	}
	for _, run := range rep.Runs {
		if run.Obs.NetworkAttempts == 0 {
			t.Error("no network attempt recorded")
		}
		if run.Obs.RequestSuccesses == 0 {
			t.Error("request did not succeed on a healthy network")
		}
	}
}

// The Checker 4 hazard manifests as a crash only dynamically under the
// invalid-response fault: an unchecked response is used (NPE).
func TestUncheckedResponseCrashesUnderInvalidFault(t *testing.T) {
	site := corpus.SiteSpec{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity,
		ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1,
		Notify: true, UseResponse: true, CheckResponse: false}
	rep := runSite(t, site, NetInvalidResp)
	if total(rep, true)[FindingCrash] == 0 {
		t.Error("unchecked response use should crash under the invalid-response fault")
	}
	// The same app with the null check survives.
	site.CheckResponse = true
	rep = runSite(t, site, NetInvalidResp)
	if total(rep, true)[FindingCrash] != 0 {
		t.Error("null-checked response should not crash")
	}
	// And no crash on a healthy network — the defect is latent.
	site.CheckResponse = false
	rep = runSite(t, site, NetOK)
	if total(rep, true)[FindingCrash] != 0 {
		t.Error("latent defect crashed without the fault")
	}
}

// An unhandled request failure crashes only when no trap catches it: our
// generated direct sites have no try/catch, so offline GETs crash the
// component — unless the connectivity guard prevents the request.
func TestConnGuardPreventsOfflineCrash(t *testing.T) {
	unguarded := corpus.SiteSpec{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity,
		SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: true}
	rep := runSite(t, unguarded, NetOffline)
	if total(rep, true)[FindingCrash] == 0 {
		t.Error("unguarded offline request should crash (uncaught IOException)")
	}
	guarded := unguarded
	guarded.ConnCheck = true
	rep = runSite(t, guarded, NetOffline)
	if total(rep, true)[FindingCrash] != 0 {
		t.Error("guarded request should not crash offline")
	}
	for _, run := range rep.Runs {
		if run.Obs.NetworkAttempts != 0 {
			t.Error("guarded offline run should not touch the network")
		}
	}
}

// The no-timeout NPD does NOT manifest as a crash — it hangs. This is the
// paper's §7 point: crash-oriented dynamic tools cannot see it.
func TestNoTimeoutManifestsAsHangNotCrash(t *testing.T) {
	site := corpus.SiteSpec{Lib: apimodel.LibOkHttp, Ctx: corpus.CtxActivity,
		ConnCheck: true, SetRetry: true, RetryCount: 1, Notify: true}
	// OkHttp has no default timeout; the site never sets one.
	rep := runSite(t, site, NetPoor)
	crash := total(rep, true)
	rich := total(rep, false)
	if crash[FindingCrash] != 0 {
		// The request eventually fails with IOException... which our
		// generated code does not catch, so it can crash. Accept either,
		// but a hang must be observable when it doesn't crash.
		t.Logf("note: poor-network failure crashed (uncaught IOException)")
	}
	if rich[FindingHang] == 0 && crash[FindingCrash] == 0 {
		t.Error("no-timeout request under poor network manifested nothing")
	}
	hung := false
	for _, run := range rep.Runs {
		if run.Obs.VirtualTimeMs >= 20000 {
			hung = true
		}
	}
	if !hung {
		t.Error("blocking request never stalled — timeout model inert")
	}
}

// A tight retry loop under a persistent outage exhausts the step budget
// (runaway); the backoff variant advances virtual time instead.
func TestTightRetryLoopRunsAway(t *testing.T) {
	tight := corpus.SiteSpec{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity,
		ConnCheck: false, SetTimeout: true, SetRetry: true, RetryCount: 0,
		Notify: true, RetryLoop: true, LoopBackoff: false}
	// A persistent outage: the loop can never succeed.
	rep := runSite(t, tight, NetOffline)
	f := total(rep, false)
	if f[FindingRunawayLoop] == 0 && f[FindingHang] == 0 {
		t.Errorf("tight retry loop under a persistent outage should run away or hang: %v", f)
	}
	polite := tight
	polite.LoopBackoff = true
	rep = runSite(t, polite, NetOffline)
	slept := false
	for _, run := range rep.Runs {
		if run.Obs.Slept > 0 {
			slept = true
		}
	}
	if !slept {
		t.Error("backoff loop never slept")
	}
}

// Silent failures: a user request fails offline with no Toast anywhere.
func TestSilentFailureObserved(t *testing.T) {
	// Volley fails via its error listener (no crash); without Notify the
	// failure is silent.
	silent := corpus.SiteSpec{Lib: apimodel.LibVolley, Ctx: corpus.CtxActivity,
		ConnCheck: false, SetTimeout: true, SetRetry: true, RetryCount: 1, Notify: false}
	rep := runSite(t, silent, NetOffline)
	if total(rep, false)[FindingSilentFailure] == 0 {
		t.Error("silent Volley failure not observed")
	}
	noisy := silent
	noisy.Notify = true
	rep = runSite(t, noisy, NetOffline)
	if total(rep, false)[FindingSilentFailure] != 0 {
		t.Error("notified failure flagged as silent")
	}
	alerted := false
	for _, run := range rep.Runs {
		if run.Obs.UIAlerts > 0 {
			alerted = true
		}
	}
	if !alerted {
		t.Error("toast in onErrorResponse never shown")
	}
}

// Async HTTP callbacks fire on both paths.
func TestAsyncHTTPCallbacksRun(t *testing.T) {
	site := corpus.SiteSpec{Lib: apimodel.LibAsyncHTTP, Ctx: corpus.CtxActivity,
		ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 0, Notify: true}
	rep := runSite(t, site, NetPoor)
	alerted := false
	for _, run := range rep.Runs {
		if run.Obs.UIAlerts > 0 {
			alerted = true
		}
	}
	if !alerted {
		t.Error("onFailure toast never ran under poor network")
	}
}

// AsyncTask wrapping executes doInBackground and onPostExecute.
func TestAsyncTaskLifecycleRuns(t *testing.T) {
	site := corpus.SiteSpec{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity,
		Wrap: corpus.WrapAsyncTask, ConnCheck: true, SetTimeout: true,
		SetRetry: true, RetryCount: 1, Notify: true}
	rep := runSite(t, site, NetOK)
	attempts, alerts := 0, 0
	for _, run := range rep.Runs {
		attempts += run.Obs.NetworkAttempts
		alerts += run.Obs.UIAlerts
	}
	if attempts == 0 {
		t.Error("AsyncTask request never transmitted")
	}
	if alerts == 0 {
		t.Error("onPostExecute toast never shown")
	}
}

// ICC runs dynamically: the launcher starts the target activity.
func TestStartActivityRunsTarget(t *testing.T) {
	site := corpus.SiteSpec{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity,
		ConnCheckInPrevComponent: true, SetTimeout: true, SetRetry: true,
		RetryCount: 1, Notify: true}
	rep := runSite(t, site, NetOK)
	// The launcher's onCreate (an entry) must reach the target's request.
	sawRequestViaLauncher := false
	for _, run := range rep.Runs {
		if run.Entry.Class == "dyn.app.Comp0Launcher" && run.Obs.NetworkAttempts > 0 {
			sawRequestViaLauncher = true
		}
	}
	if !sawRequestViaLauncher {
		t.Error("startActivity did not execute the launched activity")
	}
}

// Retries consume energy: default AsyncHttp retries burn attempts.
func TestDefaultRetriesBurnAttempts(t *testing.T) {
	site := corpus.SiteSpec{Lib: apimodel.LibAsyncHTTP, Ctx: corpus.CtxService,
		ConnCheck: false, SetTimeout: true, Notify: false} // no SetRetry: default 5 retries
	app := corpus.MustBuild(corpus.AppSpec{Package: "dyn.energy", Sites: []corpus.SiteSpec{site}})
	// Offline, unguarded: every attempt fails, so the library's default
	// of 5 retries burns exactly 6 transmissions.
	rep := RunApp(app, NetOffline, 3)
	maxAttempts := 0
	for _, run := range rep.Runs {
		if run.Obs.NetworkAttempts > maxAttempts {
			maxAttempts = run.Obs.NetworkAttempts
		}
	}
	if maxAttempts != 6 {
		t.Errorf("default retries should produce 6 attempts, saw %d", maxAttempts)
	}
}

func TestScenarioStrings(t *testing.T) {
	for _, s := range Scenarios() {
		if s.String() == "?" {
			t.Errorf("scenario %d unnamed", s)
		}
	}
}

// Every library's request path executes under every scenario without the
// machine itself misbehaving (panic-free, plausible observations).
func TestAllLibrariesAllScenarios(t *testing.T) {
	libs := []apimodel.LibKey{
		apimodel.LibHttpURL, apimodel.LibApache, apimodel.LibVolley,
		apimodel.LibOkHttp, apimodel.LibAsyncHTTP, apimodel.LibBasic,
	}
	for _, lib := range libs {
		for _, s := range Scenarios() {
			site := corpus.SiteSpec{Lib: lib, Ctx: corpus.CtxActivity,
				ConnCheck: true, SetTimeout: true, Notify: true}
			if lib == apimodel.LibBasic || lib == apimodel.LibOkHttp {
				site.UseResponse = true
				site.CheckResponse = true
			}
			rep := runSite(t, site, s)
			if len(rep.Runs) == 0 {
				t.Fatalf("%s/%s: no runs", lib, s)
			}
			for _, run := range rep.Runs {
				if s == NetOffline && run.Obs.NetworkAttempts != 0 {
					t.Errorf("%s/%s: guarded offline run transmitted", lib, s)
				}
				if s == NetOK && run.Obs.RequestFailures > 0 {
					t.Errorf("%s/%s: healthy network failed", lib, s)
				}
			}
		}
	}
}

// The OkHttp callback path: enqueue-style apps are modeled through the
// Callback-implementing class (checker 4's callback case).
func TestOkHttpCallbackClassRuns(t *testing.T) {
	// Hand-build: activity enqueues with a callback showing a toast on
	// failure and reading the body on response.
	appSrc := `class dyn.Ok extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local client com.squareup.okhttp.OkHttpClient
    local req com.squareup.okhttp.Request
    local cb dyn.Ok$Cb
    client = new com.squareup.okhttp.OkHttpClient
    virtualinvoke client com.squareup.okhttp.OkHttpClient.setReadTimeout(int)void 4000
    req = new com.squareup.okhttp.Request
    cb = new dyn.Ok$Cb
    specialinvoke cb dyn.Ok$Cb.<init>()void
    virtualinvoke client com.squareup.okhttp.OkHttpClient.enqueue(com.squareup.okhttp.Request,com.squareup.okhttp.Callback)void req cb
    return
  }
}
class dyn.Ok$Cb extends java.lang.Object implements com.squareup.okhttp.Callback {
  method <init>()void {
    return
  }
  method onResponse(com.squareup.okhttp.Response)void {
    local resp com.squareup.okhttp.Response
    local ok boolean
    local body java.lang.String
    resp = param 0 com.squareup.okhttp.Response
    ok = virtualinvoke resp com.squareup.okhttp.Response.isSuccessful()boolean
    if ok == 0 goto L1
    body = virtualinvoke resp com.squareup.okhttp.Response.getBody()java.lang.String
    L1:
    return
  }
  method onFailure(com.squareup.okhttp.Request,java.io.IOException)void {
    local toast android.widget.Toast
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
  }
}`
	prog := jimpleMustParse(t, appSrc)
	man := &android.Manifest{Package: "dyn", Activities: []string{"dyn.Ok"}}
	man.Normalize()
	app := &apk.App{Manifest: man, Program: prog}

	// Offline: onFailure fires, toast shown, no crash.
	rep := RunApp(app, NetOffline, 1)
	if len(rep.Runs) != 1 {
		t.Fatalf("runs: %d", len(rep.Runs))
	}
	if rep.Runs[0].Obs.Crashed() {
		t.Errorf("callback app crashed offline: %+v", rep.Runs[0].Obs.Crashes)
	}
	if rep.Runs[0].Obs.UIAlerts == 0 {
		t.Error("onFailure toast not shown")
	}
	// Invalid response: isSuccessful guard skips the body read; no crash.
	rep = RunApp(app, NetInvalidResp, 1)
	if rep.Runs[0].Obs.Crashed() {
		t.Errorf("guarded callback crashed on invalid response: %+v", rep.Runs[0].Obs.Crashes)
	}
	// Healthy: success path runs.
	rep = RunApp(app, NetOK, 1)
	if rep.Runs[0].Obs.RequestSuccesses == 0 {
		t.Error("healthy enqueue did not succeed")
	}
}

// Intra-app exceptions: a throw caught by an app trap does not crash.
func TestAppLevelTryCatch(t *testing.T) {
	src := `class dyn.Catcher extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local client com.turbomanage.httpclient.BasicHttpClient
    local resp com.turbomanage.httpclient.HttpResponse
    local e java.io.IOException
    local toast android.widget.Toast
    client = new com.turbomanage.httpclient.BasicHttpClient
    virtualinvoke client com.turbomanage.httpclient.BasicHttpClient.setReadTimeout(int)void 3000
    L0:
    resp = virtualinvoke client com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "u"
    L1:
    return
    L2:
    e = caught
    toast = new android.widget.Toast
    virtualinvoke toast android.widget.Toast.show()void
    return
    trap L0 L1 L2 java.io.IOException
  }
}`
	prog := jimpleMustParse(t, src)
	man := &android.Manifest{Package: "dyn", Activities: []string{"dyn.Catcher"}}
	man.Normalize()
	app := &apk.App{Manifest: man, Program: prog}
	rep := RunApp(app, NetOffline, 1)
	if rep.Runs[0].Obs.Crashed() {
		t.Errorf("caught IOException crashed the app: %+v", rep.Runs[0].Obs.Crashes)
	}
	if rep.Runs[0].Obs.UIAlerts == 0 {
		t.Error("catch-block toast not shown")
	}
}

func jimpleMustParse(t *testing.T, src string) *jimple.Program {
	t.Helper()
	prog, err := jimple.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid test app: %v", err)
	}
	return prog
}
