package interp

import (
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

// budgetExceeded is the sentinel exception type raised when a run exceeds
// its step budget — the interpreter's stand-in for a watchdog catching a
// runaway loop (e.g. a tight reconnect loop under a persistent outage).
const budgetExceeded = "interp.StepBudgetExceeded"

// NativeFunc implements a framework or library method. recv is the
// receiver (nil for statics); it returns the call's result or a thrown
// exception.
type NativeFunc func(m *Machine, recv Value, args []Value) (Value, *Thrown)

// Machine executes app code against a native-method model and a network
// fault model.
type Machine struct {
	H   *hierarchy.Hierarchy
	Net *NetModel
	Obs *Observations
	// Receivers lists manifest-declared broadcast receivers so
	// sendBroadcast can dispatch dynamically (set by the runner).
	Receivers []string

	natives map[string]NativeFunc // subsig key or class+"."+subsig
	// MaxSteps bounds total executed statements per run.
	MaxSteps int
	steps    int
}

// NewMachine builds a machine over the program hierarchy with the
// standard native model and the given network scenario.
func NewMachine(h *hierarchy.Hierarchy, net *NetModel) *Machine {
	m := &Machine{
		H:        h,
		Net:      net,
		Obs:      &Observations{},
		natives:  make(map[string]NativeFunc),
		MaxSteps: 200_000,
	}
	registerNatives(m)
	return m
}

// RegisterNative installs a native implementation for class.subsig.
func (m *Machine) RegisterNative(class, subsig string, fn NativeFunc) {
	m.natives[class+"."+subsig] = fn
}

// lookupNative finds a native for the invocation, walking the receiver's
// runtime class chain and then the declared class chain.
func (m *Machine) lookupNative(runtimeType string, callee jimple.Sig) NativeFunc {
	sub := callee.SubSigKey()
	for _, start := range []string{runtimeType, callee.Class} {
		if start == "" {
			continue
		}
		for cur := start; cur != ""; {
			if fn, ok := m.natives[cur+"."+sub]; ok {
				return fn
			}
			cls := m.H.Program().Class(cur)
			if cls == nil {
				break
			}
			cur = cls.Super
		}
	}
	return nil
}

// Call interprets method m with the given receiver and arguments.
func (mc *Machine) Call(m *jimple.Method, recv Value, args []Value) (Value, *Thrown) {
	if !m.HasBody() {
		return nil, nil
	}
	env := make(map[string]Value, len(m.Locals))
	pc := 0
	for pc < len(m.Body) {
		mc.steps++
		if mc.steps > mc.MaxSteps {
			mc.Obs.BudgetExceeded = true
			return nil, &Thrown{Type: budgetExceeded, Msg: m.Sig.Key()}
		}
		s := m.Body[pc]
		var thrown *Thrown
		next := pc + 1
		switch s := s.(type) {
		case *jimple.AssignStmt:
			var v Value
			v, thrown = mc.eval(m, env, recv, args, s.RHS)
			if thrown == nil {
				thrown = mc.assign(env, s.LHS, v)
			}
		case *jimple.InvokeStmt:
			_, thrown = mc.invoke(m, env, s.Call)
		case *jimple.IfStmt:
			var c Value
			c, thrown = mc.eval(m, env, recv, args, s.Cond)
			if thrown == nil && truthy(c) {
				next = s.Target
			}
		case *jimple.GotoStmt:
			next = s.Target
		case *jimple.ReturnStmt:
			if s.V == nil {
				return nil, nil
			}
			v, th := mc.eval(m, env, recv, args, s.V)
			return v, th
		case *jimple.ThrowStmt:
			v, th := mc.eval(m, env, recv, args, s.V)
			if th != nil {
				thrown = th
			} else if obj, ok := v.(*Obj); ok && obj != nil {
				thrown = &Thrown{Type: obj.Type, Msg: "thrown by app", Obj: obj}
			} else {
				thrown = &Thrown{Type: "java.lang.NullPointerException", Msg: "throw null"}
			}
		case *jimple.NopStmt:
			// nothing
		}
		if thrown != nil {
			if thrown.Type == budgetExceeded {
				return nil, thrown
			}
			handler, ok := mc.findHandler(m, pc, thrown)
			if !ok {
				return nil, thrown
			}
			env["@caught"] = exceptionObj(thrown)
			next = handler
		}
		pc = next
	}
	return nil, nil
}

func exceptionObj(t *Thrown) *Obj {
	if t.Obj != nil {
		return t.Obj
	}
	o := NewObj(t.Type)
	o.Set("message", t.Msg)
	return o
}

// findHandler locates the innermost trap covering pc whose exception type
// is compatible with the thrown one.
func (mc *Machine) findHandler(m *jimple.Method, pc int, t *Thrown) (int, bool) {
	for _, trap := range m.Traps {
		if pc >= trap.Begin && pc < trap.End && mc.H.IsSubtype(t.Type, trap.Exception) {
			return trap.Handler, true
		}
	}
	return 0, false
}

func (mc *Machine) assign(env map[string]Value, lhs jimple.LValue, v Value) *Thrown {
	switch lhs := lhs.(type) {
	case jimple.Local:
		env[lhs.Name] = v
	case jimple.FieldRef:
		if lhs.Base == "" {
			// Static fields live in a per-machine global namespace.
			if mc.Obs.statics == nil {
				mc.Obs.statics = make(map[string]Value)
			}
			mc.Obs.statics[lhs.Class+"."+lhs.Field] = v
			return nil
		}
		obj, ok := env[lhs.Base].(*Obj)
		if !ok || obj == nil {
			return &Thrown{Type: "java.lang.NullPointerException",
				Msg: fmt.Sprintf("field store on null %s", lhs.Base)}
		}
		obj.Set(lhs.Field, v)
	}
	return nil
}

func (mc *Machine) eval(m *jimple.Method, env map[string]Value, recv Value, args []Value, v jimple.Value) (Value, *Thrown) {
	switch v := v.(type) {
	case jimple.Local:
		return env[v.Name], nil
	case jimple.IntConst:
		return v.V, nil
	case jimple.StrConst:
		return v.V, nil
	case jimple.NullConst:
		return nil, nil
	case jimple.ParamRef:
		if v.Index >= 0 && v.Index < len(args) {
			return args[v.Index], nil
		}
		return nil, nil
	case jimple.ThisRef:
		return recv, nil
	case jimple.CaughtExRef:
		return env["@caught"], nil
	case jimple.FieldRef:
		if v.Base == "" {
			if mc.Obs.statics == nil {
				return nil, nil
			}
			return mc.Obs.statics[v.Class+"."+v.Field], nil
		}
		obj, ok := env[v.Base].(*Obj)
		if !ok || obj == nil {
			return nil, &Thrown{Type: "java.lang.NullPointerException",
				Msg: fmt.Sprintf("field read on null %s", v.Base)}
		}
		return obj.Get(v.Field), nil
	case jimple.NewExpr:
		return NewObj(v.Type), nil
	case jimple.InvokeExpr:
		// Bind the invocation using the current frame's env.
		return mc.invoke(m, env, v)
	case jimple.BinExpr:
		l, th := mc.eval(m, env, recv, args, v.L)
		if th != nil {
			return nil, th
		}
		r, th := mc.eval(m, env, recv, args, v.R)
		if th != nil {
			return nil, th
		}
		return evalBin(v.Op, l, r), nil
	case jimple.NegExpr:
		inner, th := mc.eval(m, env, recv, args, v.V)
		if th != nil {
			return nil, th
		}
		return b2i(!truthy(inner)), nil
	case jimple.CastExpr:
		return mc.eval(m, env, recv, args, v.V)
	case jimple.InstanceOfExpr:
		inner, th := mc.eval(m, env, recv, args, v.V)
		if th != nil {
			return nil, th
		}
		obj, ok := inner.(*Obj)
		if !ok || obj == nil {
			return int64(0), nil
		}
		return b2i(mc.H.IsSubtype(obj.Type, v.Type)), nil
	}
	return nil, nil
}

func evalBin(op jimple.BinOp, l, r Value) Value {
	// Reference comparisons.
	if op == jimple.OpEQ || op == jimple.OpNE {
		lo, lIsObj := l.(*Obj)
		ro, rIsObj := r.(*Obj)
		if lIsObj || rIsObj || l == nil || r == nil {
			eq := false
			switch {
			case l == nil && r == nil:
				eq = true
			case lIsObj && rIsObj:
				eq = lo == ro
			}
			if op == jimple.OpEQ {
				return b2i(eq)
			}
			return b2i(!eq)
		}
	}
	li, lok := asInt(l)
	ri, rok := asInt(r)
	if !lok || !rok {
		return int64(0)
	}
	switch op {
	case jimple.OpEQ:
		return b2i(li == ri)
	case jimple.OpNE:
		return b2i(li != ri)
	case jimple.OpLT:
		return b2i(li < ri)
	case jimple.OpLE:
		return b2i(li <= ri)
	case jimple.OpGT:
		return b2i(li > ri)
	case jimple.OpGE:
		return b2i(li >= ri)
	case jimple.OpAdd:
		return li + ri
	case jimple.OpSub:
		return li - ri
	case jimple.OpMul:
		return li * ri
	case jimple.OpDiv:
		if ri == 0 {
			return int64(0)
		}
		return li / ri
	case jimple.OpRem:
		if ri == 0 {
			return int64(0)
		}
		return li % ri
	case jimple.OpAnd:
		return li & ri
	case jimple.OpOr:
		return li | ri
	case jimple.OpXor:
		return li ^ ri
	}
	return int64(0)
}

// invoke dispatches an invocation: app methods are interpreted; modeled
// framework/library methods run their natives; anything else is a no-op.
func (mc *Machine) invoke(caller *jimple.Method, env map[string]Value, inv jimple.InvokeExpr) (Value, *Thrown) {
	var recv Value
	if inv.Base != "" {
		recv = env[inv.Base]
	}
	args := make([]Value, len(inv.Args))
	for i, a := range inv.Args {
		v, th := mc.eval(caller, env, nil, nil, a)
		if th != nil {
			return nil, th
		}
		args[i] = v
	}
	return mc.dispatch(recv, inv, args)
}

// dispatch resolves and runs a call with already-evaluated arguments.
func (mc *Machine) dispatch(recv Value, inv jimple.InvokeExpr, args []Value) (Value, *Thrown) {
	runtimeType := inv.Callee.Class
	if obj, ok := recv.(*Obj); ok && obj != nil && inv.Kind != jimple.InvokeStatic && inv.Kind != jimple.InvokeSpecial {
		runtimeType = obj.Type
	}
	// Instance calls on null receivers NPE — unless a native handles the
	// class (modeled framework calls on unresolved handles are tolerated).
	if inv.Kind != jimple.InvokeStatic && recv == nil {
		if fn := mc.lookupNative(inv.Callee.Class, inv.Callee); fn != nil {
			return fn(mc, recv, args)
		}
		return nil, &Thrown{Type: "java.lang.NullPointerException",
			Msg: fmt.Sprintf("call %s on null", inv.Callee.Name)}
	}
	// App-defined body?
	if target := mc.H.LookupMethod(runtimeType, inv.Callee.SubSigKey()); target != nil && target.HasBody() {
		return mc.Call(target, recv, args)
	}
	if fn := mc.lookupNative(runtimeType, inv.Callee); fn != nil {
		return fn(mc, recv, args)
	}
	return zeroOf(inv.Callee.Ret), nil
}

func zeroOf(ret string) Value {
	switch ret {
	case jimple.TypeVoid:
		return nil
	case jimple.TypeInt, jimple.TypeBoolean, "long", "byte", "char", "short":
		return int64(0)
	}
	return nil
}

// InvokeCallback runs a callback method on an object with args (used by
// natives that model asynchronous dispatch).
func (mc *Machine) InvokeCallback(obj *Obj, subsig string, args []Value) (Value, *Thrown) {
	if obj == nil {
		return nil, nil
	}
	target := mc.H.LookupMethod(obj.Type, subsig)
	if target == nil || !target.HasBody() {
		return nil, nil
	}
	return mc.Call(target, obj, args)
}
