package interp

import (
	"sort"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

// EntryRun is one entry point executed under one scenario.
type EntryRun struct {
	Entry    jimple.Sig
	Kind     android.ComponentKind
	Scenario Scenario
	Obs      Observations
}

// RunReport aggregates a whole app's dynamic exploration.
type RunReport struct {
	Runs []EntryRun
}

// RunApp executes every framework entry point of the app under the given
// scenario, VanarSena-style: construct the component, fire the lifecycle
// method, observe what manifests. Each entry gets a fresh machine so
// observations do not bleed across runs.
func RunApp(app *apk.App, scenario Scenario, seed int64) *RunReport {
	prog := jimple.NewProgram()
	prog.Merge(app.Program)
	prog.Merge(android.Framework())
	prog.Merge(apimodel.Stubs())
	h := hierarchy.New(prog)

	entries := discoverEntries(app, h)
	rep := &RunReport{}
	for i, e := range entries {
		m := NewMachine(h, NewNetModel(scenario, seed+int64(i)))
		if app.Manifest != nil {
			m.Receivers = app.Manifest.Receivers
		}
		method := prog.Method(e.sig)
		if method == nil || !method.HasBody() {
			continue
		}
		args := zeroArgs(method.Sig)
		_, thrown := m.Call(method, NewObj(e.sig.Class), args)
		if thrown != nil && thrown.Type != budgetExceeded {
			m.Obs.Crashes = append(m.Obs.Crashes, *thrown)
		}
		rep.Runs = append(rep.Runs, EntryRun{
			Entry: e.sig, Kind: e.kind, Scenario: scenario, Obs: *m.Obs,
		})
	}
	return rep
}

type entryPoint struct {
	sig  jimple.Sig
	kind android.ComponentKind
}

// discoverEntries mirrors the static tool's entry discovery: lifecycle
// methods of component subclasses (but dynamically we skip listener
// callbacks, which setOnClickListener already exercises in-run).
func discoverEntries(app *apk.App, h *hierarchy.Hierarchy) []entryPoint {
	var out []entryPoint
	for _, c := range app.Program.Classes() {
		for _, base := range android.ComponentBases() {
			if !h.IsSubtype(c.Name, base) {
				continue
			}
			for _, sub := range android.LifecycleSubsigs(base) {
				m := c.Method(sub)
				if m == nil || !m.HasBody() {
					continue
				}
				out = append(out, entryPoint{sig: m.Sig, kind: android.KindOf(h, c.Name)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sig.Key() < out[j].sig.Key() })
	return out
}

func zeroArgs(sig jimple.Sig) []Value {
	args := make([]Value, len(sig.Params))
	for i, p := range sig.Params {
		if jimple.IsPrimitive(p) {
			args[i] = int64(0)
		}
	}
	return args
}

// DynamicFinding is an NPD manifestation a run-time checker can report.
type DynamicFinding string

const (
	// FindingCrash: an uncaught exception (what VanarSena files a crash
	// report for).
	FindingCrash DynamicFinding = "crash"
	// FindingHang: virtual time beyond a user's patience (needs the
	// timing fault model the paper notes most dynamic tools lack).
	FindingHang DynamicFinding = "hang"
	// FindingRunawayLoop: the step budget died in a tight loop.
	FindingRunawayLoop DynamicFinding = "runaway-loop"
	// FindingSilentFailure: a failed user-facing request with no
	// user-visible message.
	FindingSilentFailure DynamicFinding = "silent-failure"
)

// Findings classifies one run's manifestations. crashOnly restricts to
// crash reports (the VanarSena model); otherwise hangs, runaway loops and
// silent failures are also counted (a Caiipa-like richer oracle).
func (run *EntryRun) Findings(crashOnly bool) []DynamicFinding {
	var out []DynamicFinding
	if run.Obs.Crashed() {
		out = append(out, FindingCrash)
	}
	if crashOnly {
		return out
	}
	if run.Obs.BudgetExhausted {
		out = append(out, FindingRunawayLoop)
	} else if run.Obs.HangSuspect() {
		out = append(out, FindingHang)
	}
	if run.Kind == android.KindActivity && run.Obs.SilentFailure() {
		out = append(out, FindingSilentFailure)
	}
	return out
}

// Findings aggregates per-run findings over the whole report.
func (r *RunReport) Findings(crashOnly bool) map[DynamicFinding]int {
	out := make(map[DynamicFinding]int)
	for i := range r.Runs {
		for _, f := range r.Runs[i].Findings(crashOnly) {
			out[f]++
		}
	}
	return out
}
