package interp

import (
	"hash/fnv"
	"sort"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

// EntryRun is one entry point executed under one scenario.
type EntryRun struct {
	Entry    jimple.Sig
	Kind     android.ComponentKind
	Scenario Scenario
	Obs      Observations
}

// RunReport aggregates a whole app's dynamic exploration.
type RunReport struct {
	Runs []EntryRun
}

// RunApp executes every framework entry point of the app under the given
// scenario, VanarSena-style: construct the component, fire the lifecycle
// method, observe what manifests. Each entry gets a fresh machine so
// observations do not bleed across runs.
func RunApp(app *apk.App, scenario Scenario, seed int64) *RunReport {
	r := NewReplayer(app)
	entries := discoverEntries(app, r.h)
	rep := &RunReport{}
	for _, e := range entries {
		obs, ok := r.Replay(e.sig, scenario, seed)
		if !ok {
			continue
		}
		rep.Runs = append(rep.Runs, EntryRun{
			Entry: e.sig, Kind: e.kind, Scenario: scenario, Obs: obs,
		})
	}
	return rep
}

// entrySeed derives the per-entry RNG seed from the entry's signature.
// Keying on the signature (rather than the entry's index in the
// discovered list) makes each entry's fault sequence independent of the
// rest of the app: adding or removing an unrelated entry point must not
// reshuffle another entry's observations.
func entrySeed(base int64, sig jimple.Sig) int64 {
	h := fnv.New64a()
	h.Write([]byte(sig.Key()))
	return base ^ int64(h.Sum64())
}

// Replayer replays individual entry points of one app under injected
// fault scenarios — the dynamic half of warning validation. Build one
// per app (the merged program and hierarchy are shared across replays),
// then call Replay per entry × scenario.
type Replayer struct {
	prog      *jimple.Program
	h         *hierarchy.Hierarchy
	receivers []string
}

// NewReplayer merges the app with the framework and library stub models
// and builds the execution hierarchy.
func NewReplayer(app *apk.App) *Replayer {
	prog := jimple.NewProgram()
	prog.Merge(app.Program)
	prog.Merge(android.Framework())
	prog.Merge(apimodel.Stubs())
	r := &Replayer{prog: prog, h: hierarchy.New(prog)}
	if app.Manifest != nil {
		r.receivers = app.Manifest.Receivers
	}
	return r
}

// Replay runs one entry point under one scenario on a fresh machine so
// observations never bleed across runs. ok is false when the entry has
// no interpretable body. An exception escaping the entry is recorded as
// a crash — except the step-budget sentinel, which is recorded as
// Obs.BudgetExceeded so a timed-out run stays distinguishable from a
// clean one.
func (r *Replayer) Replay(entry jimple.Sig, scenario Scenario, seed int64) (Observations, bool) {
	method := r.prog.Method(entry)
	if method == nil || !method.HasBody() {
		return Observations{}, false
	}
	m := NewMachine(r.h, NewNetModel(scenario, entrySeed(seed, entry)))
	m.Receivers = r.receivers
	_, thrown := m.Call(method, NewObj(entry.Class), zeroArgs(method.Sig))
	if thrown != nil {
		if thrown.Type == budgetExceeded {
			m.Obs.BudgetExceeded = true
		} else {
			m.Obs.Crashes = append(m.Obs.Crashes, *thrown)
		}
	}
	return *m.Obs, true
}

type entryPoint struct {
	sig  jimple.Sig
	kind android.ComponentKind
}

// discoverEntries mirrors the static tool's entry discovery: lifecycle
// methods of component subclasses (but dynamically we skip listener
// callbacks, which setOnClickListener already exercises in-run).
func discoverEntries(app *apk.App, h *hierarchy.Hierarchy) []entryPoint {
	var out []entryPoint
	for _, c := range app.Program.Classes() {
		for _, base := range android.ComponentBases() {
			if !h.IsSubtype(c.Name, base) {
				continue
			}
			for _, sub := range android.LifecycleSubsigs(base) {
				m := c.Method(sub)
				if m == nil || !m.HasBody() {
					continue
				}
				out = append(out, entryPoint{sig: m.Sig, kind: android.KindOf(h, c.Name)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sig.Key() < out[j].sig.Key() })
	return out
}

func zeroArgs(sig jimple.Sig) []Value {
	args := make([]Value, len(sig.Params))
	for i, p := range sig.Params {
		if jimple.IsPrimitive(p) {
			args[i] = int64(0)
		}
	}
	return args
}

// DynamicFinding is an NPD manifestation a run-time checker can report.
type DynamicFinding string

const (
	// FindingCrash: an uncaught exception (what VanarSena files a crash
	// report for).
	FindingCrash DynamicFinding = "crash"
	// FindingHang: virtual time beyond a user's patience (needs the
	// timing fault model the paper notes most dynamic tools lack).
	FindingHang DynamicFinding = "hang"
	// FindingRunawayLoop: the step budget died in a tight loop.
	FindingRunawayLoop DynamicFinding = "runaway-loop"
	// FindingSilentFailure: a failed user-facing request with no
	// user-visible message.
	FindingSilentFailure DynamicFinding = "silent-failure"
)

// Findings classifies one run's manifestations. crashOnly restricts to
// crash reports (the VanarSena model); otherwise hangs, runaway loops and
// silent failures are also counted (a Caiipa-like richer oracle).
func (run *EntryRun) Findings(crashOnly bool) []DynamicFinding {
	var out []DynamicFinding
	if run.Obs.Crashed() {
		out = append(out, FindingCrash)
	}
	if crashOnly {
		return out
	}
	if run.Obs.BudgetExceeded {
		out = append(out, FindingRunawayLoop)
	} else if run.Obs.HangSuspect() {
		out = append(out, FindingHang)
	}
	if run.Kind == android.KindActivity && run.Obs.SilentFailure() {
		out = append(out, FindingSilentFailure)
	}
	return out
}

// Findings aggregates per-run findings over the whole report.
func (r *RunReport) Findings(crashOnly bool) map[DynamicFinding]int {
	out := make(map[DynamicFinding]int)
	for i := range r.Runs {
		for _, f := range r.Runs[i].Findings(crashOnly) {
			out[f]++
		}
	}
	return out
}
