package promtext

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

const sampleText = `# HELP nchecker_jobs_total Scan jobs by terminal status.
# TYPE nchecker_jobs_total counter
nchecker_jobs_total{status="done"} 3
nchecker_jobs_total{status="failed"} 1
# HELP nchecker_queue_depth Jobs waiting.
# TYPE nchecker_queue_depth gauge
nchecker_queue_depth 2
# HELP nchecker_scan_seconds End-to-end scan wall time.
# TYPE nchecker_scan_seconds histogram
nchecker_scan_seconds_bucket{le="0.005"} 1
nchecker_scan_seconds_bucket{le="+Inf"} 3
nchecker_scan_seconds_sum 0.42
nchecker_scan_seconds_count 3
`

func TestParseRoundTrip(t *testing.T) {
	parsed, err := Parse(sampleText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(parsed.Families) != 3 {
		t.Fatalf("families = %d, want 3", len(parsed.Families))
	}
	if f := parsed.Family("nchecker_scan_seconds_bucket"); f == nil || f.Type != "histogram" {
		t.Fatalf("histogram family lookup via sample name = %+v", f)
	}
	if got := parsed.Render(); got != sampleText {
		t.Errorf("Render round-trip differs:\n--- got ---\n%s--- want ---\n%s", got, sampleText)
	}
	wantSeries := []string{
		`nchecker_jobs_total{status="done"}`,
		`nchecker_jobs_total{status="failed"}`,
		`nchecker_queue_depth`,
		`nchecker_scan_seconds_bucket{le="+Inf"}`,
		`nchecker_scan_seconds_bucket{le="0.005"}`,
		`nchecker_scan_seconds_count`,
		`nchecker_scan_seconds_sum`,
	}
	if got := parsed.SeriesNames(); !reflect.DeepEqual(got, wantSeries) {
		t.Errorf("SeriesNames = %q, want %q", got, wantSeries)
	}
}

func TestParseEscapedLabelValues(t *testing.T) {
	text := "# TYPE x counter\n" + `x{msg="a \"quoted\" value, with \\ and \n"} 7` + "\n"
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(parsed.Samples) != 1 || parsed.Samples[0].Value != 7 {
		t.Fatalf("samples = %+v", parsed.Samples)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"sample without TYPE":  "foo 1\n",
		"duplicate series":     "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"bad value":            "# TYPE foo counter\nfoo banana\n",
		"unterminated labels":  "# TYPE foo counter\nfoo{a=\"b\" 1\n",
		"unknown type":         "# TYPE foo sparkline\nfoo 1\n",
		"retyped family":       "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"unquoted label value": "# TYPE foo counter\nfoo{a=b} 1\n",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

// TestSumAggregatesAcrossWorkers is the fleet-aggregation contract:
// identical series add, disjoint series union, histogram buckets add
// bucket-wise, and the result renders deterministically sorted.
func TestSumAggregatesAcrossWorkers(t *testing.T) {
	w1, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Parse(strings.ReplaceAll(sampleText, `{status="failed"} 1`, `{status="rejected"} 5`))
	if err != nil {
		t.Fatal(err)
	}
	sum := Sum(w1, w2, nil)

	want := map[string]float64{
		`nchecker_jobs_total{status="done"}`:       6,
		`nchecker_jobs_total{status="failed"}`:     1,
		`nchecker_jobs_total{status="rejected"}`:   5,
		`nchecker_queue_depth`:                     4,
		`nchecker_scan_seconds_bucket{le="0.005"}`: 2,
		`nchecker_scan_seconds_bucket{le="+Inf"}`:  6,
		`nchecker_scan_seconds_sum`:                0.84,
		`nchecker_scan_seconds_count`:              6,
	}
	if len(sum.Samples) != len(want) {
		t.Fatalf("sum has %d samples, want %d: %+v", len(sum.Samples), len(want), sum.Samples)
	}
	for _, s := range sum.Samples {
		if math.Abs(s.Value-want[s.Series()]) > 1e-9 {
			t.Errorf("%s = %v, want %v", s.Series(), s.Value, want[s.Series()])
		}
	}

	rendered := sum.Render()
	reparsed, err := Parse(rendered)
	if err != nil {
		t.Fatalf("Sum render does not reparse: %v\n%s", err, rendered)
	}
	if len(reparsed.Samples) != len(sum.Samples) {
		t.Errorf("reparse lost samples")
	}
	// Bucket order must be numeric: 0.005 before +Inf despite "+" sorting
	// first lexically.
	if i5, iInf := strings.Index(rendered, `le="0.005"`), strings.Index(rendered, `le="+Inf"`); i5 < 0 || iInf < 0 || i5 > iInf {
		t.Errorf("bucket order wrong in:\n%s", rendered)
	}
	// Deterministic: summing in the other order renders identically.
	if again := Sum(w2, w1).Render(); again != rendered {
		t.Errorf("Sum not order-independent:\n--- a ---\n%s--- b ---\n%s", rendered, again)
	}
}
