// Package promtext is a minimal reader/writer for the Prometheus text
// exposition format (version 0.0.4) — just enough for this repository's
// own /metrics endpoints: `# HELP`/`# TYPE` headers and sample lines with
// optional labels.
//
// It exists for two jobs:
//
//   - fleet aggregation: `nchecker coord` scrapes each worker's /metrics,
//     parses it here, and Sum-merges the samples so the coordinator's
//     /metrics shows fleet-wide totals (DESIGN.md §12);
//   - format stability: internal/server's exposition-format test parses
//     the live /metrics output and compares the sorted series set against
//     a committed golden, so the fleet can rely on the format not
//     drifting silently.
//
// The parser is deliberately strict about the structure our renderer
// promises — every sample belongs to a family that declared its TYPE
// first, label strings are well-formed, no series appears twice — so
// format regressions fail loudly instead of aggregating nonsense.
package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Family is one metric family's metadata.
type Family struct {
	Name string
	Type string // counter, gauge, histogram, summary, untyped
	Help string
}

// Sample is one sample line: a metric name (which for histograms includes
// the _bucket/_sum/_count suffix), a canonical label string ("" or
// `{a="b",c="d"}` exactly as exposed), and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Series is a Sample's identity across scrapes and processes.
func (s Sample) Series() string { return s.Name + s.Labels }

// Text is one parsed exposition.
type Text struct {
	Families []Family // in order of first appearance
	Samples  []Sample // in exposition order
}

// Family returns the family metadata owning the sample name (stripping
// histogram suffixes), or nil.
func (t *Text) Family(sampleName string) *Family {
	base := baseName(sampleName)
	for i := range t.Families {
		if t.Families[i].Name == base {
			return &t.Families[i]
		}
	}
	return nil
}

// baseName strips the histogram sample suffixes off a sample name.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		s := strings.TrimSuffix(name, suf)
		if s != name {
			return s
		}
	}
	return name
}

// Parse reads one text exposition. It enforces the structure this
// repository's renderers emit: TYPE before samples, HELP/TYPE lines
// well-formed, labels canonical, every series unique.
func Parse(input string) (*Text, error) {
	t := &Text{}
	families := make(map[string]*Family)
	seen := make(map[string]bool)
	for ln, line := range strings.Split(input, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("promtext: line %d: malformed HELP: %q", lineNo, line)
			}
			fam := familyFor(t, families, name)
			fam.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("promtext: line %d: malformed TYPE: %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("promtext: line %d: unknown metric type %q", lineNo, typ)
			}
			fam := familyFor(t, families, name)
			if fam.Type != "" && fam.Type != typ {
				return nil, fmt.Errorf("promtext: line %d: family %s re-typed %s -> %s", lineNo, name, fam.Type, typ)
			}
			fam.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		fam := families[baseName(sample.Name)]
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("promtext: line %d: sample %s has no preceding TYPE", lineNo, sample.Name)
		}
		if seen[sample.Series()] {
			return nil, fmt.Errorf("promtext: line %d: duplicate series %s", lineNo, sample.Series())
		}
		seen[sample.Series()] = true
		t.Samples = append(t.Samples, sample)
	}
	return t, nil
}

func familyFor(t *Text, families map[string]*Family, name string) *Family {
	if f, ok := families[name]; ok {
		return f
	}
	t.Families = append(t.Families, Family{Name: name})
	f := &t.Families[len(t.Families)-1]
	families[name] = f
	return f
}

// parseSample reads `name value` or `name{labels} value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end, err := scanLabels(line[i:])
		if err != nil {
			return s, err
		}
		s.Labels = line[i : i+end]
		rest = line[i+end:]
	} else {
		name, r, ok := strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("malformed sample: %q", line)
		}
		s.Name = name
		rest = " " + r
	}
	if s.Name == "" {
		return s, fmt.Errorf("malformed sample: %q", line)
	}
	valStr := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("malformed value %q in %q", valStr, line)
	}
	s.Value = v
	return s, nil
}

// scanLabels validates a `{k="v",...}` label block starting at s[0]=='{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block: %q", s)
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == i || j >= len(s) {
			return 0, fmt.Errorf("malformed label block: %q", s)
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value: %q", s)
		}
		i++ // past opening quote
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value: %q", s)
			}
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				i++
				break
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// Sum merges expositions by adding samples of identical series — the
// fleet-aggregation fold. Family metadata comes from the first exposition
// declaring it; counters, gauges, and histogram components all add (the
// fleet-wide queue depth is the sum of per-worker depths, cumulative
// bucket counts add bucket-wise because every worker uses the same
// bounds). The result is sorted: families by name, samples by name then
// label string, with histogram le labels ordered numerically.
func Sum(texts ...*Text) *Text {
	out := &Text{}
	famSeen := make(map[string]bool)
	values := make(map[string]float64)
	order := make(map[string]Sample)
	for _, t := range texts {
		if t == nil {
			continue
		}
		for _, f := range t.Families {
			if !famSeen[f.Name] {
				famSeen[f.Name] = true
				out.Families = append(out.Families, f)
			}
		}
		for _, s := range t.Samples {
			id := s.Series()
			values[id] += s.Value
			if _, ok := order[id]; !ok {
				order[id] = s
			}
		}
	}
	for id, s := range order {
		s.Value = values[id]
		out.Samples = append(out.Samples, s)
	}
	sort.Slice(out.Families, func(i, j int) bool { return out.Families[i].Name < out.Families[j].Name })
	sort.Slice(out.Samples, func(i, j int) bool { return sampleLess(out.Samples[i], out.Samples[j]) })
	return out
}

// sampleLess orders samples by name, then — when both carry an le label —
// numerically by bucket bound, then by label string.
func sampleLess(a, b Sample) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	la, oka := leBound(a.Labels)
	lb, okb := leBound(b.Labels)
	if oka && okb && la != lb {
		return la < lb
	}
	return a.Labels < b.Labels
}

// leBound extracts a histogram bucket bound from a label string.
func leBound(labels string) (float64, bool) {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	switch rest[:j] {
	case "+Inf":
		return math.Inf(1), true
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Render writes the exposition back out: HELP/TYPE per family (families
// in slice order), then that family's samples in slice order. Callers
// wanting deterministic output pass a Sum result, which is pre-sorted.
func (t *Text) Render() string {
	var b strings.Builder
	byFamily := make(map[string][]Sample)
	for _, s := range t.Samples {
		base := baseName(s.Name)
		byFamily[base] = append(byFamily[base], s)
	}
	for _, f := range t.Families {
		samples := byFamily[f.Name]
		if len(samples) == 0 {
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, typ)
		for _, s := range samples {
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, s.Labels, strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
	}
	return b.String()
}

// SeriesNames returns the sorted unique series identities (name plus
// canonical label string) in the exposition — the shape the
// format-stability golden pins.
func (t *Text) SeriesNames() []string {
	names := make([]string, 0, len(t.Samples))
	for _, s := range t.Samples {
		names = append(names, s.Series())
	}
	sort.Strings(names)
	return names
}

// Value returns the value of the series with the exact identity (name
// plus canonical label string, e.g. `m_total{status="done"}`), and
// whether it is present. Aggregation asserts and smoke clients use it to
// read one counter out of a scrape without string-matching raw lines.
func (t *Text) Value(series string) (float64, bool) {
	for _, s := range t.Samples {
		if s.Series() == series {
			return s.Value, true
		}
	}
	return 0, false
}
