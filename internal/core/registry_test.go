package core

import (
	"testing"

	"repro/internal/apimodel"
)

// TestBatchScansBuildOneRegistry pins the fix for the batch-mode
// per-app registry-construction bug: the pipeline's build stage merged
// apimodel.Stubs() per scan, and Stubs() used to construct a fresh
// registry (and stub program) on every call — so scanning N files
// rebuilt the registry N times. Stubs() and android.Framework() are now
// memoized process-wide; after a warm-up scan, scanning more apps on the
// same Checker must construct zero additional registries.
func TestBatchScansBuildOneRegistry(t *testing.T) {
	nc := New()
	// Warm up: the first scan may lazily build the memoized stub program
	// (which constructs its one generator registry).
	if res := nc.ScanApp(buggyApp(t)); res.Incomplete {
		t.Fatalf("warm-up scan incomplete: %v", res.Err())
	}

	before := apimodel.RegistryBuilds()
	for i := 0; i < 3; i++ {
		if res := nc.ScanApp(buggyApp(t)); res.Incomplete {
			t.Fatalf("batch scan %d incomplete: %v", i, res.Err())
		}
	}
	if after := apimodel.RegistryBuilds(); after != before {
		t.Fatalf("batch scans built %d extra registries; the registry must be constructed once per Checker, not per app", after-before)
	}
}
