package core

import (
	"reflect"
	"testing"

	"repro/internal/apimodel"
	"repro/internal/apk"
)

// TestBatchScansBuildOneRegistry pins the fix for the batch-mode
// per-app registry-construction bug: the pipeline's build stage merged
// apimodel.Stubs() per scan, and Stubs() used to construct a fresh
// registry (and stub program) on every call — so scanning N files
// rebuilt the registry N times. Stubs() and android.Framework() are now
// memoized process-wide; after a warm-up scan, scanning more apps on the
// same Checker must construct zero additional registries.
func TestBatchScansBuildOneRegistry(t *testing.T) {
	nc := New()
	// Warm up: the first scan may lazily build the memoized stub program
	// (which constructs its one generator registry).
	if res := nc.ScanApp(buggyApp(t)); res.Incomplete {
		t.Fatalf("warm-up scan incomplete: %v", res.Err())
	}

	before := apimodel.RegistryBuilds()
	for i := 0; i < 3; i++ {
		if res := nc.ScanApp(buggyApp(t)); res.Incomplete {
			t.Fatalf("batch scan %d incomplete: %v", i, res.Err())
		}
	}
	if after := apimodel.RegistryBuilds(); after != before {
		t.Fatalf("batch scans built %d extra registries; the registry must be constructed once per Checker, not per app", after-before)
	}
}

// TestWithModeSharesRegistry pins WithMode's economy: deriving a
// per-mode Checker (what nchecker serve does for ?mode= jobs) must reuse
// the parent's registry, and scanning through the derived checker — the
// lazy targeted open path included — must build no registries either.
func TestWithModeSharesRegistry(t *testing.T) {
	nc := New()
	if res := nc.ScanApp(buggyApp(t)); res.Incomplete {
		t.Fatalf("warm-up scan incomplete: %v", res.Err())
	}
	data, err := apk.Encode(buggyApp(t))
	if err != nil {
		t.Fatal(err)
	}

	before := apimodel.RegistryBuilds()
	tc := nc.WithMode(ModeTargeted)
	if tc.Registry() != nc.Registry() {
		t.Fatal("WithMode must share the parent registry")
	}
	if tc.Options().Mode != ModeTargeted || nc.Options().Mode != ModeFull {
		t.Fatalf("modes wrong: derived=%v parent=%v", tc.Options().Mode, nc.Options().Mode)
	}
	if same := nc.WithMode(ModeFull); same != nc {
		t.Error("WithMode with the current mode should return the receiver")
	}
	res, err := tc.ScanBytes(data)
	if err != nil {
		t.Fatalf("targeted ScanBytes: %v", err)
	}
	if res.Diagnostics.Mode != ModeTargeted {
		t.Errorf("scan ran in mode %v", res.Diagnostics.Mode)
	}
	if after := apimodel.RegistryBuilds(); after != before {
		t.Fatalf("WithMode scan built %d extra registries", after-before)
	}

	full, err := nc.ScanBytes(data)
	if err != nil {
		t.Fatalf("full ScanBytes: %v", err)
	}
	if !reflect.DeepEqual(res.Reports, full.Reports) || !reflect.DeepEqual(res.Stats, full.Stats) {
		t.Error("targeted ScanBytes reports/stats differ from full mode")
	}
}
