package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/jimple"
	"repro/internal/report"
)

func buggyApp(t *testing.T) *apk.App {
	t.Helper()
	prog := jimple.MustParse(`class demo.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "https://example.com"
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    return
  }
}`)
	man := &android.Manifest{Package: "demo", Activities: []string{"demo.Main"}}
	man.Normalize()
	return &apk.App{Manifest: man, Program: prog}
}

func TestScanAppEndToEnd(t *testing.T) {
	nc := New()
	res := nc.ScanApp(buggyApp(t))
	if len(res.Reports) == 0 {
		t.Fatal("buggy app produced no warnings")
	}
	sum := Summarize(res)
	if sum.Total != len(res.Reports) {
		t.Errorf("summary total mismatch")
	}
	wantCauses := []report.Cause{
		report.CauseNoConnectivityCheck,
		report.CauseNoTimeout,
		report.CauseNoResponseCheck,
	}
	for _, c := range wantCauses {
		if sum.ByCause[c] == 0 {
			t.Errorf("expected cause %s in scan results: %+v", c, sum.ByCause)
		}
	}
}

func TestScanFileAndBytes(t *testing.T) {
	app := buggyApp(t)
	path := filepath.Join(t.TempDir(), "demo.apk")
	if err := apk.WriteFile(path, app); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	nc := New()
	fromFile, err := nc.ScanFile(path)
	if err != nil {
		t.Fatalf("ScanFile: %v", err)
	}
	data, err := apk.Encode(app)
	if err != nil {
		t.Fatal(err)
	}
	fromBytes, err := nc.ScanBytes(data)
	if err != nil {
		t.Fatalf("ScanBytes: %v", err)
	}
	if len(fromFile.Reports) != len(fromBytes.Reports) {
		t.Errorf("file vs bytes scan disagree: %d vs %d", len(fromFile.Reports), len(fromBytes.Reports))
	}
	if _, err := nc.ScanBytes([]byte("garbage")); err == nil {
		t.Error("garbage bytes should error")
	}
	if _, err := nc.ScanFile(filepath.Join(t.TempDir(), "nope.apk")); err == nil {
		t.Error("missing file should error")
	}
}

func TestScanDeterministic(t *testing.T) {
	nc := New()
	a := nc.ScanApp(buggyApp(t))
	b := nc.ScanApp(buggyApp(t))
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("scan nondeterministic: %d vs %d reports", len(a.Reports), len(b.Reports))
	}
	for i := range a.Reports {
		if a.Reports[i].Cause != b.Reports[i].Cause ||
			a.Reports[i].Location.Method.Key() != b.Reports[i].Location.Method.Key() ||
			a.Reports[i].Location.Stmt != b.Reports[i].Location.Stmt {
			t.Errorf("report %d differs across runs", i)
		}
	}
	if a.Stats.Requests != b.Stats.Requests ||
		a.Stats.MissConnCheck != b.Stats.MissConnCheck ||
		a.Stats.MissTimeout != b.Stats.MissTimeout {
		t.Errorf("stats differ across runs: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestConcurrentScans: the Checker is safe for concurrent use — parallel
// scans of the same app produce identical results (run under -race in CI).
// The checker itself runs with a parallel internal pipeline, so this also
// exercises nested concurrency: goroutines sharing one Checker whose
// scans each fan out over their own worker pool.
func TestConcurrentScans(t *testing.T) {
	nc := NewWithOptions(Options{Workers: 4})
	app := buggyApp(t)
	baseline := nc.ScanApp(app)
	const workers = 8
	results := make([]*Result, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results[w] = nc.ScanApp(app)
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w, res := range results {
		if len(res.Reports) != len(baseline.Reports) {
			t.Errorf("worker %d: %d reports vs baseline %d", w, len(res.Reports), len(baseline.Reports))
		}
	}
}

// TestWorkersDeterminism: the same app scanned with Workers=1 and
// Workers=8 must produce byte-identical rendered reports and identical
// stats — the pipeline's merge barrier guarantees it.
func TestWorkersDeterminism(t *testing.T) {
	app := buggyApp(t)
	render := func(res *Result) string {
		var b []byte
		for i := range res.Reports {
			b = append(b, res.Reports[i].Render()...)
			b = append(b, '\n')
		}
		return string(b)
	}
	seq := NewWithOptions(Options{Workers: 1}).ScanApp(app)
	par := NewWithOptions(Options{Workers: 8}).ScanApp(app)
	if got, want := render(par), render(seq); got != want {
		t.Errorf("Workers=8 reports differ from Workers=1:\n--- 1 ---\n%s--- 8 ---\n%s", want, got)
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Errorf("stats differ: %+v vs %+v", seq.Stats, par.Stats)
	}
	if seq.Diagnostics.Workers != 1 || par.Diagnostics.Workers != 8 {
		t.Errorf("diagnostics workers: %d and %d", seq.Diagnostics.Workers, par.Diagnostics.Workers)
	}
}
