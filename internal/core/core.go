// Package core is NChecker's public engine API — the paper's primary
// contribution assembled from the substrate packages. A Checker scans
// Android app binaries (our APK container format) and reports network
// programming defects (NPDs):
//
//	nc := core.New()
//	result, err := nc.ScanFile("app.apk")
//	if err != nil { ... }
//	for _, r := range result.Reports {
//	    fmt.Println(r.Render())
//	}
//
// The pipeline mirrors §4 of the paper: parse the binary into the Jimple
// IR (internal/dex, internal/apk), build a lifecycle-aware call graph
// (internal/callgraph extending internal/hierarchy), then run the four
// API-misuse analyses and the customized-retry-loop identification
// (internal/checkers) against the library annotations
// (internal/apimodel), emitting actionable warning reports
// (internal/report).
package core

import (
	"context"
	"fmt"

	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/checkers"
	"repro/internal/report"
)

// Result is an app scan outcome: the warning reports, the per-request
// statistics the evaluation harness aggregates, and the scan's pipeline
// diagnostics. Result.Incomplete marks a degraded scan — one where a
// stage panicked, the deadline expired, or the context was canceled; the
// partial findings are still valid and deterministic, and Result.Err()
// explains what was lost.
type Result = checkers.Result

// Options re-exports the analysis options: the ablation switches plus
// Workers, the scan pipeline's worker-pool bound (0 = NumCPU), Timeout,
// the per-scan deadline (0 = none), and the persistent scan cache
// (CacheDir / CacheMode / CacheMaxBytes). Reports are deterministic
// regardless of Workers, and identical with the cache off, cold, or warm.
type Options = checkers.Options

// CacheMode selects how a scan uses the persistent content-addressed
// cache rooted at Options.CacheDir: CacheOff disables it, CacheRO probes
// and restores without writing, CacheRW also commits clean scan results.
type CacheMode = checkers.CacheMode

// The cache modes, re-exported for callers configuring Options.
const (
	CacheOff = checkers.CacheOff
	CacheRO  = checkers.CacheRO
	CacheRW  = checkers.CacheRW
)

// ParseCacheMode parses the -cache-mode flag spellings off, ro, and rw.
func ParseCacheMode(s string) (CacheMode, error) {
	return checkers.ParseCacheMode(s)
}

// EngineMode selects the scan traversal: ModeFull analyzes every app
// method; ModeTargeted lazily decodes and analyzes only the demand-driven
// closure of the network-API sites. Reports and stats are byte-identical
// between the modes; targeted scans do less work and report it in
// Diagnostics.
type EngineMode = checkers.EngineMode

// The engine modes, re-exported for callers configuring Options.
const (
	ModeFull     = checkers.ModeFull
	ModeTargeted = checkers.ModeTargeted
)

// ParseEngineMode parses the -mode flag spellings full and targeted.
func ParseEngineMode(s string) (EngineMode, error) {
	return checkers.ParseEngineMode(s)
}

// CheckerSet selects which of the eight checker families run
// (Options.Checkers): a bitmask over family numbers 1–8, zero meaning
// all. Reports of disabled families are simply absent; enabled families
// report byte-identically to a full scan.
type CheckerSet = checkers.CheckerSet

// ParseCheckerSet parses the -checkers flag: "all" (or ""), or a
// comma-separated list of family numbers and N-M ranges, e.g. "1,3,5-8".
func ParseCheckerSet(s string) (CheckerSet, error) {
	return checkers.ParseCheckerSet(s)
}

// Diagnostics re-exports the per-scan pipeline observability record:
// per-stage wall time, work volumes, analysis-cache hit counters, and
// the scan's ScanError list when degraded.
type Diagnostics = checkers.Diagnostics

// ScanError is the structured record of one survivable scan failure; its
// Kind is one of the taxonomy sentinels below and matches errors.Is.
type ScanError = checkers.ScanError

// The scan-failure taxonomy, re-exported from the pipeline so callers can
// classify failures without importing internal/checkers:
//
//	ErrDecode     — malformed APK container or dex payload
//	ErrStagePanic — a pipeline stage or work unit panicked (recovered)
//	ErrDeadline   — Options.Timeout (or the parent context's deadline) expired
//	ErrCanceled   — the scan's context was canceled
var (
	ErrDecode     = checkers.ErrDecode
	ErrStagePanic = checkers.ErrStagePanic
	ErrDeadline   = checkers.ErrDeadline
	ErrCanceled   = checkers.ErrCanceled
)

// Checker is a reusable NPD scanner. It is safe to use from multiple
// goroutines: all per-scan state lives in the scan.
type Checker struct {
	reg  *apimodel.Registry
	opts Options
}

// New returns a Checker with the standard six-library annotation registry
// and default options.
func New() *Checker {
	return NewWithOptions(Options{})
}

// NewWithOptions returns a Checker with explicit analysis options.
func NewWithOptions(opts Options) *Checker {
	return &Checker{reg: apimodel.NewRegistry(), opts: opts}
}

// Registry exposes the library annotations in use.
func (c *Checker) Registry() *apimodel.Registry { return c.reg }

// WithMode returns a Checker identical to c except for the engine mode,
// sharing c's registry (and therefore its fingerprint and the
// one-registry-per-process economy). nchecker serve uses it to honor
// per-job ?mode= requests without rebuilding annotations.
func (c *Checker) WithMode(m EngineMode) *Checker {
	if c.opts.Mode == m {
		return c
	}
	opts := c.opts
	opts.Mode = m
	return &Checker{reg: c.reg, opts: opts}
}

// WithValidate returns a Checker identical to c except for the dynamic
// counterexample validation toggle, sharing c's registry. nchecker serve
// uses it to honor per-job ?validate= requests.
func (c *Checker) WithValidate(v bool) *Checker {
	if c.opts.Validate == v {
		return c
	}
	opts := c.opts
	opts.Validate = v
	return &Checker{reg: c.reg, opts: opts}
}

// WithCheckers returns a Checker identical to c except for the checker
// family selection, sharing c's registry. nchecker serve uses it to honor
// per-job ?checkers= requests.
func (c *Checker) WithCheckers(set CheckerSet) *Checker {
	if c.opts.Checkers == set {
		return c
	}
	opts := c.opts
	opts.Checkers = set
	return &Checker{reg: c.reg, opts: opts}
}

// Options returns the analysis options the Checker scans with. Long-lived
// callers (nchecker serve) use it to report the effective configuration.
func (c *Checker) Options() Options { return c.opts }

// ScanApp analyzes an already-parsed app.
func (c *Checker) ScanApp(app *apk.App) *Result {
	return c.ScanAppContext(context.Background(), app)
}

// ScanAppContext analyzes an already-parsed app under ctx. Cancellation
// and deadlines (including Options.Timeout) degrade the scan instead of
// aborting it: the Result keeps every completed stage's findings and is
// marked Incomplete.
func (c *Checker) ScanAppContext(ctx context.Context, app *apk.App) *Result {
	return checkers.AnalyzeContext(ctx, app, c.reg, c.opts)
}

// ScanBytes parses an APK container from bytes and analyzes it.
func (c *Checker) ScanBytes(data []byte) (*Result, error) {
	return c.ScanBytesContext(context.Background(), data)
}

// ScanBytesContext is ScanBytes under a caller context. A malformed
// container yields an error matching ErrDecode. In targeted mode the
// container is opened lazily — method bodies outside the demand closure
// are never decoded.
func (c *Checker) ScanBytesContext(ctx context.Context, data []byte) (*Result, error) {
	app, err := c.openBytes(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", decodeErr(err))
	}
	return c.ScanAppContext(ctx, app), nil
}

// openBytes picks the decode path for the engine mode: lazy for targeted
// scans, eager otherwise. Both accept exactly the same inputs and seed
// the same content digest, so cache keys agree across modes' open paths.
func (c *Checker) openBytes(data []byte) (*apk.App, error) {
	if c.opts.Mode == ModeTargeted {
		return apk.DecodeLazy(data)
	}
	return apk.Decode(data)
}

// ScanFile parses the APK container at path and analyzes it.
func (c *Checker) ScanFile(path string) (*Result, error) {
	return c.ScanFileContext(context.Background(), path)
}

// ScanFileContext is ScanFile under a caller context. An unreadable or
// malformed file yields an error matching ErrDecode. Targeted scans open
// the file lazily, like ScanBytesContext.
func (c *Checker) ScanFileContext(ctx context.Context, path string) (*Result, error) {
	var app *apk.App
	var err error
	if c.opts.Mode == ModeTargeted {
		app, err = apk.ReadFileLazy(path)
	} else {
		app, err = apk.ReadFile(path)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", decodeErr(err))
	}
	return c.ScanAppContext(ctx, app), nil
}

// decodeErr files a read/parse failure under ErrDecode in the taxonomy.
func decodeErr(err error) error {
	return &ScanError{Kind: ErrDecode, Unit: -1, Msg: err.Error()}
}

// Summarize aggregates a result's reports per cause.
func Summarize(res *Result) report.Summary {
	return report.Summarize(res.Reports)
}
