// Package core is NChecker's public engine API — the paper's primary
// contribution assembled from the substrate packages. A Checker scans
// Android app binaries (our APK container format) and reports network
// programming defects (NPDs):
//
//	nc := core.New()
//	result, err := nc.ScanFile("app.apk")
//	if err != nil { ... }
//	for _, r := range result.Reports {
//	    fmt.Println(r.Render())
//	}
//
// The pipeline mirrors §4 of the paper: parse the binary into the Jimple
// IR (internal/dex, internal/apk), build a lifecycle-aware call graph
// (internal/callgraph extending internal/hierarchy), then run the four
// API-misuse analyses and the customized-retry-loop identification
// (internal/checkers) against the library annotations
// (internal/apimodel), emitting actionable warning reports
// (internal/report).
package core

import (
	"fmt"

	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/checkers"
	"repro/internal/report"
)

// Result is an app scan outcome: the warning reports, the per-request
// statistics the evaluation harness aggregates, and the scan's pipeline
// diagnostics.
type Result = checkers.Result

// Options re-exports the analysis options: the ablation switches plus
// Workers, the scan pipeline's worker-pool bound (0 = NumCPU). Reports
// are deterministic regardless of Workers.
type Options = checkers.Options

// Diagnostics re-exports the per-scan pipeline observability record:
// per-stage wall time, work volumes, and analysis-cache hit counters.
type Diagnostics = checkers.Diagnostics

// Checker is a reusable NPD scanner. It is safe to use from multiple
// goroutines: all per-scan state lives in the scan.
type Checker struct {
	reg  *apimodel.Registry
	opts Options
}

// New returns a Checker with the standard six-library annotation registry
// and default options.
func New() *Checker {
	return NewWithOptions(Options{})
}

// NewWithOptions returns a Checker with explicit analysis options.
func NewWithOptions(opts Options) *Checker {
	return &Checker{reg: apimodel.NewRegistry(), opts: opts}
}

// Registry exposes the library annotations in use.
func (c *Checker) Registry() *apimodel.Registry { return c.reg }

// ScanApp analyzes an already-parsed app.
func (c *Checker) ScanApp(app *apk.App) *Result {
	return checkers.Analyze(app, c.reg, c.opts)
}

// ScanBytes parses an APK container from bytes and analyzes it.
func (c *Checker) ScanBytes(data []byte) (*Result, error) {
	app, err := apk.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return c.ScanApp(app), nil
}

// ScanFile parses the APK container at path and analyzes it.
func (c *Checker) ScanFile(path string) (*Result, error) {
	app, err := apk.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return c.ScanApp(app), nil
}

// Summarize aggregates a result's reports per cause.
func Summarize(res *Result) report.Summary {
	return report.Summarize(res.Reports)
}
