package core

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/report"
)

// These tests pin the allocation-discipline invariants of DESIGN.md §13:
// interned strings, pooled digest writers, and reused per-method scratch
// are all scoped so that no state can leak from one scan into the next.
// The oracle is bytes: a scan's rendered reports must not depend on what
// the process scanned before, which the helper-process pattern (see
// cachestore/crossproc_test.go) proves against genuinely fresh processes.

const (
	determinismAppEnv = "NCHECKER_DETERMINISM_APP"
	determinismOutEnv = "NCHECKER_DETERMINISM_OUT"
)

// determinismApps returns the two corpus apps the cross-process oracle
// scans — adjacent generated apps with different library mixes, built
// deterministically so parent and helper construct identical inputs.
func determinismApps(t *testing.T) []*corpus.CorpusApp {
	t.Helper()
	apps, err := corpus.GenerateCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	return []*corpus.CorpusApp{apps[20], apps[21]}
}

// TestScanDeterminismHelperProcess is the child half of the fresh-process
// oracle: it scans exactly one app with a brand-new Checker in a process
// that has never scanned anything else, and writes the rendered report
// bytes to the requested file. Without the env vars it skips.
func TestScanDeterminismHelperProcess(t *testing.T) {
	idxStr := os.Getenv(determinismAppEnv)
	if idxStr == "" {
		t.Skip("helper-process entry point; driven by TestScanDeterminismAcrossSequentialScans")
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		t.Fatalf("helper: bad index %q", idxStr)
	}
	res := NewWithOptions(Options{}).ScanApp(determinismApps(t)[idx].App)
	if res.Incomplete {
		t.Fatalf("helper: scan degraded: %v", res.Diagnostics.Errors)
	}
	if err := os.WriteFile(os.Getenv(determinismOutEnv), []byte(report.RenderAll(res.Reports)), 0o644); err != nil {
		t.Fatalf("helper: %v", err)
	}
}

// TestScanDeterminismAcrossSequentialScans: two sequential ScanApp calls
// on different apps through ONE Checker in ONE process must produce
// bytes identical to each app scanned by a fresh process. Any intern
// table outliving its scan, any pooled buffer returned dirty, or any
// per-method scratch keyed on a stale program would show up here as a
// byte diff on the second app.
func TestScanDeterminismAcrossSequentialScans(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	apps := determinismApps(t)
	nc := NewWithOptions(Options{})
	var sequential []string
	for _, a := range apps {
		res := nc.ScanApp(a.App)
		if res.Incomplete {
			t.Fatalf("%s: scan degraded: %v", a.Name, res.Diagnostics.Errors)
		}
		sequential = append(sequential, report.RenderAll(res.Reports))
	}
	dir := t.TempDir()
	for i, a := range apps {
		out := filepath.Join(dir, fmt.Sprintf("fresh-%d.txt", i))
		cmd := exec.Command(os.Args[0], "-test.run", "^TestScanDeterminismHelperProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", determinismAppEnv, i),
			determinismOutEnv+"="+out,
		)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("helper process (app %d) failed: %v\n%s", i, err, msg)
		}
		fresh, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if sequential[i] != string(fresh) {
			t.Errorf("%s: report bytes from the sequential in-process scan differ from a fresh process\n"+
				"sequential %d bytes, fresh %d bytes", a.Name, len(sequential[i]), len(fresh))
		}
	}
}

// TestConcurrentScansShareScratchSafely: several goroutines scan the
// same small app set concurrently with the persistent cache on, so the
// pooled digest writers and shared store are genuinely contended; every
// scan must render byte-identical reports. scripts/check.sh runs the
// suite under -race, making this the pooled-scratch data-race gate.
func TestConcurrentScansShareScratchSafely(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency storm")
	}
	apps := determinismApps(t)
	want := make([]string, len(apps))
	for i, a := range apps {
		res := NewWithOptions(Options{}).ScanApp(a.App)
		if res.Incomplete {
			t.Fatalf("%s: reference scan degraded: %v", a.Name, res.Diagnostics.Errors)
		}
		want[i] = report.RenderAll(res.Reports)
	}
	cacheDir := t.TempDir()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(apps))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nc := NewWithOptions(Options{CacheDir: cacheDir, CacheMode: CacheRW})
			for i, a := range apps {
				res := nc.ScanApp(a.App)
				if res.Incomplete {
					errs <- fmt.Errorf("goroutine %d, %s: scan degraded: %v", g, a.Name, res.Diagnostics.Errors)
					return
				}
				if got := report.RenderAll(res.Reports); got != want[i] {
					errs <- fmt.Errorf("goroutine %d, %s: concurrent scan rendered different bytes (%d vs %d)",
						g, a.Name, len(got), len(want[i]))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
