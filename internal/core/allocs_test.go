package core

import (
	"testing"

	"repro/internal/apk"
	"repro/internal/testutil"
)

// TestScanAllocsRegression pins an allocation budget on the per-app scan
// path: one ScanApp of the canonical fixture through a single-threaded
// pipeline must stay under the mode's budget. The fleet dispatch path
// runs this exact call once per /scansync request, so an allocation
// regression here multiplies by the whole corpus × worker count. Both
// engine traversals are gated, so a fast-path regression in the targeted
// closure is caught alongside one in the full pipeline. The budgets carry
// ~10% headroom over the measured values (full: 879, targeted: 942);
// if a deliberate feature change raises a floor, re-measure
// with `go test ./internal/core -run TestScanAllocsRegression -v` and
// update the constant in the same commit that explains why.
//
// The thresholds only bind without -race: the race runtime's
// instrumentation allocates on its own account.
const (
	scanAllocBudgetFull     = 970
	scanAllocBudgetTargeted = 1_040
)

func TestScanAllocsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful with -short's reduced work")
	}
	data := testutil.MustFixtureApp(t)
	for _, tc := range []struct {
		name   string
		mode   EngineMode
		budget int
	}{
		{"full", ModeFull, scanAllocBudgetFull},
		{"targeted", ModeTargeted, scanAllocBudgetTargeted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			app, err := apk.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			// Workers:1 keeps the pipeline single-threaded: goroutine stacks
			// and channel buffers would otherwise smear the measurement.
			nc := NewWithOptions(Options{Workers: 1, Mode: tc.mode})

			// Warm once: registry laziness, stub program, and pool growth
			// must not bill the steady-state measurement.
			if res := nc.ScanApp(app); len(res.Reports) == 0 {
				t.Fatal("fixture app produced no reports; the measurement would be vacuous")
			}

			avg := testing.AllocsPerRun(10, func() {
				res := nc.ScanApp(app)
				if res.Incomplete {
					t.Fatal("scan degraded during measurement")
				}
			})
			t.Logf("ScanApp allocations/run = %.0f (budget %d)", avg, tc.budget)
			if testutil.RaceEnabled {
				t.Skipf("race detector enabled; measured %.0f for the log only", avg)
			}
			if avg > float64(tc.budget) {
				t.Errorf("ScanApp allocates %.0f per run, over the %d budget — "+
					"if intentional, re-measure and raise the budget in the same change",
					avg, tc.budget)
			}
		})
	}
}
