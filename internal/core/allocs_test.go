package core

import (
	"testing"

	"repro/internal/apk"
	"repro/internal/testutil"
)

// TestScanAllocsRegression pins an allocation budget on the per-app scan
// path: one ScanApp of the canonical fixture through a single-threaded
// pipeline must stay under scanAllocBudget allocations. The fleet
// dispatch path runs this exact call once per /scansync request, so an
// allocation regression here multiplies by the whole corpus × worker
// count. The budget carries ~25% headroom over the measured value; if a
// deliberate feature change raises the floor, re-measure with
// `go test ./internal/core -run TestScanAllocsRegression -v` and update
// the constant in the same commit that explains why.
//
// The threshold only binds without -race: the race runtime's
// instrumentation allocates on its own account.
const scanAllocBudget = 1_250

func TestScanAllocsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful with -short's reduced work")
	}
	data := testutil.MustFixtureApp(t)
	app, err := apk.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Workers:1 keeps the pipeline single-threaded: goroutine stacks and
	// channel buffers would otherwise smear the measurement.
	nc := NewWithOptions(Options{Workers: 1})

	// Warm once: registry laziness, stub program, and pool growth must not
	// bill the steady-state measurement.
	if res := nc.ScanApp(app); len(res.Reports) == 0 {
		t.Fatal("fixture app produced no reports; the measurement would be vacuous")
	}

	avg := testing.AllocsPerRun(10, func() {
		res := nc.ScanApp(app)
		if res.Incomplete {
			t.Fatal("scan degraded during measurement")
		}
	})
	t.Logf("ScanApp allocations/run = %.0f (budget %d)", avg, scanAllocBudget)
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.0f for the log only", avg)
	}
	if avg > scanAllocBudget {
		t.Errorf("ScanApp allocates %.0f per run, over the %d budget — "+
			"if intentional, re-measure and raise scanAllocBudget in the same change",
			avg, scanAllocBudget)
	}
}
