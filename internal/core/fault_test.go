package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// TestDecodeFailuresClassify: unreadable and malformed inputs come back
// as ErrDecode through every entry point, so corpus drivers can tell bad
// input from analysis failures.
func TestDecodeFailuresClassify(t *testing.T) {
	nc := New()
	if _, err := nc.ScanBytes([]byte("garbage")); !errors.Is(err, ErrDecode) {
		t.Errorf("ScanBytes(garbage) = %v, want ErrDecode", err)
	}
	if _, err := nc.ScanFile(filepath.Join(t.TempDir(), "nope.apk")); !errors.Is(err, ErrDecode) {
		t.Errorf("ScanFile(missing) = %v, want ErrDecode", err)
	}
	var se *ScanError
	_, err := nc.ScanBytesContext(context.Background(), []byte("garbage"))
	if !errors.As(err, &se) {
		t.Fatalf("decode failure is not a *ScanError: %v", err)
	}
	if se.Msg == "" {
		t.Error("ScanError.Msg empty for decode failure")
	}
}

// TestScanAppContextCancellation: a canceled caller context degrades the
// scan instead of erroring or crashing — the API keeps its no-error
// signature and reports through Result.Incomplete.
func TestScanAppContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := New().ScanAppContext(ctx, buggyApp(t))
	if !res.Incomplete {
		t.Fatal("canceled scan not marked Incomplete")
	}
	if err := res.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err()=%v, want ErrCanceled", err)
	}
}

// TestOptionsTimeoutCompleteScan: a generous Timeout leaves a normal scan
// untouched — same reports as an unbounded run, Incomplete false.
func TestOptionsTimeoutCompleteScan(t *testing.T) {
	app := buggyApp(t)
	plain := New().ScanApp(app)
	bounded := NewWithOptions(Options{Timeout: time.Minute}).ScanApp(app)
	if bounded.Incomplete {
		t.Fatalf("bounded scan degraded: %v", bounded.Err())
	}
	if len(plain.Reports) != len(bounded.Reports) {
		t.Errorf("timeout changed results: %d vs %d reports", len(plain.Reports), len(bounded.Reports))
	}
}
