package robustlib

// Client is the robust library: every Table 11 guideline is a default
// behaviour rather than an API the developer must remember to call.
type Client struct {
	dev *Device
	// TimeoutMs is always set; the zero value is replaced by a sane
	// default at construction (guideline: no blocking connects).
	TimeoutMs float64
	// UserRetries bounds automatic retries for user-initiated GETs.
	UserRetries int
	// BackoffMult grows the timeout between retries.
	BackoffMult float64
	deferred    []deferredReq
}

type deferredReq struct {
	req Request
	h   Handler
}

// New returns a robust client over the device with the guideline
// defaults: an explicit timeout, bounded context-aware retries, and
// exponential backoff.
func New(dev *Device) *Client {
	return &Client{dev: dev, TimeoutMs: 5000, UserRetries: 2, BackoffMult: 2}
}

// retriesFor implements "set default retries considering the request
// context": POSTs are never retried (non-idempotent), background work is
// never retried (no one is waiting; energy matters), user GETs retry a
// bounded number of times.
func (c *Client) retriesFor(req Request) int {
	if req.Method == "POST" || req.Ctx == Background {
		return 0
	}
	return c.UserRetries
}

// Do runs a request with every guideline applied and returns the
// accounting of what happened.
func (c *Client) Do(req Request, h Handler) Outcome {
	var out Outcome
	// Guideline 1: automatic connectivity check before every request.
	if !c.dev.Online() {
		if req.Ctx == Background {
			// Cache and stop: defer to the reconnect flush (the §2
			// Cause 4.2 guideline — automatic failure recovery).
			c.deferred = append(c.deferred, deferredReq{req: req, h: h})
			out.Deferred = true
			out.ErrKind = ErrNoConnection
			return out
		}
		// User request: fail fast with a typed error and a predefined
		// user-visible message — never a silent failure.
		out.ErrKind = ErrNoConnection
		out.NotifiedUser = true
		c.fail(h, &out, ErrNoConnection)
		return out
	}
	before := c.dev.PostsSeen(req.URL)
	timeout := c.TimeoutMs
	retries := c.retriesFor(req)
	for attempt := 0; attempt <= retries; attempt++ {
		out.Attempts++
		ok, elapsed, invalid := c.dev.transmit(req, timeout)
		out.ElapsedMs += elapsed
		if ok {
			if invalid {
				// Guideline 5: invalid responses go to the error
				// callback; OnSuccess only ever sees valid responses.
				out.ErrKind = ErrInvalidResponse
				out.NotifiedUser = req.Ctx == User
				c.fail(h, &out, ErrInvalidResponse)
				out.DuplicatePosts = c.dev.PostsSeen(req.URL) - before - 1
				if out.DuplicatePosts < 0 {
					out.DuplicatePosts = 0
				}
				return out
			}
			out.Success = true
			if h.OnSuccess != nil {
				h.OnSuccess(Response{Status: 200, Size: req.Size, Valid: true})
			}
			out.DuplicatePosts = c.dev.PostsSeen(req.URL) - before - 1
			if out.DuplicatePosts < 0 {
				out.DuplicatePosts = 0
			}
			return out
		}
		// Guideline 2: automatic retry on transient errors — with
		// backoff, and only when the context allows it.
		timeout *= c.BackoffMult
	}
	out.ErrKind = ErrTimeout
	out.NotifiedUser = req.Ctx == User
	c.fail(h, &out, ErrTimeout)
	if posts := c.dev.PostsSeen(req.URL) - before; posts > 1 {
		out.DuplicatePosts = posts - 1
	}
	return out
}

// fail invokes the error callback with the typed error; when the app
// supplied none, the library's predefined message stands in (guideline 4:
// failures are never silent for user requests).
func (c *Client) fail(h Handler, out *Outcome, kind ErrorKind) {
	err := &Error{Kind: kind, Message: defaultMessages[kind]}
	if h.OnError != nil {
		h.OnError(err)
	}
	_ = out
}

// FlushDeferred transmits the requests deferred while offline; call it
// when connectivity returns (the library's reconnect hook). It returns
// the outcomes in original order.
func (c *Client) FlushDeferred() []Outcome {
	pending := c.deferred
	c.deferred = nil
	outs := make([]Outcome, 0, len(pending))
	for _, d := range pending {
		outs = append(outs, c.Do(d.req, d.h))
	}
	return outs
}

// DeferredCount reports the queued request count.
func (c *Client) DeferredCount() int { return len(c.deferred) }

// NaiveClient reproduces the misuse-prone behaviour the corpus exhibits:
// no connectivity check, no explicit timeout (blocking connects), the
// studied libraries' default retries applied to every request kind
// (including POSTs and background work), no failure notification, and
// raw unvalidated responses handed to a single callback.
type NaiveClient struct {
	dev *Device
	// DefaultRetries mirrors e.g. Android Async HTTP's 5 automatic
	// retries for all requests.
	DefaultRetries int
	// TimeoutMs is 0 — no timeout set — unless the developer remembered.
	TimeoutMs float64
}

// NewNaive returns the baseline client.
func NewNaive(dev *Device) *NaiveClient {
	return &NaiveClient{dev: dev, DefaultRetries: 5, TimeoutMs: 2500}
}

// Do runs a request the naive way. The single callback receives the
// response whether or not it is valid (cb may be nil — silent failure).
func (n *NaiveClient) Do(req Request, cb func(Response)) Outcome {
	var out Outcome
	before := n.dev.PostsSeen(req.URL)
	for attempt := 0; attempt <= n.DefaultRetries; attempt++ {
		out.Attempts++
		ok, elapsed, invalid := n.dev.transmit(req, n.TimeoutMs)
		out.ElapsedMs += elapsed
		if ok {
			out.Success = true
			if cb != nil {
				cb(Response{Status: 200, Size: req.Size, Valid: !invalid})
			}
			break
		}
	}
	if posts := n.dev.PostsSeen(req.URL) - before; posts > 1 {
		out.DuplicatePosts = posts - 1
	}
	if !out.Success {
		out.ErrKind = ErrTransient
		// No notification: the naive client fails silently.
	}
	return out
}
