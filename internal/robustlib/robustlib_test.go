package robustlib

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

func onlineDevice(seed int64) *Device {
	return NewDevice(netsim.WiFi(), seed)
}

func TestSuccessCallbackOnlySeesValidResponses(t *testing.T) {
	dev := onlineDevice(1)
	dev.InvalidResponseP = 0.5
	c := New(dev)
	for i := 0; i < 200; i++ {
		c.Do(Request{Method: "GET", URL: "/a", Size: 4096, Ctx: User}, Handler{
			OnSuccess: func(r Response) {
				if !r.Valid {
					t.Fatal("OnSuccess received an invalid response")
				}
			},
			OnError: func(e *Error) {
				if e.Kind != ErrInvalidResponse && e.Kind != ErrTimeout && e.Kind != ErrTransient {
					t.Fatalf("unexpected error kind %s", e.Kind)
				}
				if e.Message == "" {
					t.Fatal("error without a predefined message")
				}
			},
		})
	}
}

func TestPostNeverRetried(t *testing.T) {
	dev := NewDevice(netsim.ThreeGLossy(0.4), 2)
	c := New(dev)
	for i := 0; i < 100; i++ {
		out := c.Do(Request{Method: "POST", URL: "/submit", Size: 64 * 1024, Ctx: User}, Handler{})
		if out.Attempts > 1 {
			t.Fatalf("POST transmitted %d times", out.Attempts)
		}
		if out.DuplicatePosts != 0 {
			t.Fatalf("server saw %d duplicate POST bodies", out.DuplicatePosts)
		}
	}
}

func TestBackgroundNeverRetried(t *testing.T) {
	dev := NewDevice(netsim.ThreeGLossy(0.4), 3)
	c := New(dev)
	for i := 0; i < 100; i++ {
		out := c.Do(Request{Method: "GET", URL: "/sync", Size: 128 * 1024, Ctx: Background}, Handler{})
		if out.Attempts > 1 {
			t.Fatalf("background request retried: %d attempts", out.Attempts)
		}
	}
}

func TestUserGetRetriesWithBackoff(t *testing.T) {
	dev := NewDevice(netsim.ThreeGLossy(0.35), 4)
	c := New(dev)
	sawRetry := false
	for i := 0; i < 200; i++ {
		out := c.Do(Request{Method: "GET", URL: "/page", Size: 256 * 1024, Ctx: User}, Handler{})
		if out.Attempts > 1+c.UserRetries {
			t.Fatalf("too many attempts: %d", out.Attempts)
		}
		if out.Attempts > 1 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("user GETs never retried under 35% loss — retry logic inert")
	}
}

func TestOfflineUserRequestFailsFastWithNotification(t *testing.T) {
	dev := onlineDevice(5)
	dev.SetOnline(false)
	c := New(dev)
	notified := false
	out := c.Do(Request{Method: "GET", URL: "/now", Size: 1024, Ctx: User}, Handler{
		OnError: func(e *Error) {
			if e.Kind != ErrNoConnection {
				t.Fatalf("kind %s, want NoConnectionError", e.Kind)
			}
			notified = true
		},
	})
	if out.Attempts != 0 {
		t.Errorf("offline request transmitted %d times; should not touch the radio", out.Attempts)
	}
	if !notified || !out.NotifiedUser {
		t.Error("offline user failure must be surfaced")
	}
	if out.ElapsedMs > 1 {
		t.Errorf("offline failure should be immediate, took %.0f ms", out.ElapsedMs)
	}
}

func TestOfflineBackgroundRequestDeferredAndRecovered(t *testing.T) {
	dev := onlineDevice(6)
	dev.SetOnline(false)
	c := New(dev)
	delivered := 0
	for i := 0; i < 5; i++ {
		out := c.Do(Request{Method: "GET", URL: "/sync", Size: 2048, Ctx: Background}, Handler{
			OnSuccess: func(Response) { delivered++ },
		})
		if !out.Deferred || out.Attempts != 0 {
			t.Fatalf("offline background request not deferred: %+v", out)
		}
	}
	if c.DeferredCount() != 5 {
		t.Fatalf("deferred queue: %d", c.DeferredCount())
	}
	// Reconnect: automatic failure recovery resends everything.
	dev.SetOnline(true)
	outs := c.FlushDeferred()
	if len(outs) != 5 || c.DeferredCount() != 0 {
		t.Fatalf("flush returned %d, queue %d", len(outs), c.DeferredCount())
	}
	if delivered != 5 {
		t.Errorf("recovered deliveries: %d of 5", delivered)
	}
}

func TestTimeoutAlwaysSet(t *testing.T) {
	dev := onlineDevice(7)
	c := New(dev)
	if c.TimeoutMs <= 0 {
		t.Fatal("robust client constructed without a timeout")
	}
}

func TestNaiveClientExhibitsTheNPDs(t *testing.T) {
	// The baseline must actually misbehave, otherwise the comparison is
	// vacuous: duplicate POSTs under loss, radio use while offline,
	// silent failures, invalid responses in the success path.
	dev := NewDevice(netsim.ThreeGLossy(0.25), 8)
	dev.InvalidResponseP = 0.3
	n := NewNaive(dev)
	dupes, invalidSeen := 0, 0
	for i := 0; i < 200; i++ {
		out := n.Do(Request{Method: "POST", URL: "/pay", Size: 64 * 1024, Ctx: User}, func(r Response) {
			if !r.Valid {
				invalidSeen++
			}
		})
		dupes += out.DuplicatePosts
	}
	if dupes == 0 {
		t.Error("naive client never duplicated a POST under 50% loss — baseline too kind")
	}
	if invalidSeen == 0 {
		t.Error("naive client never surfaced an invalid response to the success callback")
	}
	dev.SetOnline(false)
	out := n.Do(Request{Method: "GET", URL: "/x", Size: 1024, Ctx: Background}, nil)
	if out.Attempts == 0 {
		t.Error("naive client should burn attempts while offline (no connectivity check)")
	}
	if out.NotifiedUser {
		t.Error("naive client should fail silently")
	}
}

func TestErrorKindStrings(t *testing.T) {
	for _, k := range []ErrorKind{ErrNone, ErrNoConnection, ErrTimeout, ErrTransient, ErrInvalidResponse} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	e := &Error{Kind: ErrTimeout, Message: "m"}
	if e.Error() == "" {
		t.Error("Error() empty")
	}
}

// Property: across random request mixes, the robust client never
// transmits a POST more than once and never touches the radio offline.
func TestQuickRobustInvariants(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, post, background, offline bool) bool {
		dev := NewDevice(netsim.ThreeGLossy(0.3), seed)
		dev.SetOnline(!offline)
		c := New(dev)
		req := Request{Method: "GET", URL: "/q", Size: int(sizeRaw) + 1, Ctx: User}
		if post {
			req.Method = "POST"
		}
		if background {
			req.Ctx = Background
		}
		out := c.Do(req, Handler{})
		if offline && out.Attempts != 0 {
			return false
		}
		if post && out.Attempts > 1 {
			return false
		}
		if background && out.Attempts > 1 {
			return false
		}
		if out.DuplicatePosts != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
