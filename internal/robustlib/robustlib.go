// Package robustlib is a reference implementation of the paper's §6
// design guidelines (Table 11) for a user-friendly, robust mobile network
// library — the "prevention" half of the paper's contribution, which the
// authors derive from NChecker's findings but leave as design guidance.
// Implemented here and run against the network simulator, it makes each
// guideline an executable, testable behaviour:
//
//	observation (from §5)                       → guideline (Table 11)
//	43% of apps never check connectivity        → check automatically before each request
//	70% ignore retry APIs                       → retry transient errors automatically
//	76–98% of over-retries are library defaults → pick retry defaults from the request context
//	57% never show failure notifications        → predefine an error message on failure
//	75% of responses never validity-checked     → route invalid responses to the error callback
//	explicit callbacks notified 30% vs 12%      → separate success and error callbacks
//	93% never check error types                 → expose typed errors
//
// A deliberately misuse-prone Naive client with the studied libraries'
// default behaviour is included as the comparison baseline; the package's
// tests are the paper's NPD causes restated as invariants the robust
// client cannot violate.
package robustlib

import (
	"fmt"
	"math/rand"

	"repro/internal/netsim"
)

// ErrorKind is the typed error surface Table 11 demands ("expose
// important error types in addition to error callbacks").
type ErrorKind uint8

const (
	// ErrNone means no error.
	ErrNone ErrorKind = iota
	// ErrNoConnection: the device is offline; nothing was transmitted.
	ErrNoConnection
	// ErrTimeout: the request exceeded its deadline.
	ErrTimeout
	// ErrTransient: a retriable failure that persisted through retries.
	ErrTransient
	// ErrInvalidResponse: the server answered with an unusable response.
	ErrInvalidResponse
)

func (k ErrorKind) String() string {
	switch k {
	case ErrNoConnection:
		return "NoConnectionError"
	case ErrTimeout:
		return "TimeoutError"
	case ErrTransient:
		return "TransientError"
	case ErrInvalidResponse:
		return "InvalidResponseError"
	}
	return "OK"
}

// Error is a typed request failure with the library's predefined
// user-facing message.
type Error struct {
	Kind    ErrorKind
	Message string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Kind, e.Message) }

// predefined user-facing messages (the "predefine error message on
// network failure" guideline).
var defaultMessages = map[ErrorKind]string{
	ErrNoConnection:    "No network connection. Your request will be retried when you are back online.",
	ErrTimeout:         "The server is taking too long to respond. Please try again.",
	ErrTransient:       "A network error interrupted the request. Please try again.",
	ErrInvalidResponse: "The server returned an unexpected response.",
}

// Context distinguishes user-initiated (time-sensitive) requests from
// background work — the axis the paper's Checker 2 judges retries on.
type Context uint8

const (
	// User marks a request a person is waiting on.
	User Context = iota
	// Background marks a request no one is waiting on.
	Background
)

// Request is one network operation.
type Request struct {
	Method string // "GET", "POST", …
	URL    string
	Size   int // bytes to transfer
	Ctx    Context
}

// Response is a validated server response: the success callback is only
// ever invoked with Valid == true (the "automatically put invalid
// responses into error callbacks" guideline makes Valid an invariant
// rather than something to check).
type Response struct {
	Status int
	Size   int
	Valid  bool
}

// Handler carries the explicit, separate success/error callbacks.
type Handler struct {
	OnSuccess func(Response)
	OnError   func(*Error)
}

// Outcome records what the library did for one request — the accounting
// the Table 11 comparison experiment aggregates.
type Outcome struct {
	Success bool
	// Attempts counts transmissions (each wakes the radio: the energy
	// proxy).
	Attempts int
	// Deferred: the request was queued for automatic resend on
	// reconnect instead of being transmitted.
	Deferred bool
	// NotifiedUser: a user-visible message was shown on failure (by the
	// app's error callback or the library's predefined default).
	NotifiedUser bool
	// ErrKind is the typed error on failure.
	ErrKind ErrorKind
	// DuplicatePosts counts POST bodies the server observed beyond the
	// first — the non-idempotent-retry hazard.
	DuplicatePosts int
	ElapsedMs      float64
}

// Device is the simulated phone: its network profile, its connectivity
// state (what ConnectivityManager would report), and a server-side
// counter of received POSTs for duplicate detection.
type Device struct {
	Net    netsim.Profile
	online bool
	rng    *rand.Rand
	// InvalidResponseP is the probability a completed transfer carries an
	// invalid (e.g. truncated or error-page) response.
	InvalidResponseP float64
	postsSeen        map[string]int
}

// NewDevice creates an online device with the given profile and seed.
func NewDevice(p netsim.Profile, seed int64) *Device {
	return &Device{
		Net:       p,
		online:    true,
		rng:       rand.New(rand.NewSource(seed)),
		postsSeen: make(map[string]int),
	}
}

// SetOnline flips the connectivity state (a network switch / airplane
// mode event).
func (d *Device) SetOnline(v bool) { d.online = v }

// Online reports the connectivity state.
func (d *Device) Online() bool { return d.online }

// PostsSeen reports how many times the server received the POST with the
// given URL.
func (d *Device) PostsSeen(url string) int { return d.postsSeen[url] }

// transmit performs one attempt on the wire. Offline attempts always
// fail after a connect timeout's worth of waiting.
func (d *Device) transmit(req Request, timeoutMs float64) (ok bool, elapsed float64, invalid bool) {
	if !d.online {
		wait := timeoutMs
		if wait <= 0 {
			wait = 20000 // a blocking connect stalls until TCP gives up
		}
		return false, wait, false
	}
	c := netsim.Client{TimeoutMs: timeoutMs, MaxRetries: 0}
	res := c.Download(d.Net, req.Size, d.rng)
	if req.Method == "POST" {
		// The non-idempotency hazard: on a client-side failure the body
		// may still have reached the server (the loss can be on the
		// response path) — which is exactly why HTTP/1.1 forbids
		// automatic retry of non-idempotent methods.
		if res.Success || d.rng.Float64() < 0.5 {
			d.postsSeen[req.URL]++
		}
	}
	if !res.Success {
		return false, res.ElapsedMs, false
	}
	return true, res.ElapsedMs, d.rng.Float64() < d.InvalidResponseP
}
